//! The IPsec encryption gateway: ESP transport-mode encapsulation with
//! AES-128-CTR encryption and HMAC-SHA1 (96-bit) authentication.
//!
//! Pipeline shape (Figure 8c): after routing, `IPsecESPEncap` rewrites the
//! packet layout and headers, then the two offloadable crypto elements
//! transform the payload:
//!
//! ```text
//! [eth 14][ip 20][esp hdr 8][iv 16][ciphertext (payload+pad+trailer)][icv 12]
//! ```
//!
//! Security associations are selected per destination /8 and their cipher
//! and MAC contexts are precomputed at table build — the paper's trick of
//! initializing OpenSSL envelope contexts for all flows on startup and only
//! swapping IVs on the data path.

use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use nba_core::batch::{Anno, PacketResult};
use nba_core::element::{
    ComputeMode, DbInput, DbOutput, Disposition, ElemCtx, Element, ElementEffects, HeaderFact,
    KernelIo, OffloadSpec, Postprocess,
};
use nba_crypto::{Aes128Ctr, HmacSha1};
use nba_io::proto::esp::{
    padded_plaintext_len, write_header, ESP_HDR_LEN, ESP_ICV_LEN, ESP_IV_LEN, ESP_TRAILER_LEN,
};
use nba_io::proto::ether::ETHER_HDR_LEN;
use nba_io::proto::{ipv4, IPPROTO_ESP};
use nba_io::Packet;
use nba_sim::{CpuProfile, GpuProfile};

/// Offset of the IPv4 header in the frame.
const IP_OFF: usize = ETHER_HDR_LEN;
/// Offset of the ESP header (fixed 20-byte IPv4 header, transport mode).
const ESP_OFF: usize = IP_OFF + 20;
/// Offset of the IV.
const IV_OFF: usize = ESP_OFF + ESP_HDR_LEN;
/// Offset of the ciphertext.
const CT_OFF: usize = IV_OFF + ESP_IV_LEN;

/// One security association with precomputed crypto contexts.
pub struct SecurityAssoc {
    /// Security parameter index.
    pub spi: u32,
    /// AES-128 key.
    pub aes_key: [u8; 16],
    /// HMAC-SHA1 key.
    pub hmac_key: [u8; 20],
    cipher: Aes128Ctr,
    mac: HmacSha1,
}

/// The SA database: one association per destination /8.
pub struct SaTable {
    sas: Vec<SecurityAssoc>,
}

impl SaTable {
    /// Builds 256 associations with keys derived from `seed`.
    pub fn new(seed: u64) -> SaTable {
        let mut rng = SmallRng::seed_from_u64(seed);
        let sas = (0..256)
            .map(|i| {
                let mut aes_key = [0u8; 16];
                let mut hmac_key = [0u8; 20];
                rng.fill(&mut aes_key);
                rng.fill(&mut hmac_key);
                SecurityAssoc {
                    spi: 0x1000_0000 | i,
                    aes_key,
                    hmac_key,
                    cipher: Aes128Ctr::new(&aes_key),
                    mac: HmacSha1::new(&hmac_key),
                }
            })
            .collect();
        SaTable { sas }
    }

    /// The association for an IPv4 destination (keyed by the top octet).
    pub fn for_dst(&self, dst: u32) -> &SecurityAssoc {
        &self.sas[(dst >> 24) as usize]
    }

    /// The association registered under an SPI, if any.
    pub fn by_spi(&self, spi: u32) -> Option<&SecurityAssoc> {
        self.sas.get((spi & 0xff) as usize).filter(|s| s.spi == spi)
    }
}

impl std::fmt::Debug for SaTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        write!(f, "SaTable({} SAs)", self.sas.len())
    }
}

/// Derives the per-packet CTR IV from (spi, seq), as the encapsulator
/// writes it and both crypto paths read it back from the packet.
fn derive_iv(spi: u32, seq: u32) -> [u8; 16] {
    let mut iv = [0u8; 16];
    iv[0..4].copy_from_slice(&spi.to_be_bytes());
    iv[4..8].copy_from_slice(&seq.to_be_bytes());
    iv[8..12].copy_from_slice(&(!spi).to_be_bytes());
    // Leave the low 4 bytes zero: CTR's block counter space.
    iv
}

/// Rewrites the packet into ESP layout (headers + padding + zeroed ICV);
/// the payload is still plaintext until `IPsecAES` runs.
pub struct IPsecESPEncap {
    sa: Arc<SaTable>,
    seq: u32,
}

impl IPsecESPEncap {
    /// Creates the encapsulator over a shared SA table.
    pub fn new(sa: Arc<SaTable>) -> IPsecESPEncap {
        IPsecESPEncap { sa, seq: 0 }
    }
}

impl Element for IPsecESPEncap {
    fn class_name(&self) -> &'static str {
        "IPsecESPEncap"
    }

    fn process(&mut self, _: &mut ElemCtx<'_>, pkt: &mut Packet, _: &mut Anno) -> PacketResult {
        let len = pkt.len();
        if len < ESP_OFF {
            return PacketResult::Drop;
        }
        let payload_len = len - ESP_OFF;
        let padded = padded_plaintext_len(payload_len);
        let grow = (ESP_HDR_LEN + ESP_IV_LEN) + (padded - payload_len) + ESP_ICV_LEN;
        if pkt.buf_mut().append(grow).is_none() {
            return PacketResult::Drop;
        }
        let frame = pkt.data_mut();
        let dst = u32::from_be_bytes(frame[IP_OFF + 16..IP_OFF + 20].try_into().unwrap());
        let assoc = self.sa.for_dst(dst);
        self.seq = self.seq.wrapping_add(1);

        let old_proto = frame[IP_OFF + 9];
        // Shift the payload behind the ESP header + IV.
        frame.copy_within(ESP_OFF..ESP_OFF + payload_len, CT_OFF);
        write_header(&mut frame[ESP_OFF..], assoc.spi, self.seq);
        frame[IV_OFF..IV_OFF + ESP_IV_LEN].copy_from_slice(&derive_iv(assoc.spi, self.seq));
        // RFC 4303 monotonic padding, then pad length + next header.
        let pad_len = padded - payload_len - ESP_TRAILER_LEN;
        for (k, b) in frame[CT_OFF + payload_len..CT_OFF + payload_len + pad_len]
            .iter_mut()
            .enumerate()
        {
            *b = (k + 1) as u8;
        }
        frame[CT_OFF + padded - 2] = pad_len as u8;
        frame[CT_OFF + padded - 1] = old_proto;
        // ICV space stays zero until IPsecAuthHMAC fills it.
        let total = frame.len();
        for b in &mut frame[total - ESP_ICV_LEN..] {
            *b = 0;
        }
        // Rewrite the IP header: new length, ESP protocol, fresh checksum.
        let ip_len = (total - IP_OFF) as u16;
        frame[IP_OFF + 2..IP_OFF + 4].copy_from_slice(&ip_len.to_be_bytes());
        frame[IP_OFF + 9] = IPPROTO_ESP;
        ipv4::write_checksum(&mut frame[IP_OFF..], 20);
        PacketResult::Out(0)
    }

    fn cpu_profile(&self) -> CpuProfile {
        // Header surgery plus the payload shift.
        CpuProfile {
            fixed_cycles: 170,
            cycles_per_byte: 0.25,
        }
    }

    // Rewrites IP header fields in place: needs a validated IPv4 packet.
    // Buffer-exhausted or runt packets drop.
    fn effects(&self) -> ElementEffects {
        const REQ: &[HeaderFact] = &[HeaderFact::Ipv4Valid];
        ElementEffects {
            requires: REQ,
            disposition: Disposition::MayDrop,
            ..ElementEffects::default()
        }
    }
}

impl std::fmt::Debug for IPsecESPEncap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "IPsecESPEncap(seq = {})", self.seq)
    }
}

/// Encrypts the ESP payload in place with AES-128-CTR (offloadable).
pub struct IPsecAES {
    sa: Arc<SaTable>,
}

impl IPsecAES {
    /// Creates the cipher element over a shared SA table.
    pub fn new(sa: Arc<SaTable>) -> IPsecAES {
        IPsecAES { sa }
    }
}

/// Applies the CTR keystream to one ESP-layout IP packet (bytes starting at
/// the IP header). Used identically by the CPU path and the GPU kernel.
fn aes_apply(sa: &SaTable, ip_pkt: &mut [u8]) {
    let len = ip_pkt.len();
    let ct_start = CT_OFF - IP_OFF;
    if len < ct_start + ESP_ICV_LEN {
        return;
    }
    let dst = u32::from_be_bytes(ip_pkt[16..20].try_into().unwrap());
    let assoc = sa.for_dst(dst);
    let iv: [u8; 16] = ip_pkt[IV_OFF - IP_OFF..IV_OFF - IP_OFF + 16]
        .try_into()
        .unwrap();
    let ct_end = len - ESP_ICV_LEN;
    assoc
        .cipher
        .apply_keystream(&iv, &mut ip_pkt[ct_start..ct_end]);
}

impl Element for IPsecAES {
    fn class_name(&self) -> &'static str {
        "IPsecAES"
    }

    fn process(&mut self, ctx: &mut ElemCtx<'_>, pkt: &mut Packet, _: &mut Anno) -> PacketResult {
        if ctx.compute == ComputeMode::Full {
            aes_apply(&self.sa, &mut pkt.data_mut()[IP_OFF..]);
        }
        PacketResult::Out(0)
    }

    fn cpu_profile(&self) -> CpuProfile {
        // AES-NI-class CTR plus per-packet context/IV setup.
        CpuProfile {
            fixed_cycles: 90,
            cycles_per_byte: 1.4,
        }
    }

    fn offload(&self) -> Option<OffloadSpec> {
        let sa = self.sa.clone();
        Some(OffloadSpec {
            input: DbInput::WholePacket { offset: IP_OFF },
            output: DbOutput::InPlace { extra: 0 },
            gpu: GpuProfile {
                // Per-lane AES-CTR cost: one CUDA core manages ~10 MB/s.
                fixed_ns: 3_000.0,
                ns_per_byte: 220.0,
            },
            kernel: Arc::new(move |io: KernelIo<'_>| {
                for i in 0..io.items {
                    let r = io.item_out_range(i);
                    let item = io.item_in(i).to_vec();
                    io.output[r.clone()].copy_from_slice(&item);
                    aes_apply(&sa, &mut io.output[r]);
                }
            }),
            heavy: true,
            postprocess: Postprocess::WriteBack,
        })
    }
}

impl std::fmt::Debug for IPsecAES {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "IPsecAES")
    }
}

/// Computes the truncated HMAC-SHA1 ICV over the ESP packet (offloadable).
pub struct IPsecAuthHMAC {
    sa: Arc<SaTable>,
}

impl IPsecAuthHMAC {
    /// Creates the authenticator element over a shared SA table.
    pub fn new(sa: Arc<SaTable>) -> IPsecAuthHMAC {
        IPsecAuthHMAC { sa }
    }
}

/// Fills the ICV of one ESP-layout IP packet (RFC 4303 §2.8: the MAC covers
/// the ESP header, IV, and ciphertext).
fn hmac_apply(sa: &SaTable, ip_pkt: &mut [u8]) {
    let len = ip_pkt.len();
    let esp_start = ESP_OFF - IP_OFF;
    if len < esp_start + ESP_HDR_LEN + ESP_IV_LEN + ESP_ICV_LEN {
        return;
    }
    let dst = u32::from_be_bytes(ip_pkt[16..20].try_into().unwrap());
    let assoc = sa.for_dst(dst);
    let icv = assoc
        .mac
        .mac_truncated_96(&ip_pkt[esp_start..len - ESP_ICV_LEN]);
    ip_pkt[len - ESP_ICV_LEN..].copy_from_slice(&icv);
}

impl Element for IPsecAuthHMAC {
    fn class_name(&self) -> &'static str {
        "IPsecAuthHMAC"
    }

    fn process(&mut self, ctx: &mut ElemCtx<'_>, pkt: &mut Packet, _: &mut Anno) -> PacketResult {
        if ctx.compute == ComputeMode::Full {
            hmac_apply(&self.sa, &mut pkt.data_mut()[IP_OFF..]);
        }
        PacketResult::Out(0)
    }

    fn cpu_profile(&self) -> CpuProfile {
        // SHA-1 compressions dominate; small packets pay the fixed blocks.
        CpuProfile {
            fixed_cycles: 1050,
            cycles_per_byte: 7.2,
        }
    }

    fn offload(&self) -> Option<OffloadSpec> {
        let sa = self.sa.clone();
        Some(OffloadSpec {
            input: DbInput::WholePacket { offset: IP_OFF },
            output: DbOutput::InPlace { extra: 0 },
            gpu: GpuProfile {
                // Per-lane HMAC-SHA1: fixed compressions + per-byte cost.
                fixed_ns: 4_000.0,
                ns_per_byte: 260.0,
            },
            kernel: Arc::new(move |io: KernelIo<'_>| {
                for i in 0..io.items {
                    let r = io.item_out_range(i);
                    let item = io.item_in(i).to_vec();
                    io.output[r.clone()].copy_from_slice(&item);
                    hmac_apply(&sa, &mut io.output[r]);
                }
            }),
            heavy: true,
            postprocess: Postprocess::WriteBack,
        })
    }
}

impl std::fmt::Debug for IPsecAuthHMAC {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "IPsecAuthHMAC")
    }
}

/// Verifies the ESP ICV; packets failing authentication are dropped
/// (offloadable). The receiving side of the gateway.
pub struct IPsecAuthVerify {
    sa: Arc<SaTable>,
}

impl IPsecAuthVerify {
    /// Creates the verifier element over a shared SA table.
    pub fn new(sa: Arc<SaTable>) -> IPsecAuthVerify {
        IPsecAuthVerify { sa }
    }
}

/// Checks one ESP-layout IP packet's ICV; returns 1 for valid, 0 otherwise.
fn verify_icv(sa: &SaTable, ip_pkt: &[u8]) -> u64 {
    let len = ip_pkt.len();
    let esp_start = ESP_OFF - IP_OFF;
    if len < esp_start + ESP_HDR_LEN + ESP_IV_LEN + ESP_ICV_LEN || ip_pkt[9] != IPPROTO_ESP {
        return 0;
    }
    let dst = u32::from_be_bytes(ip_pkt[16..20].try_into().unwrap());
    let assoc = sa.for_dst(dst);
    let icv: [u8; ESP_ICV_LEN] = ip_pkt[len - ESP_ICV_LEN..].try_into().unwrap();
    u64::from(
        assoc
            .mac
            .verify_truncated_96(&ip_pkt[esp_start..len - ESP_ICV_LEN], &icv),
    )
}

impl Element for IPsecAuthVerify {
    fn class_name(&self) -> &'static str {
        "IPsecAuthVerify"
    }

    // The GPU verdict lands in the scratch slot via the spec's annotation
    // postprocess (implicit write claim); post_offload reads it back.
    fn slot_claims(&self) -> &'static [nba_core::element::SlotClaim] {
        const CLAIMS: &[nba_core::element::SlotClaim] = &[nba_core::element::SlotClaim::reads(
            nba_core::batch::anno::RE_MATCH,
        )];
        CLAIMS
    }

    fn process(&mut self, ctx: &mut ElemCtx<'_>, pkt: &mut Packet, _: &mut Anno) -> PacketResult {
        if ctx.compute == ComputeMode::Full && verify_icv(&self.sa, &pkt.data()[IP_OFF..]) == 0 {
            return PacketResult::Drop;
        }
        PacketResult::Out(0)
    }

    fn cpu_profile(&self) -> CpuProfile {
        // Same SHA-1 work as generating the MAC.
        CpuProfile {
            fixed_cycles: 1050,
            cycles_per_byte: 7.2,
        }
    }

    // Packets failing ICV verification drop here.
    fn effects(&self) -> ElementEffects {
        ElementEffects {
            disposition: Disposition::MayDrop,
            ..ElementEffects::default()
        }
    }

    fn offload(&self) -> Option<OffloadSpec> {
        let sa = self.sa.clone();
        Some(OffloadSpec {
            input: DbInput::WholePacket { offset: IP_OFF },
            output: DbOutput::PerItem { len: 8 },
            gpu: GpuProfile {
                fixed_ns: 4_000.0,
                ns_per_byte: 260.0,
            },
            kernel: Arc::new(move |io: KernelIo<'_>| {
                for i in 0..io.items {
                    let v = verify_icv(&sa, io.item_in(i));
                    let r = io.item_out_range(i);
                    io.output[r].copy_from_slice(&v.to_le_bytes());
                }
            }),
            heavy: true,
            postprocess: Postprocess::Annotation(nba_core::batch::anno::RE_MATCH),
        })
    }

    fn post_offload(&mut self, ctx: &mut ElemCtx<'_>, batch: &mut nba_core::batch::PacketBatch) {
        // Kernel wrote 1 for authentic packets into the verdict slot.
        let live: Vec<usize> = batch.live_indices().collect();
        for i in live {
            let ok = ctx.compute != ComputeMode::Full
                || batch.anno(i).get(nba_core::batch::anno::RE_MATCH) == 1;
            batch.set_result(
                i,
                if ok {
                    PacketResult::Out(0)
                } else {
                    PacketResult::Drop
                },
            );
        }
    }
}

impl std::fmt::Debug for IPsecAuthVerify {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "IPsecAuthVerify")
    }
}

/// Decrypts the ESP payload in place (offloadable; CTR is symmetric, so
/// this is the same keystream application as [`IPsecAES`]).
pub struct IPsecDecrypt {
    sa: Arc<SaTable>,
}

impl IPsecDecrypt {
    /// Creates the decryptor element over a shared SA table.
    pub fn new(sa: Arc<SaTable>) -> IPsecDecrypt {
        IPsecDecrypt { sa }
    }
}

impl Element for IPsecDecrypt {
    fn class_name(&self) -> &'static str {
        "IPsecDecrypt"
    }

    fn process(&mut self, ctx: &mut ElemCtx<'_>, pkt: &mut Packet, _: &mut Anno) -> PacketResult {
        if ctx.compute == ComputeMode::Full {
            aes_apply(&self.sa, &mut pkt.data_mut()[IP_OFF..]);
        }
        PacketResult::Out(0)
    }

    fn cpu_profile(&self) -> CpuProfile {
        CpuProfile {
            fixed_cycles: 90,
            cycles_per_byte: 1.4,
        }
    }

    fn offload(&self) -> Option<OffloadSpec> {
        let sa = self.sa.clone();
        Some(OffloadSpec {
            input: DbInput::WholePacket { offset: IP_OFF },
            output: DbOutput::InPlace { extra: 0 },
            gpu: GpuProfile {
                fixed_ns: 3_000.0,
                ns_per_byte: 220.0,
            },
            kernel: Arc::new(move |io: KernelIo<'_>| {
                for i in 0..io.items {
                    let r = io.item_out_range(i);
                    let item = io.item_in(i).to_vec();
                    io.output[r.clone()].copy_from_slice(&item);
                    aes_apply(&sa, &mut io.output[r]);
                }
            }),
            heavy: true,
            postprocess: Postprocess::WriteBack,
        })
    }
}

impl std::fmt::Debug for IPsecDecrypt {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "IPsecDecrypt")
    }
}

/// Strips the (already decrypted, already verified) ESP framing and
/// restores the original inner packet layout.
#[derive(Debug, Default)]
pub struct IPsecESPDecap;

impl Element for IPsecESPDecap {
    fn class_name(&self) -> &'static str {
        "IPsecESPDecap"
    }

    fn process(&mut self, _: &mut ElemCtx<'_>, pkt: &mut Packet, _: &mut Anno) -> PacketResult {
        let len = pkt.len();
        if len < CT_OFF + ESP_TRAILER_LEN + ESP_ICV_LEN {
            return PacketResult::Drop;
        }
        let frame = pkt.data_mut();
        if frame[IP_OFF + 9] != IPPROTO_ESP {
            return PacketResult::Drop;
        }
        let ct_end = len - ESP_ICV_LEN;
        let pad_len = usize::from(frame[ct_end - 2]);
        let proto = frame[ct_end - 1];
        let Some(payload_len) = (ct_end - CT_OFF).checked_sub(ESP_TRAILER_LEN + pad_len) else {
            return PacketResult::Drop;
        };
        // Shift the plaintext payload back over the ESP header + IV.
        frame.copy_within(CT_OFF..CT_OFF + payload_len, ESP_OFF);
        let new_len = ESP_OFF + payload_len;
        let ip_len = (new_len - IP_OFF) as u16;
        frame[IP_OFF + 2..IP_OFF + 4].copy_from_slice(&ip_len.to_be_bytes());
        frame[IP_OFF + 9] = proto;
        ipv4::write_checksum(&mut frame[IP_OFF..], 20);
        let trim = len - new_len;
        pkt.buf_mut().trim(trim);
        PacketResult::Out(0)
    }

    fn cpu_profile(&self) -> CpuProfile {
        CpuProfile {
            fixed_cycles: 150,
            cycles_per_byte: 0.25,
        }
    }

    // The recovered inner packet gets a freshly rewritten, checksummed
    // IPv4 header, so validity is re-established downstream of the decap;
    // malformed ESP framing drops.
    fn effects(&self) -> ElementEffects {
        const EST: &[(usize, HeaderFact)] = &[(0, HeaderFact::Ipv4Valid)];
        ElementEffects {
            establishes: EST,
            disposition: Disposition::MayDrop,
            ..ElementEffects::default()
        }
    }
}

/// Errors from [`open_esp`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EspError {
    /// Frame too short or not ESP.
    Malformed,
    /// ICV verification failed.
    BadIcv,
    /// Padding inconsistent after decryption.
    BadPadding,
}

/// Verifies and decrypts a gateway-produced frame (test/receiver helper).
///
/// Returns `(original_protocol, plaintext_payload)`.
pub fn open_esp(frame: &[u8], sa: &SaTable) -> Result<(u8, Vec<u8>), EspError> {
    if frame.len() < CT_OFF + ESP_TRAILER_LEN + ESP_ICV_LEN {
        return Err(EspError::Malformed);
    }
    if frame[IP_OFF + 9] != IPPROTO_ESP {
        return Err(EspError::Malformed);
    }
    let spi = u32::from_be_bytes(frame[ESP_OFF..ESP_OFF + 4].try_into().unwrap());
    let dst = u32::from_be_bytes(frame[IP_OFF + 16..IP_OFF + 20].try_into().unwrap());
    let assoc = sa.for_dst(dst);
    if assoc.spi != spi {
        return Err(EspError::Malformed);
    }
    let len = frame.len();
    let icv: [u8; 12] = frame[len - ESP_ICV_LEN..].try_into().unwrap();
    if !assoc
        .mac
        .verify_truncated_96(&frame[ESP_OFF..len - ESP_ICV_LEN], &icv)
    {
        return Err(EspError::BadIcv);
    }
    let iv: [u8; 16] = frame[IV_OFF..IV_OFF + 16].try_into().unwrap();
    let mut pt = frame[CT_OFF..len - ESP_ICV_LEN].to_vec();
    assoc.cipher.apply_keystream(&iv, &mut pt);
    let pad_len = usize::from(pt[pt.len() - 2]);
    let proto = pt[pt.len() - 1];
    if pad_len + ESP_TRAILER_LEN > pt.len() {
        return Err(EspError::BadPadding);
    }
    // Check the monotonic pad bytes.
    let payload_len = pt.len() - ESP_TRAILER_LEN - pad_len;
    for (k, &b) in pt[payload_len..payload_len + pad_len].iter().enumerate() {
        if b != (k + 1) as u8 {
            return Err(EspError::BadPadding);
        }
    }
    pt.truncate(payload_len);
    Ok((proto, pt))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{ctx_harness, run_one};
    use nba_io::proto::FrameBuilder;

    fn encrypt_pipeline(frame_len: usize) -> (Packet, Arc<SaTable>, Vec<u8>) {
        let sa = Arc::new(SaTable::new(42));
        let mut f = vec![0u8; frame_len];
        FrameBuilder::default().build_ipv4(&mut f, frame_len, 0x0a000001, 0xc0a80105);
        // Put recognizable bytes in the UDP payload.
        for (i, b) in f[42..].iter_mut().enumerate() {
            *b = (i % 251) as u8;
        }
        // Fix the UDP length/checksum-free region is already fine; keep a
        // copy of the original payload (IP payload = from byte 34).
        let original = f[34..].to_vec();
        let mut pkt = Packet::from_bytes(&f);

        let (nls, insp) = ctx_harness();
        let mut encap = IPsecESPEncap::new(sa.clone());
        let mut aes = IPsecAES::new(sa.clone());
        let mut auth = IPsecAuthHMAC::new(sa.clone());
        assert_eq!(
            run_one(&mut encap, &nls, &insp, &mut pkt),
            PacketResult::Out(0)
        );
        assert_eq!(
            run_one(&mut aes, &nls, &insp, &mut pkt),
            PacketResult::Out(0)
        );
        assert_eq!(
            run_one(&mut auth, &nls, &insp, &mut pkt),
            PacketResult::Out(0)
        );
        (pkt, sa, original)
    }

    #[test]
    fn gateway_output_decrypts_and_verifies() {
        for len in [64usize, 100, 256, 1024, 1466] {
            let (pkt, sa, original) = encrypt_pipeline(len);
            // The IP header must still be valid with the ESP protocol.
            let ip = nba_io::proto::ipv4::Ipv4View::parse(&pkt.data()[14..]).unwrap();
            assert!(ip.checksum_ok());
            assert_eq!(ip.protocol(), IPPROTO_ESP);
            assert_eq!(usize::from(ip.total_len()), pkt.len() - 14);

            let (proto, payload) = open_esp(pkt.data(), &sa).expect("open");
            assert_eq!(proto, nba_io::proto::IPPROTO_UDP);
            assert_eq!(payload, original, "len = {len}");
        }
    }

    #[test]
    fn ciphertext_differs_from_plaintext() {
        let (pkt, _, original) = encrypt_pipeline(256);
        assert_ne!(&pkt.data()[CT_OFF..CT_OFF + original.len()], &original[..]);
    }

    #[test]
    fn tampering_is_detected() {
        let (pkt, sa, _) = encrypt_pipeline(128);
        let mut bad = pkt.data().to_vec();
        bad[CT_OFF + 3] ^= 1;
        assert_eq!(open_esp(&bad, &sa).unwrap_err(), EspError::BadIcv);

        // Truncated frame.
        assert_eq!(open_esp(&bad[..40], &sa).unwrap_err(), EspError::Malformed);
    }

    #[test]
    fn sequence_numbers_increment() {
        let sa = Arc::new(SaTable::new(1));
        let (nls, insp) = ctx_harness();
        let mut encap = IPsecESPEncap::new(sa.clone());
        let mut seqs = Vec::new();
        for _ in 0..3 {
            let mut f = vec![0u8; 64];
            FrameBuilder::default().build_ipv4(&mut f, 64, 1, 2);
            let mut pkt = Packet::from_bytes(&f);
            run_one(&mut encap, &nls, &insp, &mut pkt);
            let seq = u32::from_be_bytes(pkt.data()[ESP_OFF + 4..ESP_OFF + 8].try_into().unwrap());
            seqs.push(seq);
        }
        assert_eq!(seqs, vec![1, 2, 3]);
    }

    #[test]
    fn gpu_kernels_match_cpu_path() {
        // Encrypt one packet on the "CPU" and one via the kernels; byte
        // identical results expected.
        let sa = Arc::new(SaTable::new(9));
        let (nls, insp) = ctx_harness();
        let mut f = vec![0u8; 200];
        FrameBuilder::default().build_ipv4(&mut f, 200, 7, 0x55667788);
        let mut cpu_pkt = Packet::from_bytes(&f);
        let mut encap = IPsecESPEncap::new(sa.clone());
        run_one(&mut encap, &nls, &insp, &mut cpu_pkt);
        let staged_frame = cpu_pkt.data().to_vec();

        // CPU path.
        let mut aes = IPsecAES::new(sa.clone());
        let mut auth = IPsecAuthHMAC::new(sa.clone());
        run_one(&mut aes, &nls, &insp, &mut cpu_pkt);
        run_one(&mut auth, &nls, &insp, &mut cpu_pkt);

        // Kernel path over the same staged frame.
        let item = &staged_frame[IP_OFF..];
        let run_kernel = |spec: &OffloadSpec, input: &[u8]| -> Vec<u8> {
            let (staged, out_len) = KernelIo::stage(&[input], &[input.len()]);
            let mut out = vec![0u8; out_len];
            (spec.kernel)(KernelIo::parse(&staged, &mut out));
            out
        };
        let after_aes = run_kernel(&aes.offload().unwrap(), item);
        let after_auth = run_kernel(&auth.offload().unwrap(), &after_aes);
        assert_eq!(&cpu_pkt.data()[IP_OFF..], &after_auth[..]);
    }

    #[test]
    fn receive_side_round_trips_the_gateway_output() {
        // encap -> AES -> HMAC, then verify -> decrypt -> decap restores
        // the original frame bytes (sans TTL work done elsewhere).
        let (mut pkt, sa, original_payload) = encrypt_pipeline(300);
        let (nls, insp) = ctx_harness();
        let mut verify = IPsecAuthVerify::new(sa.clone());
        let mut decrypt = IPsecDecrypt::new(sa.clone());
        let mut decap = IPsecESPDecap;
        assert_eq!(
            run_one(&mut verify, &nls, &insp, &mut pkt),
            PacketResult::Out(0)
        );
        assert_eq!(
            run_one(&mut decrypt, &nls, &insp, &mut pkt),
            PacketResult::Out(0)
        );
        assert_eq!(
            run_one(&mut decap, &nls, &insp, &mut pkt),
            PacketResult::Out(0)
        );
        assert_eq!(pkt.len(), 300);
        assert_eq!(&pkt.data()[34..], &original_payload[..]);
        let ip = nba_io::proto::ipv4::Ipv4View::parse(&pkt.data()[14..]).unwrap();
        assert!(ip.checksum_ok());
        assert_eq!(ip.protocol(), nba_io::proto::IPPROTO_UDP);
    }

    #[test]
    fn tampered_packets_fail_verification() {
        let (mut pkt, sa, _) = encrypt_pipeline(128);
        pkt.data_mut()[CT_OFF + 1] ^= 0x40;
        let (nls, insp) = ctx_harness();
        let mut verify = IPsecAuthVerify::new(sa);
        assert_eq!(
            run_one(&mut verify, &nls, &insp, &mut pkt),
            PacketResult::Drop
        );
    }

    #[test]
    fn decap_rejects_non_esp_and_garbage_padding() {
        let sa = Arc::new(SaTable::new(2));
        let (nls, insp) = ctx_harness();
        let mut decap = IPsecESPDecap;
        // Plain UDP packet: not ESP.
        let mut f = vec![0u8; 128];
        FrameBuilder::default().build_ipv4(&mut f, 128, 1, 2);
        let mut plain = Packet::from_bytes(&f);
        assert_eq!(
            run_one(&mut decap, &nls, &insp, &mut plain),
            PacketResult::Drop
        );
        // ESP packet whose (unverified) pad length is absurd.
        let (mut pkt, _, _) = {
            let sa2 = sa.clone();
            let mut f = vec![0u8; 96];
            FrameBuilder::default().build_ipv4(&mut f, 96, 3, 4);
            let mut p = Packet::from_bytes(&f);
            let mut encap = IPsecESPEncap::new(sa2);
            run_one(&mut encap, &nls, &insp, &mut p);
            (p, sa, ())
        };
        let n = pkt.len();
        pkt.data_mut()[n - ESP_ICV_LEN - 2] = 0xff; // Pad length 255.
        assert_eq!(
            run_one(&mut decap, &nls, &insp, &mut pkt),
            PacketResult::Drop
        );
    }

    #[test]
    fn verify_kernel_matches_cpu_verdicts() {
        let (pkt, sa, _) = encrypt_pipeline(200);
        let verify = IPsecAuthVerify::new(sa.clone());
        let spec = verify.offload().unwrap();
        let good = &pkt.data()[14..];
        let mut bad = good.to_vec();
        bad[40] ^= 1;
        let (staged, out_len) = KernelIo::stage(&[good, &bad], &[8, 8]);
        let mut out = vec![0u8; out_len];
        (spec.kernel)(KernelIo::parse(&staged, &mut out));
        assert_eq!(u64::from_le_bytes(out[0..8].try_into().unwrap()), 1);
        assert_eq!(u64::from_le_bytes(out[8..16].try_into().unwrap()), 0);
    }

    #[test]
    fn sa_lookup_by_spi() {
        let sa = SaTable::new(3);
        let a = sa.for_dst(0x0a000001);
        assert_eq!(sa.by_spi(a.spi).unwrap().spi, a.spi);
        assert!(sa.by_spi(0xdead_0000).is_none());
    }
}
