//! Deterministic fault injection for the device shim.
//!
//! A [`FaultPlan`] makes the simulated accelerator fail in *typed*,
//! *reproducible* ways: per-attempt probabilities for timeouts, transient
//! errors, and corrupted output blocks, plus an optional whole-device death
//! window. The [`FaultInjector`] draws from a seeded splitmix64 stream — a
//! pure function of (seed, draw index) with no wall-clock input — so a DES
//! run under a fixed plan is bit-reproducible: same seed, same faults, same
//! recovery, same packet counts.

use nba_sim::Time;

/// The typed ways a device task attempt can fail.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The task never completes; only a watchdog deadline detects it.
    Timeout,
    /// A retryable submission error (the ECC-hiccup / queue-glitch class).
    Transient,
    /// The task completes but its output block has the wrong length.
    CorruptOutput,
    /// The whole device is dead (inside the plan's death window).
    DeviceDeath,
}

/// A seeded, declarative fault schedule for one device.
///
/// Probabilities apply independently to every kernel *attempt* (retries
/// draw again). The default plan is inactive: no faults, identical behavior
/// to a build without the fault layer.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed of the per-attempt fault draws.
    pub seed: u64,
    /// Probability an attempt times out (no completion), in `[0, 1]`.
    pub timeout: f64,
    /// Probability of a retryable transient error, in `[0, 1]`.
    pub transient: f64,
    /// Probability the output block comes back truncated, in `[0, 1]`.
    pub corrupt: f64,
    /// The device dies at this time…
    pub die_at: Option<Time>,
    /// …and revives at this time (`None` = stays dead).
    pub revive_at: Option<Time>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 42,
            timeout: 0.0,
            transient: 0.0,
            corrupt: 0.0,
            die_at: None,
            revive_at: None,
        }
    }
}

impl FaultPlan {
    /// `true` if the plan can ever inject anything.
    pub fn is_active(&self) -> bool {
        self.timeout > 0.0 || self.transient > 0.0 || self.corrupt > 0.0 || self.die_at.is_some()
    }

    /// `true` while the device is inside the death window at `now`.
    pub fn device_dead(&self, now: Time) -> bool {
        match self.die_at {
            Some(t) if now >= t => self.revive_at.is_none_or(|r| now < r),
            _ => false,
        }
    }

    /// Parses the flag/config syntax:
    /// `seed=7,transient=0.2,timeout=0.1,corrupt=0.05,die_at_ms=25,revive_at_ms=40`.
    /// Keys may appear in any order; unknown keys are errors so typos in a
    /// chaos-CI matrix fail loudly instead of silently running clean.
    pub fn parse(s: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for part in s.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, val) = part
                .split_once('=')
                .ok_or_else(|| format!("fault plan: expected key=value, got `{part}`"))?;
            let fval = || -> Result<f64, String> {
                val.parse::<f64>()
                    .map_err(|e| format!("fault plan: bad value for `{key}`: {e}"))
            };
            let prob = || -> Result<f64, String> {
                let v = fval()?;
                if (0.0..=1.0).contains(&v) {
                    Ok(v)
                } else {
                    Err(format!("fault plan: `{key}` must be in [0, 1], got {v}"))
                }
            };
            let ms = || -> Result<Time, String> { Ok(Time::from_secs_f64(fval()? / 1e3)) };
            match key.trim() {
                "seed" => {
                    plan.seed = val
                        .parse()
                        .map_err(|e| format!("fault plan: bad seed: {e}"))?;
                }
                "timeout" => plan.timeout = prob()?,
                "transient" => plan.transient = prob()?,
                "corrupt" => plan.corrupt = prob()?,
                "die_at_ms" => plan.die_at = Some(ms()?),
                "revive_at_ms" => plan.revive_at = Some(ms()?),
                other => return Err(format!("fault plan: unknown key `{other}`")),
            }
        }
        Ok(plan)
    }

    /// Canonical one-line rendering (config digests, report metadata).
    /// Inverse of [`FaultPlan::parse`] up to float formatting.
    pub fn render(&self) -> String {
        let mut s = format!(
            "seed={},timeout={},transient={},corrupt={}",
            self.seed, self.timeout, self.transient, self.corrupt
        );
        if let Some(t) = self.die_at {
            s.push_str(&format!(",die_at_ms={}", t.as_secs_f64() * 1e3));
        }
        if let Some(t) = self.revive_at {
            s.push_str(&format!(",revive_at_ms={}", t.as_secs_f64() * 1e3));
        }
        s
    }
}

/// Draws typed faults for one device from a seeded deterministic stream.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    state: u64,
}

impl FaultInjector {
    /// Creates an injector over `plan` (the seed fully determines draws).
    pub fn new(plan: FaultPlan) -> FaultInjector {
        let state = plan.seed;
        FaultInjector { plan, state }
    }

    /// The plan this injector draws from.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// splitmix64: the standard 64-bit mixer — tiny, seedable, and good
    /// enough to decorrelate per-attempt draws.
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform draw in `[0, 1)` (53 mantissa bits).
    fn next_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Decides the fate of one kernel attempt submitted at `now`.
    /// `None` = the attempt succeeds. Device death preempts the
    /// probabilistic faults (a dead device fails every attempt the same
    /// way); the probability draw is consumed regardless so the stream
    /// stays aligned across plans that differ only in the death window.
    pub fn draw(&mut self, now: Time) -> Option<FaultKind> {
        let u = self.next_unit();
        if self.plan.device_dead(now) {
            return Some(FaultKind::DeviceDeath);
        }
        let mut edge = self.plan.timeout;
        if u < edge {
            return Some(FaultKind::Timeout);
        }
        edge += self.plan.transient;
        if u < edge {
            return Some(FaultKind::Transient);
        }
        edge += self.plan.corrupt;
        if u < edge {
            return Some(FaultKind::CorruptOutput);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_inactive_and_never_injects() {
        let plan = FaultPlan::default();
        assert!(!plan.is_active());
        let mut inj = FaultInjector::new(plan);
        for i in 0..1000 {
            assert_eq!(inj.draw(Time::from_us(i)), None);
        }
    }

    #[test]
    fn parse_round_trips_through_render() {
        let plan = FaultPlan::parse(
            "seed=7,transient=0.25,timeout=0.1,corrupt=0.05,die_at_ms=25,revive_at_ms=40",
        )
        .unwrap();
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.transient, 0.25);
        assert_eq!(plan.die_at, Some(Time::from_us(25_000)));
        assert_eq!(plan.revive_at, Some(Time::from_us(40_000)));
        assert!(plan.is_active());
        assert_eq!(FaultPlan::parse(&plan.render()).unwrap(), plan);
    }

    #[test]
    fn parse_rejects_unknown_keys_and_bad_probabilities() {
        assert!(FaultPlan::parse("transiant=0.5").is_err());
        assert!(FaultPlan::parse("transient=1.5").is_err());
        assert!(FaultPlan::parse("seed").is_err());
        // The empty plan parses to the inactive default.
        assert!(!FaultPlan::parse("").unwrap().is_active());
    }

    #[test]
    fn death_window_bounds_device_death() {
        let plan = FaultPlan {
            die_at: Some(Time::from_ms(10)),
            revive_at: Some(Time::from_ms(20)),
            ..FaultPlan::default()
        };
        assert!(!plan.device_dead(Time::from_ms(9)));
        assert!(plan.device_dead(Time::from_ms(10)));
        assert!(plan.device_dead(Time::from_ms(19)));
        assert!(!plan.device_dead(Time::from_ms(20)));
        let mut inj = FaultInjector::new(plan);
        assert_eq!(inj.draw(Time::from_ms(15)), Some(FaultKind::DeviceDeath));
        assert_eq!(inj.draw(Time::from_ms(25)), None);
    }

    #[test]
    fn same_seed_draws_identical_fault_streams() {
        let plan = FaultPlan {
            timeout: 0.1,
            transient: 0.2,
            corrupt: 0.1,
            ..FaultPlan::default()
        };
        let mut a = FaultInjector::new(plan.clone());
        let mut b = FaultInjector::new(plan.clone());
        let draws_a: Vec<_> = (0..500).map(|i| a.draw(Time::from_us(i))).collect();
        let draws_b: Vec<_> = (0..500).map(|i| b.draw(Time::from_us(i))).collect();
        assert_eq!(draws_a, draws_b);
        // A different seed diverges (overwhelmingly likely over 500 draws).
        let mut c = FaultInjector::new(FaultPlan { seed: 43, ..plan });
        let draws_c: Vec<_> = (0..500).map(|i| c.draw(Time::from_us(i))).collect();
        assert_ne!(draws_a, draws_c);
    }

    #[test]
    fn probabilities_hit_their_rates_roughly() {
        let plan = FaultPlan {
            timeout: 0.1,
            transient: 0.3,
            corrupt: 0.05,
            ..FaultPlan::default()
        };
        let mut inj = FaultInjector::new(plan);
        let mut counts = [0usize; 4];
        let n = 20_000;
        for i in 0..n {
            match inj.draw(Time::from_us(i as u64)) {
                Some(FaultKind::Timeout) => counts[0] += 1,
                Some(FaultKind::Transient) => counts[1] += 1,
                Some(FaultKind::CorruptOutput) => counts[2] += 1,
                Some(FaultKind::DeviceDeath) => counts[3] += 1,
                None => {}
            }
        }
        let frac = |c: usize| c as f64 / n as f64;
        assert!((frac(counts[0]) - 0.1).abs() < 0.02, "{counts:?}");
        assert!((frac(counts[1]) - 0.3).abs() < 0.02, "{counts:?}");
        assert!((frac(counts[2]) - 0.05).abs() < 0.02, "{counts:?}");
        assert_eq!(counts[3], 0);
    }
}
