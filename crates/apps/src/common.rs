//! Framework-neutral elements: L2 forwarding, header checks, TTL
//! decrement, no-ops, and the synthetic branch element of Figures 1/10.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use nba_core::batch::{anno, Anno, PacketResult};
use nba_core::element::{Disposition, ElemCtx, Element, ElementEffects, HeaderFact, SlotClaim};
use nba_io::proto::{self, ether, ipv4::Ipv4View, ipv6::Ipv6View};
use nba_io::Packet;
use nba_sim::CpuProfile;

/// Does nothing (composition-overhead experiments, §4.2).
#[derive(Debug, Default)]
pub struct NoOp;

impl Element for NoOp {
    fn class_name(&self) -> &'static str {
        "NoOp"
    }

    fn process(&mut self, _: &mut ElemCtx<'_>, _: &mut Packet, _: &mut Anno) -> PacketResult {
        PacketResult::Out(0)
    }

    fn cpu_profile(&self) -> CpuProfile {
        // A trivial body still costs a call and a touch of the packet.
        CpuProfile::fixed(120)
    }
}

/// The minimal L2 forwarder of §4.6: swaps MAC addresses and spreads
/// packets round-robin over all output ports.
#[derive(Debug)]
pub struct L2Forward {
    ports: u16,
    next: u16,
}

impl L2Forward {
    /// Creates a forwarder cycling over `ports` output ports.
    ///
    /// # Panics
    ///
    /// Panics if `ports` is zero.
    pub fn new(ports: u16) -> L2Forward {
        assert!(ports > 0, "L2Forward needs at least one port");
        L2Forward { ports, next: 0 }
    }
}

impl Element for L2Forward {
    fn class_name(&self) -> &'static str {
        "L2Forward"
    }

    fn slot_claims(&self) -> &'static [SlotClaim] {
        const CLAIMS: &[SlotClaim] = &[SlotClaim::writes(anno::IFACE_OUT)];
        CLAIMS
    }

    fn process(&mut self, _: &mut ElemCtx<'_>, pkt: &mut Packet, anno: &mut Anno) -> PacketResult {
        ether::swap_addresses(pkt.data_mut());
        anno.set(anno::IFACE_OUT, u64::from(self.next));
        self.next = (self.next + 1) % self.ports;
        PacketResult::Out(0)
    }

    fn cpu_profile(&self) -> CpuProfile {
        CpuProfile::fixed(24)
    }
}

/// Validates IPv4 headers; valid packets leave port 0, invalid port 1
/// (configurations usually connect port 1 to `Discard`).
#[derive(Debug, Default)]
pub struct CheckIPHeader;

impl Element for CheckIPHeader {
    fn class_name(&self) -> &'static str {
        "CheckIPHeader"
    }

    fn output_count(&self) -> usize {
        2
    }

    fn process(&mut self, _: &mut ElemCtx<'_>, pkt: &mut Packet, _: &mut Anno) -> PacketResult {
        let Ok(eth) = ether::EtherView::parse(pkt.data()) else {
            return PacketResult::Out(1);
        };
        if eth.ethertype() != proto::ETHERTYPE_IPV4 {
            return PacketResult::Out(1);
        }
        match Ipv4View::parse(eth.payload()) {
            Ok(ip) if ip.checksum_ok() && ip.ttl() > 0 => PacketResult::Out(0),
            _ => PacketResult::Out(1),
        }
    }

    fn cpu_profile(&self) -> CpuProfile {
        // Header parse + 20-byte checksum verification.
        CpuProfile::fixed(50)
    }

    // Port 0 carries only packets that passed the IPv4 checks; port 1 is
    // the reject path (validity is *not* established there).
    fn effects(&self) -> ElementEffects {
        const EST: &[(usize, HeaderFact)] = &[(0, HeaderFact::Ipv4Valid)];
        ElementEffects {
            establishes: EST,
            ..ElementEffects::default()
        }
    }
}

/// Validates IPv6 headers; valid packets leave port 0, invalid port 1.
#[derive(Debug, Default)]
pub struct CheckIP6Header;

impl Element for CheckIP6Header {
    fn class_name(&self) -> &'static str {
        "CheckIP6Header"
    }

    fn output_count(&self) -> usize {
        2
    }

    fn process(&mut self, _: &mut ElemCtx<'_>, pkt: &mut Packet, _: &mut Anno) -> PacketResult {
        let Ok(eth) = ether::EtherView::parse(pkt.data()) else {
            return PacketResult::Out(1);
        };
        if eth.ethertype() != proto::ETHERTYPE_IPV6 {
            return PacketResult::Out(1);
        }
        match Ipv6View::parse(eth.payload()) {
            Ok(ip) if ip.hop_limit() > 0 => PacketResult::Out(0),
            _ => PacketResult::Out(1),
        }
    }

    fn cpu_profile(&self) -> CpuProfile {
        CpuProfile::fixed(38)
    }

    fn effects(&self) -> ElementEffects {
        const EST: &[(usize, HeaderFact)] = &[(0, HeaderFact::Ipv6Valid)];
        ElementEffects {
            establishes: EST,
            ..ElementEffects::default()
        }
    }
}

/// Decrements the IPv4 TTL with an incremental checksum update; expired
/// packets are dropped.
#[derive(Debug, Default)]
pub struct DecIPTTL;

impl Element for DecIPTTL {
    fn class_name(&self) -> &'static str {
        "DecIPTTL"
    }

    fn process(&mut self, _: &mut ElemCtx<'_>, pkt: &mut Packet, _: &mut Anno) -> PacketResult {
        let frame = pkt.data_mut();
        if frame.len() < ether::ETHER_HDR_LEN + 20 {
            return PacketResult::Drop;
        }
        match nba_io::proto::ipv4::dec_ttl(&mut frame[ether::ETHER_HDR_LEN..]) {
            Some(0) | None => PacketResult::Drop,
            Some(_) => PacketResult::Out(0),
        }
    }

    fn cpu_profile(&self) -> CpuProfile {
        CpuProfile::fixed(30)
    }

    // Touches the IPv4 TTL and checksum fields: must sit behind a
    // validator on every path (NBA043 otherwise). Expired packets drop.
    fn effects(&self) -> ElementEffects {
        const REQ: &[HeaderFact] = &[HeaderFact::Ipv4Valid];
        ElementEffects {
            requires: REQ,
            disposition: Disposition::MayDrop,
            ..ElementEffects::default()
        }
    }
}

/// Decrements the IPv6 hop limit; expired packets are dropped.
#[derive(Debug, Default)]
pub struct DecIP6HLIM;

impl Element for DecIP6HLIM {
    fn class_name(&self) -> &'static str {
        "DecIP6HLIM"
    }

    fn process(&mut self, _: &mut ElemCtx<'_>, pkt: &mut Packet, _: &mut Anno) -> PacketResult {
        let frame = pkt.data_mut();
        if frame.len() < ether::ETHER_HDR_LEN + 40 {
            return PacketResult::Drop;
        }
        match nba_io::proto::ipv6::dec_hop_limit(&mut frame[ether::ETHER_HDR_LEN..]) {
            Some(0) | None => PacketResult::Drop,
            Some(_) => PacketResult::Out(0),
        }
    }

    fn cpu_profile(&self) -> CpuProfile {
        CpuProfile::fixed(22)
    }

    fn effects(&self) -> ElementEffects {
        const REQ: &[HeaderFact] = &[HeaderFact::Ipv6Valid];
        ElementEffects {
            requires: REQ,
            disposition: Disposition::MayDrop,
            ..ElementEffects::default()
        }
    }
}

/// Drops Ethernet broadcast/multicast frames (port 1), like Click's
/// `DropBroadcasts`.
#[derive(Debug, Default)]
pub struct DropBroadcasts;

impl Element for DropBroadcasts {
    fn class_name(&self) -> &'static str {
        "DropBroadcasts"
    }

    fn process(&mut self, _: &mut ElemCtx<'_>, pkt: &mut Packet, _: &mut Anno) -> PacketResult {
        match ether::EtherView::parse(pkt.data()) {
            Ok(eth) if !eth.is_multicast() => PacketResult::Out(0),
            _ => PacketResult::Drop,
        }
    }

    fn cpu_profile(&self) -> CpuProfile {
        CpuProfile::fixed(10)
    }

    fn effects(&self) -> ElementEffects {
        ElementEffects {
            disposition: Disposition::MayDrop,
            ..ElementEffects::default()
        }
    }
}

/// Sends each packet to output 1 with probability `p`, else output 0 — the
/// synthetic two-path branch of the batch-split experiments (Figures 1/10).
#[derive(Debug)]
pub struct RandomWeightedBranch {
    p_minority: f64,
    rng: SmallRng,
}

impl RandomWeightedBranch {
    /// Creates a branch sending `p_minority` of packets to port 1.
    ///
    /// # Panics
    ///
    /// Panics if `p_minority` is outside `[0, 1]`.
    pub fn new(p_minority: f64, seed: u64) -> RandomWeightedBranch {
        assert!(
            (0.0..=1.0).contains(&p_minority),
            "probability out of range"
        );
        RandomWeightedBranch {
            p_minority,
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl Element for RandomWeightedBranch {
    fn class_name(&self) -> &'static str {
        "RandomWeightedBranch"
    }

    fn output_count(&self) -> usize {
        2
    }

    fn process(&mut self, _: &mut ElemCtx<'_>, _: &mut Packet, _: &mut Anno) -> PacketResult {
        PacketResult::Out(u8::from(self.rng.gen::<f64>() < self.p_minority))
    }

    fn cpu_profile(&self) -> CpuProfile {
        CpuProfile::fixed(12)
    }
}

/// Sets the output NIC port annotation round-robin (echo workloads that
/// bounce packets back without routing).
#[derive(Debug)]
pub struct RoundRobinOutput {
    ports: u16,
    next: u16,
}

impl RoundRobinOutput {
    /// Creates the element cycling over `ports`.
    ///
    /// # Panics
    ///
    /// Panics if `ports` is zero.
    pub fn new(ports: u16) -> RoundRobinOutput {
        assert!(ports > 0);
        RoundRobinOutput { ports, next: 0 }
    }
}

impl Element for RoundRobinOutput {
    fn class_name(&self) -> &'static str {
        "RoundRobinOutput"
    }

    fn slot_claims(&self) -> &'static [SlotClaim] {
        const CLAIMS: &[SlotClaim] = &[SlotClaim::writes(anno::IFACE_OUT)];
        CLAIMS
    }

    fn process(&mut self, _: &mut ElemCtx<'_>, _: &mut Packet, anno: &mut Anno) -> PacketResult {
        anno.set(anno::IFACE_OUT, u64::from(self.next));
        self.next = (self.next + 1) % self.ports;
        PacketResult::Out(0)
    }

    fn cpu_profile(&self) -> CpuProfile {
        CpuProfile::fixed(8)
    }
}

/// Classifies frames by EtherType: IPv4 -> port 0, IPv6 -> port 1,
/// everything else -> port 2 (Click's `Classifier` specialized to the
/// pipelines here).
#[derive(Debug, Default)]
pub struct Classifier;

impl Element for Classifier {
    fn class_name(&self) -> &'static str {
        "Classifier"
    }

    fn output_count(&self) -> usize {
        3
    }

    fn process(&mut self, _: &mut ElemCtx<'_>, pkt: &mut Packet, _: &mut Anno) -> PacketResult {
        match ether::EtherView::parse(pkt.data()).map(|e| e.ethertype()) {
            Ok(proto::ETHERTYPE_IPV4) => PacketResult::Out(0),
            Ok(proto::ETHERTYPE_IPV6) => PacketResult::Out(1),
            _ => PacketResult::Out(2),
        }
    }

    fn cpu_profile(&self) -> CpuProfile {
        CpuProfile::fixed(14)
    }
}

/// Annotation slot shared by [`Paint`] and [`CheckPaint`]: reuses the
/// flow-id slot's upper byte-space is avoided by keeping a dedicated
/// constant here (the framework reserves slots 0-6; paint rides in the
/// flow-id slot's high bits, which RSS never sets).
const PAINT_SHIFT: u32 = 56;

/// Marks packets with a color in an annotation (Click's `Paint`).
#[derive(Debug)]
pub struct Paint {
    color: u8,
}

impl Paint {
    /// Creates a painter with the given color (1..=255; 0 means unpainted).
    ///
    /// # Panics
    ///
    /// Panics if `color` is zero.
    pub fn new(color: u8) -> Paint {
        assert!(color != 0, "paint color 0 means unpainted");
        Paint { color }
    }
}

impl Element for Paint {
    fn class_name(&self) -> &'static str {
        "Paint"
    }

    // Paint read-modify-writes the high byte of the RSS flow-id slot.
    fn slot_claims(&self) -> &'static [SlotClaim] {
        const CLAIMS: &[SlotClaim] = &[
            SlotClaim::reads(anno::FLOW_ID),
            SlotClaim::writes(anno::FLOW_ID),
        ];
        CLAIMS
    }

    fn process(&mut self, _: &mut ElemCtx<'_>, _: &mut Packet, anno: &mut Anno) -> PacketResult {
        let v = anno.get(anno::FLOW_ID) & !(0xffu64 << PAINT_SHIFT);
        anno.set(anno::FLOW_ID, v | u64::from(self.color) << PAINT_SHIFT);
        PacketResult::Out(0)
    }

    fn cpu_profile(&self) -> CpuProfile {
        CpuProfile::fixed(6)
    }
}

/// Branches on the paint color: matching packets -> port 1, others ->
/// port 0 (Click's `CheckPaint`).
#[derive(Debug)]
pub struct CheckPaint {
    color: u8,
}

impl CheckPaint {
    /// Creates a checker for the given color.
    pub fn new(color: u8) -> CheckPaint {
        CheckPaint { color }
    }
}

impl Element for CheckPaint {
    fn class_name(&self) -> &'static str {
        "CheckPaint"
    }

    fn slot_claims(&self) -> &'static [SlotClaim] {
        const CLAIMS: &[SlotClaim] = &[SlotClaim::reads(anno::FLOW_ID)];
        CLAIMS
    }

    fn output_count(&self) -> usize {
        2
    }

    fn process(&mut self, _: &mut ElemCtx<'_>, _: &mut Packet, anno: &mut Anno) -> PacketResult {
        let painted = (anno.get(anno::FLOW_ID) >> PAINT_SHIFT) as u8;
        PacketResult::Out(u8::from(painted == self.color))
    }

    fn cpu_profile(&self) -> CpuProfile {
        CpuProfile::fixed(6)
    }
}

/// Counts packets and bytes passing through (Click's `Counter`).
#[derive(Debug)]
pub struct PacketCounter {
    /// Shared counters readable outside the pipeline.
    pub stats: std::sync::Arc<CounterStats>,
}

/// The [`PacketCounter`]'s shared state.
#[derive(Debug, Default)]
pub struct CounterStats {
    /// Packets seen.
    pub packets: std::sync::atomic::AtomicU64,
    /// Frame bytes seen.
    pub bytes: std::sync::atomic::AtomicU64,
}

impl PacketCounter {
    /// Creates a counter around shared state.
    pub fn new(stats: std::sync::Arc<CounterStats>) -> PacketCounter {
        PacketCounter { stats }
    }
}

impl Element for PacketCounter {
    fn class_name(&self) -> &'static str {
        "PacketCounter"
    }

    fn process(&mut self, _: &mut ElemCtx<'_>, pkt: &mut Packet, _: &mut Anno) -> PacketResult {
        use std::sync::atomic::Ordering;
        self.stats.packets.fetch_add(1, Ordering::Relaxed);
        self.stats
            .bytes
            .fetch_add(pkt.len() as u64, Ordering::Relaxed);
        PacketResult::Out(0)
    }

    fn cpu_profile(&self) -> CpuProfile {
        CpuProfile::fixed(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{ctx_harness, run_one};
    use nba_io::proto::FrameBuilder;

    fn v4_frame(len: usize) -> Packet {
        let mut f = vec![0u8; len];
        FrameBuilder::default().build_ipv4(&mut f, len, 0x0a000001, 0xc0a80101);
        Packet::from_bytes(&f)
    }

    #[test]
    fn classifier_splits_by_ethertype() {
        let mut el = Classifier;
        let (nls, insp) = ctx_harness();
        let mut v4 = v4_frame(64);
        assert_eq!(run_one(&mut el, &nls, &insp, &mut v4), PacketResult::Out(0));
        let mut v6 = {
            let mut f = vec![0u8; 80];
            nba_io::proto::FrameBuilder::default().build_ipv6(&mut f, 80, 1, 2);
            Packet::from_bytes(&f)
        };
        assert_eq!(run_one(&mut el, &nls, &insp, &mut v6), PacketResult::Out(1));
        let mut arp = v4_frame(64);
        arp.data_mut()[12] = 0x08;
        arp.data_mut()[13] = 0x06;
        assert_eq!(
            run_one(&mut el, &nls, &insp, &mut arp),
            PacketResult::Out(2)
        );
    }

    #[test]
    fn paint_then_check_paint_round_trips() {
        let (nls, insp) = ctx_harness();
        let mut pkt = v4_frame(64);
        let mut anno = Anno::default();
        anno.set(anno::FLOW_ID, 0x1234_5678); // RSS hash must survive.
        let mut ectx = nba_core::element::ElemCtx {
            now: nba_sim::Time::ZERO,
            compute: nba_core::element::ComputeMode::Full,
            nls: &nls,
            worker: 0,
            inspector: &insp,
        };
        Paint::new(7).process(&mut ectx, &mut pkt, &mut anno);
        assert_eq!(anno.get(anno::FLOW_ID) & 0xffff_ffff, 0x1234_5678);
        assert_eq!(
            CheckPaint::new(7).process(&mut ectx, &mut pkt, &mut anno),
            PacketResult::Out(1)
        );
        assert_eq!(
            CheckPaint::new(8).process(&mut ectx, &mut pkt, &mut anno),
            PacketResult::Out(0)
        );
    }

    #[test]
    fn packet_counter_accumulates() {
        use std::sync::atomic::Ordering;
        let stats = std::sync::Arc::new(CounterStats::default());
        let mut el = PacketCounter::new(stats.clone());
        let (nls, insp) = ctx_harness();
        for len in [64usize, 128, 256] {
            let mut pkt = v4_frame(len);
            run_one(&mut el, &nls, &insp, &mut pkt);
        }
        assert_eq!(stats.packets.load(Ordering::Relaxed), 3);
        assert_eq!(stats.bytes.load(Ordering::Relaxed), 64 + 128 + 256);
    }

    #[test]
    fn check_ip_header_accepts_valid_rejects_bad() {
        let mut el = CheckIPHeader;
        let (nls, insp) = ctx_harness();
        let mut pkt = v4_frame(64);
        assert_eq!(
            run_one(&mut el, &nls, &insp, &mut pkt),
            PacketResult::Out(0)
        );

        // Corrupt the checksum.
        pkt.data_mut()[24] ^= 0xff;
        assert_eq!(
            run_one(&mut el, &nls, &insp, &mut pkt),
            PacketResult::Out(1)
        );

        // Non-IP ethertype.
        let mut arp = v4_frame(64);
        arp.data_mut()[12] = 0x08;
        arp.data_mut()[13] = 0x06;
        assert_eq!(
            run_one(&mut el, &nls, &insp, &mut arp),
            PacketResult::Out(1)
        );

        // Truncated frame.
        let mut small = Packet::from_bytes(&[0u8; 10]);
        assert_eq!(
            run_one(&mut el, &nls, &insp, &mut small),
            PacketResult::Out(1)
        );
    }

    #[test]
    fn dec_ttl_drops_at_zero_and_keeps_checksum() {
        let mut el = DecIPTTL;
        let (nls, insp) = ctx_harness();
        let mut pkt = v4_frame(64);
        // TTL starts at 64; decrement 63 times fine.
        for _ in 0..63 {
            assert_eq!(
                run_one(&mut el, &nls, &insp, &mut pkt),
                PacketResult::Out(0)
            );
        }
        // The header must still checksum after all updates.
        let mut chk = CheckIPHeader;
        assert_eq!(
            run_one(&mut chk, &nls, &insp, &mut pkt),
            PacketResult::Out(0)
        );
        // TTL 1 -> 0: drop.
        assert_eq!(run_one(&mut el, &nls, &insp, &mut pkt), PacketResult::Drop);
    }

    #[test]
    fn l2fwd_swaps_and_rotates() {
        let mut el = L2Forward::new(3);
        let (nls, insp) = ctx_harness();
        let mut outs = Vec::new();
        for _ in 0..4 {
            let mut pkt = v4_frame(64);
            let src = ether::EtherView::parse(pkt.data()).unwrap().src();
            let (r, anno) = crate::test_util::run_one_anno(&mut el, &nls, &insp, &mut pkt);
            assert_eq!(r, PacketResult::Out(0));
            assert_eq!(ether::EtherView::parse(pkt.data()).unwrap().dst(), src);
            outs.push(anno.get(anno::IFACE_OUT));
        }
        assert_eq!(outs, vec![0, 1, 2, 0]);
    }

    #[test]
    fn random_branch_respects_probability() {
        let mut el = RandomWeightedBranch::new(0.25, 42);
        let (nls, insp) = ctx_harness();
        let mut minority = 0;
        for _ in 0..4000 {
            let mut pkt = v4_frame(64);
            if run_one(&mut el, &nls, &insp, &mut pkt) == PacketResult::Out(1) {
                minority += 1;
            }
        }
        let frac = minority as f64 / 4000.0;
        assert!((frac - 0.25).abs() < 0.03, "observed {frac}");
    }

    #[test]
    fn drop_broadcasts_filters_multicast() {
        let mut el = DropBroadcasts;
        let (nls, insp) = ctx_harness();
        let mut uni = v4_frame(64);
        assert_eq!(
            run_one(&mut el, &nls, &insp, &mut uni),
            PacketResult::Out(0)
        );
        let mut bc = v4_frame(64);
        bc.data_mut()[0..6].copy_from_slice(&[0xff; 6]);
        assert_eq!(run_one(&mut el, &nls, &insp, &mut bc), PacketResult::Drop);
    }
}
