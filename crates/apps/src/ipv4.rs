//! The IPv4 router: DIR-24-8 longest-prefix-match lookup (Gupta et al.,
//! INFOCOM'98), as in PacketShader and the paper's IPv4 application.
//!
//! `TBL24` maps the top 24 address bits to either a next hop or (high bit
//! set) an index into 256-entry `TBLlong` blocks indexed by the low 8 bits.
//! Lookup is one memory access for prefixes up to /24 and two beyond —
//! which is why the paper calls the IPv4 router memory-intensive.

use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use nba_core::batch::{anno, Anno, PacketResult};
use nba_core::element::{
    DbInput, DbOutput, Disposition, ElemCtx, Element, ElementEffects, HeaderFact, KernelIo,
    OffloadSpec, Postprocess, SlotClaim,
};
use nba_io::proto::ether::ETHER_HDR_LEN;
use nba_io::Packet;
use nba_sim::{CpuProfile, GpuProfile};

/// "No route" marker inside table entries.
const NO_ROUTE: u16 = 0x7fff;
/// High bit: the entry points into `TBLlong`.
const LONG_FLAG: u16 = 0x8000;

/// A route: prefix, length, next hop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteV4 {
    /// Network prefix (host byte order, upper `len` bits significant).
    pub prefix: u32,
    /// Prefix length, 0..=32.
    pub len: u8,
    /// Next-hop id (maps onto an output port).
    pub next_hop: u16,
}

/// The compiled DIR-24-8 table.
pub struct RoutingTableV4 {
    tbl24: Vec<u16>,
    tbl_long: Vec<u16>,
    routes: Vec<RouteV4>,
}

impl RoutingTableV4 {
    /// Builds the table from a route list (longest prefix wins).
    ///
    /// # Panics
    ///
    /// Panics if a prefix length exceeds 32 or a next hop uses the marker
    /// bits.
    pub fn build(routes: &[RouteV4]) -> RoutingTableV4 {
        let mut tbl24 = vec![NO_ROUTE; 1 << 24];
        let mut tbl_long: Vec<u16> = Vec::new();
        // Insert in ascending prefix-length order so longer prefixes
        // overwrite shorter ones.
        let mut sorted: Vec<RouteV4> = routes.to_vec();
        sorted.sort_by_key(|r| r.len);
        for r in &sorted {
            assert!(r.len <= 32, "prefix length {} out of range", r.len);
            assert!(
                r.next_hop & (LONG_FLAG | NO_ROUTE) != LONG_FLAG && r.next_hop < NO_ROUTE,
                "next hop {} collides with table markers",
                r.next_hop
            );
            if r.len <= 24 {
                let shift = 24 - u32::from(r.len);
                let base = (r.prefix >> 8) >> shift << shift;
                let count = 1usize << shift;
                for slot in &mut tbl24[base as usize..base as usize + count] {
                    // A /<=24 route must not clobber existing TBLlong
                    // blocks created by longer prefixes... but since we
                    // insert short-to-long, blocks do not exist yet.
                    *slot = r.next_hop;
                }
            } else {
                let idx24 = (r.prefix >> 8) as usize;
                let cur = tbl24[idx24];
                let block = if cur & LONG_FLAG != 0 {
                    (cur & !LONG_FLAG) as usize
                } else {
                    // Materialize a block seeded with the current entry.
                    let block = tbl_long.len() / 256;
                    tbl_long.extend(std::iter::repeat_n(cur, 256));
                    tbl24[idx24] = LONG_FLAG | block as u16;
                    block
                };
                let shift = 32 - u32::from(r.len);
                let low = (r.prefix & 0xff) >> shift << shift;
                let count = 1usize << shift;
                let start = block * 256 + low as usize;
                for slot in &mut tbl_long[start..start + count] {
                    *slot = r.next_hop;
                }
            }
        }
        RoutingTableV4 {
            tbl24,
            tbl_long,
            routes: sorted,
        }
    }

    /// Generates a random-but-reproducible table: a default route plus
    /// `n` prefixes spread over /8../28 (a few percent beyond /24 to
    /// exercise `TBLlong`), next hops in `0..next_hops`.
    pub fn random(seed: u64, n: usize, next_hops: u16) -> RoutingTableV4 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut routes = vec![RouteV4 {
            prefix: 0,
            len: 0,
            next_hop: rng.gen_range(0..next_hops),
        }];
        // A default-free-zone-like coverage layer: every /8 is routed, so
        // random traffic spreads over all next hops (and output ports)
        // instead of collapsing onto the default route.
        for b in 0u32..=255 {
            routes.push(RouteV4 {
                prefix: b << 24,
                len: 8,
                next_hop: rng.gen_range(0..next_hops),
            });
        }
        for _ in 0..n {
            let len = match rng.gen_range(0..100) {
                0..=4 => rng.gen_range(9..=15),
                5..=89 => rng.gen_range(16..=24),
                _ => rng.gen_range(25..=28),
            };
            let prefix = rng.gen::<u32>() >> (32 - len) << (32 - len);
            routes.push(RouteV4 {
                prefix,
                len: len as u8,
                next_hop: rng.gen_range(0..next_hops),
            });
        }
        RoutingTableV4::build(&routes)
    }

    /// Looks up the next hop for `dst` (1-2 memory accesses).
    #[inline]
    pub fn lookup(&self, dst: u32) -> Option<u16> {
        let e = self.tbl24[(dst >> 8) as usize];
        let hop = if e & LONG_FLAG != 0 {
            self.tbl_long[((e & !LONG_FLAG) as usize) * 256 + (dst & 0xff) as usize]
        } else {
            e
        };
        if hop == NO_ROUTE {
            None
        } else {
            Some(hop)
        }
    }

    /// Linear-scan longest-prefix match (test oracle).
    pub fn lookup_linear(&self, dst: u32) -> Option<u16> {
        let mut best: Option<(u8, u16)> = None;
        for r in &self.routes {
            let mask = if r.len == 0 {
                0
            } else {
                u32::MAX << (32 - u32::from(r.len))
            };
            if dst & mask == r.prefix & mask {
                // Ties resolve to the later route, matching build order.
                match best {
                    Some((l, _)) if l > r.len => {}
                    _ => best = Some((r.len, r.next_hop)),
                }
            }
        }
        best.map(|(_, h)| h)
    }

    /// Number of TBLlong blocks materialized.
    pub fn long_blocks(&self) -> usize {
        self.tbl_long.len() / 256
    }
}

impl std::fmt::Debug for RoutingTableV4 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RoutingTableV4")
            .field("routes", &self.routes.len())
            .field("long_blocks", &self.long_blocks())
            .finish()
    }
}

/// Parses a routes file: one `prefix/len next_hop` per line, `#` comments.
///
/// ```text
/// # destination        next hop
/// 0.0.0.0/0            0
/// 10.0.0.0/8           3
/// 192.168.1.128/25     7
/// ```
pub fn parse_routes_v4(text: &str) -> Result<Vec<RouteV4>, String> {
    let mut routes = Vec::new();
    for (lno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (dest, hop) = (parts.next(), parts.next());
        let (Some(dest), Some(hop)) = (dest, hop) else {
            return Err(format!("line {}: expected 'prefix/len hop'", lno + 1));
        };
        let (addr, len) = dest
            .split_once('/')
            .ok_or_else(|| format!("line {}: missing /len", lno + 1))?;
        let len: u8 = len
            .parse()
            .ok()
            .filter(|l| *l <= 32)
            .ok_or_else(|| format!("line {}: bad prefix length {len:?}", lno + 1))?;
        let mut octets = [0u8; 4];
        let mut it = addr.split('.');
        for o in &mut octets {
            *o = it
                .next()
                .and_then(|x| x.parse().ok())
                .ok_or_else(|| format!("line {}: bad address {addr:?}", lno + 1))?;
        }
        if it.next().is_some() {
            return Err(format!("line {}: bad address {addr:?}", lno + 1));
        }
        let next_hop: u16 = hop
            .parse()
            .map_err(|_| format!("line {}: bad next hop {hop:?}", lno + 1))?;
        routes.push(RouteV4 {
            prefix: u32::from_be_bytes(octets),
            len,
            next_hop,
        });
    }
    if routes.is_empty() {
        return Err("no routes in file".to_owned());
    }
    Ok(routes)
}

/// Byte offset of the IPv4 destination address in an Ethernet frame.
const DST_OFFSET: usize = ETHER_HDR_LEN + 16;

/// The IPv4 lookup element (offloadable).
///
/// Writes the routing decision into the [`anno::IFACE_OUT`] annotation —
/// the framework, not the element, owns the port mapping (§3.2).
pub struct IPLookup {
    table: Arc<RoutingTableV4>,
    ports: u16,
}

impl IPLookup {
    /// Creates a lookup element over a shared table, mapping next hops onto
    /// `ports` output ports.
    ///
    /// # Panics
    ///
    /// Panics if `ports` is zero.
    pub fn new(table: Arc<RoutingTableV4>, ports: u16) -> IPLookup {
        assert!(ports > 0);
        IPLookup { table, ports }
    }

    /// The shared table.
    pub fn table(&self) -> &Arc<RoutingTableV4> {
        &self.table
    }
}

impl Element for IPLookup {
    fn class_name(&self) -> &'static str {
        "IPLookup"
    }

    // The CPU path writes the next-hop port; post_offload reads the slot
    // the kernel's annotation postprocess filled.
    fn slot_claims(&self) -> &'static [SlotClaim] {
        const CLAIMS: &[SlotClaim] = &[
            SlotClaim::writes(anno::IFACE_OUT),
            SlotClaim::reads(anno::IFACE_OUT),
        ];
        CLAIMS
    }

    fn process(&mut self, _: &mut ElemCtx<'_>, pkt: &mut Packet, anno: &mut Anno) -> PacketResult {
        let data = pkt.data();
        if data.len() < DST_OFFSET + 4 {
            return PacketResult::Drop;
        }
        let dst = u32::from_be_bytes(data[DST_OFFSET..DST_OFFSET + 4].try_into().unwrap());
        match self.table.lookup(dst) {
            Some(hop) => {
                anno.set(anno::IFACE_OUT, u64::from(hop % self.ports));
                PacketResult::Out(0)
            }
            None => PacketResult::Drop,
        }
    }

    fn cpu_profile(&self) -> CpuProfile {
        // Two dependent memory accesses over a 32 MB table: cache-hostile.
        CpuProfile::fixed(112)
    }

    // Trusts the destination-address field: must run behind a header
    // validator; packets with no matching route drop.
    fn effects(&self) -> ElementEffects {
        const REQ: &[HeaderFact] = &[HeaderFact::Ipv4Valid];
        ElementEffects {
            requires: REQ,
            disposition: Disposition::MayDrop,
            ..ElementEffects::default()
        }
    }

    fn offload(&self) -> Option<OffloadSpec> {
        let table = self.table.clone();
        let ports = self.ports;
        Some(OffloadSpec {
            input: DbInput::PartialPacket {
                offset: DST_OFFSET,
                len: 4,
            },
            output: DbOutput::PerItem { len: 8 },
            gpu: GpuProfile {
                // Two dependent global-memory reads per lane.
                fixed_ns: 900.0,
                ns_per_byte: 0.0,
            },
            kernel: Arc::new(move |io: KernelIo<'_>| {
                for i in 0..io.items {
                    let item = io.item_in(i);
                    let hop = if item.len() == 4 {
                        let dst = u32::from_be_bytes(item.try_into().unwrap());
                        table.lookup(dst).map(|h| h % ports)
                    } else {
                        None
                    };
                    // Drop-marker u64::MAX is translated by postprocessing
                    // consumers; routed packets carry the port.
                    let v = hop.map_or(u64::MAX, u64::from);
                    let r = io.item_out_range(i);
                    io.output[r].copy_from_slice(&v.to_le_bytes());
                }
            }),
            heavy: false,
            postprocess: Postprocess::Annotation(anno::IFACE_OUT),
        })
    }

    fn post_offload(&mut self, _: &mut ElemCtx<'_>, batch: &mut nba_core::batch::PacketBatch) {
        // The kernel marks lookup misses with u64::MAX: drop those.
        let live: Vec<usize> = batch.live_indices().collect();
        for i in live {
            if batch.anno(i).get(anno::IFACE_OUT) == u64::MAX {
                batch.set_result(i, PacketResult::Drop);
            } else {
                batch.set_result(i, PacketResult::Out(0));
            }
        }
    }
}

impl std::fmt::Debug for IPLookup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IPLookup")
            .field("table", &self.table)
            .field("ports", &self.ports)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{ctx_harness, run_one_anno};
    use nba_io::proto::FrameBuilder;

    fn route(p: &str, len: u8, hop: u16) -> RouteV4 {
        let parts: Vec<u8> = p.split('.').map(|x| x.parse().unwrap()).collect();
        RouteV4 {
            prefix: u32::from_be_bytes([parts[0], parts[1], parts[2], parts[3]]),
            len,
            next_hop: hop,
        }
    }

    #[test]
    fn routes_file_parses_and_builds() {
        let t = parse_routes_v4("# demo\n0.0.0.0/0 0\n10.0.0.0/8 3\n192.168.1.128/25 7 # deep\n")
            .unwrap();
        assert_eq!(t.len(), 3);
        let table = RoutingTableV4::build(&t);
        assert_eq!(table.lookup(u32::from_be_bytes([10, 1, 2, 3])), Some(3));
        assert_eq!(
            table.lookup(u32::from_be_bytes([192, 168, 1, 200])),
            Some(7)
        );
        assert_eq!(table.lookup(u32::from_be_bytes([8, 8, 8, 8])), Some(0));
    }

    #[test]
    fn routes_file_errors_carry_lines() {
        assert!(parse_routes_v4("").is_err());
        let e = parse_routes_v4("10.0.0.0/33 1").unwrap_err();
        assert!(e.contains("line 1"), "{e}");
        let e = parse_routes_v4("10.0.0.0/8 1\n10.0.0/8 2").unwrap_err();
        assert!(e.contains("line 2"), "{e}");
        let e = parse_routes_v4("10.0.0.0/8").unwrap_err();
        assert!(e.contains("expected"), "{e}");
    }

    #[test]
    fn longest_prefix_wins() {
        let t = RoutingTableV4::build(&[
            route("10.0.0.0", 8, 1),
            route("10.1.0.0", 16, 2),
            route("10.1.1.0", 24, 3),
            route("10.1.1.128", 25, 4),
            route("10.1.1.192", 27, 5),
        ]);
        assert_eq!(t.lookup(u32::from_be_bytes([10, 9, 9, 9])), Some(1));
        assert_eq!(t.lookup(u32::from_be_bytes([10, 1, 9, 9])), Some(2));
        assert_eq!(t.lookup(u32::from_be_bytes([10, 1, 1, 9])), Some(3));
        assert_eq!(t.lookup(u32::from_be_bytes([10, 1, 1, 129])), Some(4));
        assert_eq!(t.lookup(u32::from_be_bytes([10, 1, 1, 200])), Some(5));
        assert_eq!(t.lookup(u32::from_be_bytes([11, 0, 0, 1])), None);
        assert!(t.long_blocks() >= 1);
    }

    #[test]
    fn matches_linear_oracle_on_random_tables() {
        let t = RoutingTableV4::random(7, 800, 64);
        let mut rng = SmallRng::seed_from_u64(99);
        for _ in 0..4_000 {
            let dst: u32 = rng.gen();
            assert_eq!(t.lookup(dst), t.lookup_linear(dst), "dst = {dst:#x}");
        }
    }

    #[test]
    fn random_table_has_default_route() {
        let t = RoutingTableV4::random(3, 100, 8);
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..1000 {
            assert!(t.lookup(rng.gen()).is_some());
        }
    }

    #[test]
    fn element_sets_out_port_annotation() {
        let t = Arc::new(RoutingTableV4::build(&[route("0.0.0.0", 0, 13)]));
        let mut el = IPLookup::new(t, 8);
        let (nls, insp) = ctx_harness();
        let mut f = vec![0u8; 64];
        FrameBuilder::default().build_ipv4(&mut f, 64, 1, 0xc0a80001);
        let mut pkt = Packet::from_bytes(&f);
        let (r, anno_set) = run_one_anno(&mut el, &nls, &insp, &mut pkt);
        assert_eq!(r, PacketResult::Out(0));
        assert_eq!(anno_set.get(anno::IFACE_OUT), 13 % 8);
    }

    #[test]
    fn gpu_kernel_agrees_with_cpu_path() {
        let t = Arc::new(RoutingTableV4::random(11, 500, 16));
        let el = IPLookup::new(t.clone(), 8);
        let spec = el.offload().unwrap();
        let mut rng = SmallRng::seed_from_u64(1);
        let dsts: Vec<u32> = (0..256).map(|_| rng.gen()).collect();
        let segments: Vec<[u8; 4]> = dsts.iter().map(|d| d.to_be_bytes()).collect();
        let seg_refs: Vec<&[u8]> = segments.iter().map(|s| s.as_slice()).collect();
        let out_lens = vec![8usize; dsts.len()];
        let (staged, out_len) = KernelIo::stage(&seg_refs, &out_lens);
        let mut out = vec![0u8; out_len];
        (spec.kernel)(KernelIo::parse(&staged, &mut out));
        for (i, dst) in dsts.iter().enumerate() {
            let got = u64::from_le_bytes(out[i * 8..i * 8 + 8].try_into().unwrap());
            let expect = t.lookup(*dst).map_or(u64::MAX, |h| u64::from(h % 8));
            assert_eq!(got, expect);
        }
    }

    #[test]
    fn short_packet_dropped() {
        let t = Arc::new(RoutingTableV4::random(1, 10, 4));
        let mut el = IPLookup::new(t, 4);
        let (nls, insp) = ctx_harness();
        let mut pkt = Packet::from_bytes(&[0u8; 20]);
        let (r, _) = run_one_anno(&mut el, &nls, &insp, &mut pkt);
        assert_eq!(r, PacketResult::Drop);
    }
}
