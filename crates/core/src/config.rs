//! The pipeline configuration language (§3.2).
//!
//! NBA "takes advantage of the Click configuration language to compose its
//! elements, with a minor syntax modification to ease parsing element
//! configuration parameters by forcing quotation marks around them". This
//! module implements that dialect:
//!
//! ```text
//! // Declarations:  name :: Class("param1", "param2");
//! src  :: FromInput();
//! chk  :: CheckIPHeader();
//! rt   :: IPLookup("seed=42", "entries=65536");
//! out  :: ToOutput();
//!
//! // Connections (with optional output ports in brackets):
//! src -> chk;
//! chk [0] -> rt -> out;
//! chk [1] -> Discard;
//! ```
//!
//! `FromInput`, `ToOutput`, and `Discard` are framework pseudo-elements:
//! the packet source, the transmit sink (which routes by the
//! [`crate::batch::anno::IFACE_OUT`] annotation), and the drop sink. They
//! carry the hardware resource mapping so user elements never need
//! multi-edge branches for resource selection (§3.2, Figure 5).

use std::collections::HashMap;
use std::sync::Arc;

use crate::element::Element;
use crate::graph::{BranchPolicy, ElementGraph, GraphBuilder, NodeId};
use crate::lint::{Code, Diagnostic, LintReport, SourceMap};

/// An element factory: builds an element from its quoted parameters.
pub type Factory = Arc<dyn Fn(&[String]) -> Result<Box<dyn Element>, String> + Send + Sync>;

/// Maps class names to factories.
#[derive(Clone, Default)]
pub struct ElementRegistry {
    factories: HashMap<String, Factory>,
}

impl ElementRegistry {
    /// Creates an empty registry.
    pub fn new() -> ElementRegistry {
        ElementRegistry::default()
    }

    /// Registers a factory under `class`.
    pub fn register<F>(&mut self, class: &str, f: F)
    where
        F: Fn(&[String]) -> Result<Box<dyn Element>, String> + Send + Sync + 'static,
    {
        self.factories.insert(class.to_owned(), Arc::new(f));
    }

    /// Looks up a factory.
    pub fn get(&self, class: &str) -> Option<&Factory> {
        self.factories.get(class)
    }

    /// Registered class names (sorted, for diagnostics).
    pub fn classes(&self) -> Vec<String> {
        let mut v: Vec<String> = self.factories.keys().cloned().collect();
        v.sort();
        v
    }
}

impl std::fmt::Debug for ElementRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ElementRegistry({} classes)", self.factories.len())
    }
}

/// Configuration parse/build errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// Human-readable description.
    pub msg: String,
    /// Line number (1-based) where the problem was found.
    pub line: usize,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ConfigError {}

// --- Lexer ---

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Str(String),
    Num(usize),
    ColonColon,
    Arrow,
    LParen,
    RParen,
    LBracket,
    RBracket,
    Comma,
    Semi,
}

fn lex(src: &str) -> Result<Vec<(Tok, usize)>, ConfigError> {
    let mut toks = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0;
    let mut line = 1;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'#' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                i += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(ConfigError {
                            msg: "unterminated block comment".to_owned(),
                            line,
                        });
                    }
                    if bytes[i] == b'\n' {
                        line += 1;
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            b':' if bytes.get(i + 1) == Some(&b':') => {
                toks.push((Tok::ColonColon, line));
                i += 2;
            }
            b'-' if bytes.get(i + 1) == Some(&b'>') => {
                toks.push((Tok::Arrow, line));
                i += 2;
            }
            b'(' => {
                toks.push((Tok::LParen, line));
                i += 1;
            }
            b')' => {
                toks.push((Tok::RParen, line));
                i += 1;
            }
            b'[' => {
                toks.push((Tok::LBracket, line));
                i += 1;
            }
            b']' => {
                toks.push((Tok::RBracket, line));
                i += 1;
            }
            b',' => {
                toks.push((Tok::Comma, line));
                i += 1;
            }
            b';' => {
                toks.push((Tok::Semi, line));
                i += 1;
            }
            b'"' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'"' {
                    if bytes[j] == b'\n' {
                        return Err(ConfigError {
                            msg: "newline inside string".to_owned(),
                            line,
                        });
                    }
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(ConfigError {
                        msg: "unterminated string".to_owned(),
                        line,
                    });
                }
                toks.push((Tok::Str(src[start..j].to_owned()), line));
                i = j + 1;
            }
            b'0'..=b'9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let n: usize = src[start..i].parse().map_err(|_| ConfigError {
                    msg: "number too large".to_owned(),
                    line,
                })?;
                toks.push((Tok::Num(n), line));
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                toks.push((Tok::Ident(src[start..i].to_owned()), line));
            }
            other => {
                return Err(ConfigError {
                    msg: format!("unexpected character {:?}", other as char),
                    line,
                })
            }
        }
    }
    Ok(toks)
}

// --- Parser / builder ---

#[derive(Debug)]
struct Decl {
    class: String,
    params: Vec<String>,
    line: usize,
}

/// One `from [port] -> to` hop, with the line of its connection statement
/// so the assembler and the linter can report token-accurate spans.
#[derive(Debug)]
struct Conn {
    from: String,
    port: usize,
    to: String,
    line: usize,
}

/// A graph built from configuration text together with its `nba-lint`
/// report and source map (produced by [`build_graph_checked`]).
#[derive(Debug)]
pub struct CheckedGraph {
    /// The wired pipeline replica.
    pub graph: ElementGraph,
    /// All `nba-lint` findings, warnings included.
    pub report: LintReport,
    /// Node/connection → configuration-line mapping.
    pub source: SourceMap,
}

/// Parses a configuration and builds a ready-to-run graph, rejecting any
/// pipeline the `nba-lint` static verifier finds unsound (`Error`-severity
/// diagnostics become [`ConfigError`]s with the offending source line;
/// warnings are available via [`build_graph_checked`]).
///
/// Each call produces an independent replica (the runtime builds one per
/// worker thread, §3.2 "replicated pipelines").
pub fn build_graph(
    src: &str,
    registry: &ElementRegistry,
    policy: BranchPolicy,
) -> Result<ElementGraph, ConfigError> {
    let checked = build_graph_checked(src, registry, policy)?;
    if let Some(e) = checked.report.first_error() {
        return Err(ConfigError {
            msg: format!("[{}] {}", e.code, e.message),
            line: e.line.unwrap_or(1),
        });
    }
    Ok(checked.graph)
}

/// Like [`build_graph`], but returns the full `nba-lint` report and the
/// source map instead of failing on `Error` diagnostics — the `probe
/// --check` frontend renders everything, the runtimes decide severity.
/// Parse and wiring errors (syntax, unknown classes, double connections)
/// still fail fast as [`ConfigError`]s.
pub fn build_graph_checked(
    src: &str,
    registry: &ElementRegistry,
    policy: BranchPolicy,
) -> Result<CheckedGraph, ConfigError> {
    let (decls, conns) = parse(src)?;
    let (graph, source, pre) = assemble(&decls, &conns, registry, policy)?;
    let lint = crate::lint::verify_graph(&graph, Some(&source));
    let mut report = LintReport { diagnostics: pre };
    report.diagnostics.extend(lint.diagnostics);
    crate::verify::apply_deep(&graph, Some(&source), &mut report);
    Ok(CheckedGraph {
        graph,
        report,
        source,
    })
}

#[allow(clippy::type_complexity)]
fn parse(src: &str) -> Result<(HashMap<String, Decl>, Vec<Conn>), ConfigError> {
    let toks = lex(src)?;
    let mut pos = 0;

    let mut decls: HashMap<String, Decl> = HashMap::new();
    // Connections by name, plus anonymous uses of pseudo-element classes in
    // connection position.
    let mut conns: Vec<Conn> = Vec::new();

    fn peek(toks: &[(Tok, usize)], pos: usize) -> Option<&Tok> {
        toks.get(pos).map(|(t, _)| t)
    }
    fn line_at(toks: &[(Tok, usize)], pos: usize) -> usize {
        toks.get(pos)
            .or_else(|| toks.last())
            .map(|(_, l)| *l)
            .unwrap_or(1)
    }

    while pos < toks.len() {
        let line = line_at(&toks, pos);
        let Some(Tok::Ident(first)) = peek(&toks, pos) else {
            return Err(ConfigError {
                msg: "expected identifier".to_owned(),
                line,
            });
        };
        let first = first.clone();
        pos += 1;
        match peek(&toks, pos) {
            Some(Tok::ColonColon) => {
                // Declaration.
                pos += 1;
                let Some(Tok::Ident(class)) = peek(&toks, pos) else {
                    // Point at the offending token, not the statement start.
                    return Err(ConfigError {
                        msg: "expected class name after '::'".to_owned(),
                        line: line_at(&toks, pos),
                    });
                };
                let class = class.clone();
                pos += 1;
                let mut params = Vec::new();
                if peek(&toks, pos) == Some(&Tok::LParen) {
                    pos += 1;
                    loop {
                        match peek(&toks, pos) {
                            Some(Tok::RParen) => {
                                pos += 1;
                                break;
                            }
                            Some(Tok::Str(s)) => {
                                params.push(s.clone());
                                pos += 1;
                                if peek(&toks, pos) == Some(&Tok::Comma) {
                                    pos += 1;
                                }
                            }
                            _ => {
                                return Err(ConfigError {
                                    msg: "parameters must be quoted strings".to_owned(),
                                    line: line_at(&toks, pos),
                                })
                            }
                        }
                    }
                }
                if decls.contains_key(&first) {
                    return Err(ConfigError {
                        msg: format!("duplicate declaration of {first:?}"),
                        line,
                    });
                }
                decls.insert(
                    first,
                    Decl {
                        class,
                        params,
                        line,
                    },
                );
                expect_semi(&toks, &mut pos)?;
            }
            Some(Tok::Arrow) | Some(Tok::LBracket) => {
                // Connection chain starting at `first`.
                let mut from = first;
                loop {
                    // Optional output port of `from`.
                    let mut out_port = 0usize;
                    if peek(&toks, pos) == Some(&Tok::LBracket) {
                        pos += 1;
                        let Some(Tok::Num(n)) = peek(&toks, pos) else {
                            return Err(ConfigError {
                                msg: "expected port number".to_owned(),
                                line: line_at(&toks, pos),
                            });
                        };
                        out_port = *n;
                        pos += 1;
                        if peek(&toks, pos) != Some(&Tok::RBracket) {
                            return Err(ConfigError {
                                msg: "expected ']'".to_owned(),
                                line: line_at(&toks, pos),
                            });
                        }
                        pos += 1;
                    }
                    if peek(&toks, pos) != Some(&Tok::Arrow) {
                        break;
                    }
                    pos += 1;
                    // Optional input port of the target (accepted, ignored:
                    // push-only elements have one input).
                    let mut in_port = 0usize;
                    if peek(&toks, pos) == Some(&Tok::LBracket) {
                        pos += 1;
                        let Some(Tok::Num(n)) = peek(&toks, pos) else {
                            return Err(ConfigError {
                                msg: "expected port number".to_owned(),
                                line: line_at(&toks, pos),
                            });
                        };
                        in_port = *n;
                        pos += 1;
                        if peek(&toks, pos) != Some(&Tok::RBracket) {
                            return Err(ConfigError {
                                msg: "expected ']'".to_owned(),
                                line: line_at(&toks, pos),
                            });
                        }
                        pos += 1;
                    }
                    let hop_line = line_at(&toks, pos);
                    let Some(Tok::Ident(to)) = peek(&toks, pos) else {
                        return Err(ConfigError {
                            msg: "expected element name after '->'".to_owned(),
                            line: hop_line,
                        });
                    };
                    let to = to.clone();
                    pos += 1;
                    let _ = in_port; // accepted, ignored: one input per element
                    conns.push(Conn {
                        from: from.clone(),
                        port: out_port,
                        to: to.clone(),
                        line: hop_line,
                    });
                    from = to;
                }
                expect_semi(&toks, &mut pos)?;
            }
            _ => {
                return Err(ConfigError {
                    msg: format!("expected '::' or '->' after {first:?}"),
                    line,
                })
            }
        }
    }

    Ok((decls, conns))
}

fn expect_semi(toks: &[(Tok, usize)], pos: &mut usize) -> Result<(), ConfigError> {
    match toks.get(*pos) {
        Some((Tok::Semi, _)) => {
            *pos += 1;
            Ok(())
        }
        other => Err(ConfigError {
            msg: "expected ';'".to_owned(),
            line: other
                .map(|(_, l)| *l)
                .or_else(|| toks.last().map(|(_, l)| *l))
                .unwrap_or(1),
        }),
    }
}

/// Resolves names (declared or pseudo) and wires the graph, collecting the
/// [`SourceMap`] and pre-wiring diagnostics (`NBA002` arity violations are
/// recorded instead of panicking in [`GraphBuilder::connect`]).
fn assemble(
    decls: &HashMap<String, Decl>,
    conns: &[Conn],
    registry: &ElementRegistry,
    policy: BranchPolicy,
) -> Result<(ElementGraph, SourceMap, Vec<Diagnostic>), ConfigError> {
    #[derive(Debug, Clone, Copy, PartialEq)]
    enum Resolved {
        Real(NodeId),
        FromInput,
        ToOutput,
        Discard,
    }

    let mut gb = GraphBuilder::new();
    gb.branch_policy(policy);

    let mut src = SourceMap::default();
    let mut nodes: HashMap<String, Resolved> = HashMap::new();
    let mut classes: Vec<String> = Vec::new(); // class per node id
    let resolve = |name: &str,
                   use_line: usize,
                   nodes: &mut HashMap<String, Resolved>,
                   gb: &mut GraphBuilder,
                   src: &mut SourceMap,
                   classes: &mut Vec<String>|
     -> Result<Resolved, ConfigError> {
        if let Some(r) = nodes.get(name) {
            return Ok(*r);
        }
        let (class, params, line) = match decls.get(name) {
            Some(d) => (d.class.as_str(), d.params.as_slice(), d.line),
            // Anonymous pseudo-element use: `x -> Discard;` — attribute it
            // to the connection that mentions it.
            None => (name, &[][..], use_line),
        };
        let r = match class {
            "FromInput" => Resolved::FromInput,
            "ToOutput" => Resolved::ToOutput,
            "Discard" => Resolved::Discard,
            _ => {
                let factory = registry.get(class).ok_or_else(|| ConfigError {
                    msg: if decls.contains_key(name) {
                        format!("unknown element class {class:?}")
                    } else {
                        format!("undeclared element {name:?}")
                    },
                    line,
                })?;
                let el = factory(params).map_err(|e| ConfigError {
                    msg: format!("configuring {name:?} ({class}): {e}"),
                    line,
                })?;
                let id = gb.add(el);
                src.node_names.push(name.to_owned());
                src.node_lines.push(line);
                classes.push(class.to_owned());
                Resolved::Real(id)
            }
        };
        nodes.insert(name.to_owned(), r);
        Ok(r)
    };

    let mut pre: Vec<Diagnostic> = Vec::new();
    let mut entry: Option<NodeId> = None;
    for conn in conns {
        let Conn {
            from,
            port,
            to,
            line,
        } = conn;
        let f = resolve(from, *line, &mut nodes, &mut gb, &mut src, &mut classes)?;
        let t = resolve(to, *line, &mut nodes, &mut gb, &mut src, &mut classes)?;
        match (f, t) {
            (Resolved::FromInput, Resolved::Real(n)) => {
                if entry.replace(n).is_some() {
                    return Err(ConfigError {
                        msg: "FromInput connected more than once".to_owned(),
                        line: *line,
                    });
                }
            }
            (Resolved::FromInput, _) => {
                return Err(ConfigError {
                    msg: "FromInput must feed a real element".to_owned(),
                    line: *line,
                });
            }
            (Resolved::Real(n), target) => {
                let ports = gb.output_count_of(n);
                if *port >= ports {
                    // Record NBA002 and leave the port unwired — connect()
                    // would panic on the out-of-range index.
                    pre.push(Diagnostic {
                        code: Code::PortArity,
                        severity: Code::PortArity.severity(),
                        message: format!(
                            "{from:?} ({}) has {ports} output port(s) but the \
                             connection uses port {port}",
                            classes[n.0]
                        ),
                        node: Some(n.0),
                        element: Some(classes[n.0].clone()),
                        line: Some(*line),
                    });
                    continue;
                }
                if !src.connected.insert((n.0, *port)) {
                    return Err(ConfigError {
                        msg: format!("output port {port} of {from:?} connected twice"),
                        line: *line,
                    });
                }
                src.conn_lines.insert((n.0, *port), *line);
                match target {
                    Resolved::Real(m) => {
                        gb.connect(n, *port, m);
                    }
                    Resolved::ToOutput => {
                        gb.connect_exit(n, *port);
                    }
                    Resolved::Discard => {
                        gb.connect_discard(n, *port);
                    }
                    Resolved::FromInput => {
                        return Err(ConfigError {
                            msg: "cannot connect into FromInput".to_owned(),
                            line: *line,
                        });
                    }
                }
            }
            (Resolved::ToOutput, _) | (Resolved::Discard, _) => {
                return Err(ConfigError {
                    msg: format!("{from:?} is a sink and has no outputs"),
                    line: *line,
                });
            }
        }
    }

    // Declared names no connection ever mentioned (the linter reports them
    // as NBA001 — they cannot correspond to graph nodes).
    let mut unused: Vec<(String, String, usize)> = decls
        .iter()
        .filter(|(name, _)| !nodes.contains_key(*name))
        .map(|(name, d)| (name.clone(), d.class.clone(), d.line))
        .collect();
    unused.sort_by_key(|(_, _, line)| *line);
    src.unused_decls = unused;

    let entry = entry.ok_or(ConfigError {
        msg: "configuration needs `FromInput -> <element>`".to_owned(),
        line: 1,
    })?;
    gb.entry(entry);
    let graph = gb.build().map_err(|e| ConfigError {
        msg: e.to_string(),
        line: 1,
    })?;
    Ok((graph, src, pre))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::{Anno, PacketResult};
    use crate::element::ElemCtx;
    use nba_io::Packet;

    struct Nop(&'static str, usize);

    impl Element for Nop {
        fn class_name(&self) -> &'static str {
            self.0
        }
        fn output_count(&self) -> usize {
            self.1
        }
        fn process(&mut self, _: &mut ElemCtx<'_>, _: &mut Packet, _: &mut Anno) -> PacketResult {
            PacketResult::Out(0)
        }
    }

    fn registry() -> ElementRegistry {
        let mut r = ElementRegistry::new();
        r.register("NoOp", |_p| Ok(Box::new(Nop("NoOp", 1))));
        r.register("TwoWay", |_p| Ok(Box::new(Nop("TwoWay", 2))));
        r.register("NeedsParam", |p: &[String]| {
            if p.is_empty() {
                Err("missing parameter".to_owned())
            } else {
                Ok(Box::new(Nop("NeedsParam", 1)) as Box<dyn Element>)
            }
        });
        r
    }

    #[test]
    fn parses_linear_pipeline() {
        let g = build_graph(
            r#"
            // A simple pipeline.
            src :: FromInput();
            a :: NoOp();
            b :: NoOp();
            out :: ToOutput();
            src -> a -> b -> out;
            "#,
            &registry(),
            BranchPolicy::Predict,
        )
        .unwrap();
        assert_eq!(g.len(), 2);
    }

    #[test]
    fn parses_branch_with_ports_and_discard() {
        let g = build_graph(
            r#"
            src :: FromInput();
            chk :: TwoWay();
            fwd :: NoOp();
            out :: ToOutput();
            src -> chk;
            chk [0] -> fwd -> out;
            chk [1] -> Discard;
            "#,
            &registry(),
            BranchPolicy::Predict,
        )
        .unwrap();
        assert_eq!(g.len(), 2);
    }

    #[test]
    fn parameters_are_passed() {
        let err = build_graph(
            r#"
            src :: FromInput();
            x :: NeedsParam();
            src -> x -> ToOutput;
            "#,
            &registry(),
            BranchPolicy::Predict,
        )
        .unwrap_err();
        assert!(err.msg.contains("missing parameter"), "{err}");

        build_graph(
            r#"
            src :: FromInput();
            x :: NeedsParam("value", "another");
            src -> x -> ToOutput;
            "#,
            &registry(),
            BranchPolicy::Predict,
        )
        .unwrap();
    }

    #[test]
    fn unquoted_parameters_rejected() {
        let err = build_graph(
            r#"x :: NeedsParam(42);"#,
            &registry(),
            BranchPolicy::Predict,
        )
        .unwrap_err();
        assert!(err.msg.contains("quoted"), "{err}");
    }

    #[test]
    fn unknown_class_and_undeclared_element_errors() {
        let err = build_graph(
            r#"
            src :: FromInput();
            x :: Mystery();
            src -> x -> ToOutput;
            "#,
            &registry(),
            BranchPolicy::Predict,
        )
        .unwrap_err();
        assert!(err.msg.contains("unknown element class"), "{err}");

        let err = build_graph(
            r#"
            src :: FromInput();
            src -> ghost -> ToOutput;
            "#,
            &registry(),
            BranchPolicy::Predict,
        )
        .unwrap_err();
        assert!(err.msg.contains("undeclared"), "{err}");
    }

    #[test]
    fn requires_from_input() {
        let err = build_graph(
            r#"
            a :: NoOp();
            a -> ToOutput;
            "#,
            &registry(),
            BranchPolicy::Predict,
        )
        .unwrap_err();
        assert!(err.msg.contains("FromInput"), "{err}");
    }

    #[test]
    fn double_connection_rejected() {
        let err = build_graph(
            r#"
            src :: FromInput();
            a :: NoOp();
            b :: NoOp();
            src -> a;
            a -> b;
            a -> ToOutput;
            b -> ToOutput;
            "#,
            &registry(),
            BranchPolicy::Predict,
        )
        .unwrap_err();
        assert!(err.msg.contains("connected twice"), "{err}");
    }

    #[test]
    fn comments_and_whitespace_ignored() {
        build_graph(
            "/* block\ncomment */\nsrc :: FromInput(); # hash comment\na :: NoOp(); // line\nsrc -> a -> ToOutput;",
            &registry(),
            BranchPolicy::Predict,
        )
        .unwrap();
    }

    #[test]
    fn syntax_errors_carry_line_numbers() {
        let err = build_graph(
            "src :: FromInput();\na :: NoOp()\nsrc -> a;",
            &registry(),
            BranchPolicy::Predict,
        )
        .unwrap_err();
        assert_eq!(err.line, 3); // The missing ';' is noticed at `src`.

        let err = build_graph("a :: \"oops\";", &registry(), BranchPolicy::Predict).unwrap_err();
        assert_eq!(err.line, 1);
    }

    #[test]
    fn class_name_error_points_at_offending_token() {
        // The bad token sits on line 2; the statement starts on line 1.
        let err = build_graph("a ::\n42;", &registry(), BranchPolicy::Predict).unwrap_err();
        assert!(err.msg.contains("class name"), "{err}");
        assert_eq!(err.line, 2);
    }

    #[test]
    fn undeclared_element_error_carries_connection_line() {
        let err = build_graph(
            "src :: FromInput();\na :: NoOp();\nsrc -> a -> ghost;",
            &registry(),
            BranchPolicy::Predict,
        )
        .unwrap_err();
        assert!(err.msg.contains("undeclared"), "{err}");
        assert_eq!(err.line, 3);
    }

    #[test]
    fn double_connection_error_carries_connection_line() {
        let err = build_graph(
            "src :: FromInput();\na :: NoOp();\nb :: NoOp();\nsrc -> a;\na -> b;\na -> ToOutput;\nb -> ToOutput;",
            &registry(),
            BranchPolicy::Predict,
        )
        .unwrap_err();
        assert!(err.msg.contains("connected twice"), "{err}");
        assert_eq!(err.line, 6);
    }

    #[test]
    fn sink_in_source_position_carries_connection_line() {
        let err = build_graph(
            "src :: FromInput();\na :: NoOp();\nsrc -> a;\na -> Discard;\nDiscard -> a;",
            &registry(),
            BranchPolicy::Predict,
        )
        .unwrap_err();
        assert!(err.msg.contains("sink"), "{err}");
        assert_eq!(err.line, 5);
    }

    #[test]
    fn port_arity_violation_is_nba002_with_line() {
        let checked = build_graph_checked(
            "src :: FromInput();\nchk :: TwoWay();\nsrc -> chk;\nchk [5] -> ToOutput;\nchk [0] -> ToOutput;\nchk [1] -> Discard;",
            &registry(),
            BranchPolicy::Predict,
        )
        .unwrap();
        let d = checked
            .report
            .with_code(crate::lint::Code::PortArity)
            .next()
            .expect("NBA002");
        assert_eq!(d.line, Some(4));
        assert_eq!(d.element.as_deref(), Some("TwoWay"));
        // The strict frontend refuses the same config outright.
        let err = build_graph(
            "src :: FromInput();\nchk :: TwoWay();\nsrc -> chk;\nchk [5] -> ToOutput;\nchk [0] -> ToOutput;\nchk [1] -> Discard;",
            &registry(),
            BranchPolicy::Predict,
        )
        .unwrap_err();
        assert!(err.msg.contains("NBA002"), "{err}");
        assert_eq!(err.line, 4);
    }

    #[test]
    fn unused_declaration_is_nba001_with_decl_line() {
        let err = build_graph(
            "src :: FromInput();\na :: NoOp();\nlost :: NoOp();\nsrc -> a -> ToOutput;",
            &registry(),
            BranchPolicy::Predict,
        )
        .unwrap_err();
        assert!(err.msg.contains("NBA001"), "{err}");
        assert_eq!(err.line, 3);
    }

    #[test]
    fn checked_build_reports_source_map() {
        let checked = build_graph_checked(
            "src :: FromInput();\na :: NoOp();\nb :: NoOp();\nsrc -> a -> b -> ToOutput;",
            &registry(),
            BranchPolicy::Predict,
        )
        .unwrap();
        assert!(
            checked.report.is_clean(),
            "{}",
            checked.report.render_text()
        );
        assert_eq!(checked.source.name(0), Some("a"));
        assert_eq!(checked.source.name(1), Some("b"));
        assert_eq!(checked.source.node_lines, vec![2, 3]);
    }

    #[test]
    fn duplicate_declaration_rejected() {
        let err = build_graph(
            "a :: NoOp();\na :: NoOp();",
            &registry(),
            BranchPolicy::Predict,
        )
        .unwrap_err();
        assert!(err.msg.contains("duplicate"), "{err}");
    }
}
