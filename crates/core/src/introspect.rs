//! The live introspection plane: a per-shard flight recorder and an
//! in-flight stats endpoint.
//!
//! Both pieces are observation-only — they never touch a packet, a batch,
//! or a balancer decision, so enabling them cannot change what a run
//! produces (the determinism suites assert this).
//!
//! * [`FlightRecorder`] — an always-on, bounded, sampled ring per worker
//!   holding the last N span events plus gauge snapshots (RX-ring depth,
//!   `w`, outstanding offloads). On a containment event — device
//!   quarantine, a contained worker panic, a drop-rate spike — the whole
//!   recorder is snapshotted into a [`FlightDump`] post-mortem artifact
//!   (and optionally a JSON file), so the events *leading up to* the
//!   failure survive it.
//! * [`StatsServer`] — a dependency-free TCP server (std only) serving
//!   `GET /status` (a JSON status document) and `GET /metrics`
//!   (Prometheus text) from a live run, poll-able mid-run.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use nba_io::spsc::RingGauges;
use nba_sim::Time;

use crate::fault::{FaultSnapshot, FaultStats};
use crate::lb::SharedBalancer;
use crate::stats::{LatencyHistogram, SystemInspector};
use crate::supervise::{HealthStats, WorkerHealth};
use crate::telemetry::TraceEvent;
use crate::telemetry::{json_escape, json_f64, merge_histograms, trace_event_json, TimeSample};

// ---------------------------------------------------------------------------
// Flight recorder.
// ---------------------------------------------------------------------------

/// Flight-recorder knobs.
#[derive(Debug, Clone)]
pub struct FlightConfig {
    /// Events retained per worker shard (older events are overwritten).
    pub capacity: usize,
    /// RX events are sampled 1-in-`sample_every` (offload lifecycle events
    /// are always recorded — they are rare and are what post-mortems need).
    pub sample_every: u64,
    /// Dump when a reporter window drops at least this many packets
    /// (`None` disables the drop-spike trigger).
    pub drop_spike: Option<u64>,
    /// Directory for dump JSON artifacts (`None` keeps dumps in-memory
    /// only, still surfaced on the run report).
    pub dir: Option<PathBuf>,
    /// Hard cap on dumps per run (a flapping device must not fill a disk).
    pub max_dumps: usize,
}

impl Default for FlightConfig {
    fn default() -> Self {
        FlightConfig {
            capacity: 256,
            sample_every: 64,
            drop_spike: None,
            dir: None,
            max_dumps: 8,
        }
    }
}

/// One worker's always-on recording state.
#[derive(Debug, Default)]
struct ShardFlight {
    recent: VecDeque<TraceEvent>,
    seen: u64,
    overwritten: u64,
    ring_occupancy: u64,
    ring_high_water: u64,
    enqueue_failed: u64,
    w: f64,
    outstanding: u64,
}

/// The per-shard flight recorder. Cheap enough to stay on for every live
/// run: recording is one uncontended mutex lock and a bounded ring push.
pub struct FlightRecorder {
    cfg: FlightConfig,
    shards: Vec<Mutex<ShardFlight>>,
    dumps: Mutex<Vec<FlightDump>>,
    quarantined: AtomicBool,
    dump_seq: AtomicU64,
}

impl FlightRecorder {
    /// A recorder with one shard per worker.
    pub fn new(workers: usize, cfg: FlightConfig) -> FlightRecorder {
        FlightRecorder {
            shards: (0..workers.max(1)).map(|_| Mutex::default()).collect(),
            dumps: Mutex::new(Vec::new()),
            quarantined: AtomicBool::new(false),
            dump_seq: AtomicU64::new(0),
            cfg,
        }
    }

    /// Worker shards recorded.
    pub fn worker_count(&self) -> usize {
        self.shards.len()
    }

    /// The configured RX sampling period (callers gate their own sampling).
    pub fn sample_every(&self) -> u64 {
        self.cfg.sample_every.max(1)
    }

    /// The configured drop-spike dump threshold.
    pub fn drop_spike(&self) -> Option<u64> {
        self.cfg.drop_spike
    }

    /// Records one event into a shard's bounded ring.
    pub fn record(&self, shard: usize, ev: TraceEvent) {
        let Some(s) = self.shards.get(shard) else {
            return;
        };
        let mut s = s.lock();
        s.seen += 1;
        if s.recent.len() >= self.cfg.capacity.max(1) {
            s.recent.pop_front();
            s.overwritten += 1;
        }
        s.recent.push_back(ev);
    }

    /// Publishes a shard's gauge snapshot (RX-ring depth, balancer `w`,
    /// in-flight offloads) for inclusion in the next dump.
    pub fn update_gauges(
        &self,
        shard: usize,
        occupancy: u64,
        high_water: u64,
        enqueue_failed: u64,
        w: f64,
        outstanding: u64,
    ) {
        if let Some(s) = self.shards.get(shard) {
            let mut s = s.lock();
            s.ring_occupancy = occupancy;
            s.ring_high_water = high_water;
            s.enqueue_failed = enqueue_failed;
            s.w = w;
            s.outstanding = outstanding;
        }
    }

    /// Tracks the device circuit-breaker state for dumps and `/status`.
    pub fn set_quarantined(&self, quarantined: bool) {
        self.quarantined.store(quarantined, Ordering::Relaxed);
    }

    /// Whether the device is currently quarantined.
    pub fn quarantined(&self) -> bool {
        self.quarantined.load(Ordering::Relaxed)
    }

    /// Snapshots every shard into a post-mortem dump. Returns `false` once
    /// the per-run dump cap is reached (the trigger still counted for the
    /// caller; we just refuse to grow without bound).
    pub fn dump(
        &self,
        reason: &str,
        trigger_worker: Option<u32>,
        trigger_span: u64,
        t: Time,
        faults: FaultSnapshot,
    ) -> bool {
        let seq = self.dump_seq.fetch_add(1, Ordering::Relaxed);
        if seq >= self.cfg.max_dumps as u64 {
            return false;
        }
        let shards: Vec<FlightShardDump> = self
            .shards
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let s = s.lock();
                FlightShardDump {
                    shard: i as u32,
                    seen: s.seen,
                    overwritten: s.overwritten,
                    ring_occupancy: s.ring_occupancy,
                    ring_high_water: s.ring_high_water,
                    enqueue_failed: s.enqueue_failed,
                    w: s.w,
                    outstanding: s.outstanding,
                    recent: s.recent.iter().cloned().collect(),
                }
            })
            .collect();
        let dump = FlightDump {
            reason: reason.to_string(),
            t,
            trigger_worker,
            trigger_span,
            quarantined: self.quarantined(),
            faults,
            shards,
        };
        if let Some(dir) = &self.cfg.dir {
            let path = dir.join(format!("flight-{seq:03}-{reason}.json"));
            if let Err(e) =
                std::fs::create_dir_all(dir).and_then(|()| std::fs::write(&path, dump.to_json()))
            {
                eprintln!("nba-flight: failed to write {}: {e}", path.display());
            }
        }
        self.dumps.lock().push(dump);
        true
    }

    /// All dumps taken so far (cloned; the run report keeps its own copy).
    pub fn dumps(&self) -> Vec<FlightDump> {
        self.dumps.lock().clone()
    }
}

/// One shard's state inside a [`FlightDump`].
#[derive(Debug, Clone)]
pub struct FlightShardDump {
    /// Worker (shard) index.
    pub shard: u32,
    /// Events offered to this shard's ring over the run.
    pub seen: u64,
    /// Events lost to the bounded ring before this dump.
    pub overwritten: u64,
    /// Last published RX-ring occupancy (packets queued).
    pub ring_occupancy: u64,
    /// Last published RX-ring high-water mark.
    pub ring_high_water: u64,
    /// Last published enqueue-failure (ring-full drop) count.
    pub enqueue_failed: u64,
    /// Last published balancer offload fraction.
    pub w: f64,
    /// Last published in-flight offload count.
    pub outstanding: u64,
    /// The retained span events, oldest first.
    pub recent: Vec<TraceEvent>,
}

/// A post-mortem snapshot of the whole flight recorder at a containment
/// event.
#[derive(Debug, Clone)]
pub struct FlightDump {
    /// What triggered the dump: `"quarantine"`, `"worker_panic"`, or
    /// `"drop_spike"`.
    pub reason: String,
    /// Elapsed run time at the trigger.
    pub t: Time,
    /// Worker the triggering batch belonged to, when known.
    pub trigger_worker: Option<u32>,
    /// Span id of the triggering batch's current stage (0 when tracing is
    /// off or the trigger has no associated batch).
    pub trigger_span: u64,
    /// Device circuit-breaker state at the trigger.
    pub quarantined: bool,
    /// Fault counters at the trigger.
    pub faults: FaultSnapshot,
    /// Every worker shard's retained events and gauges.
    pub shards: Vec<FlightShardDump>,
}

impl FlightDump {
    /// Renders the dump as a standalone JSON document (dependency-free,
    /// like every exporter in the workspace).
    pub fn to_json(&self) -> String {
        let trigger_worker = match self.trigger_worker {
            Some(w) => w.to_string(),
            None => "null".to_string(),
        };
        let shards: Vec<String> = self
            .shards
            .iter()
            .map(|s| {
                let recent: Vec<String> = s.recent.iter().map(trace_event_json).collect();
                format!(
                    "{{\"shard\":{},\"seen\":{},\"overwritten\":{},\"ring_occupancy\":{},\
                     \"ring_high_water\":{},\"enqueue_failed\":{},\"w\":{},\"outstanding\":{},\
                     \"recent\":[{}]}}",
                    s.shard,
                    s.seen,
                    s.overwritten,
                    s.ring_occupancy,
                    s.ring_high_water,
                    s.enqueue_failed,
                    json_f64(s.w),
                    s.outstanding,
                    recent.join(",")
                )
            })
            .collect();
        format!(
            "{{\"reason\":\"{}\",\"t_ns\":{},\"trigger_worker\":{},\"trigger_span\":{},\
             \"quarantined\":{},\"faults\":{},\"shards\":[{}]}}",
            json_escape(&self.reason),
            self.t.as_ns(),
            trigger_worker,
            self.trigger_span,
            self.quarantined,
            self.faults.to_json(),
            shards.join(",")
        )
    }
}

// ---------------------------------------------------------------------------
// In-flight stats endpoint.
// ---------------------------------------------------------------------------

/// Everything the stats endpoint reads. All handles are shared with the
/// live runtime's threads; every read is a snapshot, never a lock held
/// across packet processing.
pub struct StatsState {
    /// Run epoch (elapsed time base).
    pub started: Instant,
    /// Merged + per-worker counters.
    pub inspector: SystemInspector,
    /// Shared fault accounting.
    pub fstats: Arc<FaultStats>,
    /// The flight recorder (quarantine flag, dump count).
    pub flight: Arc<FlightRecorder>,
    /// Per-worker balancer handles (`w`, balancer self-description).
    pub balancers: Vec<SharedBalancer>,
    /// RX-ring gauges, `[worker][io_thread]`. Each slot is swappable: the
    /// supervisor replaces a gauge when it respawns a crashed worker with a
    /// fresh ring.
    pub rx_gauges: Arc<Vec<Vec<Mutex<RingGauges>>>>,
    /// Ring-full drop counters, per worker.
    pub rx_drops: Arc<Vec<AtomicU64>>,
    /// The reporter's samples so far (the `w` trajectory).
    pub samples: Arc<Mutex<Vec<TimeSample>>>,
    /// Per-worker latency-histogram shards, merged per request.
    pub latency: Arc<Vec<Mutex<LatencyHistogram>>>,
    /// Cost-model drift gauges published by the device thread (all-zero
    /// when drift detection is off).
    pub drift: Arc<crate::audit::DriftGauge>,
    /// Per-worker supervisor health slots (live observed state).
    pub health: Arc<Vec<WorkerHealth>>,
    /// The shared self-healing ledger: sheds, strandings, re-steers,
    /// respawns. All atomics, sampled per request.
    pub hstats: Arc<HealthStats>,
    /// Packets shed toward each worker by the IO overload policy.
    pub shed: Arc<Vec<AtomicU64>>,
    /// The stateful flow plane's registry; its report is `None` (and no
    /// flow metrics are emitted) unless a stateful element registered a
    /// shard.
    pub flows: crate::flow::FlowRegistry,
}

impl StatsState {
    fn shard_gauge(&self, w: usize) -> (u64, u64, u64) {
        let rings = match self.rx_gauges.get(w) {
            Some(r) => r,
            None => return (0, 0, 0),
        };
        let occ = rings.iter().map(|g| g.lock().occupancy() as u64).sum();
        let hw = rings.iter().map(|g| g.lock().high_water() as u64).sum();
        let failed = rings.iter().map(|g| g.lock().enqueue_failed()).sum();
        (occ, hw, failed)
    }

    /// The `/status` JSON document.
    pub fn status_json(&self) -> String {
        let elapsed = self.started.elapsed().as_secs_f64();
        let totals = self.inspector.snapshot();
        let shards: Vec<String> = (0..self.balancers.len())
            .map(|w| {
                let (occ, hw, failed) = self.shard_gauge(w);
                let dropped = self
                    .rx_drops
                    .get(w)
                    .map_or(0, |d| d.load(Ordering::Relaxed));
                let state = self
                    .health
                    .get(w)
                    .map_or("healthy", |slot| slot.observed_state().as_str());
                let b = self.balancers[w].lock();
                format!(
                    "{{\"shard\":{w},\"state\":\"{state}\",\"ring_occupancy\":{occ},\
                     \"ring_high_water\":{hw},\"enqueue_failed\":{failed},\
                     \"rx_dropped\":{dropped},\"w\":{},\"balancer\":{}}}",
                    json_f64(b.offload_fraction()),
                    b.status_json()
                )
            })
            .collect();
        let merged = merge_histograms(
            self.latency
                .iter()
                .map(|m| m.lock().clone())
                .collect::<Vec<_>>(),
        );
        let latency = format!(
            "{{\"count\":{},\"p50_ns\":{},\"p90_ns\":{},\"p99_ns\":{},\"max_ns\":{}}}",
            merged.count(),
            merged.percentile_ns(50.0),
            merged.percentile_ns(90.0),
            merged.percentile_ns(99.0),
            merged.max_ns()
        );
        let trajectory: Vec<String> = self
            .samples
            .lock()
            .iter()
            .map(|s| json_f64(s.offload_fraction))
            .collect();
        // SLO burn from the latest reporter window; null when no SLO is
        // configured (or before the first sample).
        let slo = self
            .samples
            .lock()
            .last()
            .and_then(|s| s.slo)
            .map_or("null".to_string(), |s| {
                format!(
                    "{{\"latency_ok\":{},\"throughput_ok\":{},\"latency_burn\":{},\
                     \"throughput_burn\":{}}}",
                    s.latency_ok,
                    s.throughput_ok,
                    json_f64(s.latency_burn),
                    json_f64(s.throughput_burn)
                )
            });
        let (drift_events, drift_rel, drift_stage) = self.drift.snapshot();
        let drift = format!(
            "{{\"events\":{drift_events},\"rel_err\":{},\"worst_stage\":{}}}",
            json_f64(drift_rel),
            drift_stage.map_or("null".to_string(), |s| format!("\"{}\"", s.as_str()))
        );
        format!(
            "{{\"elapsed_s\":{},\"totals\":{},\"quarantined\":{},\"flight_dumps\":{},\
             \"faults\":{},\"shards\":[{}],\"latency\":{},\"w_trajectory\":[{}],\
             \"slo\":{slo},\"drift\":{drift}}}",
            json_f64(elapsed),
            totals.to_json(),
            self.flight.quarantined(),
            self.flight.dumps().len(),
            self.fstats.snapshot().to_json(),
            shards.join(","),
            latency,
            trajectory.join(",")
        )
    }

    /// The `/metrics` Prometheus text document.
    pub fn prometheus(&self) -> String {
        let totals = self.inspector.snapshot();
        let mut out = String::new();
        let mut scalar = |name: &str, kind: &str, help: &str, value: String| {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} {kind}\n{name} {value}\n"
            ));
        };
        scalar(
            "nba_up",
            "gauge",
            "1 while the run is live.",
            "1".to_string(),
        );
        scalar(
            "nba_tx_packets_total",
            "counter",
            "Packets transmitted.",
            totals.tx_packets.to_string(),
        );
        scalar(
            "nba_dropped_total",
            "counter",
            "Packets dropped by elements.",
            totals.dropped.to_string(),
        );
        scalar(
            "nba_rx_dropped_total",
            "counter",
            "Packets dropped at full RX rings.",
            self.rx_drops
                .iter()
                .map(|d| d.load(Ordering::Relaxed))
                .sum::<u64>()
                .to_string(),
        );
        scalar(
            "nba_offloaded_batches_total",
            "counter",
            "Batches sent to the device thread.",
            totals.offloaded_batches.to_string(),
        );
        scalar(
            "nba_quarantined",
            "gauge",
            "1 while the device circuit breaker is open.",
            u32::from(self.flight.quarantined()).to_string(),
        );
        let (drift_events, drift_rel, _) = self.drift.snapshot();
        scalar(
            "nba_cost_drift_events_total",
            "counter",
            "Cost-model drift events raised.",
            drift_events.to_string(),
        );
        scalar(
            "nba_cost_drift_rel_err",
            "gauge",
            "Smoothed relative error of the offload cost model.",
            json_f64(drift_rel),
        );
        if let Some(slo) = self.samples.lock().last().and_then(|s| s.slo) {
            scalar(
                "nba_slo_latency_burn",
                "gauge",
                "Latency SLO burn rate so far.",
                json_f64(slo.latency_burn),
            );
            scalar(
                "nba_slo_throughput_burn",
                "gauge",
                "Throughput SLO burn rate so far.",
                json_f64(slo.throughput_burn),
            );
            scalar(
                "nba_slo_latency_ok",
                "gauge",
                "1 while the latest window met the latency budget.",
                u32::from(slo.latency_ok).to_string(),
            );
            scalar(
                "nba_slo_throughput_ok",
                "gauge",
                "1 while the latest window met the throughput floor.",
                u32::from(slo.throughput_ok).to_string(),
            );
        }
        let mut per_shard = |name: &str, kind: &str, help: &str, f: &dyn Fn(usize) -> String| {
            out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
            for w in 0..self.balancers.len() {
                out.push_str(&format!("{name}{{shard=\"{w}\"}} {}\n", f(w)));
            }
        };
        per_shard(
            "nba_ring_occupancy",
            "gauge",
            "Packets queued in a worker's RX rings.",
            &|w| self.shard_gauge(w).0.to_string(),
        );
        per_shard(
            "nba_ring_high_water",
            "gauge",
            "High-water mark of a worker's RX rings.",
            &|w| self.shard_gauge(w).1.to_string(),
        );
        per_shard(
            "nba_ring_enqueue_failed_total",
            "counter",
            "Ring-full enqueue failures into a worker's RX rings.",
            &|w| self.shard_gauge(w).2.to_string(),
        );
        per_shard(
            "nba_shard_offload_fraction",
            "gauge",
            "A worker balancer's current offload fraction w.",
            &|w| json_f64(self.balancers[w].lock().offload_fraction()),
        );
        per_shard(
            "nba_shed_total",
            "counter",
            "Packets shed toward the shard by the IO overload policy.",
            &|w| {
                self.shed
                    .get(w)
                    .map_or(0, |c| c.load(Ordering::Relaxed))
                    .to_string()
            },
        );
        // Self-healing plane: live supervisor state per shard plus the
        // shared loss/recovery ledger (same families the post-run
        // Prometheus export renders, so dashboards work on both).
        out.push_str(
            "# HELP nba_worker_state Supervisor state per shard \
             (0=healthy 1=suspect 2=dead 3=recovering)\n# TYPE nba_worker_state gauge\n",
        );
        for (w, slot) in self.health.iter().enumerate() {
            let st = slot.observed_state();
            out.push_str(&format!(
                "nba_worker_state{{shard=\"{w}\",state=\"{}\"}} {}\n",
                st.as_str(),
                st.as_u8()
            ));
        }
        let h = self.hstats.snapshot();
        out.push_str("# HELP nba_shed_packets_total Packets shed by the IO overload policy\n");
        out.push_str("# TYPE nba_shed_packets_total counter\n");
        for (policy, n) in [
            ("drop_tail", h.shed_drop_tail),
            ("priority", h.shed_priority),
            ("probabilistic", h.shed_probabilistic),
        ] {
            out.push_str(&format!(
                "nba_shed_packets_total{{policy=\"{policy}\"}} {n}\n"
            ));
        }
        for (name, help, v) in [
            (
                "nba_lost_in_ring_packets_total",
                "Packets stranded in RX rings of dead workers",
                h.lost_in_ring,
            ),
            (
                "nba_lost_in_flight_packets_total",
                "Offload completions stranded when their worker died",
                h.lost_in_flight,
            ),
            (
                "nba_resteers_total",
                "RSS re-steer operations performed by the supervisor",
                h.resteers,
            ),
            (
                "nba_resteer_buckets_moved_total",
                "RSS indirection buckets moved across all re-steers",
                h.buckets_moved,
            ),
            (
                "nba_worker_respawns_total",
                "Crashed workers respawned by the supervisor",
                h.respawns,
            ),
            (
                "nba_ring_disconnects_total",
                "Dead worker rings observed by IO threads",
                h.ring_disconnects,
            ),
        ] {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} counter\n{name} {v}\n"
            ));
        }
        // Stateful flow plane: live per-shard occupancy and the eviction
        // breakdown, sampled from the registry per request. Absent on
        // flow-free runs so their exposition stays byte-identical.
        if let Some(fl) = self.flows.report() {
            out.push_str("# HELP nba_flows_live Live flow-table entries per worker shard\n");
            out.push_str("# TYPE nba_flows_live gauge\n");
            for (w, s) in &fl.shards {
                out.push_str(&format!("nba_flows_live{{shard=\"{w}\"}} {}\n", s.live));
            }
            let t = fl.totals();
            out.push_str("# HELP nba_flow_evictions_total Flow-table evictions by reason\n");
            out.push_str("# TYPE nba_flow_evictions_total counter\n");
            for (reason, n) in [
                ("idle", t.evict_idle),
                ("embryonic", t.evict_embryonic),
                ("closed", t.evict_closed),
                ("worker_death", t.evict_death),
            ] {
                out.push_str(&format!(
                    "nba_flow_evictions_total{{reason=\"{reason}\"}} {n}\n"
                ));
            }
            out.push_str(&format!(
                "# HELP nba_nat_ports_in_use NAT external ports currently bound\n\
                 # TYPE nba_nat_ports_in_use gauge\nnba_nat_ports_in_use {}\n",
                t.nat_ports_in_use
            ));
        }
        out
    }
}

/// The stats endpoint: binds on [`StatsServer::start`], serves on its own
/// thread until dropped. With port 0 the OS picks; read the real address
/// back with [`StatsServer::bound_addr`].
pub struct StatsServer {
    bound: SocketAddr,
    stop: Arc<AtomicBool>,
    join: Option<std::thread::JoinHandle<()>>,
}

impl StatsServer {
    /// Binds `addr` and starts serving `state` in a background thread.
    pub fn start(addr: &str, state: StatsState) -> std::io::Result<StatsServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let bound = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = stop.clone();
        let join = std::thread::Builder::new()
            .name("nba-stats".into())
            .spawn(move || serve(&listener, &state, &thread_stop))?;
        Ok(StatsServer {
            bound,
            stop,
            join: Some(join),
        })
    }

    /// The actual bound address (resolves port 0).
    pub fn bound_addr(&self) -> SocketAddr {
        self.bound
    }
}

impl Drop for StatsServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

fn serve(listener: &TcpListener, state: &StatsState, stop: &AtomicBool) {
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = handle(stream, state);
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

fn handle(mut stream: TcpStream, state: &StatsState) -> std::io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(Duration::from_millis(250)))?;
    let mut req = Vec::new();
    let mut buf = [0u8; 1024];
    loop {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            break;
        }
        req.extend_from_slice(&buf[..n]);
        if req.windows(4).any(|w| w == b"\r\n\r\n") || req.len() > 8192 {
            break;
        }
    }
    let head = String::from_utf8_lossy(&req);
    let path = head.split_whitespace().nth(1).unwrap_or("/");
    let (status, ctype, body) = match path {
        "/status" => ("200 OK", "application/json", state.status_json()),
        "/metrics" => ("200 OK", "text/plain; version=0.0.4", state.prometheus()),
        "/" => (
            "200 OK",
            "text/plain",
            "nba live stats: GET /status (JSON) or /metrics (Prometheus)\n".to_string(),
        ),
        _ => ("404 Not Found", "text/plain", "not found\n".to_string()),
    };
    write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {ctype}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lb::{self, FixedFraction};
    use crate::stats::Counters;
    use crate::telemetry::TraceEventKind;

    fn ev(span: u64) -> TraceEvent {
        TraceEvent {
            t: Time::from_us(span),
            worker: 0,
            batch: 1,
            node: None,
            kind: TraceEventKind::Rx,
            packets: 1,
            dur: Time::ZERO,
            span,
            parent: 0,
        }
    }

    #[test]
    fn flight_ring_is_bounded_and_counts_overwrites() {
        let fr = FlightRecorder::new(
            1,
            FlightConfig {
                capacity: 4,
                ..FlightConfig::default()
            },
        );
        for s in 1..=7 {
            fr.record(0, ev(s));
        }
        fr.update_gauges(0, 10, 20, 3, 0.5, 2);
        assert!(fr.dump(
            "quarantine",
            Some(0),
            7,
            Time::from_ms(1),
            FaultSnapshot::default()
        ));
        let dumps = fr.dumps();
        assert_eq!(dumps.len(), 1);
        let d = &dumps[0];
        assert_eq!(d.reason, "quarantine");
        assert_eq!(d.trigger_span, 7);
        let s = &d.shards[0];
        assert_eq!(s.seen, 7);
        assert_eq!(s.overwritten, 3);
        let spans: Vec<u64> = s.recent.iter().map(|e| e.span).collect();
        assert_eq!(spans, vec![4, 5, 6, 7]);
        assert_eq!(s.ring_occupancy, 10);
        assert_eq!(s.ring_high_water, 20);
        assert_eq!(s.enqueue_failed, 3);
        assert_eq!(s.outstanding, 2);
        let json = d.to_json();
        assert!(json.contains("\"reason\":\"quarantine\""));
        assert!(json.contains("\"trigger_span\":7"));
        assert!(json.contains("\"kind\":\"rx\""));
    }

    #[test]
    fn dump_count_is_capped() {
        let fr = FlightRecorder::new(
            2,
            FlightConfig {
                max_dumps: 2,
                ..FlightConfig::default()
            },
        );
        assert!(fr.dump("a", None, 0, Time::ZERO, FaultSnapshot::default()));
        assert!(fr.dump("b", None, 0, Time::ZERO, FaultSnapshot::default()));
        assert!(!fr.dump("c", None, 0, Time::ZERO, FaultSnapshot::default()));
        assert_eq!(fr.dumps().len(), 2);
    }

    #[test]
    fn dump_artifact_lands_on_disk() {
        let dir = std::env::temp_dir().join(format!(
            "nba-flight-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let fr = FlightRecorder::new(
            1,
            FlightConfig {
                dir: Some(dir.clone()),
                ..FlightConfig::default()
            },
        );
        fr.record(0, ev(9));
        assert!(fr.dump(
            "worker_panic",
            Some(0),
            9,
            Time::from_ms(2),
            FaultSnapshot::default()
        ));
        let path = dir.join("flight-000-worker_panic.json");
        let text = std::fs::read_to_string(&path).expect("dump file written");
        let doc = crate::json::parse(&text).expect("dump file parses");
        assert_eq!(
            doc.get("reason").and_then(crate::json::Value::as_str),
            Some("worker_panic")
        );
        assert_eq!(
            doc.get("trigger_span").and_then(crate::json::Value::as_u64),
            Some(9)
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn test_state() -> (StatsState, nba_io::spsc::Producer<u32>) {
        let counters = vec![Arc::new(Counters::default())];
        Counters::add(&counters[0].tx_packets, 123);
        let (tx, rx) = nba_io::spsc::channel::<u32>(8);
        for i in 0..3 {
            tx.push(i).unwrap();
        }
        let flight = Arc::new(FlightRecorder::new(1, FlightConfig::default()));
        flight.set_quarantined(true);
        let mut hist = LatencyHistogram::new();
        hist.record_ns(1_000);
        hist.record_ns(2_000);
        let samples = Arc::new(Mutex::new(vec![TimeSample {
            t: Time::from_ms(1),
            tx_packets: 123,
            tx_mpps: 0.1,
            tx_gbps: 0.2,
            dropped: 0,
            rx_dropped: 0,
            latency_ewma_ns: 500,
            offloaded_batches: 4,
            offload_fraction: 0.25,
            gpu_busy: Vec::new(),
            shards: Vec::new(),
            slo: Some(crate::audit::SloSample {
                latency_ok: true,
                throughput_ok: false,
                latency_burn: 0.0,
                throughput_burn: 2.5,
            }),
        }]));
        let state = StatsState {
            started: Instant::now(),
            inspector: SystemInspector::new(counters),
            fstats: Arc::new(FaultStats::default()),
            flight,
            balancers: vec![lb::shared(Box::new(FixedFraction::new(0.25)))],
            rx_gauges: Arc::new(vec![vec![Mutex::new(rx.gauges())]]),
            rx_drops: Arc::new(vec![AtomicU64::new(7)]),
            samples,
            latency: Arc::new(vec![Mutex::new(hist)]),
            drift: Arc::new(crate::audit::DriftGauge::default()),
            health: Arc::new(vec![WorkerHealth::new()]),
            hstats: Arc::new(HealthStats::default()),
            shed: Arc::new(vec![AtomicU64::new(5)]),
            flows: crate::flow::FlowRegistry::new(),
        };
        (state, tx)
    }

    #[test]
    fn status_json_reports_shards_w_and_latency() {
        let (state, _tx) = test_state();
        let doc = crate::json::parse(&state.status_json()).expect("status parses");
        assert_eq!(
            doc.get("totals")
                .and_then(|t| t.get("tx_packets"))
                .and_then(crate::json::Value::as_u64),
            Some(123)
        );
        let shards = doc
            .get("shards")
            .and_then(crate::json::Value::as_arr)
            .unwrap();
        assert_eq!(shards.len(), 1);
        assert_eq!(
            shards[0]
                .get("ring_occupancy")
                .and_then(crate::json::Value::as_u64),
            Some(3)
        );
        assert_eq!(
            shards[0]
                .get("rx_dropped")
                .and_then(crate::json::Value::as_u64),
            Some(7)
        );
        assert_eq!(
            shards[0].get("state").and_then(crate::json::Value::as_str),
            Some("healthy")
        );
        assert_eq!(
            shards[0].get("w").and_then(crate::json::Value::as_f64),
            Some(0.25)
        );
        assert_eq!(
            doc.get("quarantined").and_then(crate::json::Value::as_bool),
            Some(true)
        );
        let traj = doc
            .get("w_trajectory")
            .and_then(crate::json::Value::as_arr)
            .unwrap();
        assert_eq!(traj.len(), 1);
        assert!(
            doc.get("latency")
                .and_then(|l| l.get("count"))
                .and_then(crate::json::Value::as_u64)
                == Some(2)
        );
    }

    #[test]
    fn endpoint_serves_status_and_metrics_over_tcp() {
        let (state, _tx) = test_state();
        let server = StatsServer::start("127.0.0.1:0", state).expect("bind");
        let addr = server.bound_addr();
        let fetch = |path: &str| -> String {
            let mut s = TcpStream::connect(addr).expect("connect");
            write!(s, "GET {path} HTTP/1.1\r\nHost: nba\r\n\r\n").unwrap();
            let mut body = String::new();
            s.read_to_string(&mut body).unwrap();
            body
        };
        let status = fetch("/status");
        assert!(status.starts_with("HTTP/1.1 200 OK"));
        let json = status.split("\r\n\r\n").nth(1).unwrap();
        assert!(crate::json::parse(json).is_ok());
        let metrics = fetch("/metrics");
        assert!(metrics.contains("# HELP nba_ring_occupancy"));
        assert!(metrics.contains("# TYPE nba_ring_occupancy gauge"));
        assert!(metrics.contains("nba_ring_occupancy{shard=\"0\"} 3"));
        assert!(metrics.contains("nba_quarantined 1"));
        assert!(metrics.contains("nba_cost_drift_events_total 0"));
        assert!(metrics.contains("nba_slo_throughput_burn 2.5"));
        assert!(metrics.contains("nba_slo_latency_ok 1"));
        assert!(metrics.contains("nba_worker_state{shard=\"0\",state=\"healthy\"} 0"));
        assert!(metrics.contains("nba_shed_total{shard=\"0\"} 5"));
        assert!(metrics.contains("nba_worker_respawns_total 0"));
        assert!(fetch("/nope").starts_with("HTTP/1.1 404"));
    }

    #[test]
    fn status_json_reports_slo_and_drift() {
        let (state, _tx) = test_state();
        let doc = crate::json::parse(&state.status_json()).expect("status parses");
        let slo = doc.get("slo").expect("slo object");
        assert_eq!(
            slo.get("latency_ok").and_then(crate::json::Value::as_bool),
            Some(true)
        );
        assert_eq!(
            slo.get("throughput_burn")
                .and_then(crate::json::Value::as_f64),
            Some(2.5)
        );
        let drift = doc.get("drift").expect("drift object");
        assert_eq!(
            drift.get("events").and_then(crate::json::Value::as_u64),
            Some(0)
        );
    }

    #[test]
    fn unknown_path_gets_proper_404_with_content_length() {
        let (state, _tx) = test_state();
        let server = StatsServer::start("127.0.0.1:0", state).expect("bind");
        let mut s = TcpStream::connect(server.bound_addr()).expect("connect");
        write!(
            s,
            "GET /definitely-not-a-path HTTP/1.1\r\nHost: nba\r\n\r\n"
        )
        .unwrap();
        let mut resp = String::new();
        s.read_to_string(&mut resp).unwrap();
        let (head, body) = resp.split_once("\r\n\r\n").expect("header/body split");
        assert!(head.starts_with("HTTP/1.1 404 Not Found\r\n"));
        let content_length: usize = head
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .expect("Content-Length header")
            .trim()
            .parse()
            .expect("numeric Content-Length");
        assert_eq!(content_length, body.len());
        assert_eq!(body, "not found\n");
    }
}
