//! Golden-file test of the lint/verify JSON report: the exact bytes a
//! fixed diagnostic mix renders to, pinned in `tests/golden/lint_report.json`.
//! The envelope is schema-versioned (`schema_version`), so any change to
//! the wire shape — a renamed key, a new field, a different escape — shows
//! up as a diff here and forces a deliberate re-bless (and, for breaking
//! changes, a `SCHEMA_VERSION` bump).
//!
//! Re-bless after an intentional format change with
//! `NBA_BLESS=1 cargo test -p nba-core --test lint_json_golden`.

use nba_core::batch::{anno, Anno, PacketResult};
use nba_core::element::{ElemCtx, Element, SlotClaim};
use nba_core::graph::GraphBuilder;
use nba_core::lint::SCHEMA_VERSION;
use nba_io::Packet;

/// Minimal fixture element: everything static, nothing behavioral.
struct Fx {
    name: &'static str,
    ports: usize,
    claims: &'static [SlotClaim],
}

impl Element for Fx {
    fn class_name(&self) -> &'static str {
        self.name
    }
    fn output_count(&self) -> usize {
        self.ports
    }
    fn slot_claims(&self) -> &'static [SlotClaim] {
        self.claims
    }
    fn process(&mut self, _: &mut ElemCtx<'_>, _: &mut Packet, _: &mut Anno) -> PacketResult {
        PacketResult::Out(0)
    }
}

/// A graph exercising several diagnostic shapes at once: a demoted-to-warn
/// collision (`NBA012` on disjoint branches, `[deep: ...]` suffix) and a
/// path-family finding (`NBA040` with an element-chain witness) whose
/// message carries JSON-relevant `"quotes"` via a class name.
fn fixture_json() -> String {
    static W1: &[SlotClaim] = &[SlotClaim::writes(anno::AC_MATCH)];
    static W2: &[SlotClaim] = &[SlotClaim::writes(anno::AC_MATCH)];
    static R: &[SlotClaim] = &[SlotClaim::reads(anno::AC_MATCH)];
    let mut gb = GraphBuilder::new();
    let fork = gb.add(Box::new(Fx {
        name: "Fork \"3-way\"",
        ports: 3,
        claims: &[],
    }));
    let wa = gb.add(Box::new(Fx {
        name: "StampA",
        ports: 1,
        claims: W1,
    }));
    let wb = gb.add(Box::new(Fx {
        name: "StampB",
        ports: 1,
        claims: W2,
    }));
    let rd = gb.add(Box::new(Fx {
        name: "Reader",
        ports: 1,
        claims: R,
    }));
    gb.connect(fork, 0, wa);
    gb.connect(fork, 1, wb);
    gb.connect(wa, 0, rd);
    // The third arm skips both writers: `Reader`'s slot read is not
    // dominated on it, producing the NBA040 witness chain.
    gb.connect(fork, 2, rd);
    gb.connect_exit(rd, 0);
    gb.connect_exit(wb, 0);
    let g = gb.build().unwrap();
    g.verify_deep().render_json()
}

#[test]
fn lint_json_matches_golden() {
    let got = fixture_json();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/lint_report.json");
    if std::env::var("NBA_BLESS").is_ok() {
        std::fs::write(path, &got).unwrap();
    }
    let want = std::fs::read_to_string(path).expect("golden file missing; create with NBA_BLESS=1");
    assert_eq!(
        got, want,
        "lint JSON drifted from tests/golden/lint_report.json; if the \
         change is intentional, bump nba_core::lint::SCHEMA_VERSION for \
         breaking shape changes and re-bless with NBA_BLESS=1"
    );
}

#[test]
fn schema_version_is_pinned_in_envelope() {
    let got = fixture_json();
    // The envelope must lead with the schema version so readers can
    // dispatch before touching diagnostics.
    assert!(
        got.starts_with(&format!("{{\"schema_version\":{SCHEMA_VERSION},")),
        "{got}"
    );
    assert_eq!(
        SCHEMA_VERSION, 1,
        "schema bumped: update this pin and the docs"
    );
}
