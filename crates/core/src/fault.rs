//! Fault tolerance for the offload path: the degradation ladder.
//!
//! A device fault degrades throughput toward the CPU-only curve, never
//! correctness or liveness. The ladder, identical in the DES and live
//! runtimes:
//!
//! 1. **retry** — transient errors are retried with a bounded backoff,
//! 2. **fallback** — failed/timed-out/corrupted tasks re-execute on the CPU
//!    path of the same offloadable element (bit-identical output, since
//!    kernels are functionally equivalent host closures), so in-flight
//!    packets are never lost,
//! 3. **quarantine** — consecutive failures trip a [`CircuitBreaker`]; the
//!    load balancer is told the device is unhealthy and drives `w` to 0,
//! 4. **re-admit** — after the quarantine interval, half-open probes test
//!    the device; a success re-closes the breaker and the balancer resumes
//!    its hill-climb.
//!
//! Fault *injection* (the seeded [`FaultPlan`]/[`FaultInjector`]) lives in
//! the GPU crate next to the shim it breaks; this module owns detection,
//! recovery policy, and accounting.

use std::sync::atomic::{AtomicU64, Ordering};

use nba_sim::Time;

pub use nba_gpu::fault::{
    FaultInjector, FaultKind, FaultPlan, PlanParseError, WorkerKill, WorkerStall,
};

use crate::config::ConfigError;
use crate::supervise::SupervisorConfig;

/// Parses a `--faults` flag value into a [`FaultPlan`], converting the
/// spanned [`PlanParseError`] into the repo's [`ConfigError`] convention:
/// the message embeds the exact offending token (byte span into the flag
/// value) so the CLI error points at what to fix.
pub fn parse_faults_flag(spec: &str) -> Result<FaultPlan, ConfigError> {
    FaultPlan::parse_spanned(spec).map_err(|e| {
        let token = spec.get(e.offset..e.offset + e.len).unwrap_or("");
        ConfigError {
            msg: format!(
                "--faults: {} (at byte {}..{}: `{}`)",
                e.msg,
                e.offset,
                e.offset + e.len,
                token
            ),
            line: 1,
        }
    })
}

/// Knobs of the degradation ladder, grouped under
/// [`crate::runtime::RuntimeConfig`].
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// What to inject (inactive by default — a clean run).
    pub plan: FaultPlan,
    /// Worker-plane supervision knobs (watchdog tick, stall budget,
    /// respawn policy) — the worker analogue of the breaker fields below.
    pub supervisor: SupervisorConfig,
    /// Watchdog deadline per in-flight device task: a task whose
    /// completion has not landed this long after submission is declared
    /// failed and its batches fall back to the CPU path.
    pub watchdog: Time,
    /// Retries (with backoff) of a transient attempt before fallback.
    pub max_retries: u32,
    /// Delay before each retry attempt.
    pub retry_backoff: Time,
    /// Consecutive task failures that trip the device into quarantine.
    pub breaker_threshold: u32,
    /// Quarantine length before a half-open probe is admitted.
    pub quarantine: Time,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            plan: FaultPlan::default(),
            supervisor: SupervisorConfig::default(),
            watchdog: Time::from_ms(2),
            max_retries: 2,
            retry_backoff: Time::from_us(50),
            breaker_threshold: 3,
            quarantine: Time::from_ms(5),
        }
    }
}

/// Shared fault accounting (relaxed atomics, mirroring
/// [`crate::stats::Counters`]): written by device threads and workers,
/// snapshotted into reports.
#[derive(Debug, Default)]
pub struct FaultStats {
    /// Injected task timeouts (watchdog-detected).
    pub injected_timeout: AtomicU64,
    /// Injected transient errors (includes retried attempts).
    pub injected_transient: AtomicU64,
    /// Injected corrupted output blocks.
    pub injected_corrupt: AtomicU64,
    /// Attempts refused by a dead device.
    pub injected_dead: AtomicU64,
    /// Retry attempts performed (transient errors and allocation failures).
    pub retried: AtomicU64,
    /// Batches re-executed on the CPU path after a device failure.
    pub fell_back_batches: AtomicU64,
    /// Packets in those batches (all of them survive — that is the point).
    pub fell_back_packets: AtomicU64,
    /// Poison batches dropped by panic containment.
    pub dropped_batches: AtomicU64,
    /// Packets lost with those poison batches.
    pub dropped_packets: AtomicU64,
    /// Panics caught and contained (live mode).
    pub panics_contained: AtomicU64,
    /// Times the circuit breaker tripped into quarantine.
    pub quarantine_entered: AtomicU64,
    /// Times a half-open probe re-admitted the device.
    pub quarantine_exited: AtomicU64,
}

impl FaultStats {
    /// Relaxed add — fault counters are diagnostics, not synchronization.
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// A consistent-enough copy of all counters.
    pub fn snapshot(&self) -> FaultSnapshot {
        let g = |c: &AtomicU64| c.load(Ordering::Relaxed);
        FaultSnapshot {
            injected_timeout: g(&self.injected_timeout),
            injected_transient: g(&self.injected_transient),
            injected_corrupt: g(&self.injected_corrupt),
            injected_dead: g(&self.injected_dead),
            retried: g(&self.retried),
            fell_back_batches: g(&self.fell_back_batches),
            fell_back_packets: g(&self.fell_back_packets),
            dropped_batches: g(&self.dropped_batches),
            dropped_packets: g(&self.dropped_packets),
            panics_contained: g(&self.panics_contained),
            quarantine_entered: g(&self.quarantine_entered),
            quarantine_exited: g(&self.quarantine_exited),
        }
    }
}

/// A point-in-time copy of [`FaultStats`] (reports, determinism asserts).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultSnapshot {
    /// Injected task timeouts.
    pub injected_timeout: u64,
    /// Injected transient errors.
    pub injected_transient: u64,
    /// Injected corrupted output blocks.
    pub injected_corrupt: u64,
    /// Attempts refused by a dead device.
    pub injected_dead: u64,
    /// Retry attempts performed.
    pub retried: u64,
    /// Batches that fell back to the CPU path.
    pub fell_back_batches: u64,
    /// Packets in those batches.
    pub fell_back_packets: u64,
    /// Poison batches dropped by panic containment.
    pub dropped_batches: u64,
    /// Packets lost with them.
    pub dropped_packets: u64,
    /// Panics caught and contained.
    pub panics_contained: u64,
    /// Quarantine entries.
    pub quarantine_entered: u64,
    /// Quarantine exits (device re-admitted).
    pub quarantine_exited: u64,
}

impl FaultSnapshot {
    /// Total faults injected, all kinds.
    pub fn injected(&self) -> u64 {
        self.injected_timeout + self.injected_transient + self.injected_corrupt + self.injected_dead
    }

    /// `true` when the run saw no fault activity at all — what
    /// `nba-bench compare` asserts on clean runs.
    pub fn is_clean(&self) -> bool {
        *self == FaultSnapshot::default()
    }

    /// Renders the snapshot as a flat JSON object (the stats endpoint's
    /// `faults` block and the flight-recorder dump; dependency-free).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"injected_timeout\":{},\"injected_transient\":{},\"injected_corrupt\":{},\"injected_dead\":{},\"retried\":{},\"fell_back_batches\":{},\"fell_back_packets\":{},\"dropped_batches\":{},\"dropped_packets\":{},\"panics_contained\":{},\"quarantine_entered\":{},\"quarantine_exited\":{}}}",
            self.injected_timeout,
            self.injected_transient,
            self.injected_corrupt,
            self.injected_dead,
            self.retried,
            self.fell_back_batches,
            self.fell_back_packets,
            self.dropped_batches,
            self.dropped_packets,
            self.panics_contained,
            self.quarantine_entered,
            self.quarantine_exited,
        )
    }
}

/// How the breaker admits the next task attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Closed: tasks flow to the device normally.
    Normal,
    /// Half-open: this one attempt probes a possibly recovered device.
    Probe,
    /// Open: quarantined — the task must fall back without touching the
    /// device.
    Blocked,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BreakerState {
    Closed,
    Open { until: Time },
    HalfOpen,
}

/// The per-device circuit breaker: closed → open (quarantine) → half-open
/// (probe) → closed. Quarantine intervals are recorded for the bench
/// reports, so a fault drill shows *when* the device was out, not just that
/// it was.
#[derive(Debug)]
pub struct CircuitBreaker {
    threshold: u32,
    quarantine: Time,
    consecutive: u32,
    state: BreakerState,
    intervals: Vec<(Time, Option<Time>)>,
}

impl CircuitBreaker {
    /// A closed breaker tripping after `threshold` consecutive failures
    /// into a `quarantine`-long open interval.
    pub fn new(threshold: u32, quarantine: Time) -> CircuitBreaker {
        CircuitBreaker {
            threshold: threshold.max(1),
            quarantine,
            consecutive: 0,
            state: BreakerState::Closed,
            intervals: Vec::new(),
        }
    }

    /// Decides how the next task attempt at `now` is admitted.
    pub fn admit(&mut self, now: Time) -> Admission {
        match self.state {
            BreakerState::Closed => Admission::Normal,
            BreakerState::Open { until } if now >= until => {
                self.state = BreakerState::HalfOpen;
                Admission::Probe
            }
            BreakerState::Open { .. } => Admission::Blocked,
            BreakerState::HalfOpen => Admission::Probe,
        }
    }

    /// Records a completed task. Returns `true` when this success
    /// re-admits a quarantined device (half-open probe passed).
    pub fn record_success(&mut self, now: Time) -> bool {
        self.consecutive = 0;
        if self.state == BreakerState::Closed {
            return false;
        }
        self.state = BreakerState::Closed;
        if let Some(last) = self.intervals.last_mut() {
            if last.1.is_none() {
                last.1 = Some(now);
            }
        }
        true
    }

    /// Records a failed task. Returns `true` when this failure freshly
    /// trips the device into quarantine.
    pub fn record_failure(&mut self, now: Time) -> bool {
        self.consecutive = self.consecutive.saturating_add(1);
        match self.state {
            BreakerState::HalfOpen => {
                // The probe failed: back to quarantine, same open interval.
                self.state = BreakerState::Open {
                    until: now + self.quarantine,
                };
                false
            }
            BreakerState::Closed if self.consecutive >= self.threshold => {
                self.state = BreakerState::Open {
                    until: now + self.quarantine,
                };
                self.intervals.push((now, None));
                true
            }
            _ => false,
        }
    }

    /// `true` while the device is quarantined (open or probing).
    pub fn quarantined(&self) -> bool {
        self.state != BreakerState::Closed
    }

    /// Quarantine intervals so far; an open `None` end means the device
    /// was still out when asked.
    pub fn intervals(&self) -> &[(Time, Option<Time>)] {
        &self.intervals
    }

    /// Consumes the breaker into its recorded quarantine intervals.
    pub fn into_intervals(self) -> Vec<(Time, Option<Time>)> {
        self.intervals
    }
}

/// Fault activity of one run, surfaced through [`crate::runtime::RunReport`]
/// and the live report.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultReport {
    /// Final fault counters.
    pub snapshot: FaultSnapshot,
    /// Quarantine windows over all devices, sorted by start; a `None` end
    /// means the device was still quarantined at teardown.
    pub quarantines: Vec<(Time, Option<Time>)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breaker_trips_after_threshold_and_readmits_on_probe() {
        let mut br = CircuitBreaker::new(3, Time::from_ms(5));
        let t0 = Time::from_ms(10);
        assert_eq!(br.admit(t0), Admission::Normal);
        assert!(!br.record_failure(t0));
        assert!(!br.record_failure(t0));
        assert!(br.record_failure(t0), "third consecutive failure trips");
        assert!(br.quarantined());
        // Inside the quarantine window everything is blocked.
        assert_eq!(br.admit(Time::from_ms(12)), Admission::Blocked);
        // After it, exactly one probe goes through.
        assert_eq!(br.admit(Time::from_ms(16)), Admission::Probe);
        assert!(br.record_success(Time::from_ms(16)));
        assert!(!br.quarantined());
        assert_eq!(br.admit(Time::from_ms(17)), Admission::Normal);
        let iv = br.intervals();
        assert_eq!(iv.len(), 1);
        assert_eq!(iv[0], (t0, Some(Time::from_ms(16))));
    }

    #[test]
    fn failed_probe_extends_the_quarantine() {
        let mut br = CircuitBreaker::new(1, Time::from_ms(5));
        assert!(br.record_failure(Time::from_ms(0)));
        assert_eq!(br.admit(Time::from_ms(6)), Admission::Probe);
        assert!(!br.record_failure(Time::from_ms(6)), "no fresh trip");
        // Re-opened: blocked until a fresh quarantine elapses.
        assert_eq!(br.admit(Time::from_ms(8)), Admission::Blocked);
        assert_eq!(br.admit(Time::from_ms(11)), Admission::Probe);
        assert!(br.record_success(Time::from_ms(11)));
        // One interval covering the whole outage, ends at the re-admit.
        assert_eq!(
            br.intervals(),
            &[(Time::from_ms(0), Some(Time::from_ms(11)))]
        );
    }

    #[test]
    fn successes_reset_the_consecutive_count() {
        let mut br = CircuitBreaker::new(2, Time::from_ms(1));
        assert!(!br.record_failure(Time::ZERO));
        assert!(!br.record_success(Time::ZERO), "closed stays closed");
        assert!(!br.record_failure(Time::ZERO), "count restarted");
        assert!(br.record_failure(Time::ZERO));
    }

    #[test]
    fn snapshot_equality_and_cleanliness() {
        let stats = FaultStats::default();
        assert!(stats.snapshot().is_clean());
        FaultStats::add(&stats.retried, 2);
        FaultStats::add(&stats.injected_transient, 2);
        let s = stats.snapshot();
        assert!(!s.is_clean());
        assert_eq!(s.injected(), 2);
        assert_eq!(s, stats.snapshot());
    }
}
