//! The live introspection plane, end to end: causal span tracing across
//! real threads, the per-shard flight recorder's post-mortem dumps, and
//! the in-flight stats endpoint — all exercised by one live(4) run under
//! a seeded fault plan — plus the zero-overhead contract: telemetry off
//! must leave a run bit-identical.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::mpsc;
use std::time::{Duration, Instant};

use nba::apps::{pipelines, AppConfig};
use nba::core::json::{self, Value};
use nba::core::runtime::live::{self, LiveConfig};
use nba::core::runtime::{des, traffic_per_port, RuntimeConfig};
use nba::core::telemetry::{trace_to_chrome, TelemetryConfig, TraceEventKind};
use nba::core::{lb, FaultConfig, FaultPlan, FlightConfig};
use nba::io::{SizeDist, TrafficConfig};
use nba::sim::Time;

const CHROME_DEVICE_TID: u64 = 10_000;
const CHROME_IO_TID_BASE: u64 = 20_000;

fn app() -> AppConfig {
    AppConfig {
        ports: 4,
        v4_routes: 1024,
        ..AppConfig::default()
    }
}

/// One raw HTTP GET against the stats endpoint, returning the body.
fn http_get(addr: std::net::SocketAddr, path: &str) -> Option<String> {
    let mut s = TcpStream::connect(addr).ok()?;
    s.set_read_timeout(Some(Duration::from_secs(2))).ok()?;
    s.write_all(format!("GET {path} HTTP/1.1\r\nConnection: close\r\n\r\n").as_bytes())
        .ok()?;
    let mut buf = String::new();
    s.read_to_string(&mut buf).ok()?;
    buf.split_once("\r\n\r\n").map(|(_, body)| body.to_string())
}

/// All flow events (`ph` in `s`/`t`/`f`) of a Chrome trace as
/// `(ph, id, tid)` triples.
fn flows_of(doc: &Value) -> Vec<(String, u64, u64)> {
    doc.get("traceEvents")
        .and_then(Value::as_arr)
        .unwrap_or(&[])
        .iter()
        .filter_map(|e| {
            let ph = e.get("ph").and_then(Value::as_str)?;
            if !matches!(ph, "s" | "t" | "f") {
                return None;
            }
            Some((
                ph.to_string(),
                e.get("id").and_then(Value::as_u64)?,
                e.get("tid").and_then(Value::as_u64)?,
            ))
        })
        .collect()
}

/// The headline drill: a live(4) run, everything offloaded, tracing on,
/// the stats endpoint serving, and a seeded device death mid-run. One run
/// must yield (a) a Chrome trace whose offload flow arrows cross
/// IO/worker/device threads via span parent links, (b) a flight-recorder
/// dump at the quarantine trip containing the triggering span's history,
/// and (c) a successful mid-run poll of `/status` and `/metrics`.
#[test]
fn introspection_plane_end_to_end() {
    let cfg = LiveConfig {
        workers: 4,
        duration: Duration::from_millis(400),
        telemetry: TelemetryConfig {
            trace_capacity: 16_384,
            ..TelemetryConfig::default()
        },
        flight: FlightConfig {
            sample_every: 16,
            ..FlightConfig::default()
        },
        fault: FaultConfig {
            plan: FaultPlan {
                seed: 11,
                die_at: Some(Time::from_ms(60)),
                revive_at: Some(Time::from_ms(220)),
                ..FaultPlan::default()
            },
            quarantine: Time::from_ms(5),
            ..FaultConfig::default()
        },
        stats_addr: Some("127.0.0.1:0".to_string()),
        traffic: TrafficConfig {
            size: SizeDist::Fixed(64),
            ..TrafficConfig::default()
        },
        ..LiveConfig::default()
    };

    // Poll the endpoint from a sidecar thread while the run is live. The
    // bound address is published through `cfg.stats_bound` once the
    // listener is up (port 0 keeps the test parallel-safe).
    let bound = cfg.stats_bound.clone();
    let (tx, rx) = mpsc::channel();
    let poller = std::thread::spawn(move || {
        let deadline = Instant::now() + Duration::from_secs(10);
        let addr = loop {
            if let Some(a) = *bound.lock() {
                break a;
            }
            if Instant::now() > deadline {
                let _ = tx.send(None);
                return;
            }
            std::thread::sleep(Duration::from_millis(1));
        };
        // Wait until the run has actually forwarded something so the
        // snapshot is meaningful, not just reachable.
        loop {
            let Some(status) = http_get(addr, "/status") else {
                let _ = tx.send(None);
                return;
            };
            let live_already = json::parse(&status).is_ok_and(|doc| {
                doc.get("totals")
                    .and_then(|t| t.get("tx_packets"))
                    .and_then(Value::as_u64)
                    .is_some_and(|n| n > 0)
            });
            if live_already || Instant::now() > deadline {
                let metrics = http_get(addr, "/metrics");
                let _ = tx.send(Some((status, metrics)));
                return;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    });

    let report = live::run_sharded(
        &cfg,
        &pipelines::ipv4_router(&app()),
        &lb::replicated(|| Box::new(lb::GpuOnly)),
    );
    poller.join().expect("poller thread");

    // --- (a) causal span tracing across threads -------------------------
    assert!(report.totals.offloaded_batches > 0, "{report:?}");
    let trace = &report.trace;
    assert!(
        trace
            .iter()
            .any(|e| e.kind == TraceEventKind::Steer && e.span != 0),
        "no steer spans in the trace"
    );
    let launches: Vec<_> = trace
        .iter()
        .filter(|e| e.kind == TraceEventKind::OffloadLaunch)
        .collect();
    assert!(!launches.is_empty(), "no device launches traced");
    // Every launch's parent is an enqueue span recorded on a worker.
    let enqueue_span_exists = |span: u64| {
        trace
            .iter()
            .any(|e| e.kind == TraceEventKind::OffloadEnqueue && e.span == span)
    };
    assert!(
        launches.iter().any(|l| enqueue_span_exists(l.parent)),
        "launch parents never link back to enqueue spans"
    );
    // Completions (or fallbacks — the device dies mid-run) link to their
    // launch or enqueue ancestor.
    assert!(
        trace.iter().any(|e| {
            matches!(
                e.kind,
                TraceEventKind::OffloadComplete | TraceEventKind::OffloadFallback
            ) && e.parent != 0
        }),
        "no completion carries a parent span"
    );

    let chrome = trace_to_chrome(trace, &report.elements);
    let doc = json::parse(&chrome).expect("chrome export must be valid JSON");
    let flows = flows_of(&doc);
    // An offload round trip: flow start on a worker tid, step on the
    // device tid, finish back on a worker tid — all under one flow id.
    let crossing = flows.iter().any(|(ph, id, tid)| {
        ph == "s"
            && *tid < CHROME_DEVICE_TID
            && flows
                .iter()
                .any(|(p2, i2, t2)| p2 == "t" && i2 == id && *t2 == CHROME_DEVICE_TID)
            && flows
                .iter()
                .any(|(p2, i2, t2)| p2 == "f" && i2 == id && *t2 < CHROME_DEVICE_TID)
    });
    assert!(
        crossing,
        "no offload flow crosses worker -> device -> worker: {flows:?}"
    );
    // An IO->worker handoff: steer starts a flow on an IO tid, the RX that
    // drained the ring finishes it on a worker tid.
    let handoff = flows.iter().any(|(ph, id, tid)| {
        ph == "s"
            && *tid >= CHROME_IO_TID_BASE
            && flows
                .iter()
                .any(|(p2, i2, t2)| p2 == "f" && i2 == id && *t2 < CHROME_DEVICE_TID)
    });
    assert!(
        handoff,
        "no steer flow crosses an IO thread to a worker: {flows:?}"
    );

    // --- (b) flight-recorder dump at the quarantine trip ----------------
    assert!(
        report.faults.snapshot.quarantine_entered >= 1,
        "breaker never tripped: {:?}",
        report.faults.snapshot
    );
    let dump = report
        .flight
        .iter()
        .find(|d| d.reason == "quarantine")
        .expect("no quarantine flight dump");
    assert!(dump.quarantined, "dump must capture breaker state");
    assert_eq!(dump.shards.len(), 4, "one flight shard per worker");
    assert_ne!(
        dump.trigger_span, 0,
        "tracing was on; trigger must carry a span"
    );
    let w = dump
        .trigger_worker
        .expect("quarantine trigger has a worker") as usize;
    assert!(
        dump.shards[w]
            .recent
            .iter()
            .any(|e| e.span == dump.trigger_span),
        "triggering span {} missing from shard {w}'s history",
        dump.trigger_span
    );
    // Gauges were published into the dump (the run forwarded long enough
    // for several sampling periods on every shard).
    assert!(dump.shards.iter().any(|s| s.seen > 0));

    // --- (c) the mid-run stats poll -------------------------------------
    let (status, metrics) = rx
        .recv()
        .expect("poller result")
        .expect("stats endpoint unreachable");
    let doc = json::parse(&status).expect("/status must be valid JSON");
    assert!(
        doc.get("totals")
            .and_then(|t| t.get("tx_packets"))
            .and_then(Value::as_u64)
            .is_some_and(|n| n > 0),
        "mid-run poll saw no traffic: {status}"
    );
    let shards = doc
        .get("shards")
        .and_then(Value::as_arr)
        .expect("shards array");
    assert_eq!(shards.len(), 4, "{status}");
    for s in shards {
        assert!(s.get("ring_occupancy").and_then(Value::as_u64).is_some());
        assert!(s.get("ring_high_water").and_then(Value::as_u64).is_some());
        assert!(s.get("w").and_then(Value::as_f64).is_some());
    }
    assert!(doc.get("latency").and_then(|l| l.get("p99_ns")).is_some());
    let metrics = metrics.expect("/metrics body");
    assert!(metrics.contains("# HELP nba_tx_packets_total"), "{metrics}");
    assert!(
        metrics.contains("# TYPE nba_ring_occupancy gauge"),
        "{metrics}"
    );
    assert!(
        metrics.contains("nba_ring_occupancy{shard=\"0\"}"),
        "{metrics}"
    );
    assert!(
        metrics.contains("nba_ring_occupancy{shard=\"3\"}"),
        "{metrics}"
    );
}

/// The worker-panic trigger: a contained panic must leave a post-mortem
/// dump naming the worker that died.
#[test]
fn worker_panic_leaves_flight_dump() {
    use nba::core::batch::{Anno, PacketResult};
    use nba::core::element::{ElemCtx, Element};
    use nba::core::graph::GraphBuilder;
    use nba::core::runtime::{BuildCtx, PipelineBuilder};
    use std::sync::Arc;

    struct PanicEvery(u64, u64);
    impl Element for PanicEvery {
        fn class_name(&self) -> &'static str {
            "PanicEvery"
        }
        fn process(
            &mut self,
            _ctx: &mut ElemCtx<'_>,
            _pkt: &mut nba::io::Packet,
            _anno: &mut Anno,
        ) -> PacketResult {
            self.1 += 1;
            if self.1.is_multiple_of(self.0) {
                panic!("injected element panic (expected in this test)");
            }
            PacketResult::Out(0)
        }
    }
    let pipeline: PipelineBuilder = Arc::new(|_ctx: &BuildCtx| {
        let mut gb = GraphBuilder::new();
        let p = gb.add(Box::new(PanicEvery(1_000, 0)));
        gb.connect_exit(p, 0);
        gb.entry(p);
        gb.build().expect("panic pipeline")
    });
    let cfg = LiveConfig {
        workers: 2,
        duration: Duration::from_secs(20), // deadline only; drains in ms
        max_packets: Some(8_000),
        drain: true,
        ..LiveConfig::default()
    };
    let report = live::run(&cfg, &pipeline, &lb::shared(Box::new(lb::CpuOnly)));
    assert!(report.faults.snapshot.panics_contained >= 1);
    let dump = report
        .flight
        .iter()
        .find(|d| d.reason == "worker_panic")
        .expect("no worker_panic dump");
    assert!(dump.trigger_worker.is_some());
    assert_eq!(dump.shards.len(), 2);
}

/// The zero-overhead contract, DES side: the simulator must produce a
/// bit-identical report with tracing on and off — observation can never
/// perturb simulated time.
#[test]
fn des_tracing_does_not_perturb_the_run() {
    let run = |trace: usize| {
        let mut cfg = RuntimeConfig::test_default();
        cfg.warmup = Time::from_ms(1);
        cfg.measure = Time::from_ms(6);
        cfg.telemetry.trace_capacity = trace;
        let a = AppConfig {
            ports: cfg.topology.ports.len() as u16,
            ..AppConfig::default()
        };
        let traffic = traffic_per_port(
            &cfg.topology,
            &TrafficConfig {
                offered_gbps: 2.0,
                size: SizeDist::Fixed(64),
                ..TrafficConfig::default()
            },
        );
        des::run(
            &cfg,
            &pipelines::ipv4_router(&a),
            &lb::shared(Box::new(lb::FixedFraction::new(0.5))),
            &traffic,
        )
    };
    let off = run(0);
    let on = run(8192);
    assert!(off.trace.is_empty());
    assert!(!on.trace.is_empty());
    assert_eq!(off.tx_packets, on.tx_packets);
    assert_eq!(off.window, on.window, "counters diverged under tracing");
    assert!(off.tx_gbps.to_bits() == on.tx_gbps.to_bits());
    assert_eq!(off.latency.count(), on.latency.count());
}

/// The zero-overhead contract, live side: a fixed drained workload must
/// transmit exactly the same packets with telemetry on and off.
#[test]
fn live_tracing_does_not_change_what_is_forwarded() {
    let run = |trace: usize| {
        let cfg = LiveConfig {
            workers: 2,
            duration: Duration::from_secs(20), // deadline only; drains in ms
            max_packets: Some(6_000),
            drain: true,
            telemetry: TelemetryConfig {
                trace_capacity: trace,
                ..TelemetryConfig::default()
            },
            ..LiveConfig::default()
        };
        live::run(
            &cfg,
            &pipelines::ipv4_router(&app()),
            &lb::shared(Box::new(lb::CpuOnly)),
        )
    };
    let off = run(0);
    let on = run(8192);
    assert!(off.trace.is_empty());
    assert!(!on.trace.is_empty());
    assert_eq!(off.totals.tx_packets, on.totals.tx_packets);
    assert_eq!(off.totals.dropped, on.totals.dropped);
    assert_eq!(off.rx_dropped, on.rx_dropped);
}
