//! DES ↔ live differential conformance: the same seeded workload pushed
//! through the deterministic simulator, the live runtime with one worker,
//! and the live runtime with four RSS-sharded workers must produce the
//! same per-packet verdicts and output frames — clean and under a seeded
//! fault plan.
//!
//! Per-packet verdicts are [`TxRecord`]s captured at the pipeline's TX
//! point on every runtime, canonicalized per app:
//!
//! * Routers (IPv4/IPv6) emit frames verbatim — compare everything.
//! * The IPsec gateway holds per-replica ESP sequence counters, so the
//!   ciphertext depends on which replica a flow landed on; conformance is
//!   judged on what a receiver can verify — the decrypted, authenticated
//!   plaintext via [`open_esp`].
//! * IDS assigns `IFACE_OUT` round-robin per replica (a load-spreading
//!   decision, not a per-packet verdict) — it is masked; the match
//!   annotations and frames must agree exactly.

use std::sync::Arc;
use std::time::Duration;

use nba::apps::ipsec::open_esp;
use nba::apps::stateful::{FirewallConfig, MaglevConfig, NatConfig};
use nba::apps::{pipelines, AppConfig};
use nba::core::capture::{fnv1a, TxRecord};
use nba::core::element::ComputeMode;
use nba::core::fault::{WorkerKill, WorkerStall};
use nba::core::flow::{bucket_of, FlowOpKind, FlowReport, FlowTableConfig};
use nba::core::lb;
use nba::core::runtime::live::LiveReport;
use nba::core::runtime::live::{self, LiveConfig};
use nba::core::runtime::{des, PipelineBuilder, RunReport, RuntimeConfig};
use nba::core::supervise::TransitionReason;
use nba::core::{FaultConfig, FaultPlan, HealthReport, WorkerState};
use nba::io::{
    IpVersion, L4Proto, Limited, PacketSource, PayloadFill, SizeDist, TrafficConfig, TrafficGen,
};
use nba::sim::topology::{GpuSpec, PortSpec, SocketSpec};
use nba::sim::{Time, Topology};

/// Total packets per run: small enough to drain in milliseconds, large
/// enough to cover many flows, batches, and offload aggregates.
const BUDGET: u64 = 1200;

/// One NIC port, one socket, one GPU — the live runtime's implicit shape
/// (its IO thread models a single ingress port).
fn one_port_topology() -> Topology {
    Topology {
        sockets: vec![SocketSpec { cores: 4 }],
        gpus: vec![GpuSpec {
            name: "GTX 680".to_owned(),
            socket: 0,
        }],
        ports: vec![PortSpec {
            speed_gbps: 10.0,
            socket: 0,
        }],
    }
}

fn traffic(ip: IpVersion, payload: PayloadFill) -> TrafficConfig {
    TrafficConfig {
        offered_gbps: 10.0,
        size: SizeDist::Fixed(256),
        ip_version: ip,
        flows: 64,
        zipf_alpha: 0.0,
        payload,
        seed: 7,
        ..TrafficConfig::default()
    }
}

fn des_cfg(fault: FaultConfig) -> RuntimeConfig {
    RuntimeConfig {
        topology: one_port_topology(),
        workers_per_socket: 3,
        compute: ComputeMode::Full,
        warmup: Time::from_ms(2),
        measure: Time::from_ms(30),
        pool_size: 1 << 15,
        rxq_depth: 4096,
        capture: true,
        flow_journal: true,
        fault,
        ..RuntimeConfig::default()
    }
}

fn live_cfg(workers: usize, traffic: &TrafficConfig, fault: FaultConfig) -> LiveConfig {
    LiveConfig {
        workers,
        duration: Duration::from_secs(20), // deadline only; drains in ms
        traffic: traffic.clone(),
        compute: ComputeMode::Full,
        fault,
        io_threads: 1,
        max_packets: Some(BUDGET),
        drain: true,
        capture: true,
        flow_journal: true,
        ..LiveConfig::default()
    }
}

fn des_capture(
    build: &PipelineBuilder,
    traffic: &TrafficConfig,
    fault: FaultConfig,
) -> Vec<TxRecord> {
    let cfg = des_cfg(fault);
    let source = Limited::new(TrafficGen::new(traffic.clone()), BUDGET);
    let report = des::run_with_sources(
        &cfg,
        build,
        &lb::shared(Box::new(lb::FixedFraction::new(0.5))),
        vec![Box::new(source) as Box<dyn PacketSource>],
        traffic.offered_gbps,
    );
    assert_eq!(report.rx_dropped, 0, "DES run must be lossless");
    assert_eq!(
        report.faults.snapshot.dropped_packets, 0,
        "fault plan must be output-preserving"
    );
    report.tx_capture
}

fn live_capture(
    build: &PipelineBuilder,
    traffic: &TrafficConfig,
    fault: FaultConfig,
    workers: usize,
) -> Vec<TxRecord> {
    let cfg = live_cfg(workers, traffic, fault);
    let report = live::run_sharded(
        &cfg,
        build,
        &lb::replicated(|| Box::new(lb::FixedFraction::new(0.5))),
    );
    assert_eq!(report.rx_dropped, 0, "draining live run must be lossless");
    assert_eq!(
        report.faults.snapshot.dropped_packets, 0,
        "fault plan must be output-preserving"
    );
    assert_eq!(report.shards.len(), workers);
    report.tx_capture
}

/// Like [`des_capture`] but for drills that lose packets *by design*:
/// returns the whole report so the caller can reconcile the loss against
/// the self-healing plane's accounting instead of asserting losslessness.
fn des_drill(build: &PipelineBuilder, traffic: &TrafficConfig, fault: FaultConfig) -> RunReport {
    let cfg = des_cfg(fault);
    let source = Limited::new(TrafficGen::new(traffic.clone()), BUDGET);
    des::run_with_sources(
        &cfg,
        build,
        &lb::shared(Box::new(lb::FixedFraction::new(0.5))),
        vec![Box::new(source) as Box<dyn PacketSource>],
        traffic.offered_gbps,
    )
}

/// Live analogue of [`des_drill`].
fn live_drill(
    build: &PipelineBuilder,
    traffic: &TrafficConfig,
    fault: FaultConfig,
    workers: usize,
) -> LiveReport {
    let cfg = live_cfg(workers, traffic, fault);
    live::run_sharded(
        &cfg,
        build,
        &lb::replicated(|| Box::new(lb::FixedFraction::new(0.5))),
    )
}

fn kill_plan(worker: u32, at_packet: u64) -> FaultConfig {
    FaultConfig {
        plan: FaultPlan {
            worker_kill: vec![WorkerKill { worker, at_packet }],
            ..FaultPlan::default()
        },
        ..FaultConfig::default()
    }
}

fn stall_plan(worker: u32, at_packet: u64, millis: f64) -> FaultConfig {
    FaultConfig {
        plan: FaultPlan {
            worker_stall: vec![WorkerStall {
                worker,
                at_packet,
                millis,
            }],
            ..FaultPlan::default()
        },
        ..FaultConfig::default()
    }
}

/// A canonical, runtime-independent digest of one transmitted packet.
type Verdict = (u64, u64, u64, u64, u64);

/// Routers: everything observable must agree, frame bytes included.
fn canon_exact(records: &[TxRecord]) -> Vec<Verdict> {
    let mut v: Vec<Verdict> = records
        .iter()
        .map(|r| {
            (
                r.flow,
                r.iface_out,
                r.ac_match,
                r.re_match,
                r.frame_digest(),
            )
        })
        .collect();
    v.sort_unstable();
    v
}

/// IDS: mask the per-replica round-robin egress port.
fn canon_ids(records: &[TxRecord]) -> Vec<Verdict> {
    let mut v: Vec<Verdict> = records
        .iter()
        .map(|r| (r.flow, 0, r.ac_match, r.re_match, r.frame_digest()))
        .collect();
    v.sort_unstable();
    v
}

/// IPsec: verdict is the routing decision plus the decrypted,
/// authenticated inner payload — what the far gateway would recover.
fn canon_ipsec(records: &[TxRecord], app: &AppConfig) -> Vec<Verdict> {
    let sa = pipelines::sa_table(app.seed);
    let mut v: Vec<Verdict> = records
        .iter()
        .map(|r| {
            let (proto, plaintext) =
                open_esp(&r.frame, &sa).expect("every TX frame must verify and decrypt");
            (r.flow, r.iface_out, u64::from(proto), fnv1a(&plaintext), 0)
        })
        .collect();
    v.sort_unstable();
    v
}

/// Runs one app through all three runtimes and compares canonical verdicts.
fn assert_conformance(
    build: &PipelineBuilder,
    traffic: &TrafficConfig,
    fault: &FaultConfig,
    canon: impl Fn(&[TxRecord]) -> Vec<Verdict>,
) {
    let des = canon(&des_capture(build, traffic, fault.clone()));
    assert!(
        des.len() as u64 >= BUDGET / 2,
        "suspiciously few DES verdicts: {}",
        des.len()
    );
    let live1 = canon(&live_capture(build, traffic, fault.clone(), 1));
    assert_eq!(des, live1, "DES and live(1) verdicts diverge");
    let live4 = canon(&live_capture(build, traffic, fault.clone(), 4));
    assert_eq!(des, live4, "DES and live(4) verdicts diverge");
}

fn clean() -> FaultConfig {
    FaultConfig::default()
}

/// An output-preserving storm: transient errors, corrupt output blocks,
/// timeouts, and a death/revival window. Every one of these degrades to
/// retries or the bit-identical CPU fallback — never to a changed packet.
fn faulted() -> FaultConfig {
    FaultConfig {
        plan: FaultPlan {
            seed: 99,
            timeout: 0.05,
            transient: 0.10,
            corrupt: 0.05,
            die_at: Some(Time::from_ms(1)),
            revive_at: Some(Time::from_ms(3)),
            worker_kill: Vec::new(),
            worker_stall: Vec::new(),
        },
        ..FaultConfig::default()
    }
}

#[test]
fn ipv4_router_conforms() {
    let app = AppConfig {
        ports: 4,
        v4_routes: 2048,
        ..AppConfig::default()
    };
    let t = traffic(IpVersion::V4, PayloadFill::Zeros);
    assert_conformance(&pipelines::ipv4_router(&app), &t, &clean(), canon_exact);
}

#[test]
fn ipv6_router_conforms() {
    let app = AppConfig {
        ports: 4,
        v6_routes: 2048,
        ..AppConfig::default()
    };
    let t = traffic(IpVersion::V6, PayloadFill::Zeros);
    assert_conformance(&pipelines::ipv6_router(&app), &t, &clean(), canon_exact);
}

#[test]
fn ipsec_gateway_conforms() {
    let app = AppConfig {
        ports: 4,
        v4_routes: 1024,
        ..AppConfig::default()
    };
    let t = traffic(IpVersion::V4, PayloadFill::Ascii);
    let build = pipelines::ipsec_gateway(&app);
    assert_conformance(&build, &t, &clean(), |r| canon_ipsec(r, &app));
}

#[test]
fn ids_conforms() {
    let app = AppConfig {
        ports: 4,
        ids_literals: 32,
        ids_regexes: 4,
        ..AppConfig::default()
    };
    let t = traffic(
        IpVersion::V4,
        PayloadFill::Plant {
            needle: b"EVILPATTERN".to_vec(),
            every: 7,
        },
    );
    let (build, _alerts) = pipelines::ids(&app);
    assert_conformance(&build, &t, &clean(), canon_ids);
}

#[test]
fn ipv4_router_conforms_under_faults() {
    let app = AppConfig {
        ports: 4,
        v4_routes: 2048,
        ..AppConfig::default()
    };
    let t = traffic(IpVersion::V4, PayloadFill::Zeros);
    assert_conformance(&pipelines::ipv4_router(&app), &t, &faulted(), canon_exact);
}

#[test]
fn ipsec_gateway_conforms_under_faults() {
    let app = AppConfig {
        ports: 4,
        v4_routes: 1024,
        ..AppConfig::default()
    };
    let t = traffic(IpVersion::V4, PayloadFill::Ascii);
    let build = pipelines::ipsec_gateway(&app);
    assert_conformance(&build, &t, &faulted(), |r| canon_ipsec(r, &app));
}

/// The IDS alert totals (not just per-packet annotations) must agree
/// between DES and the sharded live runtime.
#[test]
fn ids_alert_totals_conform() {
    let app = AppConfig {
        ports: 4,
        ids_literals: 32,
        ids_regexes: 4,
        ..AppConfig::default()
    };
    let t = traffic(
        IpVersion::V4,
        PayloadFill::Plant {
            needle: b"EVILPATTERN".to_vec(),
            every: 7,
        },
    );
    let (build_des, alerts_des) = pipelines::ids(&app);
    let _ = des_capture(&build_des, &t, clean());
    let des_hits = alerts_des
        .literal_hits
        .load(std::sync::atomic::Ordering::Relaxed);
    assert!(des_hits > 0, "needle never detected in DES");

    let (build_live, alerts_live) = pipelines::ids(&app);
    let _ = live_capture(&build_live, &t, clean(), 4);
    let live_hits = alerts_live
        .literal_hits
        .load(std::sync::atomic::Ordering::Relaxed);
    assert_eq!(des_hits, live_hits, "alert totals diverge");
}

/// `Arc` plumbing: the suite's canonical builders must be shareable
/// across the runs above without rebuilding tables.
#[test]
fn repeated_runs_are_reproducible() {
    let app = AppConfig {
        ports: 4,
        v4_routes: 512,
        ..AppConfig::default()
    };
    let t = traffic(IpVersion::V4, PayloadFill::Zeros);
    let build: PipelineBuilder = Arc::clone(&pipelines::ipv4_router(&app));
    let a = canon_exact(&live_capture(&build, &t, clean(), 4));
    let b = canon_exact(&live_capture(&build, &t, clean(), 4));
    assert_eq!(a, b, "same seed, same config, different verdicts");
}

/// Asserts `drill` is a multiset subset of `clean` (both sorted) and
/// returns how many clean verdicts the drill is missing. Any verdict the
/// drill produced that the clean run never did is an immediate failure —
/// recovery must never *invent* output, only lose a bounded window of it.
fn missing_verdicts(clean: &[Verdict], drill: &[Verdict]) -> u64 {
    let mut i = 0usize;
    let mut missing = 0u64;
    for d in drill {
        loop {
            assert!(
                i < clean.len() && clean[i] <= *d,
                "drill produced a verdict absent from the clean run: {d:?}"
            );
            let hit = clean[i] == *d;
            i += 1;
            if hit {
                break;
            }
            missing += 1;
        }
    }
    missing + (clean.len() - i) as u64
}

/// Shared kill-drill assertions, applied per runtime against that
/// runtime's *own* clean baseline: the drill's verdicts are a multiset
/// subset of the clean run's (bit-identical outside the loss window),
/// every missing packet is attributed by the self-healing counters, the
/// supervisor log records the quarantine edge, and replaying the log
/// reproduces the final worker states the report carries.
#[allow(clippy::too_many_arguments)]
fn assert_kill_drill(
    label: &str,
    killed: u32,
    clean_v: &[Verdict],
    clean_elem_drops: u64,
    drill_v: &[Verdict],
    drill_elem_drops: u64,
    unattributed: u64, // rx_dropped + fault-plan drops; both expected 0 here
    health: &HealthReport,
    expect_respawns: u64,
) {
    assert!(!drill_v.is_empty(), "{label}: no TX at all after the kill");
    let missing = missing_verdicts(clean_v, drill_v);
    assert!(
        missing > 0,
        "{label}: the kill drill lost nothing — fault never fired?"
    );
    assert_eq!(unattributed, 0, "{label}: loss outside the healing plane");
    // Element drops are deterministic per packet, so the drill can only
    // have *fewer* (a packet lost pre-processing is never element-dropped).
    assert!(
        clean_elem_drops >= drill_elem_drops,
        "{label}: drill element drops exceed clean run's"
    );
    // Conservation: clean_tx − drill_tx = lost − (element drops the lost
    // packets would have suffered). Every missing verdict is accounted.
    assert_eq!(
        missing + (clean_elem_drops - drill_elem_drops),
        health.stats.total_lost(),
        "{label}: loss not fully attributed (shed + in-ring + in-flight)"
    );
    assert!(
        health.log.events.iter().any(|e| e.worker == killed
            && e.to == WorkerState::Dead
            && e.reason == TransitionReason::Crash),
        "{label}: no Dead(crash) edge for worker {killed} in the supervisor log"
    );
    let replayed = health
        .log
        .replay()
        .unwrap_or_else(|e| panic!("{label}: supervisor log does not replay: {e}"));
    for (w, s) in &replayed {
        assert_eq!(
            health.states[*w as usize], *s,
            "{label}: replayed state for worker {w} diverges from the report"
        );
    }
    assert_eq!(
        health.stats.respawns, expect_respawns,
        "{label}: unexpected respawn count"
    );
}

/// The seeded worker-kill drill (ISSUE 9 acceptance): kill worker 0 after
/// its 100th packet in every runtime. Post-recovery output must equal the
/// clean run minus a bounded, fully attributed loss window.
#[test]
fn worker_kill_drill_bounds_and_attributes_loss() {
    let app = AppConfig {
        ports: 4,
        v4_routes: 2048,
        ..AppConfig::default()
    };
    let t = traffic(IpVersion::V4, PayloadFill::Zeros);
    let build = pipelines::ipv4_router(&app);

    // DES: 3 workers, no respawn (a Done entity never steps again) —
    // survivors 1 and 2 absorb the re-steered buckets.
    let clean_des = des_drill(&build, &t, clean());
    assert!(clean_des.health.stats.is_clean(), "clean DES run not clean");
    let drill_des = des_drill(&build, &t, kill_plan(0, 100));
    assert_kill_drill(
        "DES",
        0,
        &canon_exact(&clean_des.tx_capture),
        clean_des.totals.dropped,
        &canon_exact(&drill_des.tx_capture),
        drill_des.totals.dropped,
        drill_des.rx_dropped + drill_des.faults.snapshot.dropped_packets,
        &drill_des.health,
        0,
    );
    assert!(
        drill_des.health.stats.resteers >= 1,
        "DES: dead shard's buckets never re-steered"
    );

    // Live, 4 shards: the supervisor re-steers to three survivors and
    // spawns a replacement that re-acquires the buckets.
    // (Only loss counters are asserted clean here: a loaded machine may
    // log benign Suspect flapping on a live run, but never loss.)
    let clean_l4 = live_drill(&build, &t, clean(), 4);
    assert_eq!(clean_l4.health.stats.total_lost(), 0, "clean live(4) lost");
    assert_eq!(clean_l4.health.stats.respawns, 0);
    let drill_l4 = live_drill(&build, &t, kill_plan(0, 100), 4);
    assert_kill_drill(
        "live(4)",
        0,
        &canon_exact(&clean_l4.tx_capture),
        clean_l4.totals.dropped,
        &canon_exact(&drill_l4.tx_capture),
        drill_l4.totals.dropped,
        drill_l4.rx_dropped + drill_l4.faults.snapshot.dropped_packets,
        &drill_l4.health,
        1,
    );
    assert!(
        drill_l4.health.stats.resteers >= 1,
        "live(4): dead shard's buckets never re-steered"
    );

    // Live, 1 shard: no survivors to re-steer to (moved = 0), so loss is
    // bounded only by detection + respawn latency — still fully attributed.
    let clean_l1 = live_drill(&build, &t, clean(), 1);
    let drill_l1 = live_drill(&build, &t, kill_plan(0, 100), 1);
    assert_kill_drill(
        "live(1)",
        0,
        &canon_exact(&clean_l1.tx_capture),
        clean_l1.totals.dropped,
        &canon_exact(&drill_l1.tx_capture),
        drill_l1.totals.dropped,
        drill_l1.rx_dropped + drill_l1.faults.snapshot.dropped_packets,
        &drill_l1.health,
        1,
    );
}

/// A stalled-then-resumed worker must be *lossless*: the supervisor may
/// presume it dead and re-steer its buckets meanwhile, but the worker
/// still owns its rings and drains them on resume — the drill's verdicts
/// are bit-identical to the clean run's, not merely a subset.
#[test]
fn worker_stall_drill_is_lossless() {
    let app = AppConfig {
        ports: 4,
        v4_routes: 2048,
        ..AppConfig::default()
    };
    let t = traffic(IpVersion::V4, PayloadFill::Zeros);
    let build = pipelines::ipv4_router(&app);

    let clean_des = canon_exact(&des_drill(&build, &t, clean()).tx_capture);
    let stall_des = des_drill(&build, &t, stall_plan(1, 100, 20.0));
    assert_eq!(
        canon_exact(&stall_des.tx_capture),
        clean_des,
        "DES: stall drill diverges from the clean run"
    );
    assert_eq!(
        stall_des.health.stats.total_lost(),
        0,
        "DES: stall lost packets"
    );
    assert!(stall_des.health.log.replay().is_ok());

    let clean_l4 = canon_exact(&live_drill(&build, &t, clean(), 4).tx_capture);
    let stall_l4 = live_drill(&build, &t, stall_plan(1, 100, 20.0), 4);
    assert_eq!(
        canon_exact(&stall_l4.tx_capture),
        clean_l4,
        "live(4): stall drill diverges from the clean run"
    );
    assert_eq!(
        stall_l4.health.stats.total_lost(),
        0,
        "live(4): stall lost packets"
    );
    assert_eq!(
        stall_l4.health.stats.respawns, 0,
        "stall must never respawn"
    );
    assert!(stall_l4.health.log.replay().is_ok());
}

// ──────────────────────── Stateful flow plane ────────────────────────
//
// The stateful apps (NAT44, conntrack firewall, Maglev LB) keep per-flow
// state in sharded tables with packet-count logical clocks. Conformance
// is judged twice per run: the per-packet verdicts (as above) and the
// flow-op journal — inserts, hits, evictions, migrations — which must
// agree canonically (per-bucket order) across DES(3), live(1), live(4).

/// TCP churn traffic: every flow lives 24 packets (SYN … data … FIN),
/// then a fresh identity replaces it — arrivals, refreshes, closes, and
/// idle expiry all exercised within one BUDGET.
fn tcp_traffic() -> TrafficConfig {
    TrafficConfig {
        offered_gbps: 10.0,
        size: SizeDist::Fixed(128),
        ip_version: IpVersion::V4,
        flows: 96,
        zipf_alpha: 0.0,
        payload: PayloadFill::Zeros,
        seed: 11,
        l4: L4Proto::Tcp,
        flow_lifetime_pkts: 24,
        ..TrafficConfig::default()
    }
}

/// A small, churning table: short TTLs and epochs so eviction paths run
/// inside the test budget.
fn churn_table() -> FlowTableConfig {
    FlowTableConfig {
        capacity: 4096,
        ttl_epochs: 6,
        embryonic_ttl_epochs: 2,
        epoch_pkts: 4,
    }
}

/// One canonical journal record, shard stripped: worker homing differs
/// across runtimes (3, 1, and 4 shards), per-bucket sequences must not.
type FlowOpCanon = (u16, u64, u64, &'static str, u64, u64);

fn canon_journal(flows: Option<&FlowReport>) -> Vec<FlowOpCanon> {
    let report = flows.expect("stateful run must carry a flow report");
    report
        .journal
        .replay()
        .expect("flow journal must replay cleanly");
    report
        .journal
        .canonical()
        .iter()
        .map(|o| {
            (
                o.bucket,
                o.bseq,
                o.epoch,
                o.op.as_str(),
                o.key_digest,
                o.value,
            )
        })
        .collect()
}

/// Runs one stateful app through all three runtimes: per-packet verdicts
/// *and* canonical flow journals must agree.
fn assert_flow_conformance(build: &PipelineBuilder, t: &TrafficConfig) {
    let des = des_drill(build, t, clean());
    assert_eq!(des.rx_dropped, 0, "DES run must be lossless");
    let des_v = canon_exact(&des.tx_capture);
    let des_j = canon_journal(des.flows.as_ref());
    assert!(
        des_v.len() as u64 >= BUDGET / 2,
        "suspiciously few DES verdicts: {}",
        des_v.len()
    );
    assert!(!des_j.is_empty(), "flow journal empty on a stateful run");

    let l1 = live_drill(build, t, clean(), 1);
    assert_eq!(l1.rx_dropped, 0, "live(1) run must be lossless");
    assert_eq!(
        canon_exact(&l1.tx_capture),
        des_v,
        "DES and live(1) verdicts diverge"
    );
    assert_eq!(
        canon_journal(l1.flows.as_ref()),
        des_j,
        "DES and live(1) flow journals diverge"
    );

    let l4 = live_drill(build, t, clean(), 4);
    assert_eq!(l4.rx_dropped, 0, "live(4) run must be lossless");
    assert_eq!(
        canon_exact(&l4.tx_capture),
        des_v,
        "DES and live(4) verdicts diverge"
    );
    assert_eq!(
        canon_journal(l4.flows.as_ref()),
        des_j,
        "DES and live(4) flow journals diverge"
    );
}

#[test]
fn nat44_conforms_per_flow() {
    let cfg = NatConfig {
        table: churn_table(),
        ..NatConfig::default()
    };
    assert_flow_conformance(&pipelines::nat44(&cfg), &tcp_traffic());
}

#[test]
fn conntrack_fw_conforms_per_flow() {
    // A seeded SYN-flood rides along: one-shot embryonic entries churn
    // the tables and must expire identically on every runtime.
    let t = TrafficConfig {
        syn_flood_per_mille: 150,
        ..tcp_traffic()
    };
    let cfg = FirewallConfig {
        table: churn_table(),
    };
    assert_flow_conformance(&pipelines::conntrack_fw(&cfg), &t);
}

#[test]
fn maglev_lb_conforms_per_flow_across_backend_flip() {
    // Backend 7 is removed once each bucket's clock reaches epoch 3: the
    // rebuild must be deterministic, pinned flows keep their backends.
    let cfg = MaglevConfig {
        flip_epoch: 3,
        table: churn_table(),
        ..MaglevConfig::default()
    };
    assert_flow_conformance(&pipelines::maglev_lb(&cfg), &tcp_traffic());
}

/// Multiset difference `clean − drill`, asserting drill ⊆ clean (both
/// sorted): recovery may lose output, never invent it.
fn missing_records(clean: &[Verdict], drill: &[Verdict]) -> Vec<Verdict> {
    let mut missing = Vec::new();
    let mut i = 0usize;
    for d in drill {
        loop {
            assert!(
                i < clean.len() && clean[i] <= *d,
                "drill produced a verdict absent from the clean run: {d:?}"
            );
            let hit = clean[i] == *d;
            if !hit {
                missing.push(clean[i]);
            }
            i += 1;
            if hit {
                break;
            }
        }
    }
    missing.extend_from_slice(&clean[i..]);
    missing
}

/// The flow-plane kill drill: a worker dies, its shard is invalidated
/// (ONE policy: invalidate on crash — stalled workers keep their
/// tables), survivors adopt re-steered flows as journaled `Migrate`s,
/// and every lost packet and lost flow is attributed.
///
/// `require_migrates` is DES-only: its virtual-time pacing guarantees
/// traffic keeps flowing after the ~2.5 ms detection budget, so fresh
/// flows *must* land on survivors. The live runtime blasts the packet
/// budget in microseconds — usually drained before the watchdog fires —
/// so migrations there are possible but not guaranteed.
#[allow(clippy::too_many_arguments)]
fn assert_flow_kill_drill(
    label: &str,
    killed: u64,
    workers: u64,
    require_migrates: bool,
    clean_v: &[Verdict],
    clean_drops: u64,
    drill_v: &[Verdict],
    drill_drops: u64,
    health: &HealthReport,
    flows: Option<&FlowReport>,
) {
    let flows = flows.unwrap_or_else(|| panic!("{label}: drill carries no flow report"));
    let totals = flows.totals();
    assert!(totals.evict_death > 0, "{label}: dead shard held no flows");

    // The journal replays: hits only on live keys, per-bucket sequences
    // intact, and the shard-wide Invalidate declares exactly the flows
    // that were live — every flow the death cost is attributed.
    let replay = flows
        .journal
        .replay()
        .unwrap_or_else(|e| panic!("{label}: flow journal does not replay: {e}"));
    let invalidated = replay
        .invalidated
        .get(&(killed as u32))
        .map_or(0, |s| s.len() as u64);
    assert_eq!(
        invalidated, totals.evict_death,
        "{label}: evict_death disagrees with the journaled invalidation"
    );

    // Migrations land only on survivors, only for the dead worker's
    // buckets — the observable half of the invalidate-on-crash policy.
    let migrates: Vec<_> = flows
        .journal
        .ops
        .iter()
        .filter(|o| o.op == FlowOpKind::Migrate)
        .collect();
    if require_migrates {
        assert!(!migrates.is_empty(), "{label}: no flow ever migrated");
    }
    for m in &migrates {
        assert_eq!(
            u64::from(m.bucket) % workers,
            killed,
            "{label}: migrate for a bucket not homed on the dead worker"
        );
        assert_ne!(
            u64::from(m.shard),
            killed,
            "{label}: migrate journaled on the dead shard itself"
        );
    }
    assert_eq!(
        totals.migrated_in,
        migrates.len() as u64,
        "{label}: migrated_in counter disagrees with the journal"
    );

    // Packet conservation: every clean verdict the drill is missing is
    // either self-healing loss or an extra element drop (out-of-state
    // segments of invalidated flows).
    let missing = missing_records(clean_v, drill_v);
    assert!(!missing.is_empty(), "{label}: the kill lost nothing");
    assert_eq!(
        missing.len() as u64 + clean_drops,
        health.stats.total_lost() + drill_drops,
        "{label}: loss not fully attributed (missing={} clean_drops={clean_drops} \
         drill_drops={drill_drops} shed={} in_ring={} in_flight={} flow_totals={totals:?})",
        missing.len(),
        health.stats.shed_total(),
        health.stats.lost_in_ring,
        health.stats.lost_in_flight,
    );

    // Outside the blast radius the drill is exact: with nothing shed,
    // every missing packet belongs to a flow homed on the dead worker.
    if health.stats.shed_total() == 0 {
        for v in &missing {
            assert_eq!(
                u64::from(bucket_of(v.0)) % workers,
                killed,
                "{label}: flow {:#x} outside the dead shard lost packets",
                v.0
            );
        }
    }

    assert!(
        health
            .log
            .events
            .iter()
            .any(|e| u64::from(e.worker) == killed
                && e.to == WorkerState::Dead
                && e.reason == TransitionReason::Crash),
        "{label}: no Dead(crash) edge in the supervisor log"
    );
}

/// Kill worker 0 mid-run under the conntrack firewall in both the DES
/// (3 shards, no respawn) and live(4) (respawn) runtimes.
#[test]
fn conntrack_worker_kill_drill_attributes_flow_loss() {
    let cfg = FirewallConfig {
        table: churn_table(),
    };
    let build = pipelines::conntrack_fw(&cfg);
    // Slow, churning traffic: at 0.15 Gbps the BUDGET spans ~10 ms of
    // virtual time, so the DES re-steer (≤2.5 ms detection budget after
    // the kill) happens with packets still flowing, and 8-packet flow
    // lifetimes put fresh flows on the dead worker's buckets afterwards.
    let t = TrafficConfig {
        offered_gbps: 0.15,
        flow_lifetime_pkts: 8,
        ..tcp_traffic()
    };

    let clean_des = des_drill(&build, &t, clean());
    assert!(clean_des.health.stats.is_clean(), "clean DES run not clean");
    assert_eq!(
        clean_des
            .flows
            .as_ref()
            .map_or(0, |f| f.totals().evict_death),
        0
    );
    let drill_des = des_drill(&build, &t, kill_plan(0, 100));
    assert_flow_kill_drill(
        "DES",
        0,
        3,
        true,
        &canon_exact(&clean_des.tx_capture),
        clean_des.totals.dropped,
        &canon_exact(&drill_des.tx_capture),
        drill_des.totals.dropped,
        &drill_des.health,
        drill_des.flows.as_ref(),
    );

    let clean_l4 = live_drill(&build, &t, clean(), 4);
    assert_eq!(clean_l4.health.stats.total_lost(), 0, "clean live(4) lost");
    let drill_l4 = live_drill(&build, &t, kill_plan(0, 100), 4);
    assert_flow_kill_drill(
        "live(4)",
        0,
        4,
        false,
        &canon_exact(&clean_l4.tx_capture),
        clean_l4.totals.dropped,
        &canon_exact(&drill_l4.tx_capture),
        drill_l4.totals.dropped,
        &drill_l4.health,
        drill_l4.flows.as_ref(),
    );
}

/// A stalled worker is *not* crashed: its thread still owns the tables
/// and drains on resume — the flow plane must not invalidate anything.
#[test]
fn worker_stall_keeps_flow_tables_intact() {
    let cfg = FirewallConfig {
        table: churn_table(),
    };
    let build = pipelines::conntrack_fw(&cfg);
    let t = tcp_traffic();

    let clean_des = des_drill(&build, &t, clean());
    let stall_des = des_drill(&build, &t, stall_plan(1, 100, 20.0));
    assert_eq!(
        stall_des
            .flows
            .as_ref()
            .map_or(u64::MAX, |f| f.totals().evict_death),
        0,
        "DES: stall invalidated a live worker's flows"
    );
    assert_eq!(
        canon_journal(stall_des.flows.as_ref()),
        canon_journal(clean_des.flows.as_ref()),
        "DES: stall drill's flow journal diverges from the clean run"
    );

    let stall_l4 = live_drill(&build, &t, stall_plan(1, 100, 20.0), 4);
    assert_eq!(
        stall_l4
            .flows
            .as_ref()
            .map_or(u64::MAX, |f| f.totals().evict_death),
        0,
        "live(4): stall invalidated a live worker's flows"
    );
}

/// The million-flow occupancy gate (CI runs it with `--ignored`):
/// live(4) holds ≥ 1,000,000 concurrent NAT bindings with zero loss and
/// exact insert conservation, then repeats the load under a worker kill
/// with every lost flow attributed through the journal.
#[test]
#[ignore = "heavy million-flow occupancy gate — CI runs it with --ignored"]
fn million_flow_nat_gate() {
    const FLOWS: u64 = 1 << 20;

    let nat = NatConfig {
        // 18 × 64512 = 1,161,216 external mappings: ≥ FLOWS with enough
        // slack that no per-bucket port slice (9072) can run dry under
        // the binomial spread of 2^20 keys over 128 buckets (~8192 ± 90).
        ext_ips: 18,
        table: FlowTableConfig {
            capacity: 1 << 21,
            ttl_epochs: u64::MAX,
            embryonic_ttl_epochs: 0,
            // Frozen clock: occupancy, not churn, is under test.
            epoch_pkts: 0,
        },
        ..NatConfig::default()
    };
    let build = pipelines::nat44(&nat);
    let t = TrafficConfig {
        offered_gbps: 40.0,
        size: SizeDist::Fixed(64),
        ip_version: IpVersion::V4,
        flows: FLOWS as usize,
        zipf_alpha: 0.0,
        payload: PayloadFill::Zeros,
        seed: 23,
        // Round-robin: every flow is touched in the first 2^20 packets —
        // no coupon-collector tail.
        sequential: true,
        ..TrafficConfig::default()
    };
    let mut cfg = live_cfg(4, &t, clean());
    cfg.capture = false; // 10^6 verdict records add nothing here
    cfg.max_packets = Some(FLOWS);
    let balancer = || lb::replicated(|| Box::new(lb::FixedFraction::new(0.5)));

    // Phase 1: clean occupancy. Drain-mode backpressure delivers every
    // packet, so the table must hold every distinct binding.
    let rep = live::run_sharded(&cfg, &build, &balancer());
    assert_eq!(rep.rx_dropped, 0, "clean gate run dropped at RX");
    assert_eq!(
        rep.health.stats.total_lost(),
        0,
        "clean gate run lost packets"
    );
    let flows = rep.flows.expect("NAT run carries a flow report");
    let totals = flows.totals();
    assert!(
        totals.live >= 1_000_000,
        "below the million-flow floor: {totals:?}"
    );
    assert_eq!(
        totals.inserts, totals.live,
        "clean run evicted flows: {totals:?}"
    );
    assert_eq!(
        totals.table_full_drops, 0,
        "table sized too small: {totals:?}"
    );
    assert_eq!(totals.evictions_total(), 0);
    let replay = flows
        .journal
        .replay()
        .expect("million-flow journal replays");
    let replay_live: u64 = replay.live.values().map(|s| s.len() as u64).sum();
    assert_eq!(
        replay_live, totals.live,
        "journal live set disagrees with the table gauge"
    );

    // Phase 2: the same load with worker 1 killed early, plus a second
    // pass of traffic so re-steered flows land on survivors. Every flow
    // the death costs is attributed: the journaled shard invalidation
    // matches evict_death exactly, migrations land only on survivors for
    // the dead worker's buckets, and insert conservation still holds.
    cfg.max_packets = Some(FLOWS + (FLOWS >> 2));
    cfg.fault = kill_plan(1, 100_000);
    let drill = live::run_sharded(&cfg, &build, &balancer());
    let flows = drill.flows.expect("NAT drill carries a flow report");
    let totals = flows.totals();
    assert!(totals.evict_death > 0, "the kill invalidated no flows");
    assert_eq!(
        totals.inserts,
        totals.live + totals.evictions_total(),
        "insert conservation broken under the kill: {totals:?}"
    );
    assert!(
        totals.live + totals.evict_death >= 1_000_000,
        "flows lost without attribution: {totals:?}"
    );
    let replay = flows.journal.replay().expect("kill-drill journal replays");
    let invalidated = replay.invalidated.get(&1).map_or(0, |s| s.len() as u64);
    assert_eq!(
        invalidated, totals.evict_death,
        "evict_death disagrees with the journaled invalidation"
    );
    // Under full blast the watchdog may declare an overloaded survivor
    // dead too (stall past the window budget) and re-steer its buckets —
    // legitimate, but it widens where migrations may come from. Validate
    // every migrate against the workers actually declared dead.
    let dead_homes: std::collections::BTreeSet<u32> = drill
        .health
        .log
        .events
        .iter()
        .filter(|e| e.to == WorkerState::Dead)
        .map(|e| e.worker)
        .collect();
    let migrates = flows
        .journal
        .ops
        .iter()
        .filter(|o| o.op == FlowOpKind::Migrate)
        .inspect(|m| {
            let home = u32::from(m.bucket) % 4;
            assert!(
                dead_homes.contains(&home),
                "migrate for bucket {} homed on live worker {home}",
                m.bucket
            );
            assert_ne!(m.shard, home, "migrate journaled on the bucket's home");
        })
        .count() as u64;
    assert_eq!(totals.migrated_in, migrates);
    assert!(
        drill.health.log.events.iter().any(|e| e.worker == 1
            && e.to == WorkerState::Dead
            && e.reason == TransitionReason::Crash),
        "no Dead(crash) edge in the supervisor log"
    );
}
