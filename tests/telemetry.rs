//! Telemetry: per-element profiles reconcile with aggregate counters, the
//! time-series is monotone and internally consistent, batch-lifecycle
//! traces follow the offload round trip, and — the contract that makes all
//! of it trustworthy — observation never changes the result.

use std::time::Duration;

use nba::apps::{pipelines, AppConfig};
use nba::core::lb;
use nba::core::runtime::live::{self, LiveConfig};
use nba::core::runtime::{des, traffic_per_port, RuntimeConfig};
use nba::core::telemetry::{TelemetryConfig, TraceEventKind};
use nba::io::{SizeDist, TrafficConfig};
use nba::sim::Time;

fn app_for(cfg: &RuntimeConfig) -> AppConfig {
    AppConfig {
        ports: cfg.topology.ports.len() as u16,
        v4_routes: 2048,
        ..AppConfig::default()
    }
}

fn traffic(cfg: &RuntimeConfig, gbps: f64) -> Vec<TrafficConfig> {
    traffic_per_port(
        &cfg.topology,
        &TrafficConfig {
            offered_gbps: gbps,
            size: SizeDist::Fixed(128),
            ..TrafficConfig::default()
        },
    )
}

#[test]
fn element_profiles_reconcile_with_counters() {
    let cfg = RuntimeConfig::test_default();
    let app = app_for(&cfg);
    let r = des::run(
        &cfg,
        &pipelines::ipv4_router(&app),
        &lb::shared(Box::new(lb::CpuOnly)),
        &traffic(&cfg, 2.0),
    );
    assert!(!r.elements.is_empty());
    // Every RX'd packet is wrapped into a batch and presented to the entry
    // element exactly once, so its profile must match the aggregate RX
    // counter exactly (CPU-only: no resume visits anywhere).
    let entry = r
        .elements
        .iter()
        .find(|p| p.node == 0)
        .expect("entry profile");
    assert_eq!(entry.packets, r.totals.rx_packets, "{:?}", r.elements);
    assert!(entry.batches > 0 && entry.busy > Time::ZERO && entry.cycles > 0);
    // Per-element drop attribution sums to the aggregate drop counter
    // (both count per-packet `PacketResult::Drop` verdicts).
    let element_drops: u64 = r.elements.iter().map(|p| p.drops).sum();
    assert_eq!(element_drops, r.totals.dropped);
}

#[test]
fn time_series_is_monotone_and_consistent() {
    let mut cfg = RuntimeConfig::test_default();
    cfg.telemetry.sample_interval = Some(Time::from_ms(1));
    let app = app_for(&cfg);
    let r = des::run(
        &cfg,
        &pipelines::ipv4_router(&app),
        &lb::shared(Box::new(lb::CpuOnly)),
        &traffic(&cfg, 2.0),
    );
    assert!(r.samples.len() >= 10, "only {} samples", r.samples.len());
    for pair in r.samples.windows(2) {
        let (a, b) = (&pair[0], &pair[1]);
        assert!(b.t > a.t, "time not strictly increasing");
        assert!(b.tx_packets >= a.tx_packets, "cumulative tx ran backwards");
        assert!(b.dropped >= a.dropped);
        assert!(b.rx_dropped >= a.rx_dropped);
        assert!(b.offloaded_batches >= a.offloaded_batches);
        // Window rates are derived from the cumulative deltas.
        let win = (b.t - a.t).as_secs_f64();
        let expect = (b.tx_packets - a.tx_packets) as f64 / win / 1e6;
        assert!(
            (b.tx_mpps - expect).abs() < 1e-6,
            "window rate inconsistent: {} vs {expect}",
            b.tx_mpps
        );
    }
    // The last sample lands on the horizon and has seen all transmitted
    // traffic (the sampler runs last at equal timestamps).
    let last = r.samples.last().unwrap();
    assert_eq!(last.t, cfg.warmup + cfg.measure);
    assert_eq!(last.tx_packets, r.totals.tx_packets);
}

#[test]
fn trace_follows_the_offload_round_trip() {
    let mut cfg = RuntimeConfig::test_default();
    cfg.telemetry.trace_capacity = 1 << 16;
    let app = app_for(&cfg);
    let r = des::run(
        &cfg,
        &pipelines::ipv4_router(&app),
        &lb::shared(Box::new(lb::GpuOnly)),
        &traffic(&cfg, 1.0),
    );
    assert!(!r.trace.is_empty());
    // Find a traced batch that went through the full device round trip and
    // check its lifecycle stages appear in causal order.
    let mut found = false;
    'outer: for e in &r.trace {
        if e.kind != TraceEventKind::Rx || e.batch == 0 {
            continue;
        }
        let mine: Vec<_> = r.trace.iter().filter(|x| x.batch == e.batch).collect();
        let at = |k: TraceEventKind| mine.iter().find(|x| x.kind == k).map(|x| x.t);
        let (Some(rx), Some(enq), Some(launch), Some(done), Some(tx)) = (
            at(TraceEventKind::Rx),
            at(TraceEventKind::OffloadEnqueue),
            at(TraceEventKind::OffloadLaunch),
            at(TraceEventKind::OffloadComplete),
            at(TraceEventKind::Tx),
        ) else {
            continue 'outer;
        };
        assert!(rx <= enq && enq <= launch && launch <= done && done <= tx);
        found = true;
        break;
    }
    assert!(found, "no batch completed a traced offload round trip");
    // Tracing off means genuinely off: no buffer, no events.
    let cfg_off = RuntimeConfig::test_default();
    let r_off = des::run(
        &cfg_off,
        &pipelines::ipv4_router(&app),
        &lb::shared(Box::new(lb::GpuOnly)),
        &traffic(&cfg_off, 1.0),
    );
    assert!(r_off.trace.is_empty());
}

#[test]
fn telemetry_never_changes_the_result() {
    let mut quiet = RuntimeConfig::test_default();
    quiet.telemetry = TelemetryConfig::off();
    let mut loud = RuntimeConfig::test_default();
    loud.telemetry = TelemetryConfig {
        sample_interval: Some(Time::from_us(500)),
        trace_capacity: 4096,
    };
    let app = app_for(&quiet);
    // An adaptive balancer makes this stringent: any perturbation of event
    // order or timing would steer `w` differently and diverge throughput.
    let alb = || {
        lb::shared(Box::new(lb::Adaptive::new(lb::AlbConfig {
            update_interval: Time::from_ms(1),
            min_wait: 0,
            max_wait: 2,
            ..lb::AlbConfig::default()
        })))
    };
    let a = des::run(
        &quiet,
        &pipelines::ipv4_router(&app),
        &alb(),
        &traffic(&quiet, 2.0),
    );
    let b = des::run(
        &loud,
        &pipelines::ipv4_router(&app),
        &alb(),
        &traffic(&loud, 2.0),
    );
    assert_eq!(a.tx_gbps.to_bits(), b.tx_gbps.to_bits());
    assert_eq!(a.tx_packets, b.tx_packets);
    assert_eq!(a.final_w.to_bits(), b.final_w.to_bits());
    assert_eq!(a.window, b.window);
    // And the observed run actually observed things.
    assert!(!b.samples.is_empty() && !b.trace.is_empty());
    assert!(a.samples.is_empty() && a.trace.is_empty());
}

#[test]
fn live_runtime_reports_telemetry() {
    let cfg = LiveConfig {
        workers: 2,
        duration: Duration::from_millis(150),
        telemetry: TelemetryConfig {
            sample_interval: Some(Time::from_ms(10)),
            trace_capacity: 4096,
        },
        ..LiveConfig::default()
    };
    let app = AppConfig {
        ports: 4,
        v4_routes: 1024,
        ..AppConfig::default()
    };
    let report = live::run(
        &cfg,
        &pipelines::ipv4_router(&app),
        &lb::shared(Box::new(lb::CpuOnly)),
    );
    assert!(!report.elements.is_empty());
    let entry = report.elements.iter().find(|p| p.node == 0).expect("entry");
    assert_eq!(entry.packets, report.totals.rx_packets);
    // Wall-clock busy time was measured.
    assert!(entry.busy > Time::ZERO);
    assert!(!report.samples.is_empty());
    for pair in report.samples.windows(2) {
        assert!(pair[1].tx_packets >= pair[0].tx_packets);
    }
    assert!(!report.trace.is_empty());
}
