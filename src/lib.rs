//! NBA (Network Balancing Act) — a reproduction of the EuroSys'15 paper
//! "NBA: A High-performance Packet Processing Framework for Heterogeneous
//! Processors" in Rust, over a deterministic simulated testbed.
//!
//! This facade re-exports the workspace crates:
//!
//! * [`sim`] — discrete-event engine, cost model, topology,
//! * [`io`] — packet buffers, protocol headers, RSS, NIC model, traffic,
//! * [`gpu`] — the accelerator model (memory, streams, pipelined engines),
//! * [`crypto`] — AES-128-CTR, SHA-1, HMAC-SHA1,
//! * [`matcher`] — Aho-Corasick and regex-to-DFA engines,
//! * [`core`] — the framework: batches, elements, graphs, config language,
//!   offloading, load balancing, runtimes,
//! * [`apps`] — the four sample applications.
//!
//! # Quickstart
//!
//! ```
//! use nba::core::lb;
//! use nba::core::runtime::{des, traffic_per_port, RuntimeConfig};
//! use nba::apps::{pipelines, AppConfig};
//! use nba::io::TrafficConfig;
//!
//! let cfg = RuntimeConfig::test_default();
//! let app = AppConfig { ports: cfg.topology.ports.len() as u16, v4_routes: 1024, ..AppConfig::default() };
//! let pipeline = pipelines::ipv4_router(&app);
//! let balancer = lb::shared(Box::new(lb::CpuOnly));
//! let traffic = traffic_per_port(&cfg.topology, &TrafficConfig { offered_gbps: 1.0, ..TrafficConfig::default() });
//! let report = des::run(&cfg, &pipeline, &balancer, &traffic);
//! assert!(report.tx_packets > 0);
//! ```

pub use nba_apps as apps;
pub use nba_core as core;
pub use nba_crypto as crypto;
pub use nba_gpu as gpu;
pub use nba_io as io;
pub use nba_matcher as matcher;
pub use nba_sim as sim;
