//! The IPsec encryption gateway under a CAIDA-like mixed-size workload:
//! sweeps the offloading fraction like Figure 2, then lets the adaptive
//! balancer find the optimum on its own.
//!
//! ```sh
//! cargo run --release --example ipsec_gateway
//! ```

use nba::apps::{pipelines, AppConfig};
use nba::core::lb;
use nba::core::runtime::{des, traffic_per_port, RuntimeConfig};
use nba::io::{SizeDist, TrafficConfig};
use nba::sim::Time;

fn main() {
    let cfg = RuntimeConfig {
        warmup: Time::from_ms(10),
        measure: Time::from_ms(30),
        ..RuntimeConfig::default()
    };
    let app = AppConfig {
        ports: cfg.topology.ports.len() as u16,
        ..AppConfig::default()
    };
    let pipeline = pipelines::ipsec_gateway(&app);
    let traffic = traffic_per_port(
        &cfg.topology,
        &TrafficConfig {
            offered_gbps: 10.0,
            size: SizeDist::CaidaLike,
            zipf_alpha: 1.1,
            flows: 16_384,
            ..TrafficConfig::default()
        },
    );

    println!("offloading-fraction sweep (Figure 2 shape):");
    println!("{:>6} {:>12}", "w (%)", "Gbps");
    let mut best = (0.0f64, 0.0f64);
    for w in (0..=10).map(|k| k as f64 / 10.0) {
        let balancer = lb::shared(Box::new(lb::FixedFraction::new(w)));
        let report = des::run(&cfg, &pipeline, &balancer, &traffic);
        println!("{:>6.0} {:>12.2}", w * 100.0, report.tx_gbps);
        if report.tx_gbps > best.1 {
            best = (w, report.tx_gbps);
        }
    }
    println!(
        "manual optimum: w = {:.0} % at {:.2} Gbps",
        best.0 * 100.0,
        best.1
    );

    // Now the adaptive balancer, starting in the middle.
    let alb_cfg = lb::AlbConfig {
        initial_w: 0.5,
        ..lb::AlbConfig::scaled_down(40)
    };
    let balancer = lb::shared(Box::new(lb::Adaptive::new(alb_cfg)));
    let long = RuntimeConfig {
        warmup: Time::from_ms(40),
        measure: Time::from_ms(40),
        ..cfg
    };
    let report = des::run(&long, &pipeline, &balancer, &traffic);
    println!(
        "adaptive balancer: {:.2} Gbps at w = {:.0} % ({:.0} % of manual best)",
        report.tx_gbps,
        report.final_w * 100.0,
        report.tx_gbps / best.1 * 100.0
    );
}
