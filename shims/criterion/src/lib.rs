//! In-workspace stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so benches link against
//! this API-compatible subset instead. It does no statistical analysis:
//! each benchmark body is warmed briefly, timed over a fixed number of
//! iterations, and a single mean-time line is printed (with throughput
//! when configured). Good for smoke-running benches and catching
//! regressions by eye; not a measurement-grade harness.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Opaque hint preventing the optimizer from deleting a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput basis used to derive a rate from the mean iteration time.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// A two-part benchmark name: function id plus parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Combines a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to benchmark closures; drives the timed iterations.
pub struct Bencher {
    mean: Duration,
}

const WARMUP_ITERS: u32 = 3;
const TIMED_ITERS: u32 = 30;

impl Bencher {
    /// Times `routine`, storing the mean per-iteration duration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..WARMUP_ITERS {
            black_box(routine());
        }
        let start = Instant::now();
        for _ in 0..TIMED_ITERS {
            black_box(routine());
        }
        self.mean = start.elapsed() / TIMED_ITERS;
    }
}

fn run_one(name: &str, throughput: Option<Throughput>, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        mean: Duration::ZERO,
    };
    f(&mut b);
    let ns = b.mean.as_nanos().max(1) as f64;
    let rate = match throughput {
        Some(Throughput::Bytes(n)) => {
            format!("  {:>10.1} MiB/s", n as f64 / ns * 1e9 / (1024.0 * 1024.0))
        }
        Some(Throughput::Elements(n)) => {
            format!("  {:>10.2} Melem/s", n as f64 / ns * 1e9 / 1e6)
        }
        None => String::new(),
    };
    println!("bench {name:<40} {:>12.1} ns/iter{rate}", ns);
}

/// A named group of related benchmarks sharing a throughput setting.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput basis for subsequent benchmarks in the group.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Runs a benchmark over a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id), self.throughput, |b| {
            f(b, input)
        });
        self
    }

    /// Runs a benchmark with no external input.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.throughput, f);
        self
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(&mut self) {}
}

/// The benchmark driver handed to each `criterion_group!` target.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named [`BenchmarkGroup`].
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _parent: self,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(id, None, f);
        self
    }
}

/// Bundles benchmark functions under one group name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Generates `main` running each `criterion_group!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Bytes(64));
        g.bench_with_input(BenchmarkId::new("sum", 64), &[1u8; 64][..], |b, d| {
            b.iter(|| d.iter().map(|&x| x as u64).sum::<u64>())
        });
        g.bench_function("noop", |b| b.iter(|| black_box(1)));
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn groups_run_to_completion() {
        benches();
    }
}
