//! `nba-core`: the NBA framework — a batch-oriented modular packet
//! processing framework with declarative GPU offloading and adaptive
//! CPU/GPU load balancing (EuroSys'15).
//!
//! The crate mirrors the paper's design (§3):
//!
//! * [`batch`] — packet batches as first-class objects: pointer arrays,
//!   per-packet results, cache-line annotation sets, exclusion masks,
//! * [`element`] — Click-style elements with per-packet/per-batch kinds and
//!   declarative offloading ([`element::OffloadSpec`], datablocks),
//! * [`graph`] — the `ElementGraph`: batch traversal, the batch-split
//!   problem, and batch-level branch prediction,
//! * [`config`] — the Click configuration language dialect (quoted
//!   parameters) with an element registry,
//! * [`lint`] — `nba-lint`, the static pipeline verifier: structural,
//!   annotation-slot, datablock, and branch-shape checks with stable
//!   `NBA0xx` diagnostic codes,
//! * [`verify`] — `nba-verify`, the path-sensitive deep verifier: an
//!   abstract interpretation over the element graph (per-slot write
//!   lattice, header-validity facts, datablock rewrite effects) emitting
//!   the `NBA04x` path family, plus static queue-law capacity checks
//!   (`NBA05x`) over the runtime configurations,
//! * [`introspect`] — the live introspection plane: the per-shard flight
//!   recorder and the in-flight stats endpoint,
//! * [`audit`] — the decision-audit & SLO plane: replayable balancer
//!   decision logs, offload stage decomposition, cost-model drift
//!   detection, and SLO budget tracking,
//! * [`offload`] — datablock gather/scatter between batches and devices,
//! * [`fault`] — the offload degradation ladder: deterministic fault
//!   injection plans, CPU fallback accounting, and the device circuit
//!   breaker feeding the load balancer,
//! * [`lb`] — load balancers, including the paper's adaptive algorithm,
//! * [`nls`] — node-local storage for shared read-mostly tables,
//! * [`stats`] — counters, the system inspector, latency histograms,
//! * [`json`] — a minimal JSON parser for reading bench artifacts back,
//! * [`telemetry`] — per-element profiles, run time-series, batch-lifecycle
//!   traces, and JSONL/Prometheus exporters,
//! * [`runtime`] — the discrete-event runtime (all experiments) and a live
//!   multi-threaded runtime.

#![forbid(unsafe_code)]

pub mod audit;
pub mod batch;
pub mod capture;
pub mod config;
pub mod element;
pub mod fault;
pub mod flow;
pub mod graph;
pub mod introspect;
pub mod json;
pub mod lb;
pub mod lint;
pub mod nls;
pub mod offload;
pub mod runtime;
pub mod stats;
pub mod supervise;
pub mod telemetry;
pub mod verify;

pub use audit::{
    AuditConfig, DecisionClock, DecisionContext, DecisionKind, DecisionLog, DecisionRecord,
    DriftConfig, DriftDetector, DriftGauge, DriftReport, OffloadStage, SloConfig, SloReport,
    SloSample, SloTracker, StageProfiles,
};
pub use batch::{anno, Anno, PacketBatch, PacketResult};
pub use capture::TxRecord;
pub use config::{build_graph, build_graph_checked, CheckedGraph, ConfigError, ElementRegistry};
pub use element::{
    ComputeMode, DbInput, DbOutput, Disposition, ElemCtx, Element, ElementEffects, ElementKind,
    HeaderFact, Kernel, KernelIo, OffloadSpec, Postprocess, SlotAccess, SlotClaim, SlotScope,
};
pub use fault::{
    parse_faults_flag, CircuitBreaker, FaultConfig, FaultPlan, FaultReport, FaultSnapshot,
    FaultStats,
};
pub use graph::{BranchPolicy, ElementGraph, GraphBuilder, NodeId, OutEdge, RunOutcome};
pub use introspect::{FlightConfig, FlightDump, FlightRecorder, StatsServer, StatsState};
pub use lb::{
    Adaptive, AlbConfig, BalancerFactory, CpuOnly, FixedFraction, GpuOnly, LatencyBounded,
    LoadBalancer, SharedBalancer,
};
pub use lint::{Code, Diagnostic, LintReport, Severity, SourceMap, SCHEMA_VERSION};
pub use nls::NodeLocalStorage;
pub use runtime::{BuildCtx, PipelineBuilder, RunReport, RuntimeConfig};
pub use stats::{Counters, LatencyHistogram, Snapshot, SystemInspector};
pub use supervise::{
    HealthReport, HealthSnapshot, HealthStats, ShardMonitor, ShedConfig, ShedPolicy, Shedder,
    SupervisionEvent, SupervisorConfig, SupervisorLog, WorkerHealth, WorkerState,
};
pub use telemetry::{
    ElementProfile, TelemetryConfig, TimeSample, TraceBuffer, TraceEvent, TraceEventKind,
};
pub use verify::{apply_deep, check_capacity, deep_verify, AbsState, CapacityModel, SlotState};
