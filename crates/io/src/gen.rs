//! Offered-load traffic generation.
//!
//! The paper's workload is "randomly generated IP traffic with UDP payloads"
//! offered at a fixed rate (up to 80 Gbps across 8 ports), plus a replayed
//! CAIDA 2013 trace for the mixed-size IPsec experiments. This module
//! provides deterministic (seeded) generators for both: fixed-size sweeps,
//! the classic IMIX mix, and a CAIDA-like empirical size mix over a Zipf
//! flow population.
//!
//! Rates are *wire rates*: a 10 Gbps offered load of 64-byte frames is
//! 14.88 Mpps, matching how line rate is accounted on real hardware.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use nba_sim::Time;

use crate::buf::{Mempool, DEFAULT_HEADROOM};
use crate::packet::{Packet, WIRE_OVERHEAD_BYTES};
use crate::proto::FrameBuilder;

/// Frame-size distribution of a generated stream.
#[derive(Debug, Clone, PartialEq)]
pub enum SizeDist {
    /// Every frame has the same length.
    Fixed(usize),
    /// Simple IMIX: 64 B (7/12), 594 B (4/12), 1518 B (1/12).
    Imix,
    /// A CAIDA-backbone-like empirical mix: bimodal small/large with a
    /// realistic mean around 700 B of wire load.
    CaidaLike,
    /// Uniform over `[min, max]`.
    Uniform {
        /// Smallest frame length.
        min: usize,
        /// Largest frame length.
        max: usize,
    },
}

impl SizeDist {
    /// Samples one frame length.
    pub fn sample(&self, rng: &mut SmallRng) -> usize {
        match self {
            SizeDist::Fixed(n) => *n,
            SizeDist::Imix => match rng.gen_range(0..12) {
                0..=6 => 64,
                7..=10 => 594,
                _ => 1518,
            },
            SizeDist::CaidaLike => {
                // (frame length, per-mille probability).
                const MIX: [(usize, u32); 6] = [
                    (64, 700),
                    (128, 140),
                    (256, 60),
                    (576, 40),
                    (1024, 20),
                    (1500, 40),
                ];
                let mut roll = rng.gen_range(0..1000u32);
                for (len, p) in MIX {
                    if roll < p {
                        return len;
                    }
                    roll -= p;
                }
                1500
            }
            SizeDist::Uniform { min, max } => rng.gen_range(*min..=*max),
        }
    }
}

/// IP version of the generated traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IpVersion {
    /// IPv4 + UDP.
    V4,
    /// IPv6 + UDP.
    V6,
}

/// How UDP payload bytes are filled.
#[derive(Debug, Clone, PartialEq)]
pub enum PayloadFill {
    /// Zero bytes (fastest; default for timing runs).
    Zeros,
    /// Pseudo-random lowercase ASCII (for pattern-matching workloads).
    Ascii,
    /// ASCII background with `needle` planted into every `every`-th packet
    /// (for IDS detection tests).
    Plant {
        /// The byte string to plant.
        needle: Vec<u8>,
        /// Planting period in packets (1 = every packet).
        every: u32,
    },
}

/// Configuration of one traffic source (typically one per port).
#[derive(Debug, Clone)]
pub struct TrafficConfig {
    /// Offered load in wire Gbps.
    pub offered_gbps: f64,
    /// Frame-size distribution.
    pub size: SizeDist,
    /// IPv4 or IPv6 headers.
    pub ip_version: IpVersion,
    /// Number of distinct flows (5-tuples).
    pub flows: usize,
    /// Zipf skew across flows; 0.0 = uniform.
    pub zipf_alpha: f64,
    /// Payload contents.
    pub payload: PayloadFill,
    /// RNG seed (generators are fully deterministic).
    pub seed: u64,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        TrafficConfig {
            offered_gbps: 10.0,
            size: SizeDist::Fixed(64),
            ip_version: IpVersion::V4,
            flows: 4096,
            zipf_alpha: 0.0,
            payload: PayloadFill::Zeros,
            seed: 0x6e62_615f_7267, // "nba_rg"
        }
    }
}

/// One pre-generated flow identity.
#[derive(Debug, Clone, Copy)]
struct Flow {
    src_v4: u32,
    dst_v4: u32,
    src_v6: u128,
    dst_v6: u128,
    src_port: u16,
    dst_port: u16,
}

/// Generator statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct GenStats {
    /// Frames generated (offered).
    pub generated: u64,
    /// Sum of generated frame bits.
    pub frame_bits: u64,
    /// Frames not generated because the buffer pool was exhausted.
    pub alloc_failures: u64,
}

/// A deterministic offered-load packet source.
pub struct TrafficGen {
    cfg: TrafficConfig,
    rng: SmallRng,
    flows: Vec<Flow>,
    /// Cumulative Zipf weights (empty when uniform).
    zipf_cdf: Vec<f64>,
    builder: FrameBuilder,
    next_ts: Time,
    seq: u64,
    stats: GenStats,
}

impl TrafficGen {
    /// Creates a generator from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has no flows or a non-positive rate.
    pub fn new(cfg: TrafficConfig) -> TrafficGen {
        assert!(cfg.flows > 0, "traffic needs at least one flow");
        assert!(cfg.offered_gbps > 0.0, "offered load must be positive");
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let flows = (0..cfg.flows)
            .map(|_| Flow {
                src_v4: rng.gen(),
                dst_v4: rng.gen(),
                // Randomize all 96 bits below the documentation /32 so
                // prefixes at every length see diverse traffic.
                src_v6: 0x2001_0db8 << 96 | (rng.gen::<u128>() >> 32),
                dst_v6: 0x2001_0db8 << 96 | (rng.gen::<u128>() >> 32),
                src_port: rng.gen_range(1024..u16::MAX),
                dst_port: rng.gen_range(1..1024),
            })
            .collect::<Vec<_>>();
        let zipf_cdf = if cfg.zipf_alpha > 0.0 {
            let mut acc = 0.0;
            let mut cdf = Vec::with_capacity(cfg.flows);
            for rank in 1..=cfg.flows {
                acc += 1.0 / (rank as f64).powf(cfg.zipf_alpha);
                cdf.push(acc);
            }
            for w in &mut cdf {
                *w /= acc;
            }
            cdf
        } else {
            Vec::new()
        };
        TrafficGen {
            cfg,
            rng,
            flows,
            zipf_cdf,
            builder: FrameBuilder::default(),
            next_ts: Time::ZERO,
            seq: 0,
            stats: GenStats::default(),
        }
    }

    /// The generator's statistics so far.
    pub fn stats(&self) -> GenStats {
        self.stats
    }

    /// Minimum frame length this configuration can produce.
    fn min_len(&self) -> usize {
        match self.cfg.ip_version {
            IpVersion::V4 => FrameBuilder::MIN_V4_LEN,
            IpVersion::V6 => FrameBuilder::MIN_V6_LEN,
        }
    }

    fn pick_flow(&mut self) -> Flow {
        let idx = if self.zipf_cdf.is_empty() {
            self.rng.gen_range(0..self.flows.len())
        } else {
            let u: f64 = self.rng.gen();
            self.zipf_cdf
                .partition_point(|&c| c < u)
                .min(self.flows.len() - 1)
        };
        self.flows[idx]
    }

    /// Emits every packet due strictly before `until` into `sink`.
    ///
    /// Packets carry `ts_gen` pacing timestamps spaced so the stream's wire
    /// rate equals the configured offered load. Returns the number emitted.
    pub fn generate(&mut self, until: Time, pool: &Mempool, sink: &mut dyn FnMut(Packet)) -> u64 {
        let mut emitted = 0;
        while self.next_ts < until {
            let len = self.cfg.size.sample(&mut self.rng).max(self.min_len());
            let ts = self.next_ts;
            // Advance pacing before any alloc-failure path so overload
            // cannot stall virtual time.
            let wire_bits = ((len + WIRE_OVERHEAD_BYTES) * 8) as f64;
            self.next_ts += Time::from_secs_f64(wire_bits / (self.cfg.offered_gbps * 1e9));
            self.seq += 1;

            let Some(mut buf) = pool.alloc() else {
                self.stats.alloc_failures += 1;
                continue;
            };
            let flow = self.pick_flow();
            let frame = buf.set_region(DEFAULT_HEADROOM, len);
            match self.cfg.ip_version {
                IpVersion::V4 => {
                    self.builder.src_port = flow.src_port;
                    self.builder.dst_port = flow.dst_port;
                    self.builder
                        .build_ipv4(frame, len, flow.src_v4, flow.dst_v4);
                    self.fill_payload(frame, FrameBuilder::MIN_V4_LEN);
                }
                IpVersion::V6 => {
                    self.builder.src_port = flow.src_port;
                    self.builder.dst_port = flow.dst_port;
                    self.builder
                        .build_ipv6(frame, len, flow.src_v6, flow.dst_v6);
                    self.fill_payload(frame, FrameBuilder::MIN_V6_LEN);
                }
            }
            let mut pkt = Packet::from_pool(buf, pool.clone());
            pkt.ts_gen = ts;
            self.stats.generated += 1;
            self.stats.frame_bits += (len * 8) as u64;
            emitted += 1;
            sink(pkt);
        }
        emitted
    }

    fn fill_payload(&mut self, frame: &mut [u8], hdr_len: usize) {
        // Take a local copy of the fill spec to keep the borrow checker
        // happy while using self.rng below.
        match &self.cfg.payload {
            PayloadFill::Zeros => {}
            PayloadFill::Ascii => {
                let body = &mut frame[hdr_len..];
                for b in body.iter_mut() {
                    *b = b'a' + (self.rng.gen::<u8>() % 26);
                }
            }
            PayloadFill::Plant { needle, every } => {
                let needle = needle.clone();
                let every = *every;
                let body = &mut frame[hdr_len..];
                for b in body.iter_mut() {
                    *b = b'a' + (self.rng.gen::<u8>() % 26);
                }
                if every > 0
                    && self.seq.is_multiple_of(u64::from(every))
                    && body.len() >= needle.len()
                {
                    let at = if body.len() == needle.len() {
                        0
                    } else {
                        self.rng.gen_range(0..body.len() - needle.len())
                    };
                    body[at..at + needle.len()].copy_from_slice(&needle);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{ether::EtherView, ipv4::Ipv4View, ipv6::Ipv6View};

    fn run_gen(cfg: TrafficConfig, until: Time) -> (Vec<Packet>, GenStats) {
        let pool = Mempool::new(1 << 20);
        let mut gen = TrafficGen::new(cfg);
        let mut out = Vec::new();
        gen.generate(until, &pool, &mut |p| out.push(p));
        (out, gen.stats())
    }

    #[test]
    fn rate_matches_offered_load() {
        // 10 Gbps of 64-byte frames for 1 ms => 14.88 Mpps * 1 ms = ~14880.
        let cfg = TrafficConfig::default();
        let (pkts, stats) = run_gen(cfg, Time::from_ms(1));
        let expect = (10e9 / 672.0 * 1e-3) as i64;
        assert!(
            (pkts.len() as i64 - expect).abs() <= 1,
            "{} vs {}",
            pkts.len(),
            expect
        );
        assert_eq!(stats.generated, pkts.len() as u64);
    }

    #[test]
    fn frames_are_valid_ipv4() {
        let (pkts, _) = run_gen(TrafficConfig::default(), Time::from_us(10));
        assert!(!pkts.is_empty());
        for p in &pkts {
            let eth = EtherView::parse(p.data()).unwrap();
            let ip = Ipv4View::parse(eth.payload()).unwrap();
            assert!(ip.checksum_ok());
            assert_eq!(usize::from(ip.total_len()), p.len() - 14);
        }
    }

    #[test]
    fn frames_are_valid_ipv6() {
        let cfg = TrafficConfig {
            ip_version: IpVersion::V6,
            ..TrafficConfig::default()
        };
        let (pkts, _) = run_gen(cfg, Time::from_us(10));
        assert!(!pkts.is_empty());
        for p in &pkts {
            let eth = EtherView::parse(p.data()).unwrap();
            let ip = Ipv6View::parse(eth.payload()).unwrap();
            assert_eq!(ip.hop_limit(), 64);
            assert_eq!(p.len(), 64.max(FrameBuilder::MIN_V6_LEN));
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let (a, _) = run_gen(TrafficConfig::default(), Time::from_us(50));
        let (b, _) = run_gen(TrafficConfig::default(), Time::from_us(50));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.data(), y.data());
            assert_eq!(x.ts_gen, y.ts_gen);
        }
    }

    #[test]
    fn zipf_skews_flow_popularity() {
        let cfg = TrafficConfig {
            flows: 64,
            zipf_alpha: 1.2,
            ..TrafficConfig::default()
        };
        let (pkts, _) = run_gen(cfg, Time::from_ms(1));
        let mut by_dst = std::collections::HashMap::new();
        for p in &pkts {
            let eth = EtherView::parse(p.data()).unwrap();
            let ip = Ipv4View::parse(eth.payload()).unwrap();
            *by_dst.entry(ip.dst()).or_insert(0u32) += 1;
        }
        let mut counts: Vec<u32> = by_dst.values().copied().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        // The most popular flow should dominate a uniform share by far.
        assert!(counts[0] > pkts.len() as u32 / 64 * 5);
    }

    #[test]
    fn imix_and_caida_mixes_have_expected_spread() {
        for size in [SizeDist::Imix, SizeDist::CaidaLike] {
            let cfg = TrafficConfig {
                size: size.clone(),
                offered_gbps: 40.0,
                ..TrafficConfig::default()
            };
            let (pkts, _) = run_gen(cfg, Time::from_ms(1));
            let small = pkts.iter().filter(|p| p.len() <= 128).count();
            let large = pkts.iter().filter(|p| p.len() >= 1024).count();
            assert!(small > 0 && large > 0, "{size:?} lacks size diversity");
        }
    }

    #[test]
    fn planted_needle_appears_periodically() {
        let cfg = TrafficConfig {
            size: SizeDist::Fixed(256),
            payload: PayloadFill::Plant {
                needle: b"EVILPATTERN".to_vec(),
                every: 4,
            },
            ..TrafficConfig::default()
        };
        let (pkts, _) = run_gen(cfg, Time::from_us(200));
        let hits = pkts
            .iter()
            .filter(|p| p.data().windows(11).any(|w| w == b"EVILPATTERN"))
            .count();
        assert!(hits >= pkts.len() / 5, "{hits} of {}", pkts.len());
        assert!(hits <= pkts.len() / 3);
    }

    #[test]
    fn pool_exhaustion_counts_failures_but_time_advances() {
        let pool = Mempool::new(4);
        let mut gen = TrafficGen::new(TrafficConfig::default());
        let mut kept = Vec::new();
        gen.generate(Time::from_us(10), &pool, &mut |p| kept.push(p));
        assert_eq!(kept.len(), 4);
        assert!(gen.stats().alloc_failures > 0);
        // Later windows still progress.
        let n = gen.generate(Time::from_us(20), &pool, &mut |_p| {});
        assert_eq!(n, 0);
    }
}
