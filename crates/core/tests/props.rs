//! Property tests of framework data structures.

use proptest::prelude::*;

use nba_core::batch::PacketBatch;
use nba_core::config::{build_graph, ElementRegistry};
use nba_core::element::KernelIo;
use nba_core::flow::{bucket_of, EvictReason, FlowKey, FlowRegistry, FlowTable, FlowTableConfig};
use nba_core::graph::BranchPolicy;
use nba_core::stats::LatencyHistogram;
use nba_io::Packet;

proptest! {
    /// Batch mask/take bookkeeping: live count always equals the number of
    /// occupied slots, under any operation sequence.
    #[test]
    fn batch_mask_take_algebra(ops in proptest::collection::vec((0u8..3, any::<usize>()), 0..100)) {
        let mut b = PacketBatch::with_capacity(16);
        for _ in 0..16 {
            b.push(Packet::from_bytes(&[0u8; 64]));
        }
        let mut model: Vec<bool> = vec![true; 16];
        for (op, idx) in ops {
            let i = idx % 16;
            match op {
                0 => {
                    b.mask(i);
                    model[i] = false;
                }
                1 => {
                    let took = b.take(i).is_some();
                    prop_assert_eq!(took, model[i]);
                    model[i] = false;
                }
                _ => {
                    // Read-only probes.
                    prop_assert_eq!(b.packet(i).is_some(), model[i]);
                }
            }
            prop_assert_eq!(b.len(), model.iter().filter(|&&x| x).count());
            let live: Vec<usize> = b.live_indices().collect();
            let expect: Vec<usize> =
                model.iter().enumerate().filter(|(_, &x)| x).map(|(k, _)| k).collect();
            prop_assert_eq!(live, expect);
        }
    }

    /// Kernel staging round-trips arbitrary segments.
    #[test]
    fn kernel_staging_round_trip(
        segments in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..50), 0..20),
        out_len in 1usize..16,
    ) {
        let refs: Vec<&[u8]> = segments.iter().map(|s| s.as_slice()).collect();
        let out_lens = vec![out_len; segments.len()];
        let (staged, total_out) = KernelIo::stage(&refs, &out_lens);
        prop_assert_eq!(total_out, out_len * segments.len());
        let mut out = vec![0u8; total_out];
        let io = KernelIo::parse(&staged, &mut out);
        prop_assert_eq!(io.items, segments.len());
        for (i, seg) in segments.iter().enumerate() {
            prop_assert_eq!(io.item_in(i), &seg[..]);
            prop_assert_eq!(io.item_out_range(i).len(), out_len);
        }
    }

    /// The configuration parser is total: any input yields Ok or Err,
    /// never a panic.
    #[test]
    fn config_parser_total(src in "\\PC{0,200}") {
        let reg = ElementRegistry::new();
        let _ = build_graph(&src, &reg, BranchPolicy::Predict);
    }

    /// The lexer handles arbitrary bytes including comment openers.
    #[test]
    fn config_parser_handles_comment_like_noise(
        noise in proptest::collection::vec(
            proptest::sample::select(vec!["//", "/*", "*/", "\"", ";", "->", "::", "a", "\n", "#", "[", "]"]),
            0..40),
    ) {
        let src: String = noise.concat();
        let reg = ElementRegistry::new();
        let _ = build_graph(&src, &reg, BranchPolicy::Predict);
    }

    /// Merging histograms is lossless with respect to counts: every
    /// recorded sample survives, totals and extrema combine exactly, and
    /// merge order doesn't matter.
    #[test]
    fn histogram_merge_lossless(
        xs in proptest::collection::vec(any::<u64>(), 0..200),
        ys in proptest::collection::vec(any::<u64>(), 0..200),
    ) {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        for &x in &xs { a.record_ns(x); }
        for &y in &ys { b.record_ns(y); }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba);
        prop_assert_eq!(ab.count(), (xs.len() + ys.len()) as u64);
        let bucket_total: u64 = ab.nonzero_buckets().iter().map(|&(_, n)| n).sum();
        prop_assert_eq!(bucket_total, ab.count());

        // One histogram fed everything matches the merge exactly.
        let mut all = LatencyHistogram::new();
        for &v in xs.iter().chain(&ys) { all.record_ns(v); }
        prop_assert_eq!(&all, &ab);
        if !xs.is_empty() || !ys.is_empty() {
            let lo = xs.iter().chain(&ys).copied().min().unwrap();
            let hi = xs.iter().chain(&ys).copied().max().unwrap();
            prop_assert_eq!(ab.min_ns(), lo);
            prop_assert_eq!(ab.max_ns(), hi);
        }
    }

    /// `percentile_ns` is monotone in `p` and always lands inside the
    /// observed [min, max] range, for any sample set including the
    /// extremes 0 and `u64::MAX`.
    #[test]
    fn histogram_percentile_monotone_and_bounded(
        mut samples in proptest::collection::vec(any::<u64>(), 1..200),
        extremes in proptest::collection::vec(
            proptest::sample::select(vec![0u64, 1, u64::MAX - 1, u64::MAX]), 0..4),
    ) {
        samples.extend(extremes);
        let mut h = LatencyHistogram::new();
        for &s in &samples { h.record_ns(s); }
        let ps = [0.0, 1.0, 25.0, 50.0, 90.0, 99.0, 99.9, 100.0];
        let mut prev = 0u64;
        for &p in &ps {
            let v = h.percentile_ns(p);
            prop_assert!(v >= prev, "percentile not monotone: p{}={} < {}", p, v, prev);
            prop_assert!(v >= h.min_ns() && v <= h.max_ns(),
                "p{} = {} outside [{}, {}]", p, v, h.min_ns(), h.max_ns());
            prev = v;
        }
        // Single-sample histograms answer that sample exactly at every p.
        let mut one = LatencyHistogram::new();
        one.record_ns(samples[0]);
        for &p in &ps {
            prop_assert_eq!(one.percentile_ns(p), samples[0]);
        }
    }
}

/// One scripted flow-table operation: tick the bucket clock, insert,
/// look up, or close. Keys are drawn from a small space so hits,
/// collisions, and probe-chain compaction all actually happen.
type FlowOp = (u8, u16, u16);

fn flow_key(seed: u16) -> FlowKey {
    FlowKey {
        proto: 6,
        src_ip: 0x0a00_0000 | u32::from(seed),
        dst_ip: 0xc0a8_0001,
        src_port: 1024 + seed,
        dst_port: 80,
    }
}

/// Drives one table through the op script, returning the number of
/// eviction records handed back.
fn drive_flow_table(table: &mut FlowTable, ops: &[FlowOp]) -> u64 {
    let mut evicted = Vec::new();
    for &(op, seed, value) in ops {
        let key = flow_key(seed % 24);
        let bucket = bucket_of(key.digest());
        match op % 4 {
            0 => table.tick(bucket, &mut evicted),
            1 => {
                let _ = table.insert(
                    bucket,
                    key,
                    u64::from(value),
                    value % 2 == 0,
                    false,
                    &mut evicted,
                );
            }
            2 => {
                let _ = table.lookup(bucket, &key, &mut evicted);
            }
            _ => {
                let _ = table.remove(bucket, &key, EvictReason::Closed, &mut evicted);
            }
        }
    }
    evicted.len() as u64
}

proptest! {
    /// Flow-table bookkeeping under arbitrary op scripts: occupancy never
    /// exceeds capacity, the table's live count matches the shard gauge,
    /// and every inserted entry is conserved — still live or accounted to
    /// exactly one eviction reason.
    #[test]
    fn flow_table_occupancy_and_conservation(
        ops in proptest::collection::vec((any::<u8>(), any::<u16>(), any::<u16>()), 0..400),
        capacity in proptest::sample::select(vec![0u64, 1, 8, 64, 4096]),
        ttl in 1u64..5,
        embryonic_ttl in 0u64..3,
        epoch_pkts in proptest::sample::select(vec![0u64, 1, 4, 16]),
    ) {
        let cfg = FlowTableConfig { capacity, ttl_epochs: ttl, embryonic_ttl_epochs: embryonic_ttl, epoch_pkts };
        let registry = FlowRegistry::new();
        registry.set_workers(1);
        let mut table = FlowTable::new(0, cfg, &registry);
        let handed_back = drive_flow_table(&mut table, &ops);

        prop_assert!(table.live() <= table.capacity());
        let report = registry.report().expect("shard registered");
        let snap = report.totals();
        prop_assert_eq!(table.live(), snap.live);
        prop_assert_eq!(snap.inserts, snap.live + snap.evictions_total());
        // Every eviction the stats counted was also handed back to the
        // caller (NAT port release depends on this).
        prop_assert_eq!(handed_back, snap.evictions_total());
        if capacity == 0 {
            prop_assert_eq!(snap.inserts, 0);
        }
    }

    /// Expiry is a pure function of the per-bucket packet sequence: the
    /// same op script replayed into a fresh table yields a bit-identical
    /// journal and identical counters — the invariant the cross-runtime
    /// differential suite leans on.
    #[test]
    fn flow_table_expiry_deterministic(
        ops in proptest::collection::vec((any::<u8>(), any::<u16>(), any::<u16>()), 0..300),
        epoch_pkts in proptest::sample::select(vec![1u64, 3, 8]),
    ) {
        let cfg = FlowTableConfig {
            capacity: 64,
            ttl_epochs: 2,
            embryonic_ttl_epochs: 1,
            epoch_pkts,
        };
        let run = || {
            let registry = FlowRegistry::new();
            registry.set_workers(1);
            registry.enable_journal();
            let mut table = FlowTable::new(0, cfg, &registry);
            drive_flow_table(&mut table, &ops);
            (table.live(), registry.report().expect("shard registered"))
        };
        let (live_a, rep_a) = run();
        let (live_b, rep_b) = run();
        prop_assert_eq!(live_a, live_b);
        prop_assert!(rep_a.journal.bit_eq(&rep_b.journal));
        prop_assert_eq!(rep_a.totals(), rep_b.totals());
        rep_a.journal.replay().expect("journal replays");
    }

    /// Adversarial sizing never panics and the per-bucket rounding only
    /// ever rounds capacity up (until the anti-pathology clamp).
    #[test]
    fn flow_table_adversarial_sizing_total(
        capacity in proptest::sample::select(
            vec![0u64, 1, 2, 127, 128, 129, u64::from(u32::MAX), u64::MAX]),
        ttl in proptest::sample::select(vec![0u64, 1, u64::MAX]),
        epoch_pkts in proptest::sample::select(vec![0u64, 1, u64::MAX]),
        ops in proptest::collection::vec((any::<u8>(), any::<u16>(), any::<u16>()), 0..60),
    ) {
        let cfg = FlowTableConfig {
            capacity,
            ttl_epochs: ttl,
            embryonic_ttl_epochs: 0,
            epoch_pkts,
        };
        let registry = FlowRegistry::new();
        registry.set_workers(1);
        let mut table = FlowTable::new(0, cfg, &registry);
        drive_flow_table(&mut table, &ops);
        prop_assert!(capacity == 0 || table.capacity() >= capacity.min(1 << 27));
        prop_assert!(table.live() <= table.capacity());
    }
}

/// Explicit edge cases around `bucket_floor` clamping: the smallest and
/// largest representable samples must bucket without panicking and report
/// themselves back exactly via min/max.
#[test]
fn histogram_extreme_samples_do_not_panic_or_misbucket() {
    let mut h = LatencyHistogram::new();
    h.record_ns(0);
    h.record_ns(u64::MAX);
    assert_eq!(h.count(), 2);
    assert_eq!(h.min_ns(), 0);
    assert_eq!(h.max_ns(), u64::MAX);
    // Percentiles stay within the observed range even though the top
    // bucket's floor is far below u64::MAX.
    assert_eq!(h.percentile_ns(0.0), 0);
    assert_eq!(h.percentile_ns(100.0), u64::MAX);
    // The Time-typed accessors saturate rather than overflow the
    // picosecond representation.
    let _ = h.max();
    let _ = h.percentile(100.0);
    // An empty histogram answers zeros, not panics.
    let e = LatencyHistogram::new();
    assert_eq!(e.count(), 0);
    assert_eq!(e.min_ns(), 0);
    assert_eq!(e.max_ns(), 0);
    assert_eq!(e.percentile_ns(50.0), 0);
}
