//! The sample applications assembled as pipelines (Figure 8), plus the
//! element registry for the configuration language.
//!
//! Builders return [`PipelineBuilder`] closures: the runtime calls them once
//! per worker to create replicas. Big read-only tables (routing tables, SA
//! database, IDS automata) are process-global caches keyed by their seeds —
//! the simulated equivalent of building them once at startup and sharing
//! through node-local storage.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use nba_core::config::{build_graph, ConfigError, ElementRegistry};
use nba_core::graph::{ElementGraph, GraphBuilder};
use nba_core::lb::LoadBalanceElement;
use nba_core::runtime::{BuildCtx, PipelineBuilder};

use crate::common::{
    CheckIP6Header, CheckIPHeader, CheckPaint, Classifier, DecIP6HLIM, DecIPTTL, L2Forward, NoOp,
    PacketCounter, Paint, RandomWeightedBranch, RoundRobinOutput,
};
use crate::ids::{ACMatch, AlertCounters, IDSAlert, RegexMatch, RuleSet};
use crate::ipsec::{
    IPsecAES, IPsecAuthHMAC, IPsecAuthVerify, IPsecDecrypt, IPsecESPDecap, IPsecESPEncap, SaTable,
};
use crate::ipv4::{IPLookup, RoutingTableV4};
use crate::ipv6::{LookupIP6, RoutingTableV6};
use crate::stateful::{
    ConnTrackFirewall, FirewallConfig, MaglevConfig, MaglevLb, Nat44, NatConfig,
};

/// Sizing knobs of the sample applications.
#[derive(Debug, Clone)]
pub struct AppConfig {
    /// Output NIC ports next hops map onto.
    pub ports: u16,
    /// Seed for all generated tables.
    pub seed: u64,
    /// IPv4 routes in the DIR-24-8 table.
    pub v4_routes: usize,
    /// IPv6 routes in the binary-search table.
    pub v6_routes: usize,
    /// IDS literal signatures.
    pub ids_literals: usize,
    /// IDS regex rules.
    pub ids_regexes: usize,
}

impl Default for AppConfig {
    fn default() -> Self {
        AppConfig {
            ports: 8,
            seed: 42,
            v4_routes: 65_536,
            v6_routes: 16_384,
            ids_literals: 512,
            ids_regexes: 16,
        }
    }
}

// --- Process-global table caches (startup state, excluded from timing) ---

/// One process-global cache of shared startup tables keyed by their
/// construction parameters.
type TableCache<K, V> = OnceLock<Mutex<HashMap<K, Arc<V>>>>;

/// The shared IPv4 table for `(seed, routes, ports)`.
pub fn v4_table(seed: u64, routes: usize, hops: u16) -> Arc<RoutingTableV4> {
    static CACHE: TableCache<(u64, usize, u16), RoutingTableV4> = OnceLock::new();
    let cache = CACHE.get_or_init(Default::default);
    let mut map = cache.lock().expect("v4 cache poisoned");
    map.entry((seed, routes, hops))
        .or_insert_with(|| Arc::new(RoutingTableV4::random(seed, routes, hops.max(1) * 4)))
        .clone()
}

/// The shared IPv6 table for `(seed, routes, ports)`.
pub fn v6_table(seed: u64, routes: usize, hops: u16) -> Arc<RoutingTableV6> {
    static CACHE: TableCache<(u64, usize, u16), RoutingTableV6> = OnceLock::new();
    let cache = CACHE.get_or_init(Default::default);
    let mut map = cache.lock().expect("v6 cache poisoned");
    map.entry((seed, routes, hops))
        .or_insert_with(|| Arc::new(RoutingTableV6::random(seed, routes, hops.max(1) * 4)))
        .clone()
}

/// The shared SA database for `seed`.
pub fn sa_table(seed: u64) -> Arc<SaTable> {
    static CACHE: OnceLock<Mutex<HashMap<u64, Arc<SaTable>>>> = OnceLock::new();
    let cache = CACHE.get_or_init(Default::default);
    let mut map = cache.lock().expect("sa cache poisoned");
    map.entry(seed)
        .or_insert_with(|| Arc::new(SaTable::new(seed)))
        .clone()
}

/// The shared IDS rule set for `(seed, literals, regexes)`.
pub fn rule_set(seed: u64, literals: usize, regexes: usize) -> Arc<RuleSet> {
    static CACHE: TableCache<(u64, usize, usize), RuleSet> = OnceLock::new();
    let cache = CACHE.get_or_init(Default::default);
    let mut map = cache.lock().expect("rules cache poisoned");
    map.entry((seed, literals, regexes))
        .or_insert_with(|| Arc::new(RuleSet::synthetic(seed, literals, regexes)))
        .clone()
}

// --- Pipelines (Figure 8) ---

/// IPv4 router: `CheckIPHeader -> LB -> IPLookup -> DecIPTTL` (Fig. 8a).
pub fn ipv4_router(app: &AppConfig) -> PipelineBuilder {
    let app = app.clone();
    Arc::new(move |ctx: &BuildCtx| {
        let table = v4_table(app.seed, app.v4_routes, app.ports);
        let mut gb = GraphBuilder::new();
        gb.branch_policy(ctx.policy);
        let chk = gb.add(Box::new(CheckIPHeader));
        let lb = gb.add(Box::new(LoadBalanceElement::new(ctx.balancer.clone())));
        let rt = gb.add(Box::new(IPLookup::new(table, app.ports)));
        let ttl = gb.add(Box::new(DecIPTTL));
        gb.connect(chk, 0, lb);
        gb.connect_discard(chk, 1);
        gb.connect(lb, 0, rt);
        gb.connect(rt, 0, ttl);
        gb.connect_exit(ttl, 0);
        gb.entry(chk);
        gb.build().expect("ipv4 pipeline")
    })
}

/// IPv6 router: `CheckIP6Header -> LB -> LookupIP6 -> DecIP6HLIM` (Fig. 8b).
pub fn ipv6_router(app: &AppConfig) -> PipelineBuilder {
    let app = app.clone();
    Arc::new(move |ctx: &BuildCtx| {
        let table = v6_table(app.seed, app.v6_routes, app.ports);
        let mut gb = GraphBuilder::new();
        gb.branch_policy(ctx.policy);
        let chk = gb.add(Box::new(CheckIP6Header));
        let lb = gb.add(Box::new(LoadBalanceElement::new(ctx.balancer.clone())));
        let rt = gb.add(Box::new(LookupIP6::new(table, app.ports)));
        let hlim = gb.add(Box::new(DecIP6HLIM));
        gb.connect(chk, 0, lb);
        gb.connect_discard(chk, 1);
        gb.connect(lb, 0, rt);
        gb.connect(rt, 0, hlim);
        gb.connect_exit(hlim, 0);
        gb.entry(chk);
        gb.build().expect("ipv6 pipeline")
    })
}

/// IPsec gateway: routing + `IPsecESPEncap -> LB -> IPsecAES ->
/// IPsecAuthHMAC` (Fig. 8c).
pub fn ipsec_gateway(app: &AppConfig) -> PipelineBuilder {
    let app = app.clone();
    Arc::new(move |ctx: &BuildCtx| {
        let table = v4_table(app.seed, app.v4_routes, app.ports);
        let sa = sa_table(app.seed);
        let mut gb = GraphBuilder::new();
        gb.branch_policy(ctx.policy);
        let chk = gb.add(Box::new(CheckIPHeader));
        let rt = gb.add(Box::new(IPLookup::new(table, app.ports)));
        let ttl = gb.add(Box::new(DecIPTTL));
        let encap = gb.add(Box::new(IPsecESPEncap::new(sa.clone())));
        let lb = gb.add(Box::new(LoadBalanceElement::new(ctx.balancer.clone())));
        let aes = gb.add(Box::new(IPsecAES::new(sa.clone())));
        let auth = gb.add(Box::new(IPsecAuthHMAC::new(sa)));
        gb.connect(chk, 0, rt);
        gb.connect_discard(chk, 1);
        gb.connect(rt, 0, ttl);
        gb.connect(ttl, 0, encap);
        gb.connect(encap, 0, lb);
        gb.connect(lb, 0, aes);
        gb.connect(aes, 0, auth);
        gb.connect_exit(auth, 0);
        gb.entry(chk);
        gb.build().expect("ipsec pipeline")
    })
}

/// The receive side of the IPsec gateway: verify, decrypt, decapsulate,
/// then route the recovered inner packet (the inverse of
/// [`ipsec_gateway`]; both crypto stages are offloadable).
pub fn ipsec_decap_gateway(app: &AppConfig) -> PipelineBuilder {
    let app = app.clone();
    Arc::new(move |ctx: &BuildCtx| {
        let table = v4_table(app.seed, app.v4_routes, app.ports);
        let sa = sa_table(app.seed);
        let mut gb = GraphBuilder::new();
        gb.branch_policy(ctx.policy);
        let chk = gb.add(Box::new(CheckIPHeader));
        let lb = gb.add(Box::new(LoadBalanceElement::new(ctx.balancer.clone())));
        let verify = gb.add(Box::new(IPsecAuthVerify::new(sa.clone())));
        let decrypt = gb.add(Box::new(IPsecDecrypt::new(sa)));
        let decap = gb.add(Box::new(IPsecESPDecap));
        let rt = gb.add(Box::new(IPLookup::new(table, app.ports)));
        let ttl = gb.add(Box::new(DecIPTTL));
        gb.connect(chk, 0, lb);
        gb.connect_discard(chk, 1);
        gb.connect(lb, 0, verify);
        gb.connect(verify, 0, decrypt);
        gb.connect(decrypt, 0, decap);
        gb.connect(decap, 0, rt);
        gb.connect(rt, 0, ttl);
        gb.connect_exit(ttl, 0);
        gb.entry(chk);
        gb.build().expect("ipsec decap pipeline")
    })
}

/// IDS: `CheckIPHeader -> LB -> ACMatch -> (RegexMatch) -> IDSAlert`
/// (Fig. 8d). Returns the shared alert counters for assertions/reports.
pub fn ids(app: &AppConfig) -> (PipelineBuilder, Arc<AlertCounters>) {
    let app = app.clone();
    let counters = Arc::new(AlertCounters::default());
    let counters2 = counters.clone();
    let builder: PipelineBuilder = Arc::new(move |ctx: &BuildCtx| {
        let rules = rule_set(app.seed, app.ids_literals, app.ids_regexes);
        let mut gb = GraphBuilder::new();
        gb.branch_policy(ctx.policy);
        let chk = gb.add(Box::new(CheckIPHeader));
        let lb = gb.add(Box::new(LoadBalanceElement::new(ctx.balancer.clone())));
        let ac = gb.add(Box::new(ACMatch::new(rules.clone())));
        let re = gb.add(Box::new(RegexMatch::new(rules)));
        let alert = gb.add(Box::new(IDSAlert::new(counters2.clone(), app.ports)));
        let alert2 = gb.add(Box::new(IDSAlert::new(counters2.clone(), app.ports)));
        gb.connect(chk, 0, lb);
        gb.connect_discard(chk, 1);
        gb.connect(lb, 0, ac);
        gb.connect(ac, 0, alert);
        gb.connect(ac, 1, re);
        gb.connect(re, 0, alert2);
        gb.connect_exit(alert, 0);
        gb.connect_exit(alert2, 0);
        gb.entry(chk);
        gb.build().expect("ids pipeline")
    });
    (builder, counters)
}

/// NAT44: `CheckIPHeader -> Nat44` — stateful source translation over the
/// per-worker flow shards.
pub fn nat44(cfg: &NatConfig) -> PipelineBuilder {
    let cfg = cfg.clone();
    Arc::new(move |ctx: &BuildCtx| {
        let mut gb = GraphBuilder::new();
        gb.branch_policy(ctx.policy);
        let chk = gb.add(Box::new(CheckIPHeader));
        let nat = gb.add(Box::new(Nat44::new(cfg.clone())));
        gb.connect(chk, 0, nat);
        gb.connect_discard(chk, 1);
        gb.connect_exit(nat, 0);
        gb.entry(chk);
        gb.build().expect("nat44 pipeline")
    })
}

/// Stateful firewall: `CheckIPHeader -> ConnTrackFirewall`, out-of-state
/// segments discarded on port 1.
pub fn conntrack_fw(cfg: &FirewallConfig) -> PipelineBuilder {
    let cfg = cfg.clone();
    Arc::new(move |ctx: &BuildCtx| {
        let mut gb = GraphBuilder::new();
        gb.branch_policy(ctx.policy);
        let chk = gb.add(Box::new(CheckIPHeader));
        let fw = gb.add(Box::new(ConnTrackFirewall::new(cfg.clone())));
        gb.connect(chk, 0, fw);
        gb.connect_discard(chk, 1);
        gb.connect_exit(fw, 0);
        gb.connect_discard(fw, 1);
        gb.entry(chk);
        gb.build().expect("conntrack pipeline")
    })
}

/// Maglev L4 balancer: `CheckIPHeader -> MaglevLb` with connection
/// pinning in the flow shards.
pub fn maglev_lb(cfg: &MaglevConfig) -> PipelineBuilder {
    let cfg = cfg.clone();
    Arc::new(move |ctx: &BuildCtx| {
        let mut gb = GraphBuilder::new();
        gb.branch_policy(ctx.policy);
        let chk = gb.add(Box::new(CheckIPHeader));
        let lb = gb.add(Box::new(MaglevLb::new(cfg.clone())));
        gb.connect(chk, 0, lb);
        gb.connect_discard(chk, 1);
        gb.connect_exit(lb, 0);
        gb.entry(chk);
        gb.build().expect("maglev pipeline")
    })
}

/// Minimal L2 forwarder (the §4.6 latency baseline).
pub fn l2fwd(ports: u16) -> PipelineBuilder {
    Arc::new(move |ctx: &BuildCtx| {
        let mut gb = GraphBuilder::new();
        gb.branch_policy(ctx.policy);
        let fwd = gb.add(Box::new(L2Forward::new(ports)));
        gb.connect_exit(fwd, 0);
        gb.entry(fwd);
        gb.build().expect("l2fwd pipeline")
    })
}

/// The synthetic two-path branch of Figures 1/10: a weighted branch into
/// two echo paths. `minority` is the fraction taking the second path.
pub fn branch_echo(minority: f64, ports: u16) -> PipelineBuilder {
    Arc::new(move |ctx: &BuildCtx| {
        let mut gb = GraphBuilder::new();
        gb.branch_policy(ctx.policy);
        let br = gb.add(Box::new(RandomWeightedBranch::new(
            minority,
            alignment_seed(ctx.worker),
        )));
        let a = gb.add(Box::new(RoundRobinOutput::new(ports)));
        let b = gb.add(Box::new(RoundRobinOutput::new(ports)));
        gb.connect(br, 0, a);
        gb.connect(br, 1, b);
        gb.connect_exit(a, 0);
        gb.connect_exit(b, 0);
        gb.entry(br);
        gb.build().expect("branch pipeline")
    })
}

/// A no-branch echo baseline (Figure 1's solid line).
pub fn echo(ports: u16) -> PipelineBuilder {
    Arc::new(move |ctx: &BuildCtx| {
        let mut gb = GraphBuilder::new();
        gb.branch_policy(ctx.policy);
        let out = gb.add(Box::new(RoundRobinOutput::new(ports)));
        gb.connect_exit(out, 0);
        gb.entry(out);
        gb.build().expect("echo pipeline")
    })
}

/// A linear chain of `n` no-op elements behind an L2 forwarder (§4.2
/// composition-overhead experiment).
pub fn noop_chain(n: usize, ports: u16) -> PipelineBuilder {
    Arc::new(move |ctx: &BuildCtx| {
        let mut gb = GraphBuilder::new();
        gb.branch_policy(ctx.policy);
        let fwd = gb.add(Box::new(L2Forward::new(ports)));
        let mut prev = fwd;
        for _ in 0..n {
            let nop = gb.add(Box::new(NoOp));
            gb.connect(prev, 0, nop);
            prev = nop;
        }
        gb.connect_exit(prev, 0);
        gb.entry(fwd);
        gb.build().expect("noop pipeline")
    })
}

/// Worker-unique seed for stochastic elements.
fn alignment_seed(worker: usize) -> u64 {
    0xb0ba_15ee_d000_0000 | worker as u64
}

// --- The configuration-language registry ---

/// Builds the element registry for a worker's [`BuildCtx`], exposing every
/// application element to the Click-dialect configuration language.
///
/// Table-backed elements take parameters of the form `"key=value"`:
/// `IPLookup("routes=65536", "ports=8", "seed=42")`.
pub fn registry(ctx: &BuildCtx, app: &AppConfig) -> ElementRegistry {
    fn param(params: &[String], key: &str) -> Option<String> {
        params.iter().find_map(|p| {
            p.strip_prefix(key)
                .and_then(|r| r.strip_prefix('='))
                .map(str::to_owned)
        })
    }
    fn num(params: &[String], key: &str, default: u64) -> Result<u64, String> {
        match param(params, key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("bad {key}: {v:?}")),
        }
    }

    let mut reg = ElementRegistry::new();
    let app_c = app.clone();
    let balancer = ctx.balancer.clone();
    let worker = ctx.worker;

    reg.register("NoOp", |_| Ok(Box::new(NoOp)));
    reg.register("CheckIPHeader", |_| Ok(Box::new(CheckIPHeader)));
    reg.register("CheckIP6Header", |_| Ok(Box::new(CheckIP6Header)));
    reg.register("DecIPTTL", |_| Ok(Box::new(DecIPTTL)));
    reg.register("DecIP6HLIM", |_| Ok(Box::new(DecIP6HLIM)));
    reg.register("DropBroadcasts", |_| {
        Ok(Box::new(crate::common::DropBroadcasts))
    });
    reg.register("Classifier", |_| Ok(Box::new(Classifier)));
    reg.register("Paint", |p: &[String]| {
        let color = num(p, "color", 1)? as u8;
        if color == 0 {
            return Err("paint color must be 1..=255".to_owned());
        }
        Ok(Box::new(Paint::new(color)))
    });
    reg.register("CheckPaint", |p: &[String]| {
        let color = num(p, "color", 1)? as u8;
        Ok(Box::new(CheckPaint::new(color)))
    });
    reg.register("PacketCounter", |_| {
        Ok(Box::new(PacketCounter::new(std::sync::Arc::new(
            crate::common::CounterStats::default(),
        ))))
    });
    {
        let app = app_c.clone();
        reg.register("L2Forward", move |p| {
            let ports = num(p, "ports", u64::from(app.ports))? as u16;
            Ok(Box::new(L2Forward::new(ports)))
        });
    }
    {
        let app = app_c.clone();
        reg.register("RoundRobinOutput", move |p| {
            let ports = num(p, "ports", u64::from(app.ports))? as u16;
            Ok(Box::new(RoundRobinOutput::new(ports)))
        });
    }
    {
        reg.register("RandomWeightedBranch", move |p| {
            let pm = param(p, "minority")
                .unwrap_or_else(|| "0.5".to_owned())
                .parse::<f64>()
                .map_err(|e| e.to_string())?;
            Ok(Box::new(RandomWeightedBranch::new(
                pm,
                alignment_seed(worker),
            )))
        });
    }
    {
        let balancer = balancer.clone();
        reg.register("LoadBalance", move |_| {
            Ok(Box::new(LoadBalanceElement::new(balancer.clone())))
        });
    }
    {
        let app = app_c.clone();
        reg.register("IPLookup", move |p| {
            let seed = num(p, "seed", app.seed)?;
            let routes = num(p, "routes", app.v4_routes as u64)? as usize;
            let ports = num(p, "ports", u64::from(app.ports))? as u16;
            Ok(Box::new(IPLookup::new(
                v4_table(seed, routes, ports),
                ports,
            )))
        });
    }
    {
        let app = app_c.clone();
        reg.register("LookupIP6", move |p| {
            let seed = num(p, "seed", app.seed)?;
            let routes = num(p, "routes", app.v6_routes as u64)? as usize;
            let ports = num(p, "ports", u64::from(app.ports))? as u16;
            Ok(Box::new(LookupIP6::new(
                v6_table(seed, routes, ports),
                ports,
            )))
        });
    }
    {
        let app = app_c.clone();
        reg.register("IPsecESPEncap", move |p| {
            let seed = num(p, "seed", app.seed)?;
            Ok(Box::new(IPsecESPEncap::new(sa_table(seed))))
        });
    }
    {
        let app = app_c.clone();
        reg.register("IPsecAES", move |p| {
            let seed = num(p, "seed", app.seed)?;
            Ok(Box::new(IPsecAES::new(sa_table(seed))))
        });
    }
    {
        let app = app_c.clone();
        reg.register("IPsecAuthHMAC", move |p| {
            let seed = num(p, "seed", app.seed)?;
            Ok(Box::new(IPsecAuthHMAC::new(sa_table(seed))))
        });
    }
    {
        let app = app_c.clone();
        reg.register("IPsecAuthVerify", move |p| {
            let seed = num(p, "seed", app.seed)?;
            Ok(Box::new(IPsecAuthVerify::new(sa_table(seed))))
        });
    }
    {
        let app = app_c.clone();
        reg.register("IPsecDecrypt", move |p| {
            let seed = num(p, "seed", app.seed)?;
            Ok(Box::new(IPsecDecrypt::new(sa_table(seed))))
        });
    }
    reg.register("IPsecESPDecap", |_| Ok(Box::new(IPsecESPDecap)));
    {
        let app = app_c.clone();
        reg.register("ACMatch", move |p| {
            let seed = num(p, "seed", app.seed)?;
            let lits = num(p, "literals", app.ids_literals as u64)? as usize;
            let res = num(p, "regexes", app.ids_regexes as u64)? as usize;
            Ok(Box::new(ACMatch::new(rule_set(seed, lits, res))))
        });
    }
    {
        let app = app_c.clone();
        reg.register("RegexMatch", move |p| {
            let seed = num(p, "seed", app.seed)?;
            let lits = num(p, "literals", app.ids_literals as u64)? as usize;
            let res = num(p, "regexes", app.ids_regexes as u64)? as usize;
            Ok(Box::new(RegexMatch::new(rule_set(seed, lits, res))))
        });
    }
    {
        // Shared flow-table knobs: `capacity=`, `ttl=`, `embryonic_ttl=`,
        // `epoch=` (packets per bucket epoch).
        fn flow_table(p: &[String]) -> Result<nba_core::flow::FlowTableConfig, String> {
            let d = nba_core::flow::FlowTableConfig::default();
            Ok(nba_core::flow::FlowTableConfig {
                capacity: num(p, "capacity", d.capacity)?,
                ttl_epochs: num(p, "ttl", d.ttl_epochs)?,
                embryonic_ttl_epochs: num(p, "embryonic_ttl", d.embryonic_ttl_epochs)?,
                epoch_pkts: num(p, "epoch", d.epoch_pkts)?,
            })
        }
        reg.register("Nat44", move |p| {
            let d = NatConfig::default();
            Ok(Box::new(Nat44::new(NatConfig {
                ext_ip_base: num(p, "ext_ip_base", u64::from(d.ext_ip_base))? as u32,
                ext_ips: num(p, "ext_ips", u64::from(d.ext_ips))? as u32,
                ports_per_ip: num(p, "ports_per_ip", u64::from(d.ports_per_ip))? as u32,
                table: flow_table(p)?,
            })))
        });
        reg.register("ConnTrackFirewall", move |p| {
            Ok(Box::new(ConnTrackFirewall::new(FirewallConfig {
                table: flow_table(p)?,
            })))
        });
        let app = app_c.clone();
        reg.register("MaglevLb", move |p| {
            let d = MaglevConfig::default();
            // The clamps bound table construction (O(table × backends)
            // rendezvous hashes, twice) so no configuration can stall
            // graph assembly.
            Ok(Box::new(MaglevLb::new(MaglevConfig {
                backends: num(p, "backends", u64::from(d.backends))?.clamp(1, 512) as u32,
                table_size: num(p, "table", u64::from(d.table_size))?.clamp(1, 1 << 17) as u32,
                ports: num(p, "ports", u64::from(app.ports))?.clamp(1, u64::from(u16::MAX)) as u16,
                seed: num(p, "seed", d.seed)?,
                flip_epoch: num(p, "flip_epoch", d.flip_epoch)?,
                flip_remove: num(p, "flip_remove", u64::from(d.flip_remove))? as u32,
                table: flow_table(p)?,
            })))
        });
    }
    {
        let app = app_c.clone();
        reg.register("IDSAlert", move |p| {
            let ports = num(p, "ports", u64::from(app.ports))? as u16;
            // Config-built alert stages get their own counters.
            Ok(Box::new(IDSAlert::new(
                Arc::new(AlertCounters::default()),
                ports,
            )))
        });
    }
    reg
}

/// Builds a pipeline from configuration-language text: the per-worker
/// registry resolves classes and shared tables; parse errors surface at
/// build time.
pub fn pipeline_from_config(src: &str, app: &AppConfig) -> PipelineBuilder {
    let src = src.to_owned();
    let app = app.clone();
    Arc::new(move |ctx: &BuildCtx| {
        let reg = registry(ctx, &app);
        match build_graph(&src, &reg, ctx.policy) {
            Ok(g) => g,
            Err(e) => panic!("pipeline configuration error: {e}"),
        }
    })
}

/// The canonical IPv4 router configuration (matches [`ipv4_router`]).
pub const IPV4_CONFIG: &str = r#"
    src :: FromInput();
    chk :: CheckIPHeader();
    lb  :: LoadBalance();
    rt  :: IPLookup();
    ttl :: DecIPTTL();
    out :: ToOutput();

    src -> chk;
    chk [0] -> lb -> rt -> ttl -> out;
    chk [1] -> Discard;
"#;

/// The canonical IPsec gateway configuration (matches [`ipsec_gateway`]).
pub const IPSEC_CONFIG: &str = r#"
    src   :: FromInput();
    chk   :: CheckIPHeader();
    rt    :: IPLookup();
    ttl   :: DecIPTTL();
    encap :: IPsecESPEncap();
    lb    :: LoadBalance();
    aes   :: IPsecAES();
    auth  :: IPsecAuthHMAC();
    out   :: ToOutput();

    src -> chk;
    chk [0] -> rt -> ttl -> encap -> lb -> aes -> auth -> out;
    chk [1] -> Discard;
"#;

/// A config-language error example used in docs/tests.
pub fn build_from_config_str(
    src: &str,
    ctx: &BuildCtx,
    app: &AppConfig,
) -> Result<ElementGraph, ConfigError> {
    let reg = registry(ctx, app);
    build_graph(src, &reg, ctx.policy)
}
