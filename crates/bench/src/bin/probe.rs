//! Calibration probe: prints detailed counters for one configuration.
use nba_apps::{pipelines, AppConfig};
use nba_core::lb;
use nba_core::runtime::{des, traffic_per_port, RuntimeConfig};
use nba_io::{IpVersion, SizeDist, TrafficConfig};
use nba_sim::Time;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which = args.first().map(String::as_str).unwrap_or("v6");
    let size: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(64);
    let mode = args.get(2).map(String::as_str).unwrap_or("cpu");

    let cfg = RuntimeConfig { warmup: Time::from_ms(14), measure: Time::from_ms(28), ..RuntimeConfig::default() };
    let app = AppConfig { ports: 8, ..AppConfig::default() };
    let (pipeline, v6) = match which {
        "v4" => (pipelines::ipv4_router(&app), false),
        "v6" => (pipelines::ipv6_router(&app), true),
        "ipsec" => (pipelines::ipsec_gateway(&app), false),
        "ids" => (pipelines::ids(&app).0, false),
        _ => panic!("unknown app"),
    };
    let traffic = traffic_per_port(&cfg.topology, &TrafficConfig {
        offered_gbps: 10.0,
        size: SizeDist::Fixed(size),
        ip_version: if v6 { IpVersion::V6 } else { IpVersion::V4 },
        ..TrafficConfig::default()
    });
    let balancer: lb::SharedBalancer = match mode {
        "cpu" => lb::shared(Box::new(lb::CpuOnly)),
        "gpu" => lb::shared(Box::new(lb::GpuOnly)),
        w => lb::shared(Box::new(lb::FixedFraction::new(w.parse().unwrap()))),
    };
    let r = des::run(&cfg, &pipeline, &balancer, &traffic);
    println!("{which} {size}B {mode}: {:.2} Gbps ({:.2} Mpps)", r.tx_gbps, r.tx_mpps());
    println!("  window {:?}", r.window);
    println!("  rx_dropped {} offered {}", r.rx_dropped, r.offered_packets);
    for (i, g) in r.gpu.iter().enumerate() {
        println!("  gpu{i}: tasks {} h2d {}MB d2h {}MB kbusy {} cbusy {}", g.tasks, g.h2d_bytes/1_000_000, g.d2h_bytes/1_000_000, g.kernel_busy, g.copy_busy);
    }
    println!("  lat p50 {} p999 {}", r.latency.percentile(50.0), r.latency.percentile(99.9));
}
