//! CPU/GPU load balancing (§3.4).
//!
//! Load balancers are *elements* "to allow application developers to easily
//! replace the load balancing algorithm as needed": a per-batch element
//! stamps the batch-level [`crate::batch::anno::LB_DEVICE`] annotation with
//! the chosen processor before the batch reaches an offloadable element.
//!
//! The adaptive balancer follows the paper: it observes the system
//! throughput (packets transmitted per unit time via the system inspector),
//! smooths it with a moving average, and every update interval moves the
//! offloading fraction `w` by `δ` in the direction that last increased
//! throughput — waiting longer between moves at high `w` where offloading
//! jitter persists longer, and never standing still (the built-in
//! perturbation that lets it re-converge when the workload shifts).

use nba_sim::Time;

use crate::audit::{DecisionClock, DecisionContext, DecisionKind, DecisionLog, DecisionRecord};
use crate::batch::{anno, PacketBatch};
use crate::element::{ElemCtx, Element, ElementKind};

/// A processor-selection policy.
pub trait LoadBalancer: Send {
    /// Chooses the processor of the next batch: `0` = CPU, `k > 0` =
    /// accelerator `k - 1`.
    fn decide(&mut self) -> u64;

    /// Feeds an observation of total transmitted packets at `now`.
    /// Implementations rate-limit internally.
    fn tick(&mut self, now: Time, total_tx_packets: u64);

    /// Feeds the latest system latency estimate (EWMA, nanoseconds).
    /// Most balancers ignore it; [`LatencyBounded`] acts on it.
    fn observe_latency(&mut self, _ewma_ns: u64) {}

    /// Tells the balancer the device's circuit breaker tripped (`false`)
    /// or re-admitted the device (`true`). Adaptive balancers drive `w`
    /// toward 0 while the device is quarantined instead of hill-climbing
    /// against a processor that cannot do work; fixed policies ignore it
    /// (the device thread falls their batches back regardless).
    fn observe_device_health(&mut self, _healthy: bool) {}

    /// Tells the balancer its shard just inherited `gained_buckets` RSS
    /// buckets from a dead peer (worker-plane re-steer). The offered load
    /// regime changed discontinuously, so adaptive balancers discard their
    /// observation window instead of comparing across the step; fixed
    /// policies ignore it.
    fn on_resteer(&mut self, _gained_buckets: usize) {}

    /// Enables the bounded decision audit log, keeping the first
    /// `capacity` records. Call **before** the first tick so the log's
    /// recorded `initial_w` anchors the replayed trajectory; stateless
    /// balancers ignore it.
    fn enable_audit(&mut self, _capacity: usize) {}

    /// Publishes device-side gauges (queue depth, busy fraction, predicted
    /// per-packet costs) that explain subsequent records. Observational
    /// only: no balancer branches on these values.
    fn set_decision_context(&mut self, _ctx: DecisionContext) {}

    /// Replaces the time-based update interval with a logical packet-count
    /// clock so the decision stream becomes a pure function of the packet
    /// set (cross-runtime determinism). Adaptive balancers only.
    fn set_decision_clock(&mut self, _clock: DecisionClock) {}

    /// Fires any decision-clock milestones still pending at `final_tx`
    /// transmitted packets. Runtimes call this once at teardown: the
    /// per-batch tick reads the tx counter *before* the batch transmits,
    /// so without a flush the trailing milestones — and how many a run
    /// records — would depend on tick cadence rather than the packet set.
    /// No-op for time-based balancers (an extra wall-clock update would
    /// perturb the hill climb).
    fn flush_decision_clock(&mut self, _final_tx: u64) {}

    /// The decision log recorded so far, when auditing is enabled.
    fn audit_log(&self) -> Option<&DecisionLog> {
        None
    }

    /// Takes ownership of the decision log (report assembly).
    fn take_audit_log(&mut self) -> Option<DecisionLog> {
        None
    }

    /// Current offloading fraction in `[0, 1]` (for reporting).
    fn offload_fraction(&self) -> f64;

    /// Balancer name (for reports).
    fn name(&self) -> &'static str;

    /// One-line JSON self-description served by the live stats endpoint
    /// (`/status`). The default covers every balancer: name plus the
    /// current `w`; adaptive implementations may override to expose
    /// internal state (step direction, probe phase, ...).
    fn status_json(&self) -> String {
        format!(
            "{{\"name\":\"{}\",\"w\":{}}}",
            crate::telemetry::json_escape(self.name()),
            crate::telemetry::json_f64(self.offload_fraction()),
        )
    }
}

/// Processes everything on the CPU.
#[derive(Debug, Default)]
pub struct CpuOnly;

impl LoadBalancer for CpuOnly {
    fn decide(&mut self) -> u64 {
        0
    }
    fn tick(&mut self, _now: Time, _tx: u64) {}
    fn offload_fraction(&self) -> f64 {
        0.0
    }
    fn name(&self) -> &'static str {
        "cpu-only"
    }
}

/// Offloads every batch to the accelerator.
#[derive(Debug, Default)]
pub struct GpuOnly;

impl LoadBalancer for GpuOnly {
    fn decide(&mut self) -> u64 {
        1
    }
    fn tick(&mut self, _now: Time, _tx: u64) {}
    fn offload_fraction(&self) -> f64 {
        1.0
    }
    fn name(&self) -> &'static str {
        "gpu-only"
    }
}

/// Offloads a fixed fraction of batches, spread evenly by error diffusion
/// (used for the Figure 2 offloading-fraction sweep and manual tuning).
#[derive(Debug)]
pub struct FixedFraction {
    w: f64,
    /// Error-diffusion accumulator in parts per million (exact arithmetic).
    acc_ppm: u64,
    w_ppm: u64,
}

impl FixedFraction {
    /// Creates a balancer offloading fraction `w` of batches.
    ///
    /// # Panics
    ///
    /// Panics if `w` is outside `[0, 1]`.
    pub fn new(w: f64) -> FixedFraction {
        assert!((0.0..=1.0).contains(&w), "fraction out of range: {w}");
        FixedFraction {
            w,
            acc_ppm: 0,
            w_ppm: (w * 1e6).round() as u64,
        }
    }
}

impl LoadBalancer for FixedFraction {
    fn decide(&mut self) -> u64 {
        self.acc_ppm += self.w_ppm;
        if self.acc_ppm >= 1_000_000 {
            self.acc_ppm -= 1_000_000;
            1
        } else {
            0
        }
    }
    fn tick(&mut self, _now: Time, _tx: u64) {}
    fn offload_fraction(&self) -> f64 {
        self.w
    }
    fn name(&self) -> &'static str {
        "fixed"
    }
}

/// Tuning knobs of the adaptive balancer. Paper values are the defaults;
/// scaled-down variants keep the same proportions for shorter simulations.
#[derive(Debug, Clone)]
pub struct AlbConfig {
    /// Step size δ applied to `w` each move (paper: 4 %).
    pub delta: f64,
    /// Observation/update interval (paper: 0.2 s).
    pub update_interval: Time,
    /// Moving-average window in update intervals.
    pub avg_window: u32,
    /// Updates to wait after a move at `w = 0` (paper: 2).
    pub min_wait: u32,
    /// Updates to wait after a move at `w = 1` (paper: 32).
    pub max_wait: u32,
    /// Initial offloading fraction.
    pub initial_w: f64,
}

impl Default for AlbConfig {
    fn default() -> Self {
        AlbConfig {
            delta: 0.04,
            update_interval: Time::from_ms(200),
            avg_window: 4,
            min_wait: 2,
            max_wait: 32,
            initial_w: 0.5,
        }
    }
}

impl AlbConfig {
    /// A proportionally scaled configuration for short simulations: all
    /// time constants shrink by `factor`, the algorithm is unchanged.
    pub fn scaled_down(factor: u64) -> AlbConfig {
        let base = AlbConfig::default();
        AlbConfig {
            update_interval: base.update_interval / factor,
            ..base
        }
    }
}

/// The adaptive load balancer (§3.4).
#[derive(Debug)]
pub struct Adaptive {
    cfg: AlbConfig,
    w: f64,
    dir: f64,
    acc: f64,
    last_obs_time: Time,
    last_tx: u64,
    window: Vec<f64>,
    last_avg: Option<f64>,
    wait_remaining: u32,
    /// Breaker-fed device health; while `false` the balancer walks `w`
    /// toward 0 and sends only sparse probe batches device-ward.
    device_healthy: bool,
    /// Decisions since the last quarantine probe.
    probe_tick: u32,
    /// Latest latency EWMA fed via [`LoadBalancer::observe_latency`]
    /// (recorded in audit records; the plain adaptive walk ignores it).
    latest_latency_ns: u64,
    /// Device-side explanation gauges for the audit records.
    ctx: DecisionContext,
    /// Logical decision clock replacing the time interval when set.
    clock: Option<DecisionClock>,
    /// Bounded decision audit log (None until enabled).
    audit: Option<DecisionLog>,
    /// Trace of (time, w) after each move, for the convergence plots.
    pub trace: Vec<(Time, f64)>,
}

/// While quarantined, one decision in this many still picks the device —
/// the traffic that lets the breaker's half-open probe actually run (with
/// `w` at 0 no batch would ever reach the device and a revived device
/// could never be re-admitted). The breaker blocks these until the
/// quarantine interval elapses, so they cost one cheap CPU fallback each.
const QUARANTINE_PROBE_EVERY: u32 = 64;

impl Adaptive {
    /// Creates an adaptive balancer.
    pub fn new(cfg: AlbConfig) -> Adaptive {
        let w = cfg.initial_w.clamp(0.0, 1.0);
        Adaptive {
            cfg,
            w,
            dir: 1.0,
            acc: 0.0,
            last_obs_time: Time::ZERO,
            last_tx: 0,
            window: Vec::new(),
            last_avg: None,
            wait_remaining: 0,
            device_healthy: true,
            probe_tick: 0,
            latest_latency_ns: 0,
            ctx: DecisionContext::default(),
            clock: None,
            audit: None,
            trace: Vec::new(),
        }
    }

    /// Appends one audit record for a state transition that just happened
    /// (`w`/`dir` already hold their post-transition values).
    #[allow(clippy::too_many_arguments)]
    fn record(
        &mut self,
        t: Time,
        kind: DecisionKind,
        total_tx: u64,
        thr: f64,
        avg: f64,
        last_avg: f64,
        w_before: f64,
    ) {
        let latency = self.latest_latency_ns;
        let healthy = self.device_healthy;
        let ctx = self.ctx;
        let dir = self.dir;
        let w_after = self.w;
        let Some(log) = self.audit.as_mut() else {
            return;
        };
        let rec = DecisionRecord {
            seq: log.next_seq(),
            t,
            kind,
            total_tx,
            latency_ewma_ns: latency,
            healthy,
            queue_depth: ctx.queue_depth,
            gpu_busy: ctx.gpu_busy,
            predicted_cpu_ns_per_pkt: ctx.predicted_cpu_ns_per_pkt,
            predicted_gpu_ns_per_pkt: ctx.predicted_gpu_ns_per_pkt,
            thr_pps: thr,
            avg_pps: avg,
            last_avg_pps: last_avg,
            dir,
            w_before,
            w_after,
        };
        log.push(rec);
    }

    /// The un-clocked update step: every state mutation emits exactly one
    /// audit record, which is what makes the log replayable — feeding the
    /// recorded `(t, total_tx, latency, health)` stream back through a
    /// fresh balancer traverses the same branches bit-for-bit.
    fn tick_inner(&mut self, now: Time, total_tx_packets: u64) {
        if !self.device_healthy {
            // No hill-climbing against a dead device: walk `w` down one
            // δ per update interval so the trace records the fail-over.
            if now.saturating_sub(self.last_obs_time) >= self.cfg.update_interval {
                self.last_obs_time = now;
                self.last_tx = total_tx_packets;
                let w_before = self.w;
                if self.w > 0.0 {
                    self.w = (self.w - self.cfg.delta).max(0.0);
                    self.trace.push((now, self.w));
                }
                // Recorded even when `w` is already 0: the tick still moved
                // the observation anchor, and replay must reproduce that.
                self.record(
                    now,
                    DecisionKind::QuarantineStep,
                    total_tx_packets,
                    0.0,
                    0.0,
                    0.0,
                    w_before,
                );
            }
            return;
        }
        if self.last_obs_time == Time::ZERO {
            self.last_obs_time = now;
            self.last_tx = total_tx_packets;
            self.record(
                now,
                DecisionKind::Init,
                total_tx_packets,
                0.0,
                0.0,
                0.0,
                self.w,
            );
            return;
        }
        let elapsed = now.saturating_sub(self.last_obs_time);
        if elapsed < self.cfg.update_interval {
            return;
        }
        // Throughput in packets per second over the last interval.
        let tx = total_tx_packets.saturating_sub(self.last_tx);
        let thr = tx as f64 / elapsed.as_secs_f64();
        self.last_obs_time = now;
        self.last_tx = total_tx_packets;

        self.window.push(thr);
        if (self.window.len() as u32) < self.cfg.avg_window {
            self.record(
                now,
                DecisionKind::Observe,
                total_tx_packets,
                thr,
                0.0,
                0.0,
                self.w,
            );
            return;
        }
        let avg = self.window.iter().sum::<f64>() / self.window.len() as f64;
        self.window.clear();

        if self.wait_remaining > 0 {
            self.wait_remaining -= 1;
            let last = self.last_avg.unwrap_or(0.0);
            self.record(
                now,
                DecisionKind::Hold,
                total_tx_packets,
                thr,
                avg,
                last,
                self.w,
            );
            return;
        }

        // Move towards higher throughput; always move (perturbation).
        let prev_avg = self.last_avg.unwrap_or(0.0);
        if let Some(last) = self.last_avg {
            if avg < last {
                self.dir = -self.dir;
            }
        }
        self.last_avg = Some(avg);
        let w_before = self.w;
        self.w = (self.w + self.dir * self.cfg.delta).clamp(0.0, 1.0);
        if self.w == 0.0 {
            self.dir = 1.0;
        } else if self.w == 1.0 {
            self.dir = -1.0;
        }
        self.wait_remaining = self.wait_for(self.w);
        self.trace.push((now, self.w));
        self.record(
            now,
            DecisionKind::Move,
            total_tx_packets,
            thr,
            avg,
            prev_avg,
            w_before,
        );
    }

    fn wait_for(&self, w: f64) -> u32 {
        // "Gradually increase the waiting interval from 2 to 32 update
        // intervals when we increase w from 0 to 100%."
        let span = self.cfg.max_wait.saturating_sub(self.cfg.min_wait) as f64;
        self.cfg.min_wait + (span * w).round() as u32
    }
}

impl LoadBalancer for Adaptive {
    fn decide(&mut self) -> u64 {
        if !self.device_healthy {
            // Quarantine: keep the device path nearly dry, but emit a
            // sparse probe so the breaker's half-open check sees traffic.
            self.probe_tick += 1;
            if self.probe_tick >= QUARANTINE_PROBE_EVERY {
                self.probe_tick = 0;
                return 1;
            }
            return 0;
        }
        self.acc += self.w;
        if self.acc >= 1.0 {
            self.acc -= 1.0;
            1
        } else {
            0
        }
    }

    fn tick(&mut self, now: Time, total_tx_packets: u64) {
        match self.clock {
            None => self.tick_inner(now, total_tx_packets),
            Some(clock) => {
                // Logical clock: updates fire at packet-count milestones
                // with fully quantized (t, tx) inputs, so the record
                // stream is a pure function of the transmitted packet set
                // regardless of runtime timing or tick cadence.
                let milestone = (total_tx_packets / clock.pkts_per_update).min(clock.max_updates);
                while self.clock.map_or(0, |c| c.fired) < milestone {
                    let fired = {
                        let c = self.clock.as_mut().expect("clock set");
                        c.fired += 1;
                        c.fired
                    };
                    let t = Time::from_ps(self.cfg.update_interval.as_ps() * fired);
                    self.tick_inner(t, fired * clock.pkts_per_update);
                }
            }
        }
    }

    fn observe_latency(&mut self, ewma_ns: u64) {
        // Clock mode: runtime-published latency differs across runtimes —
        // keep it out of the deterministic record stream.
        if self.clock.is_none() {
            self.latest_latency_ns = ewma_ns;
        }
    }

    fn flush_decision_clock(&mut self, final_tx: u64) {
        if self.clock.is_some() {
            // The milestone loop in `tick` is already a catch-up loop; the
            // time argument is ignored in clock mode (quantized per fire).
            self.tick(Time::ZERO, final_tx);
        }
    }

    fn enable_audit(&mut self, capacity: usize) {
        let mut log = DecisionLog::new("adaptive", self.cfg.clone(), self.w, capacity);
        log.clock = self.clock.map(|c| (c.pkts_per_update, c.max_updates));
        self.audit = Some(log);
    }

    fn set_decision_context(&mut self, ctx: DecisionContext) {
        if self.clock.is_none() {
            self.ctx = ctx;
        }
    }

    fn set_decision_clock(&mut self, clock: DecisionClock) {
        self.clock = Some(clock);
        if let Some(log) = self.audit.as_mut() {
            log.clock = Some((clock.pkts_per_update, clock.max_updates));
        }
        // Quantized mode: zero any runtime-published gauges already fed.
        self.latest_latency_ns = 0;
        self.ctx = DecisionContext::default();
    }

    fn audit_log(&self) -> Option<&DecisionLog> {
        self.audit.as_ref()
    }

    fn take_audit_log(&mut self) -> Option<DecisionLog> {
        self.audit.take()
    }

    fn observe_device_health(&mut self, healthy: bool) {
        if self.device_healthy == healthy {
            return;
        }
        self.device_healthy = healthy;
        self.probe_tick = 0;
        if healthy {
            // Re-admitted: restart the hill-climb upward from wherever the
            // quarantine walk left `w`, with a clean observation window —
            // the throughput seen while degraded would poison the average.
            self.window.clear();
            self.last_avg = None;
            self.wait_remaining = 0;
            self.dir = 1.0;
        }
        let kind = if healthy {
            DecisionKind::HealthUp
        } else {
            DecisionKind::HealthDown
        };
        self.record(
            self.last_obs_time,
            kind,
            self.last_tx,
            0.0,
            0.0,
            0.0,
            self.w,
        );
    }

    fn on_resteer(&mut self, _gained_buckets: usize) {
        // Inherited buckets shift the throughput regime discontinuously;
        // comparing a pre-re-steer average against post-re-steer samples
        // would read as a phantom improvement (or regression) and steer
        // the hill-climb off a cliff. Start a fresh observation window.
        self.window.clear();
        self.last_avg = None;
        self.wait_remaining = 0;
    }

    fn offload_fraction(&self) -> f64 {
        self.w
    }

    fn name(&self) -> &'static str {
        "adaptive"
    }
}

/// A throughput-maximizing balancer under a latency ceiling — the paper's
/// §7 future work ("throughput maximization with a bounded latency").
///
/// While the observed latency EWMA stays under the bound, the inner
/// adaptive balancer hill-climbs throughput as usual. When the bound is
/// violated, `w` is stepped towards the CPU (the low-latency processor,
/// §6) until the system is back under it.
pub struct LatencyBounded {
    inner: Adaptive,
    bound_ns: u64,
    latest_ns: u64,
    /// Times the bound forced a step down (reporting/diagnostics).
    pub violations: u64,
}

impl LatencyBounded {
    /// Wraps an adaptive balancer with a latency ceiling.
    pub fn new(inner: Adaptive, bound: Time) -> LatencyBounded {
        LatencyBounded {
            inner,
            bound_ns: bound.as_ns(),
            latest_ns: 0,
            violations: 0,
        }
    }
}

impl LoadBalancer for LatencyBounded {
    fn decide(&mut self) -> u64 {
        self.inner.decide()
    }

    fn tick(&mut self, now: Time, total_tx_packets: u64) {
        if self.latest_ns > self.bound_ns {
            // Over budget: step towards the CPU instead of hill-climbing,
            // and bias the inner walker downwards so it does not bounce
            // straight back.
            let step_due =
                now.saturating_sub(self.inner.last_obs_time) >= self.inner.cfg.update_interval;
            if step_due && self.inner.w > 0.0 {
                let w_before = self.inner.w;
                self.inner.w = (self.inner.w - self.inner.cfg.delta).max(0.0);
                self.inner.dir = -1.0;
                self.inner.last_obs_time = now;
                self.inner.last_tx = total_tx_packets;
                self.violations += 1;
                self.inner.trace.push((now, self.inner.w));
                self.inner.record(
                    now,
                    DecisionKind::ViolationStep,
                    total_tx_packets,
                    0.0,
                    0.0,
                    0.0,
                    w_before,
                );
            }
            return;
        }
        self.inner.tick(now, total_tx_packets);
    }

    fn observe_latency(&mut self, ewma_ns: u64) {
        if self.inner.clock.is_some() {
            // Clock mode: the deterministic stream never takes the
            // violation path, and the inner walker must not record
            // runtime-dependent latency.
            return;
        }
        self.latest_ns = ewma_ns;
        // Mirror into the inner walker so records emitted on the
        // hill-climb path carry the same latency the bound was checked
        // against — replay needs the two views to agree.
        self.inner.latest_latency_ns = ewma_ns;
    }

    fn enable_audit(&mut self, capacity: usize) {
        self.inner.enable_audit(capacity);
        if let Some(log) = self.inner.audit.as_mut() {
            log.balancer = "latency-bounded".to_owned();
            log.bound_ns = Some(self.bound_ns);
        }
    }

    fn set_decision_context(&mut self, ctx: DecisionContext) {
        self.inner.set_decision_context(ctx);
    }

    fn set_decision_clock(&mut self, clock: DecisionClock) {
        self.inner.set_decision_clock(clock);
        self.latest_ns = 0;
    }

    fn flush_decision_clock(&mut self, final_tx: u64) {
        self.inner.flush_decision_clock(final_tx);
    }

    fn audit_log(&self) -> Option<&DecisionLog> {
        self.inner.audit.as_ref()
    }

    fn take_audit_log(&mut self) -> Option<DecisionLog> {
        self.inner.audit.take()
    }

    fn on_resteer(&mut self, gained_buckets: usize) {
        self.inner.on_resteer(gained_buckets);
    }

    fn observe_device_health(&mut self, healthy: bool) {
        self.inner.observe_device_health(healthy);
    }

    fn offload_fraction(&self) -> f64 {
        self.inner.offload_fraction()
    }

    fn name(&self) -> &'static str {
        "latency-bounded"
    }
}

impl std::fmt::Debug for LatencyBounded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyBounded")
            .field("bound_ns", &self.bound_ns)
            .field("w", &self.inner.w)
            .field("violations", &self.violations)
            .finish()
    }
}

/// A balancer shared by every worker's pipeline replica: the paper's ALB
/// coordinates one global `w` ("wait for all worker threads to apply the
/// updated fraction values before next observation").
pub type SharedBalancer = std::sync::Arc<parking_lot::Mutex<Box<dyn LoadBalancer>>>;

/// Wraps a balancer into a [`SharedBalancer`].
pub fn shared(lb: Box<dyn LoadBalancer>) -> SharedBalancer {
    std::sync::Arc::new(parking_lot::Mutex::new(lb))
}

/// Builds one balancer per worker, for runtimes that keep `w` per worker
/// instead of globally.
///
/// The sharded live runtime gives every RSS worker its own balancer
/// instance (its own `w`, its own observation window), matching NBA's
/// per-worker-thread ALB state; the factory receives the worker index so a
/// policy may differentiate if it wants to.
pub type BalancerFactory = std::sync::Arc<dyn Fn(usize) -> Box<dyn LoadBalancer> + Send + Sync>;

/// A factory cloning the same policy for every worker.
pub fn replicated<F>(make: F) -> BalancerFactory
where
    F: Fn() -> Box<dyn LoadBalancer> + Send + Sync + 'static,
{
    std::sync::Arc::new(move |_worker| make())
}

/// The per-batch element that stamps the load-balancing decision.
pub struct LoadBalanceElement {
    lb: SharedBalancer,
}

impl LoadBalanceElement {
    /// Wraps a (shared) balancing policy into an element.
    pub fn new(lb: SharedBalancer) -> LoadBalanceElement {
        LoadBalanceElement { lb }
    }

    /// The shared balancer handle (reports, tests).
    pub fn balancer(&self) -> SharedBalancer {
        self.lb.clone()
    }
}

impl Element for LoadBalanceElement {
    fn class_name(&self) -> &'static str {
        "LoadBalance"
    }

    // The device decision slot is deliberately element-writable: stamping
    // it is this element's whole job.
    fn slot_claims(&self) -> &'static [crate::element::SlotClaim] {
        const CLAIMS: &[crate::element::SlotClaim] =
            &[crate::element::SlotClaim::batch_writes(anno::LB_DEVICE)];
        CLAIMS
    }

    fn kind(&self) -> ElementKind {
        ElementKind::PerBatch
    }

    fn process_batch(&mut self, ctx: &mut ElemCtx<'_>, batch: &mut PacketBatch) {
        let mut lb = self.lb.lock();
        lb.observe_latency(ctx.inspector.worst_latency_ewma_ns());
        lb.tick(ctx.now, ctx.inspector.total_tx_packets());
        batch.banno_mut().set(anno::LB_DEVICE, lb.decide());
    }

    fn cpu_profile(&self) -> nba_sim::CpuProfile {
        // The lb_decide cost from the model: one coarse decision per batch.
        nba_sim::CpuProfile::fixed(30)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_fraction_diffuses_exactly() {
        let mut lb = FixedFraction::new(0.3);
        let gpu = (0..1000).filter(|_| lb.decide() == 1).count();
        assert_eq!(gpu, 300);
        let mut lb = FixedFraction::new(0.0);
        assert!((0..100).all(|_| lb.decide() == 0));
        let mut lb = FixedFraction::new(1.0);
        assert!((0..100).all(|_| lb.decide() == 1));
    }

    #[test]
    #[should_panic(expected = "fraction out of range")]
    fn fixed_fraction_validates() {
        let _ = FixedFraction::new(1.5);
    }

    /// Drives the ALB against a synthetic concave throughput curve with its
    /// maximum at `opt` and checks convergence into a neighbourhood.
    fn converge(opt: f64, start: f64) -> f64 {
        let cfg = AlbConfig {
            update_interval: Time::from_ms(10),
            avg_window: 2,
            min_wait: 0,
            max_wait: 2,
            initial_w: start,
            ..AlbConfig::default()
        };
        let mut alb = Adaptive::new(cfg);
        let mut now = Time::ZERO;
        let mut tx_total = 0u64;
        for _ in 0..3000 {
            now += Time::from_ms(10);
            // Throughput model: peak 10 Mpps at w = opt, quadratic falloff.
            let w = alb.offload_fraction();
            let thr = 10e6 * (1.0 - (w - opt) * (w - opt));
            tx_total += (thr * 0.010) as u64;
            alb.tick(now, tx_total);
        }
        alb.offload_fraction()
    }

    #[test]
    fn alb_converges_to_interior_optimum() {
        let w = converge(0.8, 0.2);
        assert!((w - 0.8).abs() <= 0.1, "converged to {w}");
    }

    #[test]
    fn alb_converges_to_cpu_heavy_optimum() {
        let w = converge(0.1, 0.9);
        assert!((w - 0.1).abs() <= 0.1, "converged to {w}");
    }

    #[test]
    fn alb_tracks_a_moving_optimum() {
        let cfg = AlbConfig {
            update_interval: Time::from_ms(10),
            avg_window: 2,
            min_wait: 0,
            max_wait: 2,
            initial_w: 0.5,
            ..AlbConfig::default()
        };
        let mut alb = Adaptive::new(cfg);
        let mut now = Time::ZERO;
        let mut tx_total = 0u64;
        let run = |alb: &mut Adaptive, opt: f64, now: &mut Time, tx: &mut u64| {
            for _ in 0..2000 {
                *now += Time::from_ms(10);
                let w = alb.offload_fraction();
                let thr = 10e6 * (1.0 - (w - opt) * (w - opt));
                *tx += (thr * 0.010) as u64;
                alb.tick(*now, *tx);
            }
        };
        run(&mut alb, 0.8, &mut now, &mut tx_total);
        let w1 = alb.offload_fraction();
        assert!((w1 - 0.8).abs() <= 0.12, "first optimum: {w1}");
        // Workload change: optimum moves to 0.3; perturbation re-converges.
        run(&mut alb, 0.3, &mut now, &mut tx_total);
        let w2 = alb.offload_fraction();
        assert!((w2 - 0.3).abs() <= 0.12, "second optimum: {w2}");
    }

    #[test]
    fn alb_never_leaves_bounds() {
        let mut alb = Adaptive::new(AlbConfig {
            update_interval: Time::from_ms(1),
            avg_window: 1,
            min_wait: 0,
            max_wait: 0,
            initial_w: 0.0,
            ..AlbConfig::default()
        });
        let mut now = Time::ZERO;
        for i in 0..10_000u64 {
            now += Time::from_ms(1);
            alb.tick(now, i * 1000);
            let w = alb.offload_fraction();
            assert!((0.0..=1.0).contains(&w));
        }
    }

    #[test]
    fn latency_bounded_steps_down_under_violation() {
        let cfg = AlbConfig {
            update_interval: Time::from_ms(1),
            avg_window: 1,
            min_wait: 0,
            max_wait: 0,
            initial_w: 0.8,
            ..AlbConfig::default()
        };
        let mut lb = LatencyBounded::new(Adaptive::new(cfg), Time::from_us(200));
        let mut now = Time::ZERO;
        // Latency way over the 200 us bound: w must walk to zero.
        for i in 0..200u64 {
            now += Time::from_ms(1);
            lb.observe_latency(900_000);
            lb.tick(now, i * 1000);
        }
        assert_eq!(lb.offload_fraction(), 0.0);
        assert!(lb.violations > 0);
    }

    #[test]
    fn latency_bounded_hill_climbs_when_under_bound() {
        let cfg = AlbConfig {
            update_interval: Time::from_ms(10),
            avg_window: 2,
            min_wait: 0,
            max_wait: 2,
            initial_w: 0.2,
            ..AlbConfig::default()
        };
        let mut lb = LatencyBounded::new(Adaptive::new(cfg), Time::from_ms(10));
        let mut now = Time::ZERO;
        let mut tx = 0u64;
        for _ in 0..3000 {
            now += Time::from_ms(10);
            let w = lb.offload_fraction();
            let thr = 10e6 * (1.0 - (w - 0.7) * (w - 0.7));
            tx += (thr * 0.010) as u64;
            lb.observe_latency(50_000); // Comfortably under the bound.
            lb.tick(now, tx);
        }
        let w = lb.offload_fraction();
        assert!((w - 0.7).abs() <= 0.12, "converged to {w}");
        assert_eq!(lb.violations, 0);
    }

    #[test]
    fn quarantine_walks_w_to_zero_then_reconverges() {
        let cfg = AlbConfig {
            update_interval: Time::from_ms(10),
            avg_window: 2,
            min_wait: 0,
            max_wait: 2,
            initial_w: 0.7,
            ..AlbConfig::default()
        };
        let mut alb = Adaptive::new(cfg);
        let mut now = Time::ZERO;
        let mut tx = 0u64;
        // Breaker trips: w must walk to zero, with only sparse probes.
        alb.observe_device_health(false);
        let mut probes = 0u64;
        for _ in 0..400 {
            now += Time::from_ms(10);
            tx += 10_000;
            alb.tick(now, tx);
            probes += alb.decide();
        }
        assert_eq!(alb.offload_fraction(), 0.0);
        assert!(probes > 0, "quarantine starves the half-open probe");
        assert!(
            probes <= 400 / u64::from(QUARANTINE_PROBE_EVERY) + 1,
            "quarantine leaks batches to the device: {probes}"
        );
        // Device recovers: the hill-climb resumes and re-converges.
        alb.observe_device_health(true);
        for _ in 0..3000 {
            now += Time::from_ms(10);
            let w = alb.offload_fraction();
            let thr = 10e6 * (1.0 - (w - 0.8) * (w - 0.8));
            tx += (thr * 0.010) as u64;
            alb.tick(now, tx);
        }
        let w = alb.offload_fraction();
        assert!((w - 0.8).abs() <= 0.12, "re-converged to {w}");
    }

    #[test]
    fn wait_grows_with_w() {
        let alb = Adaptive::new(AlbConfig::default());
        assert_eq!(alb.wait_for(0.0), 2);
        assert_eq!(alb.wait_for(1.0), 32);
        assert!(alb.wait_for(0.5) > 2 && alb.wait_for(0.5) < 32);
    }
}
