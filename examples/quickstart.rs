//! Quickstart: compose a pipeline in the Click-dialect configuration
//! language and run it on the simulated 80 Gbps testbed.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use nba::apps::{pipelines, AppConfig};
use nba::core::lb;
use nba::core::runtime::{des, traffic_per_port, RuntimeConfig};
use nba::io::{SizeDist, TrafficConfig};

fn main() {
    // The paper's testbed: 2x octa-core Xeon, 2x GTX 680, 8x 10 GbE.
    let cfg = RuntimeConfig::default();
    let app = AppConfig {
        ports: cfg.topology.ports.len() as u16,
        ..AppConfig::default()
    };

    // The IPv4 router, written in the configuration language.
    println!("pipeline configuration:\n{}", pipelines::IPV4_CONFIG);
    let pipeline = pipelines::pipeline_from_config(pipelines::IPV4_CONFIG, &app);

    // 80 Gbps of 256-byte frames, adaptive CPU/GPU balancing.
    let balancer = lb::shared(Box::new(lb::Adaptive::new(lb::AlbConfig::scaled_down(20))));
    let traffic = traffic_per_port(
        &cfg.topology,
        &TrafficConfig {
            offered_gbps: 10.0,
            size: SizeDist::Fixed(256),
            ..TrafficConfig::default()
        },
    );

    let report = des::run(&cfg, &pipeline, &balancer, &traffic);
    println!(
        "offered {:.1} Gbps -> forwarded {:.1} Gbps ({:.2} Mpps) on {} workers",
        report.offered_gbps,
        report.tx_gbps,
        report.tx_mpps(),
        cfg.total_workers(),
    );
    println!(
        "latency: p50 {} / p99 {} / p99.9 {}",
        report.latency.percentile(50.0),
        report.latency.percentile(99.0),
        report.latency.percentile(99.9),
    );
    println!(
        "offload fraction converged to {:.0} % (GPU tasks: {})",
        report.final_w * 100.0,
        report.gpu.iter().map(|g| g.tasks).sum::<u64>(),
    );
}
