//! Property tests of the I/O substrate invariants.

use proptest::prelude::*;

use nba_io::buf::{Mempool, PacketBuf};
use nba_io::checksum;
use nba_io::proto::FrameBuilder;
use nba_io::toeplitz::{queue_for_hash, Toeplitz};

proptest! {
    /// The incremental checksum update (RFC 1624) always agrees with a
    /// full recomputation after any 16-bit field change.
    #[test]
    fn incremental_checksum_equals_recompute(
        mut hdr in proptest::collection::vec(any::<u8>(), 20),
        field in 0usize..10,
        newval in any::<u16>(),
    ) {
        // Write a valid checksum first.
        hdr[10] = 0;
        hdr[11] = 0;
        let c0 = checksum::internet_checksum(&hdr);
        hdr[10..12].copy_from_slice(&c0.to_be_bytes());

        let off = field * 2;
        // The checksum field itself is not a data field.
        prop_assume!(off != 10);
        let old = u16::from_be_bytes([hdr[off], hdr[off + 1]]);
        hdr[off..off + 2].copy_from_slice(&newval.to_be_bytes());
        let inc = checksum::incremental_update(c0, old, newval);

        hdr[10] = 0;
        hdr[11] = 0;
        let full = checksum::internet_checksum(&hdr);
        // One's-complement arithmetic has two zero representations; both
        // verify, but direct comparison needs normalization.
        let norm = |c: u16| if c == 0xffff { 0 } else { c };
        prop_assert_eq!(norm(inc), norm(full));
    }

    /// Checksum over parts equals checksum over the concatenation, for any
    /// split points.
    #[test]
    fn checksum_parts_split_invariant(
        data in proptest::collection::vec(any::<u8>(), 0..200),
        cut1 in 0usize..200,
        cut2 in 0usize..200,
    ) {
        let a = cut1.min(data.len());
        let b = cut2.min(data.len()).max(a);
        let whole = checksum::internet_checksum(&data);
        let parts = checksum::internet_checksum_parts(&[&data[..a], &data[a..b], &data[b..]]);
        prop_assert_eq!(whole, parts);
    }

    /// Mempool accounting never goes negative or exceeds capacity, under
    /// any interleaving of allocs and frees.
    #[test]
    fn mempool_accounting(ops in proptest::collection::vec(any::<bool>(), 1..200)) {
        let pool = Mempool::new(16);
        let mut held = Vec::new();
        for alloc in ops {
            if alloc {
                if let Some(b) = pool.alloc() {
                    held.push(b);
                }
            } else if let Some(b) = held.pop() {
                pool.free(b);
            }
            prop_assert_eq!(pool.outstanding(), held.len());
            prop_assert!(pool.outstanding() <= 16);
            prop_assert_eq!(pool.available(), 16 - held.len());
        }
    }

    /// Prepend/append/adj/trim keep the data window consistent.
    #[test]
    fn packet_buf_window_ops(
        ops in proptest::collection::vec((0u8..4, 1usize..64), 0..50),
    ) {
        let mut b = PacketBuf::with_capacity(512, 128);
        b.fill(128, &[0xab; 64]);
        let mut model: (usize, usize) = (128, 64); // (off, len)
        for (op, n) in ops {
            match op {
                0 => {
                    if b.prepend(n).is_some() {
                        model = (model.0 - n, model.1 + n);
                    }
                }
                1 => {
                    if b.append(n).is_some() {
                        model = (model.0, model.1 + n);
                    }
                }
                2 => {
                    if b.adj(n) {
                        model = (model.0 + n, model.1 - n);
                    }
                }
                _ => {
                    if b.trim(n) {
                        model = (model.0, model.1 - n);
                    }
                }
            }
            prop_assert_eq!(b.headroom(), model.0);
            prop_assert_eq!(b.len(), model.1);
            prop_assert_eq!(b.data().len(), model.1);
            prop_assert!(b.headroom() + b.len() + b.tailroom() == 512);
        }
    }

    /// Any frame built by the builder parses back with a valid checksum.
    #[test]
    fn built_frames_always_valid(
        len in 42usize..1514,
        src in any::<u32>(),
        dst in any::<u32>(),
        sport in 1u16..u16::MAX,
        dport in 1u16..u16::MAX,
    ) {
        let mut f = vec![0u8; len];
        let b = FrameBuilder {
            src_port: sport,
            dst_port: dport,
            ..FrameBuilder::default()
        };
        b.build_ipv4(&mut f, len, src, dst);
        let eth = nba_io::proto::ether::EtherView::parse(&f).unwrap();
        let ip = nba_io::proto::ipv4::Ipv4View::parse(eth.payload()).unwrap();
        prop_assert!(ip.checksum_ok());
        prop_assert_eq!(ip.src(), src);
        prop_assert_eq!(ip.dst(), dst);
        let udp = nba_io::proto::l4::UdpView::parse(ip.payload()).unwrap();
        prop_assert_eq!(udp.src_port(), sport);
        prop_assert_eq!(udp.dst_port(), dport);
    }

    /// The RSS queue mapping stays in range for any hash and queue count.
    #[test]
    fn rss_queue_in_range(hash in any::<u32>(), queues in 1u16..128) {
        prop_assert!(queue_for_hash(hash, queues) < queues);
    }

    /// The Toeplitz hash is deterministic and direction-sensitive.
    #[test]
    fn toeplitz_sensitivity(src in any::<u32>(), dst in any::<u32>()) {
        let t = Toeplitz::default();
        prop_assert_eq!(t.hash_ipv4(src, dst), t.hash_ipv4(src, dst));
        if src != dst {
            // Swapping src/dst flows the other way; hashes usually differ
            // (they are not symmetric). Just assert determinism holds and
            // the value depends on inputs in at least some cases.
            let _ = t.hash_ipv4(dst, src);
        }
    }
}
