//! The live runtime: real threads, real packets, real crypto, real
//! detections — proving the framework is a working concurrent system.

use std::sync::Arc;
use std::time::Duration;

use nba::apps::{pipelines, AppConfig};
use nba::core::batch::{Anno, PacketResult};
use nba::core::element::{ComputeMode, ElemCtx, Element};
use nba::core::graph::GraphBuilder;
use nba::core::lb;
use nba::core::runtime::live::{self, LiveConfig};
use nba::core::runtime::{BuildCtx, PipelineBuilder};
use nba::io::{Packet, PayloadFill, SizeDist, TrafficConfig};

fn live_cfg() -> LiveConfig {
    LiveConfig {
        workers: 2,
        duration: Duration::from_millis(150),
        compute: ComputeMode::Full,
        ..LiveConfig::default()
    }
}

#[test]
fn live_ipv4_forwards_on_threads() {
    let app = AppConfig {
        ports: 4,
        v4_routes: 2048,
        ..AppConfig::default()
    };
    let report = live::run(
        &live_cfg(),
        &pipelines::ipv4_router(&app),
        &lb::shared(Box::new(lb::CpuOnly)),
    );
    assert!(report.totals.tx_packets > 1000, "{report:?}");
    assert!(report.mpps > 0.0);
    // Both workers contributed batches.
    assert!(report.totals.batches > 2);
}

#[test]
fn live_offload_path_round_trips_through_device_thread() {
    let app = AppConfig {
        ports: 4,
        v4_routes: 1024,
        ..AppConfig::default()
    };
    let report = live::run(
        &live_cfg(),
        &pipelines::ipsec_gateway(&app),
        &lb::shared(Box::new(lb::GpuOnly)),
    );
    assert!(
        report.totals.offloaded_batches > 0,
        "nothing crossed the device thread: {report:?}"
    );
    assert!(report.totals.tx_packets > 0);
}

#[test]
fn live_ids_detects_with_real_threads() {
    let app = AppConfig {
        ports: 4,
        ids_literals: 32,
        ids_regexes: 4,
        ..AppConfig::default()
    };
    let (pipeline, alerts) = pipelines::ids(&app);
    let cfg = LiveConfig {
        traffic: TrafficConfig {
            size: SizeDist::Fixed(256),
            payload: PayloadFill::Plant {
                needle: b"EVILPATTERN".to_vec(),
                every: 7,
            },
            ..TrafficConfig::default()
        },
        ..live_cfg()
    };
    let report = live::run(&cfg, &pipeline, &lb::shared(Box::new(lb::CpuOnly)));
    let hits = alerts
        .literal_hits
        .load(std::sync::atomic::Ordering::Relaxed);
    assert!(hits > 0, "no detections in {report:?}");
}

/// A poison element: panics once every `every` packets it sees.
struct PanicEvery {
    every: u64,
    seen: u64,
}

impl Element for PanicEvery {
    fn class_name(&self) -> &'static str {
        "PanicEvery"
    }

    fn process(
        &mut self,
        _ctx: &mut ElemCtx<'_>,
        _pkt: &mut Packet,
        _anno: &mut Anno,
    ) -> PacketResult {
        self.seen += 1;
        if self.seen.is_multiple_of(self.every) {
            panic!("injected element panic (expected in this test)");
        }
        PacketResult::Out(0)
    }
}

#[test]
fn live_worker_panics_are_contained() {
    let pipeline: PipelineBuilder = Arc::new(|_ctx: &BuildCtx| {
        let mut gb = GraphBuilder::new();
        let p = gb.add(Box::new(PanicEvery {
            every: 1_000,
            seen: 0,
        }));
        gb.connect_exit(p, 0);
        gb.entry(p);
        gb.build().expect("panic pipeline")
    });
    // A bounded, fully drained workload: each of the two RSS shards sees
    // ~4k packets regardless of host speed, so the poison element fires
    // deterministically instead of depending on wall-clock throughput.
    let cfg = LiveConfig {
        duration: Duration::from_secs(20), // deadline only; drains in ms
        max_packets: Some(8_000),
        drain: true,
        ..live_cfg()
    };
    let report = live::run(&cfg, &pipeline, &lb::shared(Box::new(lb::CpuOnly)));
    let f = &report.faults.snapshot;
    // The poison batches were dropped and counted — and the run survived
    // them: workers kept forwarding traffic afterwards.
    assert!(f.panics_contained >= 1, "no panic was contained: {f:?}");
    assert!(f.dropped_packets > 0, "poison batch not counted: {f:?}");
    assert!(
        report.totals.tx_packets > 1000,
        "the run died with the panic: {report:?}"
    );
}
