//! Shared helpers for element unit tests.

use std::sync::Arc;

use nba_core::batch::{Anno, PacketResult};
use nba_core::element::{ComputeMode, ElemCtx, Element};
use nba_core::nls::NodeLocalStorage;
use nba_core::stats::{Counters, SystemInspector};
use nba_io::Packet;
use nba_sim::Time;

/// Builds the context plumbing an element needs.
pub fn ctx_harness() -> (NodeLocalStorage, SystemInspector) {
    let counters = Arc::new(Counters::default());
    (
        NodeLocalStorage::new(),
        SystemInspector::new(vec![counters]),
    )
}

/// Runs one packet through an element with full computation enabled.
pub fn run_one(
    el: &mut dyn Element,
    nls: &NodeLocalStorage,
    insp: &SystemInspector,
    pkt: &mut Packet,
) -> PacketResult {
    run_one_anno(el, nls, insp, pkt).0
}

/// Like [`run_one`] but also returns the packet's annotations.
pub fn run_one_anno(
    el: &mut dyn Element,
    nls: &NodeLocalStorage,
    insp: &SystemInspector,
    pkt: &mut Packet,
) -> (PacketResult, Anno) {
    let mut ctx = ElemCtx {
        now: Time::ZERO,
        compute: ComputeMode::Full,
        nls,
        worker: 0,
        inspector: insp,
    };
    let mut anno = Anno::default();
    let r = el.process(&mut ctx, pkt, &mut anno);
    (r, anno)
}
