//! `nba-verify`: the path-sensitive deep verifier.
//!
//! `nba-lint` ([`crate::lint`]) checks the pipeline with whole-graph,
//! path-insensitive heuristics: a slot read is satisfied by a writer
//! *anywhere*, a write-write collision fires on *any* co-occurrence. This
//! module runs an abstract interpretation over the element graph instead —
//! a worklist fixpoint propagating an [`AbsState`] (per-slot write
//! lattice, must-hold header facts, may-rewrite datablock effects; see
//! [`domain`]) along every edge, with per-element transfer functions
//! derived from [`crate::element::Element::slot_claims`] plus the
//! declarative [`crate::element::ElementEffects`] annotations.
//!
//! On top of the fixpoint it emits the `NBA04x` path family:
//!
//! * `NBA040` — a slot read not dominated by a write on some path (the
//!   offending path is printed as an element chain),
//! * `NBA041` — an output port no abstract state can ever take,
//! * `NBA042` — an edge from exit-reaching code into a subgraph that can
//!   only drop (a silent blackhole; explicit `Discard` edges are exempt),
//! * `NBA043` — a header-dependent element reachable before validation,
//!
//! plus transitive `NBA020` datablock hazards the pairwise check misses,
//! and — via [`capacity`] — the `NBA05x` static queue-law family over
//! [`CapacityModel`]s extracted from the runtime configurations.
//!
//! The same fixpoint *demotes* path-insensitive findings it can disprove:
//! an `NBA012` collision whose writers live on provably disjoint branches
//! drops to `Warn` (no packet can ever traverse two writers), and an
//! `NBA013` read the element declares default-tolerant is annotated as
//! benign. Entry points: [`deep_verify`] (path family only),
//! [`apply_deep`] (demote + extend an existing shallow report — what
//! [`crate::config::build_graph_checked`] and
//! [`crate::graph::ElementGraph::verify_deep`] use), and [`preflight`]
//! (what both runtimes run before starting, capacity checks included).

mod capacity;
mod domain;

pub use capacity::{check_capacity, CapacityModel};
pub use domain::{AbsState, SlotState};

use std::collections::VecDeque;

use crate::batch::ANNO_SLOTS;
use crate::element::{
    DbInput, DbOutput, Disposition, Element, ElementEffects, HeaderFact, Postprocess, SlotAccess,
    SlotClaim, SlotScope,
};
use crate::graph::{ElementGraph, NodeId, OutEdge};
use crate::lint::{Code, LintReport, Severity, SourceMap};

/// Per-node static metadata the engine queries repeatedly, gathered once.
struct Model<'g> {
    graph: &'g ElementGraph,
    src: Option<&'g SourceMap>,
    n: usize,
    /// Explicit claims plus the implicit write of an offloadable
    /// element's `Postprocess::Annotation` (same rule as `nba-lint`).
    claims: Vec<Vec<SlotClaim>>,
    effects: Vec<ElementEffects>,
    /// Offset a size-changing in-place rewrite starts at, per node.
    grow_from: Vec<Option<usize>>,
    /// Declared input datablock range `(start, end)` per offloadable
    /// node; `end == None` means "to the end of the frame".
    db_range: Vec<Option<(usize, Option<usize>)>>,
}

impl<'g> Model<'g> {
    fn new(graph: &'g ElementGraph, src: Option<&'g SourceMap>) -> Model<'g> {
        let n = graph.len();
        let mut claims = Vec::with_capacity(n);
        let mut effects = Vec::with_capacity(n);
        let mut grow_from = vec![None; n];
        let mut db_range = vec![None; n];
        for i in 0..n {
            let el: &dyn Element = graph.element(NodeId(i));
            let mut cs: Vec<SlotClaim> = el.slot_claims().to_vec();
            if let Some(spec) = el.offload() {
                if let Postprocess::Annotation(slot) = spec.postprocess {
                    let implicit = SlotClaim::writes(slot);
                    if !cs.contains(&implicit) {
                        cs.push(implicit);
                    }
                }
                let (start, end) = match spec.input {
                    DbInput::PartialPacket { offset, len } => (offset, Some(offset + len)),
                    DbInput::WholePacket { offset } => (offset, None),
                };
                db_range[i] = Some((start, end));
                if matches!(spec.output, DbOutput::InPlace { extra } if extra > 0) {
                    grow_from[i] = Some(start);
                }
            }
            claims.push(cs);
            effects.push(el.effects());
        }
        Model {
            graph,
            src,
            n,
            claims,
            effects,
            grow_from,
            db_range,
        }
    }

    fn ports(&self, i: usize) -> usize {
        self.graph.element(NodeId(i)).output_count().max(1)
    }

    fn edge(&self, i: usize, p: usize) -> Option<OutEdge> {
        self.graph.out_edge(NodeId(i), p)
    }

    /// `"name" (Class)` when a source map knows the node, else the class.
    fn label(&self, i: usize) -> String {
        let class = self.graph.element(NodeId(i)).class_name();
        match self.src.and_then(|s| s.name(i)) {
            Some(name) => format!("{name:?} ({class})"),
            None => class.to_string(),
        }
    }

    fn node_line(&self, i: usize) -> Option<usize> {
        self.src
            .and_then(|s| s.node_lines.get(i).copied())
            .filter(|&l| l > 0)
    }

    fn conn_line(&self, i: usize, p: usize) -> Option<usize> {
        self.src.and_then(|s| s.conn_lines.get(&(i, p)).copied())
    }

    /// Whether node `i` writes `(scope, slot)` (implicit claims included).
    fn writes(&self, i: usize, scope: SlotScope, slot: usize) -> bool {
        self.claims[i]
            .iter()
            .any(|c| c.access == SlotAccess::Write && c.scope == scope && c.slot == slot)
    }

    /// The transfer function: state after node `i` ran (before any
    /// port-specific fact is added). Purely monotone: slots only move up
    /// the lattice, the may-rewrite offset only shrinks.
    fn transfer(&self, i: usize, state: &AbsState) -> AbsState {
        let mut s = state.clone();
        for c in &self.claims[i] {
            if c.access == SlotAccess::Write && c.slot < ANNO_SLOTS {
                s.set_slot(c.scope, c.slot, SlotState::Written);
            }
        }
        if let Some(off) = self.grow_from[i] {
            s.rewrite = match s.rewrite {
                Some(prev) if prev <= (off, i) => Some(prev),
                _ => Some((off, i)),
            };
        }
        s
    }

    /// The state leaving node `i` on port `p`.
    fn out_state(&self, i: usize, p: usize, post: &AbsState) -> AbsState {
        let mut s = post.clone();
        for &(port, fact) in self.effects[i].establishes {
            if port == p {
                s.establish(fact);
            }
        }
        s
    }
}

/// Runs the worklist fixpoint; `in_state[i]` is the join over every edge
/// into `i` (`None` = unreached). `DropAll` elements propagate nothing.
fn fixpoint(m: &Model<'_>) -> Vec<Option<AbsState>> {
    let mut in_state: Vec<Option<AbsState>> = vec![None; m.n];
    if m.n == 0 {
        return in_state;
    }
    let entry = m.graph.entry_node().0;
    in_state[entry] = Some(AbsState::entry());
    let mut queued = vec![false; m.n];
    queued[entry] = true;
    let mut work: VecDeque<usize> = VecDeque::from([entry]);
    while let Some(i) = work.pop_front() {
        queued[i] = false;
        let Some(s) = in_state[i].clone() else {
            continue;
        };
        if m.effects[i].disposition == Disposition::DropAll {
            continue;
        }
        let post = m.transfer(i, &s);
        for p in 0..m.ports(i) {
            let Some(OutEdge::Node(t)) = m.edge(i, p) else {
                continue;
            };
            let out = m.out_state(i, p, &post);
            let joined = match &in_state[t.0] {
                Some(old) => old.join(&out),
                None => out,
            };
            if in_state[t.0].as_ref() != Some(&joined) {
                in_state[t.0] = Some(joined);
                if !queued[t.0] {
                    queued[t.0] = true;
                    work.push_back(t.0);
                }
            }
        }
    }
    in_state
}

/// Nodes from which some `ToOutput` exit is reachable. A `DropAll`
/// element never reaches an exit regardless of its wiring (nothing leaves
/// it), which is what makes blackhole subgraphs detectable.
fn exit_reaching(m: &Model<'_>) -> Vec<bool> {
    let mut exits = vec![false; m.n];
    let mut changed = true;
    while changed {
        changed = false;
        for i in 0..m.n {
            if exits[i] || m.effects[i].disposition == Disposition::DropAll {
                continue;
            }
            let reaches = (0..m.ports(i)).any(|p| match m.edge(i, p) {
                Some(OutEdge::Exit) => true,
                Some(OutEdge::Node(t)) => exits[t.0],
                _ => false,
            });
            if reaches {
                exits[i] = true;
                changed = true;
            }
        }
    }
    exits
}

/// BFS witness path from the entry to `target` avoiding `avoid` nodes
/// (the target itself is always admissible). Returns the node chain
/// entry..=target, or `None` when every path is blocked.
fn witness_avoiding(
    m: &Model<'_>,
    target: usize,
    avoid: impl Fn(usize) -> bool,
) -> Option<Vec<usize>> {
    let entry = m.graph.entry_node().0;
    if avoid(entry) && entry != target {
        return None;
    }
    let mut pred: Vec<Option<usize>> = vec![None; m.n];
    let mut seen = vec![false; m.n];
    seen[entry] = true;
    let mut q = VecDeque::from([entry]);
    while let Some(i) = q.pop_front() {
        if i == target {
            return Some(unwind(&pred, entry, target));
        }
        for p in 0..m.ports(i) {
            if let Some(OutEdge::Node(t)) = m.edge(i, p) {
                let t = t.0;
                if !seen[t] && (t == target || !avoid(t)) {
                    seen[t] = true;
                    pred[t] = Some(i);
                    q.push_back(t);
                }
            }
        }
    }
    None
}

/// BFS witness path reaching `target` with `fact` *not* established —
/// search states are `(node, fact held)` pairs, so a path through a
/// validator's establishing port is correctly rejected.
fn witness_without_fact(m: &Model<'_>, target: usize, fact: HeaderFact) -> Option<Vec<usize>> {
    let entry = m.graph.entry_node().0;
    // Index: node * 2 + held.
    let mut pred: Vec<Option<usize>> = vec![None; m.n * 2];
    let mut seen = vec![false; m.n * 2];
    seen[entry * 2] = true;
    let mut q = VecDeque::from([entry * 2]);
    while let Some(state) = q.pop_front() {
        let (i, held) = (state / 2, state % 2 == 1);
        if i == target && !held {
            // Unwind over search states, then strip the `held` dimension.
            let mut path = vec![i];
            let mut cur = state;
            while let Some(prev) = pred[cur] {
                path.push(prev / 2);
                cur = prev;
            }
            path.reverse();
            return Some(path);
        }
        for p in 0..m.ports(i) {
            if let Some(OutEdge::Node(t)) = m.edge(i, p) {
                let establishes = m.effects[i]
                    .establishes
                    .iter()
                    .any(|&(port, f)| port == p && f == fact);
                let next = t.0 * 2 + usize::from(held || establishes);
                if !seen[next] {
                    seen[next] = true;
                    pred[next] = Some(state);
                    q.push_back(next);
                }
            }
        }
    }
    None
}

fn unwind(pred: &[Option<usize>], entry: usize, target: usize) -> Vec<usize> {
    let mut path = vec![target];
    let mut cur = target;
    while cur != entry {
        match pred[cur] {
            Some(p) => {
                path.push(p);
                cur = p;
            }
            None => break,
        }
    }
    path.reverse();
    path
}

fn render_path(m: &Model<'_>, path: &[usize]) -> String {
    path.iter()
        .map(|&i| m.label(i))
        .collect::<Vec<_>>()
        .join(" -> ")
}

/// The path-sensitive verification pass: runs the fixpoint and emits the
/// `NBA04x` family (plus transitive `NBA020` hazards). Structural and
/// path-insensitive checks are `nba-lint`'s job — callers usually want
/// [`apply_deep`] or [`crate::graph::ElementGraph::verify_deep`], which
/// combine both.
pub fn deep_verify(graph: &ElementGraph, src: Option<&SourceMap>) -> LintReport {
    let m = Model::new(graph, src);
    let mut report = LintReport::default();
    if m.n == 0 {
        return report;
    }
    let in_state = fixpoint(&m);
    let exits = exit_reaching(&m);
    let any_exit = exits.iter().any(|&e| e);

    // Any writer per (scope, slot), for the NBA013-subsumption rule: when
    // *nothing* writes a slot, the shallow NBA013 already said so and a
    // path diagnostic would be noise.
    let has_writer = |scope: SlotScope, slot: usize| (0..m.n).any(|w| m.writes(w, scope, slot));

    for i in 0..m.n {
        let Some(s) = &in_state[i] else { continue };

        // NBA040 — reads not dominated by a write on every path. A node's
        // own write satisfies its read (read-modify-write elements and
        // offload postprocess scratch slots), and reads declared
        // default-tolerant in the element's effects are exempt.
        for c in &m.claims[i] {
            if c.access != SlotAccess::Read || c.slot >= ANNO_SLOTS {
                continue;
            }
            if m.writes(i, c.scope, c.slot)
                || m.effects[i]
                    .default_ok
                    .iter()
                    .any(|d| d.scope == c.scope && d.slot == c.slot)
                || !has_writer(c.scope, c.slot)
                || s.slot(c.scope, c.slot) == SlotState::Written
            {
                continue;
            }
            let path = witness_avoiding(&m, i, |w| m.writes(w, c.scope, c.slot))
                .map(|p| render_path(&m, &p))
                .unwrap_or_else(|| m.label(i));
            report.push(
                Code::PathReadUnwritten,
                format!(
                    "{} reads {:?} slot {} but no write dominates it; unwritten on \
                     path: {path}",
                    m.label(i),
                    c.scope,
                    c.slot
                ),
                Some(i),
                m.node_line(i),
            );
        }

        // NBA043 — required header facts not established on every path.
        for &fact in m.effects[i].requires {
            if s.has(fact) {
                continue;
            }
            let path = witness_without_fact(&m, i, fact)
                .map(|p| render_path(&m, &p))
                .unwrap_or_else(|| m.label(i));
            report.push(
                Code::HeaderBeforeValidation,
                format!(
                    "{} requires {fact:?} but is reachable before any validator \
                     establishes it, on path: {path}",
                    m.label(i)
                ),
                Some(i),
                m.node_line(i),
            );
        }

        // NBA041 — dead validator ports: when a fact this element
        // establishes already holds on every incoming path, validation
        // cannot fail, so every non-establishing port is unreachable.
        if m.ports(i) >= 2 {
            let forced: Vec<(usize, HeaderFact)> = m.effects[i]
                .establishes
                .iter()
                .copied()
                .filter(|&(_, f)| s.has(f))
                .collect();
            if !forced.is_empty() {
                for p in 0..m.ports(i) {
                    if forced.iter().any(|&(fp, _)| fp == p) {
                        continue;
                    }
                    let (_, fact) = forced[0];
                    report.push(
                        Code::DeadBranch,
                        format!(
                            "output port {p} of {} is dead: {fact:?} already holds on \
                             every packet reaching it, so validation cannot fail",
                            m.label(i)
                        ),
                        Some(i),
                        m.conn_line(i, p).or_else(|| m.node_line(i)),
                    );
                }
            }
        }

        // Transitive NBA020 — a size-changing rewrite anywhere upstream
        // whose shifted bytes a later datablock declaration still covers.
        // The pairwise `nba-lint` check handles directly-connected specs;
        // this catches rewriters separated by intermediate elements.
        if let (Some((start, end)), Some((off, wnode))) = (m.db_range[i], s.rewrite) {
            let _ = start;
            let overlaps = end.is_none_or(|e| e > off);
            let adjacent = wnode == i
                || (0..m.ports(wnode))
                    .any(|p| matches!(m.edge(wnode, p), Some(OutEdge::Node(t)) if t.0 == i));
            if overlaps && !adjacent {
                report.push(
                    Code::DatablockOverlap,
                    format!(
                        "{} rewrites packet bytes from offset {off} with a size delta \
                         on a path to {}, whose datablock range covers those bytes \
                         (stale offsets after the rewrite)",
                        m.label(wnode),
                        m.label(i)
                    ),
                    Some(i),
                    m.node_line(i),
                );
            }
        }

        // NBA042 — silent blackholes: an edge from exit-reaching code
        // into a subgraph that can only drop. Direct `-> Discard` edges
        // are explicit and exempt; a whole graph with no exit is already
        // NBA004.
        if any_exit && exits[i] {
            for p in 0..m.ports(i) {
                if let Some(OutEdge::Node(t)) = m.edge(i, p) {
                    if !exits[t.0] {
                        report.push(
                            Code::BlackholePath,
                            format!(
                                "output port {p} of {} silently blackholes traffic: \
                                 no packet entering {} can reach ToOutput; connect \
                                 to Discard if dropping is intended",
                                m.label(i),
                                m.label(t.0)
                            ),
                            Some(i),
                            m.conn_line(i, p).or_else(|| m.node_line(i)),
                        );
                    }
                }
            }
        }
    }

    // Attach element class names, mirroring `nba-lint`.
    for d in &mut report.diagnostics {
        if let Some(i) = d.node {
            if d.element.is_none() {
                d.element = Some(graph.element(NodeId(i)).class_name().to_owned());
            }
        }
    }
    report
}

/// Demotes path-insensitive findings the fixpoint disproves (the shallow
/// checks' known false positives):
///
/// * `NBA012` (write-write collision) drops from `Error` to `Warn` when
///   every pair of different-class writers is path-disjoint — no packet
///   can traverse two of them, so nothing is ever clobbered.
/// * `NBA013` (read of a never-written slot) is annotated as benign when
///   the reader's effects declare the read default-tolerant.
fn demote_disproven(graph: &ElementGraph, report: &mut LintReport) {
    let m = Model::new(graph, None);
    if m.n == 0 {
        return;
    }

    // Forward reachability closure (reach[a][b]: a path a -> ... -> b).
    let mut reach = vec![vec![false; m.n]; m.n];
    for (start, row) in reach.iter_mut().enumerate() {
        let mut stack = vec![start];
        while let Some(i) = stack.pop() {
            for p in 0..m.ports(i) {
                if let Some(OutEdge::Node(t)) = m.edge(i, p) {
                    if !row[t.0] {
                        row[t.0] = true;
                        stack.push(t.0);
                    }
                }
            }
        }
    }

    // Writers per (scope, slot), same registry the shallow check builds.
    let mut keys: Vec<(SlotScope, usize)> = Vec::new();
    for i in 0..m.n {
        for c in &m.claims[i] {
            if c.access == SlotAccess::Write
                && c.slot < ANNO_SLOTS
                && !keys.contains(&(c.scope, c.slot))
            {
                keys.push((c.scope, c.slot));
            }
        }
    }
    for (scope, slot) in keys {
        let writers: Vec<usize> = (0..m.n).filter(|&i| m.writes(i, scope, slot)).collect();
        let disjoint = writers.iter().all(|&a| {
            writers.iter().all(|&b| {
                a == b
                    || m.graph.element(NodeId(a)).class_name()
                        == m.graph.element(NodeId(b)).class_name()
                    || (!reach[a][b] && !reach[b][a])
            })
        });
        if !disjoint {
            continue;
        }
        let prefix = format!("{scope:?} slot {slot} is written");
        for d in &mut report.diagnostics {
            if d.code == Code::SlotCollision
                && d.severity == Severity::Error
                && d.message.starts_with(&prefix)
            {
                d.severity = Severity::Warn;
                d.message.push_str(
                    " [deep: the writers live on disjoint branches; no packet \
                     traverses more than one]",
                );
            }
        }
    }

    for d in &mut report.diagnostics {
        if d.code != Code::SlotReadUnwritten {
            continue;
        }
        let Some(i) = d.node.filter(|&i| i < m.n) else {
            continue;
        };
        let tolerated = m.claims[i].iter().any(|c| {
            c.access == SlotAccess::Read
                && d.message
                    .contains(&format!("{:?} slot {}", c.scope, c.slot))
                && m.effects[i]
                    .default_ok
                    .iter()
                    .any(|t| t.scope == c.scope && t.slot == c.slot)
        });
        if tolerated {
            d.message
                .push_str(" [deep: the reader treats the unwritten default as a valid verdict]");
        }
    }
}

/// Applies the deep pass to an existing shallow report: demotes disproven
/// path-insensitive findings, then appends the `NBA04x` diagnostics.
pub fn apply_deep(graph: &ElementGraph, src: Option<&SourceMap>, report: &mut LintReport) {
    demote_disproven(graph, report);
    let deep = deep_verify(graph, src);
    report.diagnostics.extend(deep.diagnostics);
}

/// Runtime preflight, the deep superset of [`crate::lint::preflight`]:
/// shallow checks with deep demotion applied, the path family, and the
/// static queue-law checks over the run's [`CapacityModel`]. Warnings go
/// to stderr; `Error`-severity findings refuse to start the run.
pub fn preflight(graph: &ElementGraph, cap: &CapacityModel) {
    let mut report = crate::lint::verify_graph(graph, None);
    apply_deep(graph, None, &mut report);
    report.diagnostics.extend(check_capacity(cap).diagnostics);
    for w in report.warnings() {
        eprintln!("nba-verify: {w}");
    }
    if report.has_errors() {
        panic!(
            "pipeline failed static verification (nba-lint):\n{}",
            report.render_text()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::{anno, Anno, PacketResult};
    use crate::element::ElemCtx;
    use crate::graph::GraphBuilder;
    use nba_io::Packet;

    struct Fx {
        name: &'static str,
        ports: usize,
        claims: &'static [SlotClaim],
        effects: ElementEffects,
    }

    impl Fx {
        fn new(name: &'static str) -> Fx {
            Fx {
                name,
                ports: 1,
                claims: &[],
                effects: ElementEffects::default(),
            }
        }
    }

    impl Element for Fx {
        fn class_name(&self) -> &'static str {
            self.name
        }
        fn output_count(&self) -> usize {
            self.ports
        }
        fn slot_claims(&self) -> &'static [SlotClaim] {
            self.claims
        }
        fn effects(&self) -> ElementEffects {
            self.effects
        }
        fn process(&mut self, _: &mut ElemCtx<'_>, _: &mut Packet, _: &mut Anno) -> PacketResult {
            PacketResult::Out(0)
        }
    }

    static WRITE_RE: &[SlotClaim] = &[SlotClaim::writes(anno::RE_MATCH)];
    static READ_RE: &[SlotClaim] = &[SlotClaim::reads(anno::RE_MATCH)];

    #[test]
    fn dominated_read_is_clean_and_disjoint_read_is_flagged() {
        // fork[0] -> w -> r1 (dominated), fork[1] -> r2 (not dominated).
        let mut gb = GraphBuilder::new();
        let f = gb.add(Box::new(Fx {
            ports: 2,
            ..Fx::new("Fork")
        }));
        let w = gb.add(Box::new(Fx {
            claims: WRITE_RE,
            ..Fx::new("W")
        }));
        let r1 = gb.add(Box::new(Fx {
            claims: READ_RE,
            ..Fx::new("R")
        }));
        let r2 = gb.add(Box::new(Fx {
            claims: READ_RE,
            ..Fx::new("R")
        }));
        gb.connect(f, 0, w);
        gb.connect(w, 0, r1);
        gb.connect(f, 1, r2);
        gb.connect_exit(r1, 0);
        gb.connect_exit(r2, 0);
        let g = gb.build().unwrap();
        let report = deep_verify(&g, None);
        let hits: Vec<_> = report.with_code(Code::PathReadUnwritten).collect();
        assert_eq!(hits.len(), 1, "{}", report.render_text());
        assert_eq!(hits[0].node, Some(r2.0));
        assert!(hits[0].message.contains("Fork -> R"), "{}", hits[0].message);
    }

    #[test]
    fn fixpoint_terminates_on_cycles() {
        let mut gb = GraphBuilder::new();
        let a = gb.add(Box::new(Fx::new("A")));
        let b = gb.add(Box::new(Fx::new("B")));
        gb.connect(a, 0, b);
        gb.connect(b, 0, a);
        let g = gb.build().unwrap();
        deep_verify(&g, None); // must not hang or panic
    }

    #[test]
    fn join_of_maybe_written_flags_read() {
        // Diamond where only one arm writes: the merge point reads.
        let mut gb = GraphBuilder::new();
        let f = gb.add(Box::new(Fx {
            ports: 2,
            ..Fx::new("Fork")
        }));
        let w = gb.add(Box::new(Fx {
            claims: WRITE_RE,
            ..Fx::new("W")
        }));
        let n = gb.add(Box::new(Fx::new("N")));
        let r = gb.add(Box::new(Fx {
            claims: READ_RE,
            ..Fx::new("R")
        }));
        gb.connect(f, 0, w);
        gb.connect(f, 1, n);
        gb.connect(w, 0, r);
        gb.connect(n, 0, r);
        gb.connect_exit(r, 0);
        let g = gb.build().unwrap();
        let report = deep_verify(&g, None);
        let hit = report.with_code(Code::PathReadUnwritten).next().unwrap();
        // The witness must be the non-writing arm.
        assert!(hit.message.contains("Fork -> N -> R"), "{}", hit.message);
    }

    #[test]
    fn demotion_turns_disjoint_collision_into_warning() {
        static W_A: &[SlotClaim] = &[SlotClaim::writes(anno::FLOW_ID)];
        static W_B: &[SlotClaim] = &[SlotClaim::writes(anno::FLOW_ID)];
        let build = |disjoint: bool| {
            let mut gb = GraphBuilder::new();
            let f = gb.add(Box::new(Fx {
                ports: 2,
                ..Fx::new("Fork")
            }));
            let a = gb.add(Box::new(Fx {
                claims: W_A,
                ..Fx::new("WA")
            }));
            let b = gb.add(Box::new(Fx {
                claims: W_B,
                ..Fx::new("WB")
            }));
            gb.connect(f, 0, a);
            if disjoint {
                gb.connect(f, 1, b);
                gb.connect_exit(a, 0);
            } else {
                gb.connect(a, 0, b);
                gb.connect_exit(f, 1);
            }
            gb.connect_exit(b, 0);
            gb.build().unwrap()
        };
        let g = build(true);
        let mut report = crate::lint::verify_graph(&g, None);
        apply_deep(&g, None, &mut report);
        let d = report.with_code(Code::SlotCollision).next().unwrap();
        assert_eq!(d.severity, Severity::Warn, "{}", d.message);
        assert!(d.message.contains("[deep:"), "{}", d.message);

        let g = build(false);
        let mut report = crate::lint::verify_graph(&g, None);
        apply_deep(&g, None, &mut report);
        let d = report.with_code(Code::SlotCollision).next().unwrap();
        assert_eq!(d.severity, Severity::Error, "{}", d.message);
    }

    #[test]
    fn blackhole_subgraph_flagged_once_at_boundary() {
        let mut gb = GraphBuilder::new();
        let f = gb.add(Box::new(Fx {
            ports: 2,
            ..Fx::new("Fork")
        }));
        let ok = gb.add(Box::new(Fx::new("Ok")));
        let hole = gb.add(Box::new(Fx::new("Hole")));
        gb.connect(f, 0, ok);
        gb.connect(f, 1, hole);
        gb.connect_exit(ok, 0);
        gb.connect_discard(hole, 0);
        let g = gb.build().unwrap();
        let report = deep_verify(&g, None);
        assert_eq!(report.with_code(Code::BlackholePath).count(), 1);
    }

    #[test]
    fn direct_discard_edge_is_not_a_blackhole() {
        let mut gb = GraphBuilder::new();
        let f = gb.add(Box::new(Fx {
            ports: 2,
            ..Fx::new("Fork")
        }));
        let ok = gb.add(Box::new(Fx::new("Ok")));
        gb.connect(f, 0, ok);
        gb.connect_discard(f, 1);
        gb.connect_exit(ok, 0);
        let g = gb.build().unwrap();
        assert_eq!(
            deep_verify(&g, None).with_code(Code::BlackholePath).count(),
            0
        );
    }

    #[test]
    fn required_fact_without_validator_flags_nba043() {
        static REQ4: &[HeaderFact] = &[HeaderFact::Ipv4Valid];
        let mut gb = GraphBuilder::new();
        let a = gb.add(Box::new(Fx::new("A")));
        let ttl = gb.add(Box::new(Fx {
            effects: ElementEffects {
                requires: REQ4,
                ..ElementEffects::default()
            },
            ..Fx::new("Ttl")
        }));
        gb.connect(a, 0, ttl);
        gb.connect_exit(ttl, 0);
        let g = gb.build().unwrap();
        let report = deep_verify(&g, None);
        let hit = report
            .with_code(Code::HeaderBeforeValidation)
            .next()
            .unwrap();
        assert!(hit.message.contains("A -> Ttl"), "{}", hit.message);
    }

    #[test]
    fn redundant_validator_port_is_dead() {
        static EST4: &[(usize, HeaderFact)] = &[(0, HeaderFact::Ipv4Valid)];
        let validator = || Fx {
            ports: 2,
            effects: ElementEffects {
                establishes: EST4,
                ..ElementEffects::default()
            },
            ..Fx::new("Check")
        };
        let mut gb = GraphBuilder::new();
        let v1 = gb.add(Box::new(validator()));
        let v2 = gb.add(Box::new(validator()));
        gb.connect(v1, 0, v2);
        gb.connect_discard(v1, 1);
        gb.connect_exit(v2, 0);
        gb.connect_discard(v2, 1);
        let g = gb.build().unwrap();
        let report = deep_verify(&g, None);
        let hits: Vec<_> = report.with_code(Code::DeadBranch).collect();
        assert_eq!(hits.len(), 1, "{}", report.render_text());
        assert_eq!(hits[0].node, Some(v2.0));
    }
}
