//! `nba-sim`: the discrete-event substrate under the NBA reproduction.
//!
//! The EuroSys'15 NBA paper evaluates on real hardware (dual Sandy Bridge
//! Xeons, 8x10 GbE with DPDK, 2x GTX 680 with CUDA). This crate provides the
//! deterministic virtual-time machinery that stands in for that testbed:
//!
//! * [`time::Time`] — picosecond-resolution virtual time,
//! * [`engine`] — a conservative, deterministic discrete-event engine over
//!   [`engine::Entity`] actors (worker cores, device threads, NIC ports),
//! * [`queue::SimQueue`] — bounded entity-to-entity queues with drop
//!   accounting (how RX overload becomes packet loss),
//! * [`cost::CostModel`] — every calibrated constant in one place,
//! * [`topology::Topology`] — the machine shape (Table 3 of the paper).
//!
//! Nothing here knows about packets or elements; higher crates (`nba-io`,
//! `nba-gpu`, `nba-core`) build the actual framework on these primitives.

#![forbid(unsafe_code)]

pub mod cost;
pub mod engine;
pub mod queue;
pub mod time;
pub mod topology;

pub use cost::{CostModel, CpuProfile, GpuCostModel, GpuProfile};
pub use engine::{Ctx, Engine, Entity, EntityId, Stop, Wake};
pub use queue::SimQueue;
pub use time::Time;
pub use topology::Topology;
