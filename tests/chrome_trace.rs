//! The Chrome Trace Event Format exporter: a DES run's batch-lifecycle
//! trace must render to JSON that Perfetto can load — valid JSON, the
//! required keys on every event, properly nested `B`/`E` pairs per thread,
//! flow arrows across the offload handoff, and escaped element names.

use std::collections::HashMap;
use std::sync::OnceLock;

use nba::core::json::{self, Value};
use nba::core::runtime::{des, traffic_per_port, RuntimeConfig};
use nba::core::telemetry::{trace_to_chrome, ElementProfile, TraceEvent, TraceEventKind};
use nba::core::{lb, LatencyHistogram};
use nba::io::{SizeDist, TrafficConfig};
use nba::sim::Time;
use nba_apps::{pipelines, AppConfig};

/// Runs a short offloading DES workload with tracing on and exports the
/// trace. The simulation runs once; every test shares the result.
fn traced_run() -> &'static (String, Vec<TraceEvent>) {
    static RUN: OnceLock<(String, Vec<TraceEvent>)> = OnceLock::new();
    RUN.get_or_init(|| {
        let mut cfg = RuntimeConfig::test_default();
        cfg.warmup = Time::from_ms(1);
        cfg.measure = Time::from_ms(4);
        cfg.telemetry.trace_capacity = 4096;
        let app = AppConfig {
            ports: cfg.topology.ports.len() as u16,
            ..AppConfig::default()
        };
        let r = des::run(
            &cfg,
            &pipelines::ipv4_router(&app),
            &lb::shared(Box::new(lb::FixedFraction::new(0.5))),
            &traffic_per_port(
                &cfg.topology,
                &TrafficConfig {
                    offered_gbps: 2.0,
                    size: SizeDist::Fixed(128),
                    ..TrafficConfig::default()
                },
            ),
        );
        assert!(!r.trace.is_empty(), "tracing produced no events");
        (trace_to_chrome(&r.trace, &r.elements), r.trace)
    })
}

fn events_of(doc: &Value) -> Vec<Value> {
    doc.get("traceEvents")
        .and_then(Value::as_arr)
        .expect("traceEvents array")
        .to_vec()
}

#[test]
fn export_is_valid_json_with_required_keys() {
    let (out, _) = traced_run().clone();
    let doc = json::parse(&out).expect("exporter must emit valid JSON");
    assert_eq!(
        doc.get("displayTimeUnit").and_then(Value::as_str),
        Some("ns")
    );
    let events = events_of(&doc);
    assert!(events.len() > 10);
    for e in &events {
        for key in ["ph", "ts", "pid", "tid", "name"] {
            // Metadata events carry no ts in some traces, but ours always
            // stamp one; require the full key set uniformly.
            if key == "ts" && e.get("ph").and_then(Value::as_str) == Some("M") {
                continue;
            }
            assert!(e.get(key).is_some(), "event missing '{key}': {e:?}");
        }
        let ph = e.get("ph").and_then(Value::as_str).unwrap();
        assert!(
            ["B", "E", "i", "s", "t", "f", "M"].contains(&ph),
            "unexpected phase {ph}"
        );
    }
}

#[test]
fn covers_the_batch_lifecycle_with_flows() {
    let (out, raw) = traced_run().clone();
    // The raw trace itself must span ≥4 distinct lifecycle kinds.
    let mut kinds: Vec<TraceEventKind> = raw.iter().map(|e| e.kind).collect();
    kinds.sort_by_key(|k| k.as_str());
    kinds.dedup();
    assert!(kinds.len() >= 4, "only {kinds:?}");
    assert!(kinds.contains(&TraceEventKind::OffloadEnqueue), "{kinds:?}");

    let doc = json::parse(&out).unwrap();
    let events = events_of(&doc);
    let phase_count = |want: &str| {
        events
            .iter()
            .filter(|e| e.get("ph").and_then(Value::as_str) == Some(want))
            .count()
    };
    // Duration slices for element work, instants for RX/TX.
    assert!(phase_count("B") > 0 && phase_count("i") > 0);
    // The offload handoff renders as complete flow arrows: start on the
    // worker, step on the device pseudo-thread, finish back on the worker,
    // all sharing the batch's id.
    let flow_ids = |ph: &str| -> Vec<u64> {
        let mut ids: Vec<u64> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Value::as_str) == Some(ph))
            .map(|e| e.get("id").and_then(Value::as_u64).expect("flow id"))
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    };
    let starts = flow_ids("s");
    let steps = flow_ids("t");
    let finishes = flow_ids("f");
    assert!(!starts.is_empty(), "no flow starts");
    let complete = starts
        .iter()
        .filter(|id| steps.contains(id) && finishes.contains(id))
        .count();
    assert!(
        complete > 0,
        "no batch has a complete s→t→f flow ({} starts, {} steps, {} finishes)",
        starts.len(),
        steps.len(),
        finishes.len()
    );
    // The device pseudo-thread hosts the launch steps and is named.
    assert!(events.iter().any(|e| {
        e.get("ph").and_then(Value::as_str) == Some("M")
            && e.get("name").and_then(Value::as_str) == Some("thread_name")
            && e.get("args")
                .and_then(|a| a.get("name"))
                .and_then(Value::as_str)
                == Some("device")
    }));
}

#[test]
fn b_and_e_events_pair_up_per_thread() {
    let (out, _) = traced_run().clone();
    let doc = json::parse(&out).unwrap();
    // Per tid: B/E must balance like brackets, with non-decreasing
    // timestamps and matching names — exactly what Perfetto requires to
    // build slices.
    let mut stacks: HashMap<u64, Vec<String>> = HashMap::new();
    let mut last_ts: HashMap<u64, f64> = HashMap::new();
    for e in events_of(&doc) {
        let ph = e.get("ph").and_then(Value::as_str).unwrap();
        if ph == "M" {
            continue;
        }
        let tid = e.get("tid").and_then(Value::as_u64).unwrap();
        let ts = e.get("ts").and_then(Value::as_f64).unwrap();
        let prev = last_ts.entry(tid).or_insert(0.0);
        assert!(
            ts >= *prev,
            "timestamps regress on tid {tid}: {ts} after {prev}"
        );
        *prev = ts;
        let name = e.get("name").and_then(Value::as_str).unwrap().to_string();
        match ph {
            "B" => stacks.entry(tid).or_default().push(name),
            "E" => {
                let open = stacks
                    .entry(tid)
                    .or_default()
                    .pop()
                    .unwrap_or_else(|| panic!("E without B on tid {tid}"));
                assert_eq!(open, name, "mismatched B/E pair on tid {tid}");
            }
            _ => {}
        }
    }
    for (tid, stack) in stacks {
        assert!(
            stack.is_empty(),
            "unclosed B events on tid {tid}: {stack:?}"
        );
    }
}

#[test]
fn element_names_are_escaped() {
    // Element class names can come from `.click` configs; quotes,
    // backslashes, and control characters must not corrupt the JSON and
    // must round-trip through a parse.
    let name = "Weird\"Name\\With\tEscapes";
    let profiles = vec![ElementProfile {
        node: 7,
        element: name,
        batches: 1,
        packets: 1,
        drops: 0,
        cycles: 10,
        busy: Time::from_ns(500),
        latency: LatencyHistogram::new(),
    }];
    let events = vec![TraceEvent {
        t: Time::from_ns(1_000),
        worker: 0,
        batch: 42,
        node: Some(7),
        kind: TraceEventKind::Element,
        packets: 1,
        dur: Time::from_ns(500),
        span: 0,
        parent: 0,
    }];
    let out = trace_to_chrome(&events, &profiles);
    let doc = json::parse(&out).expect("escaped names must stay valid JSON");
    let round_tripped = events_of(&doc).iter().any(|e| {
        e.get("ph").and_then(Value::as_str) == Some("B")
            && e.get("name").and_then(Value::as_str) == Some(name)
    });
    assert!(round_tripped, "element name did not round-trip: {out}");
}
