//! Offered-load traffic generation.
//!
//! The paper's workload is "randomly generated IP traffic with UDP payloads"
//! offered at a fixed rate (up to 80 Gbps across 8 ports), plus a replayed
//! CAIDA 2013 trace for the mixed-size IPsec experiments. This module
//! provides deterministic (seeded) generators for both: fixed-size sweeps,
//! the classic IMIX mix, and a CAIDA-like empirical size mix over a Zipf
//! flow population.
//!
//! Rates are *wire rates*: a 10 Gbps offered load of 64-byte frames is
//! 14.88 Mpps, matching how line rate is accounted on real hardware.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use nba_sim::Time;

use crate::buf::{Mempool, DEFAULT_HEADROOM};
use crate::packet::{Packet, WIRE_OVERHEAD_BYTES};
use crate::proto::{self, FrameBuilder};

/// Frame-size distribution of a generated stream.
#[derive(Debug, Clone, PartialEq)]
pub enum SizeDist {
    /// Every frame has the same length.
    Fixed(usize),
    /// Simple IMIX: 64 B (7/12), 594 B (4/12), 1518 B (1/12).
    Imix,
    /// A CAIDA-backbone-like empirical mix: bimodal small/large with a
    /// realistic mean around 700 B of wire load.
    CaidaLike,
    /// Uniform over `[min, max]`.
    Uniform {
        /// Smallest frame length.
        min: usize,
        /// Largest frame length.
        max: usize,
    },
}

impl SizeDist {
    /// Samples one frame length.
    pub fn sample(&self, rng: &mut SmallRng) -> usize {
        match self {
            SizeDist::Fixed(n) => *n,
            SizeDist::Imix => match rng.gen_range(0..12) {
                0..=6 => 64,
                7..=10 => 594,
                _ => 1518,
            },
            SizeDist::CaidaLike => {
                // (frame length, per-mille probability).
                const MIX: [(usize, u32); 6] = [
                    (64, 700),
                    (128, 140),
                    (256, 60),
                    (576, 40),
                    (1024, 20),
                    (1500, 40),
                ];
                let mut roll = rng.gen_range(0..1000u32);
                for (len, p) in MIX {
                    if roll < p {
                        return len;
                    }
                    roll -= p;
                }
                1500
            }
            SizeDist::Uniform { min, max } => rng.gen_range(*min..=*max),
        }
    }
}

/// IP version of the generated traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IpVersion {
    /// IPv4 + UDP.
    V4,
    /// IPv6 + UDP.
    V6,
}

/// How UDP payload bytes are filled.
#[derive(Debug, Clone, PartialEq)]
pub enum PayloadFill {
    /// Zero bytes (fastest; default for timing runs).
    Zeros,
    /// Pseudo-random lowercase ASCII (for pattern-matching workloads).
    Ascii,
    /// ASCII background with `needle` planted into every `every`-th packet
    /// (for IDS detection tests).
    Plant {
        /// The byte string to plant.
        needle: Vec<u8>,
        /// Planting period in packets (1 = every packet).
        every: u32,
    },
}

/// L4 protocol of the generated traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum L4Proto {
    /// UDP datagrams (the paper's workload).
    #[default]
    Udp,
    /// TCP segments with per-flow SYN / data / FIN sequencing, for
    /// stateful elements (conntrack, NAT bindings with connection
    /// lifecycle).
    Tcp,
}

/// Configuration of one traffic source (typically one per port).
#[derive(Debug, Clone)]
pub struct TrafficConfig {
    /// Offered load in wire Gbps.
    pub offered_gbps: f64,
    /// Frame-size distribution.
    pub size: SizeDist,
    /// IPv4 or IPv6 headers.
    pub ip_version: IpVersion,
    /// Number of distinct flows (5-tuples).
    pub flows: usize,
    /// Zipf skew across flows; 0.0 = uniform.
    pub zipf_alpha: f64,
    /// Payload contents.
    pub payload: PayloadFill,
    /// RNG seed (generators are fully deterministic).
    pub seed: u64,
    /// L4 protocol. TCP is IPv4-only and emits SYN on a flow's first
    /// packet, FIN on its last (when `flow_lifetime_pkts` is set).
    pub l4: L4Proto,
    /// Flow churn: after this many packets a flow ends (TCP flows emit a
    /// FIN) and is replaced by a freshly drawn identity — a long-lived
    /// arrival/expiration mix. 0 = flows live forever.
    pub flow_lifetime_pkts: u64,
    /// SYN-flood injection (TCP only): this many slots per thousand are
    /// one-shot SYNs from never-repeated random sources.
    pub syn_flood_per_mille: u32,
    /// Round-robin flow selection instead of random draws: packet `i`
    /// belongs to flow `i % flows`. Guarantees full flow coverage in one
    /// cycle (million-flow occupancy runs need every flow touched without
    /// a coupon-collector tail).
    pub sequential: bool,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        TrafficConfig {
            offered_gbps: 10.0,
            size: SizeDist::Fixed(64),
            ip_version: IpVersion::V4,
            flows: 4096,
            zipf_alpha: 0.0,
            payload: PayloadFill::Zeros,
            seed: 0x6e62_615f_7267, // "nba_rg"
            l4: L4Proto::Udp,
            flow_lifetime_pkts: 0,
            syn_flood_per_mille: 0,
            sequential: false,
        }
    }
}

/// One pre-generated flow identity.
#[derive(Debug, Clone, Copy)]
struct Flow {
    src_v4: u32,
    dst_v4: u32,
    src_v6: u128,
    dst_v6: u128,
    src_port: u16,
    dst_port: u16,
}

/// Generator statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct GenStats {
    /// Frames generated (offered).
    pub generated: u64,
    /// Sum of generated frame bits.
    pub frame_bits: u64,
    /// Frames not generated because the buffer pool was exhausted.
    pub alloc_failures: u64,
}

/// Per-flow connection state (TCP sequencing and lifetime churn).
#[derive(Debug, Clone, Copy, Default)]
struct FlowState {
    /// Packets emitted for the current flow identity.
    pkts: u64,
}

/// A deterministic offered-load packet source.
pub struct TrafficGen {
    cfg: TrafficConfig,
    rng: SmallRng,
    flows: Vec<Flow>,
    /// Per-flow lifecycle state (TCP flags, lifetime churn).
    state: Vec<FlowState>,
    /// Cumulative Zipf weights (empty when uniform).
    zipf_cdf: Vec<f64>,
    builder: FrameBuilder,
    next_ts: Time,
    seq: u64,
    stats: GenStats,
}

impl TrafficGen {
    /// Creates a generator from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has no flows, a non-positive rate, or
    /// asks for TCP over IPv6 (unsupported).
    pub fn new(cfg: TrafficConfig) -> TrafficGen {
        assert!(cfg.flows > 0, "traffic needs at least one flow");
        assert!(cfg.offered_gbps > 0.0, "offered load must be positive");
        assert!(
            cfg.l4 == L4Proto::Udp || cfg.ip_version == IpVersion::V4,
            "TCP generation is IPv4-only"
        );
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let flows = (0..cfg.flows)
            .map(|_| Flow {
                src_v4: rng.gen(),
                dst_v4: rng.gen(),
                // Randomize all 96 bits below the documentation /32 so
                // prefixes at every length see diverse traffic.
                src_v6: 0x2001_0db8 << 96 | (rng.gen::<u128>() >> 32),
                dst_v6: 0x2001_0db8 << 96 | (rng.gen::<u128>() >> 32),
                src_port: rng.gen_range(1024..u16::MAX),
                dst_port: rng.gen_range(1..1024),
            })
            .collect::<Vec<_>>();
        let zipf_cdf = if cfg.zipf_alpha > 0.0 {
            let mut acc = 0.0;
            let mut cdf = Vec::with_capacity(cfg.flows);
            for rank in 1..=cfg.flows {
                acc += 1.0 / (rank as f64).powf(cfg.zipf_alpha);
                cdf.push(acc);
            }
            for w in &mut cdf {
                *w /= acc;
            }
            cdf
        } else {
            Vec::new()
        };
        let state = vec![FlowState::default(); cfg.flows];
        TrafficGen {
            cfg,
            rng,
            flows,
            state,
            zipf_cdf,
            builder: FrameBuilder::default(),
            next_ts: Time::ZERO,
            seq: 0,
            stats: GenStats::default(),
        }
    }

    /// The generator's statistics so far.
    pub fn stats(&self) -> GenStats {
        self.stats
    }

    /// Minimum frame length this configuration can produce.
    fn min_len(&self) -> usize {
        match (self.cfg.ip_version, self.cfg.l4) {
            (IpVersion::V4, L4Proto::Udp) => FrameBuilder::MIN_V4_LEN,
            (IpVersion::V4, L4Proto::Tcp) => FrameBuilder::MIN_V4_TCP_LEN,
            (IpVersion::V6, _) => FrameBuilder::MIN_V6_LEN,
        }
    }

    fn pick_flow(&mut self) -> usize {
        if self.cfg.sequential {
            // `seq` was already advanced for this packet.
            ((self.seq - 1) % self.flows.len() as u64) as usize
        } else if self.zipf_cdf.is_empty() {
            self.rng.gen_range(0..self.flows.len())
        } else {
            let u: f64 = self.rng.gen();
            self.zipf_cdf
                .partition_point(|&c| c < u)
                .min(self.flows.len() - 1)
        }
    }

    /// Draws a fresh flow identity (lifetime churn replacement).
    fn fresh_flow(&mut self) -> Flow {
        Flow {
            src_v4: self.rng.gen(),
            dst_v4: self.rng.gen(),
            src_v6: 0x2001_0db8 << 96 | (self.rng.gen::<u128>() >> 32),
            dst_v6: 0x2001_0db8 << 96 | (self.rng.gen::<u128>() >> 32),
            src_port: self.rng.gen_range(1024..u16::MAX),
            dst_port: self.rng.gen_range(1..1024),
        }
    }

    /// Emits every packet due strictly before `until` into `sink`.
    ///
    /// Packets carry `ts_gen` pacing timestamps spaced so the stream's wire
    /// rate equals the configured offered load. Returns the number emitted.
    pub fn generate(&mut self, until: Time, pool: &Mempool, sink: &mut dyn FnMut(Packet)) -> u64 {
        let mut emitted = 0;
        while self.next_ts < until {
            let len = self.cfg.size.sample(&mut self.rng).max(self.min_len());
            let ts = self.next_ts;
            // Advance pacing before any alloc-failure path so overload
            // cannot stall virtual time.
            let wire_bits = ((len + WIRE_OVERHEAD_BYTES) * 8) as f64;
            self.next_ts += Time::from_secs_f64(wire_bits / (self.cfg.offered_gbps * 1e9));
            self.seq += 1;

            let Some(mut buf) = pool.alloc() else {
                self.stats.alloc_failures += 1;
                continue;
            };
            // SYN-flood slots come from one-shot random sources that are
            // never drawn again (no state to complete a handshake with).
            let flood = self.cfg.l4 == L4Proto::Tcp
                && self.cfg.syn_flood_per_mille > 0
                && self.rng.gen_range(0..1000) < self.cfg.syn_flood_per_mille;
            let (flow, flags, tcp_seq) = if flood {
                (self.fresh_flow(), proto::TCP_SYN, 0)
            } else {
                let idx = self.pick_flow();
                let pkts = self.state[idx].pkts;
                let last =
                    self.cfg.flow_lifetime_pkts > 0 && pkts + 1 >= self.cfg.flow_lifetime_pkts;
                let flags = if pkts == 0 {
                    proto::TCP_SYN
                } else if last {
                    proto::TCP_FIN | proto::TCP_ACK
                } else {
                    proto::TCP_ACK | proto::TCP_PSH
                };
                let flow = self.flows[idx];
                if last {
                    // Lifetime churn: the flow expires; a fresh identity
                    // arrives in its slot.
                    self.flows[idx] = self.fresh_flow();
                    self.state[idx] = FlowState::default();
                } else {
                    self.state[idx].pkts = pkts + 1;
                }
                (flow, flags, pkts as u32)
            };
            let frame = buf.set_region(DEFAULT_HEADROOM, len);
            match (self.cfg.ip_version, self.cfg.l4) {
                (IpVersion::V4, L4Proto::Udp) => {
                    self.builder.src_port = flow.src_port;
                    self.builder.dst_port = flow.dst_port;
                    self.builder
                        .build_ipv4(frame, len, flow.src_v4, flow.dst_v4);
                    self.fill_payload(frame, FrameBuilder::MIN_V4_LEN);
                }
                (IpVersion::V4, L4Proto::Tcp) => {
                    self.builder.src_port = flow.src_port;
                    self.builder.dst_port = flow.dst_port;
                    self.builder.build_ipv4_tcp(
                        frame,
                        len,
                        flow.src_v4,
                        flow.dst_v4,
                        flags,
                        tcp_seq,
                    );
                    // Payload untouched: TCP checksums cover the body, and
                    // the stateful suites verify them end to end.
                }
                (IpVersion::V6, _) => {
                    self.builder.src_port = flow.src_port;
                    self.builder.dst_port = flow.dst_port;
                    self.builder
                        .build_ipv6(frame, len, flow.src_v6, flow.dst_v6);
                    self.fill_payload(frame, FrameBuilder::MIN_V6_LEN);
                }
            }
            let mut pkt = Packet::from_pool(buf, pool.clone());
            pkt.ts_gen = ts;
            self.stats.generated += 1;
            self.stats.frame_bits += (len * 8) as u64;
            emitted += 1;
            sink(pkt);
        }
        emitted
    }

    fn fill_payload(&mut self, frame: &mut [u8], hdr_len: usize) {
        // Take a local copy of the fill spec to keep the borrow checker
        // happy while using self.rng below.
        match &self.cfg.payload {
            PayloadFill::Zeros => {}
            PayloadFill::Ascii => {
                let body = &mut frame[hdr_len..];
                for b in body.iter_mut() {
                    *b = b'a' + (self.rng.gen::<u8>() % 26);
                }
            }
            PayloadFill::Plant { needle, every } => {
                let needle = needle.clone();
                let every = *every;
                let body = &mut frame[hdr_len..];
                for b in body.iter_mut() {
                    *b = b'a' + (self.rng.gen::<u8>() % 26);
                }
                if every > 0
                    && self.seq.is_multiple_of(u64::from(every))
                    && body.len() >= needle.len()
                {
                    let at = if body.len() == needle.len() {
                        0
                    } else {
                        self.rng.gen_range(0..body.len() - needle.len())
                    };
                    body[at..at + needle.len()].copy_from_slice(&needle);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{
        ether::EtherView, ipv4::Ipv4View, ipv6::Ipv6View, l4::TcpView, IPPROTO_TCP, TCP_ACK,
        TCP_FIN, TCP_PSH, TCP_SYN,
    };

    fn run_gen(cfg: TrafficConfig, until: Time) -> (Vec<Packet>, GenStats) {
        let pool = Mempool::new(1 << 20);
        let mut gen = TrafficGen::new(cfg);
        let mut out = Vec::new();
        gen.generate(until, &pool, &mut |p| out.push(p));
        (out, gen.stats())
    }

    #[test]
    fn rate_matches_offered_load() {
        // 10 Gbps of 64-byte frames for 1 ms => 14.88 Mpps * 1 ms = ~14880.
        let cfg = TrafficConfig::default();
        let (pkts, stats) = run_gen(cfg, Time::from_ms(1));
        let expect = (10e9 / 672.0 * 1e-3) as i64;
        assert!(
            (pkts.len() as i64 - expect).abs() <= 1,
            "{} vs {}",
            pkts.len(),
            expect
        );
        assert_eq!(stats.generated, pkts.len() as u64);
    }

    #[test]
    fn frames_are_valid_ipv4() {
        let (pkts, _) = run_gen(TrafficConfig::default(), Time::from_us(10));
        assert!(!pkts.is_empty());
        for p in &pkts {
            let eth = EtherView::parse(p.data()).unwrap();
            let ip = Ipv4View::parse(eth.payload()).unwrap();
            assert!(ip.checksum_ok());
            assert_eq!(usize::from(ip.total_len()), p.len() - 14);
        }
    }

    #[test]
    fn frames_are_valid_ipv6() {
        let cfg = TrafficConfig {
            ip_version: IpVersion::V6,
            ..TrafficConfig::default()
        };
        let (pkts, _) = run_gen(cfg, Time::from_us(10));
        assert!(!pkts.is_empty());
        for p in &pkts {
            let eth = EtherView::parse(p.data()).unwrap();
            let ip = Ipv6View::parse(eth.payload()).unwrap();
            assert_eq!(ip.hop_limit(), 64);
            assert_eq!(p.len(), 64.max(FrameBuilder::MIN_V6_LEN));
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let (a, _) = run_gen(TrafficConfig::default(), Time::from_us(50));
        let (b, _) = run_gen(TrafficConfig::default(), Time::from_us(50));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.data(), y.data());
            assert_eq!(x.ts_gen, y.ts_gen);
        }
    }

    #[test]
    fn zipf_skews_flow_popularity() {
        let cfg = TrafficConfig {
            flows: 64,
            zipf_alpha: 1.2,
            ..TrafficConfig::default()
        };
        let (pkts, _) = run_gen(cfg, Time::from_ms(1));
        let mut by_dst = std::collections::HashMap::new();
        for p in &pkts {
            let eth = EtherView::parse(p.data()).unwrap();
            let ip = Ipv4View::parse(eth.payload()).unwrap();
            *by_dst.entry(ip.dst()).or_insert(0u32) += 1;
        }
        let mut counts: Vec<u32> = by_dst.values().copied().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        // The most popular flow should dominate a uniform share by far.
        assert!(counts[0] > pkts.len() as u32 / 64 * 5);
    }

    #[test]
    fn imix_and_caida_mixes_have_expected_spread() {
        for size in [SizeDist::Imix, SizeDist::CaidaLike] {
            let cfg = TrafficConfig {
                size: size.clone(),
                offered_gbps: 40.0,
                ..TrafficConfig::default()
            };
            let (pkts, _) = run_gen(cfg, Time::from_ms(1));
            let small = pkts.iter().filter(|p| p.len() <= 128).count();
            let large = pkts.iter().filter(|p| p.len() >= 1024).count();
            assert!(small > 0 && large > 0, "{size:?} lacks size diversity");
        }
    }

    #[test]
    fn planted_needle_appears_periodically() {
        let cfg = TrafficConfig {
            size: SizeDist::Fixed(256),
            payload: PayloadFill::Plant {
                needle: b"EVILPATTERN".to_vec(),
                every: 4,
            },
            ..TrafficConfig::default()
        };
        let (pkts, _) = run_gen(cfg, Time::from_us(200));
        let hits = pkts
            .iter()
            .filter(|p| p.data().windows(11).any(|w| w == b"EVILPATTERN"))
            .count();
        assert!(hits >= pkts.len() / 5, "{hits} of {}", pkts.len());
        assert!(hits <= pkts.len() / 3);
    }

    #[test]
    fn tcp_flows_carry_handshake_then_data_then_fin() {
        let cfg = TrafficConfig {
            l4: L4Proto::Tcp,
            flows: 4,
            flow_lifetime_pkts: 8,
            size: SizeDist::Fixed(128),
            ..TrafficConfig::default()
        };
        let (pkts, _) = run_gen(cfg, Time::from_us(200));
        assert!(!pkts.is_empty());
        let mut per_flow: std::collections::HashMap<(u32, u16), Vec<(u8, u32)>> =
            std::collections::HashMap::new();
        for p in &pkts {
            let eth = EtherView::parse(p.data()).unwrap();
            let ip = Ipv4View::parse(eth.payload()).unwrap();
            assert!(ip.checksum_ok());
            assert_eq!(ip.protocol(), IPPROTO_TCP);
            let tcp = TcpView::parse(ip.payload()).unwrap();
            per_flow
                .entry((ip.src(), tcp.src_port()))
                .or_default()
                .push((tcp.flags(), tcp.seq()));
        }
        // Flow-lifetime churn keeps replacing identities, so there should be
        // more distinct 5-tuples than configured slots.
        assert!(per_flow.len() > 4, "{} flows", per_flow.len());
        for segs in per_flow.values() {
            // Each identity starts with a SYN at seq 0 and never exceeds
            // its lifetime; a completed identity ends with FIN|ACK.
            assert_eq!(segs[0], (TCP_SYN, 0));
            assert!(segs.len() <= 8, "{} pkts in one identity", segs.len());
            for (i, (flags, seq)) in segs.iter().enumerate() {
                assert_eq!(*seq, i as u32);
                if i > 0 && i + 1 < 8 {
                    assert_eq!(*flags, TCP_ACK | TCP_PSH);
                }
            }
            if segs.len() == 8 {
                assert_eq!(segs[7].0, TCP_FIN | TCP_ACK);
            }
        }
    }

    #[test]
    fn syn_flood_injects_one_shot_syns() {
        let cfg = TrafficConfig {
            l4: L4Proto::Tcp,
            flows: 4,
            syn_flood_per_mille: 500,
            size: SizeDist::Fixed(128),
            ..TrafficConfig::default()
        };
        let (pkts, _) = run_gen(cfg, Time::from_us(500));
        let mut syn_sources = std::collections::HashMap::new();
        let mut data = 0usize;
        for p in &pkts {
            let eth = EtherView::parse(p.data()).unwrap();
            let ip = Ipv4View::parse(eth.payload()).unwrap();
            let tcp = TcpView::parse(ip.payload()).unwrap();
            if tcp.flags() == TCP_SYN {
                *syn_sources
                    .entry((ip.src(), tcp.src_port()))
                    .or_insert(0u32) += 1;
            } else {
                data += 1;
            }
        }
        // Roughly half the stream is SYNs, from sources that (with
        // overwhelming probability) never repeat; legitimate flows keep
        // sending data between them.
        assert!(syn_sources.len() > pkts.len() / 4);
        assert!(data > pkts.len() / 4);
        let repeats = syn_sources.values().filter(|&&c| c > 1).count();
        assert!(repeats <= 1, "{repeats} repeated flood sources");
    }

    #[test]
    fn sequential_mode_touches_every_flow_once_per_round() {
        let cfg = TrafficConfig {
            flows: 32,
            sequential: true,
            ..TrafficConfig::default()
        };
        let (pkts, _) = run_gen(cfg, Time::from_us(30));
        assert!(pkts.len() >= 64, "{} pkts", pkts.len());
        let mut seen = std::collections::HashSet::new();
        for p in pkts.iter().take(32) {
            let eth = EtherView::parse(p.data()).unwrap();
            let ip = Ipv4View::parse(eth.payload()).unwrap();
            seen.insert(ip.src());
        }
        // The first N packets cover all N flow slots exactly once.
        assert_eq!(seen.len(), 32);
    }

    #[test]
    fn tcp_stream_is_deterministic_for_same_seed() {
        let cfg = TrafficConfig {
            l4: L4Proto::Tcp,
            flows: 8,
            flow_lifetime_pkts: 5,
            syn_flood_per_mille: 100,
            ..TrafficConfig::default()
        };
        let (a, _) = run_gen(cfg.clone(), Time::from_us(100));
        let (b, _) = run_gen(cfg, Time::from_us(100));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.data(), y.data());
        }
    }

    #[test]
    fn pool_exhaustion_counts_failures_but_time_advances() {
        let pool = Mempool::new(4);
        let mut gen = TrafficGen::new(TrafficConfig::default());
        let mut kept = Vec::new();
        gen.generate(Time::from_us(10), &pool, &mut |p| kept.push(p));
        assert_eq!(kept.len(), 4);
        assert!(gen.stats().alloc_failures > 0);
        // Later windows still progress.
        let n = gen.generate(Time::from_us(20), &pool, &mut |_p| {});
        assert_eq!(n, 0);
    }
}
