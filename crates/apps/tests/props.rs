//! Property tests of the application substrates: routing tables against
//! oracles, ESP round trips for arbitrary payloads.

use std::sync::Arc;

use proptest::prelude::*;

use nba_apps::ipsec::{open_esp, IPsecAES, IPsecAuthHMAC, IPsecESPEncap, SaTable};
use nba_apps::ipv4::{RouteV4, RoutingTableV4};
use nba_apps::ipv6::{RouteV6, RoutingTableV6};
use nba_apps::stateful::BackendTable;
use nba_core::batch::{Anno, PacketResult};
use nba_core::element::{ComputeMode, ElemCtx, Element};
use nba_core::nls::NodeLocalStorage;
use nba_core::stats::{Counters, SystemInspector};
use nba_io::proto::FrameBuilder;
use nba_io::Packet;
use nba_sim::Time;

fn route_v4() -> impl Strategy<Value = RouteV4> {
    (any::<u32>(), 0u8..=32, 0u16..1000).prop_map(|(p, len, hop)| RouteV4 {
        prefix: if len == 0 {
            0
        } else {
            p >> (32 - u32::from(len)) << (32 - u32::from(len))
        },
        len,
        next_hop: hop,
    })
}

fn route_v6() -> impl Strategy<Value = RouteV6> {
    (any::<u128>(), 0u8..=64, 0u16..1000).prop_map(|(p, len, hop)| RouteV6 {
        prefix: if len == 0 {
            0
        } else {
            p >> (128 - u32::from(len)) << (128 - u32::from(len))
        },
        len,
        next_hop: hop,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// DIR-24-8 equals the linear-scan oracle for arbitrary route sets.
    #[test]
    fn dir24_8_equals_oracle(
        routes in proptest::collection::vec(route_v4(), 1..40),
        probes in proptest::collection::vec(any::<u32>(), 1..50),
    ) {
        let t = RoutingTableV4::build(&routes);
        for dst in probes {
            prop_assert_eq!(t.lookup(dst), t.lookup_linear(dst), "dst {:#x}", dst);
        }
        // Probing near the inserted prefixes stresses boundaries.
        for r in &routes {
            for delta in [0u32, 1, 255, 256] {
                let dst = r.prefix.wrapping_add(delta);
                prop_assert_eq!(t.lookup(dst), t.lookup_linear(dst), "dst {:#x}", dst);
            }
        }
    }

    /// Binary-search-on-lengths equals the linear-scan oracle.
    #[test]
    fn waldvogel_equals_oracle(
        routes in proptest::collection::vec(route_v6(), 1..30),
        probes in proptest::collection::vec(any::<u128>(), 1..30),
    ) {
        let t = RoutingTableV6::build(&routes);
        for dst in probes {
            prop_assert_eq!(t.lookup(dst), t.lookup_linear(dst), "dst {:#x}", dst);
        }
        for r in &routes {
            for delta in [0u128, 1, 1 << 64, 1 << 96] {
                let dst = r.prefix.wrapping_add(delta);
                prop_assert_eq!(t.lookup(dst), t.lookup_linear(dst), "dst {:#x}", dst);
            }
        }
    }

    /// The full encap+encrypt+auth pipeline round-trips any payload.
    #[test]
    fn esp_round_trip(
        payload in proptest::collection::vec(any::<u8>(), 8..1200),
        dst in any::<u32>(),
    ) {
        let frame_len = 42 + payload.len();
        let mut f = vec![0u8; frame_len];
        FrameBuilder::default().build_ipv4(&mut f, frame_len, 0x0a000001, dst);
        f[42..].copy_from_slice(&payload);
        let original_ip_payload = f[34..].to_vec();
        let mut pkt = Packet::from_bytes(&f);

        let sa = Arc::new(SaTable::new(5));
        let counters = Arc::new(Counters::default());
        let insp = SystemInspector::new(vec![counters]);
        let nls = NodeLocalStorage::new();
        let mut ctx = ElemCtx {
            now: Time::ZERO,
            compute: ComputeMode::Full,
            nls: &nls,
            worker: 0,
            inspector: &insp,
        };
        let mut anno = Anno::default();
        let mut encap = IPsecESPEncap::new(sa.clone());
        let mut aes = IPsecAES::new(sa.clone());
        let mut auth = IPsecAuthHMAC::new(sa.clone());
        prop_assert_eq!(encap.process(&mut ctx, &mut pkt, &mut anno), PacketResult::Out(0));
        prop_assert_eq!(aes.process(&mut ctx, &mut pkt, &mut anno), PacketResult::Out(0));
        prop_assert_eq!(auth.process(&mut ctx, &mut pkt, &mut anno), PacketResult::Out(0));

        let (proto, recovered) = open_esp(pkt.data(), &sa).expect("open");
        prop_assert_eq!(proto, nba_io::proto::IPPROTO_UDP);
        prop_assert_eq!(recovered, original_ip_payload);
    }
}

fn backend_set(bits: u16) -> Vec<u32> {
    (0..16u32).filter(|b| bits & (1 << b) != 0).collect()
}

proptest! {
    /// Rendezvous slot assignment is minimally disruptive: removing one
    /// backend reassigns exactly the slots that backend owned, and every
    /// untouched slot keeps its owner bit-for-bit.
    #[test]
    fn maglev_removal_remaps_only_the_removed_backends_slots(
        bits in 3u16..u16::MAX,
        victim_pick in 0usize..16,
        seed in any::<u64>(),
        table_size in proptest::sample::select(vec![13u32, 251, 509]),
    ) {
        let backends = backend_set(bits);
        prop_assume!(backends.len() >= 2);
        let victim = backends[victim_pick % backends.len()];
        let survivors: Vec<u32> =
            backends.iter().copied().filter(|&b| b != victim).collect();

        let before = BackendTable::build(seed, table_size, &backends);
        let after = BackendTable::build(seed, table_size, &survivors);
        prop_assert_eq!(before.slots().len(), after.slots().len());
        for (slot, (&b, &a)) in before.slots().iter().zip(after.slots()).enumerate() {
            prop_assert_ne!(a, victim, "slot {} still routed to the removed backend", slot);
            if b != victim {
                prop_assert_eq!(a, b, "slot {} moved although its owner survived", slot);
            }
        }
    }

    /// Adding a backend only steals slots for the newcomer: every slot
    /// either keeps its previous owner or switches to the added backend,
    /// never to a third party.
    #[test]
    fn maglev_addition_only_steals_for_the_newcomer(
        bits in 1u16..u16::MAX,
        newcomer_pick in 0usize..16,
        seed in any::<u64>(),
    ) {
        let mut backends = backend_set(bits);
        let absent: Vec<u32> =
            (0..16u32).filter(|b| !backends.contains(b)).collect();
        prop_assume!(!absent.is_empty());
        let newcomer = absent[newcomer_pick % absent.len()];

        let before = BackendTable::build(seed, 251, &backends);
        backends.push(newcomer);
        let after = BackendTable::build(seed, 251, &backends);
        for (&b, &a) in before.slots().iter().zip(after.slots()) {
            prop_assert!(a == b || a == newcomer,
                "slot moved from {} to {} when only {} was added", b, a, newcomer);
        }
    }

    /// Every pick lands on a live backend, and the slot distribution is
    /// roughly balanced: no backend is starved and none owns more than a
    /// small multiple of its fair share.
    #[test]
    fn maglev_picks_live_backends_and_balances(
        bits in 1u16..u16::MAX,
        seed in any::<u64>(),
        hashes in proptest::collection::vec(any::<u64>(), 1..50),
    ) {
        let backends = backend_set(bits);
        prop_assume!(!backends.is_empty());
        let table = BackendTable::build(seed, 251, &backends);
        for h in hashes {
            prop_assert!(backends.contains(&table.pick(h)));
        }
        let fair = table.slots().len() / backends.len();
        for &b in &backends {
            let owned = table.slots().iter().filter(|&&s| s == b).count();
            prop_assert!(owned >= 1, "backend {} owns no slots", b);
            prop_assert!(owned <= fair * 4 + 8,
                "backend {} owns {} of {} slots", b, owned, table.slots().len());
        }
    }
}
