// Stateful firewall: TCP connections tracked SYN -> ESTABLISHED ->
// FIN/RST in the flow shards; out-of-state segments leave on port 1.
// Embryonic entries expire on the short TTL, so a SYN flood cannot
// displace established connections. Matches `pipelines::conntrack_fw`.
src :: FromInput();
chk :: CheckIPHeader();
fw  :: ConnTrackFirewall("capacity=1048576", "embryonic_ttl=2");
out :: ToOutput();

src -> chk;
chk [0] -> fw;
chk [1] -> Discard;
fw [0] -> out;
fw [1] -> Discard;
