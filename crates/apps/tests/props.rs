//! Property tests of the application substrates: routing tables against
//! oracles, ESP round trips for arbitrary payloads.

use std::sync::Arc;

use proptest::prelude::*;

use nba_apps::ipsec::{open_esp, IPsecAES, IPsecAuthHMAC, IPsecESPEncap, SaTable};
use nba_apps::ipv4::{RouteV4, RoutingTableV4};
use nba_apps::ipv6::{RouteV6, RoutingTableV6};
use nba_core::batch::{Anno, PacketResult};
use nba_core::element::{ComputeMode, ElemCtx, Element};
use nba_core::nls::NodeLocalStorage;
use nba_core::stats::{Counters, SystemInspector};
use nba_io::proto::FrameBuilder;
use nba_io::Packet;
use nba_sim::Time;

fn route_v4() -> impl Strategy<Value = RouteV4> {
    (any::<u32>(), 0u8..=32, 0u16..1000).prop_map(|(p, len, hop)| RouteV4 {
        prefix: if len == 0 {
            0
        } else {
            p >> (32 - u32::from(len)) << (32 - u32::from(len))
        },
        len,
        next_hop: hop,
    })
}

fn route_v6() -> impl Strategy<Value = RouteV6> {
    (any::<u128>(), 0u8..=64, 0u16..1000).prop_map(|(p, len, hop)| RouteV6 {
        prefix: if len == 0 {
            0
        } else {
            p >> (128 - u32::from(len)) << (128 - u32::from(len))
        },
        len,
        next_hop: hop,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// DIR-24-8 equals the linear-scan oracle for arbitrary route sets.
    #[test]
    fn dir24_8_equals_oracle(
        routes in proptest::collection::vec(route_v4(), 1..40),
        probes in proptest::collection::vec(any::<u32>(), 1..50),
    ) {
        let t = RoutingTableV4::build(&routes);
        for dst in probes {
            prop_assert_eq!(t.lookup(dst), t.lookup_linear(dst), "dst {:#x}", dst);
        }
        // Probing near the inserted prefixes stresses boundaries.
        for r in &routes {
            for delta in [0u32, 1, 255, 256] {
                let dst = r.prefix.wrapping_add(delta);
                prop_assert_eq!(t.lookup(dst), t.lookup_linear(dst), "dst {:#x}", dst);
            }
        }
    }

    /// Binary-search-on-lengths equals the linear-scan oracle.
    #[test]
    fn waldvogel_equals_oracle(
        routes in proptest::collection::vec(route_v6(), 1..30),
        probes in proptest::collection::vec(any::<u128>(), 1..30),
    ) {
        let t = RoutingTableV6::build(&routes);
        for dst in probes {
            prop_assert_eq!(t.lookup(dst), t.lookup_linear(dst), "dst {:#x}", dst);
        }
        for r in &routes {
            for delta in [0u128, 1, 1 << 64, 1 << 96] {
                let dst = r.prefix.wrapping_add(delta);
                prop_assert_eq!(t.lookup(dst), t.lookup_linear(dst), "dst {:#x}", dst);
            }
        }
    }

    /// The full encap+encrypt+auth pipeline round-trips any payload.
    #[test]
    fn esp_round_trip(
        payload in proptest::collection::vec(any::<u8>(), 8..1200),
        dst in any::<u32>(),
    ) {
        let frame_len = 42 + payload.len();
        let mut f = vec![0u8; frame_len];
        FrameBuilder::default().build_ipv4(&mut f, frame_len, 0x0a000001, dst);
        f[42..].copy_from_slice(&payload);
        let original_ip_payload = f[34..].to_vec();
        let mut pkt = Packet::from_bytes(&f);

        let sa = Arc::new(SaTable::new(5));
        let counters = Arc::new(Counters::default());
        let insp = SystemInspector::new(vec![counters]);
        let nls = NodeLocalStorage::new();
        let mut ctx = ElemCtx {
            now: Time::ZERO,
            compute: ComputeMode::Full,
            nls: &nls,
            worker: 0,
            inspector: &insp,
        };
        let mut anno = Anno::default();
        let mut encap = IPsecESPEncap::new(sa.clone());
        let mut aes = IPsecAES::new(sa.clone());
        let mut auth = IPsecAuthHMAC::new(sa.clone());
        prop_assert_eq!(encap.process(&mut ctx, &mut pkt, &mut anno), PacketResult::Out(0));
        prop_assert_eq!(aes.process(&mut ctx, &mut pkt, &mut anno), PacketResult::Out(0));
        prop_assert_eq!(auth.process(&mut ctx, &mut pkt, &mut anno), PacketResult::Out(0));

        let (proto, recovered) = open_esp(pkt.data(), &sa).expect("open");
        prop_assert_eq!(proto, nba_io::proto::IPPROTO_UDP);
        prop_assert_eq!(recovered, original_ip_payload);
    }
}
