//! IPv6 header view and in-place mutators.

use super::ParseError;

/// Fixed IPv6 header length.
pub const IPV6_HDR_LEN: usize = 40;

/// A read-only view of an IPv6 packet (fixed header + payload).
#[derive(Debug, Clone, Copy)]
pub struct Ipv6View<'a> {
    bytes: &'a [u8],
}

impl<'a> Ipv6View<'a> {
    /// Parses an IPv6 packet, validating version and payload length.
    pub fn parse(bytes: &'a [u8]) -> Result<Ipv6View<'a>, ParseError> {
        if bytes.len() < IPV6_HDR_LEN {
            return Err(ParseError::Truncated);
        }
        if bytes[0] >> 4 != 6 {
            return Err(ParseError::Malformed);
        }
        let payload = usize::from(u16::from_be_bytes([bytes[4], bytes[5]]));
        if IPV6_HDR_LEN + payload > bytes.len() {
            return Err(ParseError::Malformed);
        }
        Ok(Ipv6View { bytes })
    }

    /// Payload length field.
    pub fn payload_len(&self) -> u16 {
        u16::from_be_bytes([self.bytes[4], self.bytes[5]])
    }

    /// Next-header field.
    pub fn next_header(&self) -> u8 {
        self.bytes[6]
    }

    /// Hop-limit field.
    pub fn hop_limit(&self) -> u8 {
        self.bytes[7]
    }

    /// Source address as a big-endian u128.
    pub fn src(&self) -> u128 {
        u128::from_be_bytes(self.bytes[8..24].try_into().unwrap())
    }

    /// Destination address as a big-endian u128.
    pub fn dst(&self) -> u128 {
        u128::from_be_bytes(self.bytes[24..40].try_into().unwrap())
    }

    /// Payload bytes bounded by the payload-length field.
    pub fn payload(&self) -> &'a [u8] {
        &self.bytes[IPV6_HDR_LEN..IPV6_HDR_LEN + usize::from(self.payload_len())]
    }
}

/// Decrements the hop limit in place (IPv6 has no header checksum).
///
/// Returns the new hop limit, or `None` if it was already zero.
///
/// # Panics
///
/// Panics if `ip` is shorter than the fixed header.
pub fn dec_hop_limit(ip: &mut [u8]) -> Option<u8> {
    assert!(ip.len() >= IPV6_HDR_LEN);
    if ip[7] == 0 {
        return None;
    }
    ip[7] -= 1;
    Some(ip[7])
}

/// Builds the 40-byte pseudo-header used by upper-layer checksums (RFC 8200
/// §8.1) from a raw IPv6 header.
///
/// # Panics
///
/// Panics if `ip` is shorter than the fixed header.
pub fn pseudo_header(ip: &[u8], upper_len: u32, next_header: u8) -> [u8; 40] {
    assert!(ip.len() >= IPV6_HDR_LEN);
    let mut p = [0u8; 40];
    p[0..16].copy_from_slice(&ip[8..24]); // Source address.
    p[16..32].copy_from_slice(&ip[24..40]); // Destination address.
    p[32..36].copy_from_slice(&upper_len.to_be_bytes());
    p[39] = next_header;
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let mut ip = vec![0u8; 60];
        ip[0] = 0x60;
        ip[4..6].copy_from_slice(&20u16.to_be_bytes());
        ip[6] = 17;
        ip[7] = 64;
        ip[8..24].copy_from_slice(&0x2001_0db8_0000_0000_0000_0000_0000_0001u128.to_be_bytes());
        ip[24..40].copy_from_slice(&0x2001_0db8_0000_0000_0000_0000_0000_0002u128.to_be_bytes());
        ip
    }

    #[test]
    fn fields_parse() {
        let ip = sample();
        let v = Ipv6View::parse(&ip).unwrap();
        assert_eq!(v.payload_len(), 20);
        assert_eq!(v.next_header(), 17);
        assert_eq!(v.hop_limit(), 64);
        assert_eq!(v.src() >> 96, 0x2001_0db8);
        assert_eq!(v.payload().len(), 20);
    }

    #[test]
    fn bad_version_rejected() {
        let mut ip = sample();
        ip[0] = 0x40;
        assert_eq!(Ipv6View::parse(&ip).unwrap_err(), ParseError::Malformed);
    }

    #[test]
    fn overlong_payload_rejected() {
        let mut ip = sample();
        ip[4..6].copy_from_slice(&100u16.to_be_bytes());
        assert_eq!(Ipv6View::parse(&ip).unwrap_err(), ParseError::Malformed);
    }

    #[test]
    fn hop_limit_decrements_to_none() {
        let mut ip = sample();
        assert_eq!(dec_hop_limit(&mut ip), Some(63));
        ip[7] = 0;
        assert_eq!(dec_hop_limit(&mut ip), None);
    }

    #[test]
    fn pseudo_header_layout() {
        let ip = sample();
        let p = pseudo_header(&ip, 20, 17);
        assert_eq!(&p[0..16], &ip[8..24]);
        assert_eq!(&p[16..32], &ip[24..40]);
        assert_eq!(u32::from_be_bytes(p[32..36].try_into().unwrap()), 20);
        assert_eq!(p[39], 17);
    }
}
