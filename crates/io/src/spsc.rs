//! Bounded single-producer/single-consumer rings — the DPDK `rte_ring`
//! stand-in that connects each RX queue to exactly one worker thread.
//!
//! NBA's data plane never shares a queue between threads: the NIC steers a
//! packet to one RX queue (RSS) and exactly one worker drains that queue, so
//! every ring has one producer and one consumer by construction. That
//! protocol is encoded in the types here: [`channel`] hands back a
//! [`Producer`]/[`Consumer`] pair and neither half is `Clone`, so the
//! single-producer/single-consumer discipline is enforced at compile time.
//!
//! The implementation keeps the classic lock-free shape — two monotonically
//! increasing cursors (`head` for the consumer, `tail` for the producer),
//! each written by exactly one side and read by the other with
//! acquire/release ordering — plus per-slot `Mutex<Option<T>>` cells for the
//! payload hand-off. The workspace forbids `unsafe`, so the slot cells use a
//! mutex instead of `UnsafeCell`; under the SPSC protocol each slot lock is
//! provably uncontended (the producer only touches a slot the cursors show
//! as empty, the consumer only one they show as full), so `lock()` never
//! blocks and the cursors remain the only cross-thread synchronization that
//! matters.
//!
//! Every ring also keeps always-on occupancy statistics (high-water mark,
//! enqueue failures) in its control block; [`RingGauges`] is a cheap
//! `Clone`-able observer handle over that block, so a reporter thread can
//! watch a ring whose two halves have long since moved into other threads.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// The non-generic control block of one ring: the two cursors, the close
/// flag, and the occupancy statistics. Shared (via [`RingGauges`]) with
/// observers that never touch the payload slots.
#[derive(Debug)]
struct Control {
    /// Consumer cursor: next slot index to pop. Monotonic, wraps via `% cap`.
    head: AtomicUsize,
    /// Producer cursor: next slot index to push. Monotonic, wraps via `% cap`.
    tail: AtomicUsize,
    /// Set when the producer is dropped; the consumer drains then reports
    /// disconnection.
    closed: AtomicBool,
    /// Set when the consumer is dropped: nobody will ever drain this ring
    /// again. Producers probe this to detect a crashed worker instead of
    /// silently accumulating `enqueue_failed` against a dead ring.
    consumer_gone: AtomicBool,
    /// Highest occupancy ever observed at push time (relaxed; a gauge, not
    /// a synchronization point).
    high_water: AtomicUsize,
    /// Pushes refused because the ring was full.
    enqueue_failed: AtomicU64,
    /// Slot count, duplicated here so observers need no generic access.
    capacity: usize,
}

struct Inner<T> {
    slots: Box<[Mutex<Option<T>>]>,
    ctl: Arc<Control>,
}

/// The sending half of a bounded SPSC ring. Not `Clone`; dropping it closes
/// the ring.
pub struct Producer<T> {
    inner: Arc<Inner<T>>,
}

/// The receiving half of a bounded SPSC ring. Not `Clone`.
pub struct Consumer<T> {
    inner: Arc<Inner<T>>,
}

/// A read-only observer handle over one ring's occupancy statistics.
/// `Clone`-able and payload-type-erased: take one before moving the
/// producer/consumer halves into their threads and poll it from anywhere
/// (the live runtime's reporter and stats endpoint do exactly that).
#[derive(Clone, Debug)]
pub struct RingGauges {
    ctl: Arc<Control>,
}

impl RingGauges {
    /// Items currently queued (racy snapshot; relaxed loads).
    pub fn occupancy(&self) -> usize {
        let tail = self.ctl.tail.load(Ordering::Relaxed);
        let head = self.ctl.head.load(Ordering::Relaxed);
        tail.saturating_sub(head)
    }

    /// Highest occupancy ever observed at push time.
    pub fn high_water(&self) -> usize {
        self.ctl.high_water.load(Ordering::Relaxed)
    }

    /// Cumulative pushes refused because the ring was full.
    pub fn enqueue_failed(&self) -> u64 {
        self.ctl.enqueue_failed.load(Ordering::Relaxed)
    }

    /// True once the consumer has been dropped (post-mortem observers use
    /// this to attribute whatever occupancy remains as lost-in-ring).
    pub fn consumer_gone(&self) -> bool {
        self.ctl.consumer_gone.load(Ordering::Acquire)
    }

    /// Total slot count.
    pub fn capacity(&self) -> usize {
        self.ctl.capacity
    }
}

/// Creates a bounded SPSC ring holding at most `capacity` items.
///
/// # Panics
/// Panics if `capacity` is zero.
pub fn channel<T>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    assert!(capacity > 0, "spsc ring capacity must be non-zero");
    let slots = (0..capacity).map(|_| Mutex::new(None)).collect();
    let inner = Arc::new(Inner {
        slots,
        ctl: Arc::new(Control {
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
            closed: AtomicBool::new(false),
            consumer_gone: AtomicBool::new(false),
            high_water: AtomicUsize::new(0),
            enqueue_failed: AtomicU64::new(0),
            capacity,
        }),
    });
    (
        Producer {
            inner: Arc::clone(&inner),
        },
        Consumer { inner },
    )
}

impl<T> Producer<T> {
    /// Enqueues `v`, or returns it back when the ring is full (counting the
    /// refusal in the ring's gauges).
    pub fn push(&self, v: T) -> Result<(), T> {
        let inner = &self.inner;
        let ctl = &inner.ctl;
        let tail = ctl.tail.load(Ordering::Relaxed);
        let head = ctl.head.load(Ordering::Acquire);
        if tail - head == inner.slots.len() {
            ctl.enqueue_failed.fetch_add(1, Ordering::Relaxed);
            return Err(v);
        }
        // Uncontended by protocol: the consumer will not touch this slot
        // until it observes the tail advance below.
        *inner.slots[tail % inner.slots.len()]
            .lock()
            .expect("spsc slot poisoned") = Some(v);
        ctl.tail.store(tail + 1, Ordering::Release);
        // Occupancy after this push; head may have advanced since the read
        // above, so this is a conservative (never-under) high-water mark.
        ctl.high_water.fetch_max(tail + 1 - head, Ordering::Relaxed);
        Ok(())
    }

    /// Number of items currently queued.
    pub fn len(&self) -> usize {
        let tail = self.inner.ctl.tail.load(Ordering::Relaxed);
        let head = self.inner.ctl.head.load(Ordering::Acquire);
        tail - head
    }

    /// True when no items are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total slot count.
    pub fn capacity(&self) -> usize {
        self.inner.slots.len()
    }

    /// True once the consumer has been dropped: every item already queued
    /// (and any pushed from now on) will never be drained. The producer's
    /// signal that the thread on the other end died.
    pub fn is_receiver_gone(&self) -> bool {
        self.inner.ctl.consumer_gone.load(Ordering::Acquire)
    }

    /// A `Clone`-able observer over this ring's occupancy statistics.
    pub fn gauges(&self) -> RingGauges {
        RingGauges {
            ctl: Arc::clone(&self.inner.ctl),
        }
    }
}

impl<T> Drop for Producer<T> {
    fn drop(&mut self) {
        self.inner.ctl.closed.store(true, Ordering::Release);
    }
}

impl<T> Consumer<T> {
    /// Dequeues the oldest item, or `None` when the ring is currently empty.
    pub fn pop(&self) -> Option<T> {
        let inner = &self.inner;
        let head = inner.ctl.head.load(Ordering::Relaxed);
        let tail = inner.ctl.tail.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        let v = inner.slots[head % inner.slots.len()]
            .lock()
            .expect("spsc slot poisoned")
            .take();
        inner.ctl.head.store(head + 1, Ordering::Release);
        v
    }

    /// Number of items currently queued.
    pub fn len(&self) -> usize {
        let head = self.inner.ctl.head.load(Ordering::Relaxed);
        let tail = self.inner.ctl.tail.load(Ordering::Acquire);
        tail - head
    }

    /// True when no items are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when the producer is gone AND the ring is drained — the
    /// consumer's termination condition.
    pub fn is_disconnected(&self) -> bool {
        // Order matters: check closed before emptiness so a push racing the
        // producer's drop is never missed (close happens-after the last
        // push's release store).
        self.inner.ctl.closed.load(Ordering::Acquire) && self.is_empty()
    }

    /// A `Clone`-able observer over this ring's occupancy statistics.
    pub fn gauges(&self) -> RingGauges {
        RingGauges {
            ctl: Arc::clone(&self.inner.ctl),
        }
    }
}

impl<T> Drop for Consumer<T> {
    fn drop(&mut self) {
        self.inner.ctl.consumer_gone.store(true, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_and_capacity_bound() {
        let (tx, rx) = channel(4);
        for i in 0..4 {
            tx.push(i).unwrap();
        }
        assert_eq!(tx.push(99), Err(99), "5th push must report full");
        assert_eq!(tx.len(), 4);
        for i in 0..4 {
            assert_eq!(rx.pop(), Some(i));
        }
        assert_eq!(rx.pop(), None);
    }

    #[test]
    fn wraps_around_many_times() {
        let (tx, rx) = channel(3);
        for i in 0..1000u32 {
            tx.push(i).unwrap();
            assert_eq!(rx.pop(), Some(i));
        }
        assert!(rx.is_empty());
    }

    #[test]
    fn disconnect_after_drain() {
        let (tx, rx) = channel::<u32>(8);
        tx.push(1).unwrap();
        drop(tx);
        assert!(!rx.is_disconnected(), "still holds an item");
        assert_eq!(rx.pop(), Some(1));
        assert!(rx.is_disconnected());
        assert_eq!(rx.pop(), None);
    }

    #[test]
    fn gauges_track_occupancy_high_water_and_failures() {
        let (tx, rx) = channel::<u32>(4);
        let g = tx.gauges();
        assert_eq!(g.capacity(), 4);
        assert_eq!(
            (g.occupancy(), g.high_water(), g.enqueue_failed()),
            (0, 0, 0)
        );

        tx.push(1).unwrap();
        tx.push(2).unwrap();
        assert_eq!(g.occupancy(), 2);
        assert_eq!(g.high_water(), 2);

        assert_eq!(rx.pop(), Some(1));
        assert_eq!(g.occupancy(), 1, "occupancy follows the consumer");
        assert_eq!(g.high_water(), 2, "high water does not recede");

        for v in 3..6 {
            tx.push(v).unwrap();
        }
        assert_eq!(g.occupancy(), 4);
        assert_eq!(g.high_water(), 4);
        assert_eq!(tx.push(99), Err(99));
        assert_eq!(tx.push(98), Err(98));
        assert_eq!(g.enqueue_failed(), 2);
        // Failed pushes never move the high-water mark past capacity.
        assert_eq!(g.high_water(), 4);

        // Both halves hand out the same underlying gauges.
        let g2 = rx.gauges();
        assert_eq!(g2.enqueue_failed(), 2);
        assert_eq!(g2.occupancy(), g.occupancy());
    }

    #[test]
    fn producer_observes_consumer_death() {
        let (tx, rx) = channel::<u32>(4);
        let g = tx.gauges();
        tx.push(1).unwrap();
        assert!(!tx.is_receiver_gone());
        assert!(!g.consumer_gone());
        drop(rx);
        assert!(tx.is_receiver_gone(), "drop of the consumer must be seen");
        assert!(g.consumer_gone());
        // Pushes into a dead ring still succeed while there is space — the
        // caller decides what to do with the signal.
        tx.push(2).unwrap();
        assert_eq!(g.occupancy(), 2, "undrained items remain attributable");
    }

    #[test]
    fn gauges_outlive_both_halves() {
        let (tx, rx) = channel::<u32>(2);
        let g = tx.gauges();
        tx.push(7).unwrap();
        drop(tx);
        drop(rx);
        // The observer still reads the final state of the control block.
        assert_eq!(g.occupancy(), 1);
        assert_eq!(g.high_water(), 1);
    }

    #[test]
    fn cross_thread_stress_preserves_sequence() {
        let (tx, rx) = channel::<u64>(64);
        const N: u64 = 200_000;
        let producer = std::thread::spawn(move || {
            let mut next = 0u64;
            while next < N {
                match tx.push(next) {
                    Ok(()) => next += 1,
                    Err(_) => std::thread::yield_now(),
                }
            }
        });
        let mut expect = 0u64;
        let gauges = rx.gauges();
        while expect < N {
            match rx.pop() {
                Some(v) => {
                    assert_eq!(v, expect, "ring reordered or duplicated");
                    expect += 1;
                }
                None => std::thread::yield_now(),
            }
        }
        producer.join().unwrap();
        assert!(rx.is_disconnected());
        assert!(gauges.high_water() <= gauges.capacity());
    }
}
