//! IPv4 header view and in-place mutators.

use super::ParseError;
use crate::checksum;

/// Minimum IPv4 header length (IHL = 5).
pub const IPV4_MIN_HDR_LEN: usize = 20;

/// A read-only view of an IPv4 packet (header + payload).
#[derive(Debug, Clone, Copy)]
pub struct Ipv4View<'a> {
    bytes: &'a [u8],
    hdr_len: usize,
}

impl<'a> Ipv4View<'a> {
    /// Parses an IPv4 packet, validating version, IHL, and total length.
    pub fn parse(bytes: &'a [u8]) -> Result<Ipv4View<'a>, ParseError> {
        if bytes.len() < IPV4_MIN_HDR_LEN {
            return Err(ParseError::Truncated);
        }
        if bytes[0] >> 4 != 4 {
            return Err(ParseError::Malformed);
        }
        let hdr_len = usize::from(bytes[0] & 0x0f) * 4;
        if hdr_len < IPV4_MIN_HDR_LEN {
            return Err(ParseError::Malformed);
        }
        let total = usize::from(u16::from_be_bytes([bytes[2], bytes[3]]));
        if total < hdr_len || total > bytes.len() {
            return Err(ParseError::Malformed);
        }
        Ok(Ipv4View { bytes, hdr_len })
    }

    /// Header length in bytes (IHL * 4).
    pub fn hdr_len(&self) -> usize {
        self.hdr_len
    }

    /// Total length field (header + payload).
    pub fn total_len(&self) -> u16 {
        u16::from_be_bytes([self.bytes[2], self.bytes[3]])
    }

    /// Time-to-live field.
    pub fn ttl(&self) -> u8 {
        self.bytes[8]
    }

    /// Protocol field.
    pub fn protocol(&self) -> u8 {
        self.bytes[9]
    }

    /// Stored header checksum.
    pub fn checksum(&self) -> u16 {
        u16::from_be_bytes([self.bytes[10], self.bytes[11]])
    }

    /// Source address as a big-endian u32.
    pub fn src(&self) -> u32 {
        u32::from_be_bytes(self.bytes[12..16].try_into().unwrap())
    }

    /// Destination address as a big-endian u32.
    pub fn dst(&self) -> u32 {
        u32::from_be_bytes(self.bytes[16..20].try_into().unwrap())
    }

    /// `true` if the stored header checksum is consistent.
    pub fn checksum_ok(&self) -> bool {
        checksum::verify(&self.bytes[..self.hdr_len])
    }

    /// Payload bytes (after the header, bounded by total length).
    pub fn payload(&self) -> &'a [u8] {
        &self.bytes[self.hdr_len..usize::from(self.total_len())]
    }
}

/// Decrements TTL in place with an RFC 1624 incremental checksum update.
///
/// Returns the new TTL, or `None` if the TTL was already zero (caller should
/// drop the packet).
///
/// # Panics
///
/// Panics if `ip` is shorter than the minimum header.
pub fn dec_ttl(ip: &mut [u8]) -> Option<u8> {
    assert!(ip.len() >= IPV4_MIN_HDR_LEN);
    let ttl = ip[8];
    if ttl == 0 {
        return None;
    }
    let old_word = u16::from_be_bytes([ip[8], ip[9]]);
    ip[8] = ttl - 1;
    let new_word = u16::from_be_bytes([ip[8], ip[9]]);
    let old_check = u16::from_be_bytes([ip[10], ip[11]]);
    let new_check = checksum::incremental_update(old_check, old_word, new_word);
    ip[10..12].copy_from_slice(&new_check.to_be_bytes());
    Some(ttl - 1)
}

/// Recomputes and stores the header checksum over the first `hdr_len` bytes.
///
/// # Panics
///
/// Panics if `ip` is shorter than `hdr_len` or `hdr_len < 20`.
pub fn write_checksum(ip: &mut [u8], hdr_len: usize) {
    assert!(hdr_len >= IPV4_MIN_HDR_LEN && ip.len() >= hdr_len);
    ip[10] = 0;
    ip[11] = 0;
    let c = checksum::internet_checksum(&ip[..hdr_len]);
    ip[10..12].copy_from_slice(&c.to_be_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let mut ip = vec![0u8; 60];
        ip[0] = 0x45;
        ip[2..4].copy_from_slice(&60u16.to_be_bytes());
        ip[8] = 64;
        ip[9] = 17;
        ip[12..16].copy_from_slice(&[10, 0, 0, 1]);
        ip[16..20].copy_from_slice(&[192, 168, 0, 1]);
        write_checksum(&mut ip, 20);
        ip
    }

    #[test]
    fn fields_parse() {
        let ip = sample();
        let v = Ipv4View::parse(&ip).unwrap();
        assert_eq!(v.ttl(), 64);
        assert_eq!(v.protocol(), 17);
        assert_eq!(v.src(), u32::from_be_bytes([10, 0, 0, 1]));
        assert_eq!(v.dst(), u32::from_be_bytes([192, 168, 0, 1]));
        assert_eq!(v.payload().len(), 40);
        assert!(v.checksum_ok());
    }

    #[test]
    fn bad_version_rejected() {
        let mut ip = sample();
        ip[0] = 0x65;
        assert_eq!(Ipv4View::parse(&ip).unwrap_err(), ParseError::Malformed);
    }

    #[test]
    fn bad_ihl_rejected() {
        let mut ip = sample();
        ip[0] = 0x44; // IHL 4 => 16 bytes < 20.
        assert_eq!(Ipv4View::parse(&ip).unwrap_err(), ParseError::Malformed);
    }

    #[test]
    fn total_len_beyond_buffer_rejected() {
        let mut ip = sample();
        ip[2..4].copy_from_slice(&100u16.to_be_bytes());
        assert_eq!(Ipv4View::parse(&ip).unwrap_err(), ParseError::Malformed);
    }

    #[test]
    fn dec_ttl_keeps_checksum_valid() {
        let mut ip = sample();
        assert_eq!(dec_ttl(&mut ip), Some(63));
        let v = Ipv4View::parse(&ip).unwrap();
        assert_eq!(v.ttl(), 63);
        assert!(v.checksum_ok());
        // Run it down to zero and verify each step.
        for expect in (0..63).rev() {
            assert_eq!(dec_ttl(&mut ip), Some(expect));
            assert!(Ipv4View::parse(&ip).unwrap().checksum_ok());
        }
        assert_eq!(dec_ttl(&mut ip), None);
    }
}
