//! Sharded per-worker flow state (ISSUE 10, ROADMAP item 5).
//!
//! NBA's RSS steering gives every worker exclusive ownership of a set of
//! flow buckets (`hash & 0x7f`, [`nba_io::rss::RSS_BUCKETS`] of them per
//! socket). A [`FlowTable`] exploits that exclusivity: one table *shard*
//! per worker, touched only from that worker's thread, so the hot path
//! takes no locks. Internally a shard is further split into one
//! open-addressing sub-table per RSS *bucket*, and — crucially — each
//! bucket keeps its **own** logical clock, advanced by the packets that
//! bucket receives (packet-count epochs, the same device-independent
//! trick as [`crate::audit::DecisionClock`]).
//!
//! Why per-bucket rather than per-shard clocks: the set of buckets a
//! worker owns depends on the worker count and on re-steering, but the
//! packet sequence *within* one bucket is a pure function of the traffic
//! — identical in the DES, in live(1), and in live(4). Keying every
//! decision that can diverge (idle expiry, NAT port allocation order,
//! capacity eviction order, the op journal) to the bucket clock makes
//! flow state differentially testable across runtimes and worker counts,
//! exactly like TX conformance.
//!
//! Shards publish their counters into a run-wide [`FlowRegistry`] living
//! in node-local storage, which also carries the explicit [`FlowOp`]
//! journal (insert/hit/evict/migrate) — integer-only records that
//! round-trip as JSONL and replay offline, mirroring
//! [`crate::supervise::SupervisorLog`].
//!
//! # Worker-death policy: invalidate
//!
//! When the supervisor declares a worker dead it calls
//! [`FlowRegistry::invalidate_shard`]: the dead shard's flows are
//! *invalidated*, not migrated — the replacement worker starts from an
//! empty shard, and survivors that receive re-steered packets rebuild
//! state on demand (those foreign-bucket inserts are journaled as
//! [`FlowOpKind::Migrate`]). Migration of live table memory was rejected
//! because the dead thread owns its shard exclusively — prying it loose
//! would put a lock or an epoch scheme on every hot-path access, which is
//! the cost the sharding exists to avoid. Every invalidated flow is
//! accounted (`evict_death`, `lost_flows`) so kill drills can attribute
//! the entire blast radius in the ledger.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::json::{self, Value};
use crate::nls::NodeLocalStorage;

/// Flow buckets per shard — one sub-table per RSS indirection bucket, so
/// bucket ownership moves (re-steering) never split a sub-table.
pub const FLOW_BUCKETS: usize = nba_io::rss::RSS_BUCKETS;

/// Maps a packet's flow id (its RSS hash, seeded into the `FLOW_ID`
/// annotation by the framework) to its bucket. Must agree with
/// [`nba_io::rss::RssTable::bucket_of`].
pub fn bucket_of(flow_id: u64) -> u16 {
    (flow_id as usize & (FLOW_BUCKETS - 1)) as u16
}

/// A connection key: the IPv4 5-tuple, with "don't care" fields zeroed
/// (NAT's endpoint-independent mapping zeroes the destination half).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct FlowKey {
    /// IP protocol number.
    pub proto: u8,
    /// Source address.
    pub src_ip: u32,
    /// Destination address.
    pub dst_ip: u32,
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
}

impl FlowKey {
    /// A stable 64-bit digest of the key (FNV-1a over the packed tuple),
    /// used for probing and as the journal's key identity.
    pub fn digest(&self) -> u64 {
        let mut bytes = [0u8; 13];
        bytes[0] = self.proto;
        bytes[1..5].copy_from_slice(&self.src_ip.to_be_bytes());
        bytes[5..9].copy_from_slice(&self.dst_ip.to_be_bytes());
        bytes[9..11].copy_from_slice(&self.src_port.to_be_bytes());
        bytes[11..13].copy_from_slice(&self.dst_port.to_be_bytes());
        crate::capture::fnv1a(&bytes)
    }
}

/// Why an entry left the table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EvictReason {
    /// Idle longer than the TTL (in bucket epochs).
    Idle,
    /// An embryonic (e.g. half-open TCP) entry idled past the shorter
    /// embryonic TTL.
    Embryonic,
    /// The owner closed it explicitly (FIN/RST).
    Closed,
    /// The owning worker died; the supervisor invalidated the shard.
    Death,
}

impl EvictReason {
    /// Stable label, used in journal records and metric breakdowns.
    pub fn as_str(self) -> &'static str {
        match self {
            EvictReason::Idle => "idle",
            EvictReason::Embryonic => "embryonic",
            EvictReason::Closed => "closed",
            EvictReason::Death => "death",
        }
    }

    fn parse(s: &str) -> Result<EvictReason, String> {
        Ok(match s {
            "idle" => EvictReason::Idle,
            "embryonic" => EvictReason::Embryonic,
            "closed" => EvictReason::Closed,
            "death" => EvictReason::Death,
            other => return Err(format!("unknown evict reason {other:?}")),
        })
    }
}

/// Sizing and expiry knobs of one [`FlowTable`] shard.
#[derive(Debug, Clone, Copy)]
pub struct FlowTableConfig {
    /// Total slots across the shard (rounded up to a power of two per
    /// bucket). Zero is legal and means "table always full".
    pub capacity: u64,
    /// Idle expiry, in bucket epochs. An entry whose last hit is `>= ttl`
    /// epochs behind the bucket clock is expired. `u64::MAX` never
    /// expires.
    pub ttl_epochs: u64,
    /// Idle expiry for entries flagged embryonic; 0 means "same as
    /// `ttl_epochs`".
    pub embryonic_ttl_epochs: u64,
    /// Packets per bucket epoch: the logical-clock divisor. 0 freezes the
    /// clock (nothing ever expires).
    pub epoch_pkts: u64,
}

impl Default for FlowTableConfig {
    fn default() -> Self {
        FlowTableConfig {
            capacity: 1 << 16,
            ttl_epochs: 8,
            embryonic_ttl_epochs: 0,
            epoch_pkts: 1024,
        }
    }
}

/// An entry the table expired or closed, handed back to the caller so
/// owners can release attached resources (NAT ports).
#[derive(Debug, Clone, Copy)]
pub struct Evicted {
    /// The evicted key.
    pub key: FlowKey,
    /// Its value at eviction.
    pub value: u64,
    /// Why.
    pub reason: EvictReason,
}

/// Insert failure: the bucket sub-table has no free or expirable slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableFull;

const SLOT_EMPTY: u8 = 0;
const SLOT_LIVE: u8 = 1;

#[derive(Debug, Clone, Copy)]
struct Slot {
    state: u8,
    embryonic: bool,
    key: FlowKey,
    digest: u64,
    value: u64,
    last_hit: u64,
}

const EMPTY_SLOT: Slot = Slot {
    state: SLOT_EMPTY,
    embryonic: false,
    key: FlowKey {
        proto: 0,
        src_ip: 0,
        dst_ip: 0,
        src_port: 0,
        dst_port: 0,
    },
    digest: 0,
    value: 0,
    last_hit: 0,
};

/// One bucket's open-addressing sub-table plus its logical clock. The
/// slot array is allocated lazily on the first insert, so building a
/// table sized for millions of flows (or an adversarially fuzzed size)
/// costs nothing until traffic actually lands in the bucket.
#[derive(Debug, Default)]
struct Bucket {
    slots: Box<[Slot]>,
    mask: usize,
    live: u32,
    /// Packets ticked into this bucket (drives the epoch).
    pkts: u64,
    /// `pkts / epoch_pkts` — the bucket's logical clock.
    epoch: u64,
    /// Per-bucket op sequence number for the journal: unlike wall time it
    /// is identical across runtimes and worker counts.
    bseq: u64,
}

/// One worker's lock-free flow shard: [`FLOW_BUCKETS`] open-addressing
/// sub-tables, each with its own packet-count epoch clock. All methods
/// take `&mut self` — the owning worker thread is the only toucher.
pub struct FlowTable {
    cfg: FlowTableConfig,
    worker: u32,
    /// Slots per bucket (power of two; 0 for a zero-capacity table).
    per_bucket: usize,
    buckets: Vec<Bucket>,
    shard: Arc<ShardFlowState>,
}

impl FlowTable {
    /// Builds the shard for `worker`, registering its counters (and
    /// journal sink) with the run's registry. Rebuilding for the same
    /// worker (a supervisor respawn) reattaches to the same counters.
    pub fn new(worker: usize, cfg: FlowTableConfig, registry: &FlowRegistry) -> FlowTable {
        let per_bucket = per_bucket_slots(cfg.capacity);
        let shard = registry.shard(worker);
        FlowTable {
            cfg,
            worker: worker as u32,
            per_bucket,
            buckets: (0..FLOW_BUCKETS).map(|_| Bucket::default()).collect(),
            shard,
        }
    }

    /// The table's capacity in slots (after per-bucket rounding).
    pub fn capacity(&self) -> u64 {
        self.per_bucket as u64 * FLOW_BUCKETS as u64
    }

    /// Live entries across all buckets.
    pub fn live(&self) -> u64 {
        self.buckets.iter().map(|b| u64::from(b.live)).sum()
    }

    /// The given bucket's logical clock.
    pub fn epoch(&self, bucket: u16) -> u64 {
        self.buckets[usize::from(bucket)].epoch
    }

    /// Advances the bucket's logical clock by one packet. On an epoch
    /// boundary the bucket is swept: every idle-expired entry is evicted
    /// into `evicted`. Call once per packet, before lookups.
    pub fn tick(&mut self, bucket: u16, evicted: &mut Vec<Evicted>) {
        if self.cfg.epoch_pkts == 0 {
            return;
        }
        let b = usize::from(bucket);
        self.buckets[b].pkts += 1;
        if self.buckets[b].pkts.is_multiple_of(self.cfg.epoch_pkts) {
            self.buckets[b].epoch += 1;
            self.sweep(bucket, evicted);
        }
    }

    fn ttl_of(&self, embryonic: bool) -> u64 {
        if embryonic && self.cfg.embryonic_ttl_epochs != 0 {
            self.cfg.embryonic_ttl_epochs
        } else {
            self.cfg.ttl_epochs
        }
    }

    fn expired(&self, slot: &Slot, epoch: u64) -> bool {
        slot.state == SLOT_LIVE
            && epoch.saturating_sub(slot.last_hit) >= self.ttl_of(slot.embryonic)
    }

    /// Sweeps one bucket, evicting every idle-expired entry. Expiry is a
    /// pure function of the bucket clock: the same packet sequence yields
    /// the same evictions on every runtime. Probe chains are kept intact
    /// by backward-shift compaction after each removal.
    fn sweep(&mut self, bucket: u16, evicted: &mut Vec<Evicted>) {
        let epoch = self.buckets[usize::from(bucket)].epoch;
        // Slot scan in index order: deterministic given identical insert
        // order, which per-bucket packet sequences guarantee.
        let mut i = 0usize;
        while i < self.buckets[usize::from(bucket)].slots.len() {
            let slot = self.buckets[usize::from(bucket)].slots[i];
            if self.expired(&slot, epoch) {
                let reason = if slot.embryonic && self.cfg.embryonic_ttl_epochs != 0 {
                    EvictReason::Embryonic
                } else {
                    EvictReason::Idle
                };
                self.remove_at(bucket, i, reason, evicted);
                // Backward shift may have moved a later entry into `i`;
                // re-examine the same index.
                continue;
            }
            i += 1;
        }
    }

    /// Looks up `key`, refreshing its last-hit epoch on success. An entry
    /// found expired is reaped (evicted into `evicted`) and reported as a
    /// miss, so lazy expiry and sweep expiry agree.
    pub fn lookup(
        &mut self,
        bucket: u16,
        key: &FlowKey,
        evicted: &mut Vec<Evicted>,
    ) -> Option<u64> {
        let digest = key.digest();
        let epoch = self.buckets[usize::from(bucket)].epoch;
        match self.probe(bucket, key, digest) {
            Some(i) => {
                let b = &mut self.buckets[usize::from(bucket)];
                if epoch.saturating_sub(b.slots[i].last_hit)
                    >= ttl_of_cfg(&self.cfg, b.slots[i].embryonic)
                {
                    let reason = if b.slots[i].embryonic && self.cfg.embryonic_ttl_epochs != 0 {
                        EvictReason::Embryonic
                    } else {
                        EvictReason::Idle
                    };
                    self.remove_at(bucket, i, reason, evicted);
                    self.shard.stats.misses.fetch_add(1, Ordering::Relaxed);
                    return None;
                }
                b.slots[i].last_hit = epoch;
                let value = b.slots[i].value;
                self.shard.stats.hits.fetch_add(1, Ordering::Relaxed);
                self.journal(bucket, FlowOpKind::Hit, digest, value);
                Some(value)
            }
            None => {
                self.shard.stats.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts a new entry. `foreign` marks a re-steered flow arriving at
    /// a shard that is not the bucket's home (journaled as `Migrate` —
    /// the observable half of the invalidate-on-death policy).
    pub fn insert(
        &mut self,
        bucket: u16,
        key: FlowKey,
        value: u64,
        embryonic: bool,
        foreign: bool,
        evicted: &mut Vec<Evicted>,
    ) -> Result<(), TableFull> {
        let digest = key.digest();
        let b = usize::from(bucket);
        if self.buckets[b].slots.is_empty() {
            if self.per_bucket == 0 {
                self.shard
                    .stats
                    .table_full_drops
                    .fetch_add(1, Ordering::Relaxed);
                return Err(TableFull);
            }
            // Lazy allocation: the sub-table materializes on first use.
            self.buckets[b].slots = vec![EMPTY_SLOT; self.per_bucket].into_boxed_slice();
            self.buckets[b].mask = self.per_bucket - 1;
        }
        let epoch = self.buckets[b].epoch;
        // First pass: reap an expired entry on the probe path (keeps the
        // chain correct and frees a slot), remember the first free slot.
        let len = self.buckets[b].slots.len();
        let mut idx = (digest as usize) & self.buckets[b].mask;
        let mut free: Option<usize> = None;
        for _ in 0..len {
            let slot = self.buckets[b].slots[idx];
            match slot.state {
                SLOT_EMPTY => {
                    if free.is_none() {
                        free = Some(idx);
                    }
                    break;
                }
                _ => {
                    if self.expired(&slot, epoch) {
                        let reason = if slot.embryonic && self.cfg.embryonic_ttl_epochs != 0 {
                            EvictReason::Embryonic
                        } else {
                            EvictReason::Idle
                        };
                        self.remove_at(bucket, idx, reason, evicted);
                        // Compaction may have pulled a live entry into
                        // `idx`; re-probe from scratch for simplicity.
                        return self.insert(bucket, key, value, embryonic, foreign, evicted);
                    }
                }
            }
            idx = (idx + 1) & self.buckets[b].mask;
        }
        let Some(free) = free else {
            self.shard
                .stats
                .table_full_drops
                .fetch_add(1, Ordering::Relaxed);
            return Err(TableFull);
        };
        let bt = &mut self.buckets[b];
        bt.slots[free] = Slot {
            state: SLOT_LIVE,
            embryonic,
            key,
            digest,
            value,
            last_hit: epoch,
        };
        bt.live += 1;
        self.shard.stats.inserts.fetch_add(1, Ordering::Relaxed);
        self.shard.stats.live.fetch_add(1, Ordering::Relaxed);
        if foreign {
            self.shard.stats.migrated_in.fetch_add(1, Ordering::Relaxed);
            self.journal(bucket, FlowOpKind::Migrate, digest, value);
        } else {
            self.journal(bucket, FlowOpKind::Insert, digest, value);
        }
        Ok(())
    }

    /// Rewrites an entry's value and embryonic flag in place (conntrack
    /// state promotion). Returns `false` on miss. Not journaled: the
    /// promotion is derivable from the packet stream.
    pub fn promote(&mut self, bucket: u16, key: &FlowKey, value: u64, embryonic: bool) -> bool {
        let digest = key.digest();
        match self.probe(bucket, key, digest) {
            Some(i) => {
                let b = &mut self.buckets[usize::from(bucket)];
                b.slots[i].value = value;
                b.slots[i].embryonic = embryonic;
                true
            }
            None => false,
        }
    }

    /// Removes an entry (FIN/RST close). The eviction is journaled with
    /// the given reason and returned via `evicted`.
    pub fn remove(
        &mut self,
        bucket: u16,
        key: &FlowKey,
        reason: EvictReason,
        evicted: &mut Vec<Evicted>,
    ) -> Option<u64> {
        let digest = key.digest();
        let i = self.probe(bucket, key, digest)?;
        let value = self.buckets[usize::from(bucket)].slots[i].value;
        self.remove_at(bucket, i, reason, evicted);
        Some(value)
    }

    /// Finds the live slot holding `key`, if any (expired entries are
    /// still "found" — callers decide whether to reap).
    fn probe(&self, bucket: u16, key: &FlowKey, digest: u64) -> Option<usize> {
        let b = &self.buckets[usize::from(bucket)];
        if b.slots.is_empty() {
            return None;
        }
        let mut idx = (digest as usize) & b.mask;
        for _ in 0..b.slots.len() {
            let slot = &b.slots[idx];
            match slot.state {
                SLOT_EMPTY => return None,
                _ if slot.digest == digest && slot.key == *key => return Some(idx),
                _ => idx = (idx + 1) & b.mask,
            }
        }
        None
    }

    /// Removes the entry at `i`, journals the eviction, and compacts the
    /// probe chain by backward shifting (no tombstones, so long-running
    /// churn never degrades probes).
    fn remove_at(
        &mut self,
        bucket: u16,
        i: usize,
        reason: EvictReason,
        evicted: &mut Vec<Evicted>,
    ) {
        let b = usize::from(bucket);
        let slot = self.buckets[b].slots[i];
        debug_assert_eq!(slot.state, SLOT_LIVE);
        evicted.push(Evicted {
            key: slot.key,
            value: slot.value,
            reason,
        });
        let stat = match reason {
            EvictReason::Idle => &self.shard.stats.evict_idle,
            EvictReason::Embryonic => &self.shard.stats.evict_embryonic,
            EvictReason::Closed => &self.shard.stats.evict_closed,
            EvictReason::Death => &self.shard.stats.evict_death,
        };
        stat.fetch_add(1, Ordering::Relaxed);
        self.shard.stats.live.fetch_sub(1, Ordering::Relaxed);
        self.journal(bucket, FlowOpKind::Evict(reason), slot.digest, slot.value);

        let bt = &mut self.buckets[b];
        bt.live -= 1;
        let mask = bt.mask;
        // Backward-shift deletion (Knuth 6.4R): walk the chain after `i`,
        // moving back any entry whose home position is cyclically outside
        // (hole, current].
        let mut hole = i;
        let mut j = (i + 1) & mask;
        loop {
            let s = bt.slots[j];
            if s.state == SLOT_EMPTY {
                break;
            }
            let home = (s.digest as usize) & mask;
            let dist_home = j.wrapping_sub(home) & mask;
            let dist_hole = j.wrapping_sub(hole) & mask;
            if dist_home >= dist_hole {
                bt.slots[hole] = s;
                hole = j;
            }
            j = (j + 1) & mask;
            if j == i {
                break;
            }
        }
        bt.slots[hole] = EMPTY_SLOT;
    }

    fn journal(&mut self, bucket: u16, op: FlowOpKind, key_digest: u64, value: u64) {
        let b = &mut self.buckets[usize::from(bucket)];
        b.bseq += 1;
        if !self.shard.journal_on.load(Ordering::Relaxed) {
            return;
        }
        let rec = FlowOp {
            shard: self.worker,
            bucket,
            bseq: b.bseq,
            epoch: b.epoch,
            op,
            key_digest,
            value,
        };
        self.shard.journal.lock().expect("flow journal").push(rec);
    }
}

fn ttl_of_cfg(cfg: &FlowTableConfig, embryonic: bool) -> u64 {
    if embryonic && cfg.embryonic_ttl_epochs != 0 {
        cfg.embryonic_ttl_epochs
    } else {
        cfg.ttl_epochs
    }
}

/// Slots per bucket: `capacity / FLOW_BUCKETS` rounded up to a power of
/// two, zero staying zero (an always-full table is legal configuration,
/// not a panic). Adversarially huge capacities are clamped — combined
/// with lazy bucket allocation, no configuration can force a pathological
/// allocation.
fn per_bucket_slots(capacity: u64) -> usize {
    if capacity == 0 {
        return 0;
    }
    let per = capacity.div_ceil(FLOW_BUCKETS as u64).clamp(1, 1 << 20);
    per.next_power_of_two() as usize
}

// --- The op journal ---

/// What a journaled op did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlowOpKind {
    /// A new flow entered its home shard.
    Insert,
    /// An existing flow was refreshed.
    Hit,
    /// An entry left the table.
    Evict(EvictReason),
    /// A re-steered flow entered a shard that is not the bucket's home
    /// (worker-death recovery traffic).
    Migrate,
    /// The supervisor invalidated a dead worker's shard; `value` carries
    /// the number of flows lost.
    Invalidate,
}

impl FlowOpKind {
    /// Stable label, used in journal records and canonical comparisons.
    pub fn as_str(self) -> &'static str {
        match self {
            FlowOpKind::Insert => "insert",
            FlowOpKind::Hit => "hit",
            FlowOpKind::Evict(EvictReason::Idle) => "evict_idle",
            FlowOpKind::Evict(EvictReason::Embryonic) => "evict_embryonic",
            FlowOpKind::Evict(EvictReason::Closed) => "evict_closed",
            FlowOpKind::Evict(EvictReason::Death) => "evict_death",
            FlowOpKind::Migrate => "migrate",
            FlowOpKind::Invalidate => "invalidate",
        }
    }

    fn parse(s: &str) -> Result<FlowOpKind, String> {
        Ok(match s {
            "insert" => FlowOpKind::Insert,
            "hit" => FlowOpKind::Hit,
            "migrate" => FlowOpKind::Migrate,
            "invalidate" => FlowOpKind::Invalidate,
            other => match other.strip_prefix("evict_") {
                Some(r) => FlowOpKind::Evict(EvictReason::parse(r)?),
                None => return Err(format!("unknown flow op {other:?}")),
            },
        })
    }
}

/// One journaled flow-table operation. Integer-only, so JSONL round-trips
/// are bit-exact (the [`crate::supervise::SupervisionEvent`] convention).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowOp {
    /// Worker shard the op executed on.
    pub shard: u32,
    /// RSS bucket (sub-table) the op touched; `u16::MAX` for shard-wide
    /// ops (`Invalidate`).
    pub bucket: u16,
    /// Per-bucket op sequence number (1-based). Runtime-independent,
    /// unlike wall time.
    pub bseq: u64,
    /// The bucket's logical clock at the op.
    pub epoch: u64,
    /// What happened.
    pub op: FlowOpKind,
    /// [`FlowKey::digest`] of the key (0 for `Invalidate`).
    pub key_digest: u64,
    /// Op value: the table value for insert/hit/evict/migrate, the lost
    /// flow count for `Invalidate`.
    pub value: u64,
}

impl FlowOp {
    fn to_json_line(self) -> String {
        // The key digest is a full 64-bit value: hex-string encoded, since
        // JSON numbers (f64) only carry 53 bits exactly.
        format!(
            "{{\"shard\":{},\"bucket\":{},\"bseq\":{},\"epoch\":{},\"op\":\"{}\",\
             \"key\":\"{:016x}\",\"value\":{}}}",
            self.shard,
            self.bucket,
            self.bseq,
            self.epoch,
            self.op.as_str(),
            self.key_digest,
            self.value,
        )
    }

    fn from_json(v: &Value) -> Result<FlowOp, String> {
        let key = str_field(v, "key")?;
        let key_digest = u64::from_str_radix(key, 16).map_err(|e| format!("field `key`: {e}"))?;
        Ok(FlowOp {
            shard: u64_field(v, "shard")? as u32,
            bucket: u64_field(v, "bucket")? as u16,
            bseq: u64_field(v, "bseq")?,
            epoch: u64_field(v, "epoch")?,
            op: FlowOpKind::parse(str_field(v, "op")?)?,
            key_digest,
            value: u64_field(v, "value")?,
        })
    }
}

fn u64_field(v: &Value, key: &str) -> Result<u64, String> {
    match v.get(key) {
        Some(Value::Num(n)) if *n >= 0.0 && n.fract() == 0.0 => Ok(*n as u64),
        other => Err(format!("field `{key}`: expected integer, got {other:?}")),
    }
}

fn str_field<'a>(v: &'a Value, key: &str) -> Result<&'a str, String> {
    match v.get(key) {
        Some(Value::Str(s)) => Ok(s),
        other => Err(format!("field `{key}`: expected string, got {other:?}")),
    }
}

/// Replay summary of a [`FlowOpsLog`]: live flows per shard at the end,
/// the flows each dead shard lost, and the migrated set.
#[derive(Debug, Clone, Default)]
pub struct FlowReplay {
    /// Key digests live per shard after replaying every op.
    pub live: BTreeMap<u32, std::collections::BTreeSet<u64>>,
    /// Key digests lost to each shard invalidation (live at the moment
    /// the `Invalidate` op fired).
    pub invalidated: BTreeMap<u32, std::collections::BTreeSet<u64>>,
    /// Key digests journaled as `Migrate` (re-steered flows rebuilt on a
    /// survivor shard).
    pub migrated: std::collections::BTreeSet<u64>,
}

/// The explicit flow-op journal: an append-only record of every insert /
/// hit / evict / migrate / invalidate, replayable offline and JSONL
/// round-trippable — the flow plane's [`crate::supervise::SupervisorLog`].
#[derive(Debug, Clone, Default)]
pub struct FlowOpsLog {
    /// The ops, in per-shard execution order (shards concatenated in
    /// worker order).
    pub ops: Vec<FlowOp>,
}

impl FlowOpsLog {
    /// Bit-exact equality (all-integer records).
    pub fn bit_eq(&self, other: &FlowOpsLog) -> bool {
        self.ops == other.ops
    }

    /// A runtime-independent canonical ordering: ops sorted by
    /// `(bucket, bseq)`. Within one bucket the packet sequence — and so
    /// the op sequence — is invariant across DES/live(1)/live(N), while
    /// the interleaving *across* buckets is not; sorting strips exactly
    /// the non-deterministic part. Shard-wide ops (`Invalidate`) sort
    /// last. Clean runs of the same workload must agree canonically on
    /// every runtime; that is asserted by the differential suite.
    pub fn canonical(&self) -> Vec<FlowOp> {
        let mut ops = self.ops.clone();
        ops.sort_by_key(|o| (o.bucket, o.bseq, o.key_digest));
        ops
    }

    /// Serializes to JSON lines (header first, one op per line).
    pub fn to_jsonl(&self) -> String {
        let mut out = format!(
            "{{\"schema\":\"nba-flow-ops\",\"version\":1,\"ops\":{}}}\n",
            self.ops.len()
        );
        for op in &self.ops {
            out.push_str(&op.to_json_line());
            out.push('\n');
        }
        out
    }

    /// Parses [`FlowOpsLog::to_jsonl`] output.
    pub fn from_jsonl(s: &str) -> Result<FlowOpsLog, String> {
        let mut lines = s.lines().filter(|l| !l.trim().is_empty());
        let header = lines.next().ok_or("empty flow-ops log")?;
        let h = json::parse(header).map_err(|e| format!("bad header: {e:?}"))?;
        if str_field(&h, "schema")? != "nba-flow-ops" {
            return Err("not a flow-ops log".into());
        }
        let declared = u64_field(&h, "ops")?;
        let mut ops = Vec::new();
        for line in lines {
            let v = json::parse(line).map_err(|e| format!("bad op: {e:?}"))?;
            ops.push(FlowOp::from_json(&v)?);
        }
        if ops.len() as u64 != declared {
            return Err(format!(
                "header declares {declared} ops, found {}",
                ops.len()
            ));
        }
        Ok(FlowOpsLog { ops })
    }

    /// Replays the journal: tracks each shard's live set through inserts,
    /// hits, evictions, migrations, and invalidations, verifying that
    /// hits and evictions refer to live keys and that per-(shard, bucket)
    /// sequence numbers are strictly increasing.
    pub fn replay(&self) -> Result<FlowReplay, String> {
        let mut out = FlowReplay::default();
        let mut last_bseq: BTreeMap<(u32, u16), u64> = BTreeMap::new();
        for (i, op) in self.ops.iter().enumerate() {
            if op.op != FlowOpKind::Invalidate {
                let k = (op.shard, op.bucket);
                let prev = last_bseq.get(&k).copied().unwrap_or(0);
                if op.bseq <= prev {
                    return Err(format!(
                        "op {i}: bseq {} not increasing on shard {} bucket {}",
                        op.bseq, op.shard, op.bucket
                    ));
                }
                last_bseq.insert(k, op.bseq);
            }
            let live = out.live.entry(op.shard).or_default();
            match op.op {
                FlowOpKind::Insert | FlowOpKind::Migrate => {
                    if !live.insert(op.key_digest) {
                        return Err(format!("op {i}: insert of already-live key"));
                    }
                    if op.op == FlowOpKind::Migrate {
                        out.migrated.insert(op.key_digest);
                    }
                }
                FlowOpKind::Hit => {
                    if !live.contains(&op.key_digest) {
                        return Err(format!("op {i}: hit on a key that is not live"));
                    }
                }
                FlowOpKind::Evict(_) => {
                    if !live.remove(&op.key_digest) {
                        return Err(format!("op {i}: evict of a key that is not live"));
                    }
                }
                FlowOpKind::Invalidate => {
                    if live.len() as u64 != op.value {
                        return Err(format!(
                            "op {i}: invalidate declares {} lost flows, shard had {} live",
                            op.value,
                            live.len()
                        ));
                    }
                    let lost = std::mem::take(live);
                    out.invalidated.entry(op.shard).or_default().extend(lost);
                    // A respawned worker builds a fresh table, so the
                    // shard's per-bucket sequence numbers restart after
                    // the invalidation boundary.
                    last_bseq.retain(|(s, _), _| *s != op.shard);
                }
            }
        }
        Ok(out)
    }
}

// --- Run-wide registry ---

/// Per-shard counters, all monotonic except the `live` and
/// `nat_ports_in_use` gauges.
#[derive(Debug, Default)]
pub struct ShardFlowStats {
    /// Successful inserts (including migrations).
    pub inserts: AtomicU64,
    /// Lookup hits.
    pub hits: AtomicU64,
    /// Lookup misses (including lazily reaped expiries).
    pub misses: AtomicU64,
    /// Evictions by idle TTL.
    pub evict_idle: AtomicU64,
    /// Evictions of embryonic entries by the embryonic TTL.
    pub evict_embryonic: AtomicU64,
    /// Explicit closes (FIN/RST).
    pub evict_closed: AtomicU64,
    /// Flows invalidated by a worker death.
    pub evict_death: AtomicU64,
    /// Foreign-bucket (re-steered) inserts on this shard.
    pub migrated_in: AtomicU64,
    /// Inserts refused because the bucket sub-table was full.
    pub table_full_drops: AtomicU64,
    /// Out-of-state packets dropped by stateful elements (e.g. conntrack
    /// TCP packets with no matching flow).
    pub out_of_state_drops: AtomicU64,
    /// Live entries right now (gauge).
    pub live: AtomicU64,
    /// NAT external ports currently allocated (gauge).
    pub nat_ports_in_use: AtomicU64,
}

/// One shard's slot in the registry: counters plus the journal sink.
#[derive(Debug, Default)]
pub struct ShardFlowState {
    /// The counters.
    pub stats: ShardFlowStats,
    /// Mirrors the registry's journal switch (checked on the hot path
    /// without touching the registry).
    journal_on: AtomicBool,
    /// Journaled ops, pushed only by the owning worker thread (the mutex
    /// is uncontended; it exists so the supervisor can append
    /// `Invalidate` after the owner died).
    journal: Mutex<Vec<FlowOp>>,
}

/// An integer snapshot of one shard's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlowShardSnapshot {
    /// See [`ShardFlowStats::inserts`].
    pub inserts: u64,
    /// See [`ShardFlowStats::hits`].
    pub hits: u64,
    /// See [`ShardFlowStats::misses`].
    pub misses: u64,
    /// See [`ShardFlowStats::evict_idle`].
    pub evict_idle: u64,
    /// See [`ShardFlowStats::evict_embryonic`].
    pub evict_embryonic: u64,
    /// See [`ShardFlowStats::evict_closed`].
    pub evict_closed: u64,
    /// See [`ShardFlowStats::evict_death`].
    pub evict_death: u64,
    /// See [`ShardFlowStats::migrated_in`].
    pub migrated_in: u64,
    /// See [`ShardFlowStats::table_full_drops`].
    pub table_full_drops: u64,
    /// See [`ShardFlowStats::out_of_state_drops`].
    pub out_of_state_drops: u64,
    /// See [`ShardFlowStats::live`].
    pub live: u64,
    /// See [`ShardFlowStats::nat_ports_in_use`].
    pub nat_ports_in_use: u64,
}

impl FlowShardSnapshot {
    /// Evictions across every reason.
    pub fn evictions_total(&self) -> u64 {
        self.evict_idle + self.evict_embryonic + self.evict_closed + self.evict_death
    }
}

impl ShardFlowStats {
    fn snapshot(&self) -> FlowShardSnapshot {
        FlowShardSnapshot {
            inserts: self.inserts.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evict_idle: self.evict_idle.load(Ordering::Relaxed),
            evict_embryonic: self.evict_embryonic.load(Ordering::Relaxed),
            evict_closed: self.evict_closed.load(Ordering::Relaxed),
            evict_death: self.evict_death.load(Ordering::Relaxed),
            migrated_in: self.migrated_in.load(Ordering::Relaxed),
            table_full_drops: self.table_full_drops.load(Ordering::Relaxed),
            out_of_state_drops: self.out_of_state_drops.load(Ordering::Relaxed),
            live: self.live.load(Ordering::Relaxed),
            nat_ports_in_use: self.nat_ports_in_use.load(Ordering::Relaxed),
        }
    }
}

/// The flow plane's end-of-run accounting: per-shard counter snapshots
/// plus the merged op journal (empty unless journaling was enabled).
#[derive(Debug, Clone, Default)]
pub struct FlowReport {
    /// Snapshot per worker shard.
    pub shards: BTreeMap<u32, FlowShardSnapshot>,
    /// The merged journal.
    pub journal: FlowOpsLog,
}

impl FlowReport {
    /// Sums every shard's snapshot.
    pub fn totals(&self) -> FlowShardSnapshot {
        let mut t = FlowShardSnapshot::default();
        for s in self.shards.values() {
            t.inserts += s.inserts;
            t.hits += s.hits;
            t.misses += s.misses;
            t.evict_idle += s.evict_idle;
            t.evict_embryonic += s.evict_embryonic;
            t.evict_closed += s.evict_closed;
            t.evict_death += s.evict_death;
            t.migrated_in += s.migrated_in;
            t.table_full_drops += s.table_full_drops;
            t.out_of_state_drops += s.out_of_state_drops;
            t.live += s.live;
            t.nat_ports_in_use += s.nat_ports_in_use;
        }
        t
    }
}

struct RegistryInner {
    shards: Mutex<BTreeMap<u32, Arc<ShardFlowState>>>,
    journal_on: AtomicBool,
    /// Worker count of the run (0 = unknown): lets elements detect
    /// foreign-bucket inserts (`bucket % workers != worker`) after a
    /// re-steer.
    workers: AtomicU64,
}

/// The run-wide rendezvous between stateful elements (which own the
/// shards), the supervisor (which invalidates shards on worker death),
/// and report assembly. A cheap clonable handle published in node-local
/// storage under [`FlowRegistry::NLS_KEY`]: runtimes pre-publish their
/// instance before building pipelines, and elements attach via
/// [`FlowRegistry::from_nls`] — no `BuildCtx` change needed.
#[derive(Clone, Default)]
pub struct FlowRegistry {
    inner: Arc<RegistryInner>,
}

impl Default for RegistryInner {
    fn default() -> Self {
        RegistryInner {
            shards: Mutex::new(BTreeMap::new()),
            journal_on: AtomicBool::new(false),
            workers: AtomicU64::new(0),
        }
    }
}

impl FlowRegistry {
    /// The node-local storage key the run's registry lives under.
    pub const NLS_KEY: &'static str = "flow.registry";

    /// A fresh, empty registry.
    pub fn new() -> FlowRegistry {
        FlowRegistry::default()
    }

    /// The registry published in `nls`, creating one on first use.
    pub fn from_nls(nls: &NodeLocalStorage) -> FlowRegistry {
        (*nls.get_or_init(Self::NLS_KEY, FlowRegistry::new)).clone()
    }

    /// Publishes this registry in `nls` (runtimes call this before
    /// building pipeline replicas so every worker attaches to it).
    pub fn publish(&self, nls: &NodeLocalStorage) {
        let got = nls.get_or_init(Self::NLS_KEY, || self.clone());
        assert!(
            Arc::ptr_eq(&got.inner, &self.inner),
            "a different flow registry is already published"
        );
    }

    /// The shard slot for `worker`, created on first use. Re-attaching
    /// (respawn, or the spec-collection throwaway replica) returns the
    /// same slot, so counters survive element rebuilds.
    pub fn shard(&self, worker: usize) -> Arc<ShardFlowState> {
        let mut shards = self.inner.shards.lock().expect("flow registry");
        let slot = shards.entry(worker as u32).or_default();
        slot.journal_on.store(
            self.inner.journal_on.load(Ordering::Relaxed),
            Ordering::Relaxed,
        );
        slot.clone()
    }

    /// Records the run's worker count (runtimes call this at publish
    /// time) so elements can tell home-bucket inserts from re-steered
    /// foreign ones.
    pub fn set_workers(&self, n: usize) {
        self.inner.workers.store(n as u64, Ordering::Relaxed);
    }

    /// The run's worker count, or 0 when no runtime recorded one (all
    /// inserts then count as home).
    pub fn workers(&self) -> usize {
        self.inner.workers.load(Ordering::Relaxed) as usize
    }

    /// True once any stateful element attached a shard.
    pub fn is_active(&self) -> bool {
        !self.inner.shards.lock().expect("flow registry").is_empty()
    }

    /// Turns the op journal on (before the run; existing shards pick the
    /// switch up too).
    pub fn enable_journal(&self) {
        self.inner.journal_on.store(true, Ordering::Relaxed);
        for s in self.inner.shards.lock().expect("flow registry").values() {
            s.journal_on.store(true, Ordering::Relaxed);
        }
    }

    /// The invalidate half of the worker-death policy: account every flow
    /// the dead shard held as lost (`evict_death`), zero its gauges, and
    /// journal a shard-wide `Invalidate` op carrying the count. Returns
    /// the number of flows invalidated. Idempotent per death (a second
    /// call sees zero live flows).
    pub fn invalidate_shard(&self, worker: usize) -> u64 {
        let slot = {
            let shards = self.inner.shards.lock().expect("flow registry");
            match shards.get(&(worker as u32)) {
                Some(s) => s.clone(),
                None => return 0,
            }
        };
        let lost = slot.stats.live.swap(0, Ordering::Relaxed);
        slot.stats.evict_death.fetch_add(lost, Ordering::Relaxed);
        slot.stats.nat_ports_in_use.store(0, Ordering::Relaxed);
        if slot.journal_on.load(Ordering::Relaxed) {
            slot.journal.lock().expect("flow journal").push(FlowOp {
                shard: worker as u32,
                bucket: u16::MAX,
                bseq: 0,
                epoch: 0,
                op: FlowOpKind::Invalidate,
                key_digest: 0,
                value: lost,
            });
        }
        lost
    }

    /// Assembles the end-of-run report: counter snapshots per shard and
    /// the merged journal. `None` when no stateful element ever attached
    /// (so stateless runs carry no flow section at all).
    pub fn report(&self) -> Option<FlowReport> {
        let shards = self.inner.shards.lock().expect("flow registry");
        if shards.is_empty() {
            return None;
        }
        let mut report = FlowReport::default();
        for (w, slot) in shards.iter() {
            report.shards.insert(*w, slot.stats.snapshot());
            report
                .journal
                .ops
                .extend(slot.journal.lock().expect("flow journal").iter().copied());
        }
        Some(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u32) -> FlowKey {
        FlowKey {
            proto: 17,
            src_ip: 0x0a00_0000 | n,
            dst_ip: 0xc0a8_0001,
            src_port: 1024 + (n % 60000) as u16,
            dst_port: 80,
        }
    }

    fn table(cap: u64, ttl: u64, epoch_pkts: u64) -> (FlowTable, FlowRegistry) {
        let reg = FlowRegistry::new();
        reg.enable_journal();
        let t = FlowTable::new(
            0,
            FlowTableConfig {
                capacity: cap,
                ttl_epochs: ttl,
                embryonic_ttl_epochs: 0,
                epoch_pkts,
            },
            &reg,
        );
        (t, reg)
    }

    #[test]
    fn insert_then_lookup_hits() {
        let (mut t, _reg) = table(1024, 8, 16);
        let mut ev = Vec::new();
        t.insert(3, key(1), 77, false, false, &mut ev).unwrap();
        assert_eq!(t.lookup(3, &key(1), &mut ev), Some(77));
        assert_eq!(t.lookup(3, &key(2), &mut ev), None);
        assert!(ev.is_empty());
        assert_eq!(t.live(), 1);
    }

    #[test]
    fn idle_expiry_is_a_pure_function_of_the_bucket_clock() {
        let (mut t, _reg) = table(1024, 2, 4);
        let mut ev = Vec::new();
        t.insert(0, key(1), 1, false, false, &mut ev).unwrap();
        // 7 ticks: epoch reaches 1 — not expired (ttl 2).
        for _ in 0..7 {
            t.tick(0, &mut ev);
        }
        assert!(ev.is_empty());
        assert_eq!(t.lookup(0, &key(1), &mut ev), Some(1));
        // The hit refreshed last_hit to epoch 1; 4 more ticks (epoch 3 -
        // last_hit 1 >= ttl 2) expire it on the sweep.
        for _ in 0..8 {
            t.tick(0, &mut ev);
        }
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].reason, EvictReason::Idle);
        assert_eq!(t.live(), 0);
    }

    #[test]
    fn zero_capacity_never_panics() {
        let (mut t, _reg) = table(0, 8, 16);
        let mut ev = Vec::new();
        assert_eq!(
            t.insert(0, key(1), 1, false, false, &mut ev),
            Err(TableFull)
        );
        assert_eq!(t.lookup(0, &key(1), &mut ev), None);
        t.tick(0, &mut ev);
        assert_eq!(t.capacity(), 0);
    }

    #[test]
    fn occupancy_never_exceeds_per_bucket_capacity() {
        let (mut t, _reg) = table(FLOW_BUCKETS as u64 * 4, u64::MAX, 0);
        let mut ev = Vec::new();
        let mut ok = 0;
        for n in 0..64 {
            if t.insert(5, key(n), 0, false, false, &mut ev).is_ok() {
                ok += 1;
            }
        }
        assert_eq!(ok, 4, "bucket must hold exactly its slot count");
        assert_eq!(t.live(), 4);
    }

    #[test]
    fn remove_keeps_probe_chains_intact() {
        let (mut t, _reg) = table(FLOW_BUCKETS as u64 * 16, u64::MAX, 0);
        let mut ev = Vec::new();
        let keys: Vec<FlowKey> = (0..12).map(key).collect();
        for k in &keys {
            t.insert(9, *k, 1, false, false, &mut ev).unwrap();
        }
        for (i, k) in keys.iter().enumerate() {
            if i % 3 == 0 {
                assert!(t.remove(9, k, EvictReason::Closed, &mut ev).is_some());
            }
        }
        for (i, k) in keys.iter().enumerate() {
            let got = t.lookup(9, k, &mut ev);
            if i % 3 == 0 {
                assert_eq!(got, None, "removed key resurfaced");
            } else {
                assert_eq!(got, Some(1), "survivor key lost by compaction");
            }
        }
    }

    #[test]
    fn journal_roundtrips_and_replays() {
        let (mut t, reg) = table(1024, 2, 2);
        let mut ev = Vec::new();
        t.insert(1, key(1), 10, false, false, &mut ev).unwrap();
        t.insert(1, key(2), 20, true, true, &mut ev).unwrap();
        t.lookup(1, &key(1), &mut ev);
        t.remove(1, &key(2), EvictReason::Closed, &mut ev);
        for _ in 0..8 {
            t.tick(1, &mut ev);
        }
        reg.invalidate_shard(0);
        let report = reg.report().expect("active registry");
        let parsed = FlowOpsLog::from_jsonl(&report.journal.to_jsonl()).unwrap();
        assert!(parsed.bit_eq(&report.journal));
        let replay = parsed.replay().unwrap();
        assert!(replay.migrated.contains(&key(2).digest()));
        // key(1) idled out before the invalidation, so nothing was live.
        assert_eq!(report.totals().evict_death, 0);
        assert_eq!(report.totals().evict_idle, 1);
        assert!(replay.live.values().all(|s| s.is_empty()));
    }

    #[test]
    fn invalidate_accounts_live_flows() {
        let (mut t, reg) = table(1024, u64::MAX, 0);
        let mut ev = Vec::new();
        for n in 0..10 {
            t.insert(bucket_of(u64::from(n)), key(n), 0, false, false, &mut ev)
                .unwrap();
        }
        assert_eq!(reg.invalidate_shard(0), 10);
        let report = reg.report().unwrap();
        assert_eq!(report.totals().evict_death, 10);
        assert_eq!(report.totals().live, 0);
        let replay = report.journal.replay().unwrap();
        assert_eq!(replay.invalidated.get(&0).map(|s| s.len()), Some(10));
    }

    #[test]
    fn max_ttl_never_expires() {
        let (mut t, _reg) = table(256, u64::MAX, 1);
        let mut ev = Vec::new();
        t.insert(0, key(1), 1, false, false, &mut ev).unwrap();
        for _ in 0..10_000 {
            t.tick(0, &mut ev);
        }
        assert!(ev.is_empty());
        assert_eq!(t.lookup(0, &key(1), &mut ev), Some(1));
    }
}
