//! Property tests of framework data structures.

use proptest::prelude::*;

use nba_core::batch::PacketBatch;
use nba_core::config::{build_graph, ElementRegistry};
use nba_core::element::KernelIo;
use nba_core::graph::BranchPolicy;
use nba_io::Packet;

proptest! {
    /// Batch mask/take bookkeeping: live count always equals the number of
    /// occupied slots, under any operation sequence.
    #[test]
    fn batch_mask_take_algebra(ops in proptest::collection::vec((0u8..3, any::<usize>()), 0..100)) {
        let mut b = PacketBatch::with_capacity(16);
        for _ in 0..16 {
            b.push(Packet::from_bytes(&[0u8; 64]));
        }
        let mut model: Vec<bool> = vec![true; 16];
        for (op, idx) in ops {
            let i = idx % 16;
            match op {
                0 => {
                    b.mask(i);
                    model[i] = false;
                }
                1 => {
                    let took = b.take(i).is_some();
                    prop_assert_eq!(took, model[i]);
                    model[i] = false;
                }
                _ => {
                    // Read-only probes.
                    prop_assert_eq!(b.packet(i).is_some(), model[i]);
                }
            }
            prop_assert_eq!(b.len(), model.iter().filter(|&&x| x).count());
            let live: Vec<usize> = b.live_indices().collect();
            let expect: Vec<usize> =
                model.iter().enumerate().filter(|(_, &x)| x).map(|(k, _)| k).collect();
            prop_assert_eq!(live, expect);
        }
    }

    /// Kernel staging round-trips arbitrary segments.
    #[test]
    fn kernel_staging_round_trip(
        segments in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..50), 0..20),
        out_len in 1usize..16,
    ) {
        let refs: Vec<&[u8]> = segments.iter().map(|s| s.as_slice()).collect();
        let out_lens = vec![out_len; segments.len()];
        let (staged, total_out) = KernelIo::stage(&refs, &out_lens);
        prop_assert_eq!(total_out, out_len * segments.len());
        let mut out = vec![0u8; total_out];
        let io = KernelIo::parse(&staged, &mut out);
        prop_assert_eq!(io.items, segments.len());
        for (i, seg) in segments.iter().enumerate() {
            prop_assert_eq!(io.item_in(i), &seg[..]);
            prop_assert_eq!(io.item_out_range(i).len(), out_len);
        }
    }

    /// The configuration parser is total: any input yields Ok or Err,
    /// never a panic.
    #[test]
    fn config_parser_total(src in "\\PC{0,200}") {
        let reg = ElementRegistry::new();
        let _ = build_graph(&src, &reg, BranchPolicy::Predict);
    }

    /// The lexer handles arbitrary bytes including comment openers.
    #[test]
    fn config_parser_handles_comment_like_noise(
        noise in proptest::collection::vec(
            proptest::sample::select(vec!["//", "/*", "*/", "\"", ";", "->", "::", "a", "\n", "#", "[", "]"]),
            0..40),
    ) {
        let src: String = noise.concat();
        let reg = ElementRegistry::new();
        let _ = build_graph(&src, &reg, BranchPolicy::Predict);
    }
}
