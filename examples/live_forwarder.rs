//! The same pipelines on real OS threads: the live runtime forwards real
//! packets through replicated element graphs with a device thread serving
//! offloaded batches over channels. Numbers here are host-machine numbers,
//! not paper reproductions (the DES runtime does those).
//!
//! ```sh
//! cargo run --release --example live_forwarder
//! ```

use std::time::Duration;

use nba::apps::{pipelines, AppConfig};
use nba::core::element::ComputeMode;
use nba::core::lb;
use nba::core::runtime::live::{self, LiveConfig};
use nba::io::{SizeDist, TrafficConfig};

fn main() {
    let app = AppConfig {
        ports: 8,
        v4_routes: 16_384,
        ..AppConfig::default()
    };
    let cfg = LiveConfig {
        workers: std::thread::available_parallelism().map_or(2, |n| n.get().min(4)),
        duration: Duration::from_millis(500),
        compute: ComputeMode::Full,
        traffic: TrafficConfig {
            size: SizeDist::Fixed(256),
            ..TrafficConfig::default()
        },
        ..LiveConfig::default()
    };

    println!("running IPv4 router on {} real threads...", cfg.workers);
    let report = live::run(
        &cfg,
        &pipelines::ipv4_router(&app),
        &lb::shared(Box::new(lb::CpuOnly)),
    );
    println!(
        "CPU path: {:.2} Mpps / {:.2} Gbps on this host ({} packets in {:?})",
        report.mpps, report.gbps, report.totals.tx_packets, report.elapsed
    );

    println!("running IPsec gateway with 30 % of batches through the device thread...");
    let report = live::run(
        &cfg,
        &pipelines::ipsec_gateway(&app),
        &lb::shared(Box::new(lb::FixedFraction::new(0.3))),
    );
    println!(
        "IPsec: {:.2} Mpps / {:.2} Gbps, {} batches offloaded across threads",
        report.mpps, report.gbps, report.totals.offloaded_batches
    );
}
