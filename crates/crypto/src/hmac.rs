//! HMAC-SHA1 (RFC 2104), plus the 96-bit truncation ESP uses (RFC 2404).

use crate::sha1::{Sha1, BLOCK_LEN, DIGEST_LEN};

/// An HMAC-SHA1 keyed MAC.
#[derive(Clone)]
pub struct HmacSha1 {
    /// SHA-1 state pre-seeded with the inner padded key block.
    inner_init: Sha1,
    /// SHA-1 state pre-seeded with the outer padded key block.
    outer_init: Sha1,
}

impl HmacSha1 {
    /// Creates a MAC for `key` (any length; long keys are hashed first).
    pub fn new(key: &[u8]) -> HmacSha1 {
        let mut k = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            k[..DIGEST_LEN].copy_from_slice(&Sha1::digest(key));
        } else {
            k[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0x36u8; BLOCK_LEN];
        let mut opad = [0x5cu8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            ipad[i] ^= k[i];
            opad[i] ^= k[i];
        }
        // Pre-compute the first compression of each pass so per-message cost
        // is two block hashes smaller — the trick the paper's gateway uses
        // by caching OpenSSL envelope contexts per flow.
        let mut inner_init = Sha1::new();
        inner_init.update(&ipad);
        let mut outer_init = Sha1::new();
        outer_init.update(&opad);
        HmacSha1 {
            inner_init,
            outer_init,
        }
    }

    /// Computes the full 20-byte MAC of `data`.
    pub fn mac(&self, data: &[u8]) -> [u8; DIGEST_LEN] {
        let mut inner = self.inner_init.clone();
        inner.update(data);
        let inner_digest = inner.finalize();
        let mut outer = self.outer_init.clone();
        outer.update(&inner_digest);
        outer.finalize()
    }

    /// Computes the 96-bit truncated MAC used as the ESP ICV (RFC 2404).
    pub fn mac_truncated_96(&self, data: &[u8]) -> [u8; 12] {
        self.mac(data)[..12].try_into().unwrap()
    }

    /// Constant-time-ish verification of a truncated ICV.
    pub fn verify_truncated_96(&self, data: &[u8], icv: &[u8; 12]) -> bool {
        let expect = self.mac_truncated_96(data);
        let mut diff = 0u8;
        for (a, b) in expect.iter().zip(icv) {
            diff |= a ^ b;
        }
        diff == 0
    }
}

impl std::fmt::Debug for HmacSha1 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        f.write_str("HmacSha1 { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &[u8]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 2202 test cases 1-3 and 6 (long key).
    #[test]
    fn rfc2202_vectors() {
        let m = HmacSha1::new(&[0x0b; 20]);
        assert_eq!(
            hex(&m.mac(b"Hi There")),
            "b617318655057264e28bc0b6fb378c8ef146be00"
        );

        let m = HmacSha1::new(b"Jefe");
        assert_eq!(
            hex(&m.mac(b"what do ya want for nothing?")),
            "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79"
        );

        let m = HmacSha1::new(&[0xaa; 20]);
        assert_eq!(
            hex(&m.mac(&[0xdd; 50])),
            "125d7342b9ac11cd91a39af48aa17b4f63f175d3"
        );

        let m = HmacSha1::new(&[0xaa; 80]);
        assert_eq!(
            hex(&m.mac(b"Test Using Larger Than Block-Size Key - Hash Key First")),
            "aa4ae5e15272d00e95705637ce8a3b55ed402112"
        );
    }

    #[test]
    fn truncated_is_prefix() {
        let m = HmacSha1::new(b"key");
        let full = m.mac(b"msg");
        assert_eq!(m.mac_truncated_96(b"msg"), full[..12]);
    }

    #[test]
    fn verify_accepts_good_rejects_bad() {
        let m = HmacSha1::new(b"secret");
        let icv = m.mac_truncated_96(b"payload");
        assert!(m.verify_truncated_96(b"payload", &icv));
        let mut bad = icv;
        bad[0] ^= 1;
        assert!(!m.verify_truncated_96(b"payload", &bad));
        assert!(!m.verify_truncated_96(b"other payload", &icv));
    }

    #[test]
    fn debug_hides_key_material() {
        assert_eq!(format!("{:?}", HmacSha1::new(b"k")), "HmacSha1 { .. }");
    }
}
