//! Minimal fixed-width text tables for experiment output.

/// A simple right-aligned text table.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Table {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (cells stringified by the caller).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        debug_assert_eq!(cells.len(), self.header.len());
        self.rows.push(cells);
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (c, w) in cells.iter().zip(widths) {
                line.push_str(&format!("{c:>width$}  ", width = w));
            }
            line.trim_end().to_owned()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(
            &"-".repeat(
                widths
                    .iter()
                    .map(|w| w + 2)
                    .sum::<usize>()
                    .saturating_sub(2),
            ),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["size", "Gbps"]);
        t.row(vec!["64", "51.20"]);
        t.row(vec!["1500", "80.00"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("size"));
        assert!(lines[2].ends_with("51.20"));
        assert!(lines[3].starts_with("1500"));
    }
}
