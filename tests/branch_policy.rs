//! Batch-split behaviour end to end: splitting costs throughput, branch
//! prediction recovers most of it (the Figure 1/10 mechanics).

use nba::apps::pipelines;
use nba::core::graph::BranchPolicy;
use nba::core::lb;
use nba::core::runtime::{des, traffic_per_port, RuntimeConfig};
use nba::io::{SizeDist, TrafficConfig};

fn run(policy: BranchPolicy, minority: f64) -> nba::core::runtime::RunReport {
    let cfg = RuntimeConfig {
        branch_policy: policy,
        compute: nba::core::element::ComputeMode::HeadersOnly,
        ..RuntimeConfig::test_default()
    };
    let ports = cfg.topology.ports.len() as u16;
    let traffic = traffic_per_port(
        &cfg.topology,
        &TrafficConfig {
            offered_gbps: 10.0,
            size: SizeDist::Fixed(64),
            ..TrafficConfig::default()
        },
    );
    let pipeline = if minority < 0.0 {
        pipelines::echo(ports)
    } else {
        pipelines::branch_echo(minority, ports)
    };
    des::run(
        &cfg,
        &pipeline,
        &lb::shared(Box::new(lb::CpuOnly)),
        &traffic,
    )
}

#[test]
fn splitting_allocates_masking_mostly_does_not() {
    let split = run(BranchPolicy::SplitAlways, 0.5);
    let masked = run(BranchPolicy::Predict, 0.01);
    assert!(split.window.split_allocs > 0);
    // With 1 % minority and correct prediction, allocations happen only
    // for the occasional minority packets: far fewer than batches.
    assert!(
        masked.window.split_allocs < masked.window.batches,
        "masking allocated {} for {} batches",
        masked.window.split_allocs,
        masked.window.batches
    );
    // Splitting at 50/50 allocates ~2 per branch batch.
    assert!(split.window.split_allocs >= split.window.batches);
}

#[test]
fn branch_prediction_beats_split_always_under_load() {
    let baseline = run(BranchPolicy::Predict, -1.0);
    let split = run(BranchPolicy::SplitAlways, 0.5);
    let masked_1pct = run(BranchPolicy::Predict, 0.01);
    // Under saturating load the split policy must cost throughput vs the
    // no-branch baseline, and masking at 1 % minority must sit in between.
    assert!(
        split.tx_gbps < baseline.tx_gbps * 0.95,
        "split {:.2} vs baseline {:.2}",
        split.tx_gbps,
        baseline.tx_gbps
    );
    assert!(
        masked_1pct.tx_gbps > split.tx_gbps,
        "masked {:.2} vs split {:.2}",
        masked_1pct.tx_gbps,
        split.tx_gbps
    );
}

#[test]
fn both_policies_forward_every_packet() {
    // Policies change performance, never correctness.
    let a = run(BranchPolicy::SplitAlways, 0.3);
    let b = run(BranchPolicy::Predict, 0.3);
    assert_eq!(a.window.dropped, 0);
    assert_eq!(b.window.dropped, 0);
    assert!(a.tx_packets > 0 && b.tx_packets > 0);
}
