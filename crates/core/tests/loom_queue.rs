//! `loom` model of the offload command-queue handoff (the live runtime's
//! worker → device-thread → worker round trip, `runtime/live.rs`).
//!
//! Build with `RUSTFLAGS="--cfg loom"` to enable. The model re-implements
//! the handoff protocol over loom-instrumented primitives: N workers push
//! tagged offload tasks into one shared command queue; the device thread
//! drains it and routes each completion back to the originating worker's
//! completion queue. The properties checked under every explored
//! interleaving:
//!
//! * every submitted task is completed exactly once (none lost, none
//!   duplicated, none misrouted), and
//! * both sides terminate — no deadlock or lost wakeup between the
//!   `Condvar` waits and the disconnect handshake.
#![cfg(loom)]

use std::collections::VecDeque;

use loom::sync::atomic::{AtomicBool, Ordering};
use loom::sync::{Arc, Condvar, Mutex};
use loom::thread;

/// Workers submitting offload tasks (loom models few threads well).
const WORKERS: usize = 2;
/// Tasks each worker submits.
const TASKS: usize = 2;

/// The shared command queue: tasks tagged with their origin worker, plus a
/// closed flag the producers raise when done (the channel-disconnect
/// analogue of the runtime's `drop(task_tx)`).
struct CommandQueue {
    state: Mutex<(VecDeque<(usize, usize)>, usize)>, // (queue, open producers)
    ready: Condvar,
}

impl CommandQueue {
    fn new(producers: usize) -> CommandQueue {
        CommandQueue {
            state: Mutex::new((VecDeque::new(), producers)),
            ready: Condvar::new(),
        }
    }

    fn push(&self, task: (usize, usize)) {
        self.state.lock().unwrap().0.push_back(task);
        self.ready.notify_one();
    }

    fn close_one(&self) {
        self.state.lock().unwrap().1 -= 1;
        self.ready.notify_one();
    }

    /// Pops the next task; `None` once every producer closed and the queue
    /// drained (the device thread's exit condition).
    fn pop(&self) -> Option<(usize, usize)> {
        let mut st = self.state.lock().unwrap();
        loop {
            if let Some(t) = st.0.pop_front() {
                return Some(t);
            }
            if st.1 == 0 {
                return None;
            }
            st = self.ready.wait(st).unwrap();
        }
    }
}

/// One worker's completion queue (device → worker direction).
struct CompletionQueue {
    done: Mutex<Vec<usize>>,
    ready: Condvar,
    closed: AtomicBool,
}

impl CompletionQueue {
    fn new() -> CompletionQueue {
        CompletionQueue {
            done: Mutex::new(Vec::new()),
            ready: Condvar::new(),
            closed: AtomicBool::new(false),
        }
    }
}

#[test]
fn offload_handoff_completes_every_task_exactly_once() {
    loom::model(|| {
        let commands = Arc::new(CommandQueue::new(WORKERS));
        let completions: Arc<Vec<CompletionQueue>> =
            Arc::new((0..WORKERS).map(|_| CompletionQueue::new()).collect());

        // The device thread: drain, complete, route back by origin tag.
        let device = {
            let commands = Arc::clone(&commands);
            let completions = Arc::clone(&completions);
            thread::spawn(move || {
                while let Some((worker, seq)) = commands.pop() {
                    let cq = &completions[worker];
                    cq.done.lock().unwrap().push(seq);
                    cq.ready.notify_one();
                }
                for cq in completions.iter() {
                    cq.closed.store(true, Ordering::Release);
                    cq.ready.notify_one();
                }
            })
        };

        // Workers: submit, signal done, then reap their own completions.
        let workers: Vec<_> = (0..WORKERS)
            .map(|w| {
                let commands = Arc::clone(&commands);
                let completions = Arc::clone(&completions);
                thread::spawn(move || {
                    for seq in 0..TASKS {
                        commands.push((w, seq));
                    }
                    commands.close_one();
                    let cq = &completions[w];
                    let mut got = cq.done.lock().unwrap();
                    while got.len() < TASKS && !cq.closed.load(Ordering::Acquire) {
                        got = cq.ready.wait(got).unwrap();
                    }
                    let mut seqs = got.clone();
                    drop(got);
                    seqs.sort_unstable();
                    // Exactly once, correctly routed: this worker's own
                    // sequence numbers, each present a single time.
                    assert_eq!(seqs, (0..TASKS).collect::<Vec<_>>());
                })
            })
            .collect();

        for h in workers {
            h.join().unwrap();
        }
        device.join().unwrap();
    });
}
