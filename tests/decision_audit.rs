//! Decision-audit conformance: the balancer's decision log in logical-clock
//! mode is a pure function of the transmitted packet set, so the DES
//! runtime and the live runtime with one worker must produce bit-identical
//! [`DecisionRecord`] streams for the same seeded workload; the log must
//! replay bit-exactly through a fresh balancer; and a seeded fault storm
//! must trip the cost-model drift detector and raise a flight dump naming
//! the offending stage.

use std::time::Duration;

use nba::apps::{pipelines, AppConfig};
use nba::core::audit::{replay, AuditConfig, DecisionClock, DecisionLog, DriftConfig};
use nba::core::element::ComputeMode;
use nba::core::lb::{self, AlbConfig, LoadBalancer};
use nba::core::runtime::live::{self, LiveConfig};
use nba::core::runtime::{des, PipelineBuilder, RuntimeConfig};
use nba::core::{FaultConfig, FaultPlan};
use nba::io::{IpVersion, Limited, PacketSource, PayloadFill, SizeDist, TrafficConfig, TrafficGen};
use nba::sim::topology::{GpuSpec, PortSpec, SocketSpec};
use nba::sim::{Time, Topology};

/// Total packets per run (drains in milliseconds on both runtimes).
const BUDGET: u64 = 1200;

/// The fault-storm drill needs enough offload tasks to get the drift
/// detector past its EWMA warm-up (`min_tasks`), so it runs longer.
const STORM_BUDGET: u64 = 6 * BUDGET;

/// Decision-clock quantum: one balancer update per 100 transmitted
/// packets, at most 64 updates.
const PKTS_PER_UPDATE: u64 = 100;
const MAX_UPDATES: u64 = 64;

/// Decision-log capacity (ample for `MAX_UPDATES` milestones).
const LOG_CAPACITY: usize = 256;

fn one_port_topology() -> Topology {
    Topology {
        sockets: vec![SocketSpec { cores: 4 }],
        gpus: vec![GpuSpec {
            name: "GTX 680".to_owned(),
            socket: 0,
        }],
        ports: vec![PortSpec {
            speed_gbps: 10.0,
            socket: 0,
        }],
    }
}

fn traffic() -> TrafficConfig {
    TrafficConfig {
        offered_gbps: 10.0,
        size: SizeDist::Fixed(256),
        ip_version: IpVersion::V4,
        flows: 64,
        zipf_alpha: 0.0,
        payload: PayloadFill::Zeros,
        seed: 7,
        ..TrafficConfig::default()
    }
}

fn alb_cfg() -> AlbConfig {
    AlbConfig {
        delta: 0.08,
        update_interval: Time::from_ms(4),
        avg_window: 2,
        min_wait: 0,
        max_wait: 2,
        initial_w: 0.5,
    }
}

/// An adaptive balancer pre-armed with the audit log and the logical
/// decision clock (the runtime leaves a pre-armed balancer alone when
/// `cfg.audit.decision_capacity == 0`).
fn audited_adaptive() -> lb::Adaptive {
    let mut a = lb::Adaptive::new(alb_cfg());
    a.enable_audit(LOG_CAPACITY);
    a.set_decision_clock(DecisionClock::new(PKTS_PER_UPDATE, MAX_UPDATES));
    a
}

fn des_cfg(fault: FaultConfig) -> RuntimeConfig {
    RuntimeConfig {
        topology: one_port_topology(),
        workers_per_socket: 3,
        compute: ComputeMode::Full,
        warmup: Time::from_ms(2),
        measure: Time::from_ms(30),
        pool_size: 1 << 15,
        rxq_depth: 4096,
        fault,
        ..RuntimeConfig::default()
    }
}

/// One DES run with an audited clock-mode balancer; returns its decision
/// log.
fn des_decisions(build: &PipelineBuilder) -> DecisionLog {
    let cfg = des_cfg(FaultConfig::default());
    let source = Limited::new(TrafficGen::new(traffic()), BUDGET);
    let report = des::run_with_sources(
        &cfg,
        build,
        &lb::shared(Box::new(audited_adaptive())),
        vec![Box::new(source) as Box<dyn PacketSource>],
        traffic().offered_gbps,
    );
    assert_eq!(report.rx_dropped, 0, "DES run must be lossless");
    report.decisions.expect("audited balancer must keep a log")
}

/// One live run with a single audited worker; returns its decision log.
fn live_decisions(build: &PipelineBuilder) -> DecisionLog {
    let cfg = LiveConfig {
        workers: 1,
        duration: Duration::from_secs(20), // deadline only; drains in ms
        traffic: traffic(),
        compute: ComputeMode::Full,
        io_threads: 1,
        max_packets: Some(BUDGET),
        drain: true,
        ..LiveConfig::default()
    };
    let factory = lb::replicated(|| Box::new(audited_adaptive()) as Box<dyn LoadBalancer>);
    let report = live::run_sharded(&cfg, build, &factory);
    assert_eq!(report.rx_dropped, 0, "draining live run must be lossless");
    let mut logs = report.decisions;
    assert_eq!(logs.len(), 1, "one worker, one decision log");
    logs.pop().unwrap()
}

fn router() -> PipelineBuilder {
    let app = AppConfig {
        ports: 4,
        v4_routes: 2048,
        ..AppConfig::default()
    };
    pipelines::ipv4_router(&app)
}

/// The tentpole conformance property: identical seeds produce identical
/// decision streams on both runtimes, and the stream replays bit-exactly.
#[test]
fn des_and_live_decision_streams_are_bit_identical() {
    let build = router();
    let des_log = des_decisions(&build);
    assert!(
        !des_log.records.is_empty(),
        "the clock-mode balancer must have decided at least once"
    );
    // Enough packets for several milestones, one record each.
    let milestones = (BUDGET / PKTS_PER_UPDATE).min(MAX_UPDATES);
    assert!(
        (2..=milestones).contains(&(des_log.records.len() as u64)),
        "expected up to {milestones} milestone records, got {}",
        des_log.records.len()
    );

    let live_log = live_decisions(&build);
    assert!(
        des_log.bit_eq(&live_log),
        "DES and live(1) decision streams diverge:\nDES:\n{}\nlive:\n{}",
        des_log.to_jsonl(),
        live_log.to_jsonl()
    );

    // Replay: the recorded inputs fed through a fresh balancer traverse
    // the same branches and reproduce every output bit.
    let replayed = replay(&des_log).expect("replay must succeed");
    assert!(replayed.bit_eq(&des_log), "replay diverged from the record");
}

/// Same binary, same seed, run twice: the DES stream is reproducible and
/// survives a JSONL round trip bit-exactly.
#[test]
fn decision_log_round_trips_and_reproduces() {
    let build = router();
    let a = des_decisions(&build);
    let b = des_decisions(&build);
    assert!(a.bit_eq(&b), "same seed, same config, different decisions");

    let parsed = DecisionLog::from_jsonl(&a.to_jsonl()).expect("round trip parses");
    assert!(parsed.bit_eq(&a), "JSONL round trip lost bits");
    let replayed = replay(&parsed).expect("replay after round trip");
    assert!(replayed.bit_eq(&a), "replay after round trip diverged");
}

/// The drift drill: a seeded transient-fault storm makes measured launch
/// time (retry backoff the cost model never predicts) exceed the predicted
/// device cost, so the detector must latch an event, name the launch
/// stage, and dump the flight recorder.
#[test]
fn seeded_fault_storm_trips_drift_detector_with_flight_dump() {
    let fault = FaultConfig {
        plan: FaultPlan {
            seed: 99,
            transient: 0.45,
            ..FaultPlan::default()
        },
        ..FaultConfig::default()
    };
    let mut cfg = des_cfg(fault);
    cfg.audit = AuditConfig {
        decision_capacity: 0,
        stage_stats: true,
        drift: Some(DriftConfig::default()),
    };
    let source = Limited::new(TrafficGen::new(traffic()), STORM_BUDGET);
    let report = des::run_with_sources(
        &cfg,
        &router(),
        &lb::shared(Box::new(lb::FixedFraction::new(0.8))),
        vec![Box::new(source) as Box<dyn PacketSource>],
        traffic().offered_gbps,
    );
    assert!(
        report.faults.snapshot.retried > 0,
        "the storm must actually retry"
    );
    let stages = report.stages.expect("stage stats were on");
    assert!(stages.tasks > 0, "no offload tasks decomposed");
    let drift = report.drift.expect("drift detection was on");
    assert!(
        drift.events >= 1,
        "retry backoff must trip the drift detector (rel_err {})",
        drift.rel_err
    );
    assert_eq!(
        drift.worst_stage.as_deref(),
        Some("launch"),
        "the unpredicted time lives in the launch stage"
    );
    assert!(
        report.flight.iter().any(|d| d.reason.contains("launch")),
        "drift must dump the flight recorder naming the stage (got {:?})",
        report
            .flight
            .iter()
            .map(|d| d.reason.clone())
            .collect::<Vec<_>>()
    );
}

/// A clean, un-audited run stays clean: no stage stats, no drift report,
/// no decision log, no flight dumps — the all-off default really is off.
#[test]
fn audit_plane_is_fully_off_by_default() {
    let cfg = des_cfg(FaultConfig::default());
    let source = Limited::new(TrafficGen::new(traffic()), BUDGET);
    let report = des::run_with_sources(
        &cfg,
        &router(),
        &lb::shared(Box::new(lb::FixedFraction::new(0.5))),
        vec![Box::new(source) as Box<dyn PacketSource>],
        traffic().offered_gbps,
    );
    assert!(report.stages.is_none());
    assert!(report.drift.is_none());
    assert!(report.slo.is_none());
    assert!(report.decisions.is_none());
    assert!(report.flight.is_empty());
}
