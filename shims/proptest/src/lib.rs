//! In-workspace stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so the workspace ships a
//! minimal API-compatible subset: the [`proptest!`] macro, the
//! [`strategy::Strategy`] trait with ranges / tuples / `prop_map`,
//! [`collection::vec`], [`sample::select`], [`arbitrary::any`], a small
//! regex-literal string strategy, and the `prop_assert*` / [`prop_assume!`]
//! macros.
//!
//! Differences from the real crate: cases are generated from a fixed
//! deterministic seed per test (derived from file/line/name), and failing
//! cases are **not shrunk** — the failing input is printed as-is.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Case-driving machinery: config, RNG, and case errors.

    /// Per-test configuration (subset: case count).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Lighter than upstream's 256: the workspace runs property
            // suites over simulation-heavy code in CI.
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// A config requiring `cases` successful cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; generate a fresh case.
        Reject,
        /// An assertion failed; abort the test with this message.
        Fail(String),
    }

    /// The deterministic per-test generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl TestRng {
        /// Seeds a generator from the test's source location and name.
        pub fn for_test(file: &str, line: u32, name: &str) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in file.bytes().chain(name.bytes()).chain(line.to_le_bytes()) {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            let mut sm = h;
            TestRng {
                s: std::array::from_fn(|_| splitmix64(&mut sm)),
            }
        }

        /// The next 64 uniformly random bits.
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// A uniform value in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }

        /// A uniform `usize` in `[lo, hi]`.
        pub fn size_in(&mut self, lo: usize, hi: usize) -> usize {
            lo + self.below((hi - lo + 1) as u64) as usize
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values with `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Always generates a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategies may be used by reference.
    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128).wrapping_sub(self.start as u128);
                    self.start
                        .wrapping_add((u128::from(rng.next_u64()) % span) as $t)
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u128).wrapping_sub(lo as u128) + 1;
                    lo.wrapping_add((u128::from(rng.next_u64()) % span) as $t)
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    /// String literals act as regex-subset strategies generating matching
    /// strings. Supported: char classes (`[a-z0-9_]`), `\PC` (any printable
    /// char), literal chars, each with an optional `{m,n}`, `{n}`, `?`, `*`
    /// or `+` repetition (unbounded repeats cap at 32).
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            generate_from_pattern(self, rng)
        }
    }

    enum Atom {
        Class(Vec<char>),
        Printable,
        Lit(char),
    }

    fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Vec<char> {
        let mut set = Vec::new();
        let mut prev: Option<char> = None;
        while let Some(c) = chars.next() {
            match c {
                ']' => break,
                '-' if prev.is_some() && chars.peek().is_some_and(|&n| n != ']') => {
                    let lo = prev.take().unwrap();
                    let hi = chars.next().unwrap();
                    for v in lo as u32..=hi as u32 {
                        if let Some(ch) = char::from_u32(v) {
                            set.push(ch);
                        }
                    }
                }
                _ => {
                    if let Some(p) = prev.replace(c) {
                        set.push(p);
                    }
                }
            }
        }
        if let Some(p) = prev {
            set.push(p);
        }
        assert!(!set.is_empty(), "empty character class in pattern");
        set
    }

    fn parse_reps(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> (usize, usize) {
        match chars.peek() {
            Some('{') => {
                chars.next();
                let mut body = String::new();
                for c in chars.by_ref() {
                    if c == '}' {
                        break;
                    }
                    body.push(c);
                }
                match body.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse().expect("bad repetition lower bound"),
                        n.trim().parse().expect("bad repetition upper bound"),
                    ),
                    None => {
                        let n = body.trim().parse().expect("bad repetition count");
                        (n, n)
                    }
                }
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            Some('*') => {
                chars.next();
                (0, 32)
            }
            Some('+') => {
                chars.next();
                (1, 32)
            }
            _ => (1, 1),
        }
    }

    fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let mut atoms: Vec<(Atom, usize, usize)> = Vec::new();
        let mut chars = pattern.chars().peekable();
        while let Some(c) = chars.next() {
            let atom = match c {
                '[' => Atom::Class(parse_class(&mut chars)),
                '\\' => match chars.next() {
                    Some('P') => {
                        // `\PC`: any non-control character (printable).
                        let _ = chars.next();
                        Atom::Printable
                    }
                    Some('d') => Atom::Class(('0'..='9').collect()),
                    Some('w') => Atom::Class(
                        ('a'..='z')
                            .chain('A'..='Z')
                            .chain('0'..='9')
                            .chain(['_'])
                            .collect(),
                    ),
                    Some(other) => Atom::Lit(other),
                    None => break,
                },
                _ => Atom::Lit(c),
            };
            let (lo, hi) = parse_reps(&mut chars);
            atoms.push((atom, lo, hi));
        }
        let mut out = String::new();
        for (atom, lo, hi) in &atoms {
            let n = rng.size_in(*lo, *hi);
            for _ in 0..n {
                match atom {
                    Atom::Lit(c) => out.push(*c),
                    Atom::Class(set) => {
                        out.push(set[rng.below(set.len() as u64) as usize]);
                    }
                    Atom::Printable => {
                        // Mostly ASCII printable, occasionally multibyte.
                        let c = match rng.below(20) {
                            0 => 'λ',
                            1 => '→',
                            _ => char::from_u32(0x20 + rng.below(0x5f) as u32).unwrap(),
                        };
                        out.push(c);
                    }
                }
            }
        }
        out
    }
}

pub mod arbitrary {
    //! `any::<T>()`: the canonical whole-domain strategy per type.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for u128 {
        fn arbitrary(rng: &mut TestRng) -> u128 {
            (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
        }
    }

    impl Arbitrary for i128 {
        fn arbitrary(rng: &mut TestRng) -> i128 {
            u128::arbitrary(rng) as i128
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
        fn arbitrary(rng: &mut TestRng) -> [T; N] {
            std::array::from_fn(|_| T::arbitrary(rng))
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<A>(std::marker::PhantomData<A>);

    /// The whole-domain strategy for `A`.
    pub fn any<A: Arbitrary>() -> Any<A> {
        Any(std::marker::PhantomData)
    }

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;
        fn generate(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A length specification: exact or a range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        /// Inclusive upper bound.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Generates `Vec`s of `elem`-generated values with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.size_in(self.size.lo, self.size.hi);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod sample {
    //! Sampling strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The strategy returned by [`select`].
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// Picks uniformly from `options` (must be non-empty).
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select over empty options");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len() as u64) as usize].clone()
        }
    }
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests: `fn name(pattern in strategy, ...) { body }`.
///
/// Each test generates inputs from its strategies and runs the body until
/// [`test_runner::ProptestConfig::cases`] cases pass. `prop_assume!`
/// rejections regenerate; `prop_assert*` failures abort with the message
/// (inputs are not shrunk).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{
            @cfg ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($p:pat in $s:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng =
                $crate::test_runner::TestRng::for_test(file!(), line!(), stringify!($name));
            let mut __passed: u32 = 0;
            let mut __rejected: u32 = 0;
            while __passed < __cfg.cases {
                let __outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        let ($($p,)*) = ($(
                            $crate::strategy::Strategy::generate(&($s), &mut __rng),
                        )*);
                        $body
                        ::core::result::Result::Ok(())
                    })();
                match __outcome {
                    ::core::result::Result::Ok(()) => __passed += 1,
                    ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject,
                    ) => {
                        __rejected += 1;
                        assert!(
                            __rejected <= __cfg.cases.saturating_mul(64).max(4096),
                            "prop_assume rejected too many cases"
                        );
                    }
                    ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(__msg),
                    ) => {
                        panic!("{}", __msg);
                    }
                }
            }
        }
        $crate::__proptest_fns!{ @cfg ($cfg) $($rest)* }
    };
}

/// Rejects the current case, generating a fresh one.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Like `assert!` inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!(
                    "assertion failed: {} ({}:{})",
                    stringify!($cond),
                    file!(),
                    line!()
                ),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("{} ({}:{})", format!($($fmt)+), file!(), line!()),
            ));
        }
    };
}

/// Like `assert_eq!` inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!(
                    "assertion failed: left == right\n  left: {:?}\n right: {:?} ({}:{})",
                    __a,
                    __b,
                    file!(),
                    line!()
                ),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!(
                    "{}\n  left: {:?}\n right: {:?} ({}:{})",
                    format!($($fmt)+),
                    __a,
                    __b,
                    file!(),
                    line!()
                ),
            ));
        }
    }};
}

/// Like `assert_ne!` inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if *__a == *__b {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!(
                    "assertion failed: left != right\n  both: {:?} ({}:{})",
                    __a,
                    file!(),
                    line!()
                ),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if *__a == *__b {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!(
                    "{}\n  both: {:?} ({}:{})",
                    format!($($fmt)+),
                    __a,
                    file!(),
                    line!()
                ),
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_vecs(
            x in 0usize..10,
            v in crate::collection::vec(any::<u8>(), 3..6),
            exact in crate::collection::vec(any::<u16>(), 4),
        ) {
            prop_assert!(x < 10);
            prop_assert!((3..6).contains(&v.len()));
            prop_assert_eq!(exact.len(), 4);
        }

        #[test]
        fn tuples_map_and_assume(
            pair in (0u8..5, 10u8..20).prop_map(|(a, b)| (a, b)),
            flag in any::<bool>(),
        ) {
            prop_assume!(pair.0 != 4);
            prop_assert!(pair.0 < 4 && pair.1 >= 10);
            prop_assert_ne!(u32::from(pair.1), 99u32, "flag was {}", flag);
        }

        #[test]
        fn string_patterns(
            lit in "[a-z]{1,8}",
            free in "\\PC{0,50}",
        ) {
            prop_assert!((1..=8).contains(&lit.chars().count()));
            prop_assert!(lit.chars().all(|c| c.is_ascii_lowercase()));
            prop_assert!(free.chars().count() <= 50);
            prop_assert!(free.chars().all(|c| !c.is_control()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn config_applies(sel in crate::sample::select(vec![1u8, 2, 3])) {
            prop_assert!((1..=3).contains(&sel));
        }
    }

    #[test]
    #[should_panic(expected = "assertion failed")]
    fn failures_propagate() {
        // No `#[test]` on the inner fn: a test item inside a fn body would
        // be unnameable to the harness (and trips `-D warnings`).
        proptest! {
            fn inner(x in 0u8..4) {
                prop_assert!(x > 100);
            }
        }
        inner();
    }
}
