//! Receive-side scaling for the live runtime: a thread-side fanout that
//! mirrors [`crate::port::Port::deliver`] over real SPSC rings.
//!
//! The DES NIC model steers frames into simulated queues; the live runtime
//! needs the same flow-affine steering but across OS threads. [`RssFanout`]
//! owns one [`spsc::Producer`] per RX queue and performs exactly the NIC's
//! sequence — Toeplitz-hash the headers, pick a queue through the
//! indirection table, stamp the packet's RSS metadata, enqueue — so a flow's
//! packets always land on the same worker, in order.

use std::sync::atomic::{AtomicU16, AtomicU64, Ordering};
use std::sync::Arc;

use crate::packet::Packet;
use crate::port::rss_hash;
use crate::spsc;
use crate::toeplitz::Toeplitz;

/// Entries in the RSS indirection table. Hardware RSS units use a 128-entry
/// table ([`crate::toeplitz::queue_for_hash`] keys on `hash & 0x7f`); making
/// the table a real, swappable structure (instead of a modulo) is what lets
/// the live runtime re-steer a dead worker's buckets at runtime.
pub const RSS_BUCKETS: usize = 128;

/// The RSS bucket→worker indirection table, shared by every IO thread of a
/// run.
///
/// The boot-time assignment `entry[i] = i % workers` reduces to exactly the
/// modulo steering of [`queue_for_hash`], so a run where nothing fails is
/// bit-identical to the fixed-function path. When a worker dies, the
/// supervisor atomically reassigns *only that worker's buckets* onto
/// survivors ([`RssTable::remap_dead`]) — flows hashing to untouched buckets
/// keep their affinity — and a recovered worker re-acquires its home buckets
/// ([`RssTable::restore`]). Lookups are single relaxed loads; rewrites are
/// per-entry atomic stores, so IO threads never lock and never observe a
/// torn table.
#[derive(Debug)]
pub struct RssTable {
    entries: Vec<AtomicU16>,
    workers: u16,
    epoch: AtomicU64,
}

impl RssTable {
    /// Builds the boot table for `workers` queues: `entry[i] = i % workers`,
    /// the same mapping [`queue_for_hash`] computes.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn new(workers: u16) -> RssTable {
        assert!(workers > 0, "an RSS table needs at least one worker");
        RssTable {
            entries: (0..RSS_BUCKETS as u16)
                .map(|i| AtomicU16::new(i % workers))
                .collect(),
            workers,
            epoch: AtomicU64::new(0),
        }
    }

    /// Number of workers the table was built for.
    pub fn worker_count(&self) -> u16 {
        self.workers
    }

    /// The bucket a hash indexes (low 7 bits, as in hardware).
    pub fn bucket_of(hash: u32) -> usize {
        (hash & (RSS_BUCKETS as u32 - 1)) as usize
    }

    /// The worker currently owning the bucket `hash` indexes.
    pub fn worker_for(&self, hash: u32) -> u16 {
        self.entries[Self::bucket_of(hash)].load(Ordering::Relaxed)
    }

    /// The boot-time ("home") owner of a bucket.
    pub fn home(&self, bucket: usize) -> u16 {
        bucket as u16 % self.workers
    }

    /// Reassigns every bucket currently owned by `dead` round-robin onto
    /// `survivors`, leaving all other buckets untouched (flow affinity is
    /// preserved for every live worker). Returns the number of buckets
    /// moved. A no-op when `survivors` is empty.
    pub fn remap_dead(&self, dead: u16, survivors: &[u16]) -> usize {
        if survivors.is_empty() {
            return 0;
        }
        let mut moved = 0usize;
        for e in &self.entries {
            if e.load(Ordering::Relaxed) == dead {
                e.store(survivors[moved % survivors.len()], Ordering::Relaxed);
                moved += 1;
            }
        }
        if moved > 0 {
            self.epoch.fetch_add(1, Ordering::Release);
        }
        moved
    }

    /// Hands every *home* bucket of `worker` back to it (recovery path).
    /// Buckets whose home is another worker are never touched. Returns the
    /// number of buckets re-acquired.
    pub fn restore(&self, worker: u16) -> usize {
        let mut moved = 0usize;
        for (i, e) in self.entries.iter().enumerate() {
            if self.home(i) == worker && e.load(Ordering::Relaxed) != worker {
                e.store(worker, Ordering::Relaxed);
                moved += 1;
            }
        }
        if moved > 0 {
            self.epoch.fetch_add(1, Ordering::Release);
        }
        moved
    }

    /// Number of remap/restore rewrites so far (observers cheaply detect
    /// re-steering without diffing the table).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// A copy of the current bucket→worker assignment.
    pub fn snapshot(&self) -> Vec<u16> {
        self.entries
            .iter()
            .map(|e| e.load(Ordering::Relaxed))
            .collect()
    }
}

/// Where a frame would be steered and how loaded that ring is right now
/// (see [`RssFanout::steer_plan`]).
#[derive(Debug, Clone, Copy)]
pub struct SteerPlan {
    /// The queue (worker) the indirection table currently selects.
    pub queue: u16,
    /// The frame's Toeplitz RSS hash.
    pub hash: u32,
    /// Items queued on the target ring.
    pub occupancy: usize,
    /// The target ring's capacity.
    pub capacity: usize,
}

/// Per-queue delivery counters of one fanout.
#[derive(Debug, Clone, Copy, Default)]
pub struct QueueCounters {
    /// Frames enqueued to this RX queue.
    pub delivered: u64,
    /// Frames dropped because this RX queue was full.
    pub dropped: u64,
}

/// Steers packets from one IO thread into per-worker SPSC rings, the way a
/// multi-queue NIC's RSS unit steers frames into RX queues.
pub struct RssFanout {
    port_id: u16,
    hasher: Toeplitz,
    queues: Vec<spsc::Producer<Packet>>,
    counters: Vec<QueueCounters>,
    table: Arc<RssTable>,
}

impl RssFanout {
    /// Creates a fanout for `port_id` over the given per-queue rings, with
    /// its own private boot-state indirection table (steering identical to
    /// [`queue_for_hash`]).
    ///
    /// # Panics
    ///
    /// Panics if `queues` is empty.
    pub fn new(port_id: u16, queues: Vec<spsc::Producer<Packet>>) -> RssFanout {
        let table = Arc::new(RssTable::new(queues.len() as u16));
        RssFanout::with_table(port_id, queues, table)
    }

    /// Creates a fanout steering through a shared, externally rewritable
    /// indirection table (the self-healing runtime hands the same table to
    /// every IO thread so a supervisor can re-steer all of them at once).
    ///
    /// # Panics
    ///
    /// Panics if `queues` is empty or its length disagrees with the table.
    pub fn with_table(
        port_id: u16,
        queues: Vec<spsc::Producer<Packet>>,
        table: Arc<RssTable>,
    ) -> RssFanout {
        assert!(!queues.is_empty(), "a fanout needs at least one queue");
        assert_eq!(
            usize::from(table.worker_count()),
            queues.len(),
            "indirection table and queue set disagree on worker count"
        );
        let counters = vec![QueueCounters::default(); queues.len()];
        RssFanout {
            port_id,
            hasher: Toeplitz::default(),
            queues,
            counters,
            table,
        }
    }

    /// Number of RX queues.
    pub fn queue_count(&self) -> u16 {
        self.queues.len() as u16
    }

    /// The routing decision for a frame plus the target ring's load,
    /// computed without stamping or enqueueing — the inputs an overload
    /// shedder consults before committing the packet to a ring.
    pub fn steer_plan(&self, frame: &[u8]) -> SteerPlan {
        let hash = rss_hash(&self.hasher, frame);
        let q = self.table.worker_for(hash);
        let ring = &self.queues[usize::from(q)];
        SteerPlan {
            queue: q,
            hash,
            occupancy: ring.len(),
            capacity: ring.capacity(),
        }
    }

    /// The queue a frame with these bytes would be steered to right now.
    pub fn queue_for(&self, frame: &[u8]) -> u16 {
        self.table.worker_for(rss_hash(&self.hasher, frame))
    }

    /// The shared indirection table this fanout steers through.
    pub fn table(&self) -> &Arc<RssTable> {
        &self.table
    }

    /// Steers one packet: stamps its RSS hash / ingress metadata and pushes
    /// it onto the ring the indirection table currently selects. On a full
    /// ring the packet comes back via `Err` so the caller chooses NIC
    /// semantics (count a drop) or lossless semantics (back off and retry).
    pub fn deliver(&mut self, mut pkt: Packet) -> Result<u16, Packet> {
        let hash = rss_hash(&self.hasher, pkt.data());
        let q = self.table.worker_for(hash);
        pkt.rss_hash = hash;
        pkt.port_in = self.port_id;
        pkt.queue_in = q;
        match self.queues[usize::from(q)].push(pkt) {
            Ok(()) => {
                self.counters[usize::from(q)].delivered += 1;
                Ok(q)
            }
            Err(pkt) => Err(pkt),
        }
    }

    /// True once queue `q`'s consumer (its worker thread) is gone: items
    /// pushed there will never be drained. IO threads use this to raise the
    /// ring-disconnect post-mortem.
    pub fn receiver_gone(&self, q: u16) -> bool {
        self.queues[usize::from(q)].is_receiver_gone()
    }

    /// Swaps in a fresh ring for queue `q` (worker respawn) and returns the
    /// abandoned producer so the caller controls when the old ring closes.
    pub fn replace_queue(
        &mut self,
        q: u16,
        producer: spsc::Producer<Packet>,
    ) -> spsc::Producer<Packet> {
        std::mem::replace(&mut self.queues[usize::from(q)], producer)
    }

    /// Records a drop against queue `q` (the caller gave up on a full ring).
    pub fn count_drop(&mut self, q: u16) {
        self.counters[usize::from(q)].dropped += 1;
    }

    /// Per-queue counters, indexed by queue id.
    pub fn counters(&self) -> &[QueueCounters] {
        &self.counters
    }

    /// Total frames dropped across all queues.
    pub fn total_dropped(&self) -> u64 {
        self.counters.iter().map(|c| c.dropped).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buf::Mempool;
    use crate::gen::{TrafficConfig, TrafficGen};
    use crate::toeplitz::queue_for_hash;
    use nba_sim::Time;

    fn fanout(queues: usize, depth: usize) -> (RssFanout, Vec<spsc::Consumer<Packet>>) {
        let (txs, rxs): (Vec<_>, Vec<_>) = (0..queues).map(|_| spsc::channel(depth)).unzip();
        (RssFanout::new(3, txs), rxs)
    }

    #[test]
    fn stamps_metadata_and_steers_flow_affine() {
        let (mut f, rxs) = fanout(4, 256);
        let pool = Mempool::new(1024);
        let mut gen = TrafficGen::new(TrafficConfig::default());
        let mut pkts = Vec::new();
        gen.generate(Time::from_us(50), &pool, &mut |p| pkts.push(p));
        assert!(pkts.len() > 16, "generator produced {}", pkts.len());
        for pkt in pkts {
            let q = f.deliver(pkt).expect("ring has room");
            let got = rxs[usize::from(q)].pop().expect("just enqueued");
            assert_eq!(got.port_in, 3);
            assert_eq!(got.queue_in, q);
            // Same steering decision as the DES NIC model.
            assert_eq!(q, queue_for_hash(got.rss_hash, 4));
        }
    }

    #[test]
    fn boot_table_matches_fixed_function_steering() {
        // The swappable table must reduce to queue_for_hash before any
        // remap, for every bucket and several worker counts — this is what
        // keeps a clean live run bit-identical to the DES NIC model.
        for workers in [1u16, 2, 3, 4, 7, 16] {
            let t = RssTable::new(workers);
            for h in (0..4096u32).map(|i| i.wrapping_mul(0x9e37_79b9)) {
                assert_eq!(t.worker_for(h), queue_for_hash(h, workers));
            }
        }
    }

    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    #[test]
    fn remap_never_moves_a_live_workers_buckets() {
        // Property: across random kill sequences, remapping a dead shard's
        // buckets (a) empties the dead shard, (b) leaves every bucket owned
        // by a survivor exactly where it was, and (c) keeps every bucket on
        // some survivor.
        let mut seed = 0x5eed_u64;
        for trial in 0..200 {
            let workers = 2 + (splitmix(&mut seed) % 7) as u16; // 2..=8
            let t = RssTable::new(workers);
            let mut alive: Vec<u16> = (0..workers).collect();
            let kills = 1 + (splitmix(&mut seed) % u64::from(workers - 1)) as usize;
            for _ in 0..kills {
                let dead = alive.remove((splitmix(&mut seed) as usize) % alive.len());
                let before = t.snapshot();
                let moved = t.remap_dead(dead, &alive);
                let after = t.snapshot();
                assert_eq!(
                    moved,
                    before.iter().filter(|&&o| o == dead).count(),
                    "trial {trial}: every dead-owned bucket moves, none twice"
                );
                for (b, (&was, &now)) in before.iter().zip(&after).enumerate() {
                    if was == dead {
                        assert!(
                            alive.contains(&now),
                            "trial {trial}: bucket {b} must land on a survivor"
                        );
                    } else {
                        assert_eq!(
                            was, now,
                            "trial {trial}: bucket {b} of live worker {was} moved"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn restore_reacquires_only_home_buckets() {
        let t = RssTable::new(4);
        let survivors: Vec<u16> = vec![0, 1, 3];
        t.remap_dead(2, &survivors);
        assert!(t.snapshot().iter().all(|&o| o != 2));
        let before = t.snapshot();
        let restored = t.restore(2);
        let after = t.snapshot();
        assert_eq!(restored, RSS_BUCKETS / 4);
        for (b, (&was, &now)) in before.iter().zip(&after).enumerate() {
            if t.home(b) == 2 {
                assert_eq!(now, 2, "home bucket {b} returns to its owner");
            } else {
                assert_eq!(was, now, "foreign bucket {b} must not move");
            }
        }
        // The table is back to boot state; epoch recorded both rewrites.
        assert_eq!(after, RssTable::new(4).snapshot());
        assert_eq!(t.epoch(), 2);
    }

    #[test]
    fn remap_with_no_survivors_is_a_noop() {
        let t = RssTable::new(1);
        assert_eq!(t.remap_dead(0, &[]), 0);
        assert_eq!(t.epoch(), 0);
        assert!(t.snapshot().iter().all(|&o| o == 0));
    }

    #[test]
    fn fanout_steers_through_shared_table_after_remap() {
        let (txs, rxs): (Vec<_>, Vec<_>) = (0..4).map(|_| spsc::channel(256)).unzip();
        let table = Arc::new(RssTable::new(4));
        let mut f = RssFanout::with_table(1, txs, Arc::clone(&table));
        let pool = Mempool::new(1024);
        let mut gen = TrafficGen::new(TrafficConfig::default());
        let mut pkts = Vec::new();
        gen.generate(Time::from_us(50), &pool, &mut |p| pkts.push(p));
        let half = pkts.len() / 2;
        let tail: Vec<_> = pkts.drain(half..).collect();
        for pkt in pkts {
            f.deliver(pkt).expect("ring has room");
        }
        let before_q2 = rxs[2].len();
        table.remap_dead(2, &[0, 1, 3]);
        for pkt in tail {
            let q = f.deliver(pkt).expect("ring has room");
            assert_ne!(q, 2, "no packet may steer to the dead worker");
        }
        assert_eq!(rxs[2].len(), before_q2, "dead ring stopped growing");
    }

    #[test]
    fn replace_queue_swaps_ring_and_reports_dead_consumer() {
        let (mut f, rxs) = fanout(2, 8);
        assert!(!f.receiver_gone(0));
        drop(rxs);
        assert!(f.receiver_gone(0));
        assert!(f.receiver_gone(1));
        let (ntx, nrx) = spsc::channel(8);
        let old = f.replace_queue(0, ntx);
        assert!(old.is_receiver_gone());
        assert!(!f.receiver_gone(0), "fresh ring has a live consumer");
        drop(nrx);
        assert!(f.receiver_gone(0));
    }

    #[test]
    fn full_ring_returns_packet() {
        let (mut f, _rxs) = fanout(1, 2);
        let pool = Mempool::new(16);
        let mut gen = TrafficGen::new(TrafficConfig::default());
        let mut pkts = Vec::new();
        gen.generate(Time::from_us(20), &pool, &mut |p| pkts.push(p));
        let mut dropped = 0u64;
        for pkt in pkts {
            if let Err(p) = f.deliver(pkt) {
                f.count_drop(p.queue_in);
                dropped += 1;
            }
        }
        assert!(dropped > 0);
        assert_eq!(f.total_dropped(), dropped);
        assert_eq!(f.counters()[0].delivered, 2);
    }
}
