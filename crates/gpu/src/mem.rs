//! Device memory: a first-fit arena with explicit alloc/free.
//!
//! Offload tasks stage their datablocks into device buffers; the arena
//! enforces the device's capacity (a GTX 680 has 2 GB) and catches
//! use-after-free through generation-tagged handles.

/// A handle to an allocated device buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceBuffer {
    slot: u32,
    generation: u32,
    len: usize,
}

impl DeviceBuffer {
    /// Buffer length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` for zero-length buffers.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Errors of device memory operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemError {
    /// Not enough contiguous device memory.
    OutOfMemory,
    /// The handle was already freed (or is from another device).
    StaleHandle,
    /// Access beyond the end of the buffer.
    OutOfBounds,
}

impl std::fmt::Display for MemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemError::OutOfMemory => write!(f, "device out of memory"),
            MemError::StaleHandle => write!(f, "stale device buffer handle"),
            MemError::OutOfBounds => write!(f, "device buffer access out of bounds"),
        }
    }
}

impl std::error::Error for MemError {}

#[derive(Debug)]
struct Slot {
    data: Vec<u8>,
    generation: u32,
    live: bool,
}

/// The device memory arena.
#[derive(Debug)]
pub struct DeviceMemory {
    slots: Vec<Slot>,
    free_slots: Vec<u32>,
    capacity: usize,
    used: usize,
}

impl DeviceMemory {
    /// Creates an arena with `capacity` bytes of device memory.
    pub fn new(capacity: usize) -> DeviceMemory {
        DeviceMemory {
            slots: Vec::new(),
            free_slots: Vec::new(),
            capacity,
            used: 0,
        }
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> usize {
        self.used
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Allocates a zeroed buffer of `len` bytes.
    pub fn alloc(&mut self, len: usize) -> Result<DeviceBuffer, MemError> {
        if self.used + len > self.capacity {
            return Err(MemError::OutOfMemory);
        }
        self.used += len;
        let slot = match self.free_slots.pop() {
            Some(s) => {
                let slot = &mut self.slots[s as usize];
                slot.data.clear();
                slot.data.resize(len, 0);
                slot.live = true;
                s
            }
            None => {
                self.slots.push(Slot {
                    data: vec![0; len],
                    generation: 0,
                    live: true,
                });
                (self.slots.len() - 1) as u32
            }
        };
        Ok(DeviceBuffer {
            slot,
            generation: self.slots[slot as usize].generation,
            len,
        })
    }

    /// Frees a buffer; the handle becomes stale.
    pub fn free(&mut self, buf: DeviceBuffer) -> Result<(), MemError> {
        let slot = self.check(&buf)?;
        self.slots[slot].live = false;
        self.slots[slot].generation = self.slots[slot].generation.wrapping_add(1);
        self.used -= buf.len;
        self.free_slots.push(buf.slot);
        Ok(())
    }

    fn check(&self, buf: &DeviceBuffer) -> Result<usize, MemError> {
        let slot = buf.slot as usize;
        match self.slots.get(slot) {
            Some(s) if s.live && s.generation == buf.generation => Ok(slot),
            _ => Err(MemError::StaleHandle),
        }
    }

    /// Copies host bytes into a device buffer (the functional half of an
    /// H2D DMA; the temporal half is the timeline's job).
    pub fn write(
        &mut self,
        buf: &DeviceBuffer,
        offset: usize,
        data: &[u8],
    ) -> Result<(), MemError> {
        let slot = self.check(buf)?;
        let dst = &mut self.slots[slot].data;
        if offset + data.len() > dst.len() {
            return Err(MemError::OutOfBounds);
        }
        dst[offset..offset + data.len()].copy_from_slice(data);
        Ok(())
    }

    /// Copies device bytes back to the host.
    pub fn read(&self, buf: &DeviceBuffer, offset: usize, out: &mut [u8]) -> Result<(), MemError> {
        let slot = self.check(buf)?;
        let src = &self.slots[slot].data;
        if offset + out.len() > src.len() {
            return Err(MemError::OutOfBounds);
        }
        out.copy_from_slice(&src[offset..offset + out.len()]);
        Ok(())
    }

    /// Borrows the whole buffer (kernels execute over device memory).
    pub fn bytes(&self, buf: &DeviceBuffer) -> Result<&[u8], MemError> {
        let slot = self.check(buf)?;
        Ok(&self.slots[slot].data)
    }

    /// Borrows the whole buffer mutably.
    pub fn bytes_mut(&mut self, buf: &DeviceBuffer) -> Result<&mut [u8], MemError> {
        let slot = self.check(buf)?;
        Ok(&mut self.slots[slot].data)
    }

    /// Borrows two distinct buffers, one shared and one mutable (the common
    /// kernel signature: read input block, write output block).
    pub fn in_out(
        &mut self,
        input: &DeviceBuffer,
        output: &DeviceBuffer,
    ) -> Result<(&[u8], &mut [u8]), MemError> {
        let i = self.check(input)?;
        let o = self.check(output)?;
        if i == o {
            return Err(MemError::OutOfBounds);
        }
        // Split the slot vector so we can hand out disjoint borrows.
        let (lo, hi) = if i < o { (i, o) } else { (o, i) };
        let (left, right) = self.slots.split_at_mut(hi);
        let (a, b) = (&mut left[lo], &mut right[0]);
        if i < o {
            Ok((&a.data, &mut b.data))
        } else {
            Ok((&b.data, &mut a.data))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_write_read_round_trip() {
        let mut m = DeviceMemory::new(1024);
        let b = m.alloc(16).unwrap();
        m.write(&b, 4, b"abcd").unwrap();
        let mut out = [0u8; 4];
        m.read(&b, 4, &mut out).unwrap();
        assert_eq!(&out, b"abcd");
        assert_eq!(m.used(), 16);
    }

    #[test]
    fn capacity_enforced_and_freed_memory_reusable() {
        let mut m = DeviceMemory::new(32);
        let a = m.alloc(24).unwrap();
        assert_eq!(m.alloc(16).unwrap_err(), MemError::OutOfMemory);
        m.free(a).unwrap();
        assert!(m.alloc(32).is_ok());
    }

    #[test]
    fn stale_handles_rejected() {
        let mut m = DeviceMemory::new(64);
        let a = m.alloc(8).unwrap();
        m.free(a).unwrap();
        assert_eq!(m.free(a).unwrap_err(), MemError::StaleHandle);
        assert_eq!(m.write(&a, 0, b"x").unwrap_err(), MemError::StaleHandle);
        // A new allocation reusing the slot gets a fresh generation.
        let b = m.alloc(8).unwrap();
        assert_eq!(
            m.read(&a, 0, &mut [0u8; 1]).unwrap_err(),
            MemError::StaleHandle
        );
        assert!(m.read(&b, 0, &mut [0u8; 1]).is_ok());
    }

    #[test]
    fn bounds_checked() {
        let mut m = DeviceMemory::new(64);
        let b = m.alloc(8).unwrap();
        assert_eq!(m.write(&b, 6, b"abc").unwrap_err(), MemError::OutOfBounds);
        assert_eq!(
            m.read(&b, 8, &mut [0u8; 1]).unwrap_err(),
            MemError::OutOfBounds
        );
    }

    #[test]
    fn in_out_borrows_disjoint_buffers() {
        let mut m = DeviceMemory::new(64);
        let i = m.alloc(4).unwrap();
        let o = m.alloc(4).unwrap();
        m.write(&i, 0, b"wxyz").unwrap();
        {
            let (inp, out) = m.in_out(&i, &o).unwrap();
            out.copy_from_slice(inp);
        }
        let mut back = [0u8; 4];
        m.read(&o, 0, &mut back).unwrap();
        assert_eq!(&back, b"wxyz");
        // Reverse order of handles also works.
        let (inp2, _out2) = m.in_out(&o, &i).unwrap();
        assert_eq!(inp2, b"wxyz");
    }

    #[test]
    fn zeroed_on_alloc_after_reuse() {
        let mut m = DeviceMemory::new(64);
        let a = m.alloc(4).unwrap();
        m.write(&a, 0, b"dirt").unwrap();
        m.free(a).unwrap();
        let b = m.alloc(4).unwrap();
        assert_eq!(m.bytes(&b).unwrap(), &[0u8; 4]);
    }
}
