//! `nba-matcher`: pattern-matching substrate for the IDS application.
//!
//! The paper's IDS "uses Aho-Corasick algorithm for signature matching and
//! PCRE for regular expression matching with their DFA forms using standard
//! approaches". This crate provides both:
//!
//! * [`aho::AhoCorasick`] — multi-pattern matching compiled to a dense DFA
//!   (trie + BFS failure links collapsed into 256-way transition tables),
//! * [`regex::Regex`] — a PCRE-subset engine (parser → Thompson NFA →
//!   subset-construction DFA) with IDS search-anywhere semantics.
//!
//! Both expose a raw `step(state, byte)` interface so the simulated GPU
//! kernels run exactly the same automata as the CPU elements.

#![forbid(unsafe_code)]

pub mod aho;
pub mod regex;

pub use aho::AhoCorasick;
pub use regex::{Regex, RegexError};
