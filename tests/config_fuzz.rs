//! Fuzz-style robustness of the configuration front end: no input —
//! arbitrary bytes or mutations of valid pipelines — may panic
//! [`build_graph_checked`]. Everything must come back as a built graph
//! (possibly with diagnostics) or a [`ConfigError`], and every reported
//! line must point inside the source that was given.

use proptest::prelude::*;

use nba::apps::{pipelines, AppConfig};
use nba::core::config::{build_graph_checked, ElementRegistry};
use nba::core::lb;
use nba::core::nls::NodeLocalStorage;
use nba::core::runtime::BuildCtx;

fn registry() -> ElementRegistry {
    let bctx = BuildCtx {
        worker: 0,
        socket: 0,
        nls: NodeLocalStorage::new(),
        balancer: lb::shared(Box::new(lb::CpuOnly)),
        policy: Default::default(),
    };
    pipelines::registry(&bctx, &AppConfig::default())
}

/// Checks the only two acceptable outcomes; panics (proptest failures)
/// for anything else. Returns for reuse across strategies.
fn check_never_panics(src: &str) -> Result<(), String> {
    let lines = src.lines().count().max(1);
    match build_graph_checked(src, &registry(), Default::default()) {
        Ok(checked) => {
            for d in &checked.report.diagnostics {
                if let Some(line) = d.line {
                    if line == 0 || line > lines {
                        return Err(format!(
                            "diagnostic {} points outside the source ({line} of {lines} lines)",
                            d.code
                        ));
                    }
                }
                if let Some(node) = d.node {
                    if node >= checked.graph.len() {
                        return Err(format!(
                            "diagnostic {} names node {node} of {}",
                            d.code,
                            checked.graph.len()
                        ));
                    }
                }
            }
            Ok(())
        }
        Err(e) => {
            if e.line == 0 || e.line > lines {
                return Err(format!(
                    "error '{}' points outside the source (line {} of {lines})",
                    e.msg, e.line
                ));
            }
            Ok(())
        }
    }
}

/// Deterministically mutates a valid config: byte flips, deletions,
/// duplications, and line drops, all driven by the fuzz input.
fn mutate(base: &str, ops: &[(u8, u16)]) -> String {
    let mut bytes: Vec<u8> = base.as_bytes().to_vec();
    for &(kind, at) in ops {
        if bytes.is_empty() {
            break;
        }
        let i = usize::from(at) % bytes.len();
        match kind % 5 {
            0 => bytes[i] = bytes[i].wrapping_add(1 + kind / 5),
            1 => {
                bytes.remove(i);
            }
            2 => bytes.insert(i, b"();->:,\"= xQ9"[usize::from(kind / 5) % 13]),
            3 => {
                // Duplicate a chunk (can duplicate declarations/arrows).
                let end = (i + 1 + usize::from(kind / 5) * 7).min(bytes.len());
                let chunk: Vec<u8> = bytes[i..end].to_vec();
                bytes.splice(i..i, chunk);
            }
            _ => {
                // Drop the rest of the line at `i`.
                let end = bytes[i..]
                    .iter()
                    .position(|&b| b == b'\n')
                    .map_or(bytes.len(), |p| i + p);
                bytes.drain(i..end);
            }
        }
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

/// The shipped stateful-app configurations (also lint fixtures).
const NAT44_SRC: &str = include_str!("../examples/click/nat44.click");
const FW_SRC: &str = include_str!("../examples/click/fw.click");
const MAGLEV_SRC: &str = include_str!("../examples/click/maglev.click");

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Arbitrary printable-ish soup never panics the parser/assembler.
    #[test]
    fn arbitrary_bytes_never_panic(raw in proptest::collection::vec(any::<u8>(), 0..400)) {
        // Mostly-printable input reaches deeper than pure binary, which
        // the tokenizer rejects immediately; map into that range but keep
        // newlines, quotes, and the config punctuation.
        let src: String = raw
            .iter()
            .map(|&b| match b {
                b'\n' | b'\t' | b' '..=b'~' => b as char,
                _ => char::from(b' ' + (b % 0x5f)),
            })
            .collect();
        prop_assert!(check_never_panics(&src).is_ok(), "{:?}", check_never_panics(&src));
    }

    /// Mutations of the shipped IPv4 pipeline config never panic, and all
    /// spans stay valid.
    #[test]
    fn mutated_ipv4_config_never_panics(
        ops in proptest::collection::vec((any::<u8>(), any::<u16>()), 0..24),
    ) {
        let src = mutate(pipelines::IPV4_CONFIG, &ops);
        prop_assert!(check_never_panics(&src).is_ok(), "{:?}", check_never_panics(&src));
    }

    /// Same for the IPsec pipeline config (more element classes, more
    /// arguments to corrupt).
    #[test]
    fn mutated_ipsec_config_never_panics(
        ops in proptest::collection::vec((any::<u8>(), any::<u16>()), 0..24),
    ) {
        let src = mutate(pipelines::IPSEC_CONFIG, &ops);
        prop_assert!(check_never_panics(&src).is_ok(), "{:?}", check_never_panics(&src));
    }

    /// Mutations of the stateful-app configs never panic. These exercise
    /// quoted `key=value` parameters and the two-output firewall, which
    /// the older shipped configs don't have.
    #[test]
    fn mutated_stateful_configs_never_panic(
        which in 0usize..3,
        ops in proptest::collection::vec((any::<u8>(), any::<u16>()), 0..24),
    ) {
        let base = [NAT44_SRC, FW_SRC, MAGLEV_SRC][which];
        let src = mutate(base, &ops);
        prop_assert!(check_never_panics(&src).is_ok(), "{:?}", check_never_panics(&src));
    }

    /// Adversarial knob values for the stateful elements never panic the
    /// assembler or the element constructors it runs: zero capacities,
    /// one-port pools, frozen epoch clocks, and `u64::MAX` TTLs must all
    /// come back as a built graph or a diagnostic.
    #[test]
    fn stateful_knob_soup_never_panics(
        capacity in proptest::sample::select(vec![0u64, 1, 127, 1 << 20, u64::MAX]),
        ttl in proptest::sample::select(vec![0u64, 1, u64::MAX]),
        epoch in proptest::sample::select(vec![0u64, 1, u64::MAX]),
        ext_ips in proptest::sample::select(vec![0u64, 1, u64::MAX]),
        ports_per_ip in proptest::sample::select(vec![0u64, 1, 64512, u64::MAX]),
        backends in proptest::sample::select(vec![0u64, 1, 7, u64::MAX]),
        table in proptest::sample::select(vec![0u64, 1, 251, u64::MAX]),
        flip in proptest::sample::select(vec![0u64, 1, u64::MAX]),
    ) {
        let src = format!(
            r#"
            src :: FromInput();
            nat :: Nat44("capacity={capacity}", "ttl={ttl}", "epoch={epoch}",
                         "ext_ips={ext_ips}", "ports_per_ip={ports_per_ip}");
            fw  :: ConnTrackFirewall("capacity={capacity}", "embryonic_ttl={ttl}",
                                     "epoch={epoch}");
            lb  :: MaglevLb("backends={backends}", "table={table}",
                            "flip_epoch={flip}", "flip_remove={backends}",
                            "capacity={capacity}");
            out :: ToOutput();
            src -> nat -> fw;
            fw [0] -> lb -> out;
            fw [1] -> Discard;
            "#
        );
        prop_assert!(check_never_panics(&src).is_ok(), "{:?}", check_never_panics(&src));
    }

    /// The static queue-law checks (`NBA05x`) never panic — or overflow —
    /// on arbitrary runtime dimensions, including zeros and extremes.
    #[test]
    fn capacity_checks_never_panic(
        workers in 0usize..1 << 20,
        batch in 0usize..1 << 20,
        ring in 0usize..1 << 30,
        aggregate in 0usize..1 << 30,
        io_threads in 0usize..64,
        drain in any::<bool>(),
    ) {
        use nba::core::runtime::live::LiveConfig;
        use nba::core::verify::{check_capacity, CapacityModel};
        let m = CapacityModel::from_live(&LiveConfig {
            workers,
            batch,
            ring_capacity: ring,
            aggregate,
            io_threads,
            drain,
            ..LiveConfig::default()
        });
        // Every diagnostic the law checks emit is one of the NBA05x pair.
        for d in &check_capacity(&m).diagnostics {
            prop_assert!(matches!(d.code.as_str(), "NBA050" | "NBA051"), "{d}");
        }
    }
}

/// The unmutated shipped configs still build without Error-severity
/// findings — guards the fuzz baseline itself.
#[test]
fn shipped_configs_are_clean() {
    for src in [
        pipelines::IPV4_CONFIG,
        pipelines::IPSEC_CONFIG,
        NAT44_SRC,
        FW_SRC,
        MAGLEV_SRC,
    ] {
        let checked =
            build_graph_checked(src, &registry(), Default::default()).expect("shipped config");
        assert!(checked.report.first_error().is_none());
    }
}
