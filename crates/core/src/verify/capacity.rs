//! Static queue-law checks (the `NBA05x` family).
//!
//! The live runtime's steering stage is a network of bounded queues: each
//! IO thread Toeplitz-steers frames into one bounded SPSC RX ring per
//! worker, each worker feeds a bounded SPSC task ring toward the device
//! thread, and the device thread aggregates batches before launching a
//! kernel. Whether that network can deadlock or must drop under burst is
//! decidable from the configured depths alone, before any thread starts:
//!
//! * **Deadlock freedom** rests on two invariants: workers never block on
//!   a full task ring (they fall back to the CPU path inline), and the
//!   device thread can always assemble — or idle-flush — an aggregate.
//!   The latter is only *guaranteed* by the queue law
//!   `aggregate ≤ in-flight cap`: if a full aggregate needs more batches
//!   than the producers are ever allowed to have in flight, every offload
//!   depends on the idle-flush timeout path and the proof collapses
//!   (`NBA051`, an error).
//! * **Burst absorption**: RSS steering is flow-affine, so the worst-case
//!   burst sends an entire IO batch to a single worker while that worker
//!   is busy with a previous batch. A ring shallower than `2 × batch`
//!   cannot hold both, so it drops (NIC semantics) or stalls the IO
//!   thread (lossless drain mode) under a legal workload (`NBA050`).

use crate::lint::{Code, LintReport};
use crate::runtime::live::{LiveConfig, MAX_OUTSTANDING, TASK_RING_DEPTH};
use crate::runtime::RuntimeConfig;

/// The queue shape of one run, extracted from a runtime configuration.
/// All fields are clamped the same way the runtimes clamp them, so the
/// model checks the depths that will actually be allocated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CapacityModel {
    /// Worker threads (consumers of the RX rings).
    pub workers: usize,
    /// IO / steering threads (producers of the RX rings).
    pub io_threads: usize,
    /// Computation batch size (the burst quantum).
    pub batch: usize,
    /// Depth of each IO→worker SPSC RX ring.
    pub ring_depth: usize,
    /// Depth of each worker→device SPSC task ring.
    pub task_ring_depth: usize,
    /// Batches the device thread aggregates into one kernel launch.
    pub aggregate: usize,
    /// Total offloaded batches the producers may have in flight before
    /// they pause — the pool a full aggregate must fit into.
    pub inflight_cap: u64,
    /// Lossless ingress (a full RX ring blocks the IO thread instead of
    /// dropping); turns `NBA050` from a drop hazard into a stall hazard.
    pub lossless: bool,
}

impl CapacityModel {
    /// The queue shape of a live run, mirroring `live::run_core`'s
    /// allocation arithmetic (ring depth is raised to at least one batch;
    /// the in-flight cap is `workers × MAX_OUTSTANDING`).
    pub fn from_live(cfg: &LiveConfig) -> CapacityModel {
        let workers = cfg.workers.max(1);
        let batch = cfg.batch.max(1);
        CapacityModel {
            workers,
            io_threads: cfg.io_threads.max(1),
            batch,
            ring_depth: cfg.ring_capacity.max(batch),
            task_ring_depth: TASK_RING_DEPTH,
            aggregate: cfg.aggregate.max(1),
            inflight_cap: workers as u64 * MAX_OUTSTANDING,
            lossless: cfg.drain,
        }
    }

    /// The queue shape of a DES run: the RX descriptor ring plays the
    /// SPSC ring, the device backlog bound plays the in-flight cap, and
    /// the worker→device queue is unbounded in simulation.
    pub fn from_runtime(cfg: &RuntimeConfig) -> CapacityModel {
        CapacityModel {
            workers: cfg.workers_per_socket.max(1) as usize,
            io_threads: 1,
            batch: cfg.comp_batch.max(cfg.io_batch).max(1),
            ring_depth: cfg.rxq_depth.max(1),
            task_ring_depth: usize::MAX,
            aggregate: cfg.offload_aggregate.max(1),
            inflight_cap: cfg.device_backlog_batches as u64,
            lossless: false,
        }
    }
}

/// Runs the queue-law checks over one capacity model. Diagnostics carry
/// no node or source line — they indict the run configuration, not the
/// element graph.
pub fn check_capacity(model: &CapacityModel) -> LintReport {
    let mut report = LintReport::default();

    // NBA050: worst-case flow-affine burst bound. One batch may sit in
    // the ring while the IO thread steers the next full batch at the same
    // worker, so depth < 2 × batch loses (or stalls on) a legal burst.
    let burst = model.batch.saturating_mul(2);
    if model.ring_depth < burst {
        let consequence = if model.lossless {
            "stalls the IO thread (lossless drain mode)"
        } else {
            "drops packets at the ring (NIC semantics)"
        };
        report.push(
            Code::RingUnderBurst,
            format!(
                "RX ring depth {} is below the worst-case flow-affine burst bound \
                 {burst} (2 x batch {}): a single-flow burst {consequence}",
                model.ring_depth, model.batch
            ),
            None,
            None,
        );
    }

    // NBA051: the steering stage's deadlock-freedom proof. A full device
    // aggregate must fit within the batches the producers are allowed to
    // have in flight; otherwise a full aggregate can never assemble and
    // every offload round-trip hangs off the idle-flush timeout path.
    if model.aggregate as u64 > model.inflight_cap {
        report.push(
            Code::SteeringDeadlock,
            format!(
                "device aggregation {} exceeds the producers' total in-flight cap \
                 {} ({} worker(s)): a full aggregate can never assemble, so the \
                 steering stage cannot be proven deadlock-free",
                model.aggregate, model.inflight_cap, model.workers
            ),
            None,
            None,
        );
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint::Severity;

    fn live_defaults() -> CapacityModel {
        CapacityModel::from_live(&LiveConfig::default())
    }

    #[test]
    fn default_configs_are_clean() {
        assert!(check_capacity(&live_defaults()).is_clean());
        let des = CapacityModel::from_runtime(&RuntimeConfig::default());
        assert!(check_capacity(&des).is_clean());
    }

    #[test]
    fn shallow_ring_flags_nba050_once() {
        let m = CapacityModel {
            ring_depth: 64,
            batch: 64,
            ..live_defaults()
        };
        let r = check_capacity(&m);
        assert_eq!(r.with_code(Code::RingUnderBurst).count(), 1);
        assert_eq!(r.diagnostics[0].severity, Severity::Warn);
    }

    #[test]
    fn oversized_aggregate_flags_nba051_once() {
        let m = CapacityModel {
            aggregate: 1000,
            ..live_defaults()
        };
        let r = check_capacity(&m);
        assert_eq!(r.with_code(Code::SteeringDeadlock).count(), 1);
        assert!(r.has_errors());
    }

    #[test]
    fn zero_fields_clamp_instead_of_panicking() {
        let cfg = LiveConfig {
            workers: 0,
            batch: 0,
            io_threads: 0,
            ring_capacity: 0,
            aggregate: 0,
            ..LiveConfig::default()
        };
        let m = CapacityModel::from_live(&cfg);
        assert!(m.workers >= 1 && m.batch >= 1 && m.ring_depth >= 1);
        // Depth 1 < 2 x batch 1: still a (correct) burst warning.
        check_capacity(&m);
    }
}
