//! The intrusion detection system: Aho-Corasick signature matching plus
//! DFA-form regular expression matching (Figure 8d).
//!
//! `ACMatch` scans every payload against the rule set's literal patterns;
//! packets with a literal hit continue to `RegexMatch`, which confirms with
//! the rule's full regular expression — the standard prefilter structure of
//! Snort-class IDSes the paper builds on. `IDSAlert` counts alerts and
//! forwards traffic (a passive monitor).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use nba_core::batch::{anno, Anno, PacketResult};
use nba_core::element::{
    ComputeMode, DbInput, DbOutput, ElemCtx, Element, ElementEffects, KernelIo, OffloadSpec,
    Postprocess, SlotClaim,
};
use nba_io::proto::ether::ETHER_HDR_LEN;
use nba_io::Packet;
use nba_matcher::{AhoCorasick, Regex};
use nba_sim::{CpuProfile, GpuProfile};

/// Payload scanning starts after the Ethernet header (headers included in
/// the scan, as many Snort rules match on them too).
const SCAN_OFF: usize = ETHER_HDR_LEN;

/// A compiled rule set: literal signatures + regex rules.
pub struct RuleSet {
    /// Literal signatures (compiled into one automaton).
    pub patterns: Vec<Vec<u8>>,
    /// Regex rule sources.
    pub regex_sources: Vec<String>,
    ac: AhoCorasick,
    regexes: Vec<Regex>,
}

impl RuleSet {
    /// Compiles a rule set from literal patterns and regex sources.
    ///
    /// # Panics
    ///
    /// Panics if `patterns` is empty or a regex fails to compile (rule sets
    /// are program inputs, not network inputs).
    pub fn compile(patterns: Vec<Vec<u8>>, regex_sources: Vec<String>) -> RuleSet {
        let ac = AhoCorasick::new(&patterns);
        let regexes = regex_sources
            .iter()
            .map(|s| Regex::new(s).unwrap_or_else(|e| panic!("rule {s:?}: {e}")))
            .collect();
        RuleSet {
            patterns,
            regex_sources,
            ac,
            regexes,
        }
    }

    /// A synthetic Snort-like rule set: `n_literals` random signatures
    /// (8-24 bytes, includes the canonical `"ATTACK"` markers the tests
    /// plant) and `n_regexes` structured rules.
    pub fn synthetic(seed: u64, n_literals: usize, n_regexes: usize) -> RuleSet {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut patterns: Vec<Vec<u8>> = vec![b"ATTACK".to_vec(), b"EVILPATTERN".to_vec()];
        while patterns.len() < n_literals.max(2) {
            let len = rng.gen_range(8..=24);
            // Draw from a sub-alphabet distinct from the generator's a-z
            // payload filler so random traffic rarely false-positives.
            let p: Vec<u8> = (0..len)
                .map(|_| b"0123456789ABCDEFGHIJKLMNOPQRSTUVWXYZ_-"[rng.gen_range(0..38)])
                .collect();
            patterns.push(p);
        }
        let mut regex_sources = vec![
            r"ATTACK\d+".to_owned(),
            r"EVILPATTERN".to_owned(),
            r"GET /[\w/]+\.php".to_owned(),
        ];
        while regex_sources.len() < n_regexes.max(1) {
            let a = rng.gen_range(b'A'..=b'Z') as char;
            let b = rng.gen_range(b'A'..=b'Z') as char;
            regex_sources.push(format!("{a}{b}[0-9]{{4,8}}{a}"));
        }
        RuleSet::compile(patterns, regex_sources)
    }

    /// The literal-pattern automaton.
    pub fn ac(&self) -> &AhoCorasick {
        &self.ac
    }

    /// First matching regex index for a payload, if any.
    pub fn regex_match(&self, payload: &[u8]) -> Option<usize> {
        self.regexes.iter().position(|re| re.is_match(payload))
    }
}

impl std::fmt::Debug for RuleSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RuleSet")
            .field("literals", &self.patterns.len())
            .field("regexes", &self.regex_sources.len())
            .field("ac_states", &self.ac.state_count())
            .finish()
    }
}

/// Aho-Corasick signature matching over packet payloads (offloadable).
///
/// Writes the verdict (pattern index + 1, or 0) into the
/// [`anno::AC_MATCH`] annotation. Output port 0 carries clean packets,
/// port 1 packets with a literal hit (towards the regex confirmer).
pub struct ACMatch {
    rules: Arc<RuleSet>,
}

impl ACMatch {
    /// Creates the matcher over a shared rule set.
    pub fn new(rules: Arc<RuleSet>) -> ACMatch {
        ACMatch { rules }
    }
}

impl Element for ACMatch {
    fn class_name(&self) -> &'static str {
        "ACMatch"
    }

    // The CPU path writes the verdict; post_offload reads it back to pick
    // the output port (the GPU-path write is implicit via the spec).
    fn slot_claims(&self) -> &'static [SlotClaim] {
        const CLAIMS: &[SlotClaim] = &[
            SlotClaim::writes(anno::AC_MATCH),
            SlotClaim::reads(anno::AC_MATCH),
        ];
        CLAIMS
    }

    fn output_count(&self) -> usize {
        2
    }

    fn process(
        &mut self,
        ctx: &mut ElemCtx<'_>,
        pkt: &mut Packet,
        anno_set: &mut Anno,
    ) -> PacketResult {
        let verdict = if ctx.compute == ComputeMode::Full {
            let data = pkt.data();
            let payload = data.get(SCAN_OFF..).unwrap_or(&[]);
            self.rules
                .ac()
                .first_match(payload)
                .map_or(0, |m| m.pattern as u64 + 1)
        } else {
            0
        };
        anno_set.set(anno::AC_MATCH, verdict);
        PacketResult::Out(u8::from(verdict != 0))
    }

    fn cpu_profile(&self) -> CpuProfile {
        // One DFA transition per byte over a large (cache-hostile) table.
        CpuProfile {
            fixed_cycles: 500,
            cycles_per_byte: 45.0,
        }
    }

    fn offload(&self) -> Option<OffloadSpec> {
        let rules = self.rules.clone();
        Some(OffloadSpec {
            input: DbInput::WholePacket { offset: SCAN_OFF },
            output: DbOutput::PerItem { len: 8 },
            gpu: GpuProfile {
                // Per-lane DFA stepping over device memory.
                fixed_ns: 800.0,
                ns_per_byte: 180.0,
            },
            kernel: Arc::new(move |io: KernelIo<'_>| {
                for i in 0..io.items {
                    let v = rules
                        .ac()
                        .first_match(io.item_in(i))
                        .map_or(0u64, |m| m.pattern as u64 + 1);
                    let r = io.item_out_range(i);
                    io.output[r].copy_from_slice(&v.to_le_bytes());
                }
            }),
            heavy: true,
            postprocess: Postprocess::Annotation(anno::AC_MATCH),
        })
    }

    fn post_offload(&mut self, _: &mut ElemCtx<'_>, batch: &mut nba_core::batch::PacketBatch) {
        // Flagged packets take port 1 (towards the regex confirmer),
        // exactly like the CPU path.
        let live: Vec<usize> = batch.live_indices().collect();
        for i in live {
            let hit = batch.anno(i).get(anno::AC_MATCH) != 0;
            batch.set_result(i, PacketResult::Out(u8::from(hit)));
        }
    }
}

impl std::fmt::Debug for ACMatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ACMatch")
            .field("rules", &self.rules)
            .finish()
    }
}

/// Regex confirmation over packets flagged by [`ACMatch`] (offloadable).
pub struct RegexMatch {
    rules: Arc<RuleSet>,
}

impl RegexMatch {
    /// Creates the matcher over a shared rule set.
    pub fn new(rules: Arc<RuleSet>) -> RegexMatch {
        RegexMatch { rules }
    }
}

impl Element for RegexMatch {
    fn class_name(&self) -> &'static str {
        "RegexMatch"
    }

    fn slot_claims(&self) -> &'static [SlotClaim] {
        const CLAIMS: &[SlotClaim] = &[SlotClaim::writes(anno::RE_MATCH)];
        CLAIMS
    }

    fn process(
        &mut self,
        ctx: &mut ElemCtx<'_>,
        pkt: &mut Packet,
        anno_set: &mut Anno,
    ) -> PacketResult {
        let verdict = if ctx.compute == ComputeMode::Full {
            let data = pkt.data();
            let payload = data.get(SCAN_OFF..).unwrap_or(&[]);
            self.rules.regex_match(payload).map_or(0, |i| i as u64 + 1)
        } else {
            0
        };
        anno_set.set(anno::RE_MATCH, verdict);
        PacketResult::Out(0)
    }

    fn cpu_profile(&self) -> CpuProfile {
        // One DFA per rule in the worst case; the prefilter keeps the rate
        // low but flagged packets pay several scans.
        CpuProfile {
            fixed_cycles: 600,
            cycles_per_byte: 55.0,
        }
    }

    fn offload(&self) -> Option<OffloadSpec> {
        let rules = self.rules.clone();
        Some(OffloadSpec {
            input: DbInput::WholePacket { offset: SCAN_OFF },
            output: DbOutput::PerItem { len: 8 },
            gpu: GpuProfile {
                fixed_ns: 1_000.0,
                ns_per_byte: 220.0,
            },
            kernel: Arc::new(move |io: KernelIo<'_>| {
                for i in 0..io.items {
                    let v = rules
                        .regex_match(io.item_in(i))
                        .map_or(0u64, |i| i as u64 + 1);
                    let r = io.item_out_range(i);
                    io.output[r].copy_from_slice(&v.to_le_bytes());
                }
            }),
            heavy: true,
            postprocess: Postprocess::Annotation(anno::RE_MATCH),
        })
    }
}

impl std::fmt::Debug for RegexMatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RegexMatch")
            .field("rules", &self.rules)
            .finish()
    }
}

/// Counts alerts from the match annotations and forwards everything.
pub struct IDSAlert {
    /// Shared alert counters (literal hits, regex-confirmed hits).
    pub counters: Arc<AlertCounters>,
    ports: u16,
    next: u16,
}

/// Alert counters shared across worker replicas.
#[derive(Debug, Default)]
pub struct AlertCounters {
    /// Packets with a literal signature hit.
    pub literal_hits: AtomicU64,
    /// Packets confirmed by a regex rule.
    pub confirmed: AtomicU64,
}

impl IDSAlert {
    /// Creates the alert stage, forwarding round-robin over `ports`.
    ///
    /// # Panics
    ///
    /// Panics if `ports` is zero.
    pub fn new(counters: Arc<AlertCounters>, ports: u16) -> IDSAlert {
        assert!(ports > 0);
        IDSAlert {
            counters,
            ports,
            next: 0,
        }
    }
}

impl Element for IDSAlert {
    fn class_name(&self) -> &'static str {
        "IDSAlert"
    }

    fn slot_claims(&self) -> &'static [SlotClaim] {
        const CLAIMS: &[SlotClaim] = &[
            SlotClaim::reads(anno::AC_MATCH),
            SlotClaim::reads(anno::RE_MATCH),
            SlotClaim::writes(anno::IFACE_OUT),
        ];
        CLAIMS
    }

    fn process(
        &mut self,
        _: &mut ElemCtx<'_>,
        _: &mut Packet,
        anno_set: &mut Anno,
    ) -> PacketResult {
        if anno_set.get(anno::AC_MATCH) != 0 {
            self.counters.literal_hits.fetch_add(1, Ordering::Relaxed);
            if anno_set.get(anno::RE_MATCH) != 0 {
                self.counters.confirmed.fetch_add(1, Ordering::Relaxed);
            }
        }
        anno_set.set(anno::IFACE_OUT, u64::from(self.next));
        self.next = (self.next + 1) % self.ports;
        PacketResult::Out(0)
    }

    fn cpu_profile(&self) -> CpuProfile {
        CpuProfile::fixed(14)
    }

    // Both verdict slots default to 0 = "no hit", which this element
    // treats as a perfectly valid (quiet) verdict — reading them on a
    // path where no matcher ran is not a bug (clean-traffic fast path).
    fn effects(&self) -> ElementEffects {
        const OK: &[SlotClaim] = &[
            SlotClaim::reads(anno::AC_MATCH),
            SlotClaim::reads(anno::RE_MATCH),
        ];
        ElementEffects {
            default_ok: OK,
            ..ElementEffects::default()
        }
    }
}

impl std::fmt::Debug for IDSAlert {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "IDSAlert")
    }
}

/// Errors from [`parse_snort_rules`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleParseError {
    /// What went wrong.
    pub msg: String,
    /// 1-based line number.
    pub line: usize,
}

impl std::fmt::Display for RuleParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rule line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for RuleParseError {}

/// Parses a Snort-dialect rule file into a compiled [`RuleSet`].
///
/// Supported subset (what the matching engines consume):
///
/// ```text
/// # comment
/// alert tcp any any -> any 80 (msg:"demo"; content:"GET /admin"; \
///                              content:"|DE AD BE EF|"; pcre:"/id=\d+/";)
/// ```
///
/// Every `content` literal (with `|hex|` spans) joins the Aho-Corasick
/// pattern set; every `pcre` body joins the regex set. Other options are
/// accepted and ignored. Actions other than `alert`/`log`/`drop` are
/// rejected.
pub fn parse_snort_rules(text: &str) -> Result<RuleSet, RuleParseError> {
    let mut patterns: Vec<Vec<u8>> = Vec::new();
    let mut regexes: Vec<String> = Vec::new();
    for (lno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let lno = lno + 1;
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let action = line.split_whitespace().next().unwrap_or("");
        if !matches!(action, "alert" | "log" | "drop") {
            return Err(RuleParseError {
                msg: format!("unsupported action {action:?}"),
                line: lno,
            });
        }
        let Some(open) = line.find('(') else {
            return Err(RuleParseError {
                msg: "missing option block".to_owned(),
                line: lno,
            });
        };
        let Some(close) = line.rfind(')') else {
            return Err(RuleParseError {
                msg: "unterminated option block".to_owned(),
                line: lno,
            });
        };
        for opt in split_options(&line[open + 1..close]) {
            let opt = opt.trim();
            if let Some(rest) = opt.strip_prefix("content:") {
                let lit = unquote(rest).ok_or_else(|| RuleParseError {
                    msg: "content value must be quoted".to_owned(),
                    line: lno,
                })?;
                let bytes =
                    decode_content(&lit).map_err(|msg| RuleParseError { msg, line: lno })?;
                if bytes.is_empty() {
                    return Err(RuleParseError {
                        msg: "empty content".to_owned(),
                        line: lno,
                    });
                }
                patterns.push(bytes);
            } else if let Some(rest) = opt.strip_prefix("pcre:") {
                let body = unquote(rest).ok_or_else(|| RuleParseError {
                    msg: "pcre value must be quoted".to_owned(),
                    line: lno,
                })?;
                let body = body.strip_prefix('/').ok_or_else(|| RuleParseError {
                    msg: "pcre must start with '/'".to_owned(),
                    line: lno,
                })?;
                let Some(end) = body.rfind('/') else {
                    return Err(RuleParseError {
                        msg: "pcre missing closing '/'".to_owned(),
                        line: lno,
                    });
                };
                regexes.push(body[..end].to_owned());
            }
        }
    }
    if patterns.is_empty() {
        return Err(RuleParseError {
            msg: "no content patterns in rule file".to_owned(),
            line: 0,
        });
    }
    if regexes.is_empty() {
        // The IDS pipeline needs a confirmer stage; match-nothing default.
        regexes.push("$^".to_owned());
    }
    // Compile, converting regex errors into parse errors.
    for r in &regexes {
        if let Err(e) = nba_matcher::Regex::new(r) {
            return Err(RuleParseError {
                msg: format!("pcre {r:?}: {e}"),
                line: 0,
            });
        }
    }
    Ok(RuleSet::compile(patterns, regexes))
}

/// Splits an option block on ';', respecting quoted strings.
fn split_options(block: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut quoted = false;
    for c in block.chars() {
        match c {
            '"' => {
                quoted = !quoted;
                cur.push(c);
            }
            ';' if !quoted => {
                out.push(std::mem::take(&mut cur));
            }
            _ => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        out.push(cur);
    }
    out
}

/// Strips surrounding double quotes.
fn unquote(s: &str) -> Option<String> {
    let s = s.trim();
    s.strip_prefix('"')?.strip_suffix('"').map(str::to_owned)
}

/// Decodes a Snort content literal: plain bytes with `|DE AD|` hex spans.
fn decode_content(s: &str) -> Result<Vec<u8>, String> {
    let mut out = Vec::new();
    let mut rest = s;
    let mut in_hex = false;
    while !rest.is_empty() {
        match rest.find('|') {
            None if in_hex => return Err("unterminated |hex| span".to_owned()),
            None => {
                out.extend_from_slice(rest.as_bytes());
                break;
            }
            Some(pos) => {
                let (head, tail) = rest.split_at(pos);
                if in_hex {
                    for tok in head.split_whitespace() {
                        let b = u8::from_str_radix(tok, 16)
                            .map_err(|_| format!("bad hex byte {tok:?}"))?;
                        out.push(b);
                    }
                } else {
                    out.extend_from_slice(head.as_bytes());
                }
                in_hex = !in_hex;
                rest = &tail[1..];
            }
        }
    }
    if in_hex {
        return Err("unterminated |hex| span".to_owned());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{ctx_harness, run_one_anno};
    use nba_io::proto::FrameBuilder;

    fn frame_with_payload(payload: &[u8]) -> Packet {
        let len = 42 + payload.len();
        let mut f = vec![0u8; len];
        FrameBuilder::default().build_ipv4(&mut f, len, 1, 2);
        f[42..].copy_from_slice(payload);
        Packet::from_bytes(&f)
    }

    #[test]
    fn snort_rules_parse_and_match() {
        let rules = parse_snort_rules(
            r#"
            # demo rule set
            alert tcp any any -> any 80 (msg:"admin probe"; content:"GET /admin"; pcre:"/id=[0-9]+/";)
            alert udp any any -> any any (content:"|DE AD BE EF|"; sid:2;)
            drop ip any any -> any any (content:"X-Evil: yes";)
            "#,
        )
        .unwrap();
        assert_eq!(rules.patterns.len(), 3);
        assert!(rules.ac().is_match(b"GET /admin HTTP/1.1"));
        assert!(rules.ac().is_match(&[0x00, 0xde, 0xad, 0xbe, 0xef, 0x00]));
        assert!(rules.ac().is_match(b"junk X-Evil: yes junk"));
        assert!(!rules.ac().is_match(b"GET /index.html"));
        assert_eq!(rules.regex_match(b"GET /admin?id=42"), Some(0));
        assert_eq!(rules.regex_match(b"GET /admin?id=abc"), None);
    }

    #[test]
    fn snort_parser_reports_errors_with_lines() {
        let err = parse_snort_rules("permit tcp any any -> any any (content:\"x\";)").unwrap_err();
        assert!(err.msg.contains("unsupported action"), "{err}");
        assert_eq!(err.line, 1);

        let err = parse_snort_rules("alert tcp any any -> any any content:\"x\"").unwrap_err();
        assert!(err.msg.contains("option block"), "{err}");

        let err = parse_snort_rules("alert ip a a -> a a (content:\"|ZZ|\";)").unwrap_err();
        assert!(err.msg.contains("bad hex"), "{err}");

        let err = parse_snort_rules("alert ip a a -> a a (pcre:\"/ok/\";)").unwrap_err();
        assert!(err.msg.contains("no content"), "{err}");
    }

    #[test]
    fn snort_rules_without_pcre_get_noop_confirmer() {
        let rules = parse_snort_rules("alert ip a a -> a a (content:\"hit\";)").unwrap();
        assert!(rules.ac().is_match(b"a hit b"));
        // The synthetic never-matching confirmer rejects everything.
        assert_eq!(rules.regex_match(b"anything"), None);
    }

    #[test]
    fn literal_hit_flags_and_branches() {
        let rules = Arc::new(RuleSet::synthetic(1, 16, 4));
        let mut ac = ACMatch::new(rules);
        let (nls, insp) = ctx_harness();

        let mut clean = frame_with_payload(b"just ordinary chatter here....");
        let (r, a) = run_one_anno(&mut ac, &nls, &insp, &mut clean);
        assert_eq!(r, PacketResult::Out(0));
        assert_eq!(a.get(anno::AC_MATCH), 0);

        let mut evil = frame_with_payload(b"prefix ATTACK007 suffix padpad");
        let (r, a) = run_one_anno(&mut ac, &nls, &insp, &mut evil);
        assert_eq!(r, PacketResult::Out(1));
        assert_eq!(a.get(anno::AC_MATCH), 1); // "ATTACK" is pattern 0.
    }

    #[test]
    fn regex_confirms_attack_shape() {
        let rules = Arc::new(RuleSet::synthetic(1, 16, 4));
        let mut re = RegexMatch::new(rules);
        let (nls, insp) = ctx_harness();

        let mut confirmed = frame_with_payload(b"xx ATTACK1234 yy padding zz...");
        let (_, a) = run_one_anno(&mut re, &nls, &insp, &mut confirmed);
        assert_eq!(a.get(anno::RE_MATCH), 1); // "ATTACK\d+" is rule 0.

        // The literal alone (no digits) does not satisfy the regex.
        let mut partial = frame_with_payload(b"xx ATTACK without digits yy...");
        let (_, a) = run_one_anno(&mut re, &nls, &insp, &mut partial);
        assert_ne!(a.get(anno::RE_MATCH), 1);
    }

    #[test]
    fn alert_stage_counts() {
        let counters = Arc::new(AlertCounters::default());
        let mut alert = IDSAlert::new(counters.clone(), 4);
        let (nls, insp) = ctx_harness();
        let mut pkt = frame_with_payload(b"payload....................");
        // Clean packet.
        let (_, _) = run_one_anno(&mut alert, &nls, &insp, &mut pkt);
        // Literal-only.
        let mut ctxp = frame_with_payload(b"p");
        let mut a = Anno::default();
        a.set(anno::AC_MATCH, 3);
        let mut ectx = nba_core::element::ElemCtx {
            now: nba_sim::Time::ZERO,
            compute: ComputeMode::Full,
            nls: &nls,
            worker: 0,
            inspector: &insp,
        };
        alert.process(&mut ectx, &mut ctxp, &mut a);
        // Confirmed.
        a.set(anno::RE_MATCH, 1);
        alert.process(&mut ectx, &mut ctxp, &mut a);
        assert_eq!(counters.literal_hits.load(Ordering::Relaxed), 2);
        assert_eq!(counters.confirmed.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn kernels_match_cpu_verdicts() {
        let rules = Arc::new(RuleSet::synthetic(7, 32, 6));
        let ac = ACMatch::new(rules.clone());
        let re = RegexMatch::new(rules.clone());
        let payloads: Vec<Vec<u8>> = vec![
            b"nothing to see".to_vec(),
            b"zzz EVILPATTERN zzz".to_vec(),
            b"ATTACK42 and more".to_vec(),
            b"GET /index.php HTTP".to_vec(),
        ];
        for spec in [ac.offload().unwrap(), re.offload().unwrap()] {
            let seg_refs: Vec<&[u8]> = payloads.iter().map(|p| p.as_slice()).collect();
            let (staged, out_len) = KernelIo::stage(&seg_refs, &vec![8; payloads.len()]);
            let mut out = vec![0u8; out_len];
            (spec.kernel)(KernelIo::parse(&staged, &mut out));
            for (i, p) in payloads.iter().enumerate() {
                let got = u64::from_le_bytes(out[i * 8..i * 8 + 8].try_into().unwrap());
                let expect = match spec.postprocess {
                    Postprocess::Annotation(s) if s == anno::AC_MATCH => rules
                        .ac()
                        .first_match(p)
                        .map_or(0, |m| m.pattern as u64 + 1),
                    _ => rules.regex_match(p).map_or(0, |i| i as u64 + 1),
                };
                assert_eq!(got, expect, "payload {i}");
            }
        }
    }

    #[test]
    fn headers_only_mode_skips_matching() {
        let rules = Arc::new(RuleSet::synthetic(1, 8, 2));
        let mut ac = ACMatch::new(rules);
        let (nls, insp) = ctx_harness();
        let counters = Arc::new(nba_core::stats::Counters::default());
        let _ = counters;
        let mut pkt = frame_with_payload(b"ATTACK99");
        let mut ectx = nba_core::element::ElemCtx {
            now: nba_sim::Time::ZERO,
            compute: ComputeMode::HeadersOnly,
            nls: &nls,
            worker: 0,
            inspector: &insp,
        };
        let mut a = Anno::default();
        let r = ac.process(&mut ectx, &mut pkt, &mut a);
        assert_eq!(r, PacketResult::Out(0));
        assert_eq!(a.get(anno::AC_MATCH), 0);
    }
}
