//! `nba-lint`: the static pipeline verifier.
//!
//! NBA's design rests on invariants the Rust compiler cannot see: the
//! element graph must be a push-only DAG, the 7-slot cache-line annotation
//! layout ([`crate::batch::ANNO_SLOTS`]) is shared by the framework and
//! every element, offloadable elements declare datablock byte ranges the
//! device engine trusts blindly, and branch shapes decide whether
//! batch-level branch prediction pays off (§3.2–§3.3 of the paper). A
//! violation of any of them — a slot collision, a cycle, a stale datablock
//! range — surfaces as silent corruption or a hung worker at runtime.
//!
//! This module checks all of them at graph-load time, before any batch
//! flows:
//!
//! * **structural** — unreachable nodes, ports exceeding
//!   [`Element::output_count`], cycles, exit coverage, unconnected output
//!   ports, branch-policy/fan-out interactions,
//! * **semantic** — the annotation-slot registry built from
//!   [`Element::slot_claims`] plus implicit claims from
//!   [`Postprocess::Annotation`]: reserved-slot writes, write-write
//!   collisions between element classes, reads of never-written slots,
//! * **datablock** — conflicting byte-range declarations between
//!   consecutive [`OffloadSpec`]s and degenerate ranges.
//!
//! Every diagnostic carries a stable code (`NBA001`…), a severity, and —
//! when the graph came from configuration text via
//! [`crate::config::build_graph_checked`] — the Click-source line of the
//! offending declaration or connection. Both runtimes run [`preflight`]
//! before starting: `Error` refuses the graph, `Warn` logs.

use std::collections::{HashMap, HashSet};
use std::fmt;

use crate::batch::{anno, ANNO_SLOTS};
use crate::element::{
    DbInput, DbOutput, Element, OffloadSpec, Postprocess, SlotAccess, SlotClaim, SlotScope,
};
use crate::graph::{BranchPolicy, ElementGraph, NodeId, OutEdge};

/// How bad a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but runnable; runtimes log and continue.
    Warn,
    /// The graph is unsafe to run; runtimes refuse to start.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warn => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Stable diagnostic codes. The numeric ranges group the check families:
/// `NBA00x` structural, `NBA01x` annotation slots, `NBA02x` datablocks,
/// `NBA03x` branch shape. Codes are append-only — they appear in CI logs,
/// docs, and tests, so existing numbers never change meaning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Code {
    /// `NBA001` — element unreachable from the entry (or declared and
    /// never connected).
    UnreachableNode,
    /// `NBA002` — connection uses an output port the element lacks.
    PortArity,
    /// `NBA003` — cycle in the push-only element graph.
    Cycle,
    /// `NBA004` — no path from the entry to a `ToOutput` exit edge.
    NoExit,
    /// `NBA005` — multi-output element leaves a port unconnected (it
    /// silently defaults to the exit).
    UnconnectedPort,
    /// `NBA010` — slot claim outside the 7-slot annotation layout.
    SlotOutOfRange,
    /// `NBA011` — element writes a framework-reserved annotation slot.
    ReservedSlotWrite,
    /// `NBA012` — two element classes write the same annotation slot.
    SlotCollision,
    /// `NBA013` — element reads a slot nothing in the pipeline writes.
    SlotReadUnwritten,
    /// `NBA020` — size-changing datablock write overlaps the byte range a
    /// consecutive offloadable element declared.
    DatablockOverlap,
    /// `NBA021` — annotation postprocess truncates a result wider than
    /// the 8-byte slot.
    AnnotationTruncated,
    /// `NBA022` — datablock declares an empty byte range.
    EmptyDatablock,
    /// `NBA030` — branch under `SplitAlways` policy: every batch splits
    /// (the Figure 1 batch-split problem).
    BatchSplit,
    /// `NBA031` — wide fan-out under `Predict`: prediction covers one
    /// port, so most packets still split.
    WideFanOut,
    /// `NBA040` — path-sensitive: a slot read is not dominated by a write
    /// on some path from the entry (the offending path is printed as an
    /// element chain). Emitted by the deep verifier (`crate::verify`).
    PathReadUnwritten,
    /// `NBA041` — path-sensitive: an output port no abstract state can
    /// ever take (e.g. the "invalid" port of a validator whose fact
    /// already holds on every incoming path).
    DeadBranch,
    /// `NBA042` — path-sensitive: an edge from exit-reaching code into a
    /// subgraph from which no packet can reach `ToOutput` — traffic is
    /// silently blackholed (explicit `Discard` edges are exempt).
    BlackholePath,
    /// `NBA043` — path-sensitive: a header-dependent element is reachable
    /// before any validator establishes the fact it requires.
    HeaderBeforeValidation,
    /// `NBA050` — capacity: an SPSC ring's depth is below the worst-case
    /// flow-affine burst bound (2 × batch).
    RingUnderBurst,
    /// `NBA051` — capacity: the steering/offload stage violates the
    /// queue law that proves it deadlock-free (a full device aggregate
    /// can never assemble within the producers' in-flight caps).
    SteeringDeadlock,
}

impl Code {
    /// The stable code string (`"NBA001"`…).
    pub fn as_str(self) -> &'static str {
        match self {
            Code::UnreachableNode => "NBA001",
            Code::PortArity => "NBA002",
            Code::Cycle => "NBA003",
            Code::NoExit => "NBA004",
            Code::UnconnectedPort => "NBA005",
            Code::SlotOutOfRange => "NBA010",
            Code::ReservedSlotWrite => "NBA011",
            Code::SlotCollision => "NBA012",
            Code::SlotReadUnwritten => "NBA013",
            Code::DatablockOverlap => "NBA020",
            Code::AnnotationTruncated => "NBA021",
            Code::EmptyDatablock => "NBA022",
            Code::BatchSplit => "NBA030",
            Code::WideFanOut => "NBA031",
            Code::PathReadUnwritten => "NBA040",
            Code::DeadBranch => "NBA041",
            Code::BlackholePath => "NBA042",
            Code::HeaderBeforeValidation => "NBA043",
            Code::RingUnderBurst => "NBA050",
            Code::SteeringDeadlock => "NBA051",
        }
    }

    /// The default severity of this code. Diagnostics normally carry it
    /// verbatim; the deep verifier may *demote* a path-insensitive finding
    /// (NBA012/NBA013) to `Warn` after proving the conflict cannot occur
    /// on any single path — see [`Diagnostic::severity`].
    pub fn severity(self) -> Severity {
        match self {
            Code::UnreachableNode
            | Code::PortArity
            | Code::Cycle
            | Code::SlotOutOfRange
            | Code::ReservedSlotWrite
            | Code::SlotCollision
            | Code::DatablockOverlap
            | Code::SteeringDeadlock => Severity::Error,
            Code::NoExit
            | Code::UnconnectedPort
            | Code::SlotReadUnwritten
            | Code::AnnotationTruncated
            | Code::EmptyDatablock
            | Code::BatchSplit
            | Code::WideFanOut
            | Code::PathReadUnwritten
            | Code::DeadBranch
            | Code::BlackholePath
            | Code::HeaderBeforeValidation
            | Code::RingUnderBurst => Severity::Warn,
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One verifier finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code.
    pub code: Code,
    /// Severity. Usually `code.severity()`; the deep verifier demotes a
    /// path-insensitive `Error` to `Warn` when the fixpoint proves the
    /// flagged conflict lives on disjoint branches (so no packet can ever
    /// observe it) — the message gains a `[deep: ...]` suffix explaining
    /// the proof.
    pub severity: Severity,
    /// Human-readable description.
    pub message: String,
    /// Graph node the finding anchors to, if any.
    pub node: Option<usize>,
    /// Element class name of that node.
    pub element: Option<String>,
    /// Click-source line (1-based) when the graph came from configuration
    /// text; `None` for programmatically built graphs.
    pub line: Option<usize>,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.severity, self.code)?;
        if let Some(line) = self.line {
            write!(f, " line {line}")?;
        }
        write!(f, ": {}", self.message)?;
        match (&self.node, &self.element) {
            (Some(n), Some(e)) => write!(f, " (node {n}, {e})"),
            (Some(n), None) => write!(f, " (node {n})"),
            _ => Ok(()),
        }
    }
}

/// Maps graph nodes and connections back to configuration-source lines.
/// Produced by [`crate::config::build_graph_checked`]; a graph built
/// programmatically has none and its diagnostics carry node ids only.
#[derive(Debug, Clone, Default)]
pub struct SourceMap {
    /// Configuration name of each node (parallel to graph node ids).
    pub node_names: Vec<String>,
    /// Declaration line of each node (0 when unknown).
    pub node_lines: Vec<usize>,
    /// Line of the connection statement wiring `(node, port)`.
    pub conn_lines: HashMap<(usize, usize), usize>,
    /// `(node, port)` pairs the configuration explicitly connected.
    pub connected: HashSet<(usize, usize)>,
    /// Declared names never used by any connection: `(name, class, line)`.
    pub unused_decls: Vec<(String, String, usize)>,
}

impl SourceMap {
    fn node_line(&self, node: usize) -> Option<usize> {
        self.node_lines.get(node).copied().filter(|&l| l > 0)
    }

    fn conn_line(&self, node: usize, port: usize) -> Option<usize> {
        self.conn_lines.get(&(node, port)).copied()
    }

    /// The configuration name of `node`, if known.
    pub fn name(&self, node: usize) -> Option<&str> {
        self.node_names.get(node).map(String::as_str)
    }
}

/// Version of the JSON envelope [`LintReport::render_json`] emits. Bump on
/// any incompatible change to the rendered shape; the golden-file test
/// pins the bytes.
pub const SCHEMA_VERSION: u32 = 1;

/// All findings of one verification pass.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// Findings, in check order (structural, slots, datablocks, branches).
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// `true` when nothing was found (errors *or* warnings).
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// `true` when at least one `Error` finding exists.
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// The first `Error` finding, if any.
    pub fn first_error(&self) -> Option<&Diagnostic> {
        self.diagnostics
            .iter()
            .find(|d| d.severity == Severity::Error)
    }

    /// All `Warn` findings.
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warn)
    }

    /// Findings carrying `code`.
    pub fn with_code(&self, code: Code) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(move |d| d.code == code)
    }

    /// One line per finding, errors first.
    pub fn render_text(&self) -> String {
        let mut sorted: Vec<&Diagnostic> = self.diagnostics.iter().collect();
        sorted.sort_by_key(|d| std::cmp::Reverse(d.severity));
        let mut out = String::new();
        for d in sorted {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out
    }

    /// The whole report as one JSON object (machine-readable `--check` /
    /// `nba-lint` output; dependency-free like the telemetry exporters).
    /// The envelope carries [`SCHEMA_VERSION`] so consumers can detect
    /// format changes; the exact bytes are pinned by a golden-file test
    /// (`crates/core/tests/lint_json_golden.rs`).
    pub fn render_json(&self) -> String {
        let mut out = format!("{{\"schema_version\":{SCHEMA_VERSION},\"diagnostics\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"code\":\"{}\",\"severity\":\"{}\",\"message\":\"{}\"",
                d.code,
                d.severity,
                crate::telemetry::json_escape(&d.message),
            ));
            if let Some(n) = d.node {
                out.push_str(&format!(",\"node\":{n}"));
            }
            if let Some(e) = &d.element {
                out.push_str(&format!(
                    ",\"element\":\"{}\"",
                    crate::telemetry::json_escape(e)
                ));
            }
            if let Some(l) = d.line {
                out.push_str(&format!(",\"line\":{l}"));
            }
            out.push('}');
        }
        out.push_str("]}\n");
        out
    }

    pub(crate) fn push(
        &mut self,
        code: Code,
        message: String,
        node: Option<usize>,
        line: Option<usize>,
    ) {
        self.diagnostics.push(Diagnostic {
            code,
            severity: code.severity(),
            message,
            node,
            element: None,
            line,
        });
    }
}

/// Runtime preflight: logs warnings to stderr and **panics** — refusing to
/// start — when the graph fails verification at `Error` severity. Both the
/// DES and live runtimes call this on the first pipeline replica before
/// any batch flows.
pub fn preflight(graph: &ElementGraph) {
    let report = graph.verify();
    for w in report.warnings() {
        eprintln!("nba-lint: {w}");
    }
    if report.has_errors() {
        panic!(
            "pipeline failed static verification (nba-lint):\n{}",
            report.render_text()
        );
    }
}

/// Runs every check over `graph`. With a [`SourceMap`] (configuration
/// path), diagnostics carry source lines and configuration-only checks
/// (unused declarations, unconnected ports) run too.
pub fn verify_graph(graph: &ElementGraph, src: Option<&SourceMap>) -> LintReport {
    let mut report = LintReport::default();
    let n = graph.len();
    let entry = graph.entry_node();

    // Fill in element class names at the end; checks record node ids.
    let class = |i: usize| graph.element(NodeId(i)).class_name();
    let node_line = |i: usize| src.and_then(|s| s.node_line(i));
    let label = |i: usize| -> String {
        match src.and_then(|s| s.name(i)) {
            Some(name) => format!("{name:?} ({})", class(i)),
            None => class(i).to_string(),
        }
    };

    // --- Structural: reachability, cycles, exit coverage -----------------

    let out_ports = |i: usize| graph.element(NodeId(i)).output_count().max(1);
    let edges = |i: usize| -> Vec<OutEdge> {
        (0..out_ports(i))
            .filter_map(|p| graph.out_edge(NodeId(i), p))
            .collect()
    };

    let mut reachable = vec![false; n];
    let mut stack = vec![entry.0];
    let mut exit_reachable = false;
    while let Some(i) = stack.pop() {
        if std::mem::replace(&mut reachable[i], true) {
            continue;
        }
        for e in edges(i) {
            match e {
                OutEdge::Node(m) => stack.push(m.0),
                OutEdge::Exit => exit_reachable = true,
                OutEdge::Discard => {}
            }
        }
    }
    for (i, r) in reachable.iter().enumerate() {
        if !r {
            report.push(
                Code::UnreachableNode,
                format!("element {} is unreachable from the entry", label(i)),
                Some(i),
                node_line(i),
            );
        }
    }
    if let Some(s) = src {
        for (name, cls, line) in &s.unused_decls {
            report.push(
                Code::UnreachableNode,
                format!("declared element {name:?} ({cls}) is never connected"),
                None,
                Some(*line),
            );
        }
    }
    if !exit_reachable {
        report.push(
            Code::NoExit,
            "no path from the entry reaches ToOutput; every packet is dropped".to_owned(),
            Some(entry.0),
            node_line(entry.0),
        );
    }

    // Cycle detection: iterative DFS with colors (0 = white, 1 = on the
    // stack, 2 = done). The traversal worklist would loop forever on a
    // cycle, so this is an Error.
    let mut color = vec![0u8; n];
    for start in 0..n {
        if color[start] != 0 || !reachable[start] {
            continue;
        }
        // (node, next edge index) — explicit stack to avoid recursion.
        let mut dfs: Vec<(usize, usize)> = vec![(start, 0)];
        color[start] = 1;
        while let Some(&(i, next)) = dfs.last() {
            let es = edges(i);
            if next >= es.len() {
                color[i] = 2;
                dfs.pop();
                continue;
            }
            dfs.last_mut().unwrap().1 += 1;
            if let OutEdge::Node(m) = es[next] {
                match color[m.0] {
                    0 => {
                        color[m.0] = 1;
                        dfs.push((m.0, 0));
                    }
                    1 => {
                        let line = src
                            .and_then(|s| s.conn_line(i, next))
                            .or_else(|| node_line(m.0));
                        report.push(
                            Code::Cycle,
                            format!(
                                "cycle: {} port {next} feeds back into {} (push-only \
                                 graphs must be acyclic)",
                                label(i),
                                label(m.0)
                            ),
                            Some(m.0),
                            line,
                        );
                    }
                    _ => {}
                }
            }
        }
    }

    // Unconnected ports (configuration path only: programmatic builders
    // default ports to the exit on purpose).
    if let Some(s) = src {
        for i in 0..n {
            let ports = out_ports(i);
            if ports < 2 {
                continue;
            }
            for p in 0..ports {
                if !s.connected.contains(&(i, p)) {
                    report.push(
                        Code::UnconnectedPort,
                        format!(
                            "output port {p} of {} is not connected and silently \
                             defaults to ToOutput",
                            label(i)
                        ),
                        Some(i),
                        node_line(i),
                    );
                }
            }
        }
    }

    // --- Semantic: the annotation-slot registry --------------------------

    // Gather explicit claims plus the implicit write claim of an
    // offloadable element's annotation postprocess.
    let claims_of = |i: usize| -> Vec<SlotClaim> {
        let el: &dyn Element = graph.element(NodeId(i));
        let mut claims: Vec<SlotClaim> = el.slot_claims().to_vec();
        if let Some(spec) = el.offload() {
            if let Postprocess::Annotation(slot) = spec.postprocess {
                let implicit = SlotClaim::writes(slot);
                if !claims.contains(&implicit) {
                    claims.push(implicit);
                }
            }
        }
        claims
    };

    // (scope, slot) -> writers as (node, class).
    let mut writers: HashMap<(SlotScope, usize), Vec<(usize, &'static str)>> = HashMap::new();
    for i in 0..n {
        for c in claims_of(i) {
            if c.slot >= ANNO_SLOTS {
                report.push(
                    Code::SlotOutOfRange,
                    format!(
                        "{} claims {:?} slot {} but the annotation layout has {} slots",
                        label(i),
                        c.scope,
                        c.slot,
                        ANNO_SLOTS
                    ),
                    Some(i),
                    node_line(i),
                );
                continue;
            }
            if c.access == SlotAccess::Write {
                let reserved = match c.scope {
                    SlotScope::Packet => anno::RESERVED_PACKET_WRITES,
                    SlotScope::Batch => anno::RESERVED_BATCH_WRITES,
                };
                if reserved.contains(&c.slot) {
                    report.push(
                        Code::ReservedSlotWrite,
                        format!(
                            "{} writes framework-reserved {:?} slot {}",
                            label(i),
                            c.scope,
                            c.slot
                        ),
                        Some(i),
                        node_line(i),
                    );
                }
                writers
                    .entry((c.scope, c.slot))
                    .or_default()
                    .push((i, class(i)));
            }
        }
    }

    // Write-write collisions: two *different* classes writing one slot in
    // one pipeline means the later stage silently clobbers the earlier
    // one's state (instances of the same class are presumed compatible —
    // replicated stages write the same meaning).
    let mut collision_keys: Vec<(SlotScope, usize)> = writers.keys().copied().collect();
    collision_keys.sort_by_key(|&(s, slot)| (s == SlotScope::Batch, slot));
    for key in collision_keys {
        let ws = &writers[&key];
        let classes: Vec<&'static str> = {
            let mut cs: Vec<&'static str> = ws.iter().map(|&(_, c)| c).collect();
            cs.sort_unstable();
            cs.dedup();
            cs
        };
        if classes.len() >= 2 {
            let at = ws.iter().map(|&(i, _)| i).max().unwrap_or(0);
            report.push(
                Code::SlotCollision,
                format!(
                    "{:?} slot {} is written by multiple element classes: {}",
                    key.0,
                    key.1,
                    classes.join(", ")
                ),
                Some(at),
                node_line(at),
            );
        }
    }

    // Reads of never-written slots (graph-level approximation: any writer
    // anywhere in the pipeline satisfies the read, path-insensitively).
    for i in 0..n {
        for c in claims_of(i) {
            if c.access != SlotAccess::Read || c.slot >= ANNO_SLOTS {
                continue;
            }
            let seeded = c.scope == SlotScope::Packet && anno::FRAMEWORK_SEEDED.contains(&c.slot);
            let written = writers.contains_key(&(c.scope, c.slot));
            if !seeded && !written {
                report.push(
                    Code::SlotReadUnwritten,
                    format!(
                        "{} reads {:?} slot {} but nothing in this pipeline writes it",
                        label(i),
                        c.scope,
                        c.slot
                    ),
                    Some(i),
                    node_line(i),
                );
            }
        }
    }

    // --- Datablocks: byte-range conflicts between consecutive specs ------

    let spec_of = |i: usize| -> Option<OffloadSpec> { graph.element(NodeId(i)).offload() };
    for i in 0..n {
        let Some(spec) = spec_of(i) else { continue };

        // Degenerate ranges: a datablock that gathers or produces nothing.
        if let DbInput::PartialPacket { len: 0, .. } = spec.input {
            report.push(
                Code::EmptyDatablock,
                format!("{} declares a zero-length input datablock range", label(i)),
                Some(i),
                node_line(i),
            );
        }
        if let DbOutput::PerItem { len } = spec.output {
            if len == 0 {
                report.push(
                    Code::EmptyDatablock,
                    format!("{} declares a zero-length per-item output", label(i)),
                    Some(i),
                    node_line(i),
                );
            } else if len > 8 && matches!(spec.postprocess, Postprocess::Annotation(_)) {
                report.push(
                    Code::AnnotationTruncated,
                    format!(
                        "{} scatters {len}-byte items into an 8-byte annotation \
                         slot; results are truncated",
                        label(i)
                    ),
                    Some(i),
                    node_line(i),
                );
            }
        }

        // Consecutive offloadable elements: a size-changing in-place write
        // shifts every byte at or after its range start, so a downstream
        // spec whose declared range touches that region reads stale
        // offsets (and defeats GPU-resident datablock reuse).
        let grows = matches!(spec.output, DbOutput::InPlace { extra } if extra > 0);
        if !grows {
            continue;
        }
        let up_start = match spec.input {
            DbInput::PartialPacket { offset, .. } | DbInput::WholePacket { offset } => offset,
        };
        for p in 0..out_ports(i) {
            let Some(OutEdge::Node(m)) = graph.out_edge(NodeId(i), p) else {
                continue;
            };
            let Some(next) = spec_of(m.0) else { continue };
            // Downstream's declared end (None = to end of frame).
            let down_end = match next.input {
                DbInput::PartialPacket { offset, len } => Some(offset + len),
                DbInput::WholePacket { .. } => None,
            };
            let conflicts = down_end.is_none_or(|e| e > up_start);
            if conflicts {
                let line = src
                    .and_then(|s| s.node_line(m.0))
                    .or_else(|| src.and_then(|s| s.conn_line(i, p)));
                report.push(
                    Code::DatablockOverlap,
                    format!(
                        "{} rewrites packet bytes from offset {up_start} with a size \
                         delta, but consecutive offloadable {} declares a datablock \
                         range over those bytes",
                        label(i),
                        label(m.0)
                    ),
                    Some(m.0),
                    line,
                );
            }
        }
    }

    // --- Branch shape vs. policy (the batch-split problem, Figure 1) -----

    for (i, _) in reachable.iter().enumerate().filter(|&(_, &r)| r) {
        let real: usize = edges(i)
            .into_iter()
            .filter(|&e| e != OutEdge::Discard)
            .count();
        if real >= 2 && graph.branch_policy() == BranchPolicy::SplitAlways {
            report.push(
                Code::BatchSplit,
                format!(
                    "{} branches over {real} ports under SplitAlways: every batch is \
                     reorganized (the batch-split problem); consider Predict",
                    label(i)
                ),
                Some(i),
                node_line(i),
            );
        } else if real >= 3 && graph.branch_policy() == BranchPolicy::Predict {
            report.push(
                Code::WideFanOut,
                format!(
                    "{} fans out over {real} ports: branch prediction reuses the batch \
                     for one port only, so most packets split anyway",
                    label(i)
                ),
                Some(i),
                node_line(i),
            );
        }
    }

    // Attach element class names to node-anchored diagnostics.
    for d in &mut report.diagnostics {
        if let Some(i) = d.node {
            if d.element.is_none() {
                d.element = Some(class(i).to_owned());
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::{Anno, PacketResult};
    use crate::element::{DbInput, DbOutput, ElemCtx, KernelIo, OffloadSpec, Postprocess};
    use crate::graph::GraphBuilder;
    use nba_io::Packet;
    use nba_sim::GpuProfile;
    use std::sync::Arc;

    struct Probe {
        name: &'static str,
        ports: usize,
        claims: &'static [SlotClaim],
        spec: Option<OffloadSpec>,
    }

    impl Probe {
        fn new(name: &'static str) -> Probe {
            Probe {
                name,
                ports: 1,
                claims: &[],
                spec: None,
            }
        }
    }

    impl Element for Probe {
        fn class_name(&self) -> &'static str {
            self.name
        }
        fn output_count(&self) -> usize {
            self.ports
        }
        fn slot_claims(&self) -> &'static [SlotClaim] {
            self.claims
        }
        fn offload(&self) -> Option<OffloadSpec> {
            self.spec.clone()
        }
        fn process(&mut self, _: &mut ElemCtx<'_>, _: &mut Packet, _: &mut Anno) -> PacketResult {
            PacketResult::Out(0)
        }
    }

    fn noop_kernel() -> crate::element::Kernel {
        Arc::new(|_: KernelIo<'_>| {})
    }

    fn spec(input: DbInput, output: DbOutput, post: Postprocess) -> OffloadSpec {
        OffloadSpec {
            input,
            output,
            gpu: GpuProfile::default(),
            kernel: noop_kernel(),
            heavy: false,
            postprocess: post,
        }
    }

    fn codes(report: &LintReport) -> Vec<&'static str> {
        report.diagnostics.iter().map(|d| d.code.as_str()).collect()
    }

    #[test]
    fn clean_linear_graph_verifies() {
        let mut gb = GraphBuilder::new();
        let a = gb.add(Box::new(Probe::new("A")));
        let b = gb.add(Box::new(Probe::new("B")));
        gb.connect(a, 0, b);
        gb.connect_exit(b, 0);
        let g = gb.build().unwrap();
        let report = g.verify();
        assert!(report.is_clean(), "{}", report.render_text());
    }

    #[test]
    fn cycle_is_an_error() {
        let mut gb = GraphBuilder::new();
        let a = gb.add(Box::new(Probe::new("A")));
        let b = gb.add(Box::new(Probe::new("B")));
        gb.connect(a, 0, b);
        gb.connect(b, 0, a);
        let g = gb.build().unwrap();
        let report = g.verify();
        assert!(report.has_errors());
        assert!(codes(&report).contains(&"NBA003"), "{:?}", codes(&report));
    }

    #[test]
    fn unreachable_node_is_an_error() {
        let mut gb = GraphBuilder::new();
        let a = gb.add(Box::new(Probe::new("A")));
        let _orphan = gb.add(Box::new(Probe::new("Orphan")));
        gb.connect_exit(a, 0);
        gb.entry(a);
        let g = gb.build().unwrap();
        let report = g.verify();
        let d = report.with_code(Code::UnreachableNode).next().unwrap();
        assert_eq!(d.node, Some(1));
        assert_eq!(d.element.as_deref(), Some("Orphan"));
    }

    #[test]
    fn reserved_write_and_collision_and_unwritten_read() {
        static W_TS: &[SlotClaim] = &[SlotClaim::writes(anno::TIMESTAMP)];
        static W5_A: &[SlotClaim] = &[SlotClaim::writes(5)];
        static W5_B: &[SlotClaim] = &[SlotClaim::writes(5)];
        static R4: &[SlotClaim] = &[SlotClaim::reads(4)];
        let mut gb = GraphBuilder::new();
        let a = gb.add(Box::new(Probe {
            claims: W_TS,
            ..Probe::new("A")
        }));
        let b = gb.add(Box::new(Probe {
            claims: W5_A,
            ..Probe::new("B")
        }));
        let c = gb.add(Box::new(Probe {
            claims: W5_B,
            ..Probe::new("C")
        }));
        let d = gb.add(Box::new(Probe {
            claims: R4,
            ..Probe::new("D")
        }));
        gb.connect(a, 0, b);
        gb.connect(b, 0, c);
        gb.connect(c, 0, d);
        gb.connect_exit(d, 0);
        let g = gb.build().unwrap();
        let report = g.verify();
        let cs = codes(&report);
        assert!(cs.contains(&"NBA011"), "{cs:?}");
        assert!(cs.contains(&"NBA012"), "{cs:?}");
        assert!(cs.contains(&"NBA013"), "{cs:?}");
    }

    #[test]
    fn same_class_writers_do_not_collide() {
        static W5: &[SlotClaim] = &[SlotClaim::writes(5)];
        let mut gb = GraphBuilder::new();
        let a = gb.add(Box::new(Probe {
            claims: W5,
            ..Probe::new("Same")
        }));
        let b = gb.add(Box::new(Probe {
            claims: W5,
            ..Probe::new("Same")
        }));
        gb.connect(a, 0, b);
        gb.connect_exit(b, 0);
        let g = gb.build().unwrap();
        assert_eq!(g.verify().with_code(Code::SlotCollision).count(), 0);
    }

    #[test]
    fn size_delta_overlap_is_an_error() {
        let grow = spec(
            DbInput::WholePacket { offset: 14 },
            DbOutput::InPlace { extra: 16 },
            Postprocess::WriteBack,
        );
        let read = spec(
            DbInput::WholePacket { offset: 14 },
            DbOutput::InPlace { extra: 0 },
            Postprocess::WriteBack,
        );
        let mut gb = GraphBuilder::new();
        let a = gb.add(Box::new(Probe {
            spec: Some(grow),
            ..Probe::new("Grow")
        }));
        let b = gb.add(Box::new(Probe {
            spec: Some(read),
            ..Probe::new("Read")
        }));
        gb.connect(a, 0, b);
        gb.connect_exit(b, 0);
        let g = gb.build().unwrap();
        let report = g.verify();
        assert!(codes(&report).contains(&"NBA020"), "{:?}", codes(&report));
        // The non-growing pair in the other order is fine.
        let read2 = spec(
            DbInput::WholePacket { offset: 14 },
            DbOutput::InPlace { extra: 0 },
            Postprocess::WriteBack,
        );
        let read3 = spec(
            DbInput::WholePacket { offset: 14 },
            DbOutput::InPlace { extra: 0 },
            Postprocess::WriteBack,
        );
        let mut gb = GraphBuilder::new();
        let a = gb.add(Box::new(Probe {
            spec: Some(read2),
            ..Probe::new("A")
        }));
        let b = gb.add(Box::new(Probe {
            spec: Some(read3),
            ..Probe::new("B")
        }));
        gb.connect(a, 0, b);
        gb.connect_exit(b, 0);
        let g = gb.build().unwrap();
        assert_eq!(g.verify().with_code(Code::DatablockOverlap).count(), 0);
    }

    #[test]
    fn split_always_branch_warns() {
        let mut gb = GraphBuilder::new();
        gb.branch_policy(BranchPolicy::SplitAlways);
        let a = gb.add(Box::new(Probe {
            ports: 2,
            ..Probe::new("Branch")
        }));
        let l = gb.add(Box::new(Probe::new("L")));
        let r = gb.add(Box::new(Probe::new("R")));
        gb.connect(a, 0, l);
        gb.connect(a, 1, r);
        gb.connect_exit(l, 0);
        gb.connect_exit(r, 0);
        let g = gb.build().unwrap();
        let report = g.verify();
        assert!(!report.has_errors());
        assert_eq!(report.with_code(Code::BatchSplit).count(), 1);
    }

    #[test]
    fn truncated_annotation_warns() {
        let wide = spec(
            DbInput::WholePacket { offset: 0 },
            DbOutput::PerItem { len: 16 },
            Postprocess::Annotation(4),
        );
        let mut gb = GraphBuilder::new();
        let a = gb.add(Box::new(Probe {
            spec: Some(wide),
            ..Probe::new("Wide")
        }));
        gb.connect_exit(a, 0);
        let g = gb.build().unwrap();
        assert_eq!(g.verify().with_code(Code::AnnotationTruncated).count(), 1);
    }

    #[test]
    fn report_renders_text_and_json() {
        let mut gb = GraphBuilder::new();
        let a = gb.add(Box::new(Probe::new("A")));
        let b = gb.add(Box::new(Probe::new("B")));
        gb.connect(a, 0, b);
        gb.connect(b, 0, a);
        let g = gb.build().unwrap();
        let report = g.verify();
        let text = report.render_text();
        assert!(text.contains("error[NBA003]"), "{text}");
        let json = report.render_json();
        assert!(json.contains("\"code\":\"NBA003\""), "{json}");
        assert!(
            json.starts_with(&format!(
                "{{\"schema_version\":{SCHEMA_VERSION},\"diagnostics\":["
            )),
            "{json}"
        );
        assert!(json.trim_end().ends_with("]}"), "{json}");
    }
}
