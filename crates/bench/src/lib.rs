//! `nba-bench`: the harness that regenerates every table and figure of the
//! paper's evaluation (§4) on the simulated testbed.
//!
//! * [`experiments`] — one function per figure/table, each printing the
//!   rows the paper plots and returning them for shape assertions,
//! * [`report`] — versioned `BENCH_*.json` benchmark artifacts and the
//!   regression gate (`nba-bench run` / `nba-bench compare`),
//! * `benches/figures.rs` (`cargo bench`) runs all of them,
//! * `src/bin/repro.rs` runs a single one (`cargo run -p nba-bench --bin
//!   repro -- fig12`).

#![forbid(unsafe_code)]

pub mod experiments;
pub mod report;
pub mod table;
