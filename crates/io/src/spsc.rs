//! Bounded single-producer/single-consumer rings — the DPDK `rte_ring`
//! stand-in that connects each RX queue to exactly one worker thread.
//!
//! NBA's data plane never shares a queue between threads: the NIC steers a
//! packet to one RX queue (RSS) and exactly one worker drains that queue, so
//! every ring has one producer and one consumer by construction. That
//! protocol is encoded in the types here: [`channel`] hands back a
//! [`Producer`]/[`Consumer`] pair and neither half is `Clone`, so the
//! single-producer/single-consumer discipline is enforced at compile time.
//!
//! The implementation keeps the classic lock-free shape — two monotonically
//! increasing cursors (`head` for the consumer, `tail` for the producer),
//! each written by exactly one side and read by the other with
//! acquire/release ordering — plus per-slot `Mutex<Option<T>>` cells for the
//! payload hand-off. The workspace forbids `unsafe`, so the slot cells use a
//! mutex instead of `UnsafeCell`; under the SPSC protocol each slot lock is
//! provably uncontended (the producer only touches a slot the cursors show
//! as empty, the consumer only one they show as full), so `lock()` never
//! blocks and the cursors remain the only cross-thread synchronization that
//! matters.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

struct Inner<T> {
    slots: Box<[Mutex<Option<T>>]>,
    /// Consumer cursor: next slot index to pop. Monotonic, wraps via `% cap`.
    head: AtomicUsize,
    /// Producer cursor: next slot index to push. Monotonic, wraps via `% cap`.
    tail: AtomicUsize,
    /// Set when the producer is dropped; the consumer drains then reports
    /// disconnection.
    closed: AtomicBool,
}

/// The sending half of a bounded SPSC ring. Not `Clone`; dropping it closes
/// the ring.
pub struct Producer<T> {
    inner: Arc<Inner<T>>,
}

/// The receiving half of a bounded SPSC ring. Not `Clone`.
pub struct Consumer<T> {
    inner: Arc<Inner<T>>,
}

/// Creates a bounded SPSC ring holding at most `capacity` items.
///
/// # Panics
/// Panics if `capacity` is zero.
pub fn channel<T>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    assert!(capacity > 0, "spsc ring capacity must be non-zero");
    let slots = (0..capacity).map(|_| Mutex::new(None)).collect();
    let inner = Arc::new(Inner {
        slots,
        head: AtomicUsize::new(0),
        tail: AtomicUsize::new(0),
        closed: AtomicBool::new(false),
    });
    (
        Producer {
            inner: Arc::clone(&inner),
        },
        Consumer { inner },
    )
}

impl<T> Producer<T> {
    /// Enqueues `v`, or returns it back when the ring is full.
    pub fn push(&self, v: T) -> Result<(), T> {
        let inner = &self.inner;
        let tail = inner.tail.load(Ordering::Relaxed);
        let head = inner.head.load(Ordering::Acquire);
        if tail - head == inner.slots.len() {
            return Err(v);
        }
        // Uncontended by protocol: the consumer will not touch this slot
        // until it observes the tail advance below.
        *inner.slots[tail % inner.slots.len()]
            .lock()
            .expect("spsc slot poisoned") = Some(v);
        inner.tail.store(tail + 1, Ordering::Release);
        Ok(())
    }

    /// Number of items currently queued.
    pub fn len(&self) -> usize {
        let tail = self.inner.tail.load(Ordering::Relaxed);
        let head = self.inner.head.load(Ordering::Acquire);
        tail - head
    }

    /// True when no items are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total slot count.
    pub fn capacity(&self) -> usize {
        self.inner.slots.len()
    }
}

impl<T> Drop for Producer<T> {
    fn drop(&mut self) {
        self.inner.closed.store(true, Ordering::Release);
    }
}

impl<T> Consumer<T> {
    /// Dequeues the oldest item, or `None` when the ring is currently empty.
    pub fn pop(&self) -> Option<T> {
        let inner = &self.inner;
        let head = inner.head.load(Ordering::Relaxed);
        let tail = inner.tail.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        let v = inner.slots[head % inner.slots.len()]
            .lock()
            .expect("spsc slot poisoned")
            .take();
        inner.head.store(head + 1, Ordering::Release);
        v
    }

    /// Number of items currently queued.
    pub fn len(&self) -> usize {
        let head = self.inner.head.load(Ordering::Relaxed);
        let tail = self.inner.tail.load(Ordering::Acquire);
        tail - head
    }

    /// True when no items are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when the producer is gone AND the ring is drained — the
    /// consumer's termination condition.
    pub fn is_disconnected(&self) -> bool {
        // Order matters: check closed before emptiness so a push racing the
        // producer's drop is never missed (close happens-after the last
        // push's release store).
        self.inner.closed.load(Ordering::Acquire) && self.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_and_capacity_bound() {
        let (tx, rx) = channel(4);
        for i in 0..4 {
            tx.push(i).unwrap();
        }
        assert_eq!(tx.push(99), Err(99), "5th push must report full");
        assert_eq!(tx.len(), 4);
        for i in 0..4 {
            assert_eq!(rx.pop(), Some(i));
        }
        assert_eq!(rx.pop(), None);
    }

    #[test]
    fn wraps_around_many_times() {
        let (tx, rx) = channel(3);
        for i in 0..1000u32 {
            tx.push(i).unwrap();
            assert_eq!(rx.pop(), Some(i));
        }
        assert!(rx.is_empty());
    }

    #[test]
    fn disconnect_after_drain() {
        let (tx, rx) = channel::<u32>(8);
        tx.push(1).unwrap();
        drop(tx);
        assert!(!rx.is_disconnected(), "still holds an item");
        assert_eq!(rx.pop(), Some(1));
        assert!(rx.is_disconnected());
        assert_eq!(rx.pop(), None);
    }

    #[test]
    fn cross_thread_stress_preserves_sequence() {
        let (tx, rx) = channel::<u64>(64);
        const N: u64 = 200_000;
        let producer = std::thread::spawn(move || {
            let mut next = 0u64;
            while next < N {
                match tx.push(next) {
                    Ok(()) => next += 1,
                    Err(_) => std::thread::yield_now(),
                }
            }
        });
        let mut expect = 0u64;
        while expect < N {
            match rx.pop() {
                Some(v) => {
                    assert_eq!(v, expect, "ring reordered or duplicated");
                    expect += 1;
                }
                None => std::thread::yield_now(),
            }
        }
        producer.join().unwrap();
        assert!(rx.is_disconnected());
    }
}
