//! Virtual time for the discrete-event engine.
//!
//! Time is counted in integer **picoseconds** so that sub-nanosecond unit
//! costs (a CPU cycle at 2.6 GHz is ~384.6 ps) accumulate without rounding
//! drift over billions of charges.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in virtual time, or a duration, in picoseconds.
///
/// The engine never distinguishes instants from durations; both are plain
/// picosecond counts starting from zero at simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(u64);

/// Picoseconds per nanosecond.
const PS_PER_NS: u64 = 1_000;
/// Picoseconds per microsecond.
const PS_PER_US: u64 = 1_000_000;
/// Picoseconds per millisecond.
const PS_PER_MS: u64 = 1_000_000_000;
/// Picoseconds per second.
const PS_PER_SEC: u64 = 1_000_000_000_000;

impl Time {
    /// The zero instant (simulation start) / the empty duration.
    pub const ZERO: Time = Time(0);
    /// The largest representable time, used as "never".
    pub const MAX: Time = Time(u64::MAX);

    /// Creates a time from raw picoseconds.
    pub const fn from_ps(ps: u64) -> Time {
        Time(ps)
    }

    /// Creates a time from nanoseconds.
    pub const fn from_ns(ns: u64) -> Time {
        Time(ns * PS_PER_NS)
    }

    /// Creates a time from microseconds.
    pub const fn from_us(us: u64) -> Time {
        Time(us * PS_PER_US)
    }

    /// Creates a time from milliseconds.
    pub const fn from_ms(ms: u64) -> Time {
        Time(ms * PS_PER_MS)
    }

    /// Creates a time from whole seconds.
    pub const fn from_secs(s: u64) -> Time {
        Time(s * PS_PER_SEC)
    }

    /// Creates a time from fractional seconds (rounded to picoseconds).
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Time {
        assert!(s.is_finite() && s >= 0.0, "invalid duration: {s}");
        Time((s * PS_PER_SEC as f64).round() as u64)
    }

    /// Raw picosecond count.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Whole nanoseconds (truncating).
    pub const fn as_ns(self) -> u64 {
        self.0 / PS_PER_NS
    }

    /// Whole microseconds (truncating).
    pub const fn as_us(self) -> u64 {
        self.0 / PS_PER_US
    }

    /// Fractional microseconds.
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }

    /// Fractional milliseconds.
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / PS_PER_MS as f64
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_SEC as f64
    }

    /// Saturating subtraction; clamps at zero instead of wrapping.
    pub const fn saturating_sub(self, rhs: Time) -> Time {
        Time(self.0.saturating_sub(rhs.0))
    }

    /// Saturating addition; clamps at [`Time::MAX`].
    pub const fn saturating_add(self, rhs: Time) -> Time {
        Time(self.0.saturating_add(rhs.0))
    }

    /// `true` if this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The larger of two times.
    pub fn max(self, rhs: Time) -> Time {
        if self.0 >= rhs.0 {
            self
        } else {
            rhs
        }
    }

    /// The smaller of two times.
    pub fn min(self, rhs: Time) -> Time {
        if self.0 <= rhs.0 {
            self
        } else {
            rhs
        }
    }
}

impl Add for Time {
    type Output = Time;

    fn add(self, rhs: Time) -> Time {
        Time(self.0.checked_add(rhs.0).expect("virtual time overflow"))
    }
}

impl AddAssign for Time {
    fn add_assign(&mut self, rhs: Time) {
        *self = *self + rhs;
    }
}

impl Sub for Time {
    type Output = Time;

    fn sub(self, rhs: Time) -> Time {
        Time(self.0.checked_sub(rhs.0).expect("virtual time underflow"))
    }
}

impl SubAssign for Time {
    fn sub_assign(&mut self, rhs: Time) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for Time {
    type Output = Time;

    fn mul(self, rhs: u64) -> Time {
        Time(self.0.checked_mul(rhs).expect("virtual time overflow"))
    }
}

impl Div<u64> for Time {
    type Output = Time;

    fn div(self, rhs: u64) -> Time {
        Time(self.0 / rhs)
    }
}

impl Sum for Time {
    fn sum<I: Iterator<Item = Time>>(iter: I) -> Time {
        iter.fold(Time::ZERO, Add::add)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Pick the most readable unit.
        if self.0 >= PS_PER_SEC {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= PS_PER_MS {
            write!(f, "{:.3}ms", self.as_ms_f64())
        } else if self.0 >= PS_PER_US {
            write!(f, "{:.3}us", self.as_us_f64())
        } else {
            write!(f, "{}ns", self.as_ns())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_constructors_agree() {
        assert_eq!(Time::from_ns(1), Time::from_ps(1_000));
        assert_eq!(Time::from_us(1), Time::from_ns(1_000));
        assert_eq!(Time::from_ms(1), Time::from_us(1_000));
        assert_eq!(Time::from_secs(1), Time::from_ms(1_000));
    }

    #[test]
    fn arithmetic_roundtrips() {
        let a = Time::from_us(3);
        let b = Time::from_ns(500);
        assert_eq!((a + b) - b, a);
        assert_eq!(a * 2, Time::from_us(6));
        assert_eq!(a / 3, Time::from_us(1));
    }

    #[test]
    fn saturating_ops_clamp() {
        assert_eq!(Time::ZERO.saturating_sub(Time::from_ns(1)), Time::ZERO);
        assert_eq!(Time::MAX.saturating_add(Time::from_ns(1)), Time::MAX);
    }

    #[test]
    fn fractional_seconds_round_trip() {
        let t = Time::from_secs_f64(0.25);
        assert_eq!(t, Time::from_ms(250));
        assert!((t.as_secs_f64() - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "invalid duration")]
    fn negative_seconds_rejected() {
        let _ = Time::from_secs_f64(-1.0);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(Time::from_ns(5).to_string(), "5ns");
        assert_eq!(Time::from_us(5).to_string(), "5.000us");
        assert_eq!(Time::from_ms(5).to_string(), "5.000ms");
        assert_eq!(Time::from_secs(5).to_string(), "5.000s");
    }

    #[test]
    fn min_max_and_sum() {
        let a = Time::from_ns(1);
        let b = Time::from_ns(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        let s: Time = [a, b, b].into_iter().sum();
        assert_eq!(s, Time::from_ns(5));
    }
}
