//! `nba-lint`: the standalone static pipeline verifier CLI.
//!
//! Usage: `nba-lint [flags...] <config.click>...`
//!
//! Flags:
//!
//! * `--deep`           — also run `nba-verify` (path-sensitive abstract
//!   interpretation, `NBA04x`) and the static queue-law capacity checks
//!   (`NBA05x`) over the run configuration. Without it only the shallow,
//!   path-insensitive `nba-lint` families are reported.
//! * `--json`           — one schema-versioned JSON report per file.
//! * `--deny-warnings`  — exit nonzero on *any* diagnostic, warnings
//!   included (CI keeps shipped configs spotless).
//! * `--timing`         — print, per file, how long the deep pass takes
//!   relative to the whole pipeline-construction step (parse, element
//!   instantiation, wiring, shallow lint, deep verify) — the price a
//!   runtime preflight pays at startup.
//! * `--max-overhead=P` — with `--timing`, exit nonzero if the deep pass
//!   exceeds `P` percent of pipeline construction summed over all files
//!   (aggregate, because expensive element state — routing tables, match
//!   automata — is built once and shared, so per-file ratios are noisy).
//!
//! Capacity-model overrides (the `NBA05x` checks run against the live
//! runtime's defaults unless told otherwise):
//!
//! * `--workers=N` `--batch=N` `--ring=N` `--aggregate=N` `--drain`
//!
//! Exit status: 0 clean (or warnings without `--deny-warnings`), 1 any
//! error-severity diagnostic / denied warning / overhead breach, 2 usage
//! or configuration errors.

use std::time::Instant;

use nba_apps::{pipelines, AppConfig};
use nba_core::graph::BranchPolicy;
use nba_core::lb;
use nba_core::nls::NodeLocalStorage;
use nba_core::runtime::live::LiveConfig;
use nba_core::runtime::BuildCtx;
use nba_core::verify::{check_capacity, CapacityModel};

fn usage() -> ! {
    eprintln!(
        "usage: nba-lint [--deep] [--json] [--deny-warnings] [--timing] \
         [--max-overhead=PCT] [--workers=N] [--batch=N] [--ring=N] \
         [--aggregate=N] [--drain] <config.click>..."
    );
    std::process::exit(2);
}

fn num_flag(args: &[String], name: &str) -> Option<usize> {
    args.iter().find_map(|a| {
        a.strip_prefix(name)
            .and_then(|rest| rest.strip_prefix('='))
            .map(|n| n.parse().unwrap_or_else(|_| usage()))
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| args.iter().any(|a| a == name);
    let deep = flag("--deep");
    let json = flag("--json");
    let deny_warnings = flag("--deny-warnings");
    let timing = flag("--timing");
    let max_overhead: Option<f64> = args.iter().find_map(|a| {
        a.strip_prefix("--max-overhead=")
            .map(|n| n.parse().unwrap_or_else(|_| usage()))
    });

    // The capacity model under test: the live runtime's defaults with any
    // per-flag overrides, mirroring what `live::run` would preflight.
    let mut live_cfg = LiveConfig::default();
    if let Some(n) = num_flag(&args, "--workers") {
        live_cfg.workers = n;
    }
    if let Some(n) = num_flag(&args, "--batch") {
        live_cfg.batch = n;
    }
    if let Some(n) = num_flag(&args, "--ring") {
        live_cfg.ring_capacity = n;
    }
    if let Some(n) = num_flag(&args, "--aggregate") {
        live_cfg.aggregate = n;
    }
    live_cfg.drain = flag("--drain");
    let cap = CapacityModel::from_live(&live_cfg);

    let files: Vec<&str> = args
        .iter()
        .map(String::as_str)
        .filter(|a| !a.starts_with("--"))
        .collect();
    if files.is_empty() {
        usage();
    }

    // A throwaway build context: linting instantiates elements only to
    // read their static metadata (ports, claims, effects, offload specs).
    let bctx = BuildCtx {
        worker: 0,
        socket: 0,
        nls: NodeLocalStorage::new(),
        balancer: lb::shared(Box::new(lb::CpuOnly)),
        policy: BranchPolicy::Predict,
    };
    let app = AppConfig::default();
    let reg = pipelines::registry(&bctx, &app);

    let mut failed = false;
    let mut total_build = std::time::Duration::ZERO;
    let mut total_deep = std::time::Duration::ZERO;
    for f in &files {
        let src = match std::fs::read_to_string(f) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{f}: cannot read: {e}");
                failed = true;
                continue;
            }
        };
        let t0 = Instant::now();
        let checked = match nba_core::build_graph_checked(&src, &reg, bctx.policy) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("{f}: configuration error: {e}");
                failed = true;
                continue;
            }
        };
        let build_time = t0.elapsed();
        let mut report = checked.report;
        if deep {
            report.diagnostics.extend(check_capacity(&cap).diagnostics);
        } else {
            // Shallow mode: keep only the `nba-lint` families (the deep
            // pass already ran inside `build_graph_checked`; its path
            // diagnostics are `NBA04x`, capacity is `NBA05x`).
            report.diagnostics.retain(|d| d.code.as_str() < "NBA040");
        }

        if json {
            print!("{}", report.render_json());
        } else if report.is_clean() {
            println!("{f}: ok ({} elements)", checked.graph.len());
        } else {
            print!("{}", report.render_text());
            println!("{f}: {} diagnostic(s)", report.diagnostics.len());
        }
        failed |= report.has_errors() || (deny_warnings && !report.is_clean());

        if timing {
            // The deep pass re-run in isolation, amortized: what fraction
            // of the pipeline-construction step (which a runtime preflight
            // repeats wholesale at startup) the verifier accounts for.
            const ITERS: u32 = 100;
            let t1 = Instant::now();
            for _ in 0..ITERS {
                let mut r = nba_core::LintReport::default();
                nba_core::verify::apply_deep(&checked.graph, Some(&checked.source), &mut r);
                check_capacity(&cap);
            }
            let deep_time = t1.elapsed() / ITERS;
            total_build += build_time;
            total_deep += deep_time;
            println!(
                "{f}: verify {:.1} us of {:.1} us construction ({:.2}%)",
                deep_time.as_secs_f64() * 1e6,
                build_time.as_secs_f64() * 1e6,
                100.0 * deep_time.as_secs_f64() / build_time.as_secs_f64().max(1e-9)
            );
        }
    }
    if timing {
        let pct = 100.0 * total_deep.as_secs_f64() / total_build.as_secs_f64().max(1e-9);
        println!(
            "total: verify {:.1} us of {:.1} us construction ({pct:.2}%)",
            total_deep.as_secs_f64() * 1e6,
            total_build.as_secs_f64() * 1e6
        );
        if let Some(limit) = max_overhead {
            if pct > limit {
                eprintln!("verifier overhead {pct:.2}% exceeds limit {limit}%");
                failed = true;
            }
        }
    }
    std::process::exit(i32::from(failed));
}
