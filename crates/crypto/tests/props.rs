//! Property tests of the cryptographic primitives.

use proptest::prelude::*;

use nba_crypto::{Aes128Ctr, HmacSha1, Sha1};

proptest! {
    /// CTR is an involution: applying the keystream twice restores the
    /// plaintext, for any key/IV/length (including partial blocks).
    #[test]
    fn ctr_round_trip(
        key in any::<[u8; 16]>(),
        iv in any::<[u8; 16]>(),
        mut data in proptest::collection::vec(any::<u8>(), 0..300),
    ) {
        let original = data.clone();
        let ctr = Aes128Ctr::new(&key);
        ctr.apply_keystream(&iv, &mut data);
        if !original.is_empty() {
            // Keystream is effectively never the identity.
            prop_assert_ne!(&data, &original);
        }
        ctr.apply_keystream(&iv, &mut data);
        prop_assert_eq!(data, original);
    }

    /// Different IVs produce different ciphertexts (no keystream reuse).
    #[test]
    fn ctr_iv_separation(
        key in any::<[u8; 16]>(),
        iv1 in any::<[u8; 16]>(),
        iv2 in any::<[u8; 16]>(),
        data in proptest::collection::vec(any::<u8>(), 16..64),
    ) {
        prop_assume!(iv1 != iv2);
        let ctr = Aes128Ctr::new(&key);
        let mut a = data.clone();
        let mut b = data;
        ctr.apply_keystream(&iv1, &mut a);
        ctr.apply_keystream(&iv2, &mut b);
        prop_assert_ne!(a, b);
    }

    /// Streaming SHA-1 equals one-shot for any split.
    #[test]
    fn sha1_streaming_equals_oneshot(
        data in proptest::collection::vec(any::<u8>(), 0..400),
        splits in proptest::collection::vec(any::<usize>(), 0..5),
    ) {
        let whole = Sha1::digest(&data);
        let mut s = Sha1::new();
        let mut cuts: Vec<usize> = splits.iter().map(|&x| x % (data.len() + 1)).collect();
        cuts.sort_unstable();
        let mut prev = 0;
        for c in cuts {
            s.update(&data[prev..c]);
            prev = c;
        }
        s.update(&data[prev..]);
        prop_assert_eq!(s.finalize(), whole);
    }

    /// HMAC verification accepts the genuine tag and rejects any single-bit
    /// corruption of tag or message.
    #[test]
    fn hmac_detects_corruption(
        key in proptest::collection::vec(any::<u8>(), 1..80),
        mut msg in proptest::collection::vec(any::<u8>(), 1..200),
        flip_byte in any::<usize>(),
        flip_bit in 0u8..8,
    ) {
        let mac = HmacSha1::new(&key);
        let tag = mac.mac_truncated_96(&msg);
        prop_assert!(mac.verify_truncated_96(&msg, &tag));

        // Corrupt the message.
        let idx = flip_byte % msg.len();
        msg[idx] ^= 1 << flip_bit;
        prop_assert!(!mac.verify_truncated_96(&msg, &tag));
    }

    /// Distinct keys produce distinct MACs.
    #[test]
    fn hmac_key_separation(
        k1 in proptest::collection::vec(any::<u8>(), 1..40),
        k2 in proptest::collection::vec(any::<u8>(), 1..40),
        msg in proptest::collection::vec(any::<u8>(), 0..100),
    ) {
        prop_assume!(k1 != k2);
        prop_assert_ne!(
            HmacSha1::new(&k1).mac(&msg),
            HmacSha1::new(&k2).mac(&msg)
        );
    }
}
