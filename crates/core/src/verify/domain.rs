//! The abstract domain of the path-sensitive verifier (`nba-verify`).
//!
//! One [`AbsState`] summarizes everything the verifier knows about a
//! packet batch at a point in the element graph:
//!
//! * a per-slot write lattice for both annotation scopes
//!   (`Unwritten ⊑ MaybeWritten ⊒ Written` — `MaybeWritten` is the join
//!   of disagreeing paths),
//! * a **must**-hold set of [`HeaderFact`]s (intersected at joins: a fact
//!   survives only if every incoming path establishes it),
//! * the earliest size-changing in-place datablock rewrite observed on
//!   *some* path (a **may** property, so joins keep the minimum offset —
//!   the most hazardous one for downstream datablock declarations).
//!
//! All three components are finite lattices and every transfer function
//! is monotone, so the worklist fixpoint in [`super::deep_verify`]
//! terminates even on cyclic (already `NBA003`-diagnosed) graphs.

use crate::batch::{anno, ANNO_SLOTS};
use crate::element::{HeaderFact, SlotScope};

/// What the verifier knows about one annotation slot on the current path
/// set. `Written` and `Unwritten` are definite (every path agrees);
/// `MaybeWritten` means the paths disagree — which is exactly the state a
/// strict reader must not observe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotState {
    /// No path reaching this point has written the slot.
    Unwritten,
    /// Some paths wrote the slot, some did not (join of the other two).
    MaybeWritten,
    /// Every path reaching this point wrote the slot.
    Written,
}

impl SlotState {
    /// Least upper bound: agreement is kept, disagreement is
    /// `MaybeWritten`.
    pub fn join(self, other: SlotState) -> SlotState {
        if self == other {
            self
        } else {
            SlotState::MaybeWritten
        }
    }
}

/// The abstract state flowing along one edge of the element graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AbsState {
    /// Per-packet annotation slots.
    pub pkt: [SlotState; ANNO_SLOTS],
    /// Per-batch annotation slots.
    pub batch: [SlotState; ANNO_SLOTS],
    /// Bitset of [`HeaderFact`]s that hold on **every** path to here.
    pub facts: u8,
    /// Earliest size-changing in-place rewrite on **some** path to here:
    /// `(byte offset the rewrite starts at, node that performs it)`.
    pub rewrite: Option<(usize, usize)>,
}

impl AbsState {
    /// The state at the pipeline entry: framework-seeded packet slots and
    /// reserved batch slots (maintained by the framework itself) are
    /// already written, nothing else is, no header fact holds.
    pub fn entry() -> AbsState {
        let mut pkt = [SlotState::Unwritten; ANNO_SLOTS];
        for &s in anno::FRAMEWORK_SEEDED {
            pkt[s] = SlotState::Written;
        }
        let mut batch = [SlotState::Unwritten; ANNO_SLOTS];
        for &s in anno::RESERVED_BATCH_WRITES {
            batch[s] = SlotState::Written;
        }
        AbsState {
            pkt,
            batch,
            facts: 0,
            rewrite: None,
        }
    }

    /// The state of one slot.
    pub fn slot(&self, scope: SlotScope, slot: usize) -> SlotState {
        match scope {
            SlotScope::Packet => self.pkt[slot],
            SlotScope::Batch => self.batch[slot],
        }
    }

    /// Overwrites one slot's state.
    pub fn set_slot(&mut self, scope: SlotScope, slot: usize, st: SlotState) {
        match scope {
            SlotScope::Packet => self.pkt[slot] = st,
            SlotScope::Batch => self.batch[slot] = st,
        }
    }

    /// Whether `fact` must hold here.
    pub fn has(&self, fact: HeaderFact) -> bool {
        self.facts & fact.bit() != 0
    }

    /// Adds `fact` to the must-hold set.
    pub fn establish(&mut self, fact: HeaderFact) {
        self.facts |= fact.bit();
    }

    /// Join at a confluence point: slots join pairwise, must-facts
    /// intersect, and the may-rewrite keeps the smaller (more hazardous)
    /// offset.
    pub fn join(&self, other: &AbsState) -> AbsState {
        let mut pkt = self.pkt;
        let mut batch = self.batch;
        for i in 0..ANNO_SLOTS {
            pkt[i] = pkt[i].join(other.pkt[i]);
            batch[i] = batch[i].join(other.batch[i]);
        }
        let rewrite = match (self.rewrite, other.rewrite) {
            (None, r) | (r, None) => r,
            (Some(a), Some(b)) => Some(a.min(b)),
        };
        AbsState {
            pkt,
            batch,
            facts: self.facts & other.facts,
            rewrite,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_is_commutative_and_idempotent() {
        let mut a = AbsState::entry();
        a.set_slot(SlotScope::Packet, 4, SlotState::Written);
        a.establish(HeaderFact::Ipv4Valid);
        let b = AbsState::entry();
        assert_eq!(a.join(&b), b.join(&a));
        assert_eq!(a.join(&a), a);
        let j = a.join(&b);
        assert_eq!(j.slot(SlotScope::Packet, 4), SlotState::MaybeWritten);
        assert!(!j.has(HeaderFact::Ipv4Valid));
    }

    #[test]
    fn rewrite_join_keeps_min_offset() {
        let mut a = AbsState::entry();
        a.rewrite = Some((40, 2));
        let mut b = AbsState::entry();
        b.rewrite = Some((14, 5));
        assert_eq!(a.join(&b).rewrite, Some((14, 5)));
        assert_eq!(a.join(&AbsState::entry()).rewrite, Some((40, 2)));
    }

    #[test]
    fn entry_seeds_framework_slots() {
        let e = AbsState::entry();
        for &s in anno::FRAMEWORK_SEEDED {
            assert_eq!(e.slot(SlotScope::Packet, s), SlotState::Written);
        }
        assert_eq!(
            e.slot(SlotScope::Packet, anno::AC_MATCH),
            SlotState::Unwritten
        );
    }
}
