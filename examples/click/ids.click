// Intrusion detection system (Figure 8d): Aho-Corasick prefilter, regex
// confirmation on literal hits, alert counting on both paths. Matches
// `pipelines::ids`.
src    :: FromInput();
chk    :: CheckIPHeader();
lb     :: LoadBalance();
ac     :: ACMatch();
re     :: RegexMatch();
alert  :: IDSAlert();
alert2 :: IDSAlert();
out    :: ToOutput();
out2   :: ToOutput();

src -> chk;
chk [0] -> lb -> ac;
chk [1] -> Discard;
ac [0] -> alert -> out;
ac [1] -> re -> alert2 -> out2;
