// IPv6 router (Figure 8b): header check, load balance, binary-search
// longest-prefix lookup, hop-limit decrement. Matches
// `pipelines::ipv6_router`.
src  :: FromInput();
chk  :: CheckIP6Header();
lb   :: LoadBalance();
rt   :: LookupIP6();
hlim :: DecIP6HLIM();
out  :: ToOutput();

src -> chk;
chk [0] -> lb -> rt -> hlim -> out;
chk [1] -> Discard;
