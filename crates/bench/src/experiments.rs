//! Reproductions of every figure/table in the paper's evaluation (§4).
//!
//! Each function runs the relevant parameter sweep on the simulated paper
//! testbed, prints the series the figure plots, and returns the numbers so
//! tests can assert the qualitative shape (who wins, where the crossovers
//! fall). `EXPERIMENTS.md` records paper-vs-measured values.

use nba_apps::{pipelines, AppConfig};

use nba_core::graph::BranchPolicy;
use nba_core::lb::{self, AlbConfig, SharedBalancer};
use nba_core::runtime::{des, traffic_per_port, RuntimeConfig};
use nba_io::{IpVersion, SizeDist, TrafficConfig};
use nba_sim::Time;

use crate::table::Table;

/// Global experiment options.
#[derive(Debug, Clone, Copy)]
pub struct ExpOpts {
    /// Shrinks sweeps for smoke runs (`NBA_QUICK=1`).
    pub quick: bool,
}

impl ExpOpts {
    /// Reads options from the environment.
    pub fn from_env() -> ExpOpts {
        ExpOpts {
            quick: std::env::var("NBA_QUICK").is_ok_and(|v| v != "0"),
        }
    }
}

/// The measurement configuration used by throughput experiments.
pub fn base_cfg() -> RuntimeConfig {
    RuntimeConfig {
        warmup: Time::from_ms(14),
        measure: Time::from_ms(28),
        ..RuntimeConfig::default()
    }
}

/// App sizing matching the evaluation (tables cached across runs).
pub fn base_app(cfg: &RuntimeConfig) -> AppConfig {
    AppConfig {
        ports: cfg.topology.ports.len() as u16,
        ..AppConfig::default()
    }
}

/// Fixed-size traffic at `gbps` per port.
fn fixed(cfg: &RuntimeConfig, size: usize, v6: bool, gbps: f64) -> Vec<TrafficConfig> {
    traffic_per_port(
        &cfg.topology,
        &TrafficConfig {
            offered_gbps: gbps,
            size: SizeDist::Fixed(size),
            ip_version: if v6 { IpVersion::V6 } else { IpVersion::V4 },
            ..TrafficConfig::default()
        },
    )
}

/// Full line-rate fixed-size traffic (10 Gbps per port).
fn line_rate(cfg: &RuntimeConfig, size: usize, v6: bool) -> Vec<TrafficConfig> {
    fixed(cfg, size, v6, 10.0)
}

/// The CAIDA-like mixed-size trace stand-in (Figure 2/13 workload).
fn caida(cfg: &RuntimeConfig) -> Vec<TrafficConfig> {
    traffic_per_port(
        &cfg.topology,
        &TrafficConfig {
            offered_gbps: 10.0,
            size: SizeDist::CaidaLike,
            zipf_alpha: 1.1,
            flows: 16_384,
            ..TrafficConfig::default()
        },
    )
}

fn cpu_only() -> SharedBalancer {
    lb::shared(Box::new(lb::CpuOnly))
}

fn gpu_only() -> SharedBalancer {
    lb::shared(Box::new(lb::GpuOnly))
}

fn fixed_w(w: f64) -> SharedBalancer {
    lb::shared(Box::new(lb::FixedFraction::new(w)))
}

/// The scaled ALB configuration used in simulation (same algorithm as the
/// paper's 0.2 s / δ=4 % defaults, time constants shrunk to fit the
/// simulated horizon; documented in EXPERIMENTS.md).
fn sim_alb(initial_w: f64) -> SharedBalancer {
    // The observation cadence must exceed the offload pipeline's response
    // time (several ms at large frames), exactly why the paper grows its
    // waiting interval with w.
    lb::shared(Box::new(lb::Adaptive::new(AlbConfig {
        delta: 0.08,
        update_interval: Time::from_ms(4),
        avg_window: 2,
        min_wait: 0,
        max_wait: 2,
        initial_w,
    })))
}

// --- Figure 1 / Figure 10: the batch-split problem and branch prediction ---

/// One row of the split experiments.
#[derive(Debug, Clone, Copy)]
pub struct SplitRow {
    /// Minority-path share in percent.
    pub minority_pct: u32,
    /// Baseline (no branch) Gbps.
    pub baseline: f64,
    /// Splitting-into-new-batches Gbps.
    pub split: f64,
    /// Branch-prediction (masking) Gbps.
    pub masked: f64,
}

/// Runs the branch experiments once; Figure 1 uses (baseline, split),
/// Figure 10 adds the masking curve.
pub fn split_experiment(opts: ExpOpts) -> Vec<SplitRow> {
    // Five workers per socket: the echo baseline then sits right at the
    // 64-byte line rate, so split/mask overheads surface as throughput
    // drops (the regime of the paper's Figures 1/10).
    let cfg = RuntimeConfig {
        workers_per_socket: 5,
        ..base_cfg()
    };
    let ratios: &[u32] = if opts.quick {
        &[50, 10, 1]
    } else {
        &[50, 40, 30, 20, 10, 5, 1]
    };
    let ports = cfg.topology.ports.len() as u16;
    let traffic = line_rate(&cfg, 64, false);
    let baseline = des::run(&cfg, &pipelines::echo(ports), &cpu_only(), &traffic).tx_gbps;
    let mut rows = Vec::new();
    for &pct in ratios {
        let minority = pct as f64 / 100.0;
        let split_cfg = RuntimeConfig {
            branch_policy: BranchPolicy::SplitAlways,
            ..cfg.clone()
        };
        let split = des::run(
            &split_cfg,
            &pipelines::branch_echo(minority, ports),
            &cpu_only(),
            &traffic,
        )
        .tx_gbps;
        let mask_cfg = RuntimeConfig {
            branch_policy: BranchPolicy::Predict,
            ..cfg.clone()
        };
        let masked = des::run(
            &mask_cfg,
            &pipelines::branch_echo(minority, ports),
            &cpu_only(),
            &traffic,
        )
        .tx_gbps;
        rows.push(SplitRow {
            minority_pct: pct,
            baseline,
            split,
            masked,
        });
    }
    rows
}

/// Figure 1: throughput drop by relative split-batch size.
pub fn fig1(opts: ExpOpts) -> Vec<SplitRow> {
    let rows = split_experiment(opts);
    println!("== Figure 1: throughput drop by batch splitting (64 B, 80 Gbps offered) ==");
    let mut t = Table::new(vec!["minority %", "baseline Gbps", "split Gbps", "drop %"]);
    for r in &rows {
        t.row(vec![
            r.minority_pct.to_string(),
            format!("{:.1}", r.baseline),
            format!("{:.1}", r.split),
            format!("{:.0}", (1.0 - r.split / r.baseline) * 100.0),
        ]);
    }
    t.print();
    println!("paper: splitting degrades throughput by up to 40 %\n");
    rows
}

/// Figure 10: branch prediction vs. worst-case splitting.
pub fn fig10(opts: ExpOpts) -> Vec<SplitRow> {
    let rows = split_experiment(opts);
    println!("== Figure 10: branch prediction benefit (64 B, 80 Gbps offered) ==");
    let mut t = Table::new(vec![
        "minority %",
        "baseline",
        "split-new",
        "masked (pred.)",
        "mask drop %",
    ]);
    for r in &rows {
        t.row(vec![
            r.minority_pct.to_string(),
            format!("{:.1}", r.baseline),
            format!("{:.1}", r.split),
            format!("{:.1}", r.masked),
            format!("{:.0}", (1.0 - r.masked / r.baseline) * 100.0),
        ]);
    }
    t.print();
    println!("paper: worst case -38..41 %; masking limits the drop to ~10 % at 1 % minority\n");
    rows
}

// --- Figure 2: IPsec throughput vs offloading fraction ---

/// Figure 2: performance variation by offloading fraction (CAIDA trace).
pub fn fig2(opts: ExpOpts) -> Vec<(f64, f64)> {
    let cfg = base_cfg();
    let app = base_app(&cfg);
    let pipeline = pipelines::ipsec_gateway(&app);
    let traffic = caida(&cfg);
    let steps: Vec<f64> = if opts.quick {
        vec![0.0, 0.5, 0.8, 1.0]
    } else {
        (0..=10).map(|k| k as f64 / 10.0).collect()
    };
    let mut rows = Vec::new();
    for w in steps {
        let r = des::run(&cfg, &pipeline, &fixed_w(w), &traffic);
        rows.push((w, r.tx_gbps));
    }
    println!("== Figure 2: IPsec gateway vs offloading fraction (CAIDA-like mix) ==");
    let mut t = Table::new(vec!["w %", "Gbps", "vs GPU-only %"]);
    let gpu_gbps = rows.last().map_or(1.0, |r| r.1);
    for (w, g) in &rows {
        t.row(vec![
            format!("{:.0}", w * 100.0),
            format!("{g:.2}"),
            format!("{:+.0}", (g / gpu_gbps - 1.0) * 100.0),
        ]);
    }
    t.print();
    println!("paper: optimum near w=80 %, +20 % over GPU-only, +40 % over CPU-only\n");
    rows
}

// --- §4.2 / Figure 9: computation batching ---

/// Figure 9: throughput by computation batch size.
pub fn fig9(_opts: ExpOpts) -> Vec<(String, [f64; 3])> {
    let sizes = [1usize, 32, 64];
    let cases: Vec<(String, usize, bool, bool)> = vec![
        // (label, frame size, v6, ipsec)
        ("IPv4, 64B".to_owned(), 64, false, false),
        ("IPv6, 64B".to_owned(), 64, true, false),
        ("IPsec, 64B".to_owned(), 64, false, true),
        ("IPsec, 1500B".to_owned(), 1500, false, true),
    ];
    let mut rows = Vec::new();
    for (label, frame, v6, ipsec) in cases {
        let mut out = [0.0; 3];
        for (i, &comp) in sizes.iter().enumerate() {
            let cfg = RuntimeConfig {
                comp_batch: comp,
                ..base_cfg()
            };
            let app = base_app(&cfg);
            let pipeline = if ipsec {
                pipelines::ipsec_gateway(&app)
            } else if v6 {
                pipelines::ipv6_router(&app)
            } else {
                pipelines::ipv4_router(&app)
            };
            let traffic = line_rate(&cfg, frame, v6);
            out[i] = des::run(&cfg, &pipeline, &cpu_only(), &traffic).tx_gbps;
        }
        rows.push((label, out));
    }
    println!("== Figure 9: computation batching (batch size 1 / 32 / 64) ==");
    let mut t = Table::new(vec!["case", "1", "32", "64", "speedup 64/1"]);
    for (label, g) in &rows {
        t.row(vec![
            label.clone(),
            format!("{:.1}", g[0]),
            format!("{:.1}", g[1]),
            format!("{:.1}", g[2]),
            format!("{:.1}x", g[2] / g[0].max(1e-9)),
        ]);
    }
    t.print();
    println!("paper: 1.7x - 5.2x gains at 64 B; ~10 % for IPsec at 1500 B\n");
    rows
}

// --- §4.2: composition overhead ---

/// Composition overhead: latency of linear no-op pipelines at 1 Gbps.
pub fn composition(_opts: ExpOpts) -> Vec<(usize, f64, f64)> {
    let cfg = RuntimeConfig {
        warmup: Time::from_ms(5),
        measure: Time::from_ms(20),
        gen_window: Time::from_us(1),
        ..base_cfg()
    };
    let ports = cfg.topology.ports.len() as u16;
    // 1 Gbps across the machine = 0.125 Gbps per port.
    let traffic = fixed(&cfg, 64, false, 0.125);
    let mut rows = Vec::new();
    for noops in 0..=9usize {
        let r = des::run(
            &cfg,
            &pipelines::noop_chain(noops, ports),
            &cpu_only(),
            &traffic,
        );
        rows.push((
            noops,
            r.latency.mean().as_us_f64(),
            r.latency.percentile(99.9).as_us_f64(),
        ));
    }
    println!("== §4.2: composition overhead (no-op chain, 1 Gbps, 64 B) ==");
    let mut t = Table::new(vec!["no-ops", "mean us", "p99.9 us"]);
    for (n, mean, p999) in &rows {
        t.row(vec![
            n.to_string(),
            format!("{mean:.2}"),
            format!("{p999:.2}"),
        ]);
    }
    t.print();
    println!("paper: 16.1 us baseline; ~+1 us after adding 9 no-op elements\n");
    rows
}

// --- Figure 11: multicore scalability ---

/// One figure-11 series: `(app, gpu?, [(workers, gbps)])`.
pub type ScalingSeries = (String, bool, Vec<(u32, f64)>);

/// Figure 11: throughput vs worker threads (CPU-only and GPU-only).
pub fn fig11(opts: ExpOpts) -> Vec<ScalingSeries> {
    let workers: &[u32] = if opts.quick { &[1, 7] } else { &[1, 2, 4, 7] };
    let apps: [(&str, bool, bool); 3] = [
        ("IPv4", false, false),
        ("IPv6", true, false),
        ("IPsec", false, true),
    ];
    let mut out = Vec::new();
    for gpu in [false, true] {
        for (name, v6, ipsec) in apps {
            let mut series = Vec::new();
            for &w in workers {
                let cfg = RuntimeConfig {
                    workers_per_socket: w,
                    ..base_cfg()
                };
                let app = base_app(&cfg);
                let pipeline = if ipsec {
                    pipelines::ipsec_gateway(&app)
                } else if v6 {
                    pipelines::ipv6_router(&app)
                } else {
                    pipelines::ipv4_router(&app)
                };
                let balancer = if gpu { gpu_only() } else { cpu_only() };
                let traffic = line_rate(&cfg, 64, v6);
                let r = des::run(&cfg, &pipeline, &balancer, &traffic);
                series.push((w, r.tx_gbps));
            }
            out.push((name.to_owned(), gpu, series));
        }
    }
    for gpu in [false, true] {
        println!(
            "== Figure 11{}: {} scalability by worker threads (64 B) ==",
            if gpu { "b" } else { "a" },
            if gpu { "GPU-only" } else { "CPU-only" },
        );
        let mut t = Table::new(vec!["app", "1", "2", "4", "7", "scaling 7/1"]);
        for (name, g, series) in &out {
            if *g != gpu {
                continue;
            }
            let find = |w: u32| {
                series
                    .iter()
                    .find(|(x, _)| *x == w)
                    .map_or("-".to_owned(), |(_, v)| format!("{v:.1}"))
            };
            let first = series.first().map_or(1.0, |(_, v)| *v);
            let last = series.last().map_or(1.0, |(_, v)| *v);
            t.row(vec![
                name.clone(),
                find(1),
                find(2),
                find(4),
                find(7),
                format!("{:.1}x", last / first.max(1e-9)),
            ]);
        }
        t.print();
        println!();
    }
    println!(
        "paper: near-linear CPU scaling; GPU-only saturates earlier (device-thread overhead)\n"
    );
    out
}

// --- Figure 12: CPU-only vs GPU-only by packet size ---

/// One figure-12 series: `(app, [(size, cpu_gbps, gpu_gbps)])`.
pub type SizeSweepSeries = (String, Vec<(usize, f64, f64)>);

/// Figure 12: throughput by packet size for each application.
pub fn fig12(opts: ExpOpts) -> Vec<SizeSweepSeries> {
    let sizes: &[usize] = if opts.quick {
        &[64, 256, 1024]
    } else {
        &[64, 128, 256, 512, 1024, 1500]
    };
    let apps: [(&str, bool, bool); 3] = [
        ("IPv4", false, false),
        ("IPv6", true, false),
        ("IPsec", false, true),
    ];
    let cfg = base_cfg();
    let app = base_app(&cfg);
    let mut out = Vec::new();
    for (name, v6, ipsec) in apps {
        let pipeline = if ipsec {
            pipelines::ipsec_gateway(&app)
        } else if v6 {
            pipelines::ipv6_router(&app)
        } else {
            pipelines::ipv4_router(&app)
        };
        let mut rows = Vec::new();
        for &size in sizes {
            let size = if v6 { size.max(64) } else { size };
            let traffic = line_rate(&cfg, size, v6);
            let c = des::run(&cfg, &pipeline, &cpu_only(), &traffic).tx_gbps;
            let g = des::run(&cfg, &pipeline, &gpu_only(), &traffic).tx_gbps;
            rows.push((size, c, g));
        }
        out.push((name.to_owned(), rows));
    }
    for (name, rows) in &out {
        println!("== Figure 12: {name} throughput by packet size ==");
        let mut t = Table::new(vec!["size B", "CPU-only", "GPU-only", "GPU/CPU"]);
        for (s, c, g) in rows {
            t.row(vec![
                s.to_string(),
                format!("{c:.1}"),
                format!("{g:.1}"),
                format!("{:.2}", g / c.max(1e-9)),
            ]);
        }
        t.print();
        println!();
    }
    println!(
        "paper: IPv4 CPU wins (0-37 %); IPv6 GPU wins (0-75 %); IPsec GPU wins at <256 B,\n\
         CPU at >=512 B; routers reach 80 Gbps at large frames\n"
    );
    out
}

// --- Figure 13: the adaptive load balancer ---

/// One Figure 13 workload case.
#[derive(Debug, Clone)]
pub struct AlbCase {
    /// Case label, e.g. "IPsec, 256B".
    pub label: String,
    /// CPU-only Gbps.
    pub cpu: f64,
    /// GPU-only Gbps.
    pub gpu: f64,
    /// Best fixed-fraction Gbps from the manual sweep.
    pub manual: f64,
    /// Offloading fraction of the manual optimum.
    pub manual_w: f64,
    /// ALB-converged Gbps.
    pub alb: f64,
    /// Final ALB offloading fraction.
    pub alb_w: f64,
}

/// Figure 13: ALB vs manually-tuned vs CPU/GPU-only across workloads.
pub fn fig13(opts: ExpOpts) -> Vec<AlbCase> {
    enum App {
        V4,
        V6,
        Ipsec,
        Ids,
    }
    let cases: Vec<(&str, App, Option<usize>)> = vec![
        ("IPv4, 64B", App::V4, Some(64)),
        ("IPv6, 64B", App::V6, Some(64)),
        ("IPsec, 64B", App::Ipsec, Some(64)),
        ("IPsec, 256B", App::Ipsec, Some(256)),
        ("IPsec, 512B", App::Ipsec, Some(512)),
        ("IPsec, 1024B", App::Ipsec, Some(1024)),
        ("IDS, 64B", App::Ids, Some(64)),
        ("IPsec, CAIDA", App::Ipsec, None),
    ];
    let sweep: Vec<f64> = if opts.quick {
        vec![0.0, 0.5, 1.0]
    } else {
        (0..=10).map(|k| k as f64 / 10.0).collect()
    };
    let cfg = base_cfg();
    let app = base_app(&cfg);
    let mut out = Vec::new();
    for (label, kind, size) in cases {
        let pipeline = match kind {
            App::V4 => pipelines::ipv4_router(&app),
            App::V6 => pipelines::ipv6_router(&app),
            App::Ipsec => pipelines::ipsec_gateway(&app),
            App::Ids => pipelines::ids(&app).0,
        };
        let v6 = matches!(kind, App::V6);
        let traffic = match size {
            Some(s) => line_rate(&cfg, s, v6),
            None => caida(&cfg),
        };
        let mut manual = (0.0f64, 0.0f64);
        let mut cpu = 0.0;
        let mut gpu = 0.0;
        for &w in &sweep {
            let g = des::run(&cfg, &pipeline, &fixed_w(w), &traffic).tx_gbps;
            if w == 0.0 {
                cpu = g;
            }
            if w == 1.0 {
                gpu = g;
            }
            if g > manual.1 {
                manual = (w, g);
            }
        }
        // ALB with a longer horizon so it can walk from w = 0.5 even with
        // the slowed observation cadence.
        let alb_cfg = RuntimeConfig {
            warmup: Time::from_ms(110),
            measure: Time::from_ms(28),
            ..cfg.clone()
        };
        let balancer = sim_alb(0.5);
        let r = des::run(&alb_cfg, &pipeline, &balancer, &traffic);
        out.push(AlbCase {
            label: label.to_owned(),
            cpu,
            gpu,
            manual: manual.1,
            manual_w: manual.0,
            alb: r.tx_gbps,
            alb_w: r.final_w,
        });
    }
    println!("== Figure 13: adaptive load balancing across workloads ==");
    let mut t = Table::new(vec![
        "case",
        "CPU-only",
        "GPU-only",
        "manual",
        "w*",
        "ALB",
        "w",
        "ALB/manual %",
    ]);
    for c in &out {
        t.row(vec![
            c.label.clone(),
            format!("{:.1}", c.cpu),
            format!("{:.1}", c.gpu),
            format!("{:.1}", c.manual),
            format!("{:.0}%", c.manual_w * 100.0),
            format!("{:.1}", c.alb),
            format!("{:.0}%", c.alb_w * 100.0),
            format!("{:.0}", c.alb / c.manual.max(1e-9) * 100.0),
        ]);
    }
    t.print();
    println!("paper: ALB reaches >= 92 % of the manually-tuned optimum in all cases\n");
    out
}

// --- Figure 14: latency distributions ---

/// One latency case: label, mode, percentiles in microseconds.
#[derive(Debug, Clone)]
pub struct LatencyRow {
    /// Case label.
    pub label: String,
    /// `true` for the GPU-only configuration.
    pub gpu: bool,
    /// Minimum.
    pub min_us: f64,
    /// Mean.
    pub mean_us: f64,
    /// Median.
    pub p50_us: f64,
    /// 99.9th percentile.
    pub p999_us: f64,
}

/// Figure 14: round-trip latency distributions under medium load.
pub fn fig14(_opts: ExpOpts) -> Vec<LatencyRow> {
    let cfg = RuntimeConfig {
        warmup: Time::from_ms(5),
        measure: Time::from_ms(20),
        gen_window: Time::from_us(1),
        ..base_cfg()
    };
    let app = base_app(&cfg);
    let ports = cfg.topology.ports.len() as u16;
    // 10 Gbps total (1.25 per port); 3 Gbps total for IPsec.
    let light = |size: usize, v6: bool| fixed(&cfg, size, v6, 1.25);
    let ipsec_light = |size: usize| fixed(&cfg, size, false, 0.375);

    struct Case {
        label: String,
        pipeline: nba_core::runtime::PipelineBuilder,
        traffic: Vec<TrafficConfig>,
        cpu_only_case: bool,
    }
    let mut cases = vec![
        Case {
            label: "L2fwd, 64B".to_owned(),
            pipeline: pipelines::l2fwd(ports),
            traffic: light(64, false),
            cpu_only_case: true,
        },
        Case {
            label: "IPv4, 64B".to_owned(),
            pipeline: pipelines::ipv4_router(&app),
            traffic: light(64, false),
            cpu_only_case: false,
        },
        Case {
            label: "IPv6, 64B".to_owned(),
            pipeline: pipelines::ipv6_router(&app),
            traffic: light(64, true),
            cpu_only_case: false,
        },
        Case {
            label: "IPsec, 64B".to_owned(),
            pipeline: pipelines::ipsec_gateway(&app),
            traffic: ipsec_light(64),
            cpu_only_case: false,
        },
        Case {
            label: "IPsec, 1024B".to_owned(),
            pipeline: pipelines::ipsec_gateway(&app),
            traffic: ipsec_light(1024),
            cpu_only_case: false,
        },
    ];
    let mut rows = Vec::new();
    for case in cases.drain(..) {
        for gpu in [false, true] {
            if gpu && case.cpu_only_case {
                continue;
            }
            let balancer = if gpu { gpu_only() } else { cpu_only() };
            let r = des::run(&cfg, &case.pipeline, &balancer, &case.traffic);
            rows.push(LatencyRow {
                label: case.label.clone(),
                gpu,
                min_us: r.latency.min().as_us_f64(),
                mean_us: r.latency.mean().as_us_f64(),
                p50_us: r.latency.percentile(50.0).as_us_f64(),
                p999_us: r.latency.percentile(99.9).as_us_f64(),
            });
        }
    }
    println!("== Figure 14: round-trip latency (medium load) ==");
    let mut t = Table::new(vec![
        "case", "mode", "min us", "mean us", "p50 us", "p99.9 us",
    ]);
    for r in &rows {
        t.row(vec![
            r.label.clone(),
            if r.gpu {
                "GPU".to_owned()
            } else {
                "CPU".to_owned()
            },
            format!("{:.1}", r.min_us),
            format!("{:.1}", r.mean_us),
            format!("{:.1}", r.p50_us),
            format!("{:.1}", r.p999_us),
        ]);
    }
    t.print();
    println!(
        "paper: CPU-only 99.9 % within 43 us (L2fwd) / 60 us (routers) / 250 us (IPsec);\n\
         GPU-only 8-14x higher mean; IPsec GPU minimum ~287 us\n"
    );
    rows
}

// --- Table 3 ---

/// Table 3: the modeled hardware configuration.
pub fn table3() {
    let topo = nba_sim::Topology::paper_testbed();
    println!("== Table 3: simulated hardware configuration ==");
    let mut t = Table::new(vec!["category", "specification"]);
    t.row(vec![
        "CPU".to_owned(),
        format!(
            "{} sockets x {} cores (Xeon E5-2670 class, 2.6 GHz)",
            topo.sockets.len(),
            topo.sockets[0].cores
        ),
    ]);
    t.row(vec![
        "NIC".to_owned(),
        format!(
            "{} x 10 GbE ports ({} Gbps total)",
            topo.ports.len(),
            topo.total_line_rate_gbps()
        ),
    ]);
    t.row(vec![
        "GPU".to_owned(),
        format!("{} x {} (simulated)", topo.gpus.len(), topo.gpus[0].name),
    ]);
    t.print();
    println!();
}

// --- Ablation: offload aggregation size (§3.3 / §4.6 discussion) ---

/// Aggregation-size ablation: IPsec GPU-only throughput and latency by the
/// number of batches aggregated per offload task.
pub fn ablation_aggregation(opts: ExpOpts) -> Vec<(usize, f64, f64)> {
    let aggs: &[usize] = if opts.quick {
        &[1, 32]
    } else {
        &[1, 4, 8, 16, 32, 64]
    };
    let app = base_app(&base_cfg());
    let pipeline = pipelines::ipsec_gateway(&app);
    let mut rows = Vec::new();
    for &agg in aggs {
        let cfg = RuntimeConfig {
            offload_aggregate: agg,
            ..base_cfg()
        };
        let traffic = line_rate(&cfg, 64, false);
        let r = des::run(&cfg, &pipeline, &gpu_only(), &traffic);
        rows.push((agg, r.tx_gbps, r.latency.mean().as_us_f64()));
    }
    println!("== Ablation: offload aggregation size (IPsec GPU-only, 64 B) ==");
    let mut t = Table::new(vec!["agg batches", "Gbps", "mean latency us"]);
    for (a, g, l) in &rows {
        t.row(vec![a.to_string(), format!("{g:.1}"), format!("{l:.1}")]);
    }
    t.print();
    println!(
        "paper (§3.3/§4.6): ~32 batches needed to feed the GPU; latency grows with aggregation\n"
    );
    rows
}

// --- Ablation: datablock reuse (§3.3 future work) ---

/// Datablock-reuse ablation: the IPsec AES->HMAC chain with and without
/// fusing the two offloads into one device round trip.
pub fn ablation_datablock(_opts: ExpOpts) -> Vec<(usize, f64, f64)> {
    let app = base_app(&base_cfg());
    let pipeline = pipelines::ipsec_gateway(&app);
    let mut rows = Vec::new();
    for &size in &[64usize, 256, 1024] {
        let mut out = [0.0f64; 2];
        for (i, reuse) in [false, true].into_iter().enumerate() {
            let cfg = RuntimeConfig {
                datablock_reuse: reuse,
                ..base_cfg()
            };
            let traffic = line_rate(&cfg, size, false);
            out[i] = des::run(&cfg, &pipeline, &gpu_only(), &traffic).tx_gbps;
        }
        rows.push((size, out[0], out[1]));
    }
    println!("== Ablation: datablock reuse (IPsec GPU-only, fused AES->HMAC) ==");
    let mut t = Table::new(vec!["size B", "separate Gbps", "fused Gbps", "gain %"]);
    for (s, a, b) in &rows {
        t.row(vec![
            s.to_string(),
            format!("{a:.1}"),
            format!("{b:.1}"),
            format!("{:+.0}", (b / a - 1.0) * 100.0),
        ]);
    }
    t.print();
    println!(
        "paper (§3.3): reusing GPU-resident datablocks between offloadable elements is\n\
         proposed as future work; fusing halves PCIe traffic and launch overheads\n"
    );
    rows
}

// --- Extension: bounded-latency balancing (§7 future work) ---

/// Bounded-latency balancing: IPsec under GPU-favourable traffic with a
/// latency ceiling; tighter bounds trade throughput for latency.
pub fn bounded_latency(_opts: ExpOpts) -> Vec<(String, f64, f64, f64)> {
    let cfg = RuntimeConfig {
        warmup: Time::from_ms(110),
        measure: Time::from_ms(28),
        ..base_cfg()
    };
    let app = base_app(&cfg);
    let pipeline = pipelines::ipsec_gateway(&app);
    // Below the CPU-only capacity (~7 Gbps at 64 B): throughput is then
    // attainable at any w and the bound trades only the GPU path's latency
    // premium; at saturating loads queueing dominates latency for every w
    // and the bound cannot help (the regime §7 wants to escape).
    let traffic = fixed(&cfg, 64, false, 0.75);
    let alb = |bound: Option<Time>| -> SharedBalancer {
        let inner = lb::Adaptive::new(AlbConfig {
            delta: 0.08,
            update_interval: Time::from_ms(4),
            avg_window: 2,
            min_wait: 0,
            max_wait: 2,
            initial_w: 0.5,
        });
        match bound {
            None => lb::shared(Box::new(inner)),
            Some(b) => lb::shared(Box::new(lb::LatencyBounded::new(inner, b))),
        }
    };
    let cases = [
        ("unbounded".to_owned(), None),
        ("bound 400us".to_owned(), Some(Time::from_us(400))),
        ("bound 150us".to_owned(), Some(Time::from_us(150))),
        ("bound 40us".to_owned(), Some(Time::from_us(40))),
    ];
    let mut rows = Vec::new();
    for (label, bound) in cases {
        let balancer = alb(bound);
        let r = des::run(&cfg, &pipeline, &balancer, &traffic);
        rows.push((
            label,
            r.tx_gbps,
            r.latency.percentile(99.0).as_us_f64(),
            r.final_w,
        ));
    }
    println!("== Extension (§7): throughput maximization with bounded latency ==");
    let mut t = Table::new(vec!["balancer", "Gbps", "p99 us", "final w %"]);
    for (label, g, p99, w) in &rows {
        t.row(vec![
            label.clone(),
            format!("{g:.1}"),
            format!("{p99:.0}"),
            format!("{:.0}", w * 100.0),
        ]);
    }
    t.print();
    println!(
        "paper (§7): proposed as future work — tighter latency bounds push the balancer\n\
         towards the CPU, trading throughput for predictability\n"
    );
    rows
}

/// Runs every experiment in order.
pub fn all(opts: ExpOpts) {
    table3();
    fig1(opts);
    fig2(opts);
    fig9(opts);
    composition(opts);
    fig10(opts);
    fig11(opts);
    fig12(opts);
    fig13(opts);
    fig14(opts);
    ablation_aggregation(opts);
    ablation_datablock(opts);
    bounded_latency(opts);
}
