//! Packet batches: the framework's first-class unit of work (§3.2).
//!
//! A batch does not carry packet contents — only packet objects (which own
//! pooled buffer pointers), a per-packet processing-result array, one batch
//! annotation set, and per-packet annotation sets. The paper restricts
//! annotations to 7 slots so a set fits a cache line; we keep that layout.
//!
//! Packets leave a batch in two ways:
//! * **masked out** — dropped or moved to a split batch; the slot becomes
//!   empty but the arrays are not compacted (the branch-prediction trick),
//! * **taken** — moved into another batch during a split.

use nba_io::Packet;
use nba_sim::Time;

/// Number of annotation slots per packet and per batch (fits a cache line).
pub const ANNO_SLOTS: usize = 7;

/// Well-known annotation slot indices.
pub mod anno {
    /// Per-packet: virtual timestamp (picoseconds) at generation.
    pub const TIMESTAMP: usize = 0;
    /// Per-packet: input NIC port.
    pub const IFACE_IN: usize = 1;
    /// Per-packet: output NIC port chosen by a routing element; the
    /// framework transmits through it at the end of the pipeline (§3.2
    /// "NBA moves the hardware resource mapping ... into the framework").
    pub const IFACE_OUT: usize = 2;
    /// Per-packet: flow id / RSS hash.
    pub const FLOW_ID: usize = 3;
    /// Per-packet: Aho-Corasick verdict (pattern index + 1, or 0).
    pub const AC_MATCH: usize = 4;
    /// Per-packet: regex verdict (rule index + 1, or 0).
    pub const RE_MATCH: usize = 5;
    /// Per-packet: original (as-received) frame bits, for input-normalized
    /// throughput accounting across encapsulating pipelines.
    pub const ORIG_BITS: usize = 6;
    /// Per-batch: load-balancer decision — device index + 1, or 0 for CPU.
    pub const LB_DEVICE: usize = 0;
    /// Per-batch: telemetry trace id, stamped at RX when batch-lifecycle
    /// tracing is enabled (0 otherwise, and for batches born from splits).
    /// Nothing on the processing path reads it, so stamping cannot change
    /// behaviour.
    pub const TRACE_ID: usize = 1;
    /// Per-batch: current causal span id, stamped at RX when tracing is
    /// enabled and re-stamped as the batch crosses stages (offload enqueue,
    /// device launch, completion), so each trace event links to its causal
    /// parent. 0 when tracing is off; nothing on the processing path reads
    /// it.
    pub const SPAN_ID: usize = 2;

    /// Per-packet slots the framework owns: elements must never write
    /// these ([`TIMESTAMP`] and [`IFACE_IN`] are seeded at RX,
    /// [`ORIG_BITS`] drives input-normalized throughput accounting).
    /// The static verifier rejects write claims on them (`NBA011`).
    pub const RESERVED_PACKET_WRITES: &[usize] = &[TIMESTAMP, IFACE_IN, ORIG_BITS];

    /// Per-batch slots the framework owns ([`TRACE_ID`] and [`SPAN_ID`]
    /// are stamped by the runtime; [`LB_DEVICE`] is intentionally
    /// element-writable — it is the designated load-balancer decision
    /// slot).
    pub const RESERVED_BATCH_WRITES: &[usize] = &[TRACE_ID, SPAN_ID];

    /// Per-packet slots the framework seeds on every packet at RX, so
    /// element reads of them are always defined ([`crate::batch::PacketBatch::push`]).
    pub const FRAMEWORK_SEEDED: &[usize] = &[TIMESTAMP, IFACE_IN, FLOW_ID, ORIG_BITS];
}

/// A per-packet or per-batch annotation set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Anno {
    values: [u64; ANNO_SLOTS],
}

impl Anno {
    /// Reads slot `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= ANNO_SLOTS`.
    pub fn get(&self, i: usize) -> u64 {
        self.values[i]
    }

    /// Writes slot `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= ANNO_SLOTS`.
    pub fn set(&mut self, i: usize, v: u64) {
        self.values[i] = v;
    }
}

/// The result of processing one packet in an element.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketResult {
    /// Send the packet out of the element's output port `n`.
    Out(u8),
    /// Drop the packet.
    Drop,
}

/// A batch of packets moving through the element graph together.
#[derive(Debug, Default)]
pub struct PacketBatch {
    slots: Vec<Option<Packet>>,
    annos: Vec<Anno>,
    results: Vec<PacketResult>,
    banno: Anno,
    live: usize,
}

impl PacketBatch {
    /// Creates an empty batch with room for `cap` packets.
    pub fn with_capacity(cap: usize) -> PacketBatch {
        PacketBatch {
            slots: Vec::with_capacity(cap),
            annos: Vec::with_capacity(cap),
            results: Vec::with_capacity(cap),
            banno: Anno::default(),
            live: 0,
        }
    }

    /// Appends a packet, seeding its timestamp/input-port annotations, and
    /// returns its slot index.
    pub fn push(&mut self, pkt: Packet) -> usize {
        let mut a = Anno::default();
        a.set(anno::TIMESTAMP, pkt.ts_gen.as_ps());
        a.set(anno::IFACE_IN, u64::from(pkt.port_in));
        a.set(anno::FLOW_ID, u64::from(pkt.rss_hash));
        a.set(anno::ORIG_BITS, pkt.frame_bits());
        self.slots.push(Some(pkt));
        self.annos.push(a);
        self.results.push(PacketResult::Out(0));
        self.live += 1;
        self.slots.len() - 1
    }

    /// Number of live (unmasked) packets.
    pub fn len(&self) -> usize {
        self.live
    }

    /// `true` if no live packets remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Number of slots including masked ones.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// The batch-level annotation set.
    pub fn banno(&self) -> &Anno {
        &self.banno
    }

    /// The batch-level annotation set, mutably.
    pub fn banno_mut(&mut self) -> &mut Anno {
        &mut self.banno
    }

    /// Borrows the packet in slot `i` if it is live.
    pub fn packet(&self, i: usize) -> Option<&Packet> {
        self.slots.get(i).and_then(|s| s.as_ref())
    }

    /// Mutably borrows the packet in slot `i` if it is live.
    pub fn packet_mut(&mut self, i: usize) -> Option<&mut Packet> {
        self.slots.get_mut(i).and_then(|s| s.as_mut())
    }

    /// Borrows packet and annotation of slot `i` together.
    pub fn packet_and_anno_mut(&mut self, i: usize) -> Option<(&mut Packet, &mut Anno)> {
        match (self.slots.get_mut(i), self.annos.get_mut(i)) {
            (Some(Some(p)), Some(a)) => Some((p, a)),
            _ => None,
        }
    }

    /// The annotation set of slot `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn anno(&self, i: usize) -> &Anno {
        &self.annos[i]
    }

    /// The annotation set of slot `i`, mutably.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn anno_mut(&mut self, i: usize) -> &mut Anno {
        &mut self.annos[i]
    }

    /// The last processing result of slot `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn result(&self, i: usize) -> PacketResult {
        self.results[i]
    }

    /// Records the processing result of slot `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn set_result(&mut self, i: usize, r: PacketResult) {
        self.results[i] = r;
    }

    /// Masks slot `i` out, dropping its packet (the buffer returns to its
    /// pool). No-op if already masked.
    pub fn mask(&mut self, i: usize) {
        if let Some(slot) = self.slots.get_mut(i) {
            if slot.take().is_some() {
                self.live -= 1;
            }
        }
    }

    /// Removes the packet of slot `i` (with its annotation) for moving into
    /// a split batch.
    pub fn take(&mut self, i: usize) -> Option<(Packet, Anno)> {
        let slot = self.slots.get_mut(i)?;
        let pkt = slot.take()?;
        self.live -= 1;
        Some((pkt, self.annos[i]))
    }

    /// Appends a packet together with its carried annotation (splits).
    pub fn push_with_anno(&mut self, pkt: Packet, anno: Anno) -> usize {
        self.slots.push(Some(pkt));
        self.annos.push(anno);
        self.results.push(PacketResult::Out(0));
        self.live += 1;
        self.slots.len() - 1
    }

    /// Indices of live slots (allocation-free iteration helper).
    pub fn live_indices(&self) -> impl Iterator<Item = usize> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_some())
            .map(|(i, _)| i)
    }

    /// Drains all live packets with their annotations.
    pub fn drain(&mut self) -> Vec<(Packet, Anno)> {
        let mut out = Vec::with_capacity(self.live);
        for i in 0..self.slots.len() {
            if let Some(p) = self.slots[i].take() {
                out.push((p, self.annos[i]));
            }
        }
        self.live = 0;
        out
    }

    /// Sum of live frame bits (throughput accounting).
    pub fn frame_bits(&self) -> u64 {
        self.slots.iter().flatten().map(|p| p.frame_bits()).sum()
    }

    /// The generation timestamp of slot `i` as virtual time.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn timestamp(&self, i: usize) -> Time {
        Time::from_ps(self.annos[i].get(anno::TIMESTAMP))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(len: usize) -> Packet {
        Packet::from_bytes(&vec![0u8; len])
    }

    #[test]
    fn push_seeds_annotations() {
        let mut b = PacketBatch::with_capacity(4);
        let mut p = pkt(64);
        p.port_in = 3;
        p.rss_hash = 0xabcd;
        p.ts_gen = Time::from_us(7);
        let i = b.push(p);
        assert_eq!(b.anno(i).get(anno::IFACE_IN), 3);
        assert_eq!(b.anno(i).get(anno::FLOW_ID), 0xabcd);
        assert_eq!(b.timestamp(i), Time::from_us(7));
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn mask_hides_without_compacting() {
        let mut b = PacketBatch::with_capacity(4);
        for _ in 0..3 {
            b.push(pkt(64));
        }
        b.mask(1);
        assert_eq!(b.len(), 2);
        assert_eq!(b.slot_count(), 3);
        assert!(b.packet(1).is_none());
        assert!(b.packet(0).is_some());
        assert_eq!(b.live_indices().collect::<Vec<_>>(), vec![0, 2]);
        // Double mask is a no-op.
        b.mask(1);
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn take_moves_packet_and_anno() {
        let mut b = PacketBatch::with_capacity(2);
        let i = b.push(pkt(100));
        b.anno_mut(i).set(anno::IFACE_OUT, 5);
        let (p, a) = b.take(i).unwrap();
        assert_eq!(p.len(), 100);
        assert_eq!(a.get(anno::IFACE_OUT), 5);
        assert!(b.is_empty());
        assert!(b.take(i).is_none());

        let mut b2 = PacketBatch::with_capacity(2);
        let j = b2.push_with_anno(p, a);
        assert_eq!(b2.anno(j).get(anno::IFACE_OUT), 5);
    }

    #[test]
    fn frame_bits_counts_live_only() {
        let mut b = PacketBatch::with_capacity(4);
        b.push(pkt(64));
        b.push(pkt(128));
        b.mask(0);
        assert_eq!(b.frame_bits(), 128 * 8);
    }

    #[test]
    fn results_default_to_port_zero() {
        let mut b = PacketBatch::with_capacity(1);
        let i = b.push(pkt(64));
        assert_eq!(b.result(i), PacketResult::Out(0));
        b.set_result(i, PacketResult::Drop);
        assert_eq!(b.result(i), PacketResult::Drop);
    }

    #[test]
    fn drain_empties_batch() {
        let mut b = PacketBatch::with_capacity(3);
        for _ in 0..3 {
            b.push(pkt(64));
        }
        b.mask(0);
        let drained = b.drain();
        assert_eq!(drained.len(), 2);
        assert!(b.is_empty());
        assert_eq!(b.frame_bits(), 0);
    }

    #[test]
    #[should_panic]
    fn anno_slot_out_of_range_panics() {
        let a = Anno::default();
        let _ = a.get(ANNO_SLOTS);
    }
}
