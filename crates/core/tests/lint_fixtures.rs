//! One failing fixture pipeline per `nba-lint` diagnostic code, asserting
//! both the stable code and the configuration source line it points at —
//! the contract `probe --check` and editor integrations build on.

use std::sync::Arc;

use nba_core::batch::{anno, Anno, PacketResult};
use nba_core::config::{build_graph, build_graph_checked, ElementRegistry};
use nba_core::element::{
    DbInput, DbOutput, Disposition, ElemCtx, Element, ElementEffects, HeaderFact, KernelIo,
    OffloadSpec, Postprocess, SlotClaim,
};
use nba_core::graph::{BranchPolicy, GraphBuilder};
use nba_core::lint::{Code, Severity};
use nba_core::runtime::{des, traffic_per_port, PipelineBuilder, RuntimeConfig};
use nba_io::Packet;
use nba_sim::{GpuProfile, Time};

/// A configurable fixture element: class name, fan-out, slot claims, and an
/// optional offload spec are all injectable per registry entry.
struct Fx {
    name: &'static str,
    ports: usize,
    claims: &'static [SlotClaim],
    spec: Option<OffloadSpec>,
    effects: ElementEffects,
}

impl Element for Fx {
    fn class_name(&self) -> &'static str {
        self.name
    }
    fn output_count(&self) -> usize {
        self.ports
    }
    fn slot_claims(&self) -> &'static [SlotClaim] {
        self.claims
    }
    fn offload(&self) -> Option<OffloadSpec> {
        self.spec.clone()
    }
    fn effects(&self) -> ElementEffects {
        self.effects
    }
    fn process(&mut self, _: &mut ElemCtx<'_>, _: &mut Packet, _: &mut Anno) -> PacketResult {
        PacketResult::Out(0)
    }
}

fn spec(input: DbInput, output: DbOutput, post: Postprocess) -> OffloadSpec {
    OffloadSpec {
        input,
        output,
        gpu: GpuProfile::default(),
        kernel: Arc::new(|_: KernelIo<'_>| {}),
        heavy: false,
        postprocess: post,
    }
}

static WRITE_FLOW: &[SlotClaim] = &[SlotClaim::writes(anno::FLOW_ID)];
static READ_AC: &[SlotClaim] = &[SlotClaim::reads(anno::AC_MATCH)];
static WRITE_TS: &[SlotClaim] = &[SlotClaim::writes(anno::TIMESTAMP)];
static SLOT_99: &[SlotClaim] = &[SlotClaim::writes(99)];
static WRITE_RE: &[SlotClaim] = &[SlotClaim::writes(anno::RE_MATCH)];
static READ_RE: &[SlotClaim] = &[SlotClaim::reads(anno::RE_MATCH)];

fn registry() -> ElementRegistry {
    let mut r = ElementRegistry::new();
    let fx = |name: &'static str, ports: usize, claims: &'static [SlotClaim]| Fx {
        name,
        ports,
        claims,
        spec: None,
        effects: ElementEffects::default(),
    };
    r.register("Stage", move |_| Ok(Box::new(fx("Stage", 1, &[]))));
    r.register("Fork", move |_| Ok(Box::new(fx("Fork", 2, &[]))));
    r.register("WriteFlow", move |_| {
        Ok(Box::new(fx("WriteFlow", 1, WRITE_FLOW)))
    });
    r.register("StampFlow", move |_| {
        Ok(Box::new(fx("StampFlow", 1, WRITE_FLOW)))
    });
    r.register("ReadAc", move |_| Ok(Box::new(fx("ReadAc", 1, READ_AC))));
    r.register("WriteTs", move |_| Ok(Box::new(fx("WriteTs", 1, WRITE_TS))));
    r.register("BigSlot", move |_| Ok(Box::new(fx("BigSlot", 1, SLOT_99))));
    // A size-changing in-place rewrite from byte 14 on.
    r.register("Grow", |_| {
        Ok(Box::new(Fx {
            name: "Grow",
            ports: 1,
            claims: &[],
            spec: Some(spec(
                DbInput::PartialPacket {
                    offset: 14,
                    len: 64,
                },
                DbOutput::InPlace { extra: 16 },
                Postprocess::WriteBack,
            )),
            effects: ElementEffects::default(),
        }))
    });
    // A whole-packet scanner scattering verdicts into an annotation.
    r.register("Scan", |_| {
        Ok(Box::new(Fx {
            name: "Scan",
            ports: 1,
            claims: &[],
            spec: Some(spec(
                DbInput::WholePacket { offset: 0 },
                DbOutput::PerItem { len: 8 },
                Postprocess::Annotation(anno::AC_MATCH),
            )),
            effects: ElementEffects::default(),
        }))
    });
    // The deep-verifier fixtures: a two-port header validator, a consumer
    // that requires the validated fact, a drop-everything sink, and a
    // writer/reader pair over a non-seeded slot.
    r.register("Check", |_| {
        static EST: &[(usize, HeaderFact)] = &[(0, HeaderFact::Ipv4Valid)];
        Ok(Box::new(Fx {
            name: "Check",
            ports: 2,
            claims: &[],
            spec: None,
            effects: ElementEffects {
                establishes: EST,
                ..ElementEffects::default()
            },
        }))
    });
    r.register("Ttl", |_| {
        static REQ: &[HeaderFact] = &[HeaderFact::Ipv4Valid];
        Ok(Box::new(Fx {
            name: "Ttl",
            ports: 1,
            claims: &[],
            spec: None,
            effects: ElementEffects {
                requires: REQ,
                disposition: Disposition::MayDrop,
                ..ElementEffects::default()
            },
        }))
    });
    r.register("Hole", |_| {
        Ok(Box::new(Fx {
            name: "Hole",
            ports: 1,
            claims: &[],
            spec: None,
            effects: ElementEffects {
                disposition: Disposition::DropAll,
                ..ElementEffects::default()
            },
        }))
    });
    let fx2 = |name: &'static str, claims: &'static [SlotClaim]| Fx {
        name,
        ports: 1,
        claims,
        spec: None,
        effects: ElementEffects::default(),
    };
    r.register("WriteRe", move |_| Ok(Box::new(fx2("WriteRe", WRITE_RE))));
    r.register("ReadRe", move |_| Ok(Box::new(fx2("ReadRe", READ_RE))));
    r
}

/// The first diagnostic with `code`, with its (severity, line).
fn first(src: &str, policy: BranchPolicy, code: Code) -> (Severity, Option<usize>) {
    let checked = build_graph_checked(src, &registry(), policy).expect("fixture must assemble");
    let d = checked
        .report
        .with_code(code)
        .next()
        .unwrap_or_else(|| panic!("expected {code:?} in:\n{}", checked.report.render_text()));
    (d.severity, d.line)
}

#[test]
fn nba001_unreachable_node_points_at_declaration() {
    let (sev, line) = first(
        "src :: FromInput();\na :: Stage();\nb :: Stage();\nsrc -> a -> ToOutput;\nb -> ToOutput;",
        BranchPolicy::Predict,
        Code::UnreachableNode,
    );
    assert_eq!(sev, Severity::Error);
    assert_eq!(line, Some(3));
}

#[test]
fn nba002_port_arity_points_at_connection() {
    let (sev, line) = first(
        "src :: FromInput();\na :: Stage();\nsrc -> a;\na [2] -> ToOutput;\na [0] -> ToOutput;",
        BranchPolicy::Predict,
        Code::PortArity,
    );
    assert_eq!(sev, Severity::Error);
    assert_eq!(line, Some(4));
}

#[test]
fn nba003_cycle_points_at_back_edge() {
    let (sev, line) = first(
        "src :: FromInput();\na :: Stage();\nb :: Stage();\nsrc -> a;\na -> b;\nb -> a;",
        BranchPolicy::Predict,
        Code::Cycle,
    );
    assert_eq!(sev, Severity::Error);
    assert_eq!(line, Some(6));
}

#[test]
fn nba010_slot_out_of_range() {
    let (sev, line) = first(
        "src :: FromInput();\nx :: BigSlot();\nsrc -> x -> ToOutput;",
        BranchPolicy::Predict,
        Code::SlotOutOfRange,
    );
    assert_eq!(sev, Severity::Error);
    assert_eq!(line, Some(2));
}

#[test]
fn nba011_reserved_slot_write() {
    let (sev, line) = first(
        "src :: FromInput();\nt :: WriteTs();\nsrc -> t -> ToOutput;",
        BranchPolicy::Predict,
        Code::ReservedSlotWrite,
    );
    assert_eq!(sev, Severity::Error);
    assert_eq!(line, Some(2));
}

#[test]
fn nba012_slot_collision_between_classes() {
    let (sev, line) = first(
        "src :: FromInput();\nw1 :: WriteFlow();\nw2 :: StampFlow();\nsrc -> w1 -> w2 -> ToOutput;",
        BranchPolicy::Predict,
        Code::SlotCollision,
    );
    assert_eq!(sev, Severity::Error);
    assert_eq!(line, Some(3));
}

#[test]
fn nba013_read_of_unwritten_slot() {
    let (sev, line) = first(
        "src :: FromInput();\nr :: ReadAc();\nsrc -> r -> ToOutput;",
        BranchPolicy::Predict,
        Code::SlotReadUnwritten,
    );
    assert_eq!(sev, Severity::Warn);
    assert_eq!(line, Some(2));
}

#[test]
fn nba020_datablock_overlap_after_size_delta() {
    let (sev, line) = first(
        "src :: FromInput();\ng :: Grow();\ns :: Scan();\nsrc -> g -> s -> ToOutput;",
        BranchPolicy::Predict,
        Code::DatablockOverlap,
    );
    assert_eq!(sev, Severity::Error);
    assert_eq!(line, Some(3));
}

#[test]
fn nba030_batch_split_under_split_always() {
    let cfg = "src :: FromInput();\nf :: Fork();\na :: Stage();\nb :: Stage();\n\
               src -> f;\nf [0] -> a -> ToOutput;\nf [1] -> b -> ToOutput;";
    let (sev, line) = first(cfg, BranchPolicy::SplitAlways, Code::BatchSplit);
    assert_eq!(sev, Severity::Warn);
    assert_eq!(line, Some(2));
    // Warnings never block the strict frontend.
    build_graph(cfg, &registry(), BranchPolicy::SplitAlways).expect("warn-only config builds");
}

#[test]
fn strict_frontend_rejects_error_fixture_with_code_and_line() {
    let err = build_graph(
        "src :: FromInput();\na :: Stage();\nb :: Stage();\nsrc -> a;\na -> b;\nb -> a;",
        &registry(),
        BranchPolicy::Predict,
    )
    .unwrap_err();
    assert!(err.msg.contains("NBA003"), "{err}");
    assert_eq!(err.line, 6);
}

/// Exactly one diagnostic with `code`, with its (severity, line) — the
/// deep-verifier fixtures pin the *count* too, because a path family that
/// double-reports (once per path, once per shallow check) would bury real
/// findings.
fn exactly_one(src: &str, code: Code) -> (Severity, Option<usize>) {
    let checked =
        build_graph_checked(src, &registry(), BranchPolicy::Predict).expect("fixture assembles");
    let hits: Vec<_> = checked.report.with_code(code).collect();
    assert_eq!(
        hits.len(),
        1,
        "expected exactly one {code:?} in:\n{}",
        checked.report.render_text()
    );
    (hits[0].severity, hits[0].line)
}

#[test]
fn nba040_path_read_unwritten_on_one_branch() {
    // The writer lives on the other fork arm: the shallow NBA013 is
    // satisfied (a writer exists), only the path-sensitive check sees the
    // unwritten branch — and names it in the witness chain.
    let src = "src :: FromInput();\nf :: Fork();\nw :: WriteRe();\nr :: ReadRe();\n\
               src -> f;\nf [0] -> w -> ToOutput;\nf [1] -> r -> ToOutput;";
    let (sev, line) = exactly_one(src, Code::PathReadUnwritten);
    assert_eq!(sev, Severity::Warn);
    assert_eq!(line, Some(4));
    let checked = build_graph_checked(src, &registry(), BranchPolicy::Predict).unwrap();
    let d = checked
        .report
        .with_code(Code::PathReadUnwritten)
        .next()
        .unwrap();
    assert!(
        d.message.contains(" -> "),
        "witness path missing: {}",
        d.message
    );
}

#[test]
fn nba041_dead_branch_of_redundant_validator() {
    // The second validator re-checks a fact that already must-holds on
    // every packet reaching it, so its failure port can never fire.
    let src = "src :: FromInput();\nc1 :: Check();\nc2 :: Check();\nsrc -> c1;\n\
               c1 [0] -> c2;\nc1 [1] -> Discard;\nc2 [0] -> ToOutput;\nc2 [1] -> Discard;";
    let (sev, _line) = exactly_one(src, Code::DeadBranch);
    assert_eq!(sev, Severity::Warn);
}

#[test]
fn nba042_silent_blackhole_subgraph() {
    // `Hole` consumes every packet; the edge into it is flagged (a direct
    // `-> Discard` would be explicit and exempt).
    let src = "src :: FromInput();\nf :: Fork();\na :: Stage();\nh :: Hole();\n\
               src -> f;\nf [0] -> a -> ToOutput;\nf [1] -> h;\nh -> Discard;";
    let (sev, _line) = exactly_one(src, Code::BlackholePath);
    assert_eq!(sev, Severity::Warn);
}

#[test]
fn nba042_direct_discard_is_exempt() {
    let src = "src :: FromInput();\nf :: Fork();\na :: Stage();\n\
               src -> f;\nf [0] -> a -> ToOutput;\nf [1] -> Discard;";
    let checked = build_graph_checked(src, &registry(), BranchPolicy::Predict).unwrap();
    assert_eq!(checked.report.with_code(Code::BlackholePath).count(), 0);
}

#[test]
fn nba043_header_use_before_validation() {
    let src = "src :: FromInput();\nt :: Ttl();\nsrc -> t -> ToOutput;";
    let (sev, line) = exactly_one(src, Code::HeaderBeforeValidation);
    assert_eq!(sev, Severity::Warn);
    assert_eq!(line, Some(2));
    // Behind a validator the same element is clean.
    let ok = "src :: FromInput();\nc :: Check();\nt :: Ttl();\nsrc -> c;\n\
              c [0] -> t -> ToOutput;\nc [1] -> Discard;";
    let checked = build_graph_checked(ok, &registry(), BranchPolicy::Predict).unwrap();
    assert!(
        checked.report.is_clean(),
        "{}",
        checked.report.render_text()
    );
}

#[test]
fn nba050_ring_under_burst_bound() {
    use nba_core::runtime::live::LiveConfig;
    use nba_core::verify::{check_capacity, CapacityModel};
    let m = CapacityModel::from_live(&LiveConfig {
        ring_capacity: 64,
        batch: 64,
        ..LiveConfig::default()
    });
    let r = check_capacity(&m);
    let hits: Vec<_> = r.with_code(Code::RingUnderBurst).collect();
    assert_eq!(hits.len(), 1, "{}", r.render_text());
    assert_eq!(hits[0].severity, Severity::Warn);
}

#[test]
fn nba051_aggregate_exceeds_inflight_cap() {
    use nba_core::runtime::live::LiveConfig;
    use nba_core::verify::{check_capacity, CapacityModel};
    let m = CapacityModel::from_live(&LiveConfig {
        workers: 1,
        aggregate: 64,
        ..LiveConfig::default()
    });
    let r = check_capacity(&m);
    let hits: Vec<_> = r.with_code(Code::SteeringDeadlock).collect();
    assert_eq!(hits.len(), 1, "{}", r.render_text());
    assert_eq!(hits[0].severity, Severity::Error);
}

#[test]
fn deep_demotion_lets_disjoint_collision_build_strict() {
    // Different classes write FLOW_ID on *disjoint* fork arms: the shallow
    // NBA012 Error is demoted to Warn by the fixpoint proof, so the strict
    // frontend accepts the config.
    let src = "src :: FromInput();\nf :: Fork();\nw1 :: WriteFlow();\nw2 :: StampFlow();\n\
               src -> f;\nf [0] -> w1 -> ToOutput;\nf [1] -> w2 -> ToOutput;";
    let checked = build_graph_checked(src, &registry(), BranchPolicy::Predict).unwrap();
    let d = checked
        .report
        .with_code(Code::SlotCollision)
        .next()
        .unwrap();
    assert_eq!(d.severity, Severity::Warn);
    assert!(d.message.contains("[deep:"), "{}", d.message);
    build_graph(src, &registry(), BranchPolicy::Predict).expect("demoted config builds strict");
    // In sequence (one path traverses both writers) it stays an Error.
    let seq = "src :: FromInput();\nw1 :: WriteFlow();\nw2 :: StampFlow();\n\
               src -> w1 -> w2 -> ToOutput;";
    let checked = build_graph_checked(seq, &registry(), BranchPolicy::Predict).unwrap();
    let d = checked
        .report
        .with_code(Code::SlotCollision)
        .next()
        .unwrap();
    assert_eq!(d.severity, Severity::Error);
}

/// The runtimes refuse to start a pipeline that fails verification: the
/// mandatory preflight panics before any batch flows.
#[test]
#[should_panic(expected = "static verification")]
fn des_runtime_refuses_unverified_graph() {
    let build: PipelineBuilder = Arc::new(|ctx| {
        let mut gb = GraphBuilder::new();
        gb.branch_policy(ctx.policy);
        let a = gb.add(Box::new(Fx {
            name: "Entry",
            ports: 1,
            claims: &[],
            spec: None,
            effects: ElementEffects::default(),
        }));
        // An orphan node nothing feeds: NBA001 at Error severity.
        let b = gb.add(Box::new(Fx {
            name: "Orphan",
            ports: 1,
            claims: &[],
            spec: None,
            effects: ElementEffects::default(),
        }));
        gb.connect_exit(a, 0);
        gb.connect_exit(b, 0);
        gb.entry(a);
        gb.build().expect("builder accepts the orphan")
    });
    let cfg = RuntimeConfig {
        warmup: Time::from_ms(1),
        measure: Time::from_ms(1),
        ..RuntimeConfig::default()
    };
    let traffic = traffic_per_port(&cfg.topology, &nba_io::TrafficConfig::default());
    let balancer = nba_core::lb::shared(Box::new(nba_core::lb::CpuOnly));
    des::run(&cfg, &build, &balancer, &traffic);
}
