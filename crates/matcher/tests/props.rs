//! Property tests: automata vs. naive oracles, parser robustness.

use proptest::prelude::*;

use nba_matcher::{AhoCorasick, Regex};

/// Naive multi-pattern scan.
fn naive_matches(patterns: &[Vec<u8>], hay: &[u8]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for i in 0..hay.len() {
        for (pi, p) in patterns.iter().enumerate() {
            if hay[i..].starts_with(p) {
                out.push((pi, i + p.len()));
            }
        }
    }
    out.sort_unstable();
    out
}

fn small_alphabet_bytes(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(proptest::sample::select(vec![b'a', b'b', b'c']), 1..max_len)
}

proptest! {
    /// Aho-Corasick finds exactly the matches the naive scan finds, on a
    /// small alphabet where overlaps are common.
    #[test]
    fn ac_agrees_with_naive(
        patterns in proptest::collection::vec(small_alphabet_bytes(5), 1..6),
        hay in proptest::collection::vec(
            proptest::sample::select(vec![b'a', b'b', b'c', b'd']), 0..60),
    ) {
        let ac = AhoCorasick::new(&patterns);
        let mut got: Vec<(usize, usize)> =
            ac.find_all(&hay).into_iter().map(|m| (m.pattern, m.end)).collect();
        got.sort_unstable();
        prop_assert_eq!(got, naive_matches(&patterns, &hay));
    }

    /// is_match equals "any pattern is a substring".
    #[test]
    fn ac_is_match_equals_contains(
        patterns in proptest::collection::vec(small_alphabet_bytes(4), 1..5),
        hay in proptest::collection::vec(any::<u8>(), 0..80),
    ) {
        let ac = AhoCorasick::new(&patterns);
        let expect = patterns.iter().any(|p| hay.windows(p.len()).any(|w| w == &p[..]));
        prop_assert_eq!(ac.is_match(&hay), expect);
    }

    /// A literal regex (escaped) matches exactly when the literal occurs.
    #[test]
    fn regex_literal_equals_contains(
        lit in "[a-z]{1,8}",
        hay in "[a-z]{0,40}",
    ) {
        let re = Regex::new(&regex_escape(&lit)).unwrap();
        prop_assert_eq!(re.is_match(hay.as_bytes()), hay.contains(&lit));
    }

    /// An alternation of two literals matches iff either occurs.
    #[test]
    fn regex_alternation(
        a in "[a-z]{1,5}",
        b in "[a-z]{1,5}",
        hay in "[a-z]{0,30}",
    ) {
        let re = Regex::new(&format!("({})|({})", regex_escape(&a), regex_escape(&b))).unwrap();
        prop_assert_eq!(re.is_match(hay.as_bytes()), hay.contains(&a) || hay.contains(&b));
    }

    /// Anchored literals behave like starts_with / ends_with.
    #[test]
    fn regex_anchors(lit in "[a-z]{1,6}", hay in "[a-z]{0,20}") {
        let start = Regex::new(&format!("^{}", regex_escape(&lit))).unwrap();
        prop_assert_eq!(start.is_match(hay.as_bytes()), hay.starts_with(&lit));
        let end = Regex::new(&format!("{}$", regex_escape(&lit))).unwrap();
        prop_assert_eq!(end.is_match(hay.as_bytes()), hay.ends_with(&lit));
    }

    /// The parser never panics on arbitrary input: it returns Ok or Err.
    #[test]
    fn regex_parser_total(pattern in "\\PC{0,40}") {
        let _ = Regex::new(&pattern);
    }

    /// `a{m,n}` counts repetitions correctly.
    #[test]
    fn regex_bounded_repeat_counts(m in 0u32..5, extra in 0u32..4, reps in 0usize..10) {
        let n = m + extra;
        let re = Regex::new(&format!("^a{{{m},{n}}}$")).unwrap();
        let hay = "a".repeat(reps);
        let expect = reps >= m as usize && reps <= n as usize;
        prop_assert_eq!(re.is_match(hay.as_bytes()), expect, "a^{} vs {{{},{}}}", reps, m, n);
    }
}

/// Escapes regex metacharacters in a literal.
fn regex_escape(s: &str) -> String {
    let mut out = String::new();
    for c in s.chars() {
        if "\\^$.|?*+()[]{}".contains(c) {
            out.push('\\');
        }
        out.push(c);
    }
    out
}
