//! Stateful flow applications over the sharded [`FlowTable`]: NAT44,
//! a connection-tracking firewall, and a Maglev-style L4 load balancer.
//!
//! All three follow the same ownership discipline: each worker replica
//! owns one flow shard exclusively (RSS flow affinity guarantees a flow's
//! packets always land on the bucket's home worker), so the hot path takes
//! no locks. State is keyed per RSS bucket with per-bucket logical clocks,
//! which makes lookups, expiries, NAT port allocations, and journal
//! content deterministic across the DES and live runtimes at any worker
//! count.
//!
//! Elements attach to the run's [`FlowRegistry`] lazily on the first
//! packet (from node-local storage), so constructing a replica — including
//! the lint/verify spec-collection throwaway — costs nothing.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use nba_core::batch::{anno, Anno, PacketResult};
use nba_core::element::{Disposition, ElemCtx, Element, ElementEffects, HeaderFact, SlotClaim};
use nba_core::flow::{
    bucket_of, EvictReason, Evicted, FlowKey, FlowRegistry, FlowTable, FlowTableConfig,
    ShardFlowState, FLOW_BUCKETS,
};
use nba_io::checksum::internet_checksum_parts;
use nba_io::proto::ether::ETHER_HDR_LEN;
use nba_io::proto::ipv4::{self, IPV4_MIN_HDR_LEN};
use nba_io::proto::{ipv4_pseudo_header, IPPROTO_TCP, IPPROTO_UDP, TCP_FIN, TCP_RST, TCP_SYN};
use nba_io::Packet;
use nba_sim::CpuProfile;

// --- Shared parsing / rewrite plumbing ---

/// The 5-tuple plus the offsets needed to rewrite the frame in place.
struct ParsedV4 {
    key: FlowKey,
    /// IPv4 header offset in the frame.
    ip_off: usize,
    /// IPv4 header length.
    ihl: usize,
    /// L4 header offset in the frame.
    l4_off: usize,
    /// L4 segment length (from the IP total length).
    seg_len: usize,
    /// TCP flags byte (0 for UDP).
    tcp_flags: u8,
}

/// Extracts the TCP/UDP 5-tuple from a validated IPv4 frame. Returns
/// `None` for other protocols, truncated L4 headers, or frames whose IP
/// total length overruns the buffer.
fn parse_v4(frame: &[u8]) -> Option<ParsedV4> {
    let ip_off = ETHER_HDR_LEN;
    let ip = frame.get(ip_off..)?;
    if ip.len() < IPV4_MIN_HDR_LEN || ip[0] >> 4 != 4 {
        return None;
    }
    let ihl = usize::from(ip[0] & 0xf) * 4;
    let total = usize::from(u16::from_be_bytes([ip[2], ip[3]]));
    if ihl < IPV4_MIN_HDR_LEN || total < ihl || total > ip.len() {
        return None;
    }
    let proto = ip[9];
    let src_ip = u32::from_be_bytes(ip[12..16].try_into().unwrap());
    let dst_ip = u32::from_be_bytes(ip[16..20].try_into().unwrap());
    let l4 = &ip[ihl..total];
    let (min_l4, flags_at) = match proto {
        IPPROTO_TCP => (20, Some(13)),
        IPPROTO_UDP => (8, None),
        _ => return None,
    };
    if l4.len() < min_l4 {
        return None;
    }
    Some(ParsedV4 {
        key: FlowKey {
            proto,
            src_ip,
            dst_ip,
            src_port: u16::from_be_bytes([l4[0], l4[1]]),
            dst_port: u16::from_be_bytes([l4[2], l4[3]]),
        },
        ip_off,
        ihl,
        l4_off: ip_off + ihl,
        seg_len: total - ihl,
        tcp_flags: flags_at.map_or(0, |i| l4[i]),
    })
}

/// Rewrites the source address/port of a parsed TCP/UDP frame and
/// recomputes both the IPv4 header checksum and the L4 checksum (over the
/// pseudo-header, so the frames stay verifiable end to end).
fn rewrite_src(frame: &mut [u8], p: &ParsedV4, new_ip: u32, new_port: u16) {
    let ip = &mut frame[p.ip_off..];
    ip[12..16].copy_from_slice(&new_ip.to_be_bytes());
    ipv4::write_checksum(ip, p.ihl);
    let mut pseudo = [0u8; 12];
    pseudo.copy_from_slice(&ipv4_pseudo_header(
        &frame[p.ip_off..p.ip_off + IPV4_MIN_HDR_LEN],
        p.seg_len as u16,
        p.key.proto,
    ));
    let l4 = &mut frame[p.l4_off..p.l4_off + p.seg_len];
    l4[0..2].copy_from_slice(&new_port.to_be_bytes());
    let ck_at = if p.key.proto == IPPROTO_TCP { 16 } else { 6 };
    l4[ck_at] = 0;
    l4[ck_at + 1] = 0;
    let mut ck = internet_checksum_parts(&[&pseudo, l4]);
    // UDP transmits an all-zero checksum as "not computed"; RFC 768 maps
    // a computed zero onto 0xffff.
    if p.key.proto == IPPROTO_UDP && ck == 0 {
        ck = 0xffff;
    }
    let l4 = &mut frame[p.l4_off..];
    l4[ck_at..ck_at + 2].copy_from_slice(&ck.to_be_bytes());
}

/// The per-element attachment to the run's flow plane: the owned shard
/// table plus the shared counters, created on the first processed packet.
struct FlowAttach {
    table: FlowTable,
    shard: Arc<ShardFlowState>,
    /// Run worker count (0 = unknown): foreign-bucket detection.
    workers: usize,
}

impl FlowAttach {
    fn new(ctx: &ElemCtx<'_>, cfg: FlowTableConfig) -> FlowAttach {
        let registry = FlowRegistry::from_nls(ctx.nls);
        FlowAttach {
            table: FlowTable::new(ctx.worker, cfg, &registry),
            shard: registry_shard(&registry, ctx.worker),
            workers: registry.workers(),
        }
    }

    /// Is `bucket` homed on another worker? True only after a re-steer
    /// (RSS otherwise never delivers foreign buckets here).
    fn foreign(&self, bucket: u16, worker: usize) -> bool {
        self.workers > 0 && usize::from(bucket) % self.workers != worker
    }
}

fn registry_shard(registry: &FlowRegistry, worker: usize) -> Arc<ShardFlowState> {
    registry.shard(worker)
}

// --- NAT44 ---

/// Knobs of the [`Nat44`] element.
#[derive(Debug, Clone)]
pub struct NatConfig {
    /// First external IPv4 address of the pool.
    pub ext_ip_base: u32,
    /// Consecutive external addresses in the pool.
    pub ext_ips: u32,
    /// Ports usable per external address (allocated from 1024 upward).
    /// The pool holds `ext_ips * ports_per_ip` mappings.
    pub ports_per_ip: u32,
    /// Flow-table sizing and expiry.
    pub table: FlowTableConfig,
}

impl Default for NatConfig {
    fn default() -> Self {
        NatConfig {
            // 198.18.0.0/15 is reserved for benchmarking (RFC 2544).
            ext_ip_base: u32::from_be_bytes([198, 18, 0, 1]),
            ext_ips: 1,
            ports_per_ip: 64512,
            table: FlowTableConfig::default(),
        }
    }
}

/// One bucket's slice of the global port-index space. Allocation pops the
/// free stack (ports released by expired bindings) before bumping the
/// high-water mark — both orders are per-bucket deterministic, so DES and
/// live allocate identical mappings.
#[derive(Debug, Default)]
struct PortSlice {
    /// Next never-used offset within the slice.
    next: u32,
    /// Offsets released by evicted bindings.
    free: Vec<u32>,
}

/// Endpoint-independent NAT44: source address/port translation with a
/// per-bucket port pool. The binding is keyed on `(proto, src)` alone
/// (full-cone behaviour), so every destination a host talks to reuses one
/// external mapping. Packets that cannot be mapped (pool or table
/// exhausted, non-TCP/UDP) drop.
pub struct Nat44 {
    cfg: NatConfig,
    attach: Option<FlowAttach>,
    pools: Vec<PortSlice>,
    /// Ports per bucket slice (floor; remainder ports go unused).
    slice_len: u32,
    scratch: Vec<Evicted>,
}

impl Nat44 {
    /// Creates the element; state attaches on the first packet.
    pub fn new(cfg: NatConfig) -> Nat44 {
        let space = u64::from(cfg.ext_ips) * u64::from(cfg.ports_per_ip);
        let slice_len = (space / FLOW_BUCKETS as u64).min(u64::from(u32::MAX)) as u32;
        Nat44 {
            cfg,
            attach: None,
            pools: (0..FLOW_BUCKETS).map(|_| PortSlice::default()).collect(),
            slice_len,
            scratch: Vec::new(),
        }
    }

    /// Decodes a global port index into `(external ip, external port)`.
    fn mapping_of(&self, idx: u64) -> (u32, u16) {
        let ip = self
            .cfg
            .ext_ip_base
            .wrapping_add((idx / u64::from(self.cfg.ports_per_ip)) as u32);
        let port = 1024u32.wrapping_add((idx % u64::from(self.cfg.ports_per_ip)) as u32);
        (ip, port.min(u32::from(u16::MAX)) as u16)
    }

    fn alloc_port(&mut self, bucket: u16) -> Option<u64> {
        if self.slice_len == 0 {
            return None;
        }
        let pool = &mut self.pools[usize::from(bucket)];
        let off = match pool.free.pop() {
            Some(off) => off,
            None if pool.next < self.slice_len => {
                pool.next += 1;
                pool.next - 1
            }
            None => return None,
        };
        Some(u64::from(bucket) * u64::from(self.slice_len) + u64::from(off))
    }

    fn release_ports(&mut self, bucket: u16) {
        let base = u64::from(bucket) * u64::from(self.slice_len);
        for ev in self.scratch.drain(..) {
            let off = ev.value.wrapping_sub(base);
            if off < u64::from(self.slice_len) {
                self.pools[usize::from(bucket)].free.push(off as u32);
            }
        }
    }
}

impl Element for Nat44 {
    fn class_name(&self) -> &'static str {
        "Nat44"
    }

    fn slot_claims(&self) -> &'static [SlotClaim] {
        const CLAIMS: &[SlotClaim] = &[SlotClaim::reads(anno::FLOW_ID)];
        CLAIMS
    }

    fn process(
        &mut self,
        ctx: &mut ElemCtx<'_>,
        pkt: &mut Packet,
        anno: &mut Anno,
    ) -> PacketResult {
        if self.attach.is_none() {
            self.attach = Some(FlowAttach::new(ctx, self.cfg.table));
        }
        let Some(p) = parse_v4(pkt.data()) else {
            return PacketResult::Drop;
        };
        let bucket = bucket_of(anno.get(anno::FLOW_ID));
        let at = self.attach.as_mut().expect("attached above");
        at.table.tick(bucket, &mut self.scratch);
        // The binding ignores the destination: endpoint-independent.
        let bind = FlowKey {
            dst_ip: 0,
            dst_port: 0,
            ..p.key
        };
        let idx = match at.table.lookup(bucket, &bind, &mut self.scratch) {
            Some(idx) => Some(idx),
            None => {
                let foreign = at.foreign(bucket, ctx.worker);
                match self.alloc_port(bucket) {
                    Some(idx) => {
                        let at = self.attach.as_mut().expect("attached");
                        match at
                            .table
                            .insert(bucket, bind, idx, false, foreign, &mut self.scratch)
                        {
                            Ok(()) => {
                                at.shard
                                    .stats
                                    .nat_ports_in_use
                                    .fetch_add(1, Ordering::Relaxed);
                                Some(idx)
                            }
                            Err(_) => {
                                // Table full: hand the port straight back.
                                self.pools[usize::from(bucket)]
                                    .free
                                    .push((idx % u64::from(self.slice_len.max(1))) as u32);
                                None
                            }
                        }
                    }
                    None => {
                        let at = self.attach.as_ref().expect("attached");
                        at.shard
                            .stats
                            .table_full_drops
                            .fetch_add(1, Ordering::Relaxed);
                        None
                    }
                }
            }
        };
        // Expired bindings release their ports before we answer.
        let released = self.scratch.len();
        if released > 0 {
            let at = self.attach.as_ref().expect("attached");
            at.shard
                .stats
                .nat_ports_in_use
                .fetch_sub(released as u64, Ordering::Relaxed);
            self.release_ports(bucket);
        }
        match idx {
            Some(idx) => {
                let (ip, port) = self.mapping_of(idx);
                rewrite_src(pkt.data_mut(), &p, ip, port);
                PacketResult::Out(0)
            }
            None => PacketResult::Drop,
        }
    }

    fn cpu_profile(&self) -> CpuProfile {
        // Hash probe + header rewrite + two checksums.
        CpuProfile::fixed(96)
    }

    fn effects(&self) -> ElementEffects {
        const REQ: &[HeaderFact] = &[HeaderFact::Ipv4Valid];
        const OK: &[SlotClaim] = &[SlotClaim::reads(anno::FLOW_ID)];
        ElementEffects {
            requires: REQ,
            default_ok: OK,
            disposition: Disposition::MayDrop,
            ..ElementEffects::default()
        }
    }
}

impl std::fmt::Debug for Nat44 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Nat44")
            .field("ext_ips", &self.cfg.ext_ips)
            .field("ports_per_ip", &self.cfg.ports_per_ip)
            .field("slice_len", &self.slice_len)
            .finish()
    }
}

// --- Connection-tracking firewall ---

/// TCP connection states tracked per flow (stored in the table value).
const CT_SYN_SENT: u64 = 0;
const CT_ESTABLISHED: u64 = 1;

/// Knobs of the [`ConnTrackFirewall`] element.
#[derive(Debug, Clone, Default)]
pub struct FirewallConfig {
    /// Flow-table sizing and expiry. Set `embryonic_ttl_epochs` short to
    /// shed half-open (SYN flood) state quickly.
    pub table: FlowTableConfig,
}

/// A stateful TCP firewall: SYN opens an embryonic entry, the first
/// non-SYN segment of a tracked flow promotes it to ESTABLISHED, FIN/RST
/// closes it. Out-of-state segments (no tracked flow) leave on port 1 —
/// wire it to `Discard` — and are counted in `out_of_state_drops`.
/// Non-TCP traffic passes untracked. A full table drops the opening SYN
/// rather than displacing live (possibly established) entries.
pub struct ConnTrackFirewall {
    cfg: FirewallConfig,
    attach: Option<FlowAttach>,
    scratch: Vec<Evicted>,
}

impl ConnTrackFirewall {
    /// Creates the element; state attaches on the first packet.
    pub fn new(cfg: FirewallConfig) -> ConnTrackFirewall {
        ConnTrackFirewall {
            cfg,
            attach: None,
            scratch: Vec::new(),
        }
    }
}

impl Element for ConnTrackFirewall {
    fn class_name(&self) -> &'static str {
        "ConnTrackFirewall"
    }

    fn output_count(&self) -> usize {
        2
    }

    fn slot_claims(&self) -> &'static [SlotClaim] {
        const CLAIMS: &[SlotClaim] = &[SlotClaim::reads(anno::FLOW_ID)];
        CLAIMS
    }

    fn process(
        &mut self,
        ctx: &mut ElemCtx<'_>,
        pkt: &mut Packet,
        anno: &mut Anno,
    ) -> PacketResult {
        if self.attach.is_none() {
            self.attach = Some(FlowAttach::new(ctx, self.cfg.table));
        }
        let Some(p) = parse_v4(pkt.data()) else {
            return PacketResult::Drop;
        };
        if p.key.proto != IPPROTO_TCP {
            return PacketResult::Out(0);
        }
        let bucket = bucket_of(anno.get(anno::FLOW_ID));
        let at = self.attach.as_mut().expect("attached above");
        at.table.tick(bucket, &mut self.scratch);
        self.scratch.clear();
        let flags = p.tcp_flags;
        let tracked = at.table.lookup(bucket, &p.key, &mut self.scratch);
        self.scratch.clear();
        let out = if flags & TCP_RST != 0 || flags & TCP_FIN != 0 {
            match tracked {
                Some(_) => {
                    at.table
                        .remove(bucket, &p.key, EvictReason::Closed, &mut self.scratch);
                    self.scratch.clear();
                    PacketResult::Out(0)
                }
                None => PacketResult::Out(1),
            }
        } else if flags & TCP_SYN != 0 {
            match tracked {
                // SYN retransmit of a tracked flow: fine.
                Some(_) => PacketResult::Out(0),
                None => {
                    let foreign = at.foreign(bucket, ctx.worker);
                    match at.table.insert(
                        bucket,
                        p.key,
                        CT_SYN_SENT,
                        true,
                        foreign,
                        &mut self.scratch,
                    ) {
                        Ok(()) => {
                            self.scratch.clear();
                            PacketResult::Out(0)
                        }
                        // Never displace live flows for a new SYN.
                        Err(_) => PacketResult::Drop,
                    }
                }
            }
        } else {
            match tracked {
                Some(CT_SYN_SENT) => {
                    at.table.promote(bucket, &p.key, CT_ESTABLISHED, false);
                    PacketResult::Out(0)
                }
                Some(_) => PacketResult::Out(0),
                None => PacketResult::Out(1),
            }
        };
        if out == PacketResult::Out(1) {
            at.shard
                .stats
                .out_of_state_drops
                .fetch_add(1, Ordering::Relaxed);
        }
        out
    }

    fn cpu_profile(&self) -> CpuProfile {
        // Hash probe + a small state machine.
        CpuProfile::fixed(64)
    }

    fn effects(&self) -> ElementEffects {
        const REQ: &[HeaderFact] = &[HeaderFact::Ipv4Valid];
        const OK: &[SlotClaim] = &[SlotClaim::reads(anno::FLOW_ID)];
        ElementEffects {
            requires: REQ,
            default_ok: OK,
            disposition: Disposition::MayDrop,
            ..ElementEffects::default()
        }
    }
}

impl std::fmt::Debug for ConnTrackFirewall {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConnTrackFirewall").finish()
    }
}

// --- Maglev L4 load balancer ---

/// Knobs of the [`MaglevLb`] element.
#[derive(Debug, Clone)]
pub struct MaglevConfig {
    /// Live backends at start of run (ids `0..backends`).
    pub backends: u32,
    /// Consistent-hash lookup table size (rounded up to at least the
    /// backend count; prime sizes spread best).
    pub table_size: u32,
    /// Output NIC ports backends map onto (`backend % ports`).
    pub ports: u16,
    /// Seed of the per-slot backend preferences.
    pub seed: u64,
    /// Per-bucket epoch at which the backend set flips (0 = never).
    pub flip_epoch: u64,
    /// Backend removed at the flip.
    pub flip_remove: u32,
    /// Flow-table sizing and expiry (connection pinning).
    pub table: FlowTableConfig,
}

impl Default for MaglevConfig {
    fn default() -> Self {
        MaglevConfig {
            backends: 8,
            table_size: 251,
            ports: 8,
            seed: 42,
            flip_epoch: 0,
            flip_remove: 7,
            table: FlowTableConfig::default(),
        }
    }
}

/// A consistent-hash backend table. Each slot independently picks the
/// backend with the highest rendezvous hash, so removing one backend
/// remaps only the slots that backend owned — the minimal-disruption
/// property the L4 balancer tests pin down.
#[derive(Debug, Clone)]
pub struct BackendTable {
    slots: Vec<u32>,
}

impl BackendTable {
    /// Builds the table for the given live backend set.
    pub fn build(seed: u64, table_size: u32, backends: &[u32]) -> BackendTable {
        let size = table_size.max(1).max(backends.len() as u32);
        let slots = (0..size)
            .map(|slot| {
                backends
                    .iter()
                    .copied()
                    .max_by_key(|b| mix(seed, u64::from(*b), u64::from(slot)))
                    .unwrap_or(0)
            })
            .collect();
        BackendTable { slots }
    }

    /// The backend owning `hash`.
    pub fn pick(&self, hash: u64) -> u32 {
        self.slots[(hash % self.slots.len() as u64) as usize]
    }

    /// The slot assignments (test inspection).
    pub fn slots(&self) -> &[u32] {
        &self.slots
    }
}

/// A 64-bit mixer (splitmix-style) for rendezvous hashing.
fn mix(seed: u64, backend: u64, slot: u64) -> u64 {
    let mut z = seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(backend.wrapping_mul(0xbf58_476d_1ce4_e5b9))
        .wrapping_add(slot.wrapping_mul(0x94d0_49bb_1331_11eb));
    z ^= z >> 30;
    z = z.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z ^= z >> 27;
    z = z.wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    z
}

/// Maglev-style L4 load balancing with connection pinning: the first
/// packet of a flow consults the consistent-hash table and pins the
/// backend in the flow shard; later packets stick to it even across a
/// backend flip (minimal disruption for live connections). The chosen
/// backend lands in [`anno::IFACE_OUT`] modulo `ports`.
pub struct MaglevLb {
    cfg: MaglevConfig,
    before: BackendTable,
    after: BackendTable,
    attach: Option<FlowAttach>,
    scratch: Vec<Evicted>,
}

impl MaglevLb {
    /// Creates the element; the before/after tables are precomputed so a
    /// mid-run flip costs nothing.
    ///
    /// # Panics
    ///
    /// Panics if `ports` is zero.
    pub fn new(cfg: MaglevConfig) -> MaglevLb {
        assert!(cfg.ports > 0, "MaglevLb needs at least one output port");
        let live: Vec<u32> = (0..cfg.backends.max(1)).collect();
        let before = BackendTable::build(cfg.seed, cfg.table_size, &live);
        let survivors: Vec<u32> = live
            .iter()
            .copied()
            .filter(|b| *b != cfg.flip_remove)
            .collect();
        let after = if survivors.is_empty() {
            before.clone()
        } else {
            BackendTable::build(cfg.seed, cfg.table_size, &survivors)
        };
        MaglevLb {
            cfg,
            before,
            after,
            attach: None,
            scratch: Vec::new(),
        }
    }

    /// The backend table in force at `epoch`.
    fn table_at(&self, epoch: u64) -> &BackendTable {
        if self.cfg.flip_epoch > 0 && epoch >= self.cfg.flip_epoch {
            &self.after
        } else {
            &self.before
        }
    }
}

impl Element for MaglevLb {
    fn class_name(&self) -> &'static str {
        "MaglevLb"
    }

    fn slot_claims(&self) -> &'static [SlotClaim] {
        const CLAIMS: &[SlotClaim] = &[
            SlotClaim::reads(anno::FLOW_ID),
            SlotClaim::writes(anno::IFACE_OUT),
        ];
        CLAIMS
    }

    fn process(
        &mut self,
        ctx: &mut ElemCtx<'_>,
        pkt: &mut Packet,
        anno: &mut Anno,
    ) -> PacketResult {
        if self.attach.is_none() {
            self.attach = Some(FlowAttach::new(ctx, self.cfg.table));
        }
        let Some(p) = parse_v4(pkt.data()) else {
            return PacketResult::Drop;
        };
        let bucket = bucket_of(anno.get(anno::FLOW_ID));
        let at = self.attach.as_mut().expect("attached above");
        at.table.tick(bucket, &mut self.scratch);
        self.scratch.clear();
        let backend = match at.table.lookup(bucket, &p.key, &mut self.scratch) {
            Some(b) => b,
            None => {
                let epoch = at.table.epoch(bucket);
                let b = u64::from(self.table_at(epoch).pick(p.key.digest()));
                let at = self.attach.as_mut().expect("attached");
                let foreign = at.foreign(bucket, ctx.worker);
                // A full table degrades to unpinned consistent hashing —
                // the balancer never drops for lack of state.
                let _ = at
                    .table
                    .insert(bucket, p.key, b, false, foreign, &mut self.scratch);
                b
            }
        };
        self.scratch.clear();
        anno.set(anno::IFACE_OUT, backend % u64::from(self.cfg.ports));
        PacketResult::Out(0)
    }

    fn cpu_profile(&self) -> CpuProfile {
        // Hash probe or one table read.
        CpuProfile::fixed(48)
    }

    fn effects(&self) -> ElementEffects {
        const REQ: &[HeaderFact] = &[HeaderFact::Ipv4Valid];
        const OK: &[SlotClaim] = &[SlotClaim::reads(anno::FLOW_ID)];
        ElementEffects {
            requires: REQ,
            default_ok: OK,
            disposition: Disposition::MayDrop,
            ..ElementEffects::default()
        }
    }
}

impl std::fmt::Debug for MaglevLb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MaglevLb")
            .field("backends", &self.cfg.backends)
            .field("table_size", &self.before.slots.len())
            .field("flip_epoch", &self.cfg.flip_epoch)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nba_core::element::ComputeMode;
    use nba_core::nls::NodeLocalStorage;
    use nba_core::stats::{Counters, SystemInspector};
    use nba_io::proto::FrameBuilder;
    use nba_io::proto::TCP_ACK;
    use nba_sim::Time;

    fn run_flow(
        el: &mut dyn Element,
        nls: &NodeLocalStorage,
        insp: &SystemInspector,
        pkt: &mut Packet,
        flow_id: u64,
    ) -> (PacketResult, Anno) {
        let mut ctx = ElemCtx {
            now: Time::ZERO,
            compute: ComputeMode::Full,
            nls,
            worker: 0,
            inspector: insp,
        };
        let mut anno = Anno::default();
        anno.set(anno::FLOW_ID, flow_id);
        let r = el.process(&mut ctx, pkt, &mut anno);
        (r, anno)
    }

    fn harness() -> (NodeLocalStorage, SystemInspector) {
        let nls = NodeLocalStorage::new();
        FlowRegistry::new().publish(&nls);
        (
            nls,
            SystemInspector::new(vec![Arc::new(Counters::default())]),
        )
    }

    fn tcp_frame(src: u32, sport: u16, dst: u32, dport: u16, flags: u8) -> Vec<u8> {
        let mut f = vec![0u8; 64];
        let mut b = FrameBuilder::default();
        b.src_port = sport;
        b.dst_port = dport;
        b.build_ipv4_tcp(&mut f, 64, src, dst, flags, 0);
        f
    }

    fn udp_frame(src: u32, sport: u16, dst: u32, dport: u16) -> Vec<u8> {
        let mut f = vec![0u8; 64];
        let mut b = FrameBuilder::default();
        b.src_port = sport;
        b.dst_port = dport;
        b.build_ipv4(&mut f, 64, src, dst);
        f
    }

    fn frame_checksums_ok(frame: &[u8]) -> bool {
        let p = parse_v4(frame).expect("parseable");
        let ip = &frame[p.ip_off..];
        if nba_io::checksum::internet_checksum(&ip[..p.ihl]) != 0 {
            return false;
        }
        let pseudo = ipv4_pseudo_header(&ip[..IPV4_MIN_HDR_LEN], p.seg_len as u16, p.key.proto);
        internet_checksum_parts(&[&pseudo, &frame[p.l4_off..p.l4_off + p.seg_len]]) == 0
    }

    #[test]
    fn nat_translates_and_reuses_binding_across_destinations() {
        let (nls, insp) = harness();
        let mut nat = Nat44::new(NatConfig::default());
        let mut a = Packet::from_bytes(&udp_frame(0x0a000001, 5000, 0x08080808, 53));
        let (r, _) = run_flow(&mut nat, &nls, &insp, &mut a, 3);
        assert_eq!(r, PacketResult::Out(0));
        let pa = parse_v4(a.data()).unwrap();
        assert_eq!(pa.key.src_ip, u32::from_be_bytes([198, 18, 0, 1]));
        assert!(frame_checksums_ok(a.data()));
        // Same source, different destination: endpoint-independent
        // mapping reuses the same external ip/port.
        let mut b = Packet::from_bytes(&udp_frame(0x0a000001, 5000, 0x01010101, 123));
        let (r, _) = run_flow(&mut nat, &nls, &insp, &mut b, 3);
        assert_eq!(r, PacketResult::Out(0));
        let pb = parse_v4(b.data()).unwrap();
        assert_eq!(
            (pa.key.src_ip, pa.key.src_port),
            (pb.key.src_ip, pb.key.src_port)
        );
        // A different source gets a different mapping.
        let mut c = Packet::from_bytes(&udp_frame(0x0a000002, 5000, 0x08080808, 53));
        run_flow(&mut nat, &nls, &insp, &mut c, 3);
        let pc = parse_v4(c.data()).unwrap();
        assert_ne!(
            (pa.key.src_ip, pa.key.src_port),
            (pc.key.src_ip, pc.key.src_port)
        );
    }

    #[test]
    fn nat_pool_exhaustion_drops_then_recovers_after_expiry() {
        let (nls, insp) = harness();
        // 128 ports over 128 buckets = one port per bucket slice; epoch
        // every 2 packets, 1-epoch TTL → idle bindings expire fast.
        let mut nat = Nat44::new(NatConfig {
            ext_ips: 1,
            ports_per_ip: 128,
            table: FlowTableConfig {
                capacity: 1 << 10,
                ttl_epochs: 1,
                embryonic_ttl_epochs: 0,
                epoch_pkts: 2,
            },
            ..NatConfig::default()
        });
        let mut a = Packet::from_bytes(&udp_frame(0x0a000001, 1, 0x08080808, 53));
        assert_eq!(
            run_flow(&mut nat, &nls, &insp, &mut a, 0).0,
            PacketResult::Out(0)
        );
        // Second distinct source in the same bucket: slice exhausted.
        let mut b = Packet::from_bytes(&udp_frame(0x0a000002, 2, 0x08080808, 53));
        assert_eq!(
            run_flow(&mut nat, &nls, &insp, &mut b, 0).0,
            PacketResult::Drop
        );
        // Tick the bucket clock past the TTL with packets from source 2:
        // source 1's binding expires and its port is released.
        for _ in 0..6 {
            let mut p = Packet::from_bytes(&udp_frame(0x0a000002, 2, 0x08080808, 53));
            run_flow(&mut nat, &nls, &insp, &mut p, 0);
        }
        let mut c = Packet::from_bytes(&udp_frame(0x0a000002, 2, 0x08080808, 53));
        assert_eq!(
            run_flow(&mut nat, &nls, &insp, &mut c, 0).0,
            PacketResult::Out(0)
        );
    }

    #[test]
    fn nat_zero_sized_pools_never_panic() {
        for (ips, ppp) in [(0, 64512), (1, 0), (0, 0), (1, 1)] {
            let (nls, insp) = harness();
            let mut nat = Nat44::new(NatConfig {
                ext_ips: ips,
                ports_per_ip: ppp,
                ..NatConfig::default()
            });
            let mut p = Packet::from_bytes(&udp_frame(1, 1, 2, 2));
            // 1 port over 128 buckets floors to empty slices: every
            // allocation fails, nothing panics.
            assert_eq!(
                run_flow(&mut nat, &nls, &insp, &mut p, 0).0,
                PacketResult::Drop
            );
        }
    }

    #[test]
    fn firewall_tracks_the_tcp_lifecycle() {
        let (nls, insp) = harness();
        let mut fw = ConnTrackFirewall::new(FirewallConfig::default());
        let syn = tcp_frame(1, 1000, 2, 80, TCP_SYN);
        let data = tcp_frame(1, 1000, 2, 80, TCP_ACK | 0x08);
        let fin = tcp_frame(1, 1000, 2, 80, TCP_FIN | TCP_ACK);
        let mut p = Packet::from_bytes(&syn);
        assert_eq!(
            run_flow(&mut fw, &nls, &insp, &mut p, 9).0,
            PacketResult::Out(0)
        );
        let mut p = Packet::from_bytes(&data);
        assert_eq!(
            run_flow(&mut fw, &nls, &insp, &mut p, 9).0,
            PacketResult::Out(0)
        );
        let mut p = Packet::from_bytes(&fin);
        assert_eq!(
            run_flow(&mut fw, &nls, &insp, &mut p, 9).0,
            PacketResult::Out(0)
        );
        // After FIN the flow is gone: more data is out of state.
        let mut p = Packet::from_bytes(&data);
        assert_eq!(
            run_flow(&mut fw, &nls, &insp, &mut p, 9).0,
            PacketResult::Out(1)
        );
    }

    #[test]
    fn firewall_rejects_unsolicited_segments() {
        let (nls, insp) = harness();
        let reg = FlowRegistry::from_nls(&nls);
        let mut fw = ConnTrackFirewall::new(FirewallConfig::default());
        let mut p = Packet::from_bytes(&tcp_frame(1, 1000, 2, 80, TCP_ACK));
        assert_eq!(
            run_flow(&mut fw, &nls, &insp, &mut p, 9).0,
            PacketResult::Out(1)
        );
        let mut p = Packet::from_bytes(&tcp_frame(1, 1000, 2, 80, TCP_RST));
        assert_eq!(
            run_flow(&mut fw, &nls, &insp, &mut p, 9).0,
            PacketResult::Out(1)
        );
        let report = reg.report().expect("attached");
        assert_eq!(report.totals().out_of_state_drops, 2);
        // Non-TCP passes untracked.
        let mut p = Packet::from_bytes(&udp_frame(1, 1000, 2, 53));
        assert_eq!(
            run_flow(&mut fw, &nls, &insp, &mut p, 9).0,
            PacketResult::Out(0)
        );
    }

    #[test]
    fn maglev_pins_flows_and_balances_new_ones() {
        let (nls, insp) = harness();
        let mut lb = MaglevLb::new(MaglevConfig {
            backends: 4,
            ports: 8,
            ..MaglevConfig::default()
        });
        let mut seen = std::collections::HashSet::new();
        for src in 0..64u32 {
            let frame = tcp_frame(src + 1, 1000, 2, 80, TCP_ACK);
            let mut p = Packet::from_bytes(&frame);
            let (r, anno1) = run_flow(&mut lb, &nls, &insp, &mut p, u64::from(src));
            assert_eq!(r, PacketResult::Out(0));
            // The pinned repeat lands on the same backend.
            let mut p = Packet::from_bytes(&frame);
            let (_, anno2) = run_flow(&mut lb, &nls, &insp, &mut p, u64::from(src));
            assert_eq!(anno1.get(anno::IFACE_OUT), anno2.get(anno::IFACE_OUT));
            seen.insert(anno1.get(anno::IFACE_OUT));
        }
        assert!(seen.len() >= 3, "only {} backends used", seen.len());
    }

    #[test]
    fn backend_removal_remaps_only_the_removed_backends_slots() {
        let all: Vec<u32> = (0..8).collect();
        let survivors: Vec<u32> = (0..8).filter(|b| *b != 3).collect();
        let before = BackendTable::build(42, 251, &all);
        let after = BackendTable::build(42, 251, &survivors);
        for (b, a) in before.slots().iter().zip(after.slots()) {
            if *b != 3 {
                assert_eq!(b, a, "slot moved although its backend survived");
            } else {
                assert_ne!(*a, 3);
            }
        }
        let moved = before.slots().iter().filter(|b| **b == 3).count();
        assert!(moved > 0, "backend 3 owned no slots");
    }

    #[test]
    fn maglev_flip_keeps_pinned_flows_and_remaps_new_ones() {
        let (nls, insp) = harness();
        // Epoch every 2 packets; flip at epoch 2.
        let mut lb = MaglevLb::new(MaglevConfig {
            backends: 4,
            ports: 8,
            flip_epoch: 2,
            flip_remove: 2,
            table: FlowTableConfig {
                capacity: 1 << 10,
                ttl_epochs: u64::MAX,
                embryonic_ttl_epochs: 0,
                epoch_pkts: 2,
            },
            ..MaglevConfig::default()
        });
        // Find a flow the pre-flip table maps to the doomed backend.
        let pinned_src = (1..2000u32)
            .find(|s| {
                let key = FlowKey {
                    proto: IPPROTO_TCP,
                    src_ip: *s,
                    dst_ip: 2,
                    src_port: 1000,
                    dst_port: 80,
                };
                lb.before.pick(key.digest()) == 2
            })
            .expect("some flow maps to backend 2");
        let frame = tcp_frame(pinned_src, 1000, 2, 80, TCP_ACK);
        let mut p = Packet::from_bytes(&frame);
        let (_, a0) = run_flow(&mut lb, &nls, &insp, &mut p, 5);
        assert_eq!(a0.get(anno::IFACE_OUT), 2 % 8);
        // Tick the bucket past the flip epoch.
        for _ in 0..6 {
            let mut p = Packet::from_bytes(&frame);
            let (_, a) = run_flow(&mut lb, &nls, &insp, &mut p, 5);
            // Pinned: still the old backend, even after the flip.
            assert_eq!(a.get(anno::IFACE_OUT), a0.get(anno::IFACE_OUT));
        }
        // A NEW flow that the old table mapped to backend 2 now avoids it.
        let fresh_src = (pinned_src + 1..20000u32)
            .find(|s| {
                let key = FlowKey {
                    proto: IPPROTO_TCP,
                    src_ip: *s,
                    dst_ip: 2,
                    src_port: 1000,
                    dst_port: 80,
                };
                lb.before.pick(key.digest()) == 2
            })
            .expect("another flow maps to backend 2");
        let frame = tcp_frame(fresh_src, 1000, 2, 80, TCP_ACK);
        let mut p = Packet::from_bytes(&frame);
        let (_, a) = run_flow(&mut lb, &nls, &insp, &mut p, 5);
        assert_ne!(a.get(anno::IFACE_OUT), 2 % 8);
    }

    #[test]
    fn parse_rejects_junk() {
        assert!(parse_v4(&[0u8; 10]).is_none());
        assert!(parse_v4(&[0u8; 60]).is_none()); // version 0
        let esp = {
            let mut f = vec![0u8; 64];
            FrameBuilder::default().build_ipv4(&mut f, 64, 1, 2);
            f[ETHER_HDR_LEN + 9] = 50; // ESP: not ours
            f
        };
        assert!(parse_v4(&esp).is_none());
    }
}
