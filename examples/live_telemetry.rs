//! Runs the live (OS-thread) runtime for a moment and prints its telemetry:
//! the merged per-element profile table, the reporter thread's time-series,
//! and the first few batch-lifecycle trace events.
//!
//! ```sh
//! cargo run --release --example live_telemetry
//! ```

use std::time::Duration;

use nba::apps::{pipelines, AppConfig};
use nba::core::lb;
use nba::core::runtime::live::{self, LiveConfig};
use nba::core::telemetry::{profile_table, samples_to_jsonl, trace_to_jsonl, TelemetryConfig};
use nba::sim::Time;

fn main() {
    let cfg = LiveConfig {
        workers: 2,
        duration: Duration::from_millis(300),
        telemetry: TelemetryConfig {
            sample_interval: Some(Time::from_ms(50)),
            trace_capacity: 256,
        },
        ..LiveConfig::default()
    };
    let app = AppConfig {
        ports: 4,
        v4_routes: 1024,
        ..AppConfig::default()
    };
    let r = live::run(
        &cfg,
        &pipelines::ipv4_router(&app),
        &lb::shared(Box::new(lb::CpuOnly)),
    );
    println!(
        "live: {:.2} Gbps ({} samples, {} trace events)\n",
        r.gbps,
        r.samples.len(),
        r.trace.len()
    );
    print!("{}", profile_table(&r.elements));
    println!("\n== time-series (JSONL) ==");
    print!("{}", samples_to_jsonl(&r.samples));
    println!("\n== first trace events (JSONL) ==");
    print!("{}", trace_to_jsonl(&r.trace[..r.trace.len().min(6)]));
}
