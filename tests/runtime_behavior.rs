//! Targeted behaviour tests of the DES runtime mechanics: offload
//! aggregation, backpressure, latency accounting, worker scaling.

use nba::apps::{pipelines, AppConfig};
use nba::core::element::ComputeMode;
use nba::core::lb;
use nba::core::runtime::{des, traffic_per_port, RunReport, RuntimeConfig};
use nba::io::{SizeDist, TrafficConfig};
use nba::sim::Time;

fn cfg() -> RuntimeConfig {
    RuntimeConfig {
        compute: ComputeMode::HeadersOnly,
        ..RuntimeConfig::test_default()
    }
}

fn app(cfg: &RuntimeConfig) -> AppConfig {
    AppConfig {
        ports: cfg.topology.ports.len() as u16,
        v4_routes: 2048,
        ..AppConfig::default()
    }
}

fn run_gpu(cfg: &RuntimeConfig, gbps: f64, size: usize) -> RunReport {
    let app = app(cfg);
    let traffic = traffic_per_port(
        &cfg.topology,
        &TrafficConfig {
            offered_gbps: gbps,
            size: SizeDist::Fixed(size),
            ..TrafficConfig::default()
        },
    );
    des::run(
        cfg,
        &pipelines::ipv4_router(&app),
        &lb::shared(Box::new(lb::GpuOnly)),
        &traffic,
    )
}

#[test]
fn aggregation_amortizes_kernel_launches() {
    // More aggregation => fewer, larger GPU tasks for the same traffic.
    let small = RuntimeConfig {
        offload_aggregate: 1,
        ..cfg()
    };
    let large = RuntimeConfig {
        offload_aggregate: 32,
        ..cfg()
    };
    let r_small = run_gpu(&small, 2.0, 128);
    let r_large = run_gpu(&large, 2.0, 128);
    let t_small: u64 = r_small.gpu.iter().map(|g| g.tasks).sum();
    let t_large: u64 = r_large.gpu.iter().map(|g| g.tasks).sum();
    assert!(t_small > t_large * 2, "tasks: {t_small} vs {t_large}");
}

#[test]
fn aggregation_timeout_bounds_gpu_latency_at_light_load() {
    // At trickle load an aggregate never fills; the timeout launches it.
    let quick = RuntimeConfig {
        offload_agg_timeout: Time::from_us(30),
        ..cfg()
    };
    let slow = RuntimeConfig {
        offload_agg_timeout: Time::from_us(400),
        ..cfg()
    };
    // Trickle load so aggregates cannot fill before the timeout fires.
    let r_quick = run_gpu(&quick, 0.05, 128);
    let r_slow = run_gpu(&slow, 0.05, 128);
    let p50_quick = r_quick.latency.percentile(50.0);
    let p50_slow = r_slow.latency.percentile(50.0);
    assert!(
        p50_slow > p50_quick + Time::from_us(100),
        "quick {p50_quick} vs slow {p50_slow}"
    );
}

#[test]
fn overload_backpressure_reaches_rx_rings() {
    // Saturate the GPU path (IPsec is far heavier than the lookup): drops
    // must appear at RX, not mid-pipeline.
    let c = cfg();
    let a = app(&c);
    let traffic = traffic_per_port(
        &c.topology,
        &TrafficConfig {
            offered_gbps: 10.0,
            size: SizeDist::Fixed(64),
            ..TrafficConfig::default()
        },
    );
    let r = des::run(
        &c,
        &pipelines::ipsec_gateway(&a),
        &lb::shared(Box::new(lb::GpuOnly)),
        &traffic,
    );
    assert!(r.rx_dropped > 0, "expected RX drops under GPU saturation");
    assert_eq!(r.window.dropped, 0, "no mid-pipeline drops allowed");
    // And the forwarded packets all made it through the device.
    assert!(r.window.gpu_processed > 0);
}

#[test]
fn inflight_cap_limits_scheduled_gpu_backlog() {
    // With a single in-flight task allowed, GPU busy time cannot run far
    // ahead of virtual time even under overload.
    let tight = RuntimeConfig {
        gpu_max_inflight: 1,
        ..cfg()
    };
    let r = run_gpu(&tight, 10.0, 64);
    let horizon = (tight.warmup + tight.measure).as_secs_f64();
    for g in &r.gpu {
        assert!(
            g.kernel_busy.as_secs_f64() <= horizon * 1.2,
            "kernel scheduled {:?} beyond horizon {horizon}s",
            g.kernel_busy
        );
    }
}

#[test]
fn external_latency_is_additive() {
    let base = RuntimeConfig {
        external_latency: Time::ZERO,
        ..cfg()
    };
    let shifted = RuntimeConfig {
        external_latency: Time::from_us(100),
        ..cfg()
    };
    let app0 = app(&base);
    let traffic = traffic_per_port(
        &base.topology,
        &TrafficConfig {
            offered_gbps: 0.5,
            ..TrafficConfig::default()
        },
    );
    let balancer = lb::shared(Box::new(lb::CpuOnly));
    let a = des::run(&base, &pipelines::ipv4_router(&app0), &balancer, &traffic);
    let b = des::run(
        &shifted,
        &pipelines::ipv4_router(&app0),
        &balancer,
        &traffic,
    );
    let d50 = b
        .latency
        .percentile(50.0)
        .saturating_sub(a.latency.percentile(50.0));
    // Within histogram resolution of the configured 100 us shift.
    assert!(
        (d50.as_us_f64() - 100.0).abs() < 12.0,
        "p50 shifted by {d50}"
    );
}

#[test]
fn more_workers_more_throughput_under_cpu_saturation() {
    let mk = |w: u32| RuntimeConfig {
        workers_per_socket: w,
        ..cfg()
    };
    let one = mk(1);
    let three = mk(3);
    let app1 = app(&one);
    let traffic = traffic_per_port(
        &one.topology,
        &TrafficConfig {
            offered_gbps: 10.0,
            size: SizeDist::Fixed(64),
            ..TrafficConfig::default()
        },
    );
    let balancer = lb::shared(Box::new(lb::CpuOnly));
    let r1 = des::run(&one, &pipelines::ipv4_router(&app1), &balancer, &traffic);
    let r3 = des::run(&three, &pipelines::ipv4_router(&app1), &balancer, &traffic);
    assert!(
        r3.tx_gbps > r1.tx_gbps * 2.5,
        "1 worker {:.2} vs 3 workers {:.2}",
        r1.tx_gbps,
        r3.tx_gbps
    );
}

#[test]
fn pipeline_depth_shows_up_in_latency() {
    // The composition-overhead mechanism: more no-op elements, more
    // per-packet latency, same (unsaturated) throughput.
    let c = RuntimeConfig {
        external_latency: Time::ZERO,
        ..cfg()
    };
    let ports = c.topology.ports.len() as u16;
    let traffic = traffic_per_port(
        &c.topology,
        &TrafficConfig {
            offered_gbps: 0.5,
            ..TrafficConfig::default()
        },
    );
    let balancer = lb::shared(Box::new(lb::CpuOnly));
    let short = des::run(&c, &pipelines::noop_chain(0, ports), &balancer, &traffic);
    let long = des::run(&c, &pipelines::noop_chain(9, ports), &balancer, &traffic);
    assert!(
        long.latency.mean() > short.latency.mean(),
        "depth 9 {} <= depth 0 {}",
        long.latency.mean(),
        short.latency.mean()
    );
    let ratio = long.tx_packets as f64 / short.tx_packets as f64;
    assert!(
        (0.95..=1.05).contains(&ratio),
        "throughput changed: {ratio}"
    );
}

#[test]
fn comp_batch_size_trades_throughput() {
    // Batch 1 pays per-packet framework overhead; batch 64 amortizes it
    // (the Figure 9 mechanism).
    let b1 = RuntimeConfig {
        comp_batch: 1,
        ..cfg()
    };
    let b64 = RuntimeConfig {
        comp_batch: 64,
        ..cfg()
    };
    let app1 = app(&b1);
    let traffic = traffic_per_port(
        &b1.topology,
        &TrafficConfig {
            offered_gbps: 10.0,
            size: SizeDist::Fixed(64),
            ..TrafficConfig::default()
        },
    );
    let balancer = lb::shared(Box::new(lb::CpuOnly));
    let r1 = des::run(&b1, &pipelines::ipv4_router(&app1), &balancer, &traffic);
    let r64 = des::run(&b64, &pipelines::ipv4_router(&app1), &balancer, &traffic);
    assert!(
        r64.tx_gbps > r1.tx_gbps * 1.5,
        "batch1 {:.2} vs batch64 {:.2}",
        r1.tx_gbps,
        r64.tx_gbps
    );
}

#[test]
fn datablock_reuse_is_functionally_identical_and_faster() {
    // The §3.3 future-work optimization: fuse AES -> HMAC into one device
    // round trip. Output must stay bit-identical (same kernels, same
    // order); throughput must not get worse under GPU saturation.
    let base = RuntimeConfig {
        compute: ComputeMode::Full,
        ..RuntimeConfig::test_default()
    };
    let fused = RuntimeConfig {
        datablock_reuse: true,
        ..base.clone()
    };
    let a = app(&base);
    let traffic = traffic_per_port(
        &base.topology,
        &TrafficConfig {
            offered_gbps: 1.0,
            size: SizeDist::Fixed(256),
            ..TrafficConfig::default()
        },
    );
    let r_base = des::run(
        &base,
        &pipelines::ipsec_gateway(&a),
        &lb::shared(Box::new(lb::GpuOnly)),
        &traffic,
    );
    let r_fused = des::run(
        &fused,
        &pipelines::ipsec_gateway(&a),
        &lb::shared(Box::new(lb::GpuOnly)),
        &traffic,
    );
    // Same deterministic traffic, light load: both forward everything
    // (within a few packets of measurement-window edge skew).
    let diff = r_base.window.tx_packets.abs_diff(r_fused.window.tx_packets);
    assert!(
        diff * 100 <= r_base.window.tx_packets,
        "tx: base {} fused {}",
        r_base.window.tx_packets,
        r_fused.window.tx_packets
    );
    // Fusion halves the device round trips (one task per chain instead of
    // one per element).
    let tasks_base: u64 = r_base.gpu.iter().map(|g| g.tasks).sum();
    let tasks_fused: u64 = r_fused.gpu.iter().map(|g| g.tasks).sum();
    assert!(
        tasks_fused * 3 < tasks_base * 2,
        "tasks: base {tasks_base} fused {tasks_fused}"
    );
    // And halves the H2D traffic.
    let h2d_base: u64 = r_base.gpu.iter().map(|g| g.h2d_bytes).sum();
    let h2d_fused: u64 = r_fused.gpu.iter().map(|g| g.h2d_bytes).sum();
    assert!(
        h2d_fused < h2d_base * 6 / 10,
        "h2d: base {h2d_base} fused {h2d_fused}"
    );
}
