//! Packet buffers and buffer pools, modeled on DPDK's mbuf/mempool design.
//!
//! A [`PacketBuf`] is a fixed-capacity byte area with *headroom*: the packet
//! data starts at an offset so that encapsulating elements (e.g. the IPsec
//! ESP encapsulator) can prepend headers without copying the payload.
//!
//! A [`Mempool`] recycles buffers: the paper leans on DPDK's NUMA-aware
//! mempools to make batch-split allocation affordable, and the framework's
//! cost model charges allocation/release costs whenever these are used on the
//! data path.

use std::sync::{Arc, Mutex};

/// Default buffer capacity: one full Ethernet frame plus encap slack.
pub const DEFAULT_BUF_CAPACITY: usize = 2048;
/// Default headroom reserved before packet data (DPDK uses 128).
pub const DEFAULT_HEADROOM: usize = 128;

/// A fixed-capacity packet byte buffer with headroom.
#[derive(Debug, Clone)]
pub struct PacketBuf {
    bytes: Box<[u8]>,
    /// Offset of the first data byte.
    data_off: usize,
    /// Length of valid data starting at `data_off`.
    data_len: usize,
}

impl PacketBuf {
    /// Creates an empty buffer with the given capacity and headroom.
    ///
    /// # Panics
    ///
    /// Panics if `headroom > capacity`.
    pub fn with_capacity(capacity: usize, headroom: usize) -> PacketBuf {
        assert!(headroom <= capacity, "headroom exceeds capacity");
        PacketBuf {
            bytes: vec![0u8; capacity].into_boxed_slice(),
            data_off: headroom,
            data_len: 0,
        }
    }

    /// Creates an empty buffer with default capacity and headroom.
    pub fn new() -> PacketBuf {
        PacketBuf::with_capacity(DEFAULT_BUF_CAPACITY, DEFAULT_HEADROOM)
    }

    /// Total byte capacity.
    pub fn capacity(&self) -> usize {
        self.bytes.len()
    }

    /// Bytes available before the data (for prepending).
    pub fn headroom(&self) -> usize {
        self.data_off
    }

    /// Bytes available after the data (for appending).
    pub fn tailroom(&self) -> usize {
        self.bytes.len() - self.data_off - self.data_len
    }

    /// Length of the valid data.
    pub fn len(&self) -> usize {
        self.data_len
    }

    /// `true` if the buffer holds no data.
    pub fn is_empty(&self) -> bool {
        self.data_len == 0
    }

    /// The valid data bytes.
    pub fn data(&self) -> &[u8] {
        &self.bytes[self.data_off..self.data_off + self.data_len]
    }

    /// The valid data bytes, mutably.
    pub fn data_mut(&mut self) -> &mut [u8] {
        &mut self.bytes[self.data_off..self.data_off + self.data_len]
    }

    /// Replaces the contents with `payload`, restoring default headroom.
    ///
    /// # Panics
    ///
    /// Panics if the payload does not fit behind the headroom.
    pub fn fill(&mut self, headroom: usize, payload: &[u8]) {
        assert!(
            headroom + payload.len() <= self.bytes.len(),
            "payload of {} bytes does not fit (headroom {}, capacity {})",
            payload.len(),
            headroom,
            self.bytes.len()
        );
        self.data_off = headroom;
        self.data_len = payload.len();
        self.bytes[headroom..headroom + payload.len()].copy_from_slice(payload);
    }

    /// Extends the data area at the front by `n` bytes and returns the new
    /// prefix for writing, like DPDK's `rte_pktmbuf_prepend`.
    ///
    /// Returns `None` if there is not enough headroom.
    pub fn prepend(&mut self, n: usize) -> Option<&mut [u8]> {
        if n > self.data_off {
            return None;
        }
        self.data_off -= n;
        self.data_len += n;
        Some(&mut self.bytes[self.data_off..self.data_off + n])
    }

    /// Extends the data area at the back by `n` bytes and returns the new
    /// suffix for writing, like `rte_pktmbuf_append`.
    ///
    /// Returns `None` if there is not enough tailroom.
    pub fn append(&mut self, n: usize) -> Option<&mut [u8]> {
        if n > self.tailroom() {
            return None;
        }
        let start = self.data_off + self.data_len;
        self.data_len += n;
        Some(&mut self.bytes[start..start + n])
    }

    /// Removes `n` bytes from the front of the data (`rte_pktmbuf_adj`).
    ///
    /// Returns `false` (and leaves the buffer unchanged) if `n > len`.
    pub fn adj(&mut self, n: usize) -> bool {
        if n > self.data_len {
            return false;
        }
        self.data_off += n;
        self.data_len -= n;
        true
    }

    /// Removes `n` bytes from the back of the data (`rte_pktmbuf_trim`).
    ///
    /// Returns `false` (and leaves the buffer unchanged) if `n > len`.
    pub fn trim(&mut self, n: usize) -> bool {
        if n > self.data_len {
            return false;
        }
        self.data_len -= n;
        true
    }

    /// Sets the data region to `len` bytes at `headroom` and returns it for
    /// writing (contents are whatever the recycled buffer held).
    ///
    /// # Panics
    ///
    /// Panics if the region does not fit in the buffer.
    pub fn set_region(&mut self, headroom: usize, len: usize) -> &mut [u8] {
        assert!(
            headroom + len <= self.bytes.len(),
            "region of {len} bytes at {headroom} exceeds capacity {}",
            self.bytes.len()
        );
        self.data_off = headroom;
        self.data_len = len;
        &mut self.bytes[headroom..headroom + len]
    }

    /// Clears the data and restores the given headroom.
    pub fn reset(&mut self, headroom: usize) {
        debug_assert!(headroom <= self.bytes.len());
        self.data_off = headroom;
        self.data_len = 0;
    }
}

impl Default for PacketBuf {
    fn default() -> Self {
        PacketBuf::new()
    }
}

/// Allocation statistics of a [`Mempool`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MempoolStats {
    /// Buffers handed out.
    pub allocs: u64,
    /// Buffers returned.
    pub frees: u64,
    /// Allocations that failed because the pool was exhausted.
    pub exhausted: u64,
}

#[derive(Debug)]
struct PoolInner {
    free: Vec<PacketBuf>,
    capacity: usize,
    outstanding: usize,
    buf_capacity: usize,
    headroom: usize,
    stats: MempoolStats,
}

/// A recycling pool of [`PacketBuf`]s with a hard buffer budget.
///
/// Clones share the same pool. The pool is thread-safe so pooled packets can
/// cross worker threads in the live runtime; in the discrete-event runtime
/// the single engine thread makes the mutex uncontended, mirroring DPDK's
/// per-lcore mempool caches.
#[derive(Debug)]
pub struct Mempool {
    inner: Arc<Mutex<PoolInner>>,
}

impl Clone for Mempool {
    fn clone(&self) -> Self {
        Mempool {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl Mempool {
    /// Creates a pool that will hand out at most `capacity` buffers.
    pub fn new(capacity: usize) -> Mempool {
        Mempool::with_buf_shape(capacity, DEFAULT_BUF_CAPACITY, DEFAULT_HEADROOM)
    }

    /// Creates a pool with custom buffer capacity/headroom.
    pub fn with_buf_shape(capacity: usize, buf_capacity: usize, headroom: usize) -> Mempool {
        Mempool {
            inner: Arc::new(Mutex::new(PoolInner {
                free: Vec::new(),
                capacity,
                outstanding: 0,
                buf_capacity,
                headroom,
                stats: MempoolStats::default(),
            })),
        }
    }

    /// Takes a cleared buffer from the pool.
    ///
    /// Returns `None` when the pool budget is exhausted (DPDK behaviour:
    /// allocation failure, caller drops the packet).
    pub fn alloc(&self) -> Option<PacketBuf> {
        let mut p = self.inner.lock().expect("mempool poisoned");
        if p.outstanding >= p.capacity {
            p.stats.exhausted += 1;
            return None;
        }
        p.outstanding += 1;
        p.stats.allocs += 1;
        let headroom = p.headroom;
        match p.free.pop() {
            Some(mut buf) => {
                buf.reset(headroom);
                Some(buf)
            }
            None => {
                let cap = p.buf_capacity;
                Some(PacketBuf::with_capacity(cap, headroom))
            }
        }
    }

    /// Returns a buffer to the pool.
    pub fn free(&self, buf: PacketBuf) {
        let mut p = self.inner.lock().expect("mempool poisoned");
        debug_assert!(p.outstanding > 0, "double free into mempool");
        p.outstanding = p.outstanding.saturating_sub(1);
        p.stats.frees += 1;
        if p.free.len() < p.capacity {
            p.free.push(buf);
        }
    }

    /// Buffers currently handed out.
    pub fn outstanding(&self) -> usize {
        self.inner.lock().expect("mempool poisoned").outstanding
    }

    /// Remaining allocatable buffers.
    pub fn available(&self) -> usize {
        let p = self.inner.lock().expect("mempool poisoned");
        p.capacity - p.outstanding
    }

    /// A copy of the pool statistics.
    pub fn stats(&self) -> MempoolStats {
        self.inner.lock().expect("mempool poisoned").stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepend_and_append_grow_data() {
        let mut b = PacketBuf::with_capacity(64, 16);
        b.fill(16, b"hello");
        b.prepend(3).unwrap().copy_from_slice(b"<<<");
        b.append(3).unwrap().copy_from_slice(b">>>");
        assert_eq!(b.data(), b"<<<hello>>>");
        assert_eq!(b.headroom(), 13);
    }

    #[test]
    fn prepend_fails_without_headroom() {
        let mut b = PacketBuf::with_capacity(64, 4);
        b.fill(4, b"x");
        assert!(b.prepend(5).is_none());
        assert_eq!(b.data(), b"x");
    }

    #[test]
    fn append_fails_without_tailroom() {
        let mut b = PacketBuf::with_capacity(8, 0);
        b.fill(0, b"12345678");
        assert!(b.append(1).is_none());
    }

    #[test]
    fn adj_and_trim_shrink_data() {
        let mut b = PacketBuf::with_capacity(64, 8);
        b.fill(8, b"abcdef");
        assert!(b.adj(2));
        assert!(b.trim(1));
        assert_eq!(b.data(), b"cde");
        assert!(!b.adj(10));
        assert!(!b.trim(10));
        assert_eq!(b.data(), b"cde");
    }

    #[test]
    fn mempool_budget_is_enforced() {
        let pool = Mempool::new(2);
        let a = pool.alloc().unwrap();
        let _b = pool.alloc().unwrap();
        assert!(pool.alloc().is_none());
        assert_eq!(pool.stats().exhausted, 1);
        pool.free(a);
        assert!(pool.alloc().is_some());
    }

    #[test]
    fn mempool_recycles_buffers_cleared() {
        let pool = Mempool::with_buf_shape(4, 256, 32);
        let mut a = pool.alloc().unwrap();
        a.fill(32, b"dirty");
        pool.free(a);
        let b = pool.alloc().unwrap();
        assert!(b.is_empty());
        assert_eq!(b.headroom(), 32);
        assert_eq!(pool.stats().allocs, 2);
        assert_eq!(pool.stats().frees, 1);
    }

    #[test]
    fn clones_share_budget() {
        let pool = Mempool::new(1);
        let pool2 = pool.clone();
        let _a = pool.alloc().unwrap();
        assert!(pool2.alloc().is_none());
        assert_eq!(pool.outstanding(), 1);
        assert_eq!(pool2.available(), 0);
    }
}
