// IPsec encryption gateway (Figure 8c): route, then ESP-encapsulate and
// run both offloadable crypto stages. Matches `pipelines::ipsec_gateway`.
src   :: FromInput();
chk   :: CheckIPHeader();
rt    :: IPLookup();
ttl   :: DecIPTTL();
encap :: IPsecESPEncap();
lb    :: LoadBalance();
aes   :: IPsecAES();
auth  :: IPsecAuthHMAC();
out   :: ToOutput();

src -> chk;
chk [0] -> rt -> ttl -> encap -> lb -> aes -> auth -> out;
chk [1] -> Discard;
