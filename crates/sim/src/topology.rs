//! System topology description: sockets, cores, accelerators, NIC ports.
//!
//! The default topology mirrors Table 3 of the paper: dual octa-core Xeon
//! E5-2670 (Sandy Bridge) sockets, two NVIDIA GTX 680 GPUs (one per NUMA
//! node), and four dual-port Intel X520-DA2 10 GbE NICs (80 Gbps total).

/// One accelerator device attached to a NUMA node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GpuSpec {
    /// Marketing name, for diagnostics.
    pub name: String,
    /// NUMA node the device's PCIe slot hangs off.
    pub socket: usize,
}

/// One NIC port.
#[derive(Debug, Clone, PartialEq)]
pub struct PortSpec {
    /// Line speed in gigabits per second.
    pub speed_gbps: f64,
    /// NUMA node the port's PCIe slot hangs off.
    pub socket: usize,
}

/// One CPU socket (NUMA node).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SocketSpec {
    /// Physical cores available on this socket.
    pub cores: u32,
}

/// The machine the simulation models.
#[derive(Debug, Clone, PartialEq)]
pub struct Topology {
    /// CPU sockets, index = NUMA node id.
    pub sockets: Vec<SocketSpec>,
    /// Accelerators.
    pub gpus: Vec<GpuSpec>,
    /// NIC ports.
    pub ports: Vec<PortSpec>,
}

impl Topology {
    /// Table 3 of the paper: 2x E5-2670, 2x GTX 680, 8x 10 GbE.
    pub fn paper_testbed() -> Topology {
        Topology {
            sockets: vec![SocketSpec { cores: 8 }, SocketSpec { cores: 8 }],
            gpus: vec![
                GpuSpec {
                    name: "GTX 680".to_owned(),
                    socket: 0,
                },
                GpuSpec {
                    name: "GTX 680".to_owned(),
                    socket: 1,
                },
            ],
            ports: (0..8)
                .map(|i| PortSpec {
                    speed_gbps: 10.0,
                    // Two dual-port NICs per socket.
                    socket: i / 4,
                })
                .collect(),
        }
    }

    /// A reduced single-socket machine (quad core, one GPU, two ports), the
    /// shape of Figure 6 in the paper. Useful for fast tests.
    pub fn small() -> Topology {
        Topology {
            sockets: vec![SocketSpec { cores: 4 }],
            gpus: vec![GpuSpec {
                name: "GTX 680".to_owned(),
                socket: 0,
            }],
            ports: vec![
                PortSpec {
                    speed_gbps: 10.0,
                    socket: 0,
                },
                PortSpec {
                    speed_gbps: 10.0,
                    socket: 0,
                },
            ],
        }
    }

    /// Total physical cores across sockets.
    pub fn total_cores(&self) -> u32 {
        self.sockets.iter().map(|s| s.cores).sum()
    }

    /// Aggregate line rate over every port, in Gbps.
    pub fn total_line_rate_gbps(&self) -> f64 {
        self.ports.iter().map(|p| p.speed_gbps).sum()
    }

    /// Ports attached to the given socket.
    pub fn ports_on_socket(&self, socket: usize) -> Vec<usize> {
        self.ports
            .iter()
            .enumerate()
            .filter(|(_, p)| p.socket == socket)
            .map(|(i, _)| i)
            .collect()
    }

    /// GPUs attached to the given socket.
    pub fn gpus_on_socket(&self, socket: usize) -> Vec<usize> {
        self.gpus
            .iter()
            .enumerate()
            .filter(|(_, g)| g.socket == socket)
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_testbed_matches_table_3() {
        let t = Topology::paper_testbed();
        assert_eq!(t.sockets.len(), 2);
        assert_eq!(t.total_cores(), 16);
        assert_eq!(t.gpus.len(), 2);
        assert_eq!(t.ports.len(), 8);
        assert_eq!(t.total_line_rate_gbps(), 80.0);
    }

    #[test]
    fn ports_and_gpus_are_numa_balanced() {
        let t = Topology::paper_testbed();
        assert_eq!(t.ports_on_socket(0).len(), 4);
        assert_eq!(t.ports_on_socket(1).len(), 4);
        assert_eq!(t.gpus_on_socket(0), vec![0]);
        assert_eq!(t.gpus_on_socket(1), vec![1]);
    }

    #[test]
    fn small_topology_is_figure_6() {
        let t = Topology::small();
        assert_eq!(t.total_cores(), 4);
        assert_eq!(t.gpus.len(), 1);
        assert_eq!(t.total_line_rate_gbps(), 20.0);
    }
}
