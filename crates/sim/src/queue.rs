//! Shared single-threaded queues for entity-to-entity communication.
//!
//! All entities run on one real thread (the engine), so queues are plain
//! `Rc<RefCell<...>>` ring buffers. A bounded queue counts the items it had
//! to drop on overflow, which is how NIC RX queues model packet loss under
//! overload.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

struct Inner<T> {
    items: VecDeque<T>,
    capacity: usize,
    enqueued: u64,
    dropped: u64,
}

/// A bounded FIFO shared between simulation entities.
///
/// Cloning the handle shares the same underlying queue.
pub struct SimQueue<T> {
    inner: Rc<RefCell<Inner<T>>>,
}

impl<T> Clone for SimQueue<T> {
    fn clone(&self) -> Self {
        SimQueue {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<T> SimQueue<T> {
    /// Creates a queue holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn bounded(capacity: usize) -> SimQueue<T> {
        assert!(capacity > 0, "queue capacity must be positive");
        SimQueue {
            inner: Rc::new(RefCell::new(Inner {
                items: VecDeque::with_capacity(capacity.min(4096)),
                capacity,
                enqueued: 0,
                dropped: 0,
            })),
        }
    }

    /// Creates an effectively unbounded queue.
    pub fn unbounded() -> SimQueue<T> {
        SimQueue::bounded(usize::MAX)
    }

    /// Enqueues an item, or drops it (and counts the drop) when full.
    ///
    /// Returns `Err(item)` with the rejected item so the caller can release
    /// any resources it holds.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut q = self.inner.borrow_mut();
        if q.items.len() >= q.capacity {
            q.dropped += 1;
            Err(item)
        } else {
            q.items.push_back(item);
            q.enqueued += 1;
            Ok(())
        }
    }

    /// Dequeues the oldest item.
    pub fn pop(&self) -> Option<T> {
        self.inner.borrow_mut().items.pop_front()
    }

    /// Dequeues up to `max` items into `out`, returning how many were moved.
    pub fn pop_into(&self, out: &mut Vec<T>, max: usize) -> usize {
        let mut q = self.inner.borrow_mut();
        let n = max.min(q.items.len());
        out.extend(q.items.drain(..n));
        n
    }

    /// Number of queued items.
    pub fn len(&self) -> usize {
        self.inner.borrow().items.len()
    }

    /// `true` if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of items ever accepted.
    pub fn enqueued(&self) -> u64 {
        self.inner.borrow().enqueued
    }

    /// Total number of items rejected because the queue was full.
    pub fn dropped(&self) -> u64 {
        self.inner.borrow().dropped
    }

    /// Remaining free slots.
    pub fn free_space(&self) -> usize {
        let q = self.inner.borrow();
        q.capacity - q.items.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let q = SimQueue::bounded(8);
        for i in 0..5 {
            q.push(i).unwrap();
        }
        let drained: Vec<i32> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(drained, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn overflow_drops_and_counts() {
        let q = SimQueue::bounded(2);
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert_eq!(q.push(3), Err(3));
        assert_eq!(q.dropped(), 1);
        assert_eq!(q.enqueued(), 2);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn clones_share_state() {
        let q = SimQueue::bounded(4);
        let q2 = q.clone();
        q.push("x").unwrap();
        assert_eq!(q2.pop(), Some("x"));
        assert!(q.is_empty());
    }

    #[test]
    fn pop_into_moves_at_most_max() {
        let q = SimQueue::bounded(16);
        for i in 0..10 {
            q.push(i).unwrap();
        }
        let mut out = Vec::new();
        assert_eq!(q.pop_into(&mut out, 4), 4);
        assert_eq!(out, vec![0, 1, 2, 3]);
        assert_eq!(q.len(), 6);
        assert_eq!(q.pop_into(&mut out, 100), 6);
        assert_eq!(q.pop_into(&mut out, 100), 0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = SimQueue::<u8>::bounded(0);
    }
}
