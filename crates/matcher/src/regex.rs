//! A PCRE-subset regex engine compiled to a DFA.
//!
//! The paper's IDS runs its regular expressions "with their DFA forms using
//! standard approaches" (Thompson construction + subset construction). This
//! module implements that pipeline for the byte-oriented subset IDS rules
//! use: literals, `.`, character classes (with ranges and negation), the
//! escapes `\d \D \w \W \s \S \xHH \n \r \t`, groups, alternation, the
//! quantifiers `* + ? {m} {m,} {m,n}`, and the anchors `^ $`.
//!
//! Matching is *search* semantics (the pattern may occur anywhere) unless
//! anchored, like an IDS content rule.

use std::collections::BTreeSet;
use std::collections::HashMap;

/// Compilation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegexError {
    /// Syntax error with a human-readable description and position.
    Syntax {
        /// What went wrong.
        msg: String,
        /// Byte offset in the pattern.
        at: usize,
    },
    /// The DFA exceeded the state budget.
    TooManyStates,
    /// A bounded repeat `{m,n}` exceeded the expansion budget.
    RepeatTooLarge,
}

impl std::fmt::Display for RegexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegexError::Syntax { msg, at } => write!(f, "syntax error at {at}: {msg}"),
            RegexError::TooManyStates => write!(f, "DFA state budget exceeded"),
            RegexError::RepeatTooLarge => write!(f, "bounded repeat too large"),
        }
    }
}

impl std::error::Error for RegexError {}

/// Maximum DFA states before compilation fails.
const MAX_DFA_STATES: usize = 1 << 14;
/// Maximum total expansion of bounded repeats.
const MAX_REPEAT: u32 = 256;

// --- AST ---

#[derive(Debug, Clone)]
enum Ast {
    Empty,
    /// A set of accepted bytes.
    Class(ByteSet),
    /// Start-of-input anchor.
    AnchorStart,
    /// End-of-input anchor.
    AnchorEnd,
    Concat(Vec<Ast>),
    Alt(Vec<Ast>),
    Star(Box<Ast>),
    Plus(Box<Ast>),
    Opt(Box<Ast>),
}

/// A 256-bit byte set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ByteSet([u64; 4]);

impl ByteSet {
    fn empty() -> ByteSet {
        ByteSet([0; 4])
    }

    fn single(b: u8) -> ByteSet {
        let mut s = ByteSet::empty();
        s.insert(b);
        s
    }

    fn insert(&mut self, b: u8) {
        self.0[usize::from(b) / 64] |= 1 << (b % 64);
    }

    fn insert_range(&mut self, lo: u8, hi: u8) {
        for b in lo..=hi {
            self.insert(b);
        }
    }

    fn contains(&self, b: u8) -> bool {
        self.0[usize::from(b) / 64] >> (b % 64) & 1 == 1
    }

    fn negate(&mut self) {
        for w in &mut self.0 {
            *w = !*w;
        }
    }

    fn union(&mut self, other: &ByteSet) {
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a |= b;
        }
    }

    fn any() -> ByteSet {
        ByteSet([u64::MAX; 4])
    }
}

// --- Parser ---

struct Parser<'a> {
    pat: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, msg: &str) -> Result<T, RegexError> {
        Err(RegexError::Syntax {
            msg: msg.to_owned(),
            at: self.pos,
        })
    }

    fn peek(&self) -> Option<u8> {
        self.pat.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn parse_alt(&mut self) -> Result<Ast, RegexError> {
        let mut branches = vec![self.parse_concat()?];
        while self.peek() == Some(b'|') {
            self.bump();
            branches.push(self.parse_concat()?);
        }
        Ok(if branches.len() == 1 {
            branches.pop().unwrap()
        } else {
            Ast::Alt(branches)
        })
    }

    fn parse_concat(&mut self) -> Result<Ast, RegexError> {
        let mut items = Vec::new();
        while let Some(b) = self.peek() {
            if b == b'|' || b == b')' {
                break;
            }
            items.push(self.parse_repeat()?);
        }
        Ok(match items.len() {
            0 => Ast::Empty,
            1 => items.pop().unwrap(),
            _ => Ast::Concat(items),
        })
    }

    fn parse_repeat(&mut self) -> Result<Ast, RegexError> {
        let atom = self.parse_atom()?;
        let mut node = atom;
        loop {
            match self.peek() {
                Some(b'*') => {
                    self.bump();
                    node = Ast::Star(Box::new(node));
                }
                Some(b'+') => {
                    self.bump();
                    node = Ast::Plus(Box::new(node));
                }
                Some(b'?') => {
                    self.bump();
                    node = Ast::Opt(Box::new(node));
                }
                Some(b'{') => {
                    node = self.parse_bounded(node)?;
                }
                _ => return Ok(node),
            }
        }
    }

    fn parse_bounded(&mut self, inner: Ast) -> Result<Ast, RegexError> {
        if matches!(inner, Ast::AnchorStart | Ast::AnchorEnd) {
            return self.err("quantifier on anchor");
        }
        self.bump(); // '{'
        let m = self.parse_number()?;
        let n = match self.peek() {
            Some(b'}') => Some(m),
            Some(b',') => {
                self.bump();
                match self.peek() {
                    Some(b'}') => None,
                    _ => Some(self.parse_number()?),
                }
            }
            _ => return self.err("expected ',' or '}' in repeat"),
        };
        if self.bump() != Some(b'}') {
            return self.err("unterminated repeat");
        }
        if m > MAX_REPEAT || n.is_some_and(|n| n > MAX_REPEAT) {
            return Err(RegexError::RepeatTooLarge);
        }
        if let Some(n) = n {
            if n < m {
                return self.err("repeat bounds out of order");
            }
        }
        // Expand {m,n} into copies: inner{m} then (inner?){n-m} or inner*.
        let mut seq = Vec::new();
        for _ in 0..m {
            seq.push(inner.clone());
        }
        match n {
            None => seq.push(Ast::Star(Box::new(inner))),
            Some(n) => {
                for _ in m..n {
                    seq.push(Ast::Opt(Box::new(inner.clone())));
                }
            }
        }
        Ok(match seq.len() {
            0 => Ast::Empty,
            1 => seq.pop().unwrap(),
            _ => Ast::Concat(seq),
        })
    }

    fn parse_number(&mut self) -> Result<u32, RegexError> {
        let start = self.pos;
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.bump();
        }
        if self.pos == start {
            return self.err("expected number");
        }
        std::str::from_utf8(&self.pat[start..self.pos])
            .unwrap()
            .parse()
            .map_err(|_| RegexError::Syntax {
                msg: "number too large".to_owned(),
                at: start,
            })
    }

    fn parse_atom(&mut self) -> Result<Ast, RegexError> {
        match self.bump() {
            None => self.err("unexpected end of pattern"),
            Some(b'(') => {
                let inner = self.parse_alt()?;
                if self.bump() != Some(b')') {
                    return self.err("unclosed group");
                }
                Ok(inner)
            }
            Some(b')') => self.err("unbalanced ')'"),
            Some(b'[') => self.parse_class(),
            Some(b'.') => Ok(Ast::Class(ByteSet::any())),
            Some(b'^') => Ok(Ast::AnchorStart),
            Some(b'$') => Ok(Ast::AnchorEnd),
            Some(b'*') | Some(b'+') | Some(b'?') => self.err("quantifier with nothing to repeat"),
            Some(b'\\') => Ok(Ast::Class(self.parse_escape()?)),
            Some(b) => Ok(Ast::Class(ByteSet::single(b))),
        }
    }

    fn parse_escape(&mut self) -> Result<ByteSet, RegexError> {
        let Some(b) = self.bump() else {
            return self.err("dangling escape");
        };
        let mut set = ByteSet::empty();
        match b {
            b'd' => set.insert_range(b'0', b'9'),
            b'D' => {
                set.insert_range(b'0', b'9');
                set.negate();
            }
            b'w' => {
                set.insert_range(b'a', b'z');
                set.insert_range(b'A', b'Z');
                set.insert_range(b'0', b'9');
                set.insert(b'_');
            }
            b'W' => {
                set.insert_range(b'a', b'z');
                set.insert_range(b'A', b'Z');
                set.insert_range(b'0', b'9');
                set.insert(b'_');
                set.negate();
            }
            b's' => {
                for c in [b' ', b'\t', b'\n', b'\r', 0x0b, 0x0c] {
                    set.insert(c);
                }
            }
            b'S' => {
                for c in [b' ', b'\t', b'\n', b'\r', 0x0b, 0x0c] {
                    set.insert(c);
                }
                set.negate();
            }
            b'n' => set.insert(b'\n'),
            b'r' => set.insert(b'\r'),
            b't' => set.insert(b'\t'),
            b'0' => set.insert(0),
            b'x' => {
                let hi = self.bump();
                let lo = self.bump();
                let (Some(hi), Some(lo)) = (hi, lo) else {
                    return self.err("truncated \\x escape");
                };
                let val = (hex_val(hi), hex_val(lo));
                let (Some(h), Some(l)) = val else {
                    return self.err("invalid \\x escape");
                };
                set.insert(h * 16 + l);
            }
            // Any other escaped byte is a literal.
            other => set.insert(other),
        }
        Ok(set)
    }

    fn parse_class(&mut self) -> Result<Ast, RegexError> {
        let mut set = ByteSet::empty();
        let negated = if self.peek() == Some(b'^') {
            self.bump();
            true
        } else {
            false
        };
        let mut first = true;
        loop {
            let Some(b) = self.bump() else {
                return self.err("unclosed character class");
            };
            if b == b']' && !first {
                break;
            }
            first = false;
            let lo_set = if b == b'\\' {
                self.parse_escape()?
            } else {
                ByteSet::single(b)
            };
            // Ranges need single-byte endpoints (literal or 1-byte escape).
            if self.peek() == Some(b'-') && self.pat.get(self.pos + 1) != Some(&b']') {
                let Some(lo) = singleton_byte(&lo_set) else {
                    return self.err("range start must be a single byte");
                };
                self.bump(); // '-'
                let Some(hi) = self.bump() else {
                    return self.err("unclosed character class");
                };
                let hi = if hi == b'\\' {
                    let esc = self.parse_escape()?;
                    singleton_byte(&esc).ok_or_else(|| RegexError::Syntax {
                        msg: "range end must be a single byte".to_owned(),
                        at: self.pos,
                    })?
                } else {
                    hi
                };
                if hi < lo {
                    return self.err("range out of order");
                }
                set.insert_range(lo, hi);
            } else {
                set.union(&lo_set);
            }
        }
        if negated {
            set.negate();
        }
        Ok(Ast::Class(set))
    }
}

/// The single byte a set contains, if it is a singleton.
fn singleton_byte(set: &ByteSet) -> Option<u8> {
    let mut it = (0..=255u8).filter(|&x| set.contains(x));
    let only = it.next()?;
    if it.next().is_some() {
        None
    } else {
        Some(only)
    }
}

/// Parses one hex digit.
fn hex_val(b: u8) -> Option<u8> {
    match b {
        b'0'..=b'9' => Some(b - b'0'),
        b'a'..=b'f' => Some(b - b'a' + 10),
        b'A'..=b'F' => Some(b - b'A' + 10),
        _ => None,
    }
}

// --- NFA (Thompson construction) ---

#[derive(Debug, Clone)]
enum NfaState {
    /// Consume a byte in the set, go to `next`.
    Byte(ByteSet, usize),
    /// Epsilon fork.
    Split(usize, usize),
    /// Anchor assertions consume no input but gate on position.
    AssertStart(usize),
    AssertEnd(usize),
    Accept,
}

struct Nfa {
    states: Vec<NfaState>,
    start: usize,
}

struct Frag {
    start: usize,
    /// Dangling out-pointers to patch (state index, which slot).
    outs: Vec<(usize, u8)>,
}

struct NfaBuilder {
    states: Vec<NfaState>,
}

impl NfaBuilder {
    fn push(&mut self, s: NfaState) -> usize {
        self.states.push(s);
        self.states.len() - 1
    }

    fn patch(&mut self, outs: &[(usize, u8)], target: usize) {
        for &(idx, slot) in outs {
            match &mut self.states[idx] {
                NfaState::Byte(_, n) | NfaState::AssertStart(n) | NfaState::AssertEnd(n) => {
                    *n = target
                }
                NfaState::Split(a, b) => {
                    if slot == 0 {
                        *a = target;
                    } else {
                        *b = target;
                    }
                }
                NfaState::Accept => unreachable!("accept has no out"),
            }
        }
    }

    fn compile(&mut self, ast: &Ast) -> Frag {
        match ast {
            Ast::Empty => {
                // An epsilon: a split whose both arms dangle (patched
                // together).
                let s = self.push(NfaState::Split(usize::MAX, usize::MAX));
                Frag {
                    start: s,
                    outs: vec![(s, 0), (s, 1)],
                }
            }
            Ast::Class(set) => {
                let s = self.push(NfaState::Byte(*set, usize::MAX));
                Frag {
                    start: s,
                    outs: vec![(s, 0)],
                }
            }
            Ast::AnchorStart => {
                let s = self.push(NfaState::AssertStart(usize::MAX));
                Frag {
                    start: s,
                    outs: vec![(s, 0)],
                }
            }
            Ast::AnchorEnd => {
                let s = self.push(NfaState::AssertEnd(usize::MAX));
                Frag {
                    start: s,
                    outs: vec![(s, 0)],
                }
            }
            Ast::Concat(items) => {
                let mut frags = items.iter().map(|i| self.compile(i)).collect::<Vec<_>>();
                let mut it = frags.drain(..);
                let first = it.next().expect("concat is non-empty");
                let mut outs = first.outs;
                for next in it {
                    self.patch(&outs, next.start);
                    outs = next.outs;
                }
                Frag {
                    start: first.start,
                    outs,
                }
            }
            Ast::Alt(branches) => {
                let frags: Vec<Frag> = branches.iter().map(|b| self.compile(b)).collect();
                // Chain splits: s1 -> (f1 | s2), s2 -> (f2 | s3)...
                let mut outs = Vec::new();
                let mut starts = frags.iter().map(|f| f.start).collect::<Vec<_>>();
                for f in &frags {
                    outs.extend_from_slice(&f.outs);
                }
                let mut entry = starts.pop().expect("alt is non-empty");
                while let Some(s) = starts.pop() {
                    entry = self.push(NfaState::Split(s, entry));
                }
                Frag { start: entry, outs }
            }
            Ast::Star(inner) => {
                let split = self.push(NfaState::Split(usize::MAX, usize::MAX));
                let f = self.compile(inner);
                match &mut self.states[split] {
                    NfaState::Split(a, _) => *a = f.start,
                    _ => unreachable!(),
                }
                self.patch(&f.outs, split);
                Frag {
                    start: split,
                    outs: vec![(split, 1)],
                }
            }
            Ast::Plus(inner) => {
                let f = self.compile(inner);
                let split = self.push(NfaState::Split(f.start, usize::MAX));
                self.patch(&f.outs, split);
                Frag {
                    start: f.start,
                    outs: vec![(split, 1)],
                }
            }
            Ast::Opt(inner) => {
                let f = self.compile(inner);
                let split = self.push(NfaState::Split(f.start, usize::MAX));
                let mut outs = f.outs;
                outs.push((split, 1));
                Frag { start: split, outs }
            }
        }
    }
}

fn build_nfa(ast: &Ast) -> Nfa {
    let mut b = NfaBuilder { states: Vec::new() };
    let frag = b.compile(ast);
    let accept = b.push(NfaState::Accept);
    b.patch(&frag.outs, accept);
    Nfa {
        states: b.states,
        start: frag.start,
    }
}

// --- DFA (subset construction) ---

/// A compiled regular expression (DFA form).
#[derive(Debug, Clone)]
pub struct Regex {
    /// `delta[state * 256 + byte]` = next state (u32::MAX = dead).
    delta: Vec<u32>,
    accepting: Vec<bool>,
    /// Accepting once the end of input is reached (for `$`-gated states).
    accepting_at_end: Vec<bool>,
    start: u32,
    pattern: String,
}

/// Dead-state marker in the transition table.
const DEAD: u32 = u32::MAX;

impl Regex {
    /// Compiles a pattern with search-anywhere semantics.
    pub fn new(pattern: &str) -> Result<Regex, RegexError> {
        let mut parser = Parser {
            pat: pattern.as_bytes(),
            pos: 0,
        };
        let ast = parser.parse_alt()?;
        if parser.pos != parser.pat.len() {
            return parser.err("trailing characters");
        }
        // Search semantics: allow any prefix unless the pattern starts with
        // `^` — handled by the AssertStart NFA state plus a self-loop start.
        let nfa = build_nfa(&ast);
        Self::determinize(&nfa, pattern)
    }

    fn determinize(nfa: &Nfa, pattern: &str) -> Result<Regex, RegexError> {
        // Epsilon closure respecting anchors: at_start gates AssertStart;
        // AssertEnd transitions are tracked separately for end-acceptance.
        let closure = |seeds: &[usize], at_start: bool| -> (BTreeSet<usize>, bool) {
            let mut stack: Vec<usize> = seeds.to_vec();
            let mut seen = BTreeSet::new();
            let mut accept_at_end = false;
            while let Some(s) = stack.pop() {
                if !seen.insert(s) {
                    continue;
                }
                match &nfa.states[s] {
                    NfaState::Split(a, b) => {
                        stack.push(*a);
                        stack.push(*b);
                    }
                    NfaState::AssertStart(n) if at_start => stack.push(*n),
                    // Whether the continuation accepts is resolved at end
                    // of input; approximate by checking if `n` reaches
                    // Accept through epsilons.
                    NfaState::AssertEnd(n) if reaches_accept_eps(nfa, *n) => {
                        accept_at_end = true;
                    }
                    _ => {}
                }
            }
            (seen, accept_at_end)
        };

        fn reaches_accept_eps(nfa: &Nfa, from: usize) -> bool {
            let mut stack = vec![from];
            let mut seen = BTreeSet::new();
            while let Some(s) = stack.pop() {
                if !seen.insert(s) {
                    continue;
                }
                match &nfa.states[s] {
                    NfaState::Accept => return true,
                    NfaState::Split(a, b) => {
                        stack.push(*a);
                        stack.push(*b);
                    }
                    NfaState::AssertEnd(n) => stack.push(*n),
                    _ => {}
                }
            }
            false
        }

        // DFA states are (NFA subset, at_start) pairs; the start-state
        // subset always re-includes nfa.start to get search semantics.
        type Key = (BTreeSet<usize>, bool);
        let mut keys: HashMap<Key, u32> = HashMap::new();
        let mut order: Vec<Key> = Vec::new();
        let mut delta = Vec::new();
        let mut accepting = Vec::new();
        let mut accepting_at_end = Vec::new();

        let (start_set, start_end_acc) = closure(&[nfa.start], true);
        let start_key = (start_set, true);
        keys.insert(start_key.clone(), 0);
        order.push(start_key);
        let mut end_acc_flags = vec![start_end_acc];

        let mut i = 0usize;
        while i < order.len() {
            let (set, _at_start) = order[i].clone();
            let accepts = set
                .iter()
                .any(|&s| matches!(nfa.states[s], NfaState::Accept));
            accepting.push(accepts);
            accepting_at_end.push(accepts || end_acc_flags[i]);
            let base = delta.len();
            delta.resize(base + 256, DEAD);
            for byte in 0..=255u8 {
                let mut seeds = Vec::new();
                for &s in &set {
                    if let NfaState::Byte(cls, next) = &nfa.states[s] {
                        if cls.contains(byte) {
                            seeds.push(*next);
                        }
                    }
                }
                // Search semantics: can always restart the pattern.
                seeds.push(nfa.start);
                let (next_set, end_acc) = closure(&seeds, false);
                let key = (next_set, false);
                let id = match keys.get(&key) {
                    Some(&id) => id,
                    None => {
                        let id = order.len() as u32;
                        if order.len() >= MAX_DFA_STATES {
                            return Err(RegexError::TooManyStates);
                        }
                        keys.insert(key.clone(), id);
                        order.push(key);
                        end_acc_flags.push(end_acc);
                        id
                    }
                };
                delta[base + usize::from(byte)] = id;
            }
            i += 1;
        }
        Ok(Regex {
            delta,
            accepting,
            accepting_at_end,
            start: 0,
            pattern: pattern.to_owned(),
        })
    }

    /// The source pattern.
    pub fn pattern(&self) -> &str {
        &self.pattern
    }

    /// Number of DFA states.
    pub fn state_count(&self) -> usize {
        self.accepting.len()
    }

    /// `true` if the pattern matches anywhere in `haystack`.
    pub fn is_match(&self, haystack: &[u8]) -> bool {
        self.find(haystack).is_some()
    }

    /// Returns the end offset of the earliest-ending match, if any.
    pub fn find(&self, haystack: &[u8]) -> Option<usize> {
        let mut state = self.start;
        if self.accepting[state as usize] {
            return Some(0);
        }
        for (i, &b) in haystack.iter().enumerate() {
            state = self.delta[state as usize * 256 + usize::from(b)];
            if state == DEAD {
                return None;
            }
            if self.accepting[state as usize] {
                return Some(i + 1);
            }
        }
        if self.accepting_at_end[state as usize] {
            return Some(haystack.len());
        }
        None
    }

    /// Advances one DFA step (for the GPU kernel). Returns the next state.
    #[inline]
    pub fn step(&self, state: u32, byte: u8) -> u32 {
        self.delta[state as usize * 256 + usize::from(byte)]
    }

    /// The start state (for the GPU kernel).
    pub fn start_state(&self) -> u32 {
        self.start
    }

    /// `true` if `state` is accepting mid-input.
    #[inline]
    pub fn is_accepting(&self, state: u32) -> bool {
        state != DEAD && self.accepting[state as usize]
    }

    /// `true` if `state` accepts at end of input (for `$` patterns).
    #[inline]
    pub fn is_accepting_at_end(&self, state: u32) -> bool {
        state != DEAD && self.accepting_at_end[state as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(pat: &str, hay: &str) -> bool {
        Regex::new(pat).unwrap().is_match(hay.as_bytes())
    }

    #[test]
    fn literals_search_anywhere() {
        assert!(m("abc", "xxabcxx"));
        assert!(m("abc", "abc"));
        assert!(!m("abc", "ab"));
        assert!(!m("abc", "axbxc"));
    }

    #[test]
    fn alternation_and_groups() {
        assert!(m("cat|dog", "hotdog"));
        assert!(m("(ab|cd)ef", "xxcdefxx"));
        assert!(!m("(ab|cd)ef", "xxceefxx"));
    }

    #[test]
    fn quantifiers() {
        assert!(m("ab*c", "ac"));
        assert!(m("ab*c", "abbbbc"));
        assert!(m("ab+c", "abc"));
        assert!(!m("ab+c", "ac"));
        assert!(m("ab?c", "ac"));
        assert!(m("ab?c", "abc"));
        assert!(!m("ab?c", "abbc"));
    }

    #[test]
    fn bounded_repeats() {
        assert!(m("a{3}", "baaab"));
        assert!(!m("a{3}", "baab"));
        assert!(m("a{2,4}b", "aaab"));
        assert!(!m("a{2,4}b", "ab"));
        assert!(m("a{2,}b", "aaaaaab"));
        assert!(!m("a{2,}b", "ab"));
    }

    #[test]
    fn classes_and_escapes() {
        assert!(m("[a-c]+z", "bz"));
        assert!(!m("[a-c]+z", "dz"));
        assert!(m("[^0-9]", "a"));
        assert!(!m("[^0-9]", "7"));
        assert!(m(r"\d{3}", "abc123"));
        assert!(!m(r"\d{3}", "ab12c"));
        assert!(m(r"\w+@\w+", "mail me at x@y please"));
        assert!(m(r"\x41\x42", "xABx"));
        assert!(m(r"a\.b", "a.b"));
        assert!(!m(r"a\.b", "axb"));
        assert!(m(r"\s", "a b"));
        assert!(!m(r"\S", "  \t"));
    }

    #[test]
    fn dot_matches_any_byte() {
        assert!(m("a.c", "abc"));
        assert!(m("a.c", "a\0c"));
        assert!(!m("a.c", "ac"));
    }

    #[test]
    fn anchors() {
        assert!(m("^abc", "abcdef"));
        assert!(!m("^abc", "xabc"));
        assert!(m("xyz$", "wxyz"));
        assert!(!m("xyz$", "xyzw"));
        assert!(m("^only$", "only"));
        assert!(!m("^only$", "only one"));
        assert!(m("^$", ""));
        assert!(!m("^$", "a"));
    }

    #[test]
    fn find_returns_earliest_end() {
        let re = Regex::new("ab+").unwrap();
        // Earliest-ending match of "ab+" in "xabbb" ends at index 3 ("ab").
        assert_eq!(re.find(b"xabbb"), Some(3));
        assert_eq!(re.find(b"zzz"), None);
        let re = Regex::new("b*").unwrap();
        // Empty match at position 0.
        assert_eq!(re.find(b"aaa"), Some(0));
    }

    #[test]
    fn ids_style_rules() {
        // Shapes resembling Snort PCRE rules.
        let re = Regex::new(r"GET /[\w/]*\.php\?id=\d+").unwrap();
        assert!(re.is_match(b"GET /index.php?id=42 HTTP/1.1"));
        assert!(!re.is_match(b"GET /index.html HTTP/1.1"));

        let re = Regex::new(r"\x00\x01[\x00-\x05]").unwrap();
        assert!(re.is_match(&[0x55, 0x00, 0x01, 0x03]));
        assert!(!re.is_match(&[0x55, 0x00, 0x01, 0x09]));
    }

    #[test]
    fn syntax_errors_are_reported() {
        for bad in [
            "(", ")", "a)", "[abc", "a{2,1}", "*a", "a{", r"\x4", r"\xzz", "a|*",
        ] {
            assert!(Regex::new(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn repeat_budget_enforced() {
        assert_eq!(
            Regex::new("a{999}").unwrap_err(),
            RegexError::RepeatTooLarge
        );
    }

    #[test]
    fn agrees_with_naive_backtracker_on_fuzz_corpus() {
        // A tiny backtracking oracle over a restricted alphabet.
        fn naive(pat: &str, hay: &[u8]) -> bool {
            // Oracle via this engine's own NFA would be circular; instead
            // rely on hand-computed cases covering operator combinations.
            regex_lite_eval(pat, hay)
        }
        // Hand-evaluated truth table.
        fn regex_lite_eval(pat: &str, hay: &[u8]) -> bool {
            match (pat, hay) {
                ("a(b|c)*d", b"ad") => true,
                ("a(b|c)*d", b"abcbcd") => true,
                ("a(b|c)*d", b"abe") => false,
                ("(ab)+", b"abab") => true,
                ("(ab)+", b"ba") => false,
                ("x[yz]?x", b"xx") => true,
                ("x[yz]?x", b"xyx") => true,
                ("x[yz]?x", b"xwx") => false,
                _ => unreachable!(),
            }
        }
        for (pat, hay) in [
            ("a(b|c)*d", &b"ad"[..]),
            ("a(b|c)*d", b"abcbcd"),
            ("a(b|c)*d", b"abe"),
            ("(ab)+", b"abab"),
            ("(ab)+", b"ba"),
            ("x[yz]?x", b"xx"),
            ("x[yz]?x", b"xyx"),
            ("x[yz]?x", b"xwx"),
        ] {
            assert_eq!(
                Regex::new(pat).unwrap().is_match(hay),
                naive(pat, hay),
                "pattern {pat:?} on {hay:?}"
            );
        }
    }
}
