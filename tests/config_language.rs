//! The configuration language builds the same pipelines as the
//! programmatic builders: equivalent graphs, equivalent end-to-end results.

use nba::apps::{pipelines, AppConfig};
use nba::core::lb;
use nba::core::runtime::{des, traffic_per_port, BuildCtx, RuntimeConfig};
use nba::io::TrafficConfig;

fn cfg_and_app() -> (RuntimeConfig, AppConfig) {
    let cfg = RuntimeConfig::test_default();
    let app = AppConfig {
        ports: cfg.topology.ports.len() as u16,
        v4_routes: 2048,
        ..AppConfig::default()
    };
    (cfg, app)
}

#[test]
fn ipv4_config_matches_programmatic_pipeline() {
    let (cfg, app) = cfg_and_app();
    let traffic = traffic_per_port(
        &cfg.topology,
        &TrafficConfig {
            offered_gbps: 2.0,
            ..TrafficConfig::default()
        },
    );
    let from_config = pipelines::pipeline_from_config(pipelines::IPV4_CONFIG, &app);
    let programmatic = pipelines::ipv4_router(&app);
    let a = des::run(
        &cfg,
        &from_config,
        &lb::shared(Box::new(lb::CpuOnly)),
        &traffic,
    );
    let b = des::run(
        &cfg,
        &programmatic,
        &lb::shared(Box::new(lb::CpuOnly)),
        &traffic,
    );
    // Same elements, same order, same tables, same traffic: identical runs.
    assert_eq!(a.tx_packets, b.tx_packets);
    assert_eq!(a.window.tx_frame_bits, b.window.tx_frame_bits);
    assert_eq!(a.window.dropped, b.window.dropped);
}

#[test]
fn ipsec_config_builds_and_encrypts() {
    let (cfg, app) = cfg_and_app();
    let traffic = traffic_per_port(
        &cfg.topology,
        &TrafficConfig {
            offered_gbps: 1.0,
            ..TrafficConfig::default()
        },
    );
    let pipeline = pipelines::pipeline_from_config(pipelines::IPSEC_CONFIG, &app);
    let r = des::run(
        &cfg,
        &pipeline,
        &lb::shared(Box::new(lb::CpuOnly)),
        &traffic,
    );
    assert!(r.tx_packets > 100);
    // Throughput accounting is input-normalized: exactly 64 B per frame
    // even though the transmitted ESP frames are larger.
    assert_eq!(r.window.tx_frame_bits / r.window.tx_packets, 64 * 8);
}

#[test]
fn config_errors_surface_with_location() {
    let (_cfg, app) = cfg_and_app();
    let bctx = BuildCtx {
        worker: 0,
        socket: 0,
        nls: nba::core::nls::NodeLocalStorage::new(),
        balancer: lb::shared(Box::new(lb::CpuOnly)),
        policy: Default::default(),
    };
    let err = pipelines::build_from_config_str(
        "src :: FromInput();\nx :: NoSuchElement();\nsrc -> x -> ToOutput;",
        &bctx,
        &app,
    )
    .unwrap_err();
    assert!(err.msg.contains("unknown element class"), "{err}");
    assert_eq!(err.line, 2);

    let err = pipelines::build_from_config_str(
        "src :: FromInput();\nrt :: IPLookup(\"routes=notanumber\");\nsrc -> rt -> ToOutput;",
        &bctx,
        &app,
    )
    .unwrap_err();
    assert!(err.msg.contains("bad routes"), "{err}");
}

#[test]
fn registry_lists_all_application_elements() {
    let (_cfg, app) = cfg_and_app();
    let bctx = BuildCtx {
        worker: 0,
        socket: 0,
        nls: nba::core::nls::NodeLocalStorage::new(),
        balancer: lb::shared(Box::new(lb::CpuOnly)),
        policy: Default::default(),
    };
    let reg = pipelines::registry(&bctx, &app);
    let classes = reg.classes();
    for expected in [
        "ACMatch",
        "CheckIP6Header",
        "CheckIPHeader",
        "DecIP6HLIM",
        "DecIPTTL",
        "IDSAlert",
        "IPLookup",
        "IPsecAES",
        "IPsecAuthHMAC",
        "IPsecESPEncap",
        "L2Forward",
        "LoadBalance",
        "LookupIP6",
        "NoOp",
        "RandomWeightedBranch",
        "RegexMatch",
        "RoundRobinOutput",
    ] {
        assert!(classes.iter().any(|c| c == expected), "missing {expected}");
    }
}
