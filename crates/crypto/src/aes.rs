//! AES-128 (FIPS-197) block encryption and CTR mode.
//!
//! The IPsec gateway needs AES-128-CTR; CTR only uses the forward cipher, so
//! only encryption is implemented. The paper's CPU path uses AES-NI through
//! OpenSSL — here the *functional* behaviour is this portable implementation
//! and the *cost* of AES-NI is a calibrated constant in the cost model.

/// The AES S-box.
const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

/// Round constants for key expansion.
const RCON: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];

/// Number of AES-128 rounds.
const ROUNDS: usize = 10;
/// AES block size in bytes.
pub const BLOCK_LEN: usize = 16;
/// AES-128 key length in bytes.
pub const KEY_LEN: usize = 16;

/// Multiplies by x in GF(2^8) modulo the AES polynomial.
#[inline]
fn xtime(b: u8) -> u8 {
    (b << 1) ^ (((b >> 7) & 1) * 0x1b)
}

/// An expanded AES-128 key ready for encryption.
#[derive(Clone)]
pub struct Aes128 {
    round_keys: [[u8; 16]; ROUNDS + 1],
}

impl Aes128 {
    /// Expands a 128-bit key (FIPS-197 §5.2).
    pub fn new(key: &[u8; KEY_LEN]) -> Aes128 {
        let mut w = [[0u8; 4]; 4 * (ROUNDS + 1)];
        for (i, chunk) in key.chunks_exact(4).enumerate() {
            w[i].copy_from_slice(chunk);
        }
        for i in 4..w.len() {
            let mut temp = w[i - 1];
            if i % 4 == 0 {
                temp.rotate_left(1);
                for b in &mut temp {
                    *b = SBOX[usize::from(*b)];
                }
                temp[0] ^= RCON[i / 4 - 1];
            }
            for j in 0..4 {
                w[i][j] = w[i - 4][j] ^ temp[j];
            }
        }
        let mut round_keys = [[0u8; 16]; ROUNDS + 1];
        for (r, rk) in round_keys.iter_mut().enumerate() {
            for c in 0..4 {
                rk[c * 4..c * 4 + 4].copy_from_slice(&w[r * 4 + c]);
            }
        }
        Aes128 { round_keys }
    }

    /// Encrypts one 16-byte block in place.
    pub fn encrypt_block(&self, block: &mut [u8; BLOCK_LEN]) {
        let mut state = *block;
        add_round_key(&mut state, &self.round_keys[0]);
        for round in 1..ROUNDS {
            sub_bytes(&mut state);
            shift_rows(&mut state);
            mix_columns(&mut state);
            add_round_key(&mut state, &self.round_keys[round]);
        }
        sub_bytes(&mut state);
        shift_rows(&mut state);
        add_round_key(&mut state, &self.round_keys[ROUNDS]);
        *block = state;
    }
}

impl std::fmt::Debug for Aes128 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        f.write_str("Aes128 { .. }")
    }
}

#[inline]
fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
    for (s, k) in state.iter_mut().zip(rk) {
        *s ^= k;
    }
}

#[inline]
fn sub_bytes(state: &mut [u8; 16]) {
    for b in state.iter_mut() {
        *b = SBOX[usize::from(*b)];
    }
}

#[inline]
fn shift_rows(state: &mut [u8; 16]) {
    // State is column-major: byte (row r, column c) lives at c*4 + r.
    let s = *state;
    for r in 1..4 {
        for c in 0..4 {
            state[c * 4 + r] = s[((c + r) % 4) * 4 + r];
        }
    }
}

#[inline]
fn mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [
            state[c * 4],
            state[c * 4 + 1],
            state[c * 4 + 2],
            state[c * 4 + 3],
        ];
        let t = col[0] ^ col[1] ^ col[2] ^ col[3];
        for r in 0..4 {
            state[c * 4 + r] = col[r] ^ t ^ xtime(col[r] ^ col[(r + 1) % 4]);
        }
    }
}

/// AES-128 in counter mode.
///
/// The counter block layout follows NIST SP 800-38A: the full 16-byte
/// initial counter block increments as a big-endian 128-bit integer.
#[derive(Debug, Clone)]
pub struct Aes128Ctr {
    cipher: Aes128,
}

impl Aes128Ctr {
    /// Creates a CTR-mode instance for `key`.
    pub fn new(key: &[u8; KEY_LEN]) -> Aes128Ctr {
        Aes128Ctr {
            cipher: Aes128::new(key),
        }
    }

    /// Encrypts or decrypts `data` in place (CTR is its own inverse) using
    /// the given initial counter block.
    pub fn apply_keystream(&self, iv: &[u8; BLOCK_LEN], data: &mut [u8]) {
        let mut counter = u128::from_be_bytes(*iv);
        for chunk in data.chunks_mut(BLOCK_LEN) {
            let mut keystream = counter.to_be_bytes();
            self.cipher.encrypt_block(&mut keystream);
            for (d, k) in chunk.iter_mut().zip(keystream.iter()) {
                *d ^= k;
            }
            counter = counter.wrapping_add(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    #[test]
    fn fips197_appendix_b() {
        let key: [u8; 16] = hex("2b7e151628aed2a6abf7158809cf4f3c").try_into().unwrap();
        let mut block: [u8; 16] = hex("3243f6a8885a308d313198a2e0370734").try_into().unwrap();
        Aes128::new(&key).encrypt_block(&mut block);
        assert_eq!(block.to_vec(), hex("3925841d02dc09fbdc118597196a0b32"));
    }

    #[test]
    fn fips197_appendix_c1() {
        let key: [u8; 16] = hex("000102030405060708090a0b0c0d0e0f").try_into().unwrap();
        let mut block: [u8; 16] = hex("00112233445566778899aabbccddeeff").try_into().unwrap();
        Aes128::new(&key).encrypt_block(&mut block);
        assert_eq!(block.to_vec(), hex("69c4e0d86a7b0430d8cdb78070b4c55a"));
    }

    // NIST SP 800-38A, F.5.1 CTR-AES128.Encrypt.
    #[test]
    fn sp800_38a_ctr() {
        let key: [u8; 16] = hex("2b7e151628aed2a6abf7158809cf4f3c").try_into().unwrap();
        let iv: [u8; 16] = hex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff").try_into().unwrap();
        let mut data = hex(concat!(
            "6bc1bee22e409f96e93d7e117393172a",
            "ae2d8a571e03ac9c9eb76fac45af8e51",
            "30c81c46a35ce411e5fbc1191a0a52ef",
            "f69f2445df4f9b17ad2b417be66c3710",
        ));
        Aes128Ctr::new(&key).apply_keystream(&iv, &mut data);
        assert_eq!(
            data,
            hex(concat!(
                "874d6191b620e3261bef6864990db6ce",
                "9806f66b7970fdff8617187bb9fffdff",
                "5ae4df3edbd5d35e5b4f09020db03eab",
                "1e031dda2fbe03d1792170a0f3009cee",
            ))
        );
    }

    #[test]
    fn ctr_round_trips_partial_blocks() {
        let key = [7u8; 16];
        let iv = [9u8; 16];
        let ctr = Aes128Ctr::new(&key);
        let original: Vec<u8> = (0..100u8).collect();
        let mut data = original.clone();
        ctr.apply_keystream(&iv, &mut data);
        assert_ne!(data, original);
        ctr.apply_keystream(&iv, &mut data);
        assert_eq!(data, original);
    }

    #[test]
    fn ctr_counter_wraps() {
        let key = [1u8; 16];
        let iv = [0xffu8; 16];
        let mut data = [0u8; 48];
        // Must not panic at the u128 wrap boundary.
        Aes128Ctr::new(&key).apply_keystream(&iv, &mut data);
        let mut again = [0u8; 48];
        Aes128Ctr::new(&key).apply_keystream(&iv, &mut again);
        assert_eq!(data, again);
    }

    #[test]
    fn debug_hides_key_material() {
        let a = Aes128::new(&[3u8; 16]);
        assert_eq!(format!("{a:?}"), "Aes128 { .. }");
    }
}
