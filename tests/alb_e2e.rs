//! End-to-end adaptive load balancing: the ALB must find throughput at
//! least as good as the better of CPU-only/GPU-only (within tolerance) and
//! move `w` off its starting point when one processor dominates.

use nba::apps::{pipelines, AppConfig};
use nba::core::lb::{self, AlbConfig};
use nba::core::runtime::{des, traffic_per_port, RuntimeConfig};
use nba::io::{SizeDist, TrafficConfig};
use nba::sim::Time;

fn alb() -> lb::SharedBalancer {
    lb::shared(Box::new(lb::Adaptive::new(AlbConfig {
        delta: 0.08,
        update_interval: Time::from_ms(1),
        avg_window: 1,
        min_wait: 0,
        max_wait: 2,
        initial_w: 0.5,
    })))
}

#[test]
fn alb_tracks_the_better_processor() {
    // Saturating 64-byte load on the small topology; full compute off so
    // the run is fast and throughput is determined by the cost model.
    let cfg = RuntimeConfig {
        compute: nba::core::element::ComputeMode::HeadersOnly,
        warmup: Time::from_ms(30),
        measure: Time::from_ms(15),
        ..RuntimeConfig::test_default()
    };
    let app = AppConfig {
        ports: cfg.topology.ports.len() as u16,
        v4_routes: 4096,
        ..AppConfig::default()
    };
    let pipeline = pipelines::ipv4_router(&app);
    let traffic = traffic_per_port(
        &cfg.topology,
        &TrafficConfig {
            offered_gbps: 10.0,
            size: SizeDist::Fixed(64),
            ..TrafficConfig::default()
        },
    );
    let fast = RuntimeConfig {
        warmup: Time::from_ms(5),
        ..cfg.clone()
    };
    let cpu = des::run(
        &fast,
        &pipeline,
        &lb::shared(Box::new(lb::CpuOnly)),
        &traffic,
    );
    let gpu = des::run(
        &fast,
        &pipeline,
        &lb::shared(Box::new(lb::GpuOnly)),
        &traffic,
    );
    let best = cpu.tx_gbps.max(gpu.tx_gbps);

    let balancer = alb();
    let adaptive = des::run(&cfg, &pipeline, &balancer, &traffic);
    assert!(
        adaptive.tx_gbps >= best * 0.85,
        "ALB {:.2} vs best-of {:.2} (cpu {:.2} gpu {:.2}, final w {:.2})",
        adaptive.tx_gbps,
        best,
        cpu.tx_gbps,
        gpu.tx_gbps,
        adaptive.final_w,
    );
}

#[test]
fn alb_moves_w_during_the_run() {
    let cfg = RuntimeConfig {
        warmup: Time::from_ms(25),
        measure: Time::from_ms(10),
        ..RuntimeConfig::test_default()
    };
    let app = AppConfig {
        ports: cfg.topology.ports.len() as u16,
        v4_routes: 1024,
        ..AppConfig::default()
    };
    let pipeline = pipelines::ipv4_router(&app);
    let traffic = traffic_per_port(
        &cfg.topology,
        &TrafficConfig {
            offered_gbps: 10.0,
            size: SizeDist::Fixed(64),
            ..TrafficConfig::default()
        },
    );
    let balancer = alb();
    let r = des::run(&cfg, &pipeline, &balancer, &traffic);
    // Started at 0.5 and must have walked somewhere (the perturbation
    // guarantees movement) while staying in bounds.
    assert!((0.0..=1.0).contains(&r.final_w));
    assert_ne!(r.final_w, 0.5, "ALB never moved");
}
