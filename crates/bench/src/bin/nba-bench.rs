//! Continuous-benchmarking CLI: canonical `BENCH_*.json` artifacts and the
//! regression gate.
//!
//! Usage:
//!
//! * `nba-bench run <app> [--out PATH] [--mode alb|cpu|gpu|<w>] [--faults SPEC]`
//!   Runs one app (`ipv4` | `ipv6` | `ipsec` | `ids`) on the simulated
//!   paper testbed and writes a versioned [`BenchReport`] to
//!   `BENCH_<app>.json` (or `--out`). `NBA_QUICK=1` shortens the
//!   measurement windows for CI smoke runs. The default `alb` mode runs
//!   the adaptive balancer so the artifact captures convergence stats.
//!   `--faults` takes a seeded fault plan (see `FaultPlan::parse`, e.g.
//!   `seed=7,transient=0.2,die_at_ms=30,revive_at_ms=60`) for fault
//!   drills; the artifact's `faults` section records what happened.
//! * `nba-bench compare <baseline.json> <current.json>
//!   [--tol-throughput R] [--tol-latency R] [--tol-w A]`
//!   Diffs two reports under per-metric tolerances, prints the verdict
//!   table, and exits 1 on regression. Gates are one-sided — improvements
//!   never fail.
//!
//! Exit codes: 0 ok, 1 regression, 2 usage/parse error.
//!
//! The DES runtime is deterministic, so two runs of the same binary and
//! config produce identical reports — baselines under `bench/baselines/`
//! are machine-independent.

use nba_apps::{pipelines, AppConfig};
use nba_bench::report::{compare, BenchReport, Tolerances};
use nba_core::lb::{self, AlbConfig, SharedBalancer};
use nba_core::runtime::{des, traffic_per_port, PipelineBuilder, RuntimeConfig};
use nba_io::{IpVersion, SizeDist, TrafficConfig};
use nba_sim::Time;

fn usage() -> ! {
    eprintln!(
        "usage:\n  nba-bench run <ipv4|ipv6|ipsec|ids> [--out PATH] [--mode alb|cpu|gpu|<w>] [--faults SPEC]\n  nba-bench compare <baseline.json> <current.json> [--tol-throughput R] [--tol-latency R] [--tol-w A]"
    );
    std::process::exit(2);
}

/// True when `NBA_QUICK` asks for shortened smoke windows.
fn quick() -> bool {
    std::env::var("NBA_QUICK").is_ok_and(|v| v != "0")
}

/// The canonical benchmark configuration. Quick mode shrinks the windows
/// (and is recorded in the artifact, so `compare` warns when a quick run
/// is diffed against a full baseline).
fn bench_cfg(q: bool) -> RuntimeConfig {
    let (warmup, measure) = if q {
        (Time::from_ms(6), Time::from_ms(20))
    } else {
        (Time::from_ms(10), Time::from_ms(60))
    };
    RuntimeConfig {
        warmup,
        measure,
        ..RuntimeConfig::default()
    }
}

/// Resolves an app name to its pipeline builder and IP version.
fn pipeline_for(app: &str, a: &AppConfig) -> Option<(PipelineBuilder, bool)> {
    Some(match app {
        "ipv4" | "v4" => (pipelines::ipv4_router(a), false),
        "ipv6" | "v6" => (pipelines::ipv6_router(a), true),
        "ipsec" => (pipelines::ipsec_gateway(a), false),
        "ids" => (pipelines::ids(a).0, false),
        _ => return None,
    })
}

/// The scaled adaptive balancer used for benchmark artifacts — same
/// algorithm as the paper's, time constants shrunk to converge within the
/// simulated horizon (see EXPERIMENTS.md).
fn balancer_for(mode: &str) -> Option<SharedBalancer> {
    Some(match mode {
        "alb" => lb::shared(Box::new(lb::Adaptive::new(AlbConfig {
            delta: 0.08,
            update_interval: Time::from_ms(4),
            avg_window: 2,
            min_wait: 0,
            max_wait: 2,
            initial_w: 0.5,
        }))),
        "cpu" => lb::shared(Box::new(lb::CpuOnly)),
        "gpu" => lb::shared(Box::new(lb::GpuOnly)),
        w => lb::shared(Box::new(lb::FixedFraction::new(w.parse().ok()?))),
    })
}

fn cmd_run(args: &[String]) -> i32 {
    let positional: Vec<&str> = args
        .iter()
        .map(String::as_str)
        .filter(|a| !a.starts_with("--"))
        .collect();
    let Some(&app) = positional.first() else {
        usage();
    };
    let opt = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
            .or_else(|| {
                args.iter()
                    .find_map(|a| a.strip_prefix(&format!("{name}=")).map(str::to_string))
            })
    };
    let mode = opt("--mode").unwrap_or_else(|| "alb".to_string());
    // Canonical app name so ipv4 and v4 produce the same artifact.
    let app = match app {
        "v4" => "ipv4",
        "v6" => "ipv6",
        other => other,
    };
    let out_path = opt("--out").unwrap_or_else(|| format!("BENCH_{app}.json"));

    let q = quick();
    let mut cfg = bench_cfg(q);
    if let Some(spec) = opt("--faults") {
        match nba_core::FaultPlan::parse(&spec) {
            Ok(plan) => cfg.fault.plan = plan,
            Err(e) => {
                eprintln!("--faults: {e}");
                return 2;
            }
        }
    }
    let appcfg = AppConfig {
        ports: cfg.topology.ports.len() as u16,
        ..AppConfig::default()
    };
    let Some((pipeline, v6)) = pipeline_for(app, &appcfg) else {
        eprintln!("unknown app '{app}' (expected ipv4|ipv6|ipsec|ids)");
        return 2;
    };
    let Some(balancer) = balancer_for(&mode) else {
        eprintln!("unknown mode '{mode}' (expected alb|cpu|gpu|<fraction>)");
        return 2;
    };
    let traffic = traffic_per_port(
        &cfg.topology,
        &TrafficConfig {
            offered_gbps: 10.0,
            size: SizeDist::Fixed(64),
            ip_version: if v6 { IpVersion::V6 } else { IpVersion::V4 },
            ..TrafficConfig::default()
        },
    );
    let r = des::run(&cfg, &pipeline, &balancer, &traffic);
    let report = BenchReport::from_run(app, &cfg, &r, q);
    if let Err(e) = std::fs::write(&out_path, report.to_json()) {
        eprintln!("cannot write {out_path}: {e}");
        return 2;
    }
    println!(
        "{app}: {:.2} Gbps ({:.2} Mpps), p50 {}ns p99 {}ns, w {:.3} -> {out_path}",
        report.tx_gbps,
        report.tx_mpps,
        report.latency.p50_ns,
        report.latency.p99_ns,
        report.balancer.final_w,
    );
    if cfg.fault.plan.is_active() {
        let f = &report.faults;
        println!(
            "{app}: faults injected {} retried {} fell_back {} pkts dropped {} pkts, quarantines {}",
            f.injected,
            f.retried,
            f.fell_back_packets,
            f.dropped_packets,
            f.quarantines.len(),
        );
    }
    0
}

fn cmd_compare(args: &[String]) -> i32 {
    let positional: Vec<&str> = args
        .iter()
        .map(String::as_str)
        .filter(|a| !a.starts_with("--"))
        .collect();
    let [base_path, cur_path] = positional[..] else {
        usage();
    };
    let tol_of = |name: &str, default: f64| -> f64 {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
            .or_else(|| {
                args.iter()
                    .find_map(|a| a.strip_prefix(&format!("{name}=")).map(str::to_string))
            })
            .map(|v| match v.parse() {
                Ok(f) => f,
                Err(_) => {
                    eprintln!("{name}: not a number: {v}");
                    std::process::exit(2);
                }
            })
            .unwrap_or(default)
    };
    let defaults = Tolerances::default();
    let tol = Tolerances {
        throughput_rel: tol_of("--tol-throughput", defaults.throughput_rel),
        latency_rel: tol_of("--tol-latency", defaults.latency_rel),
        w_abs: tol_of("--tol-w", defaults.w_abs),
        ..defaults
    };
    let load = |path: &str| -> BenchReport {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(2);
            }
        };
        match BenchReport::parse(&text) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{path}: {e}");
                std::process::exit(2);
            }
        }
    };
    let base = load(base_path);
    let cur = load(cur_path);
    let c = compare(&base, &cur, &tol);
    print!("{}", c.render());
    i32::from(c.regressed())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("compare") => cmd_compare(&args[1..]),
        _ => usage(),
    };
    std::process::exit(code);
}
