//! RSS steering invariants the scale-out live runtime depends on:
//! determinism (a flow always lands on the same worker), symmetry under
//! the symmetric key (both directions of a connection land on the same
//! worker), and bounded skew (uniform flows spread across queues).

use proptest::prelude::*;

use nba_io::toeplitz::{queue_for_hash, Toeplitz, DEFAULT_RSS_KEY, SYMMETRIC_RSS_KEY};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Flow affinity: the same 5-tuple always maps to the same queue, for
    /// any queue count — the property that lets each worker own per-flow
    /// state without locks.
    #[test]
    fn same_tuple_same_queue(
        src in any::<u32>(),
        dst in any::<u32>(),
        sport in any::<u16>(),
        dport in any::<u16>(),
        queues in 1u16..64,
    ) {
        let h = Toeplitz::with_key(DEFAULT_RSS_KEY);
        let a = queue_for_hash(h.hash_ipv4_l4(src, dst, sport, dport), queues);
        let b = queue_for_hash(h.hash_ipv4_l4(src, dst, sport, dport), queues);
        prop_assert_eq!(a, b);
        prop_assert!(a < queues);
    }

    /// The symmetric key hashes both directions of a connection
    /// identically (src/dst and ports swapped), v4 and v6 — so stateful
    /// elements see both halves of a conversation on one worker.
    #[test]
    fn symmetric_key_is_direction_invariant(
        src in any::<u32>(),
        dst in any::<u32>(),
        sport in any::<u16>(),
        dport in any::<u16>(),
        src6 in any::<u128>(),
        dst6 in any::<u128>(),
        queues in 1u16..64,
    ) {
        let h = Toeplitz::with_key(SYMMETRIC_RSS_KEY);
        let fwd = h.hash_ipv4_l4(src, dst, sport, dport);
        let rev = h.hash_ipv4_l4(dst, src, dport, sport);
        prop_assert_eq!(fwd, rev, "v4 forward/reverse hashes differ");
        prop_assert_eq!(
            queue_for_hash(fwd, queues),
            queue_for_hash(rev, queues)
        );
        let fwd6 = h.hash_ipv6_l4(src6, dst6, sport, dport);
        let rev6 = h.hash_ipv6_l4(dst6, src6, dport, sport);
        prop_assert_eq!(fwd6, rev6, "v6 forward/reverse hashes differ");
        // 2-tuple hashing (non-TCP/UDP protocols) is symmetric too.
        prop_assert_eq!(h.hash_ipv4(src, dst), h.hash_ipv4(dst, src));
        prop_assert_eq!(h.hash_ipv6(src6, dst6), h.hash_ipv6(dst6, src6));
    }

    /// The default (asymmetric) key does discriminate directions for at
    /// least some tuples — guarding against a degenerate hash that makes
    /// the symmetry test above pass vacuously.
    #[test]
    fn default_key_not_trivially_symmetric(seed in any::<u64>()) {
        let h = Toeplitz::with_key(DEFAULT_RSS_KEY);
        // Derive a handful of tuples from the seed; at least one must
        // hash differently in the two directions.
        let mut any_diff = false;
        for i in 0..16u64 {
            let x = seed.wrapping_add(i.wrapping_mul(0x9e37_79b9_7f4a_7c15));
            let src = (x >> 32) as u32;
            let dst = x as u32;
            let sport = (x >> 16) as u16;
            let dport = (x >> 48) as u16;
            if (src, sport) != (dst, dport)
                && h.hash_ipv4_l4(src, dst, sport, dport)
                    != h.hash_ipv4_l4(dst, src, dport, sport)
            {
                any_diff = true;
                break;
            }
        }
        prop_assert!(any_diff, "default key behaved symmetrically on 16 tuples");
    }

    /// Occupancy skew: steering many uniform-random flows across N queues
    /// must load every queue, and no queue may exceed 3x its fair share.
    /// (For 1024 flows over <=8 queues a Toeplitz hash behaves close to
    /// uniform; 3x is a loose documented bound, not a tail estimate.)
    #[test]
    fn uniform_flows_spread_within_bound(
        seed in any::<u64>(),
        queues in 2u16..=8,
    ) {
        let h = Toeplitz::with_key(DEFAULT_RSS_KEY);
        const FLOWS: u64 = 1024;
        let mut counts = vec![0u64; usize::from(queues)];
        for i in 0..FLOWS {
            let x = seed
                .wrapping_add(i.wrapping_mul(0x9e37_79b9_7f4a_7c15))
                .wrapping_mul(0xd134_2543_de82_ef95);
            let q = queue_for_hash(
                h.hash_ipv4_l4((x >> 32) as u32, x as u32, (x >> 16) as u16, (x >> 48) as u16),
                queues,
            );
            counts[usize::from(q)] += 1;
        }
        let fair = FLOWS / u64::from(queues);
        for (q, &c) in counts.iter().enumerate() {
            prop_assert!(c > 0, "queue {q} starved: {counts:?}");
            prop_assert!(c <= fair * 3, "queue {q} over 3x fair share: {counts:?}");
        }
    }
}
