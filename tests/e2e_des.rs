//! End-to-end discrete-event runs of the four applications: functional
//! correctness (routing, encryption, detection) and basic throughput sanity
//! on the small test topology.

use nba::apps::{pipelines, AppConfig};
use nba::core::element::ComputeMode;
use nba::core::lb;
use nba::core::runtime::{des, traffic_per_port, RunReport, RuntimeConfig};
use nba::io::{IpVersion, PayloadFill, SizeDist, TrafficConfig};
use nba::sim::Time;

fn app_for(cfg: &RuntimeConfig) -> AppConfig {
    AppConfig {
        ports: cfg.topology.ports.len() as u16,
        v4_routes: 4096,
        v6_routes: 1024,
        ids_literals: 64,
        ids_regexes: 8,
        ..AppConfig::default()
    }
}

fn light_traffic(cfg: &RuntimeConfig, gbps: f64) -> Vec<TrafficConfig> {
    traffic_per_port(
        &cfg.topology,
        &TrafficConfig {
            offered_gbps: gbps,
            size: SizeDist::Fixed(128),
            ..TrafficConfig::default()
        },
    )
}

fn assert_flows(report: &RunReport) {
    assert!(report.tx_packets > 100, "too little traffic: {report:?}");
    assert!(report.tx_gbps > 0.0);
    assert_eq!(report.window.tx_packets, report.tx_packets);
}

#[test]
fn ipv4_router_cpu_only_forwards() {
    let cfg = RuntimeConfig::test_default();
    let app = app_for(&cfg);
    let report = des::run(
        &cfg,
        &pipelines::ipv4_router(&app),
        &lb::shared(Box::new(lb::CpuOnly)),
        &light_traffic(&cfg, 2.0),
    );
    assert_flows(&report);
    // Under light load nothing should drop at RX.
    assert_eq!(report.rx_dropped, 0);
    // Everything ran on the CPU.
    assert_eq!(report.window.gpu_processed, 0);
    assert!(report.window.cpu_processed > 0);
}

#[test]
fn ipv4_router_gpu_only_offloads_and_matches_cpu_routing() {
    let cfg = RuntimeConfig::test_default();
    let app = app_for(&cfg);
    let cpu = des::run(
        &cfg,
        &pipelines::ipv4_router(&app),
        &lb::shared(Box::new(lb::CpuOnly)),
        &light_traffic(&cfg, 2.0),
    );
    let gpu = des::run(
        &cfg,
        &pipelines::ipv4_router(&app),
        &lb::shared(Box::new(lb::GpuOnly)),
        &light_traffic(&cfg, 2.0),
    );
    assert_flows(&gpu);
    assert!(gpu.window.gpu_processed > 0, "no offloading happened");
    assert!(gpu.gpu.iter().any(|g| g.tasks > 0));
    // Same traffic, same table: the routed packet count must agree (the
    // GPU path is functionally identical; only timing differs).
    let diff = cpu.window.tx_packets.abs_diff(gpu.window.tx_packets);
    assert!(
        diff * 50 <= cpu.window.tx_packets,
        "cpu {} vs gpu {}",
        cpu.window.tx_packets,
        gpu.window.tx_packets
    );
}

#[test]
fn ipv6_router_forwards() {
    let cfg = RuntimeConfig::test_default();
    let app = app_for(&cfg);
    let traffic = traffic_per_port(
        &cfg.topology,
        &TrafficConfig {
            offered_gbps: 2.0,
            ip_version: IpVersion::V6,
            size: SizeDist::Fixed(128),
            ..TrafficConfig::default()
        },
    );
    let report = des::run(
        &cfg,
        &pipelines::ipv6_router(&app),
        &lb::shared(Box::new(lb::CpuOnly)),
        &traffic,
    );
    assert_flows(&report);
}

#[test]
fn ipsec_gateway_grows_frames_and_offloads_under_gpu() {
    let cfg = RuntimeConfig::test_default();
    let app = app_for(&cfg);
    let report = des::run(
        &cfg,
        &pipelines::ipsec_gateway(&app),
        &lb::shared(Box::new(lb::GpuOnly)),
        &light_traffic(&cfg, 1.0),
    );
    assert_flows(&report);
    assert!(report.window.gpu_processed > 0);
    // Throughput is input-normalized: exactly the 128-byte input per frame
    // even though ESP grows the transmitted frames.
    let mean_frame_bits = report.window.tx_frame_bits / report.window.tx_packets;
    assert_eq!(
        mean_frame_bits,
        128 * 8,
        "mean frame bits {mean_frame_bits}"
    );
}

#[test]
fn ids_detects_planted_attacks() {
    let cfg = RuntimeConfig::test_default();
    let app = app_for(&cfg);
    let (pipeline, alerts) = pipelines::ids(&app);
    let traffic = traffic_per_port(
        &cfg.topology,
        &TrafficConfig {
            offered_gbps: 1.0,
            size: SizeDist::Fixed(256),
            payload: PayloadFill::Plant {
                needle: b"ATTACK1234".to_vec(),
                every: 10,
            },
            ..TrafficConfig::default()
        },
    );
    let report = des::run(
        &cfg,
        &pipeline,
        &lb::shared(Box::new(lb::CpuOnly)),
        &traffic,
    );
    assert_flows(&report);
    let lit = alerts
        .literal_hits
        .load(std::sync::atomic::Ordering::Relaxed);
    let confirmed = alerts.confirmed.load(std::sync::atomic::Ordering::Relaxed);
    // Roughly one in ten packets carries the needle.
    assert!(lit > 0, "no literal alerts");
    assert!(confirmed > 0, "no confirmed alerts");
    assert!(confirmed <= lit);
    let total = report.window.rx_packets.max(1);
    let rate = lit as f64 / total as f64;
    assert!((0.05..0.2).contains(&rate), "alert rate {rate}");
}

#[test]
fn ids_gpu_path_detects_equally() {
    let cfg = RuntimeConfig::test_default();
    let app = app_for(&cfg);
    let traffic = traffic_per_port(
        &cfg.topology,
        &TrafficConfig {
            offered_gbps: 0.5,
            size: SizeDist::Fixed(256),
            payload: PayloadFill::Plant {
                needle: b"EVILPATTERN".to_vec(),
                every: 5,
            },
            ..TrafficConfig::default()
        },
    );
    let (p_cpu, a_cpu) = pipelines::ids(&app);
    let (p_gpu, a_gpu) = pipelines::ids(&app);
    let r_cpu = des::run(&cfg, &p_cpu, &lb::shared(Box::new(lb::CpuOnly)), &traffic);
    let r_gpu = des::run(&cfg, &p_gpu, &lb::shared(Box::new(lb::GpuOnly)), &traffic);
    let lit_cpu = a_cpu
        .literal_hits
        .load(std::sync::atomic::Ordering::Relaxed);
    let lit_gpu = a_gpu
        .literal_hits
        .load(std::sync::atomic::Ordering::Relaxed);
    assert!(lit_cpu > 0 && lit_gpu > 0);
    // Same deterministic traffic: hit counts within a few percent (batch
    // boundary effects at the measurement edges only).
    let diff = lit_cpu.abs_diff(lit_gpu);
    assert!(diff * 10 <= lit_cpu, "cpu {lit_cpu} vs gpu {lit_gpu}");
    let _ = (r_cpu, r_gpu);
}

#[test]
fn determinism_same_seed_same_report() {
    let cfg = RuntimeConfig::test_default();
    let app = app_for(&cfg);
    let run = || {
        des::run(
            &cfg,
            &pipelines::ipv4_router(&app),
            &lb::shared(Box::new(lb::FixedFraction::new(0.5))),
            &light_traffic(&cfg, 2.0),
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.tx_packets, b.tx_packets);
    assert_eq!(a.window.tx_frame_bits, b.window.tx_frame_bits);
    assert_eq!(a.window.dropped, b.window.dropped);
    assert_eq!(a.latency.count(), b.latency.count());
    assert_eq!(a.latency.percentile(99.0), b.latency.percentile(99.0));
}

#[test]
fn overload_drops_but_keeps_running() {
    // Offer line rate of 64-byte frames with heavy per-packet compute in
    // full mode on a tiny machine: RX queues must overflow, not the sim.
    let cfg = RuntimeConfig {
        compute: ComputeMode::Full,
        warmup: Time::from_ms(2),
        measure: Time::from_ms(6),
        ..RuntimeConfig::test_default()
    };
    let app = app_for(&cfg);
    let traffic = traffic_per_port(
        &cfg.topology,
        &TrafficConfig {
            offered_gbps: 10.0,
            size: SizeDist::Fixed(64),
            ..TrafficConfig::default()
        },
    );
    let report = des::run(
        &cfg,
        &pipelines::ipsec_gateway(&app),
        &lb::shared(Box::new(lb::CpuOnly)),
        &traffic,
    );
    assert!(report.rx_dropped > 0, "expected overload drops");
    assert!(report.tx_packets > 0);
    // Throughput must be well below offered.
    assert!(report.tx_gbps < report.offered_gbps);
}

#[test]
fn latency_is_recorded_and_ordered() {
    let cfg = RuntimeConfig::test_default();
    let app = app_for(&cfg);
    let report = des::run(
        &cfg,
        &pipelines::ipv4_router(&app),
        &lb::shared(Box::new(lb::CpuOnly)),
        &light_traffic(&cfg, 1.0),
    );
    assert!(report.latency.count() > 0);
    let p50 = report.latency.percentile(50.0);
    let p999 = report.latency.percentile(99.9);
    assert!(p50 > Time::ZERO);
    assert!(p999 >= p50);
    // Light load on the small topology: microseconds, not milliseconds.
    assert!(p999 < Time::from_ms(1), "p99.9 = {p999}");
}
