//! `nba-apps`: the paper's sample applications on top of the framework.
//!
//! Four applications with "various performance characteristics" (§4.1):
//!
//! * [`ipv4`] — IPv4 router (DIR-24-8 lookup; memory-intensive),
//! * [`ipv6`] — IPv6 router (binary search on prefix lengths; memory- and
//!   compute-intensive),
//! * [`ipsec`] — ESP encryption gateway (AES-128-CTR + HMAC-SHA1;
//!   compute- and IO-intensive),
//! * [`ids`] — intrusion detection (Aho-Corasick + regex DFAs;
//!   compute-intensive, host-to-device copies only),
//!
//! plus [`common`] elements (L2 forwarding, header checks, TTL, the
//! synthetic branch of Figures 1/10) and [`pipelines`] assembling them into
//! runnable [`nba_core::runtime::PipelineBuilder`]s and registering every
//! element with the configuration language.

#![forbid(unsafe_code)]

pub mod common;
pub mod ids;
pub mod ipsec;
pub mod ipv4;
pub mod ipv6;
pub mod pipelines;
pub mod stateful;

#[cfg(test)]
pub(crate) mod test_util;

pub use pipelines::{registry, AppConfig};
