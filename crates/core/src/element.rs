//! The element abstraction (§3.2, §3.3).
//!
//! NBA reuses Click's element model with three changes:
//!
//! * batches are the universal I/O unit, but elements expose only a
//!   **per-packet** interface — the framework runs the iteration loop and
//!   handles branch bookkeeping ("hiding computation batching"),
//! * **per-batch** elements exist for coarse-grained operations (queues,
//!   load-balancer decisions),
//! * **offloadable** elements additionally declare an accelerator-side
//!   function with declarative input/output formats (datablocks, Table 2).
//!
//! Push/pull is unified into push-only processing; *schedulable* elements
//! (`FromInput`-likes) are driven by the IO loop instead.

use std::sync::Arc;

use nba_io::Packet;
use nba_sim::{CpuProfile, GpuProfile, Time};

use crate::batch::{Anno, PacketBatch, PacketResult};
use crate::nls::NodeLocalStorage;

/// How the framework should invoke an element.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ElementKind {
    /// The framework iterates over packets calling [`Element::process`].
    PerPacket,
    /// The framework calls [`Element::process_batch`] once per batch.
    PerBatch,
}

/// Execution context handed to elements.
pub struct ElemCtx<'a> {
    /// Current virtual time.
    pub now: Time,
    /// Whether heavy payload computation (crypto, matching) really runs.
    pub compute: ComputeMode,
    /// Node-local storage shared by workers on this NUMA node (§3.2).
    pub nls: &'a NodeLocalStorage,
    /// Index of the executing worker thread.
    pub worker: usize,
    /// Live throughput/queue statistics (the "system inspector", §3.4).
    pub inspector: &'a crate::stats::SystemInspector,
}

/// Whether elements execute heavy payload transformations.
///
/// The discrete-event clock charges modeled costs either way; `Full` also
/// performs the real computation (so tests can verify ciphertexts and
/// detections), `HeadersOnly` skips payload-body work during long timing
/// sweeps. Routing decisions and header rewrites always really happen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ComputeMode {
    /// Perform all computation (default for tests and examples).
    Full,
    /// Skip payload-body transforms; charge their modeled cost only.
    HeadersOnly,
}

/// Which annotation set a [`SlotClaim`] refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SlotScope {
    /// A per-packet annotation slot.
    Packet,
    /// The per-batch annotation slot.
    Batch,
}

/// How an element touches a claimed annotation slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SlotAccess {
    /// The element only reads the slot.
    Read,
    /// The element writes (or read-modify-writes) the slot.
    Write,
}

/// One annotation slot an element touches, declared for the static
/// verifier (`nba-lint`). The 7-slot cache-line annotation layout
/// ([`crate::batch::ANNO_SLOTS`]) is shared by the framework and every
/// element in a pipeline; claims make that sharing checkable at
/// graph-load time instead of a silent-corruption hazard at runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SlotClaim {
    /// Per-packet or per-batch annotation set.
    pub scope: SlotScope,
    /// Slot index (must be `< ANNO_SLOTS`).
    pub slot: usize,
    /// Read or write.
    pub access: SlotAccess,
}

impl SlotClaim {
    /// A per-packet read claim.
    pub const fn reads(slot: usize) -> SlotClaim {
        SlotClaim {
            scope: SlotScope::Packet,
            slot,
            access: SlotAccess::Read,
        }
    }

    /// A per-packet write claim.
    pub const fn writes(slot: usize) -> SlotClaim {
        SlotClaim {
            scope: SlotScope::Packet,
            slot,
            access: SlotAccess::Write,
        }
    }

    /// A per-batch read claim.
    pub const fn batch_reads(slot: usize) -> SlotClaim {
        SlotClaim {
            scope: SlotScope::Batch,
            slot,
            access: SlotAccess::Read,
        }
    }

    /// A per-batch write claim.
    pub const fn batch_writes(slot: usize) -> SlotClaim {
        SlotClaim {
            scope: SlotScope::Batch,
            slot,
            access: SlotAccess::Write,
        }
    }
}

/// A protocol-header validity fact the deep verifier (`nba-verify`)
/// tracks along pipeline paths. Facts are *established* by validator
/// elements (e.g. `CheckIPHeader` on its valid port) and *required* by
/// header-dependent elements (lookups, TTL decrements, crypto framing):
/// reaching a requirer before any establisher is diagnostic `NBA043`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HeaderFact {
    /// The frame carries a structurally valid IPv4 header (version,
    /// length, checksum, nonzero TTL all checked).
    Ipv4Valid,
    /// The frame carries a structurally valid IPv6 header.
    Ipv6Valid,
}

impl HeaderFact {
    /// Bit position in the verifier's fact set.
    pub(crate) fn bit(self) -> u8 {
        match self {
            HeaderFact::Ipv4Valid => 1,
            HeaderFact::Ipv6Valid => 2,
        }
    }
}

/// What an element may do to the batch population, declared for the deep
/// verifier's batch-disposition analysis (`NBA042` blackhole detection).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Disposition {
    /// Every live packet continues to some output port.
    #[default]
    Pass,
    /// Some packets may be dropped (TTL expiry, lookup miss, bad ICV).
    MayDrop,
    /// Every packet is dropped; nothing ever leaves this element. A path
    /// ending here without an explicit `Discard` edge is a silent
    /// blackhole.
    DropAll,
}

/// Declarative dataflow effects of one element, consumed by the
/// path-sensitive verifier (`crate::verify`). Everything defaults to "no
/// effect": elements only declare what they actually do. These complement
/// [`Element::slot_claims`] — claims say *which* slots are touched,
/// effects say what the element guarantees or assumes *along a path*.
#[derive(Debug, Clone, Copy, Default)]
pub struct ElementEffects {
    /// Header facts guaranteed to hold for every packet leaving the given
    /// output port (validators list their "valid" port here).
    pub establishes: &'static [(usize, HeaderFact)],
    /// Header facts that must hold for every packet entering this element.
    pub requires: &'static [HeaderFact],
    /// Declared slot reads that tolerate the framework's all-zero default
    /// (the element treats "slot never written" as a meaningful verdict,
    /// e.g. "no match"). Such reads are exempt from `NBA040`.
    pub default_ok: &'static [SlotClaim],
    /// What happens to the batch population.
    pub disposition: Disposition,
}

/// A packet-processing operator composed into a pipeline.
pub trait Element: Send {
    /// The class name used by the configuration language.
    fn class_name(&self) -> &'static str;

    /// Annotation slots this element reads or writes, for the static
    /// verifier. Elements that never touch [`Anno`] sets keep the empty
    /// default. An offloadable element's [`Postprocess::Annotation`] slot
    /// is claimed implicitly — only CPU-path accesses need declaring.
    ///
    /// The linter rejects claims on reserved framework slots and
    /// write-write collisions between different element classes in one
    /// pipeline (`NBA010`–`NBA013`).
    fn slot_claims(&self) -> &'static [SlotClaim] {
        &[]
    }

    /// Declarative dataflow effects for the path-sensitive verifier
    /// (`crate::verify`): header facts established per output port, facts
    /// required on entry, default-tolerant slot reads, and the batch
    /// disposition. The default declares no effects, which is sound (the
    /// verifier assumes nothing) but forfeits path-sensitive precision.
    fn effects(&self) -> ElementEffects {
        ElementEffects::default()
    }

    /// Number of output ports (edges) this element has.
    fn output_count(&self) -> usize {
        1
    }

    /// Per-packet or per-batch invocation.
    fn kind(&self) -> ElementKind {
        ElementKind::PerPacket
    }

    /// Processes one packet (per-packet elements).
    ///
    /// The default implementation forwards to output 0.
    fn process(
        &mut self,
        _ctx: &mut ElemCtx<'_>,
        _pkt: &mut Packet,
        _anno: &mut Anno,
    ) -> PacketResult {
        PacketResult::Out(0)
    }

    /// Processes a whole batch (per-batch elements). Per-packet results in
    /// the batch are respected by the framework afterwards.
    ///
    /// The default is a pass-through (all packets continue to output 0);
    /// the framework never calls this for [`ElementKind::PerPacket`]
    /// elements — it runs the iteration loop itself so batching costs stay
    /// under its control (§3.2 "hiding computation batching").
    fn process_batch(&mut self, _ctx: &mut ElemCtx<'_>, _batch: &mut PacketBatch) {}

    /// The modeled CPU cost of processing one packet of `len` bytes.
    fn cpu_profile(&self) -> CpuProfile {
        CpuProfile::default()
    }

    /// The accelerator-side description, if this element is offloadable.
    fn offload(&self) -> Option<OffloadSpec> {
        None
    }

    /// Derives per-packet results after accelerator processing scattered
    /// its output (annotations/payloads) back into the batch.
    ///
    /// The default sends every packet out of port 0. Offloadable elements
    /// whose output edge or drop decision depends on the kernel verdict
    /// (lookup miss, match hit) override this so the CPU and GPU paths
    /// route identically.
    fn post_offload(&mut self, _ctx: &mut ElemCtx<'_>, batch: &mut PacketBatch) {
        let live: Vec<usize> = batch.live_indices().collect();
        for i in live {
            batch.set_result(i, PacketResult::Out(0));
        }
    }
}

/// The items a kernel iterates over, parsed from a staged task buffer.
///
/// Layout of the staged input buffer (what "device memory" holds):
///
/// ```text
/// [u32 items][u32 in_off[items+1]][u32 out_off[items+1]][input bytes...]
/// ```
///
/// Output buffer: `out_off[items]` bytes of writable results.
#[derive(Debug)]
pub struct KernelIo<'a> {
    /// Number of data-parallel items.
    pub items: usize,
    /// Input byte offsets (items + 1 entries).
    pub in_off: Vec<u32>,
    /// Output byte offsets (items + 1 entries).
    pub out_off: Vec<u32>,
    /// Concatenated input item bytes.
    pub input: &'a [u8],
    /// Concatenated output item bytes.
    pub output: &'a mut [u8],
}

impl<'a> KernelIo<'a> {
    /// Serializes the header + offsets in front of item data.
    pub fn stage(in_segments: &[&[u8]], out_lens: &[usize]) -> (Vec<u8>, usize) {
        assert_eq!(in_segments.len(), out_lens.len());
        let items = in_segments.len();
        let mut buf = Vec::new();
        buf.extend_from_slice(&(items as u32).to_le_bytes());
        let mut off = 0u32;
        for seg in in_segments {
            buf.extend_from_slice(&off.to_le_bytes());
            off += seg.len() as u32;
        }
        buf.extend_from_slice(&off.to_le_bytes());
        let mut ooff = 0u32;
        for len in out_lens {
            buf.extend_from_slice(&ooff.to_le_bytes());
            ooff += *len as u32;
        }
        buf.extend_from_slice(&ooff.to_le_bytes());
        for seg in in_segments {
            buf.extend_from_slice(seg);
        }
        (buf, ooff as usize)
    }

    /// Parses a staged buffer (the kernel-side view).
    ///
    /// # Panics
    ///
    /// Panics if the buffer is malformed — staging and parsing are both
    /// framework-internal, so a mismatch is a bug, not input error.
    pub fn parse(staged: &'a [u8], output: &'a mut [u8]) -> KernelIo<'a> {
        let items = u32::from_le_bytes(staged[0..4].try_into().unwrap()) as usize;
        let mut pos = 4;
        let read_offsets = |pos: &mut usize| {
            let mut v = Vec::with_capacity(items + 1);
            for _ in 0..=items {
                v.push(u32::from_le_bytes(
                    staged[*pos..*pos + 4].try_into().unwrap(),
                ));
                *pos += 4;
            }
            v
        };
        let in_off = read_offsets(&mut pos);
        let out_off = read_offsets(&mut pos);
        KernelIo {
            items,
            in_off,
            out_off,
            input: &staged[pos..],
            output,
        }
    }

    /// Input bytes of item `i`.
    pub fn item_in(&self, i: usize) -> &[u8] {
        &self.input[self.in_off[i] as usize..self.in_off[i + 1] as usize]
    }

    /// Byte range of item `i` in the output buffer.
    pub fn item_out_range(&self, i: usize) -> std::ops::Range<usize> {
        self.out_off[i] as usize..self.out_off[i + 1] as usize
    }
}

/// An accelerator kernel: transforms the staged input into the output.
pub type Kernel = Arc<dyn Fn(KernelIo<'_>) + Send + Sync>;

/// Declarative input format of an offloadable element's datablock (Table 2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbInput {
    /// A fixed byte range of each packet (`partial_pkt`).
    PartialPacket {
        /// Byte offset into the frame.
        offset: usize,
        /// Range length; shorter packets contribute what they have.
        len: usize,
    },
    /// Everything from `offset` to the end of the frame (`whole_pkt`).
    WholePacket {
        /// Byte offset into the frame.
        offset: usize,
    },
}

/// Declarative output format of an offloadable element's datablock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbOutput {
    /// Kernel output overwrites the same packet range the input came from,
    /// possibly extended to `extra` additional bytes (size-delta).
    InPlace {
        /// Extra output bytes appended per item beyond the input length.
        extra: usize,
    },
    /// A fixed number of result bytes per item, written into per-packet
    /// annotations / consumed by the postprocess step.
    PerItem {
        /// Output bytes per item.
        len: usize,
    },
}

/// The accelerator-side half of an offloadable element (§3.3).
#[derive(Clone)]
pub struct OffloadSpec {
    /// Input datablock declaration.
    pub input: DbInput,
    /// Output datablock declaration.
    pub output: DbOutput,
    /// Modeled per-item device cost.
    pub gpu: GpuProfile,
    /// The device function (functionally executed on the host).
    pub kernel: Kernel,
    /// `true` for heavy payload transforms (crypto, matching) that
    /// [`ComputeMode::HeadersOnly`] may skip; `false` for kernels whose
    /// results drive routing and must always run (lookups).
    pub heavy: bool,
    /// How the output is applied back to each packet.
    pub postprocess: Postprocess,
}

impl std::fmt::Debug for OffloadSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OffloadSpec")
            .field("input", &self.input)
            .field("output", &self.output)
            .finish()
    }
}

/// What the framework does with kernel output during postprocessing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Postprocess {
    /// Copy output bytes back over the packet's input range (encryption).
    WriteBack,
    /// Interpret each item's output as a little-endian u64 and store it in
    /// the given per-packet annotation slot (lookups, match verdicts).
    Annotation(usize),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn staging_round_trips() {
        let a = b"hello".as_slice();
        let b = b"world!!".as_slice();
        let (staged, out_len) = KernelIo::stage(&[a, b], &[4, 8]);
        assert_eq!(out_len, 12);
        let mut out = vec![0u8; out_len];
        let io = KernelIo::parse(&staged, &mut out);
        assert_eq!(io.items, 2);
        assert_eq!(io.item_in(0), b"hello");
        assert_eq!(io.item_in(1), b"world!!");
        assert_eq!(io.item_out_range(0), 0..4);
        assert_eq!(io.item_out_range(1), 4..12);
    }

    #[test]
    fn kernel_writes_through_ranges() {
        let (staged, out_len) = KernelIo::stage(&[b"abc", b"de"], &[3, 2]);
        let mut out = vec![0u8; out_len];
        let io = KernelIo::parse(&staged, &mut out);
        for i in 0..io.items {
            let r = io.item_out_range(i);
            let src: Vec<u8> = io
                .item_in(i)
                .iter()
                .map(|b| b.to_ascii_uppercase())
                .collect();
            io.output[r].copy_from_slice(&src);
        }
        assert_eq!(&out, b"ABCDE");
    }

    #[test]
    fn empty_stage_parses() {
        let (staged, out_len) = KernelIo::stage(&[], &[]);
        let mut out = vec![0u8; out_len];
        let io = KernelIo::parse(&staged, &mut out);
        assert_eq!(io.items, 0);
        assert!(io.input.is_empty());
    }
}
