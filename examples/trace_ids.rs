//! End-to-end trace workflow: capture synthetic traffic with planted
//! attacks into a pcap file, load a Snort-dialect rule file, then replay
//! the trace through the IDS on the simulated testbed.
//!
//! ```sh
//! cargo run --release --example trace_ids
//! ```

use std::sync::atomic::Ordering;
use std::sync::Arc;

use nba::apps::ids::parse_snort_rules;
use nba::core::element::ComputeMode;
use nba::core::graph::GraphBuilder;
use nba::core::lb;
use nba::core::runtime::{des, BuildCtx, PipelineBuilder, RuntimeConfig};
use nba::io::pcap::{read_pcap, PcapWriter, Replay};
use nba::io::{Mempool, PacketSource, PayloadFill, SizeDist, TrafficConfig, TrafficGen};
use nba::sim::Time;

const RULES: &str = r#"
# Demo rule set (Snort dialect): literal prefilters + pcre confirmers.
alert tcp any any -> any 80 (msg:"admin probe"; content:"GET /admin"; pcre:"/id=[0-9]+/";)
alert udp any any -> any any (msg:"beacon"; content:"|DE AD BE EF|";)
alert ip  any any -> any any (msg:"marker";  content:"ATTACK"; pcre:"/ATTACK[0-9]+/";)
"#;

fn main() {
    // 1. Capture a trace with one attack marker per 20 packets.
    let pool = Mempool::new(1 << 18);
    let mut gen = TrafficGen::new(TrafficConfig {
        offered_gbps: 5.0,
        size: SizeDist::Fixed(512),
        payload: PayloadFill::Plant {
            needle: b"ATTACK2024".to_vec(),
            every: 20,
        },
        ..TrafficConfig::default()
    });
    let mut file = Vec::new();
    let mut w = PcapWriter::new(&mut file).unwrap();
    gen.generate(Time::from_ms(2), &pool, &mut |p| {
        w.write(p.ts_gen, p.data()).unwrap();
    });
    println!(
        "captured {} frames into a {} KiB pcap",
        w.records(),
        file.len() / 1024
    );

    // 2. Compile the rule file and build an IDS pipeline around it.
    let rules = Arc::new(parse_snort_rules(RULES).expect("rule file"));
    println!(
        "compiled {} literals / {} regexes ({:?})",
        rules.patterns.len(),
        rules.regex_sources.len(),
        rules
    );
    let alerts = Arc::new(nba::apps::ids::AlertCounters::default());
    let pipeline: PipelineBuilder = {
        let rules = rules.clone();
        let alerts = alerts.clone();
        let ports = 8u16;
        Arc::new(move |ctx: &BuildCtx| {
            let mut gb = GraphBuilder::new();
            gb.branch_policy(ctx.policy);
            let chk = gb.add(Box::new(nba::apps::common::CheckIPHeader));
            let lbe = gb.add(Box::new(nba::core::lb::LoadBalanceElement::new(
                ctx.balancer.clone(),
            )));
            let ac = gb.add(Box::new(nba::apps::ids::ACMatch::new(rules.clone())));
            let re = gb.add(Box::new(nba::apps::ids::RegexMatch::new(rules.clone())));
            let ok = gb.add(Box::new(nba::apps::ids::IDSAlert::new(
                alerts.clone(),
                ports,
            )));
            let hit = gb.add(Box::new(nba::apps::ids::IDSAlert::new(
                alerts.clone(),
                ports,
            )));
            gb.connect(chk, 0, lbe);
            gb.connect_discard(chk, 1);
            gb.connect(lbe, 0, ac);
            gb.connect(ac, 0, ok);
            gb.connect(ac, 1, re);
            gb.connect(re, 0, hit);
            gb.connect_exit(ok, 0);
            gb.connect_exit(hit, 0);
            gb.entry(chk);
            gb.build().expect("ids pipeline")
        })
    };

    // 3. Replay the trace on every port.
    let cfg = RuntimeConfig {
        compute: ComputeMode::Full,
        warmup: Time::from_ms(5),
        measure: Time::from_ms(15),
        ..RuntimeConfig::default()
    };
    let records = read_pcap(&file[..]).unwrap();
    let sources: Vec<Box<dyn PacketSource>> = (0..cfg.topology.ports.len())
        .map(|_| Box::new(Replay::new(records.clone(), 5.0)) as Box<_>)
        .collect();
    let report = des::run_with_sources(
        &cfg,
        &pipeline,
        &lb::shared(Box::new(lb::GpuOnly)),
        sources,
        5.0 * cfg.topology.ports.len() as f64,
    );

    let lit = alerts.literal_hits.load(Ordering::Relaxed);
    let confirmed = alerts.confirmed.load(Ordering::Relaxed);
    println!(
        "replayed at {:.1} Gbps: {} signature hits, {} regex-confirmed \
         ({:.2} % of {} packets)",
        report.tx_gbps,
        lit,
        confirmed,
        lit as f64 / report.window.rx_packets.max(1) as f64 * 100.0,
        report.window.rx_packets,
    );
}
