//! Regenerates every paper figure/table (run by `cargo bench`).
//!
//! Honors `NBA_QUICK=1` for reduced sweeps.

use nba_bench::experiments::{self, ExpOpts};

fn main() {
    // `cargo bench` passes --bench; a filter argument selects one figure.
    let args: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| !a.starts_with('-'))
        .collect();
    let opts = ExpOpts::from_env();
    if args.is_empty() {
        experiments::all(opts);
        return;
    }
    for a in &args {
        run_one(a, opts);
    }
}

fn run_one(name: &str, opts: ExpOpts) {
    match name {
        "table3" => experiments::table3(),
        "fig1" => {
            experiments::fig1(opts);
        }
        "fig2" => {
            experiments::fig2(opts);
        }
        "fig9" => {
            experiments::fig9(opts);
        }
        "fig10" => {
            experiments::fig10(opts);
        }
        "fig11" => {
            experiments::fig11(opts);
        }
        "fig12" => {
            experiments::fig12(opts);
        }
        "fig13" => {
            experiments::fig13(opts);
        }
        "fig14" => {
            experiments::fig14(opts);
        }
        "composition" => {
            experiments::composition(opts);
        }
        "aggregation" => {
            experiments::ablation_aggregation(opts);
        }
        "datablock" => {
            experiments::ablation_datablock(opts);
        }
        "bounded" => {
            experiments::bounded_latency(opts);
        }
        other => eprintln!(
            "unknown experiment {other:?}; known: table3 fig1 fig2 fig9 fig10 fig11 fig12 \
             fig13 fig14 composition aggregation datablock bounded"
        ),
    }
}
