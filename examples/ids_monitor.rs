//! The IDS watching a traffic mix with planted attacks: full payload
//! computation, real Aho-Corasick + regex matching, alerts counted.
//!
//! ```sh
//! cargo run --release --example ids_monitor
//! ```

use std::sync::atomic::Ordering;

use nba::apps::{pipelines, AppConfig};
use nba::core::element::ComputeMode;
use nba::core::lb;
use nba::core::runtime::{des, traffic_per_port, RuntimeConfig};
use nba::io::{PayloadFill, SizeDist, TrafficConfig};
use nba::sim::Time;

fn main() {
    let cfg = RuntimeConfig {
        compute: ComputeMode::Full,
        warmup: Time::from_ms(5),
        measure: Time::from_ms(15),
        ..RuntimeConfig::default()
    };
    let app = AppConfig {
        ports: cfg.topology.ports.len() as u16,
        ids_literals: 256,
        ids_regexes: 12,
        ..AppConfig::default()
    };
    // One in 25 packets carries an attack marker inside random chatter.
    let traffic = traffic_per_port(
        &cfg.topology,
        &TrafficConfig {
            offered_gbps: 2.0,
            size: SizeDist::Fixed(512),
            payload: PayloadFill::Plant {
                needle: b"ATTACK31337".to_vec(),
                every: 25,
            },
            ..TrafficConfig::default()
        },
    );

    for (label, balancer) in [
        (
            "CPU-only",
            lb::shared(Box::new(lb::CpuOnly)) as nba::core::lb::SharedBalancer,
        ),
        ("GPU-only", lb::shared(Box::new(lb::GpuOnly))),
    ] {
        let (pipeline, alerts) = pipelines::ids(&app);
        let report = des::run(&cfg, &pipeline, &balancer, &traffic);
        let lit = alerts.literal_hits.load(Ordering::Relaxed);
        let confirmed = alerts.confirmed.load(Ordering::Relaxed);
        println!(
            "{label:>8}: {:>6.2} Gbps forwarded, {} signature hits, {} regex-confirmed \
             ({:.2} % of {} packets)",
            report.tx_gbps,
            lit,
            confirmed,
            lit as f64 / report.window.rx_packets.max(1) as f64 * 100.0,
            report.window.rx_packets,
        );
    }
}
