//! The element graph: batch traversal, the batch-split problem, and
//! batch-level branch prediction (§3.2).
//!
//! The graph traverses elements with whole batches. At a branch (an element
//! whose packets take different output edges) the framework must reorganize
//! batches. Two policies are implemented:
//!
//! * [`BranchPolicy::SplitAlways`] — allocate a fresh batch per output edge
//!   and release the input batch (the Figure 1 worst case),
//! * [`BranchPolicy::Predict`] — reuse the input batch for the *predicted*
//!   port (the one that carried the most packets last time) by masking out
//!   diverging packets, allocating new batches only for minority edges
//!   (the Figure 10 technique).
//!
//! Offloadable elements whose batch is tagged for an accelerator are
//! *suspended*: traversal returns them as [`OffloadRequest`]s, the runtime
//! ships them to a device thread, and [`ElementGraph::resume_offloaded`]
//! continues the pipeline after completion.

use nba_sim::{CostModel, Time};

use crate::batch::{anno, Anno, PacketBatch, PacketResult};
use crate::element::{ElemCtx, Element, ElementKind};
use crate::stats::Counters;
use crate::telemetry::{
    ElementProfile, ProfileAcc, SpanAlloc, TraceBuffer, TraceEvent, TraceEventKind,
};

use nba_io::Packet;

/// Identifies a node in an [`ElementGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(pub usize);

/// Where an output port leads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutEdge {
    /// Another element.
    Node(NodeId),
    /// The end of the pipeline: the framework transmits via the packet's
    /// [`anno::IFACE_OUT`] annotation (§3.2 moves `ToOutput` into the
    /// framework).
    Exit,
    /// Not connected; packets taking this edge are dropped (used by
    /// configurations that discard invalid packets).
    Discard,
}

/// How batches are reorganized at branches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BranchPolicy {
    /// Reuse the input batch for the predicted majority port.
    #[default]
    Predict,
    /// Always allocate new batches for every port (Figure 1 baseline).
    SplitAlways,
}

struct Node {
    element: Box<dyn Element>,
    outs: Vec<OutEdge>,
    /// Packets per output port observed last time (the branch predictor).
    last_counts: Vec<u64>,
    /// Currently predicted port.
    predicted: u8,
}

/// A batch suspended at an offloadable element, to be shipped to a device.
#[derive(Debug)]
pub struct OffloadRequest {
    /// The offloadable element's node.
    pub node: NodeId,
    /// The suspended batch.
    pub batch: PacketBatch,
}

/// What one traversal produced.
#[derive(Debug, Default)]
pub struct RunOutcome {
    /// Packets that reached the pipeline end, ready for TX.
    pub tx: Vec<(Packet, Anno)>,
    /// Batches suspended for offloading.
    pub offloads: Vec<OffloadRequest>,
    /// Modeled CPU cycles consumed by elements + framework bookkeeping.
    pub cycles: u64,
    /// Packets dropped.
    pub drops: u64,
}

/// A per-worker replica of the user's pipeline.
pub struct ElementGraph {
    nodes: Vec<Node>,
    entry: NodeId,
    policy: BranchPolicy,
    /// Per-node work accumulators (telemetry; always on, plain adds).
    profiles: Vec<ProfileAcc>,
    /// Batch-lifecycle trace ring; `None` unless tracing was enabled
    /// (boxed so the graph stays lean, owned so the graph stays `Send`
    /// for the live runtime).
    trace: Option<Box<TraceBuffer>>,
    /// Causal span-id allocator; `Some` exactly when tracing is enabled.
    /// Worker replicas of one run share it (see
    /// [`ElementGraph::share_spans`]) so ids are unique run-wide.
    spans: Option<SpanAlloc>,
    /// Busy-time source: cycle-derived virtual time (DES) or wall clock
    /// (live runtime).
    wall_profiling: bool,
}

impl std::fmt::Debug for ElementGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<&str> = self.nodes.iter().map(|n| n.element.class_name()).collect();
        f.debug_struct("ElementGraph")
            .field("entry", &self.entry)
            .field("elements", &names)
            .field("policy", &self.policy)
            .finish()
    }
}

/// Builder for [`ElementGraph`].
pub struct GraphBuilder {
    nodes: Vec<Node>,
    entry: Option<NodeId>,
    policy: BranchPolicy,
}

/// Graph construction errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// The graph has no entry node.
    NoEntry,
    /// An output port index is out of range for its element.
    BadPort {
        /// The node with the bad port.
        node: usize,
        /// The offending port.
        port: usize,
    },
    /// The graph is empty.
    Empty,
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::NoEntry => write!(f, "graph has no entry node"),
            GraphError::BadPort { node, port } => {
                write!(f, "node {node} has no output port {port}")
            }
            GraphError::Empty => write!(f, "graph has no nodes"),
        }
    }
}

impl std::error::Error for GraphError {}

impl Default for GraphBuilder {
    fn default() -> Self {
        GraphBuilder::new()
    }
}

impl GraphBuilder {
    /// Creates an empty builder with the default branch policy.
    pub fn new() -> GraphBuilder {
        GraphBuilder {
            nodes: Vec::new(),
            entry: None,
            policy: BranchPolicy::default(),
        }
    }

    /// Sets the branch policy.
    pub fn branch_policy(&mut self, policy: BranchPolicy) -> &mut Self {
        self.policy = policy;
        self
    }

    /// Adds an element; all its ports start as [`OutEdge::Exit`].
    pub fn add(&mut self, element: Box<dyn Element>) -> NodeId {
        let outs = vec![OutEdge::Exit; element.output_count().max(1)];
        let last_counts = vec![0; outs.len()];
        self.nodes.push(Node {
            element,
            outs,
            last_counts,
            predicted: 0,
        });
        let id = NodeId(self.nodes.len() - 1);
        if self.entry.is_none() {
            self.entry = Some(id);
        }
        id
    }

    /// Connects `from`'s output `port` to `to`.
    pub fn connect(&mut self, from: NodeId, port: usize, to: NodeId) -> &mut Self {
        self.set_edge(from, port, OutEdge::Node(to))
    }

    /// Routes `from`'s output `port` to the pipeline exit.
    pub fn connect_exit(&mut self, from: NodeId, port: usize) -> &mut Self {
        self.set_edge(from, port, OutEdge::Exit)
    }

    /// Routes `from`'s output `port` to the drop sink.
    pub fn connect_discard(&mut self, from: NodeId, port: usize) -> &mut Self {
        self.set_edge(from, port, OutEdge::Discard)
    }

    fn set_edge(&mut self, from: NodeId, port: usize, edge: OutEdge) -> &mut Self {
        self.nodes[from.0].outs[port] = edge;
        self
    }

    /// Output-port count of an already-added element (the config assembler
    /// pre-checks connection arity so a bad port becomes a diagnostic, not
    /// a panic in [`GraphBuilder::connect`]).
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn output_count_of(&self, node: NodeId) -> usize {
        self.nodes[node.0].element.output_count().max(1)
    }

    /// Overrides the entry node (defaults to the first added element).
    pub fn entry(&mut self, node: NodeId) -> &mut Self {
        self.entry = Some(node);
        self
    }

    /// Finalizes the graph.
    pub fn build(self) -> Result<ElementGraph, GraphError> {
        if self.nodes.is_empty() {
            return Err(GraphError::Empty);
        }
        let entry = self.entry.ok_or(GraphError::NoEntry)?;
        for (i, n) in self.nodes.iter().enumerate() {
            if n.outs.len() != n.element.output_count().max(1) {
                return Err(GraphError::BadPort {
                    node: i,
                    port: n.outs.len(),
                });
            }
        }
        let profiles = vec![ProfileAcc::default(); self.nodes.len()];
        Ok(ElementGraph {
            nodes: self.nodes,
            entry,
            policy: self.policy,
            profiles,
            trace: None,
            spans: None,
            wall_profiling: false,
        })
    }
}

impl ElementGraph {
    /// The entry node.
    pub fn entry_node(&self) -> NodeId {
        self.entry
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` if the graph has no nodes (never after a successful build).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Borrows an element for inspection/mutation (tests, LB reconfig).
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn element_mut(&mut self, id: NodeId) -> &mut dyn Element {
        &mut *self.nodes[id.0].element
    }

    /// Borrows an element immutably (the static verifier, reports).
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn element(&self, id: NodeId) -> &dyn Element {
        &*self.nodes[id.0].element
    }

    /// The branch policy the graph was built with.
    pub fn branch_policy(&self) -> BranchPolicy {
        self.policy
    }

    /// Runs the `nba-lint` static verifier over this graph (structural,
    /// annotation-slot, datablock, and branch-shape checks). Graphs built
    /// from configuration text get source line spans via
    /// [`crate::config::build_graph_checked`]; this entry point reports
    /// node ids and element class names only.
    pub fn verify(&self) -> crate::lint::LintReport {
        crate::lint::verify_graph(self, None)
    }

    /// Like [`ElementGraph::verify`] but also runs `nba-verify`, the
    /// path-sensitive deep pass: shallow findings the fixpoint disproves
    /// are demoted, and the `NBA04x` path-family diagnostics (unwritten
    /// reads per path, dead branches, silent blackholes, header use
    /// before validation, transitive datablock hazards) are appended.
    pub fn verify_deep(&self) -> crate::lint::LintReport {
        let mut report = crate::lint::verify_graph(self, None);
        crate::verify::apply_deep(self, None, &mut report);
        report
    }

    /// The edge out of `id`'s output `port`, if that port exists (used by
    /// the runtime to discover fusable offloadable chains).
    pub fn out_edge(&self, id: NodeId, port: usize) -> Option<OutEdge> {
        self.nodes.get(id.0).and_then(|n| n.outs.get(port)).copied()
    }

    /// Per-node work profiles accumulated so far (the whole run, warmup
    /// included). Busy time is cycle-derived virtual time unless
    /// [`ElementGraph::set_wall_profiling`] switched to the wall clock.
    /// GPU-resumed visits count batches/packets but no busy time — the
    /// device's share lives on the GPU timeline.
    pub fn profiles(&self) -> Vec<ElementProfile> {
        self.nodes
            .iter()
            .zip(&self.profiles)
            .enumerate()
            .map(|(i, (n, a))| ElementProfile {
                node: i,
                element: n.element.class_name(),
                batches: a.batches,
                packets: a.packets,
                drops: a.drops,
                cycles: a.cycles,
                busy: Time::from_ns(a.busy_ns),
                latency: a.service.clone(),
            })
            .collect()
    }

    /// Enables batch-lifecycle tracing into a bounded ring of `capacity`
    /// events (no-op when `capacity` is 0).
    pub fn enable_trace(&mut self, capacity: usize) {
        if capacity > 0 {
            self.trace = Some(Box::new(TraceBuffer::new(capacity)));
            self.spans = Some(SpanAlloc::new());
        }
    }

    /// Replaces this graph's span allocator with a shared one, so span ids
    /// stay unique across every worker replica of one run. No-op unless
    /// tracing is enabled.
    pub fn share_spans(&mut self, alloc: SpanAlloc) {
        if self.trace.is_some() {
            self.spans = Some(alloc);
        }
    }

    /// Allocates the next causal span id, or 0 when tracing is off — the
    /// runtime's hook for stamping spans at RX/launch/completion without
    /// branching on telemetry state itself.
    pub fn alloc_span(&self) -> u64 {
        self.spans.as_ref().map_or(0, |s| s.next())
    }

    /// `true` while tracing is enabled.
    pub fn trace_enabled(&self) -> bool {
        self.trace.is_some()
    }

    /// The trace ring, so the runtime can record RX/TX/completion events
    /// against the same buffer the traversal writes element hops into.
    pub fn trace_mut(&mut self) -> Option<&mut TraceBuffer> {
        self.trace.as_deref_mut()
    }

    /// Takes the accumulated trace events (arrival order), disabling
    /// tracing.
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        self.trace
            .take()
            .map(|b| b.into_events())
            .unwrap_or_default()
    }

    /// Switches busy-time accounting from cycle-derived virtual time to
    /// the wall clock (the live runtime's view).
    pub fn set_wall_profiling(&mut self, on: bool) {
        self.wall_profiling = on;
    }

    /// Runs one batch from the entry node to completion/suspension.
    pub fn run_batch(
        &mut self,
        ctx: &mut ElemCtx<'_>,
        cost: &CostModel,
        counters: &Counters,
        batch: PacketBatch,
    ) -> RunOutcome {
        let mut outcome = RunOutcome::default();
        self.traverse(ctx, cost, counters, vec![(self.entry, batch)], &mut outcome);
        outcome
    }

    /// Continues a batch that completed accelerator processing at `node`.
    pub fn resume_offloaded(
        &mut self,
        ctx: &mut ElemCtx<'_>,
        cost: &CostModel,
        counters: &Counters,
        node: NodeId,
        mut batch: PacketBatch,
    ) -> RunOutcome {
        let mut outcome = RunOutcome::default();
        // The element derives per-packet results from the scattered kernel
        // output (default: everything continues out of port 0).
        let live = batch.len() as u64;
        self.nodes[node.0].element.post_offload(ctx, &mut batch);
        // The visit counts toward the element's profile; its busy time does
        // not — the device's share is on the GPU timeline.
        let acc = &mut self.profiles[node.0];
        acc.batches += 1;
        acc.packets += live;
        let mut work = Vec::new();
        self.route(ctx, cost, counters, node, batch, &mut work, &mut outcome);
        self.traverse(ctx, cost, counters, work, &mut outcome);
        outcome
    }

    /// Runs a batch through the graph *starting at* `node` — the
    /// fault-recovery entry: a batch whose device task failed re-enters at
    /// the same offloadable element so its CPU implementation (functionally
    /// identical to the kernel) processes the packets and the batch
    /// continues downstream as if the device had never been asked.
    ///
    /// The caller must clear [`anno::LB_DEVICE`] on the batch first, or it
    /// would suspend at `node` again and ping-pong against a broken device.
    pub fn run_from(
        &mut self,
        ctx: &mut ElemCtx<'_>,
        cost: &CostModel,
        counters: &Counters,
        node: NodeId,
        batch: PacketBatch,
    ) -> RunOutcome {
        let mut outcome = RunOutcome::default();
        self.traverse(ctx, cost, counters, vec![(node, batch)], &mut outcome);
        outcome
    }

    fn traverse(
        &mut self,
        ctx: &mut ElemCtx<'_>,
        cost: &CostModel,
        counters: &Counters,
        mut work: Vec<(NodeId, PacketBatch)>,
        outcome: &mut RunOutcome,
    ) {
        while let Some((nid, mut batch)) = work.pop() {
            if batch.is_empty() {
                outcome.cycles += cost.batch_free;
                continue;
            }
            // Offload decision: batches tagged for a device suspend here.
            let node = &mut self.nodes[nid.0];
            let is_offloadable = node.element.offload().is_some();
            if is_offloadable && batch.banno().get(anno::LB_DEVICE) > 0 {
                if self.trace.is_some() {
                    // The enqueue opens a child span of the batch's current
                    // span; the batch carries it to the device thread so
                    // the launch links back here.
                    let parent = batch.banno().get(anno::SPAN_ID);
                    let span = self.alloc_span();
                    batch.banno_mut().set(anno::SPAN_ID, span);
                    if let Some(tr) = self.trace.as_deref_mut() {
                        tr.push(TraceEvent {
                            t: ctx.now,
                            worker: ctx.worker as u32,
                            batch: batch.banno().get(anno::TRACE_ID),
                            node: Some(nid.0 as u32),
                            kind: TraceEventKind::OffloadEnqueue,
                            packets: batch.len() as u32,
                            dur: Time::ZERO,
                            span,
                            parent,
                        });
                    }
                }
                outcome.offloads.push(OffloadRequest { node: nid, batch });
                continue;
            }

            let live = batch.len() as u64;
            let wall_start = self.wall_profiling.then(std::time::Instant::now);
            let cycles_before = outcome.cycles;
            outcome.cycles += cost.element_call;
            match node.element.kind() {
                ElementKind::PerBatch => {
                    let profile = node.element.cpu_profile();
                    outcome.cycles += profile.fixed_cycles;
                    node.element.process_batch(ctx, &mut batch);
                }
                ElementKind::PerPacket => {
                    let profile = node.element.cpu_profile();
                    let indices: Vec<usize> = batch.live_indices().collect();
                    if is_offloadable {
                        Counters::add(&counters.cpu_processed, indices.len() as u64);
                    }
                    for i in indices {
                        let Some((pkt, anno_ref)) = batch.packet_and_anno_mut(i) else {
                            continue;
                        };
                        outcome.cycles += cost.per_packet_dispatch + profile.cycles(pkt.len());
                        let mut a = *anno_ref;
                        let r = node.element.process(ctx, pkt, &mut a);
                        *batch.anno_mut(i) = a;
                        batch.set_result(i, r);
                    }
                }
            }
            let charged = outcome.cycles - cycles_before;
            let acc = &mut self.profiles[nid.0];
            acc.batches += 1;
            acc.packets += live;
            acc.cycles += charged;
            let visit_ns = match wall_start {
                Some(t0) => t0.elapsed().as_nanos() as u64,
                None => cost.cycles(charged).as_ns(),
            };
            acc.busy_ns += visit_ns;
            acc.service.record_ns(visit_ns);
            if let Some(tr) = self.trace.as_deref_mut() {
                tr.push(TraceEvent {
                    t: ctx.now,
                    worker: ctx.worker as u32,
                    batch: batch.banno().get(anno::TRACE_ID),
                    node: Some(nid.0 as u32),
                    kind: TraceEventKind::Element,
                    packets: live as u32,
                    dur: Time::from_ns(visit_ns),
                    span: batch.banno().get(anno::SPAN_ID),
                    parent: 0,
                });
            }
            self.route(ctx, cost, counters, nid, batch, &mut work, outcome);
        }
    }

    /// Applies per-packet results: drops, then branch handling, then pushes
    /// continuation batches onto the worklist.
    #[allow(clippy::too_many_arguments)]
    fn route(
        &mut self,
        ctx: &mut ElemCtx<'_>,
        cost: &CostModel,
        counters: &Counters,
        nid: NodeId,
        mut batch: PacketBatch,
        work: &mut Vec<(NodeId, PacketBatch)>,
        outcome: &mut RunOutcome,
    ) {
        let node = &mut self.nodes[nid.0];
        let ports = node.outs.len();
        if ports > 1 {
            // Branches force a per-packet edge inspection pass.
            outcome.cycles += cost.route_scan_per_packet * batch.len() as u64;
        }

        // 1. Apply drops and count per-port populations.
        let mut counts = vec![0u64; ports];
        let mut port_of: Vec<(usize, u8)> = Vec::new();
        let mut node_drops = 0u64;
        for i in batch.live_indices().collect::<Vec<_>>() {
            match batch.result(i) {
                PacketResult::Drop => {
                    batch.mask(i);
                    outcome.cycles += cost.drop_per_packet;
                    outcome.drops += 1;
                    node_drops += 1;
                    Counters::add(&counters.dropped, 1);
                }
                PacketResult::Out(p) => {
                    let p = usize::from(p).min(ports - 1) as u8;
                    counts[usize::from(p)] += 1;
                    port_of.push((i, p));
                }
            }
        }
        if node_drops > 0 {
            self.profiles[nid.0].drops += node_drops;
            if let Some(tr) = self.trace.as_deref_mut() {
                tr.push(TraceEvent {
                    t: ctx.now,
                    worker: ctx.worker as u32,
                    batch: batch.banno().get(anno::TRACE_ID),
                    node: Some(nid.0 as u32),
                    kind: TraceEventKind::Drop,
                    packets: node_drops as u32,
                    dur: Time::ZERO,
                    span: batch.banno().get(anno::SPAN_ID),
                    parent: 0,
                });
            }
        }
        if batch.is_empty() {
            outcome.cycles += cost.batch_free;
            return;
        }

        let populated = counts.iter().filter(|&&c| c > 0).count();
        if populated <= 1 {
            // No branch taken: the whole batch continues on one edge.
            let port = counts.iter().position(|&c| c > 0).unwrap_or(0);
            node.last_counts.clone_from(&counts);
            node.predicted = port as u8;
            let edge = node.outs[port];
            self.continue_on(edge, batch, work, cost, counters, outcome);
            return;
        }

        // 2. A real branch: reorganize per policy.
        if let Some(tr) = self.trace.as_deref_mut() {
            tr.push(TraceEvent {
                t: ctx.now,
                worker: ctx.worker as u32,
                batch: batch.banno().get(anno::TRACE_ID),
                node: Some(nid.0 as u32),
                kind: TraceEventKind::Branch,
                packets: batch.len() as u32,
                dur: Time::ZERO,
                span: batch.banno().get(anno::SPAN_ID),
                parent: 0,
            });
        }
        match self.policy {
            BranchPolicy::SplitAlways => {
                // New batch per populated port; release the input batch.
                let mut per_port: Vec<PacketBatch> = (0..ports)
                    .map(|p| {
                        if counts[p] > 0 {
                            outcome.cycles += cost.split_batch_alloc;
                            Counters::add(&counters.split_allocs, 1);
                            PacketBatch::with_capacity(counts[p] as usize)
                        } else {
                            PacketBatch::default()
                        }
                    })
                    .collect();
                for &(i, p) in &port_of {
                    if let Some((pkt, a)) = batch.take(i) {
                        per_port[usize::from(p)].push_with_anno(pkt, a);
                        outcome.cycles += cost.split_copy_slot;
                    }
                }
                outcome.cycles += cost.split_batch_free;
                node.last_counts.clone_from(&counts);
                node.predicted = argmax(&counts);
                let edges = node.outs.clone();
                for (p, b) in per_port.into_iter().enumerate() {
                    if !b.is_empty() {
                        self.continue_on(edges[p], b, work, cost, counters, outcome);
                    }
                }
            }
            BranchPolicy::Predict => {
                // Reuse the input batch for the *predicted* port; packets on
                // other ports move into fresh batches, their slots masked.
                let predicted = node.predicted.min((ports - 1) as u8);
                let diverged: u64 = counts
                    .iter()
                    .enumerate()
                    .filter(|&(p, _)| p != usize::from(predicted))
                    .map(|(_, &c)| c)
                    .sum();
                if diverged > 0 {
                    if let Some(tr) = self.trace.as_deref_mut() {
                        tr.push(TraceEvent {
                            t: ctx.now,
                            worker: ctx.worker as u32,
                            batch: batch.banno().get(anno::TRACE_ID),
                            node: Some(nid.0 as u32),
                            kind: TraceEventKind::BranchMiss,
                            packets: diverged as u32,
                            dur: Time::ZERO,
                            span: batch.banno().get(anno::SPAN_ID),
                            parent: 0,
                        });
                    }
                }
                let mut per_port: Vec<Option<PacketBatch>> = (0..ports).map(|_| None).collect();
                for &(i, p) in &port_of {
                    if p == predicted {
                        // Stays in the reused batch; masking bookkeeping is
                        // free here (the slot simply remains).
                        continue;
                    }
                    let dest = &mut per_port[usize::from(p)];
                    let dest = dest.get_or_insert_with(|| {
                        outcome.cycles += cost.split_batch_alloc;
                        Counters::add(&counters.split_allocs, 1);
                        PacketBatch::with_capacity(counts[usize::from(p)] as usize)
                    });
                    if let Some((pkt, a)) = batch.take(i) {
                        dest.push_with_anno(pkt, a);
                        outcome.cycles += cost.split_copy_slot + cost.mask_slot;
                    }
                }
                node.last_counts.clone_from(&counts);
                node.predicted = argmax(&counts);
                let edges = node.outs.clone();
                // The reused batch continues on the predicted edge.
                if batch.is_empty() {
                    // Complete misprediction: nothing stayed.
                    outcome.cycles += cost.batch_free;
                } else {
                    self.continue_on(
                        edges[usize::from(predicted)],
                        batch,
                        work,
                        cost,
                        counters,
                        outcome,
                    );
                }
                for (p, b) in per_port.into_iter().enumerate() {
                    if let Some(b) = b {
                        if !b.is_empty() {
                            self.continue_on(edges[p], b, work, cost, counters, outcome);
                        }
                    }
                }
            }
        }
    }

    fn continue_on(
        &mut self,
        edge: OutEdge,
        mut batch: PacketBatch,
        work: &mut Vec<(NodeId, PacketBatch)>,
        cost: &CostModel,
        counters: &Counters,
        outcome: &mut RunOutcome,
    ) {
        match edge {
            OutEdge::Node(next) => work.push((next, batch)),
            OutEdge::Exit => {
                outcome.tx.extend(batch.drain());
                outcome.cycles += cost.batch_free;
            }
            OutEdge::Discard => {
                let n = batch.len() as u64;
                outcome.drops += n;
                // Discard edges are element drops as far as accounting is
                // concerned: without this the packets vanish from the
                // rx = tx + dropped conservation ledger.
                Counters::add(&counters.dropped, n);
                outcome.cycles += cost.drop_per_packet * n + cost.batch_free;
                // Dropping the batch frees the packets into their pools.
            }
        }
    }
}

fn argmax(counts: &[u64]) -> u8 {
    let mut best = 0usize;
    for (i, &c) in counts.iter().enumerate() {
        if c > counts[best] {
            best = i;
        }
    }
    best as u8
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::ComputeMode;
    use crate::nls::NodeLocalStorage;
    use crate::stats::SystemInspector;
    use nba_sim::Time;
    use std::sync::Arc;

    /// Forwards every packet to a fixed port.
    struct ToPort(u8, usize);

    impl Element for ToPort {
        fn class_name(&self) -> &'static str {
            "ToPort"
        }
        fn output_count(&self) -> usize {
            self.1
        }
        fn process(&mut self, _: &mut ElemCtx<'_>, _: &mut Packet, _: &mut Anno) -> PacketResult {
            PacketResult::Out(self.0)
        }
    }

    /// Sends packet `i` to port `i % n`.
    struct RoundRobin {
        n: usize,
        i: u8,
    }

    impl Element for RoundRobin {
        fn class_name(&self) -> &'static str {
            "RoundRobin"
        }
        fn output_count(&self) -> usize {
            self.n
        }
        fn process(&mut self, _: &mut ElemCtx<'_>, _: &mut Packet, _: &mut Anno) -> PacketResult {
            let p = self.i % self.n as u8;
            self.i = self.i.wrapping_add(1);
            PacketResult::Out(p)
        }
    }

    /// Drops every packet.
    struct DropAll;

    impl Element for DropAll {
        fn class_name(&self) -> &'static str {
            "DropAll"
        }
        fn process(&mut self, _: &mut ElemCtx<'_>, _: &mut Packet, _: &mut Anno) -> PacketResult {
            PacketResult::Drop
        }
    }

    fn harness() -> (NodeLocalStorage, SystemInspector, Arc<Counters>) {
        let counters = Arc::new(Counters::default());
        let insp = SystemInspector::new(vec![counters.clone()]);
        (NodeLocalStorage::new(), insp, counters)
    }

    fn batch_of(n: usize) -> PacketBatch {
        let mut b = PacketBatch::with_capacity(n);
        for _ in 0..n {
            b.push(Packet::from_bytes(&[0u8; 64]));
        }
        b
    }

    fn run(
        g: &mut ElementGraph,
        counters: &Counters,
        nls: &NodeLocalStorage,
        insp: &SystemInspector,
        batch: PacketBatch,
    ) -> RunOutcome {
        let mut ctx = ElemCtx {
            now: Time::ZERO,
            compute: ComputeMode::Full,
            nls,
            worker: 0,
            inspector: insp,
        };
        g.run_batch(&mut ctx, &CostModel::paper_default(), counters, batch)
    }

    #[test]
    fn linear_pipeline_reaches_exit() {
        let mut gb = GraphBuilder::new();
        let a = gb.add(Box::new(ToPort(0, 1)));
        let b = gb.add(Box::new(ToPort(0, 1)));
        gb.connect(a, 0, b);
        gb.connect_exit(b, 0);
        let mut g = gb.build().unwrap();
        let (nls, insp, c) = harness();
        let out = run(&mut g, &c, &nls, &insp, batch_of(8));
        assert_eq!(out.tx.len(), 8);
        assert_eq!(out.drops, 0);
        assert!(out.offloads.is_empty());
        assert!(out.cycles > 0);
    }

    #[test]
    fn drops_are_counted_and_freed() {
        let mut gb = GraphBuilder::new();
        gb.add(Box::new(DropAll));
        let mut g = gb.build().unwrap();
        let (nls, insp, c) = harness();
        let out = run(&mut g, &c, &nls, &insp, batch_of(5));
        assert_eq!(out.tx.len(), 0);
        assert_eq!(out.drops, 5);
        assert_eq!(Counters::get(&c.dropped), 5);
    }

    #[test]
    fn single_edge_branch_does_not_allocate() {
        let mut gb = GraphBuilder::new();
        let a = gb.add(Box::new(ToPort(1, 2)));
        let b = gb.add(Box::new(ToPort(0, 1)));
        gb.connect_discard(a, 0);
        gb.connect(a, 1, b);
        gb.connect_exit(b, 0);
        let mut g = gb.build().unwrap();
        let (nls, insp, c) = harness();
        let out = run(&mut g, &c, &nls, &insp, batch_of(8));
        assert_eq!(out.tx.len(), 8);
        assert_eq!(Counters::get(&c.split_allocs), 0);
    }

    #[test]
    fn split_always_allocates_per_populated_port() {
        let mut gb = GraphBuilder::new();
        gb.branch_policy(BranchPolicy::SplitAlways);
        let rr = gb.add(Box::new(RoundRobin { n: 2, i: 0 }));
        let l = gb.add(Box::new(ToPort(0, 1)));
        let r = gb.add(Box::new(ToPort(0, 1)));
        gb.connect(rr, 0, l);
        gb.connect(rr, 1, r);
        gb.connect_exit(l, 0);
        gb.connect_exit(r, 0);
        let mut g = gb.build().unwrap();
        let (nls, insp, c) = harness();
        let out = run(&mut g, &c, &nls, &insp, batch_of(10));
        assert_eq!(out.tx.len(), 10);
        assert_eq!(Counters::get(&c.split_allocs), 2);
    }

    #[test]
    fn predict_reuses_batch_for_majority() {
        // 9 packets to port 0, 1 to port 1: only one allocation (minority).
        struct Mostly0 {
            i: u32,
        }
        impl Element for Mostly0 {
            fn class_name(&self) -> &'static str {
                "Mostly0"
            }
            fn output_count(&self) -> usize {
                2
            }
            fn process(
                &mut self,
                _: &mut ElemCtx<'_>,
                _: &mut Packet,
                _: &mut Anno,
            ) -> PacketResult {
                self.i += 1;
                PacketResult::Out(u8::from(self.i.is_multiple_of(10)))
            }
        }
        let mut gb = GraphBuilder::new();
        gb.branch_policy(BranchPolicy::Predict);
        let m = gb.add(Box::new(Mostly0 { i: 0 }));
        let l = gb.add(Box::new(ToPort(0, 1)));
        let r = gb.add(Box::new(ToPort(0, 1)));
        gb.connect(m, 0, l);
        gb.connect(m, 1, r);
        gb.connect_exit(l, 0);
        gb.connect_exit(r, 0);
        let mut g = gb.build().unwrap();
        let (nls, insp, c) = harness();
        let out = run(&mut g, &c, &nls, &insp, batch_of(10));
        assert_eq!(out.tx.len(), 10);
        // Initial prediction is port 0 (correct majority): 1 alloc.
        assert_eq!(Counters::get(&c.split_allocs), 1);
    }

    #[test]
    fn predictor_adapts_after_majority_flips() {
        // First batch: all to port 1 -> single-edge, prediction updates.
        // Second batch: 50/50 -> reuse goes to port 1.
        struct Phase {
            batch: u32,
            i: u32,
        }
        impl Element for Phase {
            fn class_name(&self) -> &'static str {
                "Phase"
            }
            fn output_count(&self) -> usize {
                2
            }
            fn process(
                &mut self,
                _: &mut ElemCtx<'_>,
                _: &mut Packet,
                _: &mut Anno,
            ) -> PacketResult {
                self.i += 1;
                if self.batch == 0 {
                    PacketResult::Out(1)
                } else {
                    PacketResult::Out((self.i % 2) as u8)
                }
            }
        }
        let mut gb = GraphBuilder::new();
        gb.branch_policy(BranchPolicy::Predict);
        let m = gb.add(Box::new(Phase { batch: 0, i: 0 }));
        let l = gb.add(Box::new(ToPort(0, 1)));
        let r = gb.add(Box::new(ToPort(0, 1)));
        gb.connect(m, 0, l);
        gb.connect(m, 1, r);
        gb.connect_exit(l, 0);
        gb.connect_exit(r, 0);
        let mut g = gb.build().unwrap();
        let (nls, insp, c) = harness();

        let out1 = run(&mut g, &c, &nls, &insp, batch_of(8));
        assert_eq!(out1.tx.len(), 8);
        assert_eq!(Counters::get(&c.split_allocs), 0);

        // Flip the element into 50/50 mode.
        if let Some(_el) = Some(()) {
            // Reach in through the test-only accessor.
        }
        match g.element_mut(m).class_name() {
            "Phase" => {}
            _ => panic!(),
        }
        // Downcast-free trick: rebuild with phase 1 directly instead.
        let mut gb = GraphBuilder::new();
        gb.branch_policy(BranchPolicy::Predict);
        let m2 = gb.add(Box::new(Phase { batch: 1, i: 0 }));
        let l2 = gb.add(Box::new(ToPort(0, 1)));
        let r2 = gb.add(Box::new(ToPort(0, 1)));
        gb.connect(m2, 0, l2);
        gb.connect(m2, 1, r2);
        gb.connect_exit(l2, 0);
        gb.connect_exit(r2, 0);
        let mut g2 = gb.build().unwrap();
        let out2 = run(&mut g2, &c, &nls, &insp, batch_of(8));
        assert_eq!(out2.tx.len(), 8);
        // 50/50 with default prediction 0: one alloc for port 1's packets.
        assert_eq!(Counters::get(&c.split_allocs), 1);
    }

    #[test]
    fn build_errors() {
        assert_eq!(GraphBuilder::new().build().unwrap_err(), GraphError::Empty);
    }
}
