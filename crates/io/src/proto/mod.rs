//! Zero-copy protocol header views and frame construction.
//!
//! Each submodule offers a borrowed *view* over a byte slice with checked
//! parsing, field accessors, and in-place mutators. [`FrameBuilder`] composes
//! complete frames (Ethernet + IP + L4 + payload) with valid lengths and
//! checksums for the traffic generators and tests.

pub mod esp;
pub mod ether;
pub mod ipv4;
pub mod ipv6;
pub mod l4;

use crate::checksum;

/// Why a header failed to parse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseError {
    /// The slice is shorter than the fixed header.
    Truncated,
    /// A version/length field is inconsistent with the data.
    Malformed,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Truncated => write!(f, "truncated header"),
            ParseError::Malformed => write!(f, "malformed header"),
        }
    }
}

impl std::error::Error for ParseError {}

/// EtherType of IPv4.
pub const ETHERTYPE_IPV4: u16 = 0x0800;
/// EtherType of IPv6.
pub const ETHERTYPE_IPV6: u16 = 0x86dd;
/// IP protocol number of TCP.
pub const IPPROTO_TCP: u8 = 6;
/// IP protocol number of UDP.
pub const IPPROTO_UDP: u8 = 17;
/// IP protocol number of ESP.
pub const IPPROTO_ESP: u8 = 50;

/// TCP FIN flag.
pub const TCP_FIN: u8 = 0x01;
/// TCP SYN flag.
pub const TCP_SYN: u8 = 0x02;
/// TCP RST flag.
pub const TCP_RST: u8 = 0x04;
/// TCP PSH flag.
pub const TCP_PSH: u8 = 0x08;
/// TCP ACK flag.
pub const TCP_ACK: u8 = 0x10;

/// Composes a complete UDP-in-IP-in-Ethernet frame of exactly `frame_len`
/// bytes (the UDP payload is sized to fit, zero-filled).
///
/// This is the shape of the paper's workload: "randomly generated IP traffic
/// with UDP payloads".
#[derive(Debug, Clone)]
pub struct FrameBuilder {
    /// Destination MAC.
    pub dst_mac: [u8; 6],
    /// Source MAC.
    pub src_mac: [u8; 6],
    /// Source L4 port.
    pub src_port: u16,
    /// Destination L4 port.
    pub dst_port: u16,
    /// IPv4 TTL / IPv6 hop limit.
    pub ttl: u8,
}

impl Default for FrameBuilder {
    fn default() -> Self {
        FrameBuilder {
            dst_mac: [0x02, 0, 0, 0, 0, 0x02],
            src_mac: [0x02, 0, 0, 0, 0, 0x01],
            src_port: 12345,
            dst_port: 53,
            ttl: 64,
        }
    }
}

impl FrameBuilder {
    /// Minimum IPv4/UDP frame: 14 (eth) + 20 (ip) + 8 (udp).
    pub const MIN_V4_LEN: usize = 42;
    /// Minimum IPv6/UDP frame: 14 (eth) + 40 (ip6) + 8 (udp).
    pub const MIN_V6_LEN: usize = 62;
    /// Minimum IPv4/TCP frame: 14 (eth) + 20 (ip) + 20 (tcp).
    pub const MIN_V4_TCP_LEN: usize = 54;

    /// Builds an IPv4/UDP frame of `frame_len` bytes into `out`.
    ///
    /// # Panics
    ///
    /// Panics if `frame_len < Self::MIN_V4_LEN` or `out` is shorter than
    /// `frame_len`.
    pub fn build_ipv4(&self, out: &mut [u8], frame_len: usize, src: u32, dst: u32) {
        assert!(
            frame_len >= Self::MIN_V4_LEN,
            "frame too short for IPv4/UDP"
        );
        let out = &mut out[..frame_len];
        out.fill(0);
        out[0..6].copy_from_slice(&self.dst_mac);
        out[6..12].copy_from_slice(&self.src_mac);
        out[12..14].copy_from_slice(&ETHERTYPE_IPV4.to_be_bytes());

        let ip_len = frame_len - 14;
        let ip = &mut out[14..];
        ip[0] = 0x45; // Version 4, IHL 5.
        ip[2..4].copy_from_slice(&(ip_len as u16).to_be_bytes());
        ip[8] = self.ttl;
        ip[9] = IPPROTO_UDP;
        ip[12..16].copy_from_slice(&src.to_be_bytes());
        ip[16..20].copy_from_slice(&dst.to_be_bytes());
        let csum = checksum::internet_checksum(&ip[..20]);
        ip[10..12].copy_from_slice(&csum.to_be_bytes());

        let udp_len = ip_len - 20;
        let udp = &mut ip[20..];
        udp[0..2].copy_from_slice(&self.src_port.to_be_bytes());
        udp[2..4].copy_from_slice(&self.dst_port.to_be_bytes());
        udp[4..6].copy_from_slice(&(udp_len as u16).to_be_bytes());
        // UDP checksum left zero (legal for IPv4); generators favour speed.
    }

    /// Builds an IPv4/TCP frame of `frame_len` bytes into `out`, with the
    /// given TCP `flags` byte and sequence number, and a valid TCP
    /// checksum (stateful elements rewrite headers and must keep it
    /// consistent, so the generator emits real checksums to verify
    /// against).
    ///
    /// # Panics
    ///
    /// Panics if `frame_len < Self::MIN_V4_TCP_LEN` or `out` is shorter
    /// than `frame_len`.
    pub fn build_ipv4_tcp(
        &self,
        out: &mut [u8],
        frame_len: usize,
        src: u32,
        dst: u32,
        flags: u8,
        seq: u32,
    ) {
        assert!(
            frame_len >= Self::MIN_V4_TCP_LEN,
            "frame too short for IPv4/TCP"
        );
        let out = &mut out[..frame_len];
        out.fill(0);
        out[0..6].copy_from_slice(&self.dst_mac);
        out[6..12].copy_from_slice(&self.src_mac);
        out[12..14].copy_from_slice(&ETHERTYPE_IPV4.to_be_bytes());

        let ip_len = frame_len - 14;
        let ip = &mut out[14..];
        ip[0] = 0x45; // Version 4, IHL 5.
        ip[2..4].copy_from_slice(&(ip_len as u16).to_be_bytes());
        ip[8] = self.ttl;
        ip[9] = IPPROTO_TCP;
        ip[12..16].copy_from_slice(&src.to_be_bytes());
        ip[16..20].copy_from_slice(&dst.to_be_bytes());
        let csum = checksum::internet_checksum(&ip[..20]);
        ip[10..12].copy_from_slice(&csum.to_be_bytes());

        let seg_len = ip_len - 20;
        let (ip_hdr, tcp) = ip.split_at_mut(20);
        tcp[0..2].copy_from_slice(&self.src_port.to_be_bytes());
        tcp[2..4].copy_from_slice(&self.dst_port.to_be_bytes());
        tcp[4..8].copy_from_slice(&seq.to_be_bytes());
        tcp[12] = 5 << 4; // Data offset 5 words, no options.
        tcp[13] = flags;
        tcp[14..16].copy_from_slice(&4096u16.to_be_bytes()); // Window.
        let pseudo = ipv4_pseudo_header(ip_hdr, seg_len as u16, IPPROTO_TCP);
        let tsum = checksum::internet_checksum_parts(&[&pseudo, tcp]);
        tcp[16..18].copy_from_slice(&tsum.to_be_bytes());
    }

    /// Builds an IPv6/UDP frame of `frame_len` bytes into `out`.
    ///
    /// # Panics
    ///
    /// Panics if `frame_len < Self::MIN_V6_LEN` or `out` is shorter than
    /// `frame_len`.
    pub fn build_ipv6(&self, out: &mut [u8], frame_len: usize, src: u128, dst: u128) {
        assert!(
            frame_len >= Self::MIN_V6_LEN,
            "frame too short for IPv6/UDP"
        );
        let out = &mut out[..frame_len];
        out.fill(0);
        out[0..6].copy_from_slice(&self.dst_mac);
        out[6..12].copy_from_slice(&self.src_mac);
        out[12..14].copy_from_slice(&ETHERTYPE_IPV6.to_be_bytes());

        let payload_len = frame_len - 14 - 40;
        let ip = &mut out[14..];
        ip[0] = 0x60; // Version 6.
        ip[4..6].copy_from_slice(&(payload_len as u16).to_be_bytes());
        ip[6] = IPPROTO_UDP;
        ip[7] = self.ttl;
        ip[8..24].copy_from_slice(&src.to_be_bytes());
        ip[24..40].copy_from_slice(&dst.to_be_bytes());

        let udp = &mut ip[40..];
        udp[0..2].copy_from_slice(&self.src_port.to_be_bytes());
        udp[2..4].copy_from_slice(&self.dst_port.to_be_bytes());
        udp[4..6].copy_from_slice(&(payload_len as u16).to_be_bytes());
        // IPv6 requires a UDP checksum; compute it over the pseudo-header.
        let (ip_ro, udp_rw) = ip.split_at_mut(40);
        let pseudo = ipv6::pseudo_header(ip_ro, payload_len as u32, IPPROTO_UDP);
        let mut csum = checksum::internet_checksum_parts(&[&pseudo, udp_rw]);
        if csum == 0 {
            csum = 0xffff;
        }
        udp_rw[6..8].copy_from_slice(&csum.to_be_bytes());
    }
}

/// The IPv4 TCP/UDP checksum pseudo-header (src, dst, zero, proto,
/// segment length) over a 20-byte IPv4 header.
pub fn ipv4_pseudo_header(ip_hdr: &[u8], seg_len: u16, proto: u8) -> [u8; 12] {
    let mut pseudo = [0u8; 12];
    pseudo[0..4].copy_from_slice(&ip_hdr[12..16]);
    pseudo[4..8].copy_from_slice(&ip_hdr[16..20]);
    pseudo[9] = proto;
    pseudo[10..12].copy_from_slice(&seg_len.to_be_bytes());
    pseudo
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn built_ipv4_frame_parses_back() {
        let b = FrameBuilder::default();
        let mut frame = [0u8; 64];
        b.build_ipv4(&mut frame, 64, 0x0a000001, 0xc0a80001);
        let eth = ether::EtherView::parse(&frame).unwrap();
        assert_eq!(eth.ethertype(), ETHERTYPE_IPV4);
        let ip = ipv4::Ipv4View::parse(eth.payload()).unwrap();
        assert_eq!(ip.src(), 0x0a000001);
        assert_eq!(ip.dst(), 0xc0a80001);
        assert_eq!(ip.ttl(), 64);
        assert_eq!(ip.total_len(), 50);
        assert!(ip.checksum_ok());
        let udp = l4::UdpView::parse(ip.payload()).unwrap();
        assert_eq!(udp.dst_port(), 53);
    }

    #[test]
    fn built_ipv6_frame_parses_back_with_valid_udp_checksum() {
        let b = FrameBuilder::default();
        let mut frame = [0u8; 80];
        let src = 0x2001_0db8_0000_0000_0000_0000_0000_0001u128;
        let dst = 0x2001_0db8_0000_0000_0000_0000_0000_0002u128;
        b.build_ipv6(&mut frame, 80, src, dst);
        let eth = ether::EtherView::parse(&frame).unwrap();
        assert_eq!(eth.ethertype(), ETHERTYPE_IPV6);
        let ip = ipv6::Ipv6View::parse(eth.payload()).unwrap();
        assert_eq!(ip.src(), src);
        assert_eq!(ip.dst(), dst);
        assert_eq!(ip.hop_limit(), 64);
        // Verify the UDP checksum over the pseudo-header: folding the
        // checksummed region with a valid stored checksum yields 0xffff.
        let pseudo = ipv6::pseudo_header(eth.payload(), ip.payload_len() as u32, IPPROTO_UDP);
        let ok = checksum::internet_checksum_parts(&[&pseudo, ip.payload()]);
        assert_eq!(ok, 0);
    }

    #[test]
    fn built_ipv4_tcp_frame_parses_back_with_valid_checksum() {
        let b = FrameBuilder::default();
        let mut frame = [0u8; 80];
        b.build_ipv4_tcp(&mut frame, 80, 0x0a000001, 0xc0a80001, TCP_SYN, 1234);
        let eth = ether::EtherView::parse(&frame).unwrap();
        let ip = ipv4::Ipv4View::parse(eth.payload()).unwrap();
        assert_eq!(ip.protocol(), IPPROTO_TCP);
        assert!(ip.checksum_ok());
        let tcp = l4::TcpView::parse(ip.payload()).unwrap();
        assert_eq!(tcp.src_port(), 12345);
        assert_eq!(tcp.seq(), 1234);
        assert_eq!(tcp.flags(), TCP_SYN);
        // Folding the pseudo-header with the stored checksum yields 0.
        let seg = ip.payload();
        let pseudo = ipv4_pseudo_header(eth.payload(), seg.len() as u16, IPPROTO_TCP);
        assert_eq!(checksum::internet_checksum_parts(&[&pseudo, seg]), 0);
    }

    #[test]
    #[should_panic(expected = "frame too short")]
    fn rejects_undersized_frame() {
        let mut out = [0u8; 64];
        FrameBuilder::default().build_ipv4(&mut out, 30, 1, 2);
    }
}
