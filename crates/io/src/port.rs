//! The multi-queue NIC port model.
//!
//! Each port has `n` RX queues (RSS spreads flows across them, one queue per
//! worker thread, as in Figure 6 of the paper) and a TX path modeled as a
//! serializing wire: frames occupy the wire for `wire_bits / speed` and a
//! bounded hardware TX ring absorbs bursts. When the ring is full the frame
//! is dropped, which is how the simulation expresses "the port is the
//! bottleneck, not the CPU" — exactly the regime of the paper's line-rate
//! results.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

use nba_sim::{SimQueue, Time};

use crate::packet::Packet;
use crate::proto::{self, ether::EtherView, ipv4::Ipv4View, ipv6::Ipv6View, l4::UdpView};
use crate::rss::RssTable;
use crate::toeplitz::{queue_for_hash, Toeplitz};

/// Counters of one port.
#[derive(Debug, Clone, Copy, Default)]
pub struct PortCounters {
    /// Frames delivered into RX queues.
    pub rx_delivered: u64,
    /// Frames dropped because the target RX queue was full.
    pub rx_dropped: u64,
    /// Frames transmitted.
    pub tx_frames: u64,
    /// Sum of transmitted frame bits (the paper's Gbps accounting).
    pub tx_frame_bits: u64,
    /// Sum of transmitted wire bits (frames + preamble + IFG).
    pub tx_wire_bits: u64,
    /// Frames dropped because the TX ring was full.
    pub tx_dropped: u64,
}

/// Outcome of a transmit attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxOutcome {
    /// Frame accepted; it leaves the wire at the given time.
    Sent {
        /// Wire departure completion time (used for latency accounting).
        done_at: Time,
    },
    /// The TX ring was full; the frame was dropped.
    Dropped,
}

/// One simulated NIC port.
pub struct Port {
    /// Port index in the topology.
    pub id: u16,
    speed_bps: f64,
    rx_queues: Vec<SimQueue<Packet>>,
    hasher: Toeplitz,
    tx_busy_until: Time,
    /// Longest TX backlog (in wire time) the hardware ring may hold.
    tx_ring_horizon: Time,
    counters: PortCounters,
    /// Optional swappable RSS indirection (the self-healing runtime's
    /// re-steer plane). `None` keeps the static `queue_for_hash` demux.
    rss: Option<Arc<RssTable>>,
}

/// A shared handle to a port (the engine is single-threaded).
pub type PortHandle = Rc<RefCell<Port>>;

/// Default RX descriptor ring size per queue.
pub const DEFAULT_RXQ_DEPTH: usize = 4096;

impl Port {
    /// Creates a port with `rx_queues` RSS queues of `rxq_depth` descriptors.
    ///
    /// # Panics
    ///
    /// Panics if `rx_queues` is zero or the speed is not positive.
    pub fn new(id: u16, speed_gbps: f64, rx_queues: u16, rxq_depth: usize) -> Port {
        assert!(rx_queues > 0, "a port needs at least one RX queue");
        assert!(speed_gbps > 0.0, "port speed must be positive");
        Port {
            id,
            speed_bps: speed_gbps * 1e9,
            rx_queues: (0..rx_queues)
                .map(|_| SimQueue::bounded(rxq_depth))
                .collect(),
            hasher: Toeplitz::default(),
            tx_busy_until: Time::ZERO,
            // 512 descriptors of full-size frames at line rate.
            tx_ring_horizon: Time::from_secs_f64(512.0 * 1538.0 * 8.0 / (speed_gbps * 1e9)),
            counters: PortCounters::default(),
            rss: None,
        }
    }

    /// Installs a shared RSS indirection table. The table's boot state maps
    /// bucket `i` to queue `i % workers`, identical to [`queue_for_hash`],
    /// so installing a fresh table never changes packet placement — only a
    /// supervisor's `remap_dead`/`restore` does.
    ///
    /// # Panics
    ///
    /// Panics if the table was built for a different queue count.
    pub fn set_rss_table(&mut self, table: Arc<RssTable>) {
        assert_eq!(
            table.worker_count(),
            self.rx_queue_count(),
            "RSS table queue count must match the port"
        );
        self.rss = Some(table);
    }

    /// Wraps the port into a shared handle.
    pub fn into_handle(self) -> PortHandle {
        Rc::new(RefCell::new(self))
    }

    /// Number of RX queues.
    pub fn rx_queue_count(&self) -> u16 {
        self.rx_queues.len() as u16
    }

    /// A handle to RX queue `q` (workers poll these).
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn rx_queue(&self, q: u16) -> SimQueue<Packet> {
        self.rx_queues[usize::from(q)].clone()
    }

    /// Time a frame of `wire_bits` occupies the wire.
    pub fn wire_time(&self, wire_bits: u64) -> Time {
        Time::from_secs_f64(wire_bits as f64 / self.speed_bps)
    }

    /// Delivers an arriving frame: computes the RSS hash from the headers,
    /// selects an RX queue, and enqueues (or drops on overflow).
    pub fn deliver(&mut self, mut pkt: Packet) {
        let hash = rss_hash(&self.hasher, pkt.data());
        let q = match &self.rss {
            Some(t) => t.worker_for(hash),
            None => queue_for_hash(hash, self.rx_queue_count()),
        };
        pkt.rss_hash = hash;
        pkt.port_in = self.id;
        pkt.queue_in = q;
        // Overflow drops are counted by the queue itself and folded into
        // `counters()`.
        if self.rx_queues[usize::from(q)].push(pkt).is_ok() {
            self.counters.rx_delivered += 1;
        }
    }

    /// Attempts to transmit a frame at virtual time `now`.
    pub fn transmit(&mut self, now: Time, pkt: &Packet) -> TxOutcome {
        let start = self.tx_busy_until.max(now);
        if start - now > self.tx_ring_horizon {
            self.counters.tx_dropped += 1;
            return TxOutcome::Dropped;
        }
        let done_at = start + self.wire_time(pkt.wire_bits());
        self.tx_busy_until = done_at;
        self.counters.tx_frames += 1;
        self.counters.tx_frame_bits += pkt.frame_bits();
        self.counters.tx_wire_bits += pkt.wire_bits();
        TxOutcome::Sent { done_at }
    }

    /// A copy of the counters.
    pub fn counters(&self) -> PortCounters {
        let mut c = self.counters;
        c.rx_dropped += self.rx_queues.iter().map(|q| q.dropped()).sum::<u64>();
        c
    }
}

/// Computes the RSS hash of a frame the way the NIC would: 4-tuple for
/// TCP/UDP, 2-tuple for other IP, 0 for non-IP.
pub fn rss_hash(hasher: &Toeplitz, frame: &[u8]) -> u32 {
    let Ok(eth) = EtherView::parse(frame) else {
        return 0;
    };
    match eth.ethertype() {
        proto::ETHERTYPE_IPV4 => {
            let Ok(ip) = Ipv4View::parse(eth.payload()) else {
                return 0;
            };
            match ip.protocol() {
                proto::IPPROTO_UDP | proto::IPPROTO_TCP => match UdpView::parse(ip.payload()) {
                    // TCP ports sit at the same offsets as UDP's.
                    Ok(udp) => {
                        hasher.hash_ipv4_l4(ip.src(), ip.dst(), udp.src_port(), udp.dst_port())
                    }
                    Err(_) => hasher.hash_ipv4(ip.src(), ip.dst()),
                },
                _ => hasher.hash_ipv4(ip.src(), ip.dst()),
            }
        }
        proto::ETHERTYPE_IPV6 => {
            let Ok(ip) = Ipv6View::parse(eth.payload()) else {
                return 0;
            };
            match ip.next_header() {
                proto::IPPROTO_UDP | proto::IPPROTO_TCP => match UdpView::parse(ip.payload()) {
                    Ok(udp) => {
                        hasher.hash_ipv6_l4(ip.src(), ip.dst(), udp.src_port(), udp.dst_port())
                    }
                    Err(_) => hasher.hash_ipv6(ip.src(), ip.dst()),
                },
                _ => hasher.hash_ipv6(ip.src(), ip.dst()),
            }
        }
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::FrameBuilder;

    fn udp_frame(src: u32, dst: u32, len: usize) -> Packet {
        let mut bytes = vec![0u8; len];
        FrameBuilder::default().build_ipv4(&mut bytes, len, src, dst);
        Packet::from_bytes(&bytes)
    }

    #[test]
    fn rss_spreads_flows_stably() {
        let mut port = Port::new(0, 10.0, 4, 64);
        for i in 0..256 {
            port.deliver(udp_frame(0x0a000000 + i, 0xc0a80001, 64));
        }
        let total: usize = (0..4).map(|q| port.rx_queue(q).len()).sum();
        assert_eq!(total, 256);
        assert_eq!(port.counters().rx_delivered, 256);
        // Same flow always lands on the same queue.
        let mut p2 = Port::new(0, 10.0, 4, 64);
        p2.deliver(udp_frame(0x0a000001, 0xc0a80001, 64));
        p2.deliver(udp_frame(0x0a000001, 0xc0a80001, 64));
        let landed: Vec<usize> = (0..4).map(|q| p2.rx_queue(q).len()).collect();
        assert_eq!(landed.iter().filter(|&&n| n > 0).count(), 1);
        assert_eq!(landed.iter().sum::<usize>(), 2);
    }

    #[test]
    fn rx_overflow_drops() {
        let mut port = Port::new(0, 10.0, 1, 4);
        for i in 0..10 {
            port.deliver(udp_frame(i, 2, 64));
        }
        let c = port.counters();
        assert_eq!(c.rx_delivered, 4);
        assert_eq!(c.rx_dropped, 6);
    }

    #[test]
    fn wire_time_of_min_frame_at_10g() {
        let port = Port::new(0, 10.0, 1, 64);
        // 672 bits at 10 Gbps = 67.2 ns.
        let t = port.wire_time(672);
        assert_eq!(t.as_ps(), 67_200);
    }

    #[test]
    fn tx_serializes_frames() {
        let mut port = Port::new(0, 10.0, 1, 64);
        let p = udp_frame(1, 2, 64);
        let TxOutcome::Sent { done_at: t1 } = port.transmit(Time::ZERO, &p) else {
            panic!("expected send");
        };
        let TxOutcome::Sent { done_at: t2 } = port.transmit(Time::ZERO, &p) else {
            panic!("expected send");
        };
        assert_eq!(t2 - t1, port.wire_time(672));
        assert_eq!(port.counters().tx_frames, 2);
        assert_eq!(port.counters().tx_frame_bits, 1024);
    }

    #[test]
    fn tx_ring_overflow_drops() {
        let mut port = Port::new(0, 10.0, 1, 64);
        let p = udp_frame(1, 2, 1514);
        let mut sent = 0u32;
        let mut dropped = 0u32;
        for _ in 0..2000 {
            match port.transmit(Time::ZERO, &p) {
                TxOutcome::Sent { .. } => sent += 1,
                TxOutcome::Dropped => dropped += 1,
            }
        }
        // The ring holds roughly 512 full frames of backlog.
        assert!((512..=520).contains(&sent), "sent = {sent}");
        assert!(dropped > 0);
        assert_eq!(port.counters().tx_dropped as u32, dropped);
    }

    #[test]
    fn non_ip_frames_hash_to_zero() {
        let hasher = Toeplitz::default();
        let mut frame = vec![0u8; 64];
        frame[12..14].copy_from_slice(&0x0806u16.to_be_bytes()); // ARP.
        assert_eq!(rss_hash(&hasher, &frame), 0);
        assert_eq!(rss_hash(&hasher, &[0u8; 4]), 0);
    }
}
