//! Trace capture + replay through the full runtime: write a pcap from the
//! generator, replay it as the packet source of a DES run.

use nba::apps::{pipelines, AppConfig};
use nba::core::lb;
use nba::core::runtime::{des, RuntimeConfig};
use nba::io::pcap::{read_pcap, PcapWriter, Replay};
use nba::io::{Mempool, TrafficConfig, TrafficGen};
use nba::sim::Time;

#[test]
fn replayed_trace_drives_the_router() {
    // 1. Capture a short synthetic trace.
    let pool = Mempool::new(1 << 16);
    let mut gen = TrafficGen::new(TrafficConfig {
        offered_gbps: 2.0,
        ..TrafficConfig::default()
    });
    let mut file = Vec::new();
    let mut w = PcapWriter::new(&mut file).unwrap();
    gen.generate(Time::from_ms(1), &pool, &mut |p| {
        w.write(p.ts_gen, p.data()).unwrap();
    });
    assert!(w.records() > 100);

    // 2. Replay it on every port of the test machine.
    let cfg = RuntimeConfig::test_default();
    let app = AppConfig {
        ports: cfg.topology.ports.len() as u16,
        v4_routes: 1024,
        ..AppConfig::default()
    };
    let records = read_pcap(&file[..]).unwrap();
    let sources: Vec<Box<dyn nba::io::PacketSource>> = (0..cfg.topology.ports.len())
        .map(|_| Box::new(Replay::new(records.clone(), 2.0)) as Box<_>)
        .collect();
    let report = des::run_with_sources(
        &cfg,
        &pipelines::ipv4_router(&app),
        &lb::shared(Box::new(lb::CpuOnly)),
        sources,
        2.0 * cfg.topology.ports.len() as f64,
    );
    assert!(report.tx_packets > 1000, "{report:?}");
    assert_eq!(report.window.dropped, 0);
}

#[test]
fn replay_equals_generator_for_same_traffic() {
    // The same packets via generator and via capture+replay at the same
    // rate produce the same forwarding counts.
    let cfg = RuntimeConfig::test_default();
    let app = AppConfig {
        ports: cfg.topology.ports.len() as u16,
        v4_routes: 1024,
        ..AppConfig::default()
    };
    let t = TrafficConfig {
        offered_gbps: 1.0,
        ..TrafficConfig::default()
    };

    // Generator path.
    let traffic = nba::core::runtime::traffic_per_port(&cfg.topology, &t);
    let direct = des::run(
        &cfg,
        &pipelines::ipv4_router(&app),
        &lb::shared(Box::new(lb::CpuOnly)),
        &traffic,
    );

    // Capture each port's stream and replay.
    let horizon = cfg.warmup + cfg.measure;
    let pool = Mempool::new(1 << 18);
    let sources: Vec<Box<dyn nba::io::PacketSource>> = traffic
        .iter()
        .map(|tc| {
            let mut gen = TrafficGen::new(tc.clone());
            let mut file = Vec::new();
            let mut w = PcapWriter::new(&mut file).unwrap();
            gen.generate(horizon, &pool, &mut |p| {
                w.write(p.ts_gen, p.data()).unwrap();
            });
            let records = read_pcap(&file[..]).unwrap();
            Box::new(Replay::new(records, tc.offered_gbps)) as Box<_>
        })
        .collect();
    let replayed = des::run_with_sources(
        &cfg,
        &pipelines::ipv4_router(&app),
        &lb::shared(Box::new(lb::CpuOnly)),
        sources,
        traffic.iter().map(|tc| tc.offered_gbps).sum(),
    );
    let diff = direct.tx_packets.abs_diff(replayed.tx_packets);
    assert!(
        diff * 100 <= direct.tx_packets.max(1),
        "direct {} vs replayed {}",
        direct.tx_packets,
        replayed.tx_packets
    );
}
