//! UDP and TCP header views (the 5-tuple fields RSS and flows care about).

use super::ParseError;

/// UDP header length.
pub const UDP_HDR_LEN: usize = 8;
/// Minimum TCP header length (data offset = 5).
pub const TCP_MIN_HDR_LEN: usize = 20;

/// A read-only view of a UDP datagram.
#[derive(Debug, Clone, Copy)]
pub struct UdpView<'a> {
    bytes: &'a [u8],
}

impl<'a> UdpView<'a> {
    /// Parses a UDP datagram, validating the length field.
    pub fn parse(bytes: &'a [u8]) -> Result<UdpView<'a>, ParseError> {
        if bytes.len() < UDP_HDR_LEN {
            return Err(ParseError::Truncated);
        }
        let len = usize::from(u16::from_be_bytes([bytes[4], bytes[5]]));
        if len < UDP_HDR_LEN || len > bytes.len() {
            return Err(ParseError::Malformed);
        }
        Ok(UdpView { bytes })
    }

    /// Source port.
    pub fn src_port(&self) -> u16 {
        u16::from_be_bytes([self.bytes[0], self.bytes[1]])
    }

    /// Destination port.
    pub fn dst_port(&self) -> u16 {
        u16::from_be_bytes([self.bytes[2], self.bytes[3]])
    }

    /// Length field (header + payload).
    pub fn len(&self) -> u16 {
        u16::from_be_bytes([self.bytes[4], self.bytes[5]])
    }

    /// `true` only for a degenerate zero-payload datagram.
    pub fn is_empty(&self) -> bool {
        usize::from(self.len()) == UDP_HDR_LEN
    }

    /// Payload bytes bounded by the length field.
    pub fn payload(&self) -> &'a [u8] {
        &self.bytes[UDP_HDR_LEN..usize::from(self.len())]
    }
}

/// A read-only view of a TCP segment.
#[derive(Debug, Clone, Copy)]
pub struct TcpView<'a> {
    bytes: &'a [u8],
}

impl<'a> TcpView<'a> {
    /// Parses a TCP segment, validating the data offset.
    pub fn parse(bytes: &'a [u8]) -> Result<TcpView<'a>, ParseError> {
        if bytes.len() < TCP_MIN_HDR_LEN {
            return Err(ParseError::Truncated);
        }
        let off = usize::from(bytes[12] >> 4) * 4;
        if off < TCP_MIN_HDR_LEN || off > bytes.len() {
            return Err(ParseError::Malformed);
        }
        Ok(TcpView { bytes })
    }

    /// Source port.
    pub fn src_port(&self) -> u16 {
        u16::from_be_bytes([self.bytes[0], self.bytes[1]])
    }

    /// Destination port.
    pub fn dst_port(&self) -> u16 {
        u16::from_be_bytes([self.bytes[2], self.bytes[3]])
    }

    /// Sequence number.
    pub fn seq(&self) -> u32 {
        u32::from_be_bytes(self.bytes[4..8].try_into().unwrap())
    }

    /// Header length in bytes (data offset * 4).
    pub fn hdr_len(&self) -> usize {
        usize::from(self.bytes[12] >> 4) * 4
    }

    /// The flags byte (CWR/ECE/URG/ACK/PSH/RST/SYN/FIN).
    pub fn flags(&self) -> u8 {
        self.bytes[13]
    }

    /// Payload bytes after the header.
    pub fn payload(&self) -> &'a [u8] {
        &self.bytes[self.hdr_len()..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn udp_parses() {
        let mut b = vec![0u8; 16];
        b[0..2].copy_from_slice(&1000u16.to_be_bytes());
        b[2..4].copy_from_slice(&53u16.to_be_bytes());
        b[4..6].copy_from_slice(&12u16.to_be_bytes());
        let v = UdpView::parse(&b).unwrap();
        assert_eq!(v.src_port(), 1000);
        assert_eq!(v.dst_port(), 53);
        assert_eq!(v.payload(), &[0u8; 4]);
        assert!(!v.is_empty());
    }

    #[test]
    fn udp_bad_length_rejected() {
        let mut b = vec![0u8; 8];
        b[4..6].copy_from_slice(&4u16.to_be_bytes());
        assert_eq!(UdpView::parse(&b).unwrap_err(), ParseError::Malformed);
        b[4..6].copy_from_slice(&20u16.to_be_bytes());
        assert_eq!(UdpView::parse(&b).unwrap_err(), ParseError::Malformed);
    }

    #[test]
    fn tcp_parses_with_options() {
        let mut b = vec![0u8; 28];
        b[0..2].copy_from_slice(&4000u16.to_be_bytes());
        b[2..4].copy_from_slice(&80u16.to_be_bytes());
        b[4..8].copy_from_slice(&0xdeadbeefu32.to_be_bytes());
        b[12] = 6 << 4; // Data offset 6 => 24-byte header.
        let v = TcpView::parse(&b).unwrap();
        assert_eq!(v.dst_port(), 80);
        assert_eq!(v.seq(), 0xdeadbeef);
        assert_eq!(v.hdr_len(), 24);
        assert_eq!(v.payload().len(), 4);
    }

    #[test]
    fn tcp_bad_offset_rejected() {
        let mut b = vec![0u8; 20];
        b[12] = 4 << 4;
        assert_eq!(TcpView::parse(&b).unwrap_err(), ParseError::Malformed);
        b[12] = 15 << 4;
        assert_eq!(TcpView::parse(&b).unwrap_err(), ParseError::Malformed);
    }
}
