//! In-workspace stand-in for `parking_lot`: non-poisoning [`Mutex`] and
//! [`RwLock`] wrappers over `std::sync`, with the same lock-returns-guard
//! API (no `Result`). A panicked holder does not poison the lock; the data
//! is still returned to later lockers, matching parking_lot semantics.

#![forbid(unsafe_code)]

use std::sync::{self, PoisonError};

/// A mutual-exclusion lock whose `lock` never fails.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wraps `value` in a mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A readers-writer lock whose `read`/`write` never fail.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Wraps `value` in a readers-writer lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock, ignoring poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires the exclusive write lock, ignoring poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_many_readers() {
        let l = Arc::new(RwLock::new(vec![1, 2, 3]));
        let a = l.read();
        let b = l.read();
        assert_eq!(a.len() + b.len(), 6);
    }

    #[test]
    fn lock_survives_holder_panic() {
        let m = Arc::new(Mutex::new(1));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 1);
    }
}
