//! In-workspace stand-in for the `crossbeam` crate: the [`channel`] module
//! only, implementing multi-producer multi-consumer unbounded channels with
//! cloneable receivers over `std::sync` primitives.

#![forbid(unsafe_code)]

pub mod channel {
    //! MPMC unbounded channels with `try_recv`/`recv_timeout`.

    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        ready: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (Sender(shared.clone()), Receiver(shared))
    }

    /// The sending half; cloneable.
    pub struct Sender<T>(Arc<Shared<T>>);

    /// The receiving half; cloneable (any one receiver gets each message).
    pub struct Receiver<T>(Arc<Shared<T>>);

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message waiting.
        Empty,
        /// All senders are gone and the queue is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed with no message.
        Timeout,
        /// All senders are gone and the queue is drained.
        Disconnected,
    }

    impl<T> Sender<T> {
        /// Enqueues `value`, failing only when every receiver is dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.0.queue.lock().unwrap();
            if st.receivers == 0 {
                return Err(SendError(value));
            }
            st.items.push_back(value);
            drop(st);
            self.0.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.0.queue.lock().unwrap().senders += 1;
            Sender(self.0.clone())
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.0.queue.lock().unwrap();
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                self.0.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues a message if one is waiting.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.0.queue.lock().unwrap();
            match st.items.pop_front() {
                Some(v) => Ok(v),
                None if st.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.0.queue.lock().unwrap();
            loop {
                if let Some(v) = st.items.pop_front() {
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, timed_out) = self.0.ready.wait_timeout(st, deadline - now).unwrap();
                st = guard;
                if timed_out.timed_out() && st.items.is_empty() {
                    return if st.senders == 0 {
                        Err(RecvTimeoutError::Disconnected)
                    } else {
                        Err(RecvTimeoutError::Timeout)
                    };
                }
            }
        }

        /// Blocks until a message arrives or all senders are dropped.
        pub fn recv(&self) -> Result<T, RecvTimeoutError> {
            let mut st = self.0.queue.lock().unwrap();
            loop {
                if let Some(v) = st.items.pop_front() {
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                st = self.0.ready.wait(st).unwrap();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            self.0.queue.lock().unwrap().receivers += 1;
            Receiver(self.0.clone())
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.0.queue.lock().unwrap().receivers -= 1;
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_and_receive_in_order() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.try_recv(), Ok(1));
            assert_eq!(rx.recv_timeout(Duration::from_millis(1)), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn dropping_all_senders_disconnects() {
            let (tx, rx) = unbounded::<u32>();
            let tx2 = tx.clone();
            drop(tx);
            drop(tx2);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(1)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn timeout_expires_without_messages() {
            let (_tx, rx) = unbounded::<u32>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
        }

        #[test]
        fn cross_thread_delivery() {
            let (tx, rx) = unbounded();
            let h = std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            let mut got = 0;
            while got < 100 {
                if rx.recv_timeout(Duration::from_millis(100)).is_ok() {
                    got += 1;
                }
            }
            h.join().unwrap();
            assert_eq!(got, 100);
        }
    }
}
