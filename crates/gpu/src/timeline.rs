//! The device's temporal model: three pipelined engines.
//!
//! A real discrete GPU overlaps host-to-device DMA, kernel execution, and
//! device-to-host DMA of *different* streams while each engine serializes its
//! own queue. The paper leans on this ("multiplexed command queues to exploit
//! pipelining opportunities in data copies and kernel execution"), and the
//! crossover between CPU and GPU in the evaluation depends on it: without
//! copy/compute overlap the GPU path would be copy-bound everywhere.
//!
//! [`Timeline::submit`] schedules one offload round trip (H2D → kernel →
//! D2H) and returns its stage completion times. Back-to-back submissions
//! pipeline exactly as the engine model allows.

use nba_sim::cost::GpuCostModel;
use nba_sim::Time;

/// Identifies a stream (command queue). Operations in one stream serialize
/// even when the engines are free.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StreamId(pub u32);

/// Completion times of one offload task's stages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskTiming {
    /// When the input copy lands in device memory.
    pub h2d_done: Time,
    /// When the kernel finishes.
    pub kernel_done: Time,
    /// When the output copy lands back in host memory (task completion).
    pub d2h_done: Time,
}

/// Utilization counters of a device.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TimelineStats {
    /// Tasks completed.
    pub tasks: u64,
    /// Task attempts that never completed (timed out or hit a dead
    /// device); their H2D copy still occupied the copy engine.
    pub failed_tasks: u64,
    /// Bytes copied host-to-device.
    pub h2d_bytes: u64,
    /// Bytes copied device-to-host.
    pub d2h_bytes: u64,
    /// Accumulated busy time of the copy engines.
    pub copy_busy: Time,
    /// Accumulated busy time of the compute engine.
    pub kernel_busy: Time,
}

impl TimelineStats {
    /// Counters accumulated since `earlier` (an older snapshot of the same
    /// timeline); saturating so stale snapshots cannot panic.
    pub fn delta(&self, earlier: &TimelineStats) -> TimelineStats {
        TimelineStats {
            tasks: self.tasks.saturating_sub(earlier.tasks),
            failed_tasks: self.failed_tasks.saturating_sub(earlier.failed_tasks),
            h2d_bytes: self.h2d_bytes.saturating_sub(earlier.h2d_bytes),
            d2h_bytes: self.d2h_bytes.saturating_sub(earlier.d2h_bytes),
            copy_busy: self.copy_busy.saturating_sub(earlier.copy_busy),
            kernel_busy: self.kernel_busy.saturating_sub(earlier.kernel_busy),
        }
    }

    /// Fraction of `window` the compute engine was busy. Can exceed 1.0:
    /// busy time is booked at submission, so a burst of deep-queued kernels
    /// may outrun the wall window it was submitted in.
    pub fn kernel_busy_fraction(&self, window: Time) -> f64 {
        let w = window.as_secs_f64();
        if w <= 0.0 {
            0.0
        } else {
            self.kernel_busy.as_secs_f64() / w
        }
    }
}

/// The three-engine device timeline.
#[derive(Debug, Clone)]
pub struct Timeline {
    model: GpuCostModel,
    h2d_free_at: Time,
    kernel_free_at: Time,
    d2h_free_at: Time,
    stream_free_at: Vec<Time>,
    stats: TimelineStats,
}

impl Timeline {
    /// Creates a timeline with `streams` command queues.
    ///
    /// # Panics
    ///
    /// Panics if `streams` is zero.
    pub fn new(model: GpuCostModel, streams: u32) -> Timeline {
        assert!(streams > 0, "a device needs at least one stream");
        Timeline {
            model,
            h2d_free_at: Time::ZERO,
            kernel_free_at: Time::ZERO,
            d2h_free_at: Time::ZERO,
            stream_free_at: vec![Time::ZERO; streams as usize],
            stats: TimelineStats::default(),
        }
    }

    /// Number of streams.
    pub fn stream_count(&self) -> u32 {
        self.stream_free_at.len() as u32
    }

    /// The stream that will be free earliest (device threads round-robin
    /// over the pool; picking the earliest-free is equivalent and simpler).
    pub fn best_stream(&self) -> StreamId {
        let (idx, _) = self
            .stream_free_at
            .iter()
            .enumerate()
            .min_by_key(|(_, &t)| t)
            .expect("at least one stream");
        StreamId(idx as u32)
    }

    /// Schedules a full offload round trip submitted at `now` on `stream`.
    ///
    /// `h2d_bytes`/`d2h_bytes` size the DMA transfers; `lane_ns` is the
    /// total single-lane kernel work (see [`GpuCostModel::kernel_time`]).
    ///
    /// # Panics
    ///
    /// Panics if the stream id is out of range.
    pub fn submit(
        &mut self,
        now: Time,
        stream: StreamId,
        h2d_bytes: usize,
        lane_ns: f64,
        d2h_bytes: usize,
    ) -> TaskTiming {
        let s = &mut self.stream_free_at[stream.0 as usize];
        let start = now.max(*s);

        let h2d_dur = self.model.h2d_time(h2d_bytes);
        let h2d_start = start.max(self.h2d_free_at);
        let h2d_done = h2d_start + h2d_dur;
        self.h2d_free_at = h2d_done;

        let kernel_dur = self.model.kernel_time(lane_ns);
        let kernel_start = h2d_done.max(self.kernel_free_at);
        let kernel_done = kernel_start + kernel_dur;
        self.kernel_free_at = kernel_done;

        let d2h_dur = self.model.d2h_time(d2h_bytes);
        let d2h_start = kernel_done.max(self.d2h_free_at);
        let d2h_done = d2h_start + d2h_dur;
        self.d2h_free_at = d2h_done;

        *s = d2h_done;

        self.stats.tasks += 1;
        self.stats.h2d_bytes += h2d_bytes as u64;
        self.stats.d2h_bytes += d2h_bytes as u64;
        self.stats.copy_busy += h2d_dur + d2h_dur;
        self.stats.kernel_busy += kernel_dur;

        TaskTiming {
            h2d_done,
            kernel_done,
            d2h_done,
        }
    }

    /// Charges an *aborted* task attempt submitted at `now` on `stream`:
    /// the input copy occupied the H2D engine (and the stream), but no
    /// kernel completion or D2H copy ever happened — the fault model of a
    /// timed-out or dead-device submission. Returns when the copy landed.
    pub fn submit_aborted(&mut self, now: Time, stream: StreamId, h2d_bytes: usize) -> Time {
        let s = &mut self.stream_free_at[stream.0 as usize];
        let start = now.max(*s);
        let h2d_dur = self.model.h2d_time(h2d_bytes);
        let h2d_start = start.max(self.h2d_free_at);
        let h2d_done = h2d_start + h2d_dur;
        self.h2d_free_at = h2d_done;
        *s = h2d_done;
        self.stats.failed_tasks += 1;
        self.stats.h2d_bytes += h2d_bytes as u64;
        self.stats.copy_busy += h2d_dur;
        h2d_done
    }

    /// A copy of the utilization counters.
    pub fn stats(&self) -> TimelineStats {
        self.stats
    }

    /// When the compute engine frees up (a backpressure signal: device
    /// threads stop aggregating once the GPU falls behind).
    pub fn kernel_free_at(&self) -> Time {
        self.kernel_free_at
    }

    /// When the busiest engine frees up (copy engines included) — the
    /// device-thread backpressure signal.
    pub fn free_at(&self) -> Time {
        self.kernel_free_at
            .max(self.h2d_free_at)
            .max(self.d2h_free_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> GpuCostModel {
        GpuCostModel {
            kernel_launch: Time::from_us(10),
            parallel_lanes: 10,
            copy_latency: Time::from_us(5),
            h2d_bytes_per_sec: 1e9,
            d2h_bytes_per_sec: 1e9,
        }
    }

    #[test]
    fn single_task_timing_adds_up() {
        let mut tl = Timeline::new(model(), 4);
        // 1000 bytes @ 1 GB/s = 1 us + 5 us latency = 6 us per copy.
        // Kernel: 10 us launch + 1000 lane-ns / 10 lanes = 10.1 us.
        let t = tl.submit(Time::ZERO, StreamId(0), 1000, 1000.0, 1000);
        assert_eq!(t.h2d_done, Time::from_ns(6_000));
        assert_eq!(t.kernel_done, Time::from_ns(6_000 + 10_100));
        assert_eq!(t.d2h_done, Time::from_ns(6_000 + 10_100 + 6_000));
    }

    #[test]
    fn different_streams_pipeline() {
        let mut tl = Timeline::new(model(), 2);
        let a = tl.submit(Time::ZERO, StreamId(0), 1000, 1000.0, 1000);
        let b = tl.submit(Time::ZERO, StreamId(1), 1000, 1000.0, 1000);
        // Task B's H2D starts as soon as A's H2D finishes, well before A
        // completes: pipelining shortens the pair below 2x a single task.
        assert!(b.d2h_done < a.d2h_done * 2);
        // But B's kernel cannot start before A's kernel is done.
        assert!(b.kernel_done >= a.kernel_done + Time::from_us(10));
    }

    #[test]
    fn same_stream_serializes() {
        let mut tl = Timeline::new(model(), 1);
        let a = tl.submit(Time::ZERO, StreamId(0), 1000, 1000.0, 1000);
        let b = tl.submit(Time::ZERO, StreamId(0), 1000, 1000.0, 1000);
        // The second task's copy cannot begin before the first fully
        // completes (stream order).
        assert!(b.h2d_done >= a.d2h_done + Time::from_us(6));
    }

    #[test]
    fn throughput_is_bottleneck_stage_rate() {
        // With heavy kernels, steady-state spacing between completions
        // approaches the kernel duration.
        let mut tl = Timeline::new(model(), 8);
        let mut last = Time::ZERO;
        let mut gaps = Vec::new();
        for _ in 0..32 {
            let s = tl.best_stream();
            let t = tl.submit(Time::ZERO, s, 100, 100_000.0, 100);
            if last != Time::ZERO {
                gaps.push(t.kernel_done - last);
            }
            last = t.kernel_done;
        }
        let kernel_dur = Time::from_us(10) + Time::from_us(10);
        for g in &gaps[4..] {
            assert_eq!(*g, kernel_dur);
        }
    }

    #[test]
    fn best_stream_rotates_under_load() {
        let mut tl = Timeline::new(model(), 3);
        let s0 = tl.best_stream();
        tl.submit(Time::ZERO, s0, 10, 10.0, 10);
        let s1 = tl.best_stream();
        assert_ne!(s0, s1);
    }

    #[test]
    fn stats_delta_and_busy_fraction() {
        let mut tl = Timeline::new(model(), 1);
        tl.submit(Time::ZERO, StreamId(0), 500, 100.0, 700);
        let a = tl.stats();
        tl.submit(Time::from_ms(1), StreamId(0), 500, 100.0, 700);
        let b = tl.stats();
        let d = b.delta(&a);
        assert_eq!(d.tasks, 1);
        assert_eq!(d.h2d_bytes, 500);
        assert_eq!(d.kernel_busy, b.kernel_busy - a.kernel_busy);
        // One ~10.01 us kernel over a 1 ms window ~ 1 %.
        let f = d.kernel_busy_fraction(Time::from_ms(1));
        assert!(f > 0.0 && f < 0.05, "fraction = {f}");
        // Stale (reversed) snapshots saturate instead of panicking.
        let z = a.delta(&b);
        assert_eq!(z.tasks, 0);
        assert_eq!(z.kernel_busy, Time::ZERO);
        assert_eq!(
            TimelineStats::default().kernel_busy_fraction(Time::ZERO),
            0.0
        );
    }

    #[test]
    fn aborted_task_charges_only_the_h2d_engine() {
        let mut tl = Timeline::new(model(), 2);
        let done = tl.submit_aborted(Time::ZERO, StreamId(0), 1000);
        // 1000 bytes @ 1 GB/s = 1 us + 5 us latency.
        assert_eq!(done, Time::from_ns(6_000));
        let s = tl.stats();
        assert_eq!(s.failed_tasks, 1);
        assert_eq!(s.tasks, 0);
        assert_eq!(s.h2d_bytes, 1000);
        assert_eq!(s.d2h_bytes, 0);
        assert_eq!(s.kernel_busy, Time::ZERO);
        // The aborted copy still delays the next task's H2D stage.
        let t = tl.submit(Time::ZERO, StreamId(1), 1000, 1000.0, 1000);
        assert_eq!(t.h2d_done, Time::from_ns(12_000));
    }

    #[test]
    fn stats_accumulate() {
        let mut tl = Timeline::new(model(), 1);
        tl.submit(Time::ZERO, StreamId(0), 500, 100.0, 700);
        tl.submit(Time::from_ms(1), StreamId(0), 500, 100.0, 700);
        let s = tl.stats();
        assert_eq!(s.tasks, 2);
        assert_eq!(s.h2d_bytes, 1000);
        assert_eq!(s.d2h_bytes, 1400);
        assert!(s.kernel_busy > Time::ZERO);
    }
}
